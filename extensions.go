package hetlb

import (
	"hetlb/internal/core"
	"hetlb/internal/dynamic"
	"hetlb/internal/faults"
	"hetlb/internal/lp"
	"hetlb/internal/netsim"
	"hetlb/internal/protocol"
)

// This file exposes the extensions the paper names as future work: the
// generalization of DLB2C to more than two clusters, and the LP-based
// fractional lower bound (the Lawler–Labetoulle style relaxation the paper
// cites) used to judge schedule quality when no exact optimum is available.

// KCluster is an instance with k ≥ 1 clusters of identical machines.
type KCluster = core.KCluster

// NewKCluster builds a k-cluster instance: sizes[c] machines in cluster c,
// p[c][j] the cost of job j on any machine of cluster c. Machines are
// numbered cluster by cluster.
func NewKCluster(sizes []int, p [][]Cost) (*KCluster, error) {
	return core.NewKCluster(sizes, p)
}

// DLBKC runs the k-cluster generalization of DLB2C: same-cluster pairs use
// a size-descending greedy, cross-cluster pairs run CLB2C on the
// two-cluster restriction. No approximation ratio is proven for k > 2 (the
// paper's open problem); compare against FractionalLowerBound to judge
// quality.
func DLBKC(model *KCluster, initial *Assignment, opt RunOptions) (Result, error) {
	return runProtocol(protocol.DLBKC{Model: model}, initial, opt)
}

// FractionalLowerBound solves the fractional-makespan LP for a k-cluster
// instance: jobs may split across clusters and cluster work spreads
// perfectly within a cluster. The result lower-bounds every integral
// schedule.
func FractionalLowerBound(model *KCluster) (float64, error) {
	return lp.FractionalMakespanKCluster(model)
}

// FractionalLowerBoundDense is the machine-granularity variant for
// arbitrary (small to medium) unrelated instances.
func FractionalLowerBoundDense(model CostModel) (float64, error) {
	return lp.FractionalMakespanDense(model)
}

// DynamicOptions parameterizes RunDynamic.
type DynamicOptions struct {
	// Seed makes the run reproducible.
	Seed uint64
	// BalanceEvery is the virtual-time period between balancing events
	// (one random pair rebalances its pending jobs per event); 0 disables
	// balancing.
	BalanceEvery int64
	// MeanInterarrival > 0 spreads job arrivals exponentially onto random
	// machines; 0 starts all jobs at time zero from Initial.
	MeanInterarrival float64
	// Initial is required when MeanInterarrival == 0.
	Initial *Assignment
}

// DynamicResult reports a RunDynamic execution.
type DynamicResult struct {
	// Makespan is the completion time of the last job.
	Makespan int64
	// MeanFlow and MaxFlow summarize completion − arrival over jobs.
	MeanFlow float64
	MaxFlow  int64
	// JobsMoved counts migrations performed by the balancer.
	JobsMoved int
}

// RunDynamic couples execution with periodic balancing — the operational
// mode Section IV of the paper advocates ("an a priori load balancer can
// naturally take into account the dynamicity of the computing system"):
// machines run their queues while the protocol periodically rebalances
// pending jobs (accounting for in-progress work). Model kinds map to
// protocols automatically: Clustered → DLB2C, *KCluster → DLBKC,
// *Typed → MJTB, anything else → the same-cost kernel.
func RunDynamic(model CostModel, opt DynamicOptions) (DynamicResult, error) {
	sim, err := dynamic.New(model, protocolFor(model), dynamic.Config{
		Seed:             opt.Seed,
		BalanceEvery:     opt.BalanceEvery,
		MeanInterarrival: opt.MeanInterarrival,
		Initial:          opt.Initial,
	})
	if err != nil {
		return DynamicResult{}, err
	}
	res := sim.Run()
	return DynamicResult{
		Makespan:  res.Makespan,
		MeanFlow:  res.MeanFlow,
		MaxFlow:   res.MaxFlow,
		JobsMoved: res.JobsMoved,
	}, nil
}

// protocolFor picks the natural protocol for a model kind.
func protocolFor(model CostModel) protocol.Protocol {
	switch m := model.(type) {
	case *KCluster:
		return protocol.DLBKC{Model: m}
	case Clustered:
		return protocol.DLB2C{Model: m}
	case *Typed:
		return protocol.MJTB{Model: m}
	default:
		return protocol.SameCost{Model: model}
	}
}

// FaultConfig is a deterministic fault-injection plan for the
// message-passing runtime: per-link message drop probability, duplication,
// bounded latency jitter, and a machine crash/recovery schedule. The same
// options seed always yields the same fault schedule.
type FaultConfig = faults.Config

// Crash is one scheduled machine failure of a FaultConfig.
type Crash = faults.Crash

// LostJob is one entry of a run's lost-jobs ledger: the job was on the
// machine when it crashed under a plan that loses jobs.
type LostJob = netsim.LostJob

// RandomCrashes generates a valid random crash schedule (a pure function
// of its arguments): count crashes at uniform times in [1, horizon] on
// uniform machines, each down for about meanDown time units and losing its
// jobs with probability loseProb. Overlapping candidates are discarded.
func RandomCrashes(seed uint64, machines int, horizon int64, count int, meanDown int64, loseProb float64) []Crash {
	return faults.RandomCrashes(seed, machines, horizon, count, meanDown, loseProb)
}

// MessagePassingOptions parameterizes DLB2CMessagePassing.
type MessagePassingOptions struct {
	// Seed makes the run reproducible.
	Seed uint64
	// Latency is the one-way message delay in virtual time units (≥ 1).
	Latency int64
	// Period is the mean time between balancing attempts per machine.
	Period int64
	// Horizon is the virtual-time budget.
	Horizon int64
	// Faults, when non-nil, injects the given faults; the handshake then
	// rides session ids, timeout leases and retransmission so no loss,
	// duplicate or crash can wedge a machine or duplicate a job. Nil runs
	// the perfect network.
	Faults *FaultConfig
	// Metrics, when non-nil, receives the netsim_* instruments (sent/
	// delivered message counts by kind, fault and retransmission counters,
	// latency/handshake/retry histograms).
	Metrics *MetricsRegistry
	// Trace, when non-nil, receives message send/receive/drop, session
	// start/end and crash/recovery events on the virtual clock.
	Trace *EventTrace
	// Spans, when non-nil, collects the causal span trace: one session
	// span per balancing handshake (each side closes its half, Lamport
	// clocks order the closes) and fault point records — drops,
	// retransmissions, timeouts, crashes — parented to the session that
	// suffered them. This is the input of `hetlb explain`'s fault
	// attribution.
	Spans *SpanTrace
	// Timeline, when non-nil, records the convergence trajectory on the
	// virtual clock: Cmax, imbalance, cumulative jobs moved and messages
	// sent, one point per makespan sample.
	Timeline *Timeline
}

// MessagePassingResult reports a DLB2CMessagePassing run.
type MessagePassingResult struct {
	// Assignment is the final placement. Jobs lost to crashes stay
	// unassigned.
	Assignment *Assignment
	// Makespan is its Cmax.
	Makespan Cost
	// Sessions, Rejections and Messages count protocol activity: on a
	// fault-free network each completed balancing handshake costs three
	// delivered messages and each rejected request two, and Messages ==
	// Sent. Messages counts deliveries.
	Sessions, Rejections, Messages int
	// Sent counts transmissions (retransmissions included); Dropped,
	// Timeouts and Retransmissions summarize degradation under faults.
	Sent, Dropped, Timeouts, Retransmissions int
	// Crashes and Recoveries count machine churn; Lost is the ledger of
	// jobs destroyed by crashes.
	Crashes, Recoveries int
	Lost                []LostJob
}

// DLB2CMessagePassing runs DLB2C with no shared state at all: machines are
// independent actors exchanging REQUEST/OFFER/COMMIT messages over a
// simulated network with latency — the paper's literal system model
// ("the machines do not share memory"). Use it to study how communication
// delay stretches convergence; for plain simulations prefer DLB2C.
func DLB2CMessagePassing(model Clustered, initial *Assignment, opt MessagePassingOptions) (MessagePassingResult, error) {
	cfg := netsim.Config{
		Seed:     opt.Seed,
		Latency:  opt.Latency,
		Period:   opt.Period,
		Horizon:  opt.Horizon,
		Faults:   opt.Faults,
		Tracer:   opt.Trace,
		Spans:    opt.Spans,
		Timeline: opt.Timeline,
	}
	if opt.Metrics != nil {
		cfg.Metrics = netsim.NewMetrics(opt.Metrics)
	}
	sim, err := netsim.New(model, protocol.DLB2C{Model: model}, initial, cfg)
	if err != nil {
		return MessagePassingResult{}, err
	}
	st := sim.Run()
	if err := sim.ValidateConservation(); err != nil {
		return MessagePassingResult{}, err
	}
	a, err := sim.Placement()
	if err != nil {
		return MessagePassingResult{}, err
	}
	return MessagePassingResult{
		Assignment:      a,
		Makespan:        a.Makespan(),
		Sessions:        st.Sessions,
		Rejections:      st.Rejections,
		Messages:        st.Delivered,
		Sent:            st.Sent,
		Dropped:         st.Dropped,
		Timeouts:        st.Timeouts,
		Retransmissions: st.Retransmissions,
		Crashes:         st.Crashes,
		Recoveries:      st.Recoveries,
		Lost:            st.Lost,
	}, nil
}
