// Root benchmark harness: one benchmark per table and figure of the paper's
// evaluation (see DESIGN.md §4). Each benchmark runs a reduced-but-faithful
// version of its experiment and reports the figure's headline quantity as a
// custom metric, so `go test -bench=.` regenerates the shape of the whole
// evaluation quickly; cmd/figures runs the full-scale versions.
package hetlb_test

import (
	"testing"

	"hetlb"
	"hetlb/internal/core"
	"hetlb/internal/experiments"
	"hetlb/internal/harness"
)

// BenchmarkTableI — Theorem 1: work stealing on the trap instance. Reports
// the achieved/optimal ratio at n=1000 (grows linearly in n; OPT stays 2).
func BenchmarkTableI(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows := experiments.TableI([]core.Cost{10, 100, 1000}, uint64(i))
		ratio = rows[len(rows)-1].Ratio
	}
	b.ReportMetric(ratio, "ratio@n=1000")
}

// BenchmarkTableII — Proposition 2: the pairwise-optimal trap. Reports the
// trap/OPT ratio at n=1000.
func BenchmarkTableII(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows := experiments.TableII([]core.Cost{10, 100, 1000})
		last := rows[len(rows)-1]
		ratio = float64(last.TrapMakespan) / float64(last.Opt)
	}
	b.ReportMetric(ratio, "ratio@n=1000")
}

// BenchmarkFigure1 — Proposition 8: exhaustive exploration of the cycling
// instance. Reports the reachable state count (stable count is asserted 0).
func BenchmarkFigure1(b *testing.B) {
	var states int
	for i := 0; i < b.N; i++ {
		r := experiments.Figure1()
		if !r.ProvenNonConvergent {
			b.Fatal("cycle instance regressed")
		}
		states = r.ReachableStates
	}
	b.ReportMetric(float64(states), "reachable-states")
}

// BenchmarkFigure2a — stationary makespan distribution, m=6, pmax ∈ {2,4}
// (pmax 8 and 16 are the full-scale cmd/figures run). Reports the mode of
// the pmax=4 curve in normalized deviation units (the paper observes 0.5).
func BenchmarkFigure2a(b *testing.B) {
	var mode float64
	for i := 0; i < b.N; i++ {
		curves, err := experiments.Figure2a([]int64{2, 4})
		if err != nil {
			b.Fatal(err)
		}
		mode = curves[1].Mode
	}
	b.ReportMetric(mode, "mode@pmax=4")
}

// BenchmarkFigure2b — stationary distribution, pmax=4, m ∈ {3..6}. Reports
// the tail mass beyond 1.5·pmax for m=6 (the paper observes ≈0).
func BenchmarkFigure2b(b *testing.B) {
	var tail float64
	for i := 0; i < b.N; i++ {
		curves, err := experiments.Figure2b([]int{3, 4, 5, 6})
		if err != nil {
			b.Fatal(err)
		}
		tail = curves[len(curves)-1].TailBeyond15
	}
	b.ReportMetric(tail, "tail>1.5@m=6")
}

// BenchmarkFigure3 — equilibrium makespan distributions, heterogeneous vs
// homogeneous (reduced systems). Reports the mean normalized deviation of
// each, which the paper observes to be low and similar.
func BenchmarkFigure3(b *testing.B) {
	cfgs := []experiments.SimConfig{
		experiments.PaperHetero().Reduced(),
		experiments.PaperHomogeneous().Reduced(),
	}
	var het, hom float64
	for i := 0; i < b.N; i++ {
		res := experiments.Figure3(cfgs)
		het, hom = res[0].Summary.Mean, res[1].Summary.Mean
	}
	b.ReportMetric(het, "mean-dev-hetero")
	b.ReportMetric(hom, "mean-dev-homog")
}

// BenchmarkFigure3Harness measures the replication harness itself on a
// paper-sized Figure 3 configuration (64+32 machines, 768 jobs, 8 runs):
// Sequential is the Parallelism=1 baseline, Parallel4 the 4-worker pool.
// Both produce identical results (see internal/experiments determinism
// tests); the sub-benchmark ratio is the harness's speedup.
func BenchmarkFigure3Harness(b *testing.B) {
	cfg := experiments.PaperHetero()
	cfg.Runs = 8
	cfgs := []experiments.SimConfig{cfg}
	run := func(b *testing.B, parallelism int) {
		var mean float64
		for i := 0; i < b.N; i++ {
			res, err := experiments.Figure3With(harness.Options{Parallelism: parallelism}, cfgs)
			if err != nil {
				b.Fatal(err)
			}
			mean = res[0].Summary.Mean
		}
		b.ReportMetric(mean, "mean-dev")
	}
	b.Run("Sequential", func(b *testing.B) { run(b, 1) })
	b.Run("Parallel4", func(b *testing.B) { run(b, 4) })
}

// BenchmarkFigure4 — makespan trajectories. Reports the equilibrium
// oscillation amplitude (normalized by the centralized makespan) of a
// heterogeneous run: small per the paper ("variations stay close to the
// minimum").
func BenchmarkFigure4(b *testing.B) {
	cfgs := []experiments.SimConfig{experiments.PaperHetero().Reduced()}
	var osc float64
	for i := 0; i < b.N; i++ {
		runs := experiments.Figure4(cfgs, 2)
		osc = runs[0].FinalOscillation
	}
	b.ReportMetric(osc, "oscillation")
}

// BenchmarkFigure5 — exchanges per machine to first reach 1.5×CLB2C.
// Reports the 90th percentile (the paper observes ≈5 at full scale).
func BenchmarkFigure5(b *testing.B) {
	cfgs := []experiments.SimConfig{experiments.PaperHetero().Reduced()}
	var p90 float64
	for i := 0; i < b.N; i++ {
		res := experiments.Figure5(cfgs, 1.5)
		p90 = res[0].Summary.P90
	}
	b.ReportMetric(p90, "p90-exchanges")
}

// --- Ablation benches (DESIGN.md §5) -------------------------------------

// BenchmarkAblationSelectionUniform/Sweep compare pair-selection policies by
// the makespan reached after a fixed exchange budget on the same instances.
func BenchmarkAblationSelectionUniform(b *testing.B) {
	benchSelection(b, false)
}

// BenchmarkAblationSelectionSweep is the round-robin-initiator variant.
func BenchmarkAblationSelectionSweep(b *testing.B) {
	benchSelection(b, true)
}

func benchSelection(b *testing.B, sweep bool) {
	// Uses the public API plus internal gossip selection; constructed here
	// to keep the ablation self-contained.
	p0 := make([]hetlb.Cost, 192)
	p1 := make([]hetlb.Cost, 192)
	for j := range p0 {
		p0[j] = hetlb.Cost(1 + (j*7919)%1000)
		p1[j] = hetlb.Cost(1 + (j*104729)%1000)
	}
	tc, err := hetlb.NewTwoCluster(16, 8, p0, p1)
	if err != nil {
		b.Fatal(err)
	}
	var final hetlb.Cost
	for i := 0; i < b.N; i++ {
		final = runSelectionAblation(tc, uint64(i), sweep)
	}
	b.ReportMetric(float64(final)/hetlb.TwoClusterLowerBound(tc), "cmax/lb")
}

// BenchmarkConcurrentVsSequential measures the concurrent runtime against
// the sequential engine at the same exchange budget (DESIGN.md §5).
func BenchmarkEngineSequential(b *testing.B) {
	tc := ablationInstance(b)
	for i := 0; i < b.N; i++ {
		initial := hetlb.RandomInitial(tc, uint64(i))
		if _, err := hetlb.DLB2C(tc, initial, hetlb.RunOptions{Seed: uint64(i), MaxExchanges: 24 * 10}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineConcurrent is the goroutine-per-machine counterpart.
func BenchmarkEngineConcurrent(b *testing.B) {
	tc := ablationInstance(b)
	for i := 0; i < b.N; i++ {
		initial := hetlb.RandomInitial(tc, uint64(i))
		if _, err := hetlb.DLB2C(tc, initial, hetlb.RunOptions{
			Seed: uint64(i), MaxExchanges: 24 * 10, Concurrent: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func ablationInstance(b *testing.B) *hetlb.TwoCluster {
	b.Helper()
	p0 := make([]hetlb.Cost, 192)
	p1 := make([]hetlb.Cost, 192)
	for j := range p0 {
		p0[j] = hetlb.Cost(1 + (j*6151)%1000)
		p1[j] = hetlb.Cost(1 + (j*12289)%1000)
	}
	tc, err := hetlb.NewTwoCluster(16, 8, p0, p1)
	if err != nil {
		b.Fatal(err)
	}
	return tc
}

// BenchmarkAblationMovesRebuild / MinMove quantify the paper's "minimize
// the number of tasks exchanged" future work: same budget, same instances;
// the metric is total job migrations plus final quality.
func BenchmarkAblationMovesRebuild(b *testing.B) {
	benchMoves(b, false)
}

// BenchmarkAblationMovesMinMove is the movement-minimizing variant.
func BenchmarkAblationMovesMinMove(b *testing.B) {
	benchMoves(b, true)
}

// BenchmarkCentralizedReferences compares the three centralized algorithms
// on the same two-cluster instance: the paper's CLB2C, the LST LP-rounding
// 2-approximation it cites, and the ECT greedy. Metrics are each
// algorithm's Cmax normalized by the fractional lower bound.
func BenchmarkCentralizedReferences(b *testing.B) {
	p0 := make([]hetlb.Cost, 96)
	p1 := make([]hetlb.Cost, 96)
	for j := range p0 {
		p0[j] = hetlb.Cost(1 + (j*3571)%500)
		p1[j] = hetlb.Cost(1 + (j*9173)%500)
	}
	tc, err := hetlb.NewTwoCluster(6, 3, p0, p1)
	if err != nil {
		b.Fatal(err)
	}
	lb := hetlb.TwoClusterLowerBound(tc)
	var clb, lst, ect hetlb.Cost
	for i := 0; i < b.N; i++ {
		clb = hetlb.CLB2C(tc).Makespan()
		a, _, err := hetlb.LST(tc)
		if err != nil {
			b.Fatal(err)
		}
		lst = a.Makespan()
		ect = hetlb.ListScheduling(tc).Makespan()
	}
	b.ReportMetric(float64(clb)/lb, "clb2c/lb")
	b.ReportMetric(float64(lst)/lb, "lst/lb")
	b.ReportMetric(float64(ect)/lb, "ect/lb")
}

// BenchmarkMessagePassingLatency measures how network latency stretches the
// message-passing runtime's convergence (final Cmax/LB at a fixed horizon).
func BenchmarkMessagePassingLatency1(b *testing.B) { benchNetLatency(b, 1) }

// BenchmarkMessagePassingLatency20 is the high-latency variant.
func BenchmarkMessagePassingLatency20(b *testing.B) { benchNetLatency(b, 20) }

// BenchmarkGossipBare / BenchmarkGossipObserved quantify the cost of full
// observability (metrics registry + event trace) on the sequential engine.
// The record path is allocation-free by construction, so the gap should stay
// within a few percent; the measured number is documented in README.md.
func BenchmarkGossipBare(b *testing.B) {
	benchGossipObserved(b, false)
}

// BenchmarkGossipObserved is the fully instrumented variant.
func BenchmarkGossipObserved(b *testing.B) {
	benchGossipObserved(b, true)
}

func benchGossipObserved(b *testing.B, observed bool) {
	tc := ablationInstance(b)
	var reg *hetlb.MetricsRegistry
	var tr *hetlb.EventTrace
	if observed {
		reg = hetlb.NewMetricsRegistry()
		tr = hetlb.NewEventTrace(1 << 16)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		initial := hetlb.RandomInitial(tc, uint64(i))
		if _, err := hetlb.DLB2C(tc, initial, hetlb.RunOptions{
			Seed: uint64(i), MaxExchanges: 24 * 10, Metrics: reg, Trace: tr,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
