# Developer entry points; CI (.github/workflows/ci.yml) runs `make check`.

GO ?= go

.PHONY: check vet lint lint-stats build test race race-shard bench bench-smoke overhead-guard bench-scale chaos chaos-shard

check: lint build test race

vet:
	$(GO) vet ./...

# Tier-1 static analysis: gofmt, go vet, and hetlbvet — the repo's own
# analyzer suite that mechanically enforces the determinism, RNG-discipline,
# noalloc, and stats-safety invariants (DESIGN.md §11) plus the
# interprocedural flow checks (seedflow, lockshape, phasefreeze; DESIGN.md
# §16). Suppressions are //hetlb: comments with a reason; unused ones fail
# the build.
lint: vet
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi
	$(GO) run ./cmd/hetlbvet -flow ./...

# Per-analyzer finding and suppression counts over the whole tree. Same
# vet-style exit as lint; the counts make it visible where the suppression
# debt lives.
lint-stats:
	$(GO) run ./cmd/hetlbvet -flow -stats ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrent runtime, the observability layer and the replication
# harness are the packages with real cross-goroutine traffic; keep them
# under the race detector. The experiments package rides along because its
# determinism tests drive every figure's scaled-down driver through the
# harness at Parallelism 4 and GOMAXPROCS. The analysis suite rides along
# too: its loader caches packages behind a plain map, so racing the tests
# documents that each test process loads sequentially.
race:
	$(GO) test -race ./internal/distrun/... ./internal/obs/... ./internal/gossip/... \
		./internal/shardgossip/... \
		./internal/harness/... ./internal/experiments/... ./internal/analysis/...

bench:
	$(GO) test -bench=. -benchmem ./...

# One iteration of every benchmark: catches benchmarks that no longer
# compile or panic without paying for real measurement. CI runs this.
# -short lets the 100k/10M scale benchmark opt out; its CI-sized twin
# (BenchmarkShardedStepScale) still runs and covers the same code path.
bench-smoke:
	$(GO) test -run='^$$' -short -bench=. -benchtime=1x -benchmem ./...

# Observability must be free when it is off: the tracing-disabled step path
# may not drift more than TOLERANCE above BENCH_3.json's recorded 'after'
# column, and may never allocate. BENCH_6.json records what tracing costs
# when it is on. The default 2% assumes the baseline's machine class; on
# other hardware run `make overhead-guard TOLERANCE=0.25` or re-record.
TOLERANCE ?= 0.02
overhead-guard:
	$(GO) test -run='^$$' -bench='^BenchmarkEngineStep$$' -benchmem -benchtime=300ms \
		./internal/gossip/ | tee /tmp/benchguard-step.txt
	$(GO) run ./cmd/benchguard -baseline BENCH_3.json -tolerance $(TOLERANCE) \
		-in /tmp/benchguard-step.txt

# The sharded engine's CI-sized scale guard, two gates: (1) the live
# BenchmarkShardedStepScale run (m=2048, n=16384 — same code path as the
# 100k/10M headline run) may not drift more than SCALE_TOLERANCE above
# BENCH_8.json's 'guard' column; (2) the recorded BENCH_8.json guard column
# itself may not regress more than COMPARE_TOLERANCE against BENCH_7.json's
# (benchguard -against; this pins the PR-8 epoch-throughput claim — after
# the reduction/pipeline/delta work, re-recording slower numbers fails the
# build). Tolerances are wide because epoch cost depends on how balanced the
# schedule currently is, which makes these benchmarks noisier than the
# per-step guards. The full 100k/10M curve is re-recorded with:
#   go test -run='^$' -bench='BenchmarkShardedStep$' -benchmem -benchtime=3x \
#       -timeout 50m ./internal/shardgossip/
SCALE_TOLERANCE ?= 0.50
COMPARE_TOLERANCE ?= 0.25
FAULT_TOLERANCE ?= 0.05
bench-scale:
	$(GO) test -run='^$$' -bench='BenchmarkShardedStepScale' -benchmem -benchtime=300ms \
		./internal/shardgossip/ | tee /tmp/benchguard-scale.txt
	$(GO) run ./cmd/benchguard -baseline BENCH_8.json -bench BenchmarkShardedStepScale \
		-column guard -tolerance $(SCALE_TOLERANCE) -in /tmp/benchguard-scale.txt
	$(GO) run ./cmd/benchguard -baseline BENCH_7.json -against BENCH_8.json \
		-column guard -tolerance $(COMPARE_TOLERANCE)
	$(GO) run ./cmd/benchguard -baseline BENCH_8.json -against BENCH_9.json \
		-column guard -tolerance $(FAULT_TOLERANCE)

# The sharded engine's worker/scheduler handoff under the race detector at
# pinned low parallelism: GOMAXPROCS 1 and 2 force different interleavings
# of the pipelined draw, the session fan-out and the dirty-block rescans
# than the native run in `race`. CI runs this as a matrix leg.
race-shard:
	GOMAXPROCS=1 $(GO) test -race -count=1 ./internal/shardgossip/...
	GOMAXPROCS=2 $(GO) test -race -count=1 ./internal/shardgossip/...

# The chaos property suite under the race detector: 100+ seeded random
# fault plans (loss, duplication, crashes) must all drain without deadlock
# and conserve every job. The -timeout is the watchdog — a wedged handshake
# shows up as a hang, not a silent pass. The suite runs twice: at the
# host's native GOMAXPROCS and pinned to 2, because scheduler interleavings
# (and therefore the bugs the detector can observe) differ between the two.
chaos:
	$(GO) test -race -run 'Chaos|Fault|Crash|Lossy' -timeout 5m \
		./internal/netsim/... ./internal/faults/... ./internal/experiments/...
	GOMAXPROCS=2 $(GO) test -race -count=1 -run 'Chaos|Fault|Crash|Lossy' -timeout 5m \
		./internal/netsim/... ./internal/faults/... ./internal/experiments/...

# The sharded engine's chaos suite under the race detector at pinned
# GOMAXPROCS 1 and 2: 128 random crash/loss plans, each run at S in
# {1, 2, 4}, asserted bit-identical with job conservation after drain, plus
# the latch-reopen and degraded-observability regressions. Low parallelism
# forces the coordinator's fault transitions against the pipelined draw and
# the session fan-out in orders the native race leg never schedules. The
# -timeout is the watchdog: a fault transition that wedges an epoch barrier
# shows up as a hang, not a pass. CI runs this as its own matrix job.
chaos-shard:
	GOMAXPROCS=1 $(GO) test -race -count=1 -run 'Chaos|Fault|Crash|Latch' -timeout 10m \
		./internal/shardgossip/... ./internal/experiments/...
	GOMAXPROCS=2 $(GO) test -race -count=1 -run 'Chaos|Fault|Crash|Latch' -timeout 10m \
		./internal/shardgossip/... ./internal/experiments/...
