# Developer entry points; CI (.github/workflows/ci.yml) runs `make check`.

GO ?= go

.PHONY: check vet build test race bench bench-smoke

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrent runtime, the observability layer and the replication
# harness are the packages with real cross-goroutine traffic; keep them
# under the race detector. The experiments package rides along because its
# determinism tests drive every figure's scaled-down driver through the
# harness at Parallelism 4 and GOMAXPROCS.
race:
	$(GO) test -race ./internal/distrun/... ./internal/obs/... ./internal/gossip/... \
		./internal/harness/... ./internal/experiments/...

bench:
	$(GO) test -bench=. -benchmem ./...

# One iteration of every benchmark: catches benchmarks that no longer
# compile or panic without paying for real measurement. CI runs this.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x -benchmem ./...
