# Developer entry points; CI (.github/workflows/ci.yml) runs `make check`.

GO ?= go

.PHONY: check vet build test race bench

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrent runtime and the observability layer are the packages with
# real cross-goroutine traffic; keep them under the race detector.
race:
	$(GO) test -race ./internal/distrun/... ./internal/obs/... ./internal/gossip/...

bench:
	$(GO) test -bench=. -benchmem ./...
