# Developer entry points; CI (.github/workflows/ci.yml) runs `make check`.

GO ?= go

.PHONY: check vet build test race bench bench-smoke chaos

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrent runtime, the observability layer and the replication
# harness are the packages with real cross-goroutine traffic; keep them
# under the race detector. The experiments package rides along because its
# determinism tests drive every figure's scaled-down driver through the
# harness at Parallelism 4 and GOMAXPROCS.
race:
	$(GO) test -race ./internal/distrun/... ./internal/obs/... ./internal/gossip/... \
		./internal/harness/... ./internal/experiments/...

bench:
	$(GO) test -bench=. -benchmem ./...

# One iteration of every benchmark: catches benchmarks that no longer
# compile or panic without paying for real measurement. CI runs this.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x -benchmem ./...

# The chaos property suite under the race detector: 100+ seeded random
# fault plans (loss, duplication, crashes) must all drain without deadlock
# and conserve every job. The -timeout is the watchdog — a wedged handshake
# shows up as a hang, not a silent pass.
chaos:
	$(GO) test -race -run 'Chaos|Fault|Crash|Lossy' -timeout 5m \
		./internal/netsim/... ./internal/faults/... ./internal/experiments/...
