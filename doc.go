// Package hetlb is a library for distributed (a priori) load balancing on
// fully heterogeneous machines. It reproduces, as a usable system, the
// algorithms and analyses of
//
//	N. Cheriere and E. Saule,
//	"Considerations on Distributed Load Balancing for Fully Heterogeneous
//	Machines: Two Particular Cases", IPDPS Workshops (HCW), 2015.
//
// # Problem
//
// n independent, sequential, non-preemptible jobs must be partitioned onto
// m machines to minimize the makespan (R||Cmax). In the decentralized
// setting the jobs start with an arbitrary distribution and machines
// repeatedly pick random peers and rebalance pairwise, before executing
// anything (a priori balancing) — in contrast to work stealing, which only
// moves work after a machine runs dry and can be arbitrarily bad on
// unrelated machines (Theorem 1 of the paper; see WorkStealing and the
// Table I trap instance).
//
// # Algorithms
//
//   - OJTB: pairwise optimal balancing for one job type; converges to the
//     optimum (Lemma 4).
//   - MJTB: per-type balancing for k job types; converges to a
//     k-approximation (Theorem 5).
//   - CLB2C: centralized greedy 2-approximation for two clusters of
//     identical machines (Theorem 6).
//   - DLB2C: decentralized CLB2C; stable schedules are 2-approximations
//     (Theorem 7) but stability is not guaranteed (Proposition 8), in which
//     case the dynamic equilibrium keeps the makespan low (Section VII).
//
// # Quick start
//
//	model, _ := hetlb.NewTwoCluster(64, 32, costsCPU, costsGPU)
//	initial := hetlb.RandomInitial(model, 42)
//	res, _ := hetlb.DLB2C(model, initial, hetlb.RunOptions{
//		Seed:         1,
//		MaxExchanges: 64 * 5,
//	})
//	fmt.Println(res.Makespan, res.Converged)
//
// # Replication
//
// Monte-Carlo studies over the library run through Replicate, a
// deterministic parallel replication harness: each replication draws all
// randomness from a substream keyed by (seed, index), so the results are
// bit-identical for every worker count. The experiment drivers behind the
// paper's tables and figures are built on the same runner.
//
// The executables under cmd/ regenerate every table and figure of the
// paper's evaluation ("hetlb figures" / cmd/figures run it end to end,
// in parallel with --parallel); see DESIGN.md and EXPERIMENTS.md.
package hetlb
