module hetlb

go 1.22
