package hetlb

import (
	"fmt"

	"hetlb/internal/central"
	"hetlb/internal/core"
	"hetlb/internal/distrun"
	"hetlb/internal/exact"
	"hetlb/internal/gossip"
	"hetlb/internal/protocol"
	"hetlb/internal/rng"
	"hetlb/internal/shardgossip"
	"hetlb/internal/worksteal"
)

// Cost is a processing time in abstract integer time units.
type Cost = core.Cost

// Infinite marks a job that cannot run on a machine.
const Infinite = core.Infinite

// CostModel exposes the processing-time matrix p[machine][job] of an
// instance; see the New* constructors for the structured special cases.
type CostModel = core.CostModel

// Clustered is a cost model whose machines form two clusters of identical
// machines (the Section VI setting; required by CLB2C and DLB2C).
type Clustered = core.Clustered

// Assignment is a partition of jobs onto machines with O(1) load queries.
type Assignment = core.Assignment

// Dense, Identical, Related, Typed and TwoCluster are the instance kinds.
type (
	Dense      = core.Dense
	Identical  = core.Identical
	Related    = core.Related
	Typed      = core.Typed
	TwoCluster = core.TwoCluster
)

// NewDense builds a fully unrelated instance from an explicit cost matrix
// p[machine][job].
func NewDense(p [][]Cost) (*Dense, error) { return core.NewDense(p) }

// NewIdentical builds an identical-machines instance: m machines, one size
// per job.
func NewIdentical(m int, sizes []Cost) (*Identical, error) { return core.NewIdentical(m, sizes) }

// NewRelated builds a uniformly-related instance with integer speeds.
func NewRelated(speeds []int64, sizes []Cost) (*Related, error) {
	return core.NewRelated(speeds, sizes)
}

// NewTyped builds a typed-jobs instance: p[machine][type] plus each job's
// type.
func NewTyped(p [][]Cost, typeOf []int) (*Typed, error) { return core.NewTyped(p, typeOf) }

// NewTwoCluster builds a two-cluster instance: m1+m2 machines, per-cluster
// job costs.
func NewTwoCluster(m1, m2 int, p0, p1 []Cost) (*TwoCluster, error) {
	return core.NewTwoCluster(m1, m2, p0, p1)
}

// NewAssignment returns an empty assignment over a model.
func NewAssignment(m CostModel) *Assignment { return core.NewAssignment(m) }

// RoundRobin distributes all jobs cyclically — a simple deterministic
// initial distribution.
func RoundRobin(m CostModel) *Assignment { return core.RoundRobin(m) }

// RandomInitial places each job on a uniformly random machine, the
// "arbitrary initial distribution" of the decentralized setting.
func RandomInitial(m CostModel, seed uint64) *Assignment {
	gen := rng.New(seed)
	a := core.NewAssignment(m)
	for j := 0; j < m.NumJobs(); j++ {
		a.Assign(j, gen.Intn(m.NumMachines()))
	}
	return a
}

// LowerBound returns a generic lower bound on the optimal makespan.
func LowerBound(m CostModel) Cost { return core.LowerBound(m) }

// TwoClusterLowerBound returns the fractional pooled-machines lower bound
// for a two-cluster instance.
func TwoClusterLowerBound(c Clustered) float64 { return core.TwoClusterFractionalLB(c) }

// SolveExact computes the optimal makespan by branch and bound; practical
// for small instances only (n ≲ 14). The boolean reports whether optimality
// was proven within the node budget.
func SolveExact(m CostModel, maxNodes int64) (Cost, *Assignment, bool) {
	res := exact.SolveBudget(m, maxNodes)
	return res.Opt, res.Assignment, res.Proven
}

// ListScheduling greedily schedules all jobs on the earliest-completing
// machine (Graham's List Scheduling on identical machines).
func ListScheduling(m CostModel) *Assignment { return central.ListScheduling(m, nil) }

// LPT runs Largest Processing Time first on identical machines
// (4/3-approximation).
func LPT(id *Identical) *Assignment { return central.LPT(id) }

// CLB2C runs the paper's centralized two-cluster 2-approximation
// (Algorithm 5, Theorem 6) over all jobs of the model.
func CLB2C(c Clustered) *Assignment { return central.RunCLB2C(c) }

// LST runs the Lenstra–Shmoys–Tardos LP-rounding 2-approximation for
// general unrelated machines (the centralized state of the art the paper
// cites). It returns the schedule and the LP deadline T*, which is itself a
// lower bound on the optimal makespan. Dense LP: small and medium instances
// only.
func LST(m CostModel) (*Assignment, Cost, error) {
	res, err := central.LST(m)
	if err != nil {
		return nil, 0, err
	}
	return res.Assignment, res.Deadline, nil
}

// RunOptions parameterizes the decentralized protocols.
type RunOptions struct {
	// Seed makes the run reproducible.
	Seed uint64
	// MaxExchanges bounds the number of pairwise balancing operations
	// (required: the protocols may never converge, Proposition 8).
	MaxExchanges int
	// DetectStability stops a sequential run early at a verified stable
	// schedule. Ignored when Concurrent is set (use QuiesceStreak there).
	DetectStability bool
	// Concurrent runs one goroutine per machine (the operational model of
	// the paper) instead of the sequential reproducible engine.
	Concurrent bool
	// Shards >= 1 runs the sharded epoch engine: machines are partitioned
	// into that many shards stepped by parallel workers on a per-epoch
	// random perfect matching. AutoShards (-1) also selects the sharded
	// engine but lets it pick the shard count (one per available core,
	// clamped to the machine count). Results are bit-identical for any
	// shard count, so the choice only affects parallelism. The zero
	// default keeps the sequential engine, whose uniform-initiator
	// schedule differs from the sharded engine's matching schedule.
	// Incompatible with Concurrent and with Trace (the sharded engine
	// records spans and timelines, not events).
	Shards int
	// QuiesceStreak (concurrent only) stops early once every machine saw
	// this many consecutive unchanged sessions; 0 disables.
	QuiesceStreak int64
	// Metrics, when non-nil, receives the run's counters and histograms
	// (gossip_* for sequential runs, distrun_* for concurrent ones).
	Metrics *MetricsRegistry
	// Trace, when non-nil, receives one pair-selected event per exchange
	// (and makespan samples on sequential runs).
	Trace *EventTrace
	// Spans, when non-nil, collects the run's causal span trace: one
	// KindRun span plus one step span per effective exchange (sequential)
	// or one session span per balancing session (concurrent).
	Spans *SpanTrace
	// Timeline, when non-nil, records the convergence trajectory: one
	// point per step (sequential: Cmax, imbalance, cumulative moves) or per
	// session (concurrent: cumulative moves only).
	Timeline *Timeline
	// Faults, when non-nil and non-zero, arms a deterministic crash/recovery
	// schedule against the run. Sharded runs only (Shards >= 1 or
	// AutoShards): virtual time is the epoch index, a pair touching a down
	// machine is voided for the epoch, and crashed machines lose or freeze
	// their jobs per each Crash's LoseJobs policy. Message-level faults
	// (drop/dup/jitter) are rejected — the epoch engine exchanges no
	// messages; use DLB2CMessagePassing for those. Results stay
	// bit-identical at any shard count.
	Faults *FaultConfig
}

// AutoShards, as RunOptions.Shards, selects the sharded epoch engine with an
// automatically chosen shard count (one shard per available core, clamped to
// the machine count). The choice never affects results, only parallelism.
const AutoShards = -1

// Result is the outcome of a decentralized balancing run.
type Result struct {
	// Assignment is the final schedule. For sequential runs it is the
	// same object that was passed in (mutated in place); for concurrent
	// runs it is a fresh assignment.
	Assignment *Assignment
	// Makespan is the final Cmax.
	Makespan Cost
	// Exchanges is the number of pairwise balancing operations performed.
	Exchanges int
	// Converged reports whether the final schedule is a verified fixed
	// point of the protocol.
	Converged bool
	// Crashes, Recoveries, JobsLost, JobsRehosted and Voided summarize an
	// armed fault plan's effect on a sharded run (all zero without one):
	// transitions applied, jobs permanently lost / re-hosted on recovery,
	// and sessions voided because a participant was down. Jobs lost to
	// LoseJobs crashes stay unassigned in Assignment (Assignment.Unplaced
	// enumerates them).
	Crashes, Recoveries, JobsLost, JobsRehosted, Voided int
}

// runProtocol drives a protocol either sequentially or concurrently.
func runProtocol(p protocol.Protocol, initial *Assignment, opt RunOptions) (Result, error) {
	if opt.MaxExchanges <= 0 {
		return Result{}, fmt.Errorf("hetlb: RunOptions.MaxExchanges must be positive")
	}
	if !initial.Complete() {
		return Result{}, fmt.Errorf("hetlb: initial assignment must place every job")
	}
	if opt.Shards < AutoShards {
		return Result{}, fmt.Errorf("hetlb: RunOptions.Shards = %d; want a positive count, 0 (sequential) or AutoShards", opt.Shards)
	}
	if opt.Shards >= 1 || opt.Shards == AutoShards {
		if opt.Concurrent {
			return Result{}, fmt.Errorf("hetlb: RunOptions.Shards and Concurrent are mutually exclusive")
		}
		if opt.Trace != nil {
			return Result{}, fmt.Errorf("hetlb: RunOptions.Trace is not supported with Shards (use Spans or Timeline)")
		}
		cfg := shardgossip.Config{
			Seed:     opt.Seed,
			Shards:   opt.Shards,
			Spans:    opt.Spans,
			Timeline: opt.Timeline,
			Faults:   opt.Faults,
		}
		if opt.Shards == AutoShards {
			cfg.Shards = 0 // shardgossip's zero value is its auto heuristic
		}
		if opt.Metrics != nil {
			cfg.Metrics = shardgossip.NewMetrics(opt.Metrics)
		}
		e, err := shardgossip.New(p, initial, cfg)
		if err != nil {
			return Result{}, err
		}
		defer e.Close()
		r := e.Run(opt.MaxExchanges, opt.DetectStability)
		return Result{
			Assignment:   r.Assignment,
			Makespan:     r.FinalMakespan,
			Exchanges:    r.Steps,
			Converged:    r.Converged,
			Crashes:      r.Crashes,
			Recoveries:   r.Recoveries,
			JobsLost:     r.JobsLost,
			JobsRehosted: r.JobsRehosted,
			Voided:       r.Voided,
		}, nil
	}
	if opt.Faults != nil && !opt.Faults.Zero() {
		return Result{}, fmt.Errorf("hetlb: RunOptions.Faults requires the sharded engine (set Shards; the message-passing runtime takes faults via MessagePassingOptions)")
	}
	if opt.Concurrent {
		cfg := distrun.Config{
			Seed:          opt.Seed,
			MaxSteps:      int64(opt.MaxExchanges),
			QuiesceStreak: opt.QuiesceStreak,
			Tracer:        opt.Trace,
			Spans:         opt.Spans,
			Timeline:      opt.Timeline,
		}
		if opt.Metrics != nil {
			cfg.Metrics = distrun.NewMetrics(opt.Metrics, initial.Model().NumMachines())
		}
		res, err := distrun.Run(p, initial, cfg)
		if err != nil {
			return Result{}, err
		}
		return Result{
			Assignment: res.Assignment,
			Makespan:   res.Assignment.Makespan(),
			Exchanges:  int(res.Steps),
			Converged:  res.Converged,
		}, nil
	}
	cfg := gossip.Config{Seed: opt.Seed, Tracer: opt.Trace, Spans: opt.Spans, Timeline: opt.Timeline}
	if opt.Metrics != nil {
		cfg.Metrics = gossip.NewMetrics(opt.Metrics)
	}
	e := gossip.New(p, initial, cfg)
	r := e.Run(opt.MaxExchanges, opt.DetectStability)
	return Result{
		Assignment: initial,
		Makespan:   r.FinalMakespan,
		Exchanges:  r.Steps,
		Converged:  r.Converged,
	}, nil
}

// DLB2C runs the decentralized two-cluster balancer (Algorithm 7) from the
// given initial distribution. If the run converges, the schedule is a
// 2-approximation under the paper's hypothesis that no processing time
// exceeds the optimal makespan (Theorem 7).
func DLB2C(model Clustered, initial *Assignment, opt RunOptions) (Result, error) {
	return runProtocol(protocol.DLB2C{Model: model}, initial, opt)
}

// OJTB runs One Job Type Balancing (Algorithm 3). With a single job type it
// converges to an optimal schedule (Lemma 4).
func OJTB(model CostModel, initial *Assignment, opt RunOptions) (Result, error) {
	return runProtocol(protocol.OJTB{Model: model}, initial, opt)
}

// MJTB runs Multiple Job Type Balancing (Algorithm 4) on a typed instance;
// it converges to a k-approximation with k job types (Theorem 5).
func MJTB(model *Typed, initial *Assignment, opt RunOptions) (Result, error) {
	return runProtocol(protocol.MJTB{Model: model}, initial, opt)
}

// HomogeneousBalance runs the single-cluster pairwise greedy (the dynamics
// analysed by the paper's Markov model, Section VII.A).
func HomogeneousBalance(model CostModel, initial *Assignment, opt RunOptions) (Result, error) {
	return runProtocol(protocol.SameCost{Model: model}, initial, opt)
}

// WorkStealingStats is the outcome of a work-stealing simulation.
type WorkStealingStats = worksteal.Stats

// WorkStealing simulates the classical work-stealing baseline (Algorithm 1)
// from the given initial distribution and returns its statistics. On
// unrelated machines its makespan is unbounded relative to the optimum for
// bad initial distributions (Theorem 1).
func WorkStealing(model CostModel, initial *Assignment, seed uint64) (WorkStealingStats, error) {
	return WorkStealingRun(model, initial, WorkStealingOptions{Seed: seed})
}

// WorkStealingOptions parameterizes WorkStealingRun.
type WorkStealingOptions struct {
	// Seed drives victim selection.
	Seed uint64
	// StealLatency is the virtual time consumed by each victim probe; 0
	// models instantaneous steals (the paper's idealization).
	StealLatency int64
	// StealOne takes one job per steal instead of the back half.
	StealOne bool
	// Metrics, when non-nil, receives the worksteal_* instruments
	// (probes, steals, jobs stolen, per-machine idle time).
	Metrics *MetricsRegistry
	// Trace, when non-nil, receives one event per probe and per steal.
	Trace *EventTrace
	// Spans, when non-nil, collects one KindRun span plus one session span
	// per successful steal (Start = when the thief went idle).
	Spans *SpanTrace
	// Timeline, when non-nil, records one point per steal: remaining jobs
	// as the imbalance proxy, cumulative jobs stolen, cumulative probes.
	Timeline *Timeline
}

// WorkStealingRun is WorkStealing with the full option set.
func WorkStealingRun(model CostModel, initial *Assignment, opt WorkStealingOptions) (WorkStealingStats, error) {
	cfg := worksteal.Config{
		Seed:         opt.Seed,
		StealLatency: opt.StealLatency,
		Tracer:       opt.Trace,
		Spans:        opt.Spans,
		Timeline:     opt.Timeline,
	}
	if opt.StealOne {
		cfg.Policy = worksteal.StealOne
	}
	if opt.Metrics != nil {
		cfg.Metrics = worksteal.NewMetrics(opt.Metrics, model.NumMachines())
	}
	sim, err := worksteal.New(model, initial, cfg)
	if err != nil {
		return WorkStealingStats{}, err
	}
	return sim.Run(), nil
}

// IsStable reports whether no pairwise DLB2C exchange can change the given
// two-cluster schedule (the premise of Theorem 7).
func IsStable(model Clustered, a *Assignment) bool {
	return protocol.Stable(protocol.DLB2C{Model: model}, a)
}
