// Package shardgossip (under locktwo) is the lockshape regression golden:
// it deliberately reintroduces the two-shard-lock session that the PR-7
// at-most-one-mutex invariant forbids, plus the lockless guarded write and
// the suppress-exactly-one proof. The directory's final element opts into
// the concurrency scope by name, like the determinism testdata does.
package shardgossip

import "sync"

type shardState struct {
	mu sync.Mutex
	//hetlb:guarded
	partialSum int64
}

type engine struct {
	shards []shardState
	start  []chan struct{}
	quit   chan struct{}
}

func (e *engine) run() {
	for s := range e.shards {
		go e.worker(s)
	}
}

func (e *engine) worker(s int) {
	for {
		select {
		case <-e.quit:
			return
		case <-e.start[s]:
			e.session(s, s+1)
			e.nested(s, s+1)
			e.rescan(s)
			e.rescanSuppressed(s)
		}
	}
}

// session is the deliberately reintroduced deadlock shape: both sides of a
// cross-shard pair locked at once.
func (e *engine) session(i, j int) {
	e.shards[i].mu.Lock()
	e.shards[j].mu.Lock() // want `second shard mutex acquired while one is already held in \(\*engine\)\.session`
	e.shards[i].partialSum++
	e.shards[j].partialSum--
	e.shards[j].mu.Unlock()
	e.shards[i].mu.Unlock()
}

// lockOther takes one lock on its own — legal in isolation, and exactly why
// the check must be interprocedural.
func (e *engine) lockOther(j int) {
	e.shards[j].mu.Lock()
	e.shards[j].partialSum++
	e.shards[j].mu.Unlock()
}

// nested hides the second acquisition one call deep.
func (e *engine) nested(i, j int) {
	e.shards[i].mu.Lock()
	e.lockOther(j) // want `second shard mutex acquired while one is held: call path \(\*engine\)\.nested → \(\*engine\)\.lockOther`
	e.shards[i].mu.Unlock()
}

// leak acquires in a net-acquiring loop: the second iteration enters with
// the first's lock still held.
func (e *engine) leak(n int) {
	for s := 0; s < n; s++ {
		e.shards[s].mu.Lock() // want `second shard mutex acquired while one is already held in \(\*engine\)\.leak`
	}
}

// rescan writes the guarded partial with no lock on a worker path.
func (e *engine) rescan(s int) {
	e.shards[s].partialSum = 0 // want `write to guarded field partialSum without holding its shard mutex on a worker path`
}

// rescanSuppressed proves a reasoned //hetlb:concurrency-ok silences
// exactly one finding: the twin write on the next line still fires.
func (e *engine) rescanSuppressed(s int) {
	e.shards[s].partialSum = 0 //hetlb:concurrency-ok goldens only: proving one suppression silences one finding
	e.shards[s].partialSum = 1 // want `write to guarded field partialSum without holding its shard mutex on a worker path`
}
