// Package span is a minimal stand-in for hetlb/internal/obs/span with the
// Recorder reads and records the statssafety analyzer knows about.
package span

// ID identifies a span.
type ID uint64

// Kind classifies a span.
type Kind uint8

// Tag refines a span record's role.
type Tag uint8

// Flags is a bitset of span outcomes.
type Flags uint32

// Span mirrors span.Span.
type Span struct {
	ID, Parent ID
	Kind       Kind
	Tag        Tag
	Flags      Flags
	A, B       int32
	Start, End int64
	Clock      uint64
	Value      int64
}

// Recorder mirrors span.Recorder.
type Recorder struct {
	spans   []Span
	seq     uint64
	root    ID
	dropped uint64
}

// NextID records (advances allocator state).
func (r *Recorder) NextID() ID { r.seq++; return ID(r.seq) }

// SetRoot records.
func (r *Recorder) SetRoot(id ID) { r.root = id }

// Root reads.
func (r *Recorder) Root() ID { return r.root }

// Append records.
func (r *Recorder) Append(s Span) ID {
	if s.ID == 0 {
		s.ID = r.NextID()
	}
	r.spans = append(r.spans, s)
	return s.ID
}

// Len reads.
func (r *Recorder) Len() int { return len(r.spans) }

// Total reads.
func (r *Recorder) Total() uint64 { return uint64(len(r.spans)) + r.dropped }

// Dropped reads.
func (r *Recorder) Dropped() uint64 { return r.dropped }

// Spans reads.
func (r *Recorder) Spans() []Span { return r.spans }

// Merge records.
func (r *Recorder) Merge(src *Recorder) { r.spans = append(r.spans, src.Spans()...) }

// Reset records.
func (r *Recorder) Reset() { r.spans = r.spans[:0] }

// ClaimNamespaces records (reserves allocator blocks).
func (r *Recorder) ClaimNamespaces(n int) uint64 { r.seq += uint64(n); return r.seq }
