// Package obs is a minimal stand-in for hetlb/internal/obs with the read
// accessors and record methods the statssafety analyzer knows about.
package obs

// Counter mirrors obs.Counter.
type Counter struct{ v int64 }

// Inc records.
func (c *Counter) Inc() { c.v++ }

// Add records.
func (c *Counter) Add(n int64) { c.v += n }

// Value reads.
func (c *Counter) Value() int64 { return c.v }

// Gauge mirrors obs.Gauge.
type Gauge struct{ v int64 }

// Set records.
func (g *Gauge) Set(v int64) { g.v = v }

// SetMax records.
func (g *Gauge) SetMax(v int64) {
	if v > g.v {
		g.v = v
	}
}

// Value reads.
func (g *Gauge) Value() int64 { return g.v }

// Histogram mirrors obs.Histogram.
type Histogram struct {
	n, sum int64
}

// Observe records.
func (h *Histogram) Observe(v int64) { h.n++; h.sum += v }

// Count reads.
func (h *Histogram) Count() int64 { return h.n }

// Sum reads.
func (h *Histogram) Sum() int64 { return h.sum }

// Event mirrors obs.Event.
type Event struct {
	Time  int64
	Value int64
}

// Tracer mirrors obs.Tracer.
type Tracer struct{ events []Event }

// Emit records.
func (t *Tracer) Emit(e Event) { t.events = append(t.events, e) }

// Len reads.
func (t *Tracer) Len() int { return len(t.events) }
