// Package timeline is a minimal stand-in for hetlb/internal/obs/timeline
// with the Recorder reads and records the statssafety analyzer knows about.
package timeline

// Point mirrors timeline.Point.
type Point struct {
	Time, Cmax, Imbalance, Moves, Messages int64
}

// Recorder mirrors timeline.Recorder.
type Recorder struct {
	pts    []Point
	seen   int64
	stride int64
}

// Record records.
func (r *Recorder) Record(p Point) { r.pts = append(r.pts, p); r.seen++ }

// Len reads.
func (r *Recorder) Len() int { return len(r.pts) }

// Seen reads.
func (r *Recorder) Seen() int64 { return r.seen }

// Stride reads.
func (r *Recorder) Stride() int64 { return r.stride }

// Points reads.
func (r *Recorder) Points() []Point { return r.pts }

// Reset records.
func (r *Recorder) Reset() { r.pts = r.pts[:0]; r.seen = 0 }
