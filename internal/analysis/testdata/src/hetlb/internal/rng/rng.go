// Package rng is a minimal stand-in for hetlb/internal/rng: the analyzers
// match by package name and function name, so the goldens only need the
// signatures, not the generator.
package rng

// RNG mirrors the real generator type.
type RNG struct{ s uint64 }

// New mirrors rng.New.
func New(seed uint64) *RNG { return &RNG{s: seed} }

// DeriveSeed mirrors rng.DeriveSeed.
func DeriveSeed(seed uint64, keys ...uint64) uint64 { return seed + uint64(len(keys)) }

// Substream mirrors rng.Substream.
func Substream(seed uint64, keys ...uint64) *RNG { return New(DeriveSeed(seed, keys...)) }

// Reseed mirrors rng.Reseed.
func (r *RNG) Reseed(seed uint64) { r.s = seed }

// PermInto mirrors rng.PermInto.
func (r *RNG) PermInto(p []int) {
	for i := range p {
		p[i] = i
	}
}

// Uint64 mirrors rng.Uint64.
func (r *RNG) Uint64() uint64 { r.s++; return r.s }

// Intn mirrors rng.Intn.
func (r *RNG) Intn(n int) int { return int(r.Uint64() % uint64(n)) }
