// Package shardgossip exercises the statssafety analyzer on the sharded
// epoch engine's shapes: the barrier is the one place per epoch that touches
// the instruments, so an obs read steering the epoch loop — "keep stepping
// until the moves counter looks settled" — is exactly the feedback loop the
// analyzer exists to forbid.
package shardgossip

import "hetlb/internal/obs"

// Metrics bundles stub instruments shaped like the engine's.
type Metrics struct {
	Epochs     obs.Counter
	Makespan   obs.Gauge
	EpochMoves obs.Histogram
}

// SteeredRun keeps stepping while an instrument looks busy: the simulation's
// stopping condition then depends on what was observed, not on state.
func (m *Metrics) SteeredRun(step func() int) int {
	epochs := 0
	for m.EpochMoves.Sum() > 0 { // want `simulation control flow keyed on obs read Histogram\.Sum`
		step()
		epochs++
	}
	if m.Epochs.Value() < 10 { // want `simulation control flow keyed on obs read Counter\.Value`
		m.Epochs.Inc() // want `obs record Counter\.Inc inside a branch keyed on an obs read`
	}
	return epochs
}

// CleanBarrier is the real engine's shape: records keyed on simulation
// state only, reads feeding a report. No diagnostics.
func (m *Metrics) CleanBarrier(moves int, cmax int64) int64 {
	m.Epochs.Inc()
	if moves > 0 {
		m.EpochMoves.Observe(int64(moves))
	}
	m.Makespan.Set(cmax)
	return m.Epochs.Value() + m.EpochMoves.Sum() // summary for the run report
}
