package shardgossip

import "time"

// downSet shapes: the crash-tolerant engine keeps the per-epoch down-set as
// a dense []bool indexed by machine, applied by the coordinator before
// workers run. These cases pin why: a map-keyed down-set iterated to void
// matchings or pick rehost targets would order results by map iteration,
// and stamping fault transitions with the wall clock would make crash spans
// differ between replays of the same plan.

// VoidPairsMapped voids the epoch's matching by walking a map-keyed
// down-set: the order pairs are voided in (and with it any tie-broken
// accounting) then depends on map iteration.
func VoidPairsMapped(down map[int]bool, partner []int32) int {
	voided := 0
	for x := range down { // want `map iteration order can reach results`
		if partner[x] >= 0 {
			partner[x] = -1
			voided++
		}
	}
	return voided
}

// VoidPairsDense is the engine's actual shape: the down-set is a dense
// []bool and each session checks its own endpoints, so the void decision is
// per-pair and order-free. No diagnostic.
func VoidPairsDense(down []bool, pairs [][2]int32) int {
	voided := 0
	for _, p := range pairs {
		if down[p[0]] || down[p[1]] {
			voided++
		}
	}
	return voided
}

// CrashStampedWall records the crash instant off the wall clock — two
// replays of the same fault plan would then disagree on every fault span.
func CrashStampedWall(down []bool, machine int) int64 {
	down[machine] = true
	return time.Now().UnixNano() // want `wall-clock read time\.Now`
}

// CrashStampedEpoch is the engine's virtual-time discipline: fault
// transitions are stamped with the epoch index they fire at. No diagnostic.
func CrashStampedEpoch(down []bool, machine int, epoch int64) int64 {
	down[machine] = true
	return epoch
}

// RehostMapOrder drains a map-keyed frozen-job ledger on recovery: the
// rehost order (and therefore final placement) would follow map iteration.
func RehostMapOrder(frozen map[int][]int32, load []int64) {
	for x, jobs := range frozen { // want `map iteration order can reach results`
		load[x] += int64(len(jobs))
	}
}

// RehostSliceOrder is the recovery path the engine uses: frozen counts are
// indexed by machine and drained in machine order. No diagnostic.
func RehostSliceOrder(frozen [][]int32, load []int64) {
	for x := range frozen {
		load[x] += int64(len(frozen[x]))
	}
}
