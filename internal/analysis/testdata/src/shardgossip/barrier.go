// Package shardgossip exercises the determinism analyzer on the shapes of
// the sharded epoch engine: the directory name is determinism-scoped (the
// engine's results are asserted bit-identical across shard counts), so
// wall-clock reads in the epoch barrier and map-ordered shard reductions
// must be flagged, while the slice-ordered reduction the real engine uses
// must pass.
package shardgossip

import (
	"sort"
	"time"
)

// shard is a stand-in per-shard accumulator.
type shard struct {
	moves   int
	changed int
}

// BarrierTimed stamps the epoch with wall clock — the classic way a "how
// long did the epoch take" convenience breaks replayability.
func BarrierTimed(shards []shard) int64 {
	start := time.Now() // want `wall-clock read time\.Now`
	total := 0
	for i := range shards {
		total += shards[i].moves
	}
	return int64(total) + time.Since(start).Nanoseconds() // want `wall-clock read time\.Since`
}

// BarrierMapReduce reduces per-shard accumulators held in a map: the
// reduction order (and any tie-broken result derived from it) then depends
// on map iteration.
func BarrierMapReduce(shards map[int]*shard) int {
	best := 0
	for _, sh := range shards { // want `map iteration order can reach results`
		if sh.changed > best {
			best = sh.changed
		}
	}
	return best
}

// BarrierOrderedReduce is the real engine's shape: shards live in a slice
// and the barrier reduces them in shard-index order. No diagnostic.
func BarrierOrderedReduce(shards []shard) (moves, changed int) {
	for i := range shards {
		moves += shards[i].moves
		changed += shards[i].changed
	}
	return moves, changed
}

// OwnershipSortedKeys shows the blessed collect-then-sort idiom for a
// map-keyed ownership table. No diagnostic.
func OwnershipSortedKeys(owners map[int][]int32) []int {
	var keys []int
	for k := range owners {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// partial is a stand-in for PR 8's per-shard load reduction.
type partial struct {
	sum   int64
	max   int64
	dirty bool
}

// BarrierPartialReduce is the post-PR-8 barrier shape: S per-shard partials
// folded in shard-index order — no O(m) load scan, no map, no clock. The
// result is a deterministic function of the partials alone. No diagnostic.
func BarrierPartialReduce(partials []partial) (max int64, sum int64) {
	for i := range partials {
		if partials[i].max > max {
			max = partials[i].max
		}
		sum += partials[i].sum
	}
	return max, sum
}

// DirtyRescanMapped tracks dirty blocks in a map and rescans in iteration
// order. Rescans are order-independent in the real engine (each owner
// rescans its own disjoint block), but a map-ordered loop that reaches
// results is exactly what the determinism scope must flag before someone
// adds an order-dependent accumulation to it.
func DirtyRescanMapped(dirty map[int][]int64) int64 {
	var max int64
	for _, block := range dirty { // want `map iteration order can reach results`
		for _, l := range block {
			if l > max {
				max = l
			}
		}
	}
	return max
}

// DirtyRescanOrdered is the engine's actual rescan dispatch: dirty flags
// live on the slice-indexed partials and owners are visited in shard order.
// No diagnostic.
func DirtyRescanOrdered(partials []partial, blocks [][]int64) int64 {
	var max int64
	for s := range partials {
		if !partials[s].dirty {
			continue
		}
		partials[s].max = 0
		for _, l := range blocks[s] {
			if l > partials[s].max {
				partials[s].max = l
			}
		}
		partials[s].dirty = false
		if partials[s].max > max {
			max = partials[s].max
		}
	}
	return max
}
