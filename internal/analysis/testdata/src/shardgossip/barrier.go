// Package shardgossip exercises the determinism analyzer on the shapes of
// the sharded epoch engine: the directory name is determinism-scoped (the
// engine's results are asserted bit-identical across shard counts), so
// wall-clock reads in the epoch barrier and map-ordered shard reductions
// must be flagged, while the slice-ordered reduction the real engine uses
// must pass.
package shardgossip

import (
	"sort"
	"time"
)

// shard is a stand-in per-shard accumulator.
type shard struct {
	moves   int
	changed int
}

// BarrierTimed stamps the epoch with wall clock — the classic way a "how
// long did the epoch take" convenience breaks replayability.
func BarrierTimed(shards []shard) int64 {
	start := time.Now() // want `wall-clock read time\.Now`
	total := 0
	for i := range shards {
		total += shards[i].moves
	}
	return int64(total) + time.Since(start).Nanoseconds() // want `wall-clock read time\.Since`
}

// BarrierMapReduce reduces per-shard accumulators held in a map: the
// reduction order (and any tie-broken result derived from it) then depends
// on map iteration.
func BarrierMapReduce(shards map[int]*shard) int {
	best := 0
	for _, sh := range shards { // want `map iteration order can reach results`
		if sh.changed > best {
			best = sh.changed
		}
	}
	return best
}

// BarrierOrderedReduce is the real engine's shape: shards live in a slice
// and the barrier reduces them in shard-index order. No diagnostic.
func BarrierOrderedReduce(shards []shard) (moves, changed int) {
	for i := range shards {
		moves += shards[i].moves
		changed += shards[i].changed
	}
	return moves, changed
}

// OwnershipSortedKeys shows the blessed collect-then-sort idiom for a
// map-keyed ownership table. No diagnostic.
func OwnershipSortedKeys(owners map[int][]int32) []int {
	var keys []int
	for k := range owners {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
