// Package shardgossip (under lockclean) pins the known-clean PR-8/9 lock
// shapes: the single-lock updatePartials critical section, deferred unlocks,
// coordinator-phase lockless writes, and the phase-B rescan whose reasoned
// //hetlb:concurrency-ok marks the one place the proof leaves the lock
// shape. Everything here must produce zero unsuppressed lockshape findings.
package shardgossip

import "sync"

type shardState struct {
	mu sync.Mutex
	//hetlb:guarded
	partialSum int64
	//hetlb:guarded
	partialMax int64
	//hetlb:guarded
	dirty bool
}

type engine struct {
	shards []shardState
	load   []int64
	start  []chan struct{}
	quit   chan struct{}
}

func (e *engine) run() {
	for s := range e.shards {
		go e.worker(s)
	}
}

func (e *engine) worker(s int) {
	for {
		select {
		case <-e.quit:
			return
		case <-e.start[s]:
			e.session(s)
			e.withDefer(s)
			e.rescanBlock(s)
		}
	}
}

func (e *engine) session(s int) {
	e.updatePartials(s, 1, 2)
}

// updatePartials is the real engine's critical section: one lock, a few
// integer operations, explicit unlock, no nesting.
func (e *engine) updatePartials(s int, old, new int64) {
	sh := &e.shards[s]
	sh.mu.Lock()
	sh.partialSum += new - old
	if new > sh.partialMax {
		sh.partialMax = new
	} else if new < old && old == sh.partialMax {
		sh.dirty = true
	}
	sh.mu.Unlock()
}

// withDefer holds through a deferred unlock: the guarded write below the
// defer is still under the lock.
func (e *engine) withDefer(s int) {
	sh := &e.shards[s]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.partialSum++
}

// applyFaults writes guarded state locklessly — on the coordinator, which
// owns all shard state between barriers. Clean by the worker/coordinator
// split, not by luck.
func (e *engine) applyFaults() {
	for s := range e.shards {
		e.shards[s].dirty = true
		e.shards[s].partialSum = 0
	}
}

// rescanBlock is the phase-B shape: a lockless guarded write on a worker
// path whose safety argument (the barrier between phases) lives outside the
// lock shape — so it carries the reason at the write.
func (e *engine) rescanBlock(s int) {
	sh := &e.shards[s]
	var max int64
	for _, l := range e.load {
		if l > max {
			max = l
		}
	}
	sh.partialMax = max //hetlb:concurrency-ok phase B rescan: the session barrier ordered every load write before this read, and only the owner touches its block
	sh.dirty = false    //hetlb:concurrency-ok phase B rescan: only the owner clears its own dirty flag between the barriers
}

// stepEpoch is the coordinator loop: it may call into locking helpers with
// no lock held.
func (e *engine) stepEpoch() {
	e.applyFaults()
	e.updatePartials(0, 0, 1)
}
