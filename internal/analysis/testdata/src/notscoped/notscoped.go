// Package notscoped is outside the determinism scope: the same shapes that
// are findings in package gossip are silent here.
package notscoped

import "time"

// Clock may read the wall clock freely.
func Clock() time.Time { return time.Now() }

// MapRange may iterate maps freely.
func MapRange(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
