// Package misplaced carries a //hetlb:noalloc that is not a function doc
// comment. The diagnostic lands on the annotation's own line, where a
// `// want` comment cannot coexist, so this package is asserted directly by
// TestMisplacedNoalloc rather than through want comments.
package misplaced

//hetlb:noalloc
var NotAFunction = 0
