// Package des (a determinism-scoped directory name) carries a suppression
// with no reason. A reason-free suppression is rejected — and therefore does
// not suppress — so the violation on its governed line still fires. Any text
// appended to the comment would become its reason, so this package is
// asserted directly by TestMissingReason rather than through want comments.
package des

import "time"

// MissingReason returns a wall-clock read under a bare suppression.
func MissingReason() int64 {
	//hetlb:nondeterministic-ok
	return time.Now().UnixNano()
}
