// Package seedflowclean pins the blessed seeding shapes from PRs 2 and 8 —
// everything here must produce zero seedflow findings. These are the exact
// idioms the real tree uses: DeriveSeed/Substream keying (including through
// locals and helpers), the pipelined per-epoch schedule draw, and table
// lookups indexed by the loop variable.
package seedflowclean

import "hetlb/internal/rng"

// derivedLocal keys through DeriveSeed before storing into a local: the
// sanitizer cuts the taint even though the local then reaches Reseed.
func derivedLocal(g *rng.RNG, seed uint64, n int) {
	for i := 0; i < n; i++ {
		s := rng.DeriveSeed(seed, uint64(i))
		g.Reseed(s)
	}
}

// substreamPerWorker is the PR-2 harness shape: one keyed substream per
// replication index.
func substreamPerWorker(seed uint64, workers int) {
	for w := 0; w < workers; w++ {
		g := rng.Substream(seed, uint64(w))
		_ = g.Uint64()
	}
}

// pipelinedDraw is the PR-8 scheduler shape: the draw generator is re-keyed
// by DeriveSeed(seed, epoch) only, inside the epoch loop.
func pipelinedDraw(drawGen *rng.RNG, seed uint64, epochs uint64) {
	for epoch := uint64(0); epoch < epochs; epoch++ {
		drawGen.Reseed(rng.DeriveSeed(seed, epoch))
		p := make([]int, 8)
		drawGen.PermInto(p)
	}
}

// tableLookup seeds from a precomputed table indexed by the loop variable: a
// pure function of i, not of loop order, so element selection cuts taint.
// (The direct-index-in-argument shape rng.New(seeds[i]) stays rngdiscipline's
// call either way.)
func tableLookup(g *rng.RNG, seeds []uint64) {
	for i := 0; i < len(seeds); i++ {
		s := seeds[i]
		g.Reseed(s)
	}
}

// helperKeyed hands a derived seed to a helper: the argument is sanitized
// before the call, so the helper's raw-seeding summary never matches.
func reseedRaw(g *rng.RNG, s uint64) {
	g.Reseed(s)
}

func helperKeyed(g *rng.RNG, seed uint64, n int) {
	for i := 0; i < n; i++ {
		reseedRaw(g, rng.DeriveSeed(seed, uint64(i)))
	}
}
