// Package unscopedlocks is outside the concurrency scope: every shape here
// — the double lock, the lockless guarded write, the worker-path frozen
// write — is a finding in a shardgossip package and silent in this one.
package unscopedlocks

import "sync"

type block struct {
	mu sync.Mutex
	//hetlb:guarded
	partial int64
}

type table struct {
	//hetlb:frozen
	rows []int
}

type pool struct {
	blocks []block
	tab    *table
	start  []chan struct{}
}

func (p *pool) run() {
	for i := range p.blocks {
		go p.worker(i)
	}
}

func (p *pool) worker(i int) {
	for range p.start[i] {
		p.blocks[i].mu.Lock()
		p.blocks[i+1].mu.Lock()
		p.blocks[i].partial++
		p.blocks[i+1].mu.Unlock()
		p.blocks[i].mu.Unlock()
		p.blocks[i].partial = 0
		p.tab.rows[i] = 0
	}
}
