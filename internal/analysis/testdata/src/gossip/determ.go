// Package gossip exercises the determinism analyzer: its directory name puts
// it in the determinism scope, so wall-clock reads, math/rand and unordered
// map iteration must all be flagged — and the collect-then-sort idiom plus a
// reasoned suppression must not.
package gossip

import (
	"math/rand" // want `import of "math/rand" in determinism-scoped package`
	"sort"
	"time"
)

// Step is a stand-in simulation step with determinism violations.
func Step(loads map[int]int64) int64 {
	start := time.Now() // want `wall-clock read time\.Now`
	var total int64
	for _, v := range loads { // want `map iteration order can reach results`
		total += v
	}
	total += rand.Int63() % 2
	_ = time.Since(start) // want `wall-clock read time\.Since`
	return total
}

// Aliased references are reads too, not just direct calls.
func Aliased() time.Time {
	now := time.Now // want `wall-clock read time\.Now`
	return now()
}

// SortedKeys uses the blessed idiom: collect only the keys, sort them in the
// same function. No diagnostic.
func SortedKeys(loads map[int]int64) []int {
	var keys []int
	for k := range loads {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// UnsortedKeys collects keys but never sorts them, so map order leaks.
func UnsortedKeys(loads map[int]int64) []int {
	var keys []int
	for k := range loads { // want `map iteration order can reach results`
		keys = append(keys, k)
	}
	return keys
}

// Suppressed shows a reasoned escape hatch: the range only sums, which is
// order-insensitive, and the suppression silences exactly this line.
func Suppressed(loads map[int]int64) int64 {
	var total int64
	for _, v := range loads { //hetlb:nondeterministic-ok summation is order-insensitive up to float-free integer addition
		total += v
	}
	return total
}

// SliceRange iterates a slice: ordered, no diagnostic.
func SliceRange(xs []int64) int64 {
	var total int64
	for _, v := range xs {
		total += v
	}
	return total
}
