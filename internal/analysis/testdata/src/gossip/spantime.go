// Span and timeline record arguments are logical time only: traces are
// asserted bit-identical across runs and harness worker counts, so a
// wall-clock value must not flow into a record call — not even laundered
// through a variable under a suppression granted for a metric.
package gossip

import (
	"time"

	"hetlb/internal/obs/span"
	"hetlb/internal/obs/timeline"
)

// WallSpan launders a wall-clock duration through a variable into a span
// record: the reference check flags the time.Since read, and the
// span-timestamp check flags the laundered value at the record site.
func WallSpan(rec *span.Recorder, t0 time.Time) {
	wall := time.Since(t0)                            // want `wall-clock read time\.Since`
	rec.Append(span.Span{Start: 0, End: int64(wall)}) // want `wall-clock value \(time\.Duration\) flows into span\.Append`
}

// WallTimeline receives an already-computed duration — no time.Now/Since in
// sight — and still must not record it as a timeline timestamp.
func WallTimeline(rec *timeline.Recorder, wall time.Duration) {
	rec.Record(timeline.Point{Time: int64(wall)}) // want `wall-clock value \(time\.Duration\) flows into timeline\.Record`
}

// LogicalSpan records logical time only: no diagnostic.
func LogicalSpan(rec *span.Recorder, step int64) {
	rec.Append(span.Span{Start: step, End: step + 1})
}
