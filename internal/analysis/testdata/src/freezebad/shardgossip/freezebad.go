// Package shardgossip (under freezebad) holds the phasefreeze positives:
// worker-path writes to //hetlb:frozen fields — the down-set, the front
// schedule buffer — that break the frozen-per-epoch contract, plus the
// suppress-exactly-one proof and the copy-builtin write shape.
package shardgossip

type schedule struct {
	//hetlb:frozen
	pairI []int32
	//hetlb:frozen
	cross int
}

type faultState struct {
	//hetlb:frozen
	down []bool
}

type engine struct {
	cur    *schedule
	faults *faultState
	start  []chan struct{}
	quit   chan struct{}
}

func (e *engine) run() {
	for s := range e.start {
		go e.worker(s)
	}
}

func (e *engine) worker(s int) {
	for {
		select {
		case <-e.quit:
			return
		case <-e.start[s]:
			e.session(s)
			e.overwrite(s)
			e.hack(s)
		}
	}
}

// session mutates the frozen schedule and down-set mid-epoch: every worker
// reads them without synchronization, so each write is a race.
func (e *engine) session(t int) {
	e.cur.pairI[t] = 0 // want `write to frozen field pairI on a worker path \(\(\*engine\)\.worker \(goroutine started at .*\) → \(\*engine\)\.session\)`
	if e.faults.down[t] {
		e.faults.down[t] = false // want `write to frozen field down on a worker path`
	}
	e.cur.cross++ // want `write to frozen field cross on a worker path`
}

// overwrite hits the frozen buffer through the copy builtin.
func (e *engine) overwrite(t int) {
	src := []int32{1, 2}
	copy(e.cur.pairI, src) // want `write to frozen field pairI on a worker path`
	_ = t
}

// hack proves a reasoned //hetlb:concurrency-ok silences exactly one
// finding: the twin on the next line still fires.
func (e *engine) hack(t int) {
	e.cur.cross = 0 //hetlb:concurrency-ok goldens only: proving one suppression silences one finding
	e.cur.cross = 1 // want `write to frozen field cross on a worker path`
	_ = t
}
