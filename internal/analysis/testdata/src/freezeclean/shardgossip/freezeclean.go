// Package shardgossip (under freezeclean) pins the known-clean PR-8/9
// phase shapes: coordinator-only writes to frozen fields between epoch
// barriers, and the double-buffered schedule draw that writes only through
// an owned parameter. Zero phasefreeze findings expected.
package shardgossip

type schedule struct {
	//hetlb:frozen
	pairI []int32
	//hetlb:frozen
	cross int
}

type faultState struct {
	//hetlb:frozen
	down []bool
}

type engine struct {
	cur    *schedule
	next   *schedule
	faults *faultState
	//hetlb:frozen
	phase int
	//hetlb:frozen
	stable bool
	start  []chan struct{}
	quit   chan struct{}
	draws  chan *schedule
}

func (e *engine) run() {
	for s := range e.start {
		go e.worker(s)
	}
	go e.scheduler()
}

// worker only reads frozen state; all its writes go elsewhere.
func (e *engine) worker(s int) {
	for {
		select {
		case <-e.quit:
			return
		case <-e.start[s]:
			_ = e.cur.pairI[s]
			_ = e.faults.down[s]
		}
	}
}

// scheduler runs on its own goroutine but writes only through the parameter
// it owns: the back buffer handed over the channel. That is the ownership
// exemption, and the receiver-rooted reads stay reads.
func (e *engine) scheduler() {
	for b := range e.draws {
		drawInto(b, len(b.pairI))
	}
}

// drawInto fills the owned back buffer — param-rooted writes are exempt.
func drawInto(b *schedule, n int) {
	for t := 0; t < n; t++ {
		b.pairI[t] = int32(t)
	}
	b.cross = 0
}

// stepEpoch is the coordinator: not reachable from any `go` spawn, so its
// frozen-field writes are the sanctioned between-barriers mutation.
func (e *engine) stepEpoch() {
	e.cur, e.next = e.next, e.cur
	e.phase++
	e.applyFaults()
	if e.phase > 3 {
		e.stable = true
	}
}

// applyFaults flips the down-set on the coordinator between epochs.
func (e *engine) applyFaults() {
	for i := range e.faults.down {
		e.faults.down[i] = false
	}
	e.cur.cross = 0
}
