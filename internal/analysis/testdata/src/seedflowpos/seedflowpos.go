// Package seedflowpos holds the positive golden cases for the seedflow
// analyzer: loop-derived seeds that travel through assignments, struct
// fields and helper calls before reaching a generator. Every shape here is
// invisible to the syntactic rngdiscipline pass — that separation is itself
// asserted, since only seedflow runs over this package and every finding
// must be wanted.
package seedflowpos

import "hetlb/internal/rng"

// laundered hides the loop index behind a local before seeding.
func laundered(seed uint64, n int) {
	for i := 0; i < n; i++ {
		s := seed + uint64(i)
		g := rng.New(s) // want `seed value derived from loop variable i \(flow: i → s\) reaches rng\.New`
		_ = g
	}
}

// reseedFrom is a helper that seeds raw: its summary says parameter s
// reaches RNG.Reseed unsanitized.
func reseedFrom(g *rng.RNG, s uint64) {
	g.Reseed(s)
}

// reseedInner and reseedOuter chain two calls deep.
func reseedInner(g *rng.RNG, v uint64) {
	g.Reseed(v)
}

func reseedOuter(g *rng.RNG, v uint64) {
	reseedInner(g, v)
}

// throughCalls passes the raw index into helpers; the syntactic pass only
// watches rng.New/Reseed arguments, so both lines escape it.
func throughCalls(g *rng.RNG, n int) {
	for i := 0; i < n; i++ {
		reseedFrom(g, uint64(i))  // want `seed value derived from loop variable i reaches RNG\.Reseed via reseedFrom → RNG\.Reseed`
		reseedOuter(g, uint64(i)) // want `seed value derived from loop variable i reaches RNG\.Reseed via reseedOuter → reseedInner → RNG\.Reseed`
	}
}

// config carries a seed in a non-seed-named field, so the naming heuristic
// never fires; only value flow connects the store to the sink.
type config struct {
	Key  uint64
	Reps int
}

// applyConfig seeds from the Key field of its parameter.
func applyConfig(g *rng.RNG, c config) {
	g.Reseed(c.Key)
}

// fieldLaundered stores the index into a struct field and hands the struct
// to a helper that seeds from it.
func fieldLaundered(g *rng.RNG, n int) {
	for i := 0; i < n; i++ {
		var c config
		c.Key = uint64(i)
		applyConfig(g, c) // want `seed value derived from loop variable i reaches RNG\.Reseed via applyConfig → RNG\.Reseed`
	}
}

// fieldPathClean taints only the Reps field; applyConfig seeds from Key, so
// field-path sensitivity must keep this call clean.
func fieldPathClean(g *rng.RNG, n int) {
	for i := 0; i < n; i++ {
		var c config
		c.Reps = i
		applyConfig(g, c)
	}
}

// storeLaundered reaches a seed-named store through a local copy; the
// naming heuristic sees only the clean-looking local.
type job struct {
	Seed uint64
}

func storeLaundered(n int) []job {
	out := make([]job, 0, n)
	for i := 0; i < n; i++ {
		v := uint64(i) * 3
		out = append(out, job{Seed: v}) // want `seed value derived from loop variable i \(flow: i → v\) reaches seed store Seed`
	}
	return out
}

// suppressed proves a reasoned //hetlb:nondeterministic-ok silences exactly
// one seedflow finding: the twin on the next line still fires.
func suppressed(g *rng.RNG, h *rng.RNG, n int) {
	for i := 0; i < n; i++ {
		lane := uint64(i) + 1
		g.Reseed(lane) //hetlb:nondeterministic-ok goldens only: proving one suppression silences one finding
		h.Reseed(lane) // want `seed value derived from loop variable i \(flow: i → lane\) reaches RNG\.Reseed`
	}
}
