// Package workload exercises the suppression mechanism itself, run under the
// full analyzer suite with unused-suppression reporting on (the driver
// configuration). The `// want` directives for annotation-layer findings are
// embedded in the annotation comments themselves: the expectation scanner
// reads raw source lines, so a want inside a comment still anchors to the
// right line.
package workload

import "time"

// ExactlyOne holds two identical violations; the suppression on the first
// silences exactly that one, the second still fires.
func ExactlyOne() int64 {
	a := time.Now().UnixNano() //hetlb:nondeterministic-ok proves suppression: identical violation below still fires
	b := time.Now().UnixNano() // want `wall-clock read time\.Now`
	return a + b
}

// BadAnnotations carries the malformed shapes: an unknown verb and a
// suppression with no reason. Both are findings of the annotation layer.
func BadAnnotations(m map[int]int) int {
	total := 0
	//hetlb:frobnicate some reason // want `unknown //hetlb: annotation "frobnicate"`
	for _, v := range m { // want `map iteration order can reach results`
		total += v
	}
	return total
}

// UnusedSuppression governs a line with no finding: flagged as stale.
func UnusedSuppression() int {
	//hetlb:nondeterministic-ok nothing is wrong here // want `unused suppression //hetlb:nondeterministic-ok`
	x := 1
	return x
}
