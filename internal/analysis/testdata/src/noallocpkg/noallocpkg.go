// Package noallocpkg exercises the noalloc analyzer: //hetlb:noalloc
// functions must not allocate, appends must target caller-owned or scratch
// memory, and the alloc-ok escape hatch must silence exactly its line.
package noallocpkg

// Scratch mimics the pairwise scratch-buffer carrier: anything rooted at a
// value whose type name contains "Scratch" is warm memory.
type Scratch struct {
	Union []int
	To1   []int
}

// sink is an interface-typed parameter to provoke boxing.
func sink(v interface{}) int {
	if v == nil {
		return 0
	}
	return 1
}

// Allocates trips every rule.
//
//hetlb:noalloc
func Allocates(n int, s *Scratch) int {
	buf := make([]int, 0, n) // want `make in //hetlb:noalloc function Allocates allocates`
	var out []int
	out = append(out, n)         // want `append grows a non-scratch slice in //hetlb:noalloc function Allocates`
	m := map[int]int{n: n}       // want `map literal in //hetlb:noalloc function Allocates allocates`
	f := func() int { return n } // want `closure literal in //hetlb:noalloc function Allocates allocates`
	total := sink(n)             // want `interface boxing in //hetlb:noalloc function Allocates`
	total += sink(42)            // constant argument: boxed into static data, no diagnostic
	if n < 0 {
		panic("noallocpkg: negative n") // constant to builtin panic: no diagnostic
	}
	return len(buf) + len(out) + len(m) + f() + total
}

// Clean appends only into parameters and scratch buffers, and passes nothing
// by interface. No diagnostics.
//
//hetlb:noalloc
func Clean(dst []int, s *Scratch, jobs []int) []int {
	union := s.Union[:0]
	for _, j := range jobs {
		union = append(union, j)
		dst = append(dst, j)
	}
	s.To1 = append(s.To1[:0], union...)
	var iface interface{}
	_ = sink(iface) // interface-typed argument: no boxing
	return dst
}

// Amortized grows a scratch buffer through an explicit, reasoned alloc-ok:
// the make line is suppressed, the rest still checked.
//
//hetlb:noalloc
func Amortized(s *Scratch, n int) []int {
	if cap(s.Union) < n {
		s.Union = make([]int, 0, n) //hetlb:alloc-ok amortized warm-up growth; reaches high-water capacity then never reallocates
	}
	return s.Union[:0]
}

// Unannotated may allocate freely.
func Unannotated(n int) []int {
	return make([]int, n)
}
