// Package shardgossip (under markbad) carries deliberately misplaced
// //hetlb:guarded and //hetlb:frozen marks: both verbs govern struct field
// lines only, and a mark that lands anywhere else is a finding. Checked by
// direct unit tests (the diagnostic lands on the annotation's own line,
// where a want comment cannot coexist).
package shardgossip

//hetlb:guarded
func notAField() {}

//hetlb:frozen
var notAStruct int

func init() {
	notAField()
	_ = notAStruct
}
