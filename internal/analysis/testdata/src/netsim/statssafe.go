// Package netsim exercises the statssafety analyzer: the directory name puts
// it in the determinism scope, where obs reads must not steer control flow
// and obs records must not sit under obs-keyed branches.
package netsim

import "hetlb/internal/obs"

// Metrics bundles stub instruments.
type Metrics struct {
	Steps    obs.Counter
	Depth    obs.Gauge
	Latency  obs.Histogram
	Trace    obs.Tracer
	simSteps int64
}

// Steered branches simulation on observability reads: every read in a
// condition is a finding, and so is every record under such a branch.
func (m *Metrics) Steered(load int64) int64 {
	if m.Steps.Value() > 100 { // want `simulation control flow keyed on obs read Counter\.Value`
		load /= 2
	}
	for m.Latency.Count() < 10 { // want `simulation control flow keyed on obs read Histogram\.Count`
		load++
	}
	switch m.Depth.Value() { // want `simulation control flow keyed on obs read Gauge\.Value`
	case 0:
		load = 0
	}
	if m.Trace.Len() > 0 { // want `simulation control flow keyed on obs read Tracer\.Len`
		m.Steps.Inc() // want `obs record Counter\.Inc inside a branch keyed on an obs read`
	}
	return load
}

// Clean records keyed on simulation state and reads outside conditions:
// observation flows one way. No diagnostics.
func (m *Metrics) Clean(load int64, moved int) int64 {
	m.simSteps++
	if moved > 0 {
		m.Steps.Inc()
		m.Latency.Observe(load)
	}
	m.Depth.Set(load)
	total := m.Steps.Value() + m.Latency.Sum() // reads feeding a report, not a branch
	return total
}

// Reporting shows the reasoned escape hatch for progress-printing branches.
func (m *Metrics) Reporting() int64 {
	var printed int64
	if m.Steps.Value()%100 == 0 { //hetlb:nondeterministic-ok reporting-only branch: printed count never reaches simulation state
		printed++
	}
	return printed
}
