// The span and timeline recorders are obs-layer too: their reads must not
// steer simulation control flow, and their records must not sit under
// branches keyed on obs-layer reads — otherwise the span trace stops being
// parallelism-invariant and stripping observability changes results.
package netsim

import (
	"hetlb/internal/obs/span"
	"hetlb/internal/obs/timeline"
)

// Runtime is a stand-in simulation runtime carrying observability sinks.
type Runtime struct {
	Spans    *span.Recorder
	Timeline *timeline.Recorder
	step     int64
}

// SteeredSpans branches simulation on span/timeline reads: each read in a
// condition is a finding, and so is every record under such a branch.
func (r *Runtime) SteeredSpans(load int64) int64 {
	if r.Spans.Len() > 100 { // want `simulation control flow keyed on obs read Recorder\.Len`
		load /= 2
	}
	for r.Timeline.Seen() < 10 { // want `simulation control flow keyed on obs read Recorder\.Seen`
		load++
	}
	switch r.Spans.Dropped() { // want `simulation control flow keyed on obs read Recorder\.Dropped`
	case 0:
		load = 0
	}
	if r.Timeline.Stride() > 1 { // want `simulation control flow keyed on obs read Recorder\.Stride`
		r.Spans.Append(span.Span{}) // want `obs record Recorder\.Append inside a branch keyed on an obs read`
	}
	return load
}

// GatedAllocation gates span-ID allocation on a ring read: allocator state
// would shift with ring occupancy, so every later span ID changes. Both the
// read and the NextID record are findings.
func (r *Runtime) GatedAllocation() span.ID {
	if r.Spans.Dropped() == 0 { // want `simulation control flow keyed on obs read Recorder\.Dropped`
		return r.Spans.NextID() // want `obs record Recorder\.NextID inside a branch keyed on an obs read`
	}
	return 0
}

// CleanSpans records unconditionally or under simulation-state branches:
// observation flows one way. No diagnostics.
func (r *Runtime) CleanSpans(moved int) {
	r.step++
	id := r.Spans.NextID()
	if moved > 0 {
		r.Spans.Append(span.Span{ID: id, Value: int64(moved)})
	}
	r.Timeline.Record(timeline.Point{Time: r.step})
}

// Export reads outside conditions, feeding a report: no diagnostics.
func (r *Runtime) Export() (int, []timeline.Point) {
	return r.Spans.Len(), r.Timeline.Points()
}

// ReportingSpans shows the reasoned escape hatch for a reporting-only branch.
func (r *Runtime) ReportingSpans() bool {
	if r.Spans.Dropped() > 0 { //hetlb:nondeterministic-ok reporting-only branch: overflow warning never reaches simulation state
		return true
	}
	return false
}
