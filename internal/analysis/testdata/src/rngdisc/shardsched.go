package rngdisc

import "hetlb/internal/rng"

// EpochReseedRaw is the sharded-engine regression the Reseed extension
// catches: re-keying the schedule generator from the raw epoch counter.
func EpochReseedRaw(seed uint64, epochs int) int {
	gen := rng.New(seed)
	perm := make([]int, 8)
	total := 0
	for epoch := 0; epoch < epochs; epoch++ {
		gen.Reseed(seed + uint64(epoch)) // want `RNG\.Reseed seeded from loop variable epoch`
		gen.PermInto(perm)
		total += perm[0]
	}
	return total
}

// EpochReseedKeyed is the blessed pattern from internal/shardgossip: the
// epoch enters only as a DeriveSeed key, so the schedule of epoch e is a
// pure function of (seed, e). No diagnostic.
func EpochReseedKeyed(seed uint64, epochs int) int {
	gen := rng.New(seed)
	perm := make([]int, 8)
	total := 0
	for epoch := 0; epoch < epochs; epoch++ {
		gen.Reseed(rng.DeriveSeed(seed, uint64(epoch)))
		gen.PermInto(perm)
		total += perm[0]
	}
	return total
}

// ReseedOutsideLoop re-keys from a plain parameter; nothing loop-derived, no
// diagnostic.
func ReseedOutsideLoop(gen *rng.RNG, seed uint64) {
	gen.Reseed(seed)
}
