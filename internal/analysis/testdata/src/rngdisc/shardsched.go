package rngdisc

import "hetlb/internal/rng"

// EpochReseedRaw is the sharded-engine regression the Reseed extension
// catches: re-keying the schedule generator from the raw epoch counter.
func EpochReseedRaw(seed uint64, epochs int) int {
	gen := rng.New(seed)
	perm := make([]int, 8)
	total := 0
	for epoch := 0; epoch < epochs; epoch++ {
		gen.Reseed(seed + uint64(epoch)) // want `RNG\.Reseed seeded from loop variable epoch`
		gen.PermInto(perm)
		total += perm[0]
	}
	return total
}

// EpochReseedKeyed is the blessed pattern from internal/shardgossip: the
// epoch enters only as a DeriveSeed key, so the schedule of epoch e is a
// pure function of (seed, e). No diagnostic.
func EpochReseedKeyed(seed uint64, epochs int) int {
	gen := rng.New(seed)
	perm := make([]int, 8)
	total := 0
	for epoch := 0; epoch < epochs; epoch++ {
		gen.Reseed(rng.DeriveSeed(seed, uint64(epoch)))
		gen.PermInto(perm)
		total += perm[0]
	}
	return total
}

// ReseedOutsideLoop re-keys from a plain parameter; nothing loop-derived, no
// diagnostic.
func ReseedOutsideLoop(gen *rng.RNG, seed uint64) {
	gen.Reseed(seed)
}

// PipelinedDrawKeyed mirrors PR 8's scheduler goroutine: the back-buffer
// draw for epoch k+1 overlaps epoch k's execution, and its generator is
// re-keyed with DeriveSeed(seed, epoch+1) ONLY — the epoch enters as a
// derive key, never as raw seed arithmetic, so the pipelined schedule stays
// a pure function of (seed, epoch) at any pipeline depth. No diagnostic.
func PipelinedDrawKeyed(seed uint64, kick <-chan []int32, done chan<- []int32) {
	gen := rng.New(seed)
	perm := make([]int, 8)
	for epoch := uint64(0); ; epoch++ {
		buf, ok := <-kick
		if !ok {
			return
		}
		gen.Reseed(rng.DeriveSeed(seed, epoch+1))
		gen.PermInto(perm)
		for t := range buf {
			buf[t] = int32(perm[t])
		}
		done <- buf
	}
}

// PipelinedDrawRaw is the same loop with the back-buffer generator re-keyed
// from raw epoch arithmetic — exactly the regression the Reseed extension
// exists to catch in the pipelined scheduler.
func PipelinedDrawRaw(seed uint64, kick <-chan []int32, done chan<- []int32) {
	gen := rng.New(seed)
	perm := make([]int, 8)
	for epoch := uint64(0); ; epoch++ {
		buf, ok := <-kick
		if !ok {
			return
		}
		gen.Reseed(seed + epoch + 1) // want `RNG\.Reseed seeded from loop variable epoch`
		gen.PermInto(perm)
		for t := range buf {
			buf[t] = int32(perm[t])
		}
		done <- buf
	}
}

// PipelinedDrawSharedGen spawns the draw as a closure capturing the
// coordinator's generator: the draw order would then race the coordinator's
// own draws. The real engine avoids this by construction — the scheduler is
// a method-value goroutine owning its generator exclusively after New.
func PipelinedDrawSharedGen(seed uint64, buf []int32) {
	gen := rng.New(seed)
	perm := make([]int, 8)
	go func() {
		gen.Reseed(rng.DeriveSeed(seed, 1)) // want `goroutine captures gen \(\*rng\.RNG\) from the enclosing scope`
		gen.PermInto(perm)                  // want `goroutine captures gen \(\*rng\.RNG\) from the enclosing scope`
		for t := range buf {
			buf[t] = int32(perm[t])
		}
	}()
}
