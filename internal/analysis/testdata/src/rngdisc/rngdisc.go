// Package rngdisc exercises the rngdiscipline analyzer: raw loop-index seeds
// and goroutine-captured generators are flagged; keyed substreams and
// explicit generator hand-over are not. The check is repo-wide, so the
// package name needs no special scope.
package rngdisc

import (
	"sync"

	"hetlb/internal/rng"
)

// Config mimics an experiment config with a seed field.
type Config struct {
	Seed uint64
	Reps int
}

// RawLoopSeeds shows the three raw-index shapes the analyzer rejects.
func RawLoopSeeds(seed uint64, n int) uint64 {
	var total uint64
	for i := 0; i < n; i++ {
		gen := rng.New(seed + uint64(i)) // want `rng\.New seeded from loop variable i`
		total += gen.Uint64()
	}
	for i := 0; i < n; i++ {
		cfg := Config{Seed: seed + uint64(i)} // want `Seed derived from loop variable i without rng\.DeriveSeed`
		total += cfg.Seed
	}
	var cfg Config
	for rep := 0; rep < n; rep++ {
		cfg.Seed = uint64(rep) * 17 // want `Seed derived from loop variable rep without rng\.DeriveSeed`
		total += cfg.Seed
	}
	return total
}

// RangeIndexSeed catches range-loop variables too.
func RangeIndexSeed(seeds []uint64) uint64 {
	var total uint64
	for i := range seeds {
		gen := rng.New(uint64(i)) // want `rng\.New seeded from loop variable i`
		total += gen.Uint64()
	}
	return total
}

// KeyedSubstreams is the blessed pattern: loop indices enter only as
// DeriveSeed/Substream keys. No diagnostics.
func KeyedSubstreams(seed uint64, n int) uint64 {
	var total uint64
	for i := 0; i < n; i++ {
		gen := rng.Substream(seed, uint64(i))
		total += gen.Uint64()
	}
	for i := 0; i < n; i++ {
		cfg := Config{Seed: rng.DeriveSeed(seed, uint64(i))}
		gen := rng.New(rng.DeriveSeed(cfg.Seed, uint64(i)))
		total += gen.Uint64()
	}
	return total
}

// LoopLocalSeed does not involve the loop variable; fine.
func LoopLocalSeed(seed uint64, n int) uint64 {
	var total uint64
	for i := 0; i < n; i++ {
		gen := rng.New(seed)
		total += gen.Uint64()
	}
	return total
}

// CapturedGenerator shares one generator across goroutines: draw order then
// depends on scheduling.
func CapturedGenerator(seed uint64, n int) {
	gen := rng.New(seed)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = gen.Uint64() // want `goroutine captures gen \(\*rng\.RNG\) from the enclosing scope`
		}()
	}
	wg.Wait()
}

// HandedOverGenerator passes a per-goroutine substream as an argument: each
// goroutine owns its stream. No diagnostic.
func HandedOverGenerator(seed uint64, n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(g *rng.RNG) {
			defer wg.Done()
			_ = g.Uint64()
		}(rng.Substream(seed, uint64(i)))
	}
	wg.Wait()
}
