package rngdisc

import "hetlb/internal/rng"

// plan mimics a per-replication plan struct whose field name says nothing
// about seeds — the shape that used to launder a raw loop-index seed past
// the analyzer: stored into a local struct field, read back two lines later.
type plan struct {
	base uint64
	reps int
}

// FieldLaundered stores the raw index seed into a non-seed-named local
// field and reads it straight back into rng.New. The generator is still a
// function of loop order; the field hop must not wash that off.
func FieldLaundered(seed uint64, n int) uint64 {
	var total uint64
	for i := 0; i < n; i++ {
		var p plan
		p.base = seed + uint64(i)
		gen := rng.New(p.base) // want `rng\.New seeded from loop variable i`
		total += gen.Uint64()
	}
	return total
}

// LiteralLaundered does the same hop through a composite literal.
func LiteralLaundered(seed uint64, n int) uint64 {
	var total uint64
	for i := 0; i < n; i++ {
		p := plan{base: seed ^ uint64(i), reps: 1}
		gen := rng.New(p.base) // want `rng\.New seeded from loop variable i`
		total += gen.Uint64()
	}
	return total
}

// AfterLoop reads the tainted field after the loop ends: the value is the
// last iteration's, so the stream still depends on how the loop was
// numbered, and the loop variable being out of scope must not matter.
func AfterLoop(seed uint64, n int) uint64 {
	var p plan
	for i := 0; i < n; i++ {
		p.base = seed + uint64(i)
	}
	gen := rng.New(p.base) // want `rng\.New seeded from loop variable i`
	return gen.Uint64()
}

// FieldDerived is the blessed version: the field holds a derived seed, so
// reading it back is clean.
func FieldDerived(seed uint64, n int) uint64 {
	var total uint64
	for i := 0; i < n; i++ {
		var p plan
		p.base = rng.DeriveSeed(seed, uint64(i))
		gen := rng.New(p.base)
		total += gen.Uint64()
	}
	return total
}

// FieldOverwritten kills the taint before the read: the raw value never
// reaches a generator, so there is nothing to flag.
func FieldOverwritten(seed uint64, n int) uint64 {
	var total uint64
	for i := 0; i < n; i++ {
		var p plan
		p.base = seed + uint64(i)
		p.base = rng.DeriveSeed(seed, uint64(i))
		gen := rng.New(p.base)
		total += gen.Uint64()
	}
	return total
}

// ReplacedLiteral reassigns the whole struct cleanly between the tainted
// write and the read: stale taints on the old value must not survive.
func ReplacedLiteral(seed uint64, n int) uint64 {
	var total uint64
	for i := 0; i < n; i++ {
		p := plan{base: seed + uint64(i)}
		p = plan{base: rng.DeriveSeed(seed, uint64(i))}
		gen := rng.New(p.base)
		total += gen.Uint64()
	}
	return total
}
