package rngdisc

import "hetlb/internal/rng"

// crash is a stand-in for faults.Crash: a machine down for an interval.
type crash struct {
	Machine  int
	At       int64
	Recover  int64
	LoseJobs bool
}

// DownSetDrawRaw draws one crash per scheduled fault with a fresh generator
// keyed by raw index arithmetic — the shape that makes crash k's interval
// depend on how the caller numbered the loop rather than on a derive key.
func DownSetDrawRaw(seed uint64, machines, count int) []crash {
	out := make([]crash, 0, count)
	for k := 0; k < count; k++ {
		gen := rng.New(seed ^ uint64(k)) // want `rng\.New seeded from loop variable k`
		out = append(out, crash{
			Machine: int(gen.Uint64() % uint64(machines)),
			At:      1 + int64(gen.Uint64()%32),
			Recover: 40,
		})
	}
	return out
}

// DownSetDrawKeyed is the blessed plan-draw discipline from
// internal/faults.RandomCrashes: each scheduled crash draws from a substream
// keyed by its index, so crash k's (machine, interval, loss) triple is a pure
// function of (seed, k) — reordering or subsetting the plan never perturbs
// the surviving crashes. No diagnostic.
func DownSetDrawKeyed(seed uint64, machines, count int) []crash {
	out := make([]crash, 0, count)
	for k := 0; k < count; k++ {
		gen := rng.Substream(seed, uint64(k))
		at := 1 + int64(gen.Uint64()%32)
		out = append(out, crash{
			Machine:  int(gen.Uint64() % uint64(machines)),
			At:       at,
			Recover:  at + 1 + int64(gen.Uint64()%16),
			LoseJobs: gen.Intn(4) == 0,
		})
	}
	return out
}

// chaosCell mimics the sharded chaos sweep's per-cell config.
type chaosCell struct {
	Seed    uint64
	Crashes int
}

// ChaosCellSeedsRaw keys each crash-count cell's plan seed by raw index
// arithmetic: inserting a cell then shifts every later cell's fault plan.
func ChaosCellSeedsRaw(seed uint64, counts []int) []chaosCell {
	cells := make([]chaosCell, 0, len(counts))
	for cell, crashes := range counts {
		cells = append(cells, chaosCell{
			Seed:    seed*31 + uint64(cell), // want `Seed derived from loop variable cell without rng\.DeriveSeed`
			Crashes: crashes,
		})
	}
	return cells
}

// ChaosCellSeedsKeyed is the sweep's actual discipline: the cell index
// enters only as a DeriveSeed key. No diagnostic.
func ChaosCellSeedsKeyed(seed uint64, counts []int) []chaosCell {
	cells := make([]chaosCell, 0, len(counts))
	for cell, crashes := range counts {
		cells = append(cells, chaosCell{
			Seed:    rng.DeriveSeed(seed, uint64(cell)),
			Crashes: crashes,
		})
	}
	return cells
}
