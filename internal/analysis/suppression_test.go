package analysis_test

import (
	"path/filepath"
	"strings"
	"testing"

	"hetlb/internal/analysis"
	"hetlb/internal/analysis/analysistest"
	"hetlb/internal/analysis/load"
	"hetlb/internal/analysis/suite"
)

// TestSuppressionMechanism runs the full suite — the driver configuration,
// unused-suppression reporting included — over the workload golden package:
// a reasoned //hetlb:nondeterministic-ok silences exactly one diagnostic
// (its twin on the next line still fires), an unknown annotation is itself
// reported, and a suppression that silences nothing is flagged as stale.
func TestSuppressionMechanism(t *testing.T) {
	testdata := filepath.Join(".", "testdata")
	analysistest.RunSuite(t, testdata, suite.All(), true, "workload")
}

// TestMissingReason asserts directly (any text appended to the comment would
// become its reason) that a reason-free suppression is rejected and does not
// suppress the violation on its governed line.
func TestMissingReason(t *testing.T) {
	loader := load.NewTestLoader(filepath.Join("testdata", "src"))
	pkg, err := loader.Load("des")
	if err != nil {
		t.Fatalf("loading des: %v", err)
	}
	diags, _, err := analysis.Run(pkg, suite.All(), true)
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	var gotReason, gotClock bool
	for _, d := range diags {
		switch {
		case strings.Contains(d.Message, "requires a reason"):
			gotReason = true
		case strings.Contains(d.Message, "wall-clock read time.Now"):
			gotClock = true
		default:
			t.Errorf("unexpected diagnostic: %s", d.Message)
		}
	}
	if !gotReason {
		t.Error("missing 'requires a reason' diagnostic for bare suppression")
	}
	if !gotClock {
		t.Error("bare suppression must not suppress: wall-clock diagnostic missing")
	}
}
