package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// The //hetlb: annotation grammar. Annotations are ordinary line comments
// beginning with exactly "//hetlb:" (no space), followed by a verb and, for
// suppressions, a mandatory free-text reason:
//
//	//hetlb:noalloc
//	    Doc-comment marker: the function below must not allocate on its
//	    steady-state path. Consumed by the noalloc analyzer.
//
//	//hetlb:nondeterministic-ok <reason>
//	    Suppresses determinism-class diagnostics (determinism,
//	    rngdiscipline, statssafety) reported on the annotated line.
//
//	//hetlb:alloc-ok <reason>
//	    Suppresses noalloc diagnostics reported on the annotated line
//	    (amortized growth paths that reach a high-water mark).
//
//	//hetlb:frozen
//	    Field marker: the struct field on the governed line is frozen per
//	    epoch — worker goroutines read it without synchronization, so only
//	    coordinator-phase code may write it. Consumed by phasefreeze.
//
//	//hetlb:guarded
//	    Field marker: the struct field on the governed line is guarded by
//	    its struct's mutex — writes must hold a shard lock. Consumed by
//	    lockshape.
//
//	//hetlb:concurrency-ok <reason>
//	    Suppresses concurrency-class diagnostics (lockshape, phasefreeze)
//	    reported on the annotated line — the escape hatch for writes whose
//	    safety argument lives outside the analyzable lock/phase shape
//	    (e.g. the phase-B lockless rescan between barriers).
//
// A suppression or field-marker comment may trail the governed line or stand
// alone on the line directly above it. Unknown verbs, missing reasons and
// misplaced markers are themselves diagnostics: the annotation layer is
// checked, not trusted.
const (
	AnnotationPrefix = "//hetlb:"

	// VerbNoalloc marks a function for the noalloc analyzer.
	VerbNoalloc = "noalloc"
	// VerbNondeterministicOK suppresses determinism-class findings.
	VerbNondeterministicOK = "nondeterministic-ok"
	// VerbAllocOK suppresses noalloc findings.
	VerbAllocOK = "alloc-ok"
	// VerbFrozen marks an epoch-frozen field for the phasefreeze analyzer.
	VerbFrozen = "frozen"
	// VerbGuarded marks a mutex-guarded field for the lockshape analyzer.
	VerbGuarded = "guarded"
	// VerbConcurrencyOK suppresses concurrency-class findings.
	VerbConcurrencyOK = "concurrency-ok"
)

// annotationChecker is the pseudo-analyzer name carried by diagnostics about
// the annotations themselves (unknown verb, missing reason, unused
// suppression). It is never suppressible.
const annotationChecker = "hetlbvet"

// suppressionScope lists which analyzers each suppression verb can silence.
var suppressionScope = map[string][]string{
	VerbNondeterministicOK: {"determinism", "rngdiscipline", "statssafety", "seedflow"},
	VerbAllocOK:            {"noalloc"},
	VerbConcurrencyOK:      {"lockshape", "phasefreeze"},
}

// Suppression is one parsed suppression comment.
type Suppression struct {
	Verb   string
	Reason string
	Pos    token.Pos
	// File and Line locate the code line the suppression governs: the
	// comment's own line if code shares it, otherwise the line below.
	File string
	Line int
	used bool
}

// Annotations is the parsed //hetlb: layer of one package.
type Annotations struct {
	suppressions []*Suppression
	// noallocLines records file:line of every //hetlb:noalloc comment so the
	// noalloc analyzer can cross-check placement (see MisplacedNoalloc).
	noalloc map[posKey]token.Pos
	// marks records field markers (frozen, guarded) by verb and governed
	// line. Unlike noalloc (a doc-comment marker matched to the function
	// below), field markers use suppression-style line governance: a
	// trailing comment governs its own line, a standalone one the line
	// below — so a mark sits directly on the struct field it names.
	marks map[string]map[posKey]token.Pos
}

type posKey struct {
	file string
	line int
}

// ParseAnnotations scans all comments of the files, returning the parsed
// annotation set plus diagnostics for malformed annotations (unknown verb,
// suppression without a reason).
func ParseAnnotations(fset *token.FileSet, files []*ast.File) (*Annotations, []Diagnostic) {
	ann := &Annotations{
		noalloc: make(map[posKey]token.Pos),
		marks:   make(map[string]map[posKey]token.Pos),
	}
	var diags []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, AnnotationPrefix) {
					continue
				}
				body := strings.TrimPrefix(c.Text, AnnotationPrefix)
				verb, reason, _ := strings.Cut(body, " ")
				reason = strings.TrimSpace(reason)
				pos := fset.Position(c.Pos())
				switch verb {
				case VerbNoalloc:
					if reason != "" {
						diags = append(diags, Diagnostic{
							Pos:      c.Pos(),
							Message:  fmt.Sprintf("//hetlb:%s takes no argument (got %q)", VerbNoalloc, reason),
							Analyzer: annotationChecker,
						})
						continue
					}
					ann.noalloc[posKey{pos.Filename, pos.Line}] = c.Pos()
				case VerbFrozen, VerbGuarded:
					if reason != "" {
						diags = append(diags, Diagnostic{
							Pos:      c.Pos(),
							Message:  fmt.Sprintf("//hetlb:%s takes no argument (got %q)", verb, reason),
							Analyzer: annotationChecker,
						})
						continue
					}
					line := pos.Line
					if standsAlone(fset, f, c) {
						line++
					}
					if ann.marks[verb] == nil {
						ann.marks[verb] = make(map[posKey]token.Pos)
					}
					ann.marks[verb][posKey{pos.Filename, line}] = c.Pos()
				case VerbNondeterministicOK, VerbAllocOK, VerbConcurrencyOK:
					if reason == "" {
						diags = append(diags, Diagnostic{
							Pos:      c.Pos(),
							Message:  fmt.Sprintf("suppression //hetlb:%s requires a reason", verb),
							Analyzer: annotationChecker,
						})
						continue
					}
					s := &Suppression{Verb: verb, Reason: reason, Pos: c.Pos(), File: pos.Filename, Line: pos.Line}
					// A comment alone on its line governs the next line; a
					// trailing comment governs its own line. "Alone" means no
					// code token precedes it: the comment group's position
					// equals the line's first non-blank content — detected by
					// comparing against the file's line start through the
					// token.File.
					if standsAlone(fset, f, c) {
						s.Line++
					}
					ann.suppressions = append(ann.suppressions, s)
				default:
					diags = append(diags, Diagnostic{
						Pos: c.Pos(),
						Message: fmt.Sprintf("unknown //hetlb: annotation %q (known: %s, %s, %s, %s, %s, %s)",
							verb, VerbNoalloc, VerbFrozen, VerbGuarded, VerbNondeterministicOK, VerbAllocOK, VerbConcurrencyOK),
						Analyzer: annotationChecker,
					})
				}
			}
		}
	}
	return ann, diags
}

// standsAlone reports whether comment c is the first thing on its line: no
// code token ends on the same line before it. A trailing comment governs its
// own line; a standalone one governs the line below.
func standsAlone(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	cline := fset.Position(c.Pos()).Line
	alone := true
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || !alone {
			return false
		}
		if n.Pos() >= c.Pos() {
			return false // entirely after the comment; skip subtree
		}
		if end := n.End(); end <= c.Pos() && fset.Position(end-1).Line == cline {
			alone = false // code before the comment ends on its line
			return false
		}
		return true // enclosing node: recurse into children
	})
	return alone
}

// IsNoalloc reports whether a //hetlb:noalloc comment sits at file:line (used
// by the noalloc analyzer to match doc comments to functions).
func (a *Annotations) IsNoalloc(file string, line int) bool {
	_, ok := a.noalloc[posKey{file, line}]
	return ok
}

// IsMarked reports whether a field marker with the given verb (frozen,
// guarded) governs file:line.
func (a *Annotations) IsMarked(verb, file string, line int) bool {
	_, ok := a.marks[verb][posKey{file, line}]
	return ok
}

// MarkPositions returns the comment position of every marker with the given
// verb, keyed by the governed file:line — the consuming analyzer checks each
// against the fields it actually found and reports markers that match no
// field (misplaced marks are findings, like misplaced noalloc).
func (a *Annotations) MarkPositions(verb string) map[token.Pos]bool {
	out := make(map[token.Pos]bool, len(a.marks[verb]))
	for _, p := range a.marks[verb] {
		out[p] = true
	}
	return out
}

// MarkAt returns the comment position of the marker governing file:line.
func (a *Annotations) MarkAt(verb, file string, line int) (token.Pos, bool) {
	p, ok := a.marks[verb][posKey{file, line}]
	return p, ok
}

// NoallocPositions returns the position of every //hetlb:noalloc comment.
func (a *Annotations) NoallocPositions() []token.Pos {
	out := make([]token.Pos, 0, len(a.noalloc))
	for _, p := range a.noalloc {
		out = append(out, p)
	}
	return out
}

// Apply filters diags through the suppression set: a diagnostic from a
// suppressible analyzer within a verb's scope, positioned on a suppressed
// line, is dropped (and the suppression marked used). Diagnostics from
// non-suppressible analyzers always survive.
func (a *Annotations) Apply(fset *token.FileSet, diags []Diagnostic, suppressible map[string]bool) []Diagnostic {
	kept := diags[:0:0]
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if s := a.match(d.Analyzer, pos.Filename, pos.Line); s != nil && suppressible[d.Analyzer] {
			s.used = true
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

// match returns the first suppression governing (file, line) whose verb scope
// includes the analyzer.
func (a *Annotations) match(analyzer, file string, line int) *Suppression {
	for _, s := range a.suppressions {
		if s.File != file || s.Line != line {
			continue
		}
		for _, scoped := range suppressionScope[s.Verb] {
			if scoped == analyzer {
				return s
			}
		}
	}
	return nil
}

// Unused returns a diagnostic for every suppression that silenced nothing.
// Only meaningful after Apply ran for the full analyzer suite: a suppression
// is "unused" when no analyzer in its scope found anything on its line, which
// means either the code was fixed (delete the comment) or the comment drifted
// away from the line it was written for.
func (a *Annotations) Unused() []Diagnostic {
	var out []Diagnostic
	for _, s := range a.suppressions {
		if !s.used {
			out = append(out, Diagnostic{
				Pos:      s.Pos,
				Message:  fmt.Sprintf("unused suppression //hetlb:%s (no finding on the governed line; delete or re-anchor it)", s.Verb),
				Analyzer: annotationChecker,
			})
		}
	}
	return out
}
