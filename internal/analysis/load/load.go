// Package load type-checks packages for the hetlbvet analyzers using only
// the standard library.
//
// The repository builds with zero module dependencies, so the usual loader
// (golang.org/x/tools/go/packages) is not available. This loader covers the
// two situations hetlbvet actually has: packages inside this module (resolved
// relative to the go.mod root) and GOPATH-style source trees (the
// analysistest testdata layout, searched first so tests can stub module
// packages). Standard-library imports are type-checked from GOROOT source via
// go/importer's "source" compiler, sharing the loader's FileSet so positions
// stay coherent.
package load

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"hetlb/internal/analysis"
)

// Loader loads and type-checks packages. It caches by import path, so a
// package shared by several roots is type-checked once and all importers see
// the same *types.Package identity.
type Loader struct {
	Fset *token.FileSet

	// ModulePath/ModuleDir map import paths with the module prefix onto the
	// module directory tree. Empty when loading pure GOPATH-style roots.
	ModulePath string
	ModuleDir  string

	// SrcRoots are GOPATH-style src directories (root/<importPath>/*.go),
	// searched before the module mapping and before GOROOT.
	SrcRoots []string

	cache    map[string]*entry
	stdlib   types.Importer
	buildCtx build.Context
}

type entry struct {
	pkg     *analysis.Package
	err     error
	loading bool
}

// NewLoader returns a loader rooted at the enclosing module of dir (found by
// walking up to go.mod). dir may be "" for the current directory.
func NewLoader(dir string) (*Loader, error) {
	if dir == "" {
		dir = "."
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modDir, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	l := newBare()
	l.ModulePath = modPath
	l.ModuleDir = modDir
	return l, nil
}

// NewTestLoader returns a loader over GOPATH-style source roots only (the
// analysistest layout): import path P resolves to <root>/P for the first
// root containing it.
func NewTestLoader(srcRoots ...string) *Loader {
	l := newBare()
	l.SrcRoots = srcRoots
	return l
}

func newBare() *Loader {
	fset := token.NewFileSet()
	l := &Loader{
		Fset:     fset,
		cache:    make(map[string]*entry),
		stdlib:   importer.ForCompiler(fset, "source", nil),
		buildCtx: build.Default,
	}
	return l
}

// findModule walks up from dir to the nearest go.mod and returns its
// directory and module path.
func findModule(dir string) (modDir, modPath string, err error) {
	for d := dir; ; {
		data, rerr := os.ReadFile(filepath.Join(d, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("load: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("load: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// resolveDir maps an import path to a source directory, or "" if the path is
// not in any root of this loader (then GOROOT is tried by the importer).
func (l *Loader) resolveDir(path string) string {
	for _, root := range l.SrcRoots {
		dir := filepath.Join(root, filepath.FromSlash(path))
		if hasGoFiles(dir) {
			return dir
		}
	}
	if l.ModulePath != "" {
		if path == l.ModulePath {
			return l.ModuleDir
		}
		if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
			dir := filepath.Join(l.ModuleDir, filepath.FromSlash(rest))
			if hasGoFiles(dir) {
				return dir
			}
		}
	}
	return ""
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// Load type-checks the package at importPath (resolved through the loader's
// roots) and returns it. Results are cached; import cycles are reported
// rather than deadlocking.
func (l *Loader) Load(importPath string) (*analysis.Package, error) {
	if e, ok := l.cache[importPath]; ok {
		if e.loading {
			return nil, fmt.Errorf("load: import cycle through %q", importPath)
		}
		return e.pkg, e.err
	}
	dir := l.resolveDir(importPath)
	if dir == "" {
		return nil, fmt.Errorf("load: cannot resolve %q in any source root", importPath)
	}
	e := &entry{loading: true}
	l.cache[importPath] = e
	e.pkg, e.err = l.loadDir(importPath, dir)
	e.loading = false
	return e.pkg, e.err
}

// loadDir parses and type-checks the non-test files of dir as importPath.
func (l *Loader) loadDir(importPath, dir string) (*analysis.Package, error) {
	names, err := l.sourceFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("load: no buildable Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Sizes:    types.SizesFor(l.buildCtx.Compiler, l.buildCtx.GOARCH),
	}
	pkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %w", importPath, err)
	}
	return &analysis.Package{Fset: l.Fset, Files: files, Pkg: pkg, TypesInfo: info}, nil
}

// sourceFiles lists the buildable non-test Go files of dir in sorted order,
// honouring build constraints through go/build's MatchFile.
func (l *Loader) sourceFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, "_") || strings.HasPrefix(name, ".") {
			continue
		}
		match, err := l.buildCtx.MatchFile(dir, name)
		if err != nil {
			return nil, err
		}
		if match {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// loaderImporter adapts the loader to types.Importer: loader roots first,
// then GOROOT source for the standard library.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if l.resolveDir(path) != "" {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Pkg, nil
	}
	if hasGoFiles(filepath.Join(l.buildCtx.GOROOT, "src", filepath.FromSlash(path))) {
		return l.stdlib.Import(path)
	}
	return nil, fmt.Errorf("load: unresolved import %q (not in source roots, module, or GOROOT)", path)
}

// ExpandPatterns turns command-line package patterns into import paths. It
// understands "./..." and dir/... (recursive walks skipping testdata, .git
// and dependency-free dirs) plus plain directory or import paths.
func (l *Loader) ExpandPatterns(patterns []string) ([]string, error) {
	var out []string
	seen := make(map[string]bool)
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "all" || pat == "./...":
			paths, err := l.walkModule(l.ModuleDir)
			if err != nil {
				return nil, err
			}
			for _, p := range paths {
				add(p)
			}
		case strings.HasSuffix(pat, "/..."):
			root := strings.TrimSuffix(pat, "/...")
			dir, err := filepath.Abs(root)
			if err != nil {
				return nil, err
			}
			paths, err := l.walkModule(dir)
			if err != nil {
				return nil, err
			}
			for _, p := range paths {
				add(p)
			}
		default:
			p, err := l.dirToImportPath(pat)
			if err != nil {
				return nil, err
			}
			add(p)
		}
	}
	return out, nil
}

// walkModule lists the import paths of all buildable packages under dir.
func (l *Loader) walkModule(dir string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != dir && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			p, err := l.dirToImportPath(path)
			if err != nil {
				return err
			}
			out = append(out, p)
		}
		return nil
	})
	sort.Strings(out)
	return out, err
}

// dirToImportPath maps a directory (or an already-valid import path) to the
// module-relative import path.
func (l *Loader) dirToImportPath(arg string) (string, error) {
	if l.resolveDir(arg) != "" {
		return arg, nil // already an import path
	}
	abs, err := filepath.Abs(arg)
	if err != nil {
		return "", err
	}
	if abs == l.ModuleDir {
		return l.ModulePath, nil
	}
	rel, err := filepath.Rel(l.ModuleDir, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("load: %s is outside module %s", arg, l.ModulePath)
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}
