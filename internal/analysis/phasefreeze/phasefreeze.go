// Package phasefreeze proves the sharded engine's frozen-per-epoch contract
// mechanically: fields that worker goroutines read without synchronization —
// the fault down-set, the front schedule buffer, the dispatch phase, the
// verified-stable latch — may be written only by coordinator-phase code.
//
// The PR-9 contract is prose: "down is read-only during an epoch; written
// between epochs". What makes it safe is that every write happens in
// functions reachable only from StepEpoch between the epoch barriers, never
// from the worker pool. That property is a reachability fact on the call
// graph, so it is checked as one: a field marked //hetlb:frozen may be
// written in any coordinator-only function (not reachable from a `go`
// spawn), but a write in worker-concurrent code is a finding carrying the
// spawn path that makes the function concurrent.
//
// One exemption makes the double-buffered schedule checkable: a write whose
// root is a *parameter* of the enclosing function is ownership handoff —
// drawSchedule(b *schedule) fills a back buffer it received over a channel
// and exclusively owns. The receiver deliberately does NOT count: shared
// engine state reached through a receiver is exactly what the check is for.
// Writes that launder a frozen field through a local alias before storing
// are invisible (no points-to analysis); see DESIGN.md §16.
package phasefreeze

import (
	"go/ast"
	"go/token"
	"go/types"

	"hetlb/internal/analysis"
	"hetlb/internal/analysis/flow"
)

// Analyzer is the epoch-frozen field check.
var Analyzer = &analysis.Analyzer{
	Name:         "phasefreeze",
	Doc:          "//hetlb:frozen fields (read by workers without sync) may be written only in coordinator-phase code, never on a worker path",
	Run:          run,
	Suppressible: true,
}

type checker struct {
	pass     *analysis.Pass
	graph    *flow.Graph
	conc     *flow.Concurrency
	ann      *analysis.Annotations
	frozen   map[*types.Var]bool
	consumed map[token.Pos]bool
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !analysis.IsConcurrencyScoped(pass.Pkg.Path()) {
		return nil, nil
	}
	c := &checker{
		pass:     pass,
		graph:    flow.Build(pass),
		frozen:   make(map[*types.Var]bool),
		consumed: make(map[token.Pos]bool),
	}
	c.conc = c.graph.Concurrency()
	c.ann, _ = analysis.ParseAnnotations(pass.Fset, pass.Files) // malformed-annotation diags are the driver's
	c.collectFields()
	for _, fn := range c.graph.Funcs {
		if c.conc.Concurrent(fn) {
			c.checkFunc(fn)
		}
	}
	for pos := range c.ann.MarkPositions(analysis.VerbFrozen) {
		if !c.consumed[pos] {
			c.pass.Reportf(pos, "misplaced //hetlb:%s: no struct field on the governed line", analysis.VerbFrozen)
		}
	}
	// A `go` through a function value hides a spawn tree from the
	// reachability check; the engine has none, and any future one must
	// either stay resolvable or carry a suppression here.
	for _, call := range c.graph.UnresolvedGo {
		c.pass.Reportf(call.Pos,
			"go statement with a dynamically-resolved callee: phasefreeze cannot see what this goroutine reaches; spawn a named function or method instead")
	}
	return nil, nil
}

// collectFields resolves //hetlb:frozen marks to field objects.
func (c *checker) collectFields() {
	for _, file := range c.pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					obj, ok := c.pass.TypesInfo.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					pos := c.pass.Fset.Position(name.Pos())
					if mark, ok := c.ann.MarkAt(analysis.VerbFrozen, pos.Filename, pos.Line); ok {
						c.frozen[obj] = true
						c.consumed[mark] = true
					}
				}
			}
			return true
		})
	}
}

// checkFunc scans one worker-concurrent function for frozen-field writes.
func (c *checker) checkFunc(fn *flow.Func) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // its own graph node, checked separately
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				c.checkWrite(fn, lhs)
			}
		case *ast.IncDecStmt:
			c.checkWrite(fn, n.X)
		case *ast.CallExpr:
			// copy(dst, ...) mutates dst's elements: a write for this check.
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "copy" && len(n.Args) == 2 {
				if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					c.checkWrite(fn, n.Args[0])
				}
			}
		}
		return true
	})
}

// checkWrite reports lhs if it targets a frozen field from a non-exempt
// root.
func (c *checker) checkWrite(fn *flow.Func, lhs ast.Expr) {
	field := c.frozenFieldOf(lhs)
	if field == nil {
		return
	}
	if root := analysis.RootIdent(lhs); root != nil {
		if obj := c.pass.TypesInfo.Uses[root]; obj != nil && fn.IsParam(obj) {
			// Ownership handoff: the caller passed this buffer in, so the
			// function owns it exclusively (the double-buffered schedule
			// draw). Receivers do not qualify.
			return
		}
	}
	c.pass.Reportf(lhs.Pos(),
		"write to frozen field %s on a worker path (%s): //hetlb:frozen fields are read by workers without synchronization and may be written only in coordinator-phase code (DESIGN.md §16)",
		field.Name(), c.conc.Trace(fn))
}

// frozenFieldOf resolves the first //hetlb:frozen field along lhs's selector
// chain, or nil.
func (c *checker) frozenFieldOf(lhs ast.Expr) *types.Var {
	var found *types.Var
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		if found != nil {
			return
		}
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			if sel, ok := c.pass.TypesInfo.Selections[x]; ok && sel.Kind() == types.FieldVal {
				if field, ok := sel.Obj().(*types.Var); ok && c.frozen[field] {
					found = field
					return
				}
			}
			walk(x.X)
		case *ast.IndexExpr:
			walk(x.X)
		case *ast.StarExpr:
			walk(x.X)
		}
	}
	walk(lhs)
	return found
}
