package phasefreeze_test

import (
	"path/filepath"
	"strings"
	"testing"

	"hetlb/internal/analysis"
	"hetlb/internal/analysis/analysistest"
	"hetlb/internal/analysis/load"
	"hetlb/internal/analysis/phasefreeze"
)

// TestPhasefreeze runs the golden packages: freezebad holds worker-path
// writes to frozen fields, freezeclean pins the coordinator-phase and
// ownership-handoff shapes the real engine uses.
func TestPhasefreeze(t *testing.T) {
	testdata := filepath.Join("..", "testdata")
	analysistest.Run(t, testdata, phasefreeze.Analyzer,
		"freezebad/shardgossip", "freezeclean/shardgossip")
}

// TestOutOfScope proves the analyzer is inert outside the concurrency
// scope: unscopedlocks has every violating shape, but is not shardgossip.
func TestOutOfScope(t *testing.T) {
	loader := load.NewTestLoader(filepath.Join("..", "testdata", "src"))
	pkg, err := loader.Load("unscopedlocks")
	if err != nil {
		t.Fatalf("loading unscopedlocks: %v", err)
	}
	diags, _, err := analysis.Run(pkg, []*analysis.Analyzer{phasefreeze.Analyzer}, false)
	if err != nil {
		t.Fatalf("running phasefreeze: %v", err)
	}
	if len(diags) != 0 {
		t.Fatalf("got %d diagnostics on an unscoped package, want 0: %+v", len(diags), diags)
	}
}

// TestMisplacedFrozen asserts directly (the diagnostic lands on the
// annotation's own line, where a want comment cannot coexist) that a
// //hetlb:frozen governing anything but a struct field is reported.
func TestMisplacedFrozen(t *testing.T) {
	loader := load.NewTestLoader(filepath.Join("..", "testdata", "src"))
	pkg, err := loader.Load("markbad/shardgossip")
	if err != nil {
		t.Fatalf("loading markbad/shardgossip: %v", err)
	}
	diags, _, err := analysis.Run(pkg, []*analysis.Analyzer{phasefreeze.Analyzer}, false)
	if err != nil {
		t.Fatalf("running phasefreeze: %v", err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly 1: %+v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "misplaced //hetlb:frozen") {
		t.Errorf("diagnostic %q does not report the misplaced mark", diags[0].Message)
	}
}
