package flow

import (
	"go/ast"
	"path/filepath"
	"strings"
	"testing"

	"hetlb/internal/analysis"
	"hetlb/internal/analysis/load"
)

func loadGolden(t *testing.T) *Graph {
	t.Helper()
	loader := load.NewTestLoader(filepath.Join("testdata", "src"))
	pkg, err := loader.Load("flowgraph")
	if err != nil {
		t.Fatalf("loading flowgraph: %v", err)
	}
	pass := &analysis.Pass{
		Analyzer:  &analysis.Analyzer{Name: "flowtest"},
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Pkg,
		TypesInfo: pkg.TypesInfo,
	}
	return Build(pass)
}

func findFunc(t *testing.T, g *Graph, name string) *Func {
	t.Helper()
	for _, fn := range g.Funcs {
		if fn.Name == name {
			return fn
		}
	}
	t.Fatalf("function %q not in graph; have %v", name, names(g.Funcs))
	return nil
}

func names(fns []*Func) []string {
	out := make([]string, len(fns))
	for i, fn := range fns {
		out[i] = fn.Name
	}
	return out
}

func TestGraphShape(t *testing.T) {
	g := loadGolden(t)

	worker := findFunc(t, g, "(*engine).worker")
	if len(worker.GoSpawns) != 1 {
		t.Errorf("worker: want 1 go-spawn edge, got %d", len(worker.GoSpawns))
	}
	lit := findFunc(t, g, "(*engine).start$1")
	if len(lit.GoSpawns) != 1 {
		t.Errorf("start$1: want 1 go-spawn edge, got %d", len(lit.GoSpawns))
	}
	if lit.Enclosing == nil || lit.Enclosing.Name != "(*engine).start" {
		t.Errorf("start$1: wrong enclosing function %v", lit.Enclosing)
	}

	// The function-value reference f := e.helper must produce a Ref edge.
	start := findFunc(t, g, "(*engine).start")
	refToHelper := false
	for _, c := range start.Calls {
		if c.Ref && c.Callee != nil && c.Callee.Name == "(*engine).helper" {
			refToHelper = true
		}
	}
	if !refToHelper {
		t.Error("start: missing Ref edge to helper for the method-value expression")
	}

	// go fn() through a parameter cannot be resolved: must land in
	// UnresolvedGo, not vanish.
	if len(g.UnresolvedGo) != 1 {
		t.Errorf("want exactly 1 unresolved go statement, got %d", len(g.UnresolvedGo))
	}
}

func TestConcurrencyClassification(t *testing.T) {
	g := loadGolden(t)
	conc := g.Concurrency()

	wantConcurrent := []string{
		"(*engine).worker",  // direct go
		"(*engine).start$1", // go func(){}()
		"(*engine).helper",  // called from worker
		"(*engine).deep",    // called from the spawned literal
	}
	for _, name := range wantConcurrent {
		if !conc.Concurrent(findFunc(t, g, name)) {
			t.Errorf("%s: want worker-concurrent", name)
		}
	}
	for _, name := range []string{"coordinatorOnly", "(*engine).start", "dynamic", "assignShapes"} {
		if conc.Concurrent(findFunc(t, g, name)) {
			t.Errorf("%s: must not be worker-concurrent", name)
		}
	}

	// deep is only reachable through the spawned literal; its trace must
	// name the spawn site and the path.
	trace := conc.Trace(findFunc(t, g, "(*engine).deep"))
	if !strings.Contains(trace, "start$1") || !strings.Contains(trace, "goroutine started at") ||
		!strings.Contains(trace, "→ (*engine).deep") {
		t.Errorf("deep: unexpected trace %q", trace)
	}
}

func TestParamIndexes(t *testing.T) {
	g := loadGolden(t)
	worker := findFunc(t, g, "(*engine).worker")
	if worker.NumParams() != 1 {
		t.Fatalf("worker: want 1 param, got %d", worker.NumParams())
	}
	// The receiver must NOT be a parameter (phasefreeze's handoff exemption
	// depends on this).
	sig := worker.Type()
	if sig.Recv() == nil {
		t.Fatal("worker: expected a receiver")
	}
	if worker.IsParam(sig.Recv()) {
		t.Error("worker: receiver wrongly classified as parameter")
	}
	if !worker.IsParam(sig.Params().At(0)) {
		t.Error("worker: declared parameter s not classified as parameter")
	}
}

func TestValueFlowKeys(t *testing.T) {
	g := loadGolden(t)
	fn := findFunc(t, g, "assignShapes")
	assigns := Assigns(g.Pass.TypesInfo, fn)

	// Field-path sensitivity: c.Seed and c.Reps must be distinct keys that
	// do not cover each other, while both are covered by bare c.
	var seedKey, repsKey, rootKey Key
	for _, a := range assigns {
		switch a.LHS.Path {
		case "Seed":
			seedKey = a.LHS
		case "Reps":
			repsKey = a.LHS
		}
	}
	if seedKey.Obj == nil || repsKey.Obj == nil {
		t.Fatalf("missing field assignments; got %+v", assigns)
	}
	if seedKey.Covers(repsKey) {
		t.Error("c.Seed must not cover c.Reps")
	}
	rootKey = Key{Obj: seedKey.Obj}
	if !rootKey.Covers(seedKey) || !seedKey.Covers(rootKey) {
		t.Error("bare c and c.Seed must cover each other")
	}

	// Range statements assign key and value from the operand.
	rangeAssigns := 0
	for _, a := range assigns {
		if _, ok := a.Pos.(*ast.RangeStmt); ok {
			rangeAssigns++
		}
	}
	if rangeAssigns != 2 {
		t.Errorf("want 2 range assignments (i, x), got %d", rangeAssigns)
	}
}
