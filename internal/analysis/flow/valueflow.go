package flow

import (
	"go/ast"
	"go/types"
)

// Value flow is field-path sensitive: a Key names a root variable plus the
// chain of field selections from it, so tainting cfg.Seed never taints
// cfg.Reps. Index expressions collapse to their base (tainting s[i] taints
// s): element-precise tracking buys nothing for the seed-provenance checks
// and would cost a points-to analysis.

// Key identifies one assignable location within a function.
type Key struct {
	Obj  types.Object
	Path string // "" for the variable itself, "Seed" / "Cfg.Seed" for fields
}

// Covers reports whether a taint on k reaches a read of other: exact match,
// k a prefix path of other (tainting cfg taints cfg.Seed), or other a prefix
// of k (reading cfg after tainting cfg.Seed may observe the taint).
func (k Key) Covers(other Key) bool {
	if k.Obj != other.Obj {
		return false
	}
	return pathPrefix(k.Path, other.Path) || pathPrefix(other.Path, k.Path)
}

func pathPrefix(p, of string) bool {
	if p == "" {
		return true
	}
	return p == of || (len(of) > len(p) && of[:len(p)] == p && of[len(p)] == '.')
}

// PathPrefix reports whether field path p is a (possibly empty) prefix of
// path of: "" prefixes everything, "Cfg" prefixes "Cfg.Seed".
func PathPrefix(p, of string) bool { return pathPrefix(p, of) }

// JoinPath concatenates two field paths, eliding empty parts.
func JoinPath(a, b string) string {
	switch {
	case a == "":
		return b
	case b == "":
		return a
	}
	return a + "." + b
}

// TrimPathPrefix removes prefix from path; PathPrefix(prefix, path) must
// hold.
func TrimPathPrefix(path, prefix string) string {
	if prefix == "" {
		return path
	}
	if path == prefix {
		return ""
	}
	return path[len(prefix)+1:]
}

// KeyOf resolves an expression to the location it names, if any: an
// identifier, or a chain of field selections rooted at one. The second
// result is false for everything else (calls, literals, derefs of
// non-identifiers).
func KeyOf(info *types.Info, e ast.Expr) (Key, bool) {
	path := ""
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := info.ObjectOf(x)
			if obj == nil {
				return Key{}, false
			}
			return Key{Obj: obj, Path: path}, true
		case *ast.SelectorExpr:
			// Only field selections build a path; package-qualified or
			// method selections do not name a location we track.
			if sel, ok := info.Selections[x]; !ok || sel.Kind() != types.FieldVal {
				return Key{}, false
			}
			if path == "" {
				path = x.Sel.Name
			} else {
				path = x.Sel.Name + "." + path
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X // collapse s[i] to s
		case *ast.StarExpr:
			e = x.X // *p and p name the same tracked location
		default:
			return Key{}, false
		}
	}
}

// RefKeys collects the locations read by expr, descending through operators,
// composite literals, conversions and call arguments. When skip is non-nil,
// subtrees rooted at a call for which skip returns true are not descended
// into — that is how seed sanitizers (DeriveSeed, Substream) cut taint.
func RefKeys(info *types.Info, expr ast.Expr, skip func(*ast.CallExpr) bool) []Key {
	var out []Key
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		switch x := ast.Unparen(e).(type) {
		case nil:
		case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
			if k, ok := KeyOf(info, e); ok {
				out = append(out, k)
				return
			}
			// Not a tracked location (e.g. pkg.Name, m.Method): descend so
			// reads inside an index expression are still seen.
			switch x := x.(type) {
			case *ast.SelectorExpr:
				walk(x.X)
			case *ast.IndexExpr:
				walk(x.X)
				walk(x.Index)
			case *ast.StarExpr:
				walk(x.X)
			}
		case *ast.CallExpr:
			if skip != nil && skip(x) {
				return
			}
			for _, arg := range x.Args {
				walk(arg)
			}
		case *ast.BinaryExpr:
			walk(x.X)
			walk(x.Y)
		case *ast.UnaryExpr:
			walk(x.X)
		case *ast.CompositeLit:
			for _, elt := range x.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					walk(kv.Value)
				} else {
					walk(elt)
				}
			}
		case *ast.KeyValueExpr:
			walk(x.Value)
		case *ast.TypeAssertExpr:
			walk(x.X)
		case *ast.SliceExpr:
			walk(x.X)
		case *ast.FuncLit:
			// Closures are handled by the call graph, not expression flow.
		}
	}
	walk(expr)
	return out
}

// Assign is one assignment edge inside a function: LHS receives RHS. Pos is
// the statement position (used for flow-order filtering by analyzers).
type Assign struct {
	LHS Key
	RHS ast.Expr
	Pos ast.Node
}

// Assigns collects the assignment edges of fn's body in source order:
// =, :=, compound ops, var declarations with initializers, and range
// statements (key/value receive the range operand). Assignments whose LHS is
// not a tracked location (map stores through calls, blank) are dropped.
func Assigns(info *types.Info, fn *Func) []Assign {
	var out []Assign
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // literal bodies belong to their own Func
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				k, ok := KeyOf(info, lhs)
				if !ok {
					continue
				}
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				} else if len(n.Rhs) == 1 {
					rhs = n.Rhs[0] // multi-value call: every LHS sees it
				}
				if rhs != nil {
					out = append(out, Assign{LHS: k, RHS: rhs, Pos: n})
				}
			}
		case *ast.GenDecl:
			for _, spec := range n.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if name.Name == "_" {
						continue
					}
					obj := info.Defs[name]
					if obj == nil {
						continue
					}
					var rhs ast.Expr
					if len(vs.Values) == len(vs.Names) {
						rhs = vs.Values[i]
					} else if len(vs.Values) == 1 {
						rhs = vs.Values[0]
					}
					if rhs != nil {
						out = append(out, Assign{LHS: Key{Obj: obj}, RHS: rhs, Pos: vs})
					}
				}
			}
		case *ast.RangeStmt:
			for _, lhs := range []ast.Expr{n.Key, n.Value} {
				if lhs == nil {
					continue
				}
				if k, ok := KeyOf(info, lhs); ok {
					out = append(out, Assign{LHS: k, RHS: n.X, Pos: n})
				}
			}
		}
		return true
	})
	return out
}
