// Package flow is the interprocedural layer of the analysis framework: a
// per-package call graph, goroutine-entry reachability with spawn traces,
// and per-function value-flow (def-use) summaries. The seedflow, lockshape
// and phasefreeze analyzers are built on it.
//
// The syntactic analyzers of PR 5 check one function at a time, so a helper
// that launders a raw loop-variable seed, or a refactor that takes a second
// shard lock two calls deep, sails through them. The flow layer closes that
// gap for the cases this repository actually has — everything is resolved
// statically within one package:
//
//   - the call graph covers declared functions, methods and function
//     literals; a function literal is linked to its enclosing function both
//     when invoked directly and when merely referenced (stored, passed),
//     which over-approximates reachability in the sound direction;
//   - `go f(...)` and `go func(){...}()` mark goroutine entries; everything
//     reachable from an entry is classified worker-concurrent, and the BFS
//     tree yields a human-readable spawn trace for diagnostics;
//   - value flow is field-sensitive within a function (a Key is a variable
//     plus a field path, so tainting cfg.Seed does not taint cfg.Reps) and
//     summarized at call boundaries by parameter index and field path.
//
// # Soundness limits (see DESIGN.md §16)
//
// Calls through function values, interfaces, or across package boundaries
// are not resolved: a `go` statement whose callee cannot be resolved is
// recorded in Graph.UnresolvedGo rather than silently dropped, and analyzers
// may surface it. Aliasing (copying a mutex-bearing struct, taking the
// address of a guarded field) is not tracked. These are the same limits the
// upstream x/tools CFG-less checkers accept; the golden testdata pins the
// shapes that are covered.
package flow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"hetlb/internal/analysis"
)

// Func is one function of the analyzed package: a declaration (Decl non-nil)
// or a function literal (Lit non-nil).
type Func struct {
	// Obj is the declared function or method object; nil for literals.
	Obj *types.Func
	// Decl / Lit: exactly one is non-nil.
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit
	// Name is the printable name: "session" or "(*Engine).session" for
	// methods, "New$1" for the first literal inside New.
	Name string
	// Body is the function body (never nil: bodiless declarations are not
	// registered).
	Body *ast.BlockStmt
	// Calls lists the call sites inside Body in source order, including
	// reference pseudo-edges to function literals and named functions used
	// as values (Call.Ref true).
	Calls []*Call
	// GoSpawns lists the `go` statements that launch this function, making
	// it a goroutine entry.
	GoSpawns []*Call
	// Enclosing is the lexically enclosing function for literals; nil for
	// declarations.
	Enclosing *Func

	params map[types.Object]int // param object → index (receiver excluded)
}

// Pos returns the function's declaration position.
func (f *Func) Pos() token.Pos {
	if f.Decl != nil {
		return f.Decl.Pos()
	}
	return f.Lit.Pos()
}

// Type returns the function's signature.
func (f *Func) Type() *types.Signature {
	if f.Obj != nil {
		return f.Obj.Type().(*types.Signature)
	}
	return nil
}

// ParamIndex returns the index of obj among the function's declared
// parameters (receiver excluded), or -1.
func (f *Func) ParamIndex(obj types.Object) int {
	if i, ok := f.params[obj]; ok {
		return i
	}
	return -1
}

// NumParams returns the number of declared parameters (receiver excluded).
func (f *Func) NumParams() int { return len(f.params) }

// IsParam reports whether obj is one of the function's parameters. The
// receiver is NOT a parameter: ownership-handoff exemptions (phasefreeze)
// must not extend to the shared engine state reached through receivers.
func (f *Func) IsParam(obj types.Object) bool {
	_, ok := f.params[obj]
	return ok
}

// Call is one call site (or function-value reference) inside a Func.
type Call struct {
	Caller *Func
	// Callee is the in-package target, or nil for external, builtin or
	// dynamic calls.
	Callee *Func
	// Obj is the resolved callee object even when it is external; nil for
	// literals and dynamic calls.
	Obj *types.Func
	// Site is the call expression; nil for bare function-value references.
	Site *ast.CallExpr
	// Pos positions the edge for diagnostics (the call or the reference).
	Pos token.Pos
	// Go marks a `go` spawn site; Ref marks a reference pseudo-edge (the
	// function is used as a value, not called here).
	Go  bool
	Ref bool
}

// Graph is the package's call graph.
type Graph struct {
	Pass  *analysis.Pass
	Funcs []*Func // declarations in source order, then literals as found
	// UnresolvedGo lists `go` statements whose callee could not be resolved
	// statically (a function value); reachability from those is unknown.
	UnresolvedGo []*Call

	byObj map[*types.Func]*Func
	byLit map[*ast.FuncLit]*Func
}

// FuncOf returns the Func for a declared function object, or nil.
func (g *Graph) FuncOf(obj *types.Func) *Func { return g.byObj[obj] }

// FuncOfLit returns the Func for a function literal, or nil.
func (g *Graph) FuncOfLit(lit *ast.FuncLit) *Func { return g.byLit[lit] }

// Build constructs the call graph of pass's package.
func Build(pass *analysis.Pass) *Graph {
	g := &Graph{
		Pass:  pass,
		byObj: make(map[*types.Func]*Func),
		byLit: make(map[*ast.FuncLit]*Func),
	}
	// Register declarations first so forward calls resolve.
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			fn := &Func{Obj: obj, Decl: fd, Name: declName(fd), Body: fd.Body}
			fn.params = paramIndexes(pass, fd.Type)
			g.Funcs = append(g.Funcs, fn)
			if obj != nil {
				g.byObj[obj] = fn
			}
		}
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			fn := g.byObj[obj]
			if fn == nil { // blank-named or unresolved decl: find by body
				for _, cand := range g.Funcs {
					if cand.Body == fd.Body {
						fn = cand
						break
					}
				}
			}
			if fn != nil {
				g.scan(fn, fd.Body)
			}
		}
	}
	g.resolve()
	return g
}

// scan walks one function body, recording call sites, literal children and
// function-value references. Literal subtrees are scanned under their own
// Func, not the parent's.
func (g *Graph) scan(parent *Func, body ast.Node) {
	goCalls := make(map[*ast.CallExpr]bool)
	callFuns := make(map[*ast.Ident]bool) // idents that ARE the callee of a call
	litSeq := 0
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			child := &Func{
				Lit:       n,
				Name:      fmt.Sprintf("%s$%d", parent.Name, litSeq+1),
				Body:      n.Body,
				Enclosing: parent,
				params:    paramIndexes(g.Pass, n.Type),
			}
			litSeq++
			g.Funcs = append(g.Funcs, child)
			g.byLit[n] = child
			// Reference edge: the literal is at least reachable from its
			// enclosing function (it may be invoked here, stored, or passed).
			parent.Calls = append(parent.Calls, &Call{Caller: parent, Callee: child, Pos: n.Pos(), Ref: true})
			g.scan(child, n.Body)
			return false
		case *ast.GoStmt:
			goCalls[n.Call] = true
			return true
		case *ast.CallExpr:
			if id := calleeIdent(n); id != nil {
				callFuns[id] = true
			}
			obj := analysis.Callee(g.Pass.TypesInfo, n)
			c := &Call{Caller: parent, Obj: obj, Site: n, Pos: n.Pos(), Go: goCalls[n]}
			parent.Calls = append(parent.Calls, c)
			return true
		case *ast.Ident:
			// A named function used as a value (method value, function
			// handle): conservative reference edge.
			if callFuns[n] {
				return true
			}
			if obj, ok := g.Pass.TypesInfo.Uses[n].(*types.Func); ok && g.byObj[obj] != nil {
				parent.Calls = append(parent.Calls, &Call{Caller: parent, Obj: obj, Pos: n.Pos(), Ref: true})
			}
			return true
		}
		return true
	}
	// Walk children of body (body itself is the parent's own block).
	ast.Inspect(body, walk)
}

// calleeIdent returns the identifier naming the callee of call, or nil.
func calleeIdent(call *ast.CallExpr) *ast.Ident {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun
	case *ast.SelectorExpr:
		return fun.Sel
	}
	return nil
}

// resolve links call sites to in-package targets and attaches go-spawn edges
// to their entries.
func (g *Graph) resolve() {
	for _, fn := range g.Funcs {
		for _, c := range fn.Calls {
			if c.Callee == nil && c.Obj != nil {
				c.Callee = g.byObj[c.Obj]
			}
			if !c.Go {
				continue
			}
			switch {
			case c.Callee != nil:
				c.Callee.GoSpawns = append(c.Callee.GoSpawns, c)
			case c.Site != nil:
				if lit, ok := ast.Unparen(c.Site.Fun).(*ast.FuncLit); ok {
					if child := g.byLit[lit]; child != nil {
						child.GoSpawns = append(child.GoSpawns, c)
						continue
					}
				}
				g.UnresolvedGo = append(g.UnresolvedGo, c)
			}
		}
	}
}

// declName renders a declaration's printable name, "(*Engine).session" for
// methods.
func declName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	recv := fd.Recv.List[0].Type
	var b strings.Builder
	writeRecv(&b, recv)
	return "(" + b.String() + ")." + fd.Name.Name
}

func writeRecv(b *strings.Builder, t ast.Expr) {
	switch t := t.(type) {
	case *ast.StarExpr:
		b.WriteByte('*')
		writeRecv(b, t.X)
	case *ast.Ident:
		b.WriteString(t.Name)
	case *ast.IndexExpr: // generic receiver
		writeRecv(b, t.X)
	default:
		b.WriteString("?")
	}
}

// paramIndexes maps declared parameter objects to their index.
func paramIndexes(pass *analysis.Pass, ft *ast.FuncType) map[types.Object]int {
	params := make(map[types.Object]int)
	i := 0
	if ft.Params == nil {
		return params
	}
	for _, field := range ft.Params.List {
		if len(field.Names) == 0 {
			i++ // unnamed parameter still occupies an index
			continue
		}
		for _, name := range field.Names {
			if obj := pass.TypesInfo.Defs[name]; obj != nil {
				params[obj] = i
			}
			i++
		}
	}
	return params
}

// Concurrency classifies the package's functions by whether they may run
// concurrently with the coordinator: reachable from any goroutine entry
// (a function spawned by a `go` statement), through calls or function-value
// references. The BFS tree retains, for each reachable function, the edge by
// which it was first reached, so diagnostics can print the spawn path.
type Concurrency struct {
	fset    *token.FileSet
	entries []*Func
	parent  map[*Func]*Call // BFS tree: how fn was first reached (nil for entries)
}

// Concurrency computes the worker-concurrent classification. Deterministic:
// entries and edges are visited in source order.
func (g *Graph) Concurrency() *Concurrency {
	c := &Concurrency{fset: g.Pass.Fset, parent: make(map[*Func]*Call)}
	var queue []*Func
	for _, fn := range g.Funcs {
		if len(fn.GoSpawns) > 0 {
			c.entries = append(c.entries, fn)
			c.parent[fn] = nil
			queue = append(queue, fn)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, call := range fn.Calls {
			if call.Callee == nil {
				continue
			}
			if _, seen := c.parent[call.Callee]; seen {
				continue
			}
			c.parent[call.Callee] = call
			queue = append(queue, call.Callee)
		}
	}
	return c
}

// Concurrent reports whether fn may execute concurrently with the
// coordinator (it is a goroutine entry or reachable from one).
func (c *Concurrency) Concurrent(fn *Func) bool {
	_, ok := c.parent[fn]
	return ok
}

// Entries returns the goroutine-entry functions in source order.
func (c *Concurrency) Entries() []*Func { return c.entries }

// Trace renders the spawn path by which fn is worker-concurrent, e.g.
// "worker (goroutine started at engine.go:42) → runShard → session".
func (c *Concurrency) Trace(fn *Func) string {
	if !c.Concurrent(fn) {
		return ""
	}
	var chain []*Func
	cur := fn
	for {
		chain = append(chain, cur)
		edge := c.parent[cur]
		if edge == nil {
			break
		}
		cur = edge.Caller
	}
	var b strings.Builder
	for i := len(chain) - 1; i >= 0; i-- {
		f := chain[i]
		if i == len(chain)-1 {
			spawn := f.GoSpawns[0]
			fmt.Fprintf(&b, "%s (goroutine started at %s)", f.Name, c.fset.Position(spawn.Pos))
		} else {
			fmt.Fprintf(&b, " → %s", f.Name)
		}
	}
	return b.String()
}
