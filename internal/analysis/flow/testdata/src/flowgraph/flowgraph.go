// Package flowgraph exercises the flow package's call-graph construction:
// declarations, methods, function literals (invoked, stored, spawned),
// go statements, and function-value references.
package flowgraph

type engine struct {
	n int
}

func (e *engine) worker(s int) {
	e.helper(s)
}

func (e *engine) helper(s int) {
	_ = s
}

func (e *engine) start() {
	for s := 0; s < e.n; s++ {
		go e.worker(s) // resolved spawn: worker is an entry
	}
	go func() { // anonymous spawn: start$1 is an entry
		e.deep()
	}()
	f := e.helper // function-value reference: helper reachable from start
	_ = f
}

func (e *engine) deep() {
	e.helper(0)
}

func coordinatorOnly(e *engine) {
	e.n++
}

func dynamic(fn func()) {
	go fn() // unresolved spawn: recorded, not dropped
}

type cfg struct {
	Seed int64
	Reps int
}

func assignShapes(xs []int) (int, cfg) {
	var c cfg
	c.Seed = 7
	c.Reps = len(xs)
	total := 0
	for i, x := range xs {
		total += i + x
	}
	return total, c
}
