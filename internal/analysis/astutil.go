package analysis

import (
	"go/ast"
	"go/types"
)

// Callee resolves the function or method called by call, or nil when the
// callee is a builtin, a conversion, or an indirect call through a value.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// IsPkgFunc reports whether f is one of the named functions (or methods) of
// the package with the given name. Matching by package name rather than full
// import path lets analysistest stubs stand in for the real packages.
func IsPkgFunc(f *types.Func, pkgName string, names ...string) bool {
	if f == nil || f.Pkg() == nil || f.Pkg().Name() != pkgName {
		return false
	}
	for _, n := range names {
		if f.Name() == n {
			return true
		}
	}
	return false
}

// RootIdent unwraps selectors, index/slice expressions, parens, derefs and
// address-of down to the base identifier of expr ("s" for s.Union[i:j]), or
// nil when the expression is not rooted at an identifier.
func RootIdent(expr ast.Expr) *ast.Ident {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return e
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.SliceExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.UnaryExpr:
			expr = e.X
		case *ast.CallExpr:
			expr = e.Fun // s.Buckets(k) is rooted at s
		default:
			return nil
		}
	}
}

// NamedType returns the named type of t after stripping one pointer level,
// or nil.
func NamedType(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}
