package statssafety_test

import (
	"path/filepath"
	"testing"

	"hetlb/internal/analysis/analysistest"
	"hetlb/internal/analysis/statssafety"
)

func TestStatsSafety(t *testing.T) {
	testdata := filepath.Join("..", "testdata")
	analysistest.Run(t, testdata, statssafety.Analyzer, "netsim", "hetlb/internal/shardgossip")
}
