// Package statssafety implements the hetlbvet check that keeps observability
// strictly one-way: simulation state may flow into obs counters and trace
// events, but nothing the obs layer reports may flow back and steer the
// simulation.
//
// The obs registry exists so that runs can be watched without being changed —
// metrics can be wired in or stripped out and every result stays bit-
// identical (the zero-fault transparency and determinism golden tests assume
// exactly that). A branch like `if metrics.Moves.Value() > k { rebalance() }`
// breaks the property in the nastiest way: the run is still deterministic
// until someone changes which metrics are registered. The span and timeline
// recorders (hetlb/internal/obs/span, .../timeline) are part of the same
// one-way layer: span traces are asserted bit-identical across worker counts,
// which only holds if nothing the recorders report feeds back into the
// simulation. So, in determinism-scoped packages:
//
//   - an obs-layer read accessor (Value, Count, Sum, Total, BucketCount,
//     Len, and the span/timeline reads Spans, Points, Dropped, Root, Seen,
//     Stride) must not appear in an if/for/switch condition;
//   - an obs-layer record call (Inc, Add, Set, SetMax, Observe, Emit, and
//     the span/timeline records Append, Record, NextID, SetRoot, Merge,
//     Reset, ClaimNamespaces) must not appear inside a branch whose
//     condition reads the obs layer.
//
// Reporting-only branches (progress printing keyed on a counter) are real and
// allowed — via //hetlb:nondeterministic-ok with a reason saying why the
// branch cannot reach simulation state.
package statssafety

import (
	"go/ast"
	"go/types"

	"hetlb/internal/analysis"
)

// Analyzer is the observation-must-not-steer-simulation check.
var Analyzer = &analysis.Analyzer{
	Name:         "statssafety",
	Doc:          "obs reads must not steer control flow, and obs records must not sit in branches keyed on obs reads, in determinism-scoped packages",
	Run:          run,
	Suppressible: true,
}

var readAccessors = map[string]bool{
	"Value": true, "Count": true, "Sum": true, "Total": true,
	"BucketCount": true, "Len": true,
	// span.Recorder / timeline.Recorder reads.
	"Spans": true, "Points": true, "Dropped": true, "Root": true,
	"Seen": true, "Stride": true,
}

var recordCalls = map[string]bool{
	"Inc": true, "Add": true, "Set": true, "SetMax": true,
	"Observe": true, "Emit": true,
	// span.Recorder / timeline.Recorder records. NextID and ClaimNamespaces
	// are records too: they advance allocator state, so gating them on an
	// obs read would shift every later span ID.
	"Append": true, "Record": true, "NextID": true, "SetRoot": true,
	"Merge": true, "Reset": true, "ClaimNamespaces": true,
}

// obsPackages names the packages that form the one-way observability layer.
var obsPackages = map[string]bool{"obs": true, "span": true, "timeline": true}

func run(pass *analysis.Pass) (interface{}, error) {
	if !analysis.IsDeterminismScoped(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, file := range pass.Files {
		checkConditions(pass, file)
	}
	return nil, nil
}

// checkConditions flags obs reads in conditions and obs records under
// obs-keyed branches.
func checkConditions(pass *analysis.Pass, file *ast.File) {
	// tainted counts how many enclosing branch conditions read the obs layer.
	tainted := 0

	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			reads := flagObsReads(pass, n.Cond)
			if reads {
				tainted++
			}
			visitChild(n.Init, visit)
			visitChild(n.Body, visit)
			visitChild(n.Else, visit)
			if reads {
				tainted--
			}
			return false
		case *ast.ForStmt:
			reads := n.Cond != nil && flagObsReads(pass, n.Cond)
			if reads {
				tainted++
			}
			visitChild(n.Init, visit)
			visitChild(n.Post, visit)
			visitChild(n.Body, visit)
			if reads {
				tainted--
			}
			return false
		case *ast.SwitchStmt:
			reads := n.Tag != nil && flagObsReads(pass, n.Tag)
			if reads {
				tainted++
			}
			visitChild(n.Init, visit)
			visitChild(n.Body, visit)
			if reads {
				tainted--
			}
			return false
		case *ast.CallExpr:
			if tainted > 0 {
				if f := obsMethod(pass.TypesInfo, n); f != nil && recordCalls[f.Name()] {
					pass.Reportf(n.Pos(), "obs record %s.%s inside a branch keyed on an obs read: observation would steer what gets observed; record unconditionally or key the branch on simulation state", recvTypeName(f), f.Name())
				}
			}
		}
		return true
	}
	ast.Inspect(file, visit)
}

func visitChild(n ast.Node, visit func(ast.Node) bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(c ast.Node) bool {
		if c == nil {
			return false
		}
		return visit(c)
	})
}

// flagObsReads reports obs read accessors inside cond, flagging each one.
func flagObsReads(pass *analysis.Pass, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if f := obsMethod(pass.TypesInfo, call); f != nil && readAccessors[f.Name()] {
			found = true
			pass.Reportf(call.Pos(), "simulation control flow keyed on obs read %s.%s: observation must not steer simulation (results must be identical with metrics stripped); if this branch is reporting-only, annotate //hetlb:nondeterministic-ok with why", recvTypeName(f), f.Name())
		}
		return true
	})
	return found
}

// obsMethod returns the *types.Func when call invokes a method defined on a
// type of an observability-layer package (obs, span, timeline), else nil.
func obsMethod(info *types.Info, call *ast.CallExpr) *types.Func {
	f := analysis.Callee(info, call)
	if f == nil || f.Pkg() == nil || !obsPackages[f.Pkg().Name()] {
		return nil
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return f
}

// recvTypeName renders the receiver type of a method for messages.
func recvTypeName(f *types.Func) string {
	sig := f.Type().(*types.Signature)
	if named := analysis.NamedType(sig.Recv().Type()); named != nil {
		return named.Obj().Name()
	}
	return sig.Recv().Type().String()
}
