// Package suite enumerates the hetlbvet analyzers. It exists so the driver
// (cmd/hetlbvet), the CI lint job and the suppression-mechanism tests all run
// the same set in the same order.
package suite

import (
	"hetlb/internal/analysis"
	"hetlb/internal/analysis/determinism"
	"hetlb/internal/analysis/lockshape"
	"hetlb/internal/analysis/noalloc"
	"hetlb/internal/analysis/phasefreeze"
	"hetlb/internal/analysis/rngdiscipline"
	"hetlb/internal/analysis/seedflow"
	"hetlb/internal/analysis/statssafety"
)

// All returns the full analyzer suite in reporting order: the syntactic
// checks first, then the interprocedural flow analyzers (seedflow,
// lockshape, phasefreeze), which build a call graph per package.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		determinism.Analyzer,
		rngdiscipline.Analyzer,
		noalloc.Analyzer,
		statssafety.Analyzer,
		seedflow.Analyzer,
		lockshape.Analyzer,
		phasefreeze.Analyzer,
	}
}

// Syntactic returns the suite with the interprocedural flow analyzers
// stripped — what `hetlbvet -flow=false` runs.
func Syntactic() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		determinism.Analyzer,
		rngdiscipline.Analyzer,
		noalloc.Analyzer,
		statssafety.Analyzer,
	}
}

// ByName returns the named analyzers (comma-separated names resolved by the
// driver), preserving suite order. Unknown names return ok=false.
func ByName(names []string) ([]*analysis.Analyzer, bool) {
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	var out []*analysis.Analyzer
	for _, a := range All() {
		if want[a.Name] {
			out = append(out, a)
			delete(want, a.Name)
		}
	}
	return out, len(want) == 0
}
