package seedflow_test

import (
	"path/filepath"
	"testing"

	"hetlb/internal/analysis/analysistest"
	"hetlb/internal/analysis/seedflow"
)

func TestSeedflow(t *testing.T) {
	testdata := filepath.Join("..", "testdata")
	analysistest.Run(t, testdata, seedflow.Analyzer, "seedflowpos", "seedflowclean")
}
