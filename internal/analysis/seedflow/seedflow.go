// Package seedflow implements the interprocedural half of the seeding
// discipline: seed values must be pure functions of (base seed, key) through
// rng.DeriveSeed/Substream, never of loop order — even when the raw index
// travels through assignments, struct fields, or helper functions before it
// reaches a generator.
//
// rngdiscipline (the syntactic pass) flags a loop variable used directly in
// an rng.New/Reseed argument or a seed-named store. seedflow picks up where
// it stops: taint starts at every loop variable, propagates field-path-
// sensitively through the function's assignments (tainting cfg.Seed never
// taints cfg.Reps), crosses call boundaries via per-function summaries
// ("argument j, field path p, reaches a generator raw"), and reports at the
// first sink the taint reaches — with the call path in the message. To keep
// one finding per defect, sinks whose argument mentions the loop variable
// itself are left to rngdiscipline; seedflow reports only when the taint
// travelled through at least one assignment or call.
//
// Sanitizers cut taint: any value that passed through rng.DeriveSeed,
// rng.Substream or hetlb.DeriveSeed is clean by construction. Element
// selection also cuts it (seeds[i] is a pure function of i, a table lookup,
// not loop-order state) — the conservative direct-use case stays
// rngdiscipline's. Closures are a documented hole: taint does not follow a
// captured variable into a function literal (DESIGN.md §16).
package seedflow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"hetlb/internal/analysis"
	"hetlb/internal/analysis/flow"
)

// Analyzer is the interprocedural seed-provenance check.
var Analyzer = &analysis.Analyzer{
	Name:         "seedflow",
	Doc:          "loop-derived seed values must not reach rng.New/Reseed or seed fields through assignments or helper calls without rng.DeriveSeed/Substream",
	Run:          run,
	Suppressible: true,
}

// summaryEntry records that a function's parameter, read at the given field
// path, reaches a generator-seeding sink without sanitization.
type summaryEntry struct {
	param int
	path  string // field path read relative to the parameter ("" = itself)
	sink  string // "rng.New", "RNG.Reseed", or "seed store <name>"
	trace string // call chain from this function to the primitive sink
}

type checker struct {
	pass      *analysis.Pass
	graph     *flow.Graph
	conc      *flow.Concurrency
	assigns   map[*flow.Func][]flow.Assign
	summaries map[*flow.Func][]summaryEntry
}

func run(pass *analysis.Pass) (interface{}, error) {
	// The rng package itself implements the primitives; its internals are
	// not subject to the discipline they define.
	if pass.Pkg.Name() == "rng" {
		return nil, nil
	}
	c := &checker{
		pass:      pass,
		graph:     flow.Build(pass),
		assigns:   make(map[*flow.Func][]flow.Assign),
		summaries: make(map[*flow.Func][]summaryEntry),
	}
	for _, fn := range c.graph.Funcs {
		c.assigns[fn] = flow.Assigns(pass.TypesInfo, fn)
	}
	c.buildSummaries()
	for _, fn := range c.graph.Funcs {
		c.checkFunc(fn)
	}
	return nil, nil
}

// sanitizer reports whether call is a seed-deriving primitive: taint does
// not pass through it.
func (c *checker) sanitizer(call *ast.CallExpr) bool {
	f := analysis.Callee(c.pass.TypesInfo, call)
	return analysis.IsPkgFunc(f, "rng", "DeriveSeed", "Substream") ||
		analysis.IsPkgFunc(f, "hetlb", "DeriveSeed")
}

// taintInfo is the provenance of one tainted location.
type taintInfo struct {
	origin string // the loop variable (or parameter) the value came from
	chain  string // assignment chain for the message: "i → s → cfg.Seed"
	// srcPath is the field path within the origin value this taint carries
	// ("" for the origin itself, "Seed" when only its Seed field flowed
	// here) — the precision that keeps `cfg.Reps = i; run(cfg)` from
	// matching a callee that only seeds from cfg.Seed.
	srcPath string
}

// propagate runs the per-function taint fixpoint over fn's assignment edges.
// Flow-insensitive by design: a loop variable's scope is its loop, so any
// taint derived from one is loop-body state wherever it ends up, including
// after the loop (the last iteration's value).
func (c *checker) propagate(fn *flow.Func, taints map[flow.Key]taintInfo) {
	for changed := true; changed; {
		changed = false
		for _, a := range c.assigns[fn] {
			for _, read := range flow.RefKeys(c.pass.TypesInfo, a.RHS, c.sanitizer) {
				t, at, hit := c.lookup(taints, read)
				if !hit {
					continue
				}
				newKey := a.LHS
				newSrc := t.srcPath
				if flow.PathPrefix(at.Path, read.Path) {
					// Reading the tainted location or deeper: the source
					// path extends by the extra selection.
					newSrc = flow.JoinPath(t.srcPath, flow.TrimPathPrefix(read.Path, at.Path))
				} else {
					// Reading a container of the taint (d := cfg with
					// cfg.Seed tainted): the taint shifts to the same field
					// of the copy.
					newKey.Path = flow.JoinPath(newKey.Path, flow.TrimPathPrefix(at.Path, read.Path))
				}
				if _, done := taints[newKey]; done {
					continue
				}
				if strings.Count(newKey.Path, ".") > 6 {
					continue // bound path growth through recursive struct copies
				}
				taints[newKey] = taintInfo{
					origin:  t.origin,
					chain:   t.chain + " → " + keyString(newKey),
					srcPath: newSrc,
				}
				changed = true
				break
			}
		}
	}
}

// lookup finds a taint covering key (exact, on a prefix location, or on a
// sub-path of it), returning the matched taint and its key. When several
// taints cover the key the most specific one wins (longest path, then
// lexicographically smallest chain), so messages never depend on map order.
func (c *checker) lookup(taints map[flow.Key]taintInfo, key flow.Key) (taintInfo, flow.Key, bool) {
	if t, ok := taints[key]; ok {
		return t, key, ok
	}
	var (
		bestT taintInfo
		bestK flow.Key
		found bool
	)
	for k, t := range taints {
		if !k.Covers(key) {
			continue
		}
		if !found || len(k.Path) > len(bestK.Path) ||
			(len(k.Path) == len(bestK.Path) && t.chain < bestT.chain) {
			bestT, bestK, found = t, k, true
		}
	}
	return bestT, bestK, found
}

// keyString renders a key for taint-chain messages.
func keyString(k flow.Key) string {
	if k.Path == "" {
		return k.Obj.Name()
	}
	return k.Obj.Name() + "." + k.Path
}

// loopVars collects the loop variables declared in fn's own body (function
// literals are separate graph nodes and keep their own loops).
func (c *checker) loopVars(fn *flow.Func) map[types.Object]*ast.Ident {
	out := make(map[types.Object]*ast.Ident)
	define := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok {
			if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
				out[obj] = id
			}
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			if init, ok := n.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
				for _, lhs := range init.Lhs {
					define(lhs)
				}
			}
		case *ast.RangeStmt:
			if n.Tok == token.DEFINE {
				if n.Key != nil {
					define(n.Key)
				}
				if n.Value != nil {
					define(n.Value)
				}
			}
		}
		return true
	})
	return out
}

// buildSummaries computes, to a fixpoint over the call graph, which
// (parameter, field path) pairs of each function reach a seeding sink raw.
// Functions are processed in source order each round, so the result — and
// therefore diagnostic order — is deterministic.
func (c *checker) buildSummaries() {
	for changed := true; changed; {
		changed = false
		for _, fn := range c.graph.Funcs {
			sig := fn.Type()
			if sig == nil {
				continue // literals: no named summary needed (callers resolve them as Ref edges only)
			}
			for p := 0; p < sig.Params().Len(); p++ {
				obj := sig.Params().At(p)
				if obj == nil || !flowRelevant(obj.Type()) {
					continue
				}
				taints := map[flow.Key]taintInfo{{Obj: obj}: {origin: fmt.Sprintf("parameter %s", obj.Name())}}
				c.propagate(fn, taints)
				entries := c.sinksOf(fn, taints, nil)
				for _, e := range entries {
					e.param = p
					if !c.hasSummary(fn, e) {
						c.summaries[fn] = append(c.summaries[fn], e)
						changed = true
					}
				}
			}
		}
	}
}

func (c *checker) hasSummary(fn *flow.Func, e summaryEntry) bool {
	for _, have := range c.summaries[fn] {
		if have.param == e.param && have.path == e.path && have.sink == e.sink {
			return true
		}
	}
	return false
}

// flowRelevant gates summary work to types a seed can travel in: integers,
// strings and structs (and pointers/slices of them). Channels, funcs and
// interfaces do not carry seeds in this codebase.
func flowRelevant(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&(types.IsInteger|types.IsString) != 0
	case *types.Struct:
		return true
	case *types.Pointer:
		return flowRelevant(u.Elem())
	case *types.Slice:
		return flowRelevant(u.Elem())
	case *types.Array:
		return flowRelevant(u.Elem())
	}
	return false
}

// sink is one place a tainted value reached a generator.
type sink struct {
	pos   token.Pos
	desc  string // what was reached, for the message
	trace string // call chain to the primitive sink
	taint taintInfo
}

// sinksOf scans fn for seeding sinks reached by the given taints. When
// report is non-nil the sinks are also filtered through the raw-loop-var
// exclusion (handing the direct case to rngdiscipline) and passed to it;
// the returned entries always describe the summary view (path relative to
// the single taint root, which callers of buildSummaries rely on).
func (c *checker) sinksOf(fn *flow.Func, taints map[flow.Key]taintInfo, report func(sink)) []summaryEntry {
	info := c.pass.TypesInfo
	var entries []summaryEntry
	emit := func(pos token.Pos, desc, trace string, t taintInfo, readPath string) {
		if report != nil {
			report(sink{pos: pos, desc: desc, trace: trace, taint: t})
		}
		entries = append(entries, summaryEntry{path: readPath, sink: desc, trace: trace})
	}
	// tainted reports whether expr reads a tainted location, returning the
	// taint and the source-relative path the sink observes.
	tainted := func(expr ast.Expr) (taintInfo, string, bool) {
		for _, read := range flow.RefKeys(info, expr, c.sanitizer) {
			if t, at, ok := c.lookup(taints, read); ok {
				src := t.srcPath
				if flow.PathPrefix(at.Path, read.Path) {
					src = flow.JoinPath(t.srcPath, flow.TrimPathPrefix(read.Path, at.Path))
				}
				return t, src, true
			}
		}
		return taintInfo{}, "", false
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // literal bodies are their own graph nodes
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			f := analysis.Callee(info, n)
			if analysis.IsPkgFunc(f, "rng", "New") && len(n.Args) == 1 {
				if t, path, ok := tainted(n.Args[0]); ok {
					emit(n.Pos(), "rng.New", "rng.New", t, path)
				}
				return true
			}
			if analysis.IsPkgFunc(f, "rng", "Reseed") && len(n.Args) == 1 {
				if t, path, ok := tainted(n.Args[0]); ok {
					emit(n.Pos(), "RNG.Reseed", "RNG.Reseed", t, path)
				}
				return true
			}
			// Interprocedural: an argument whose tainted part the callee's
			// summary says reaches a sink raw.
			callee := c.calleeFunc(n)
			if callee == nil {
				return true
			}
			for _, e := range c.summaries[callee] {
				if e.param >= len(n.Args) {
					continue
				}
				arg := n.Args[e.param]
				t, path, ok := c.argReaches(taints, arg, e.path)
				if !ok {
					continue
				}
				emit(n.Pos(), e.sink, callee.Name+" → "+e.trace, t, path)
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) && len(n.Rhs) != 1 {
					break
				}
				rhs := n.Rhs[0]
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				}
				name, ok := seedLHS(lhs)
				if !ok {
					continue
				}
				if t, path, hit := tainted(rhs); hit {
					emit(rhs.Pos(), "seed store "+name, "store to "+name, t, path)
				}
			}
		case *ast.KeyValueExpr:
			if key, ok := n.Key.(*ast.Ident); ok && isSeedName(key.Name) {
				if t, path, hit := tainted(n.Value); hit {
					emit(n.Value.Pos(), "seed store "+key.Name, "store to "+key.Name, t, path)
				}
			}
		}
		return true
	})
	return entries
}

// argReaches reports whether the callee, reading readPath off this argument,
// observes a taint: the argument's location extended by readPath must be
// covered by one. Non-location arguments (arithmetic, composites) fall back
// to any-read-tainted, the conservative direction.
func (c *checker) argReaches(taints map[flow.Key]taintInfo, arg ast.Expr, readPath string) (taintInfo, string, bool) {
	if k, ok := flow.KeyOf(c.pass.TypesInfo, arg); ok {
		full := k
		full.Path = flow.JoinPath(full.Path, readPath)
		t, at, hit := c.lookup(taints, full)
		if !hit {
			return taintInfo{}, "", false
		}
		src := t.srcPath
		if flow.PathPrefix(at.Path, full.Path) {
			src = flow.JoinPath(t.srcPath, flow.TrimPathPrefix(full.Path, at.Path))
		}
		return t, src, true
	}
	for _, read := range flow.RefKeys(c.pass.TypesInfo, arg, c.sanitizer) {
		if t, _, ok := c.lookup(taints, read); ok {
			return t, t.srcPath, true
		}
	}
	return taintInfo{}, "", false
}

// calleeFunc resolves a call site to its in-package Func, or nil.
func (c *checker) calleeFunc(call *ast.CallExpr) *flow.Func {
	if f := analysis.Callee(c.pass.TypesInfo, call); f != nil {
		return c.graph.FuncOf(f)
	}
	return nil
}

// checkFunc runs the top-level check: taint fn's loop variables, propagate,
// and report every sink the taint reaches that rngdiscipline would not (the
// argument does not mention a loop variable directly).
func (c *checker) checkFunc(fn *flow.Func) {
	loops := c.loopVars(fn)
	if len(loops) == 0 {
		return
	}
	taints := make(map[flow.Key]taintInfo, len(loops))
	for obj, id := range loops {
		taints[flow.Key{Obj: obj}] = taintInfo{origin: id.Name, chain: id.Name}
	}
	c.propagate(fn, taints)
	c.sinksOf(fn, taints, func(s sink) {
		// The direct case — the sink expression itself mentions the loop
		// variable — is rngdiscipline's finding; report only travelled taint.
		if s.taint.chain == s.taint.origin && !strings.Contains(s.trace, "→") {
			return
		}
		suffix := "key with rng.DeriveSeed(seed, " + s.taint.origin + ") so the stream is a pure function of its key, not of loop order"
		if strings.Contains(s.trace, "→") {
			c.pass.Reportf(s.pos, "seed value derived from loop variable %s reaches %s via %s: %s",
				s.taint.origin, s.desc, s.trace, suffix)
		} else {
			c.pass.Reportf(s.pos, "seed value derived from loop variable %s (flow: %s) reaches %s: %s",
				s.taint.origin, s.taint.chain, s.desc, suffix)
		}
	})
}

// seedLHS and isSeedName mirror rngdiscipline's naming heuristic so the two
// analyzers agree on what counts as a seed store.
func seedLHS(lhs ast.Expr) (string, bool) {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		return lhs.Name, isSeedName(lhs.Name)
	case *ast.SelectorExpr:
		return lhs.Sel.Name, isSeedName(lhs.Sel.Name)
	}
	return "", false
}

func isSeedName(name string) bool {
	return name == "seed" || name == "Seed" ||
		(len(name) > 4 && (name[len(name)-4:] == "Seed" || name[len(name)-4:] == "seed"))
}
