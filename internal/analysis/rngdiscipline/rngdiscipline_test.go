package rngdiscipline_test

import (
	"path/filepath"
	"testing"

	"hetlb/internal/analysis/analysistest"
	"hetlb/internal/analysis/rngdiscipline"
)

func TestRNGDiscipline(t *testing.T) {
	testdata := filepath.Join("..", "testdata")
	analysistest.Run(t, testdata, rngdiscipline.Analyzer, "rngdisc")
}
