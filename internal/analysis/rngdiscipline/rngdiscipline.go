// Package rngdiscipline implements the hetlbvet check that protects the
// keyed-substream seeding discipline introduced with the replication harness.
//
// The harness guarantees bit-identical results for any worker count because
// the i-th replication's stream is a pure function of (base seed, i) through
// rng.DeriveSeed — never of how many draws other replications made first.
// Two regressions defeat that silently:
//
//  1. seeding from a loop index directly (rng.New(seed+uint64(i)), or
//     Config{Seed: seed + uint64(i)}): adjacent integer seeds are correlated
//     under xoshiro-style generators and, worse, re-introduce an implicit
//     "replication order" into the stream definition;
//  2. capturing one *rng.RNG in a spawned goroutine: the draw order then
//     depends on the scheduler, so results stop being a function of the seed.
//
// Both shapes are mechanical to detect, so they are detected mechanically.
package rngdiscipline

import (
	"go/ast"
	"go/token"
	"go/types"

	"hetlb/internal/analysis"
)

// Analyzer is the RNG-discipline check.
var Analyzer = &analysis.Analyzer{
	Name:         "rngdiscipline",
	Doc:          "seeds crossing replications or goroutines must come from rng.DeriveSeed/Substream; a *rng.RNG must not be captured by a spawned goroutine",
	Run:          run,
	Suppressible: true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		checkLoopSeeds(pass, file)
		checkGoroutineCapture(pass, file)
	}
	return nil, nil
}

// fieldKey names one field of one variable: the granularity at which raw
// loop-index seeds are tracked through local struct hops.
type fieldKey struct {
	root  types.Object
	field string
}

// checkLoopSeeds walks each function keeping a stack of enclosing loop
// variables, and flags seed expressions that reference one without going
// through rng.DeriveSeed/Substream: rng.New(...) arguments, and values
// assigned to fields or variables named ...Seed.
//
// It also tracks the intra-function laundering shape that field names hide:
// a raw index seed stored into a local struct field (p.base = seed +
// uint64(i), or plan{base: ...}) and read back into a generator later in the
// same function. Writes are visited in source order, so a store taints its
// field for every later read until a clean write overwrites it; seedflow
// owns the cross-function version of the same flow.
func checkLoopSeeds(pass *analysis.Pass, file *ast.File) {
	var loopVars []types.Object
	taints := make(map[fieldKey]*ast.Ident)

	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			mark := len(loopVars)
			if init, ok := n.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
				for _, lhs := range init.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						if obj := pass.TypesInfo.Defs[id]; obj != nil {
							loopVars = append(loopVars, obj)
						}
					}
				}
			}
			walkChildren(n, visit)
			loopVars = loopVars[:mark]
			return false
		case *ast.RangeStmt:
			mark := len(loopVars)
			if n.Tok == token.DEFINE {
				for _, e := range []ast.Expr{n.Key, n.Value} {
					if id, ok := e.(*ast.Ident); ok {
						if obj := pass.TypesInfo.Defs[id]; obj != nil {
							loopVars = append(loopVars, obj)
						}
					}
				}
			}
			walkChildren(n, visit)
			loopVars = loopVars[:mark]
			return false
		case *ast.CallExpr:
			f := analysis.Callee(pass.TypesInfo, n)
			if analysis.IsPkgFunc(f, "rng", "New") && len(n.Args) == 1 {
				if id := rawLoopVarUse(pass.TypesInfo, n.Args[0], loopVars, taints); id != nil {
					pass.Reportf(n.Pos(), "rng.New seeded from loop variable %s: use rng.Substream(seed, key...) or rng.DeriveSeed so the stream is a pure function of its key, not of loop order", id.Name)
				}
			}
			// RNG.Reseed re-keys a generator in place (the sharded engine's
			// per-epoch schedule draw); a raw loop-index seed there is the
			// same regression as in rng.New.
			if analysis.IsPkgFunc(f, "rng", "Reseed") && len(n.Args) == 1 {
				if id := rawLoopVarUse(pass.TypesInfo, n.Args[0], loopVars, taints); id != nil {
					pass.Reportf(n.Pos(), "RNG.Reseed seeded from loop variable %s: re-key with rng.DeriveSeed(seed, key...) so the stream is a pure function of its key, not of loop order", id.Name)
				}
			}
		case *ast.KeyValueExpr:
			if key, ok := n.Key.(*ast.Ident); ok && isSeedName(key.Name) {
				if id := rawLoopVarUse(pass.TypesInfo, n.Value, loopVars, taints); id != nil {
					pass.Reportf(n.Value.Pos(), "%s derived from loop variable %s without rng.DeriveSeed: raw index seeds break the keyed-substream discipline", key.Name, id.Name)
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				raw := rawLoopVarUse(pass.TypesInfo, n.Rhs[i], loopVars, taints)
				if name, ok := seedLHS(lhs); ok && raw != nil {
					pass.Reportf(n.Rhs[i].Pos(), "%s derived from loop variable %s without rng.DeriveSeed: raw index seeds break the keyed-substream discipline", name, raw.Name)
				}
				updateTaints(pass.TypesInfo, taints, lhs, n.Rhs[i], raw, loopVars)
			}
		}
		return true
	}
	ast.Inspect(file, visit)
}

// walkChildren applies visit to the children of n (used after handling n
// itself so loop-variable scopes nest correctly).
func walkChildren(n ast.Node, visit func(ast.Node) bool) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true // skip n itself
		}
		if c == nil {
			return false
		}
		return visit(c)
	})
}

// seedLHS reports whether lhs targets something named like a seed
// ("seed", "Seed", "baseSeed", "cfg.Seed").
func seedLHS(lhs ast.Expr) (string, bool) {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		return lhs.Name, isSeedName(lhs.Name)
	case *ast.SelectorExpr:
		return lhs.Sel.Name, isSeedName(lhs.Sel.Name)
	}
	return "", false
}

func isSeedName(name string) bool {
	return name == "seed" || name == "Seed" ||
		(len(name) > 4 && (name[len(name)-4:] == "Seed" || name[len(name)-4:] == "seed"))
}

// updateTaints maintains the local-field taint map across one assignment.
// A field write records (raw RHS) or clears (clean RHS) its field; a whole
// struct write clears every taint rooted at the variable, then re-taints
// from the composite literal's raw elements.
func updateTaints(info *types.Info, taints map[fieldKey]*ast.Ident, lhs, rhs ast.Expr, raw *ast.Ident, loopVars []types.Object) {
	if key, ok := fieldKeyOf(info, lhs); ok {
		if raw != nil {
			taints[key] = raw
		} else {
			delete(taints, key)
		}
		return
	}
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return
	}
	obj := info.Defs[id]
	if obj == nil {
		obj = info.Uses[id]
	}
	if obj == nil {
		return
	}
	for k := range taints {
		if k.root == obj {
			delete(taints, k)
		}
	}
	lit, ok := ast.Unparen(stripAddr(rhs)).(*ast.CompositeLit)
	if !ok {
		return
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		keyID, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		if r := rawLoopVarUse(info, kv.Value, loopVars, taints); r != nil {
			taints[fieldKey{obj, keyID.Name}] = r
		}
	}
}

func stripAddr(e ast.Expr) ast.Expr {
	if u, ok := ast.Unparen(e).(*ast.UnaryExpr); ok && u.Op == token.AND {
		return u.X
	}
	return e
}

// fieldKeyOf resolves a one-level field selector rooted at a plain
// identifier (p.base); deeper chains and receiver-threaded state are
// seedflow's territory.
func fieldKeyOf(info *types.Info, e ast.Expr) (fieldKey, bool) {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return fieldKey{}, false
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return fieldKey{}, false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return fieldKey{}, false
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	if _, isVar := obj.(*types.Var); !isVar {
		return fieldKey{}, false
	}
	return fieldKey{obj, sel.Sel.Name}, true
}

// rawLoopVarUse returns a loop-variable identifier referenced by expr outside
// any rng.DeriveSeed/Substream call, or nil. Loop variables that only appear
// as DeriveSeed/Substream keys are the blessed pattern. A read of a tainted
// local field returns the loop variable recorded at the tainting store, so
// the diagnostic names the index the value actually came from.
func rawLoopVarUse(info *types.Info, expr ast.Expr, loopVars []types.Object, taints map[fieldKey]*ast.Ident) *ast.Ident {
	if len(loopVars) == 0 && len(taints) == 0 {
		return nil
	}
	var found *ast.Ident
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			// The facade package re-exports DeriveSeed; both spellings bless.
			if f := analysis.Callee(info, call); analysis.IsPkgFunc(f, "rng", "DeriveSeed", "Substream") ||
				analysis.IsPkgFunc(f, "hetlb", "DeriveSeed") {
				return false // keys may (should) reference the loop variable
			}
		}
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if key, ok := fieldKeyOf(info, sel); ok {
				if id := taints[key]; id != nil {
					found = id
					return false
				}
			}
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		for _, lv := range loopVars {
			if obj == lv {
				found = id
				return false
			}
		}
		return true
	}
	ast.Inspect(expr, visit)
	return found
}

// checkGoroutineCapture flags goroutines whose function literal captures a
// variable of type rng.RNG or *rng.RNG from the enclosing scope. A generator
// shared across goroutines makes draw order depend on the scheduler; each
// goroutine must own a generator derived with rng.Substream (keyed) or
// handed over explicitly as an argument.
func checkGoroutineCapture(pass *analysis.Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		goStmt, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := ast.Unparen(goStmt.Call.Fun).(*ast.FuncLit)
		if !ok {
			return true
		}
		// Objects defined inside the literal (params and locals) are its own.
		own := make(map[types.Object]bool)
		ast.Inspect(lit, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				if obj := pass.TypesInfo.Defs[id]; obj != nil {
					own[obj] = true
				}
			}
			return true
		})
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			id, ok := m.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil || own[obj] || !isRNGVar(obj) {
				return true
			}
			// Package-level generators would be shared too; only objects
			// declared somewhere (skip nil-scope builtins).
			pass.Reportf(id.Pos(), "goroutine captures %s (*rng.RNG) from the enclosing scope: draw order would depend on scheduling; pass a generator derived with rng.Substream into the goroutine instead", id.Name)
			return true
		})
		return true
	})
}

// isRNGVar reports whether obj is a variable of type rng.RNG or *rng.RNG.
func isRNGVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	named := analysis.NamedType(v.Type())
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Name() == "rng" && named.Obj().Name() == "RNG"
}
