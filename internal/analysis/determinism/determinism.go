// Package determinism implements the hetlbvet check that keeps wall-clock
// time, the global math/rand generator, and unordered map iteration out of
// the packages whose output must be bit-reproducible.
//
// Every reproduced number in this repository — the Markov equilibrium of the
// one-cluster case, the two-cluster figure curves, the chaos degradation
// table — is pinned by golden tests that assume runs are a pure function of
// the seed. One time.Now() in a driver, one `for k := range m` feeding a CSV
// row, and the goldens break only sometimes, which is the worst way to break.
package determinism

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"hetlb/internal/analysis"
)

// Analyzer is the determinism check.
var Analyzer = &analysis.Analyzer{
	Name:         "determinism",
	Doc:          "forbid wall-clock reads, global math/rand and unordered map iteration in determinism-scoped packages",
	Run:          run,
	Suppressible: true,
}

// wallClock lists the time package functions that read the wall clock. The
// constructors (time.Date, time.Unix) and arithmetic are fine: they are pure.
var wallClock = map[string]bool{"Now": true, "Since": true, "Until": true}

func run(pass *analysis.Pass) (interface{}, error) {
	if !analysis.IsDeterminismScoped(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, file := range pass.Files {
		checkImports(pass, file)
		checkWallClock(pass, file)
		checkMapRange(pass, file)
		checkSpanTimestamps(pass, file)
	}
	return nil, nil
}

// checkImports flags imports of math/rand (v1 and v2): determinism-scoped
// packages must draw randomness from hetlb/internal/rng, whose streams are
// seed-pure and splittable. One finding per import spec covers every use.
func checkImports(pass *analysis.Pass, file *ast.File) {
	for _, imp := range file.Imports {
		path := imp.Path.Value
		if path == `"math/rand"` || path == `"math/rand/v2"` {
			pass.Reportf(imp.Pos(), "import of %s in determinism-scoped package %s: use hetlb/internal/rng (seed-pure, splittable) instead", path, pass.Pkg.Name())
		}
	}
}

// checkWallClock flags references (not just calls, so aliasing is caught) to
// time.Now/Since/Until.
func checkWallClock(pass *analysis.Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		f, ok := pass.TypesInfo.Uses[id].(*types.Func)
		if !ok || f.Pkg() == nil || f.Pkg().Path() != "time" || !wallClock[f.Name()] {
			return true
		}
		pass.Reportf(id.Pos(), "wall-clock read time.%s in determinism-scoped package %s: results must be a pure function of the seed (use virtual time, or annotate //hetlb:nondeterministic-ok if it only feeds metrics)", f.Name(), pass.Pkg.Name())
		return true
	})
}

// spanRecordCalls are the span/timeline record entry points whose arguments
// become part of the exported trace.
var spanRecordCalls = map[string]bool{"Append": true, "Record": true}

// checkSpanTimestamps flags time.Time / time.Duration values flowing into
// span or timeline record calls. Span Start/End/Clock and timeline Time are
// logical time only: traces are asserted bit-identical across harness worker
// counts, and one `int64(time.Since(t0))` smuggled into a span — perhaps
// under a //hetlb:nondeterministic-ok granted for a wall-clock metric — makes
// the trace differ on every run. The generic wall-clock check catches direct
// time.Now() references; this one catches the laundered variable.
func checkSpanTimestamps(pass *analysis.Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := analysis.Callee(pass.TypesInfo, call)
		if f == nil || f.Pkg() == nil || !spanRecordCalls[f.Name()] {
			return true
		}
		if name := f.Pkg().Name(); name != "span" && name != "timeline" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(e ast.Node) bool {
				expr, ok := e.(ast.Expr)
				if !ok {
					return true
				}
				if t := pass.TypesInfo.TypeOf(expr); wallTimeType(t) {
					pass.Reportf(expr.Pos(), "wall-clock value (%s) flows into %s.%s in determinism-scoped package %s: span and timeline fields are logical time only (traces must be bit-identical across runs and worker counts)",
						t, f.Pkg().Name(), f.Name(), pass.Pkg.Name())
					return false
				}
				return true
			})
		}
		return true
	})
}

// wallTimeType reports whether t is time.Time or time.Duration.
func wallTimeType(t types.Type) bool {
	named := analysis.NamedType(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "time" &&
		(obj.Name() == "Time" || obj.Name() == "Duration")
}

// checkMapRange flags `for ... := range m` over maps. Go randomizes map
// iteration order per run, so any map-ordered loop that can reach results
// (CSV rows, error messages, job placement) is a latent golden-test flake.
//
// One idiom is allowed silently: collecting just the keys into a slice that
// the same function later sorts —
//
//	keys := keys[:0]
//	for k := range m {
//		keys = append(keys, k)
//	}
//	sort.Slice(keys, ...)
//
// because the map order is erased by the sort. Everything else needs a
// //hetlb:nondeterministic-ok with a reason, or a refactor onto the idiom.
func checkMapRange(pass *analysis.Pass, file *ast.File) {
	// Walk function by function so the sorted-collection exemption can see
	// the statements that follow the loop.
	var walk func(n ast.Node, fnBody *ast.BlockStmt)
	walk = func(n ast.Node, fnBody *ast.BlockStmt) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncDecl:
				if m.Body != nil && m.Body != fnBody {
					walk(m.Body, m.Body)
					return false
				}
			case *ast.FuncLit:
				if m.Body != fnBody {
					walk(m.Body, m.Body)
					return false
				}
			case *ast.RangeStmt:
				t := pass.TypesInfo.TypeOf(m.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				if sortedKeyCollection(pass, m, fnBody) {
					return true
				}
				pass.Report(analysis.Diagnostic{
					Pos: m.For,
					Message: fmt.Sprintf("map iteration order can reach results in determinism-scoped package %s: iterate sorted keys, or annotate //hetlb:nondeterministic-ok with why order is immaterial",
						pass.Pkg.Name()),
				})
			}
			return true
		})
	}
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
			walk(fd.Body, fd.Body)
		}
	}
}

// sortedKeyCollection reports whether rs is the blessed collect-then-sort
// idiom: the loop body only appends the key to a slice, and the enclosing
// function sorts that slice (sort.* or slices.*) after the loop.
func sortedKeyCollection(pass *analysis.Pass, rs *ast.RangeStmt, fnBody *ast.BlockStmt) bool {
	key, ok := rs.Key.(*ast.Ident)
	if !ok || key.Name == "_" || rs.Value != nil {
		return false
	}
	if len(rs.Body.List) != 1 {
		return false
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	dst, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	if fn, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || fn.Name != "append" || pass.TypesInfo.Uses[fn] != types.Universe.Lookup("append") {
		return false
	}
	if a0, ok := call.Args[0].(*ast.Ident); !ok || pass.TypesInfo.Uses[a0] != pass.TypesInfo.Uses[dst] || pass.TypesInfo.Uses[a0] == nil {
		return false
	}
	if a1, ok := call.Args[1].(*ast.Ident); !ok || pass.TypesInfo.Uses[a1] != pass.TypesInfo.ObjectOf(key) {
		return false
	}
	// The slice must be sorted after the loop, in the same function.
	dstObj := pass.TypesInfo.Uses[dst]
	sorted := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || sorted {
			return !sorted
		}
		f := analysis.Callee(pass.TypesInfo, call)
		if f == nil || f.Pkg() == nil || (f.Pkg().Path() != "sort" && f.Pkg().Path() != "slices") {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == dstObj {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}
