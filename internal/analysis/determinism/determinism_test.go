package determinism_test

import (
	"path/filepath"
	"testing"

	"hetlb/internal/analysis/analysistest"
	"hetlb/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	testdata := filepath.Join("..", "testdata")
	analysistest.Run(t, testdata, determinism.Analyzer, "gossip", "shardgossip", "notscoped")
}
