package analysis

import "strings"

// determinismScoped lists the packages (by final path element) whose results
// feed the paper's reproduced numbers and therefore must be bit-deterministic:
// the simulation core and runtimes, the drivers, the fault layer — plus the
// reduction/emission packages (stats, plot, evaluation), because the order in
// which CSV rows and summaries are emitted is part of the golden output.
//
// The span and timeline recorders are scoped too: span traces are asserted
// bit-identical across harness worker counts, so the recorders themselves may
// not touch wall clock, global math/rand, or map order — logical time only.
//
// Matching by final element (rather than the full "hetlb/internal/..." path)
// lets analysistest packages opt into the scope by directory name.
var determinismScoped = map[string]bool{
	"core":        true,
	"pairwise":    true,
	"gossip":      true,
	"netsim":      true,
	"des":         true,
	"distrun":     true,
	"shardgossip": true,
	"worksteal":   true,
	"harness":     true,
	"experiments": true,
	"workload":    true,
	"faults":      true,
	"stats":       true,
	"plot":        true,
	"evaluation":  true,
	"span":        true,
	"timeline":    true,
}

// IsDeterminismScoped reports whether the package at pkgPath is subject to
// the determinism and statssafety analyzers.
func IsDeterminismScoped(pkgPath string) bool {
	return determinismScoped[pathBase(pkgPath)]
}

// concurrencyScoped lists the packages (by final path element, like the
// determinism scope) whose lock and phase shapes the lockshape and
// phasefreeze analyzers prove: today only the sharded engine — it is the one
// package where worker goroutines read coordinator state without
// synchronization under a prose contract (DESIGN.md §16).
var concurrencyScoped = map[string]bool{
	"shardgossip": true,
}

// IsConcurrencyScoped reports whether the package at pkgPath is subject to
// the lockshape and phasefreeze analyzers.
func IsConcurrencyScoped(pkgPath string) bool {
	return concurrencyScoped[pathBase(pkgPath)]
}

func pathBase(pkgPath string) string {
	if i := strings.LastIndexByte(pkgPath, '/'); i >= 0 {
		return pkgPath[i+1:]
	}
	return pkgPath
}
