// Package analysis is a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis vocabulary (Analyzer, Pass, Diagnostic),
// sized for this repository's needs.
//
// The repo builds with the standard library only, so the real x/tools module
// is not available; the subset here keeps the same shape — an Analyzer is a
// named Run function over a type-checked package, a Pass is the per-package
// unit of work, diagnostics carry a token.Pos and a message — which means the
// analyzers under internal/analysis/... would port to the upstream framework
// by changing only import paths.
//
// On top of the x/tools subset this package adds the repo's annotation layer
// (annotation.go): machine-checked //hetlb: comments that mark allocation-free
// functions and carry per-line, reason-bearing suppressions for the
// determinism analyzers. See DESIGN.md §11 for the policy.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -analyzers filters.
	Name string
	// Doc is the one-paragraph description shown by `hetlbvet -help`.
	Doc string
	// Run executes the check on one package and reports findings through
	// pass.Report. The returned value is unused by this driver (kept for
	// x/tools signature compatibility).
	Run func(pass *Pass) (interface{}, error)
	// Suppressible marks analyzers whose diagnostics may be silenced by a
	// //hetlb:nondeterministic-ok (or alloc-ok) annotation on the offending
	// line. Analyzers enforcing hard invariants can opt out.
	Suppressible bool
}

// Pass is the unit of work: one analyzer applied to one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Report records one finding.
func (p *Pass) Report(d Diagnostic) {
	if d.Analyzer == "" {
		d.Analyzer = p.Analyzer.Name
	}
	*p.diags = append(*p.diags, d)
}

// Reportf is the fmt-style convenience form of Report.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // filled in by Pass.Report / the annotation checker
}

// Package bundles the inputs shared by every analyzer run on one package.
type Package struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
}

// Stats counts per-analyzer outcomes of one Run: diagnostics that survived
// suppression and diagnostics that a suppression silenced. `make lint-stats`
// aggregates these across the tree so suppression creep shows up in CI logs
// instead of accumulating silently.
type Stats struct {
	Findings   map[string]int
	Suppressed map[string]int
}

// Merge folds other into s (for per-package accumulation by drivers).
func (s *Stats) Merge(other Stats) {
	if s.Findings == nil {
		s.Findings = make(map[string]int)
	}
	if s.Suppressed == nil {
		s.Suppressed = make(map[string]int)
	}
	for name, n := range other.Findings {
		s.Findings[name] += n
	}
	for name, n := range other.Suppressed {
		s.Suppressed[name] += n
	}
}

// Run applies the analyzers to pkg, applies the //hetlb: annotation layer
// (unknown-annotation findings, suppression filtering) and returns the
// surviving diagnostics sorted by position, plus per-analyzer counts.
// reportUnused additionally flags suppression comments that silenced
// nothing — the whole-suite driver wants that hygiene check, while
// single-analyzer test runs opt out.
func Run(pkg *Package, analyzers []*Analyzer, reportUnused bool) ([]Diagnostic, Stats, error) {
	stats := Stats{Findings: make(map[string]int), Suppressed: make(map[string]int)}
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.TypesInfo,
			diags:     &diags,
		}
		if _, err := a.Run(pass); err != nil {
			return nil, stats, err
		}
	}
	ann, annDiags := ParseAnnotations(pkg.Fset, pkg.Files)
	suppressible := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		suppressible[a.Name] = a.Suppressible
	}
	before := make(map[string]int)
	for _, d := range diags {
		before[d.Analyzer]++
	}
	kept := ann.Apply(pkg.Fset, diags, suppressible)
	kept = append(kept, annDiags...)
	if reportUnused {
		kept = append(kept, ann.Unused()...)
	}
	sort.SliceStable(kept, func(i, k int) bool { return kept[i].Pos < kept[k].Pos })
	for _, d := range kept {
		stats.Findings[d.Analyzer]++
	}
	for name, n := range before {
		if dropped := n - stats.Findings[name]; dropped > 0 {
			stats.Suppressed[name] = dropped
		}
	}
	return kept, stats, nil
}
