// Package analysis is a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis vocabulary (Analyzer, Pass, Diagnostic),
// sized for this repository's needs.
//
// The repo builds with the standard library only, so the real x/tools module
// is not available; the subset here keeps the same shape — an Analyzer is a
// named Run function over a type-checked package, a Pass is the per-package
// unit of work, diagnostics carry a token.Pos and a message — which means the
// analyzers under internal/analysis/... would port to the upstream framework
// by changing only import paths.
//
// On top of the x/tools subset this package adds the repo's annotation layer
// (annotation.go): machine-checked //hetlb: comments that mark allocation-free
// functions and carry per-line, reason-bearing suppressions for the
// determinism analyzers. See DESIGN.md §11 for the policy.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -analyzers filters.
	Name string
	// Doc is the one-paragraph description shown by `hetlbvet -help`.
	Doc string
	// Run executes the check on one package and reports findings through
	// pass.Report. The returned value is unused by this driver (kept for
	// x/tools signature compatibility).
	Run func(pass *Pass) (interface{}, error)
	// Suppressible marks analyzers whose diagnostics may be silenced by a
	// //hetlb:nondeterministic-ok (or alloc-ok) annotation on the offending
	// line. Analyzers enforcing hard invariants can opt out.
	Suppressible bool
}

// Pass is the unit of work: one analyzer applied to one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Report records one finding.
func (p *Pass) Report(d Diagnostic) {
	if d.Analyzer == "" {
		d.Analyzer = p.Analyzer.Name
	}
	*p.diags = append(*p.diags, d)
}

// Reportf is the fmt-style convenience form of Report.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // filled in by Pass.Report / the annotation checker
}

// Package bundles the inputs shared by every analyzer run on one package.
type Package struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
}

// Run applies the analyzers to pkg, applies the //hetlb: annotation layer
// (unknown-annotation findings, suppression filtering) and returns the
// surviving diagnostics sorted by position. reportUnused additionally flags
// suppression comments that silenced nothing — the whole-suite driver wants
// that hygiene check, while single-analyzer test runs opt out.
func Run(pkg *Package, analyzers []*Analyzer, reportUnused bool) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.TypesInfo,
			diags:     &diags,
		}
		if _, err := a.Run(pass); err != nil {
			return nil, err
		}
	}
	ann, annDiags := ParseAnnotations(pkg.Fset, pkg.Files)
	suppressible := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		suppressible[a.Name] = a.Suppressible
	}
	kept := ann.Apply(pkg.Fset, diags, suppressible)
	kept = append(kept, annDiags...)
	if reportUnused {
		kept = append(kept, ann.Unused()...)
	}
	sort.SliceStable(kept, func(i, k int) bool { return kept[i].Pos < kept[k].Pos })
	return kept, nil
}
