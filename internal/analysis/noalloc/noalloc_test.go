package noalloc_test

import (
	"path/filepath"
	"strings"
	"testing"

	"hetlb/internal/analysis"
	"hetlb/internal/analysis/analysistest"
	"hetlb/internal/analysis/load"
	"hetlb/internal/analysis/noalloc"
)

func TestNoalloc(t *testing.T) {
	testdata := filepath.Join("..", "testdata")
	analysistest.Run(t, testdata, noalloc.Analyzer, "noallocpkg")
}

// TestMisplacedNoalloc asserts directly (the diagnostic lands on the
// annotation's own line, where a want comment cannot coexist) that a
// //hetlb:noalloc outside a function doc comment is reported.
func TestMisplacedNoalloc(t *testing.T) {
	loader := load.NewTestLoader(filepath.Join("..", "testdata", "src"))
	pkg, err := loader.Load("misplaced")
	if err != nil {
		t.Fatalf("loading misplaced: %v", err)
	}
	diags, _, err := analysis.Run(pkg, []*analysis.Analyzer{noalloc.Analyzer}, false)
	if err != nil {
		t.Fatalf("running noalloc: %v", err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly 1: %+v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "misplaced //hetlb:noalloc") {
		t.Errorf("diagnostic %q does not report the misplaced annotation", diags[0].Message)
	}
}
