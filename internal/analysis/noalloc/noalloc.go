// Package noalloc implements the hetlbvet check for //hetlb:noalloc
// functions: the scratch-buffer kernels and engine step paths that PR 3 made
// allocation-free and that the step benchmarks assume stay that way.
//
// The static rules are necessarily approximate — Go's escape analysis is not
// re-run here — so the check targets the allocation shapes that actually
// regressed or nearly regressed during development:
//
//   - make(...) of anything;
//   - map and function literals (closures always allocate once they escape,
//     and in a step path they escape);
//   - append that grows a slice the caller does not own: appending to a
//     parameter or into a *Scratch-rooted buffer reuses warm capacity, while
//     appending to a fresh local is a hidden make;
//   - interface boxing at call sites: passing a concrete value to an
//     interface parameter heap-allocates the box.
//
// Amortized growth paths (a buffer reaching its high-water mark) are real and
// fine; they carry //hetlb:alloc-ok with a reason. The companion dynamic
// check — testing.AllocsPerRun == 0 guards over every annotated kernel —
// catches whatever this analyzer's approximation misses.
package noalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"hetlb/internal/analysis"
)

// Analyzer is the noalloc check.
var Analyzer = &analysis.Analyzer{
	Name:         "noalloc",
	Doc:          "functions annotated //hetlb:noalloc must not make, build map/closure literals, grow non-scratch slices, or box interfaces at call sites",
	Run:          run,
	Suppressible: true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		docLines := make(map[int]bool) // lines covered by some FuncDecl doc
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			annotated := false
			if fd.Doc != nil {
				for _, c := range fd.Doc.List {
					docLines[pass.Fset.Position(c.Pos()).Line] = true
					if isNoallocComment(c) {
						annotated = true
					}
				}
			}
			if annotated && fd.Body != nil {
				checkFunc(pass, fd)
			}
		}
		// A //hetlb:noalloc anywhere but a function doc comment silently
		// protects nothing; that is a finding, not a no-op.
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if isNoallocComment(c) && !docLines[pass.Fset.Position(c.Pos()).Line] {
					pass.Report(analysis.Diagnostic{
						Pos:     c.Pos(),
						Message: "misplaced //hetlb:noalloc: it must be part of a function's doc comment to mark that function",
					})
				}
			}
		}
	}
	return nil, nil
}

func isNoallocComment(c *ast.Comment) bool {
	return c.Text == analysis.AnnotationPrefix+analysis.VerbNoalloc
}

// checkFunc applies the allocation rules to one annotated function.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	scratch := scratchRoots(pass, fd)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure literal in //hetlb:noalloc function %s allocates", fd.Name.Name)
			return false // the literal's own body runs under its own rules
		case *ast.CompositeLit:
			if t := pass.TypesInfo.TypeOf(n); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					pass.Reportf(n.Pos(), "map literal in //hetlb:noalloc function %s allocates", fd.Name.Name)
				}
			}
		case *ast.CallExpr:
			checkCall(pass, fd, n, scratch)
		}
		return true
	})
}

// checkCall handles the three call shapes: make, append, and boxing.
func checkCall(pass *analysis.Pass, fd *ast.FuncDecl, call *ast.CallExpr, scratch map[types.Object]bool) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		switch pass.TypesInfo.Uses[id] {
		case types.Universe.Lookup("make"):
			pass.Reportf(call.Pos(), "make in //hetlb:noalloc function %s allocates (amortized warm-up growth needs //hetlb:alloc-ok with a reason)", fd.Name.Name)
			return
		case types.Universe.Lookup("new"):
			pass.Reportf(call.Pos(), "new in //hetlb:noalloc function %s allocates", fd.Name.Name)
			return
		case types.Universe.Lookup("append"):
			if len(call.Args) == 0 {
				return
			}
			if root := analysis.RootIdent(call.Args[0]); root == nil || !isScratchRooted(pass, root, scratch) {
				pass.Reportf(call.Pos(), "append grows a non-scratch slice in //hetlb:noalloc function %s: append only into parameters or *Scratch buffers (warm, caller-owned capacity)", fd.Name.Name)
			}
			return
		}
	}
	// Interface boxing: a concrete argument passed to an interface parameter.
	sig, ok := typeAsSignature(pass.TypesInfo.TypeOf(call.Fun))
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // s... passes the slice through, no boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		at := pass.TypesInfo.TypeOf(arg)
		if at == nil || isUntypedNil(at) {
			continue
		}
		if tv, ok := pass.TypesInfo.Types[arg]; ok && tv.Value != nil {
			continue // constants box into read-only static data, not the heap
		}
		if types.IsInterface(pt) && !types.IsInterface(at) {
			pass.Reportf(arg.Pos(), "interface boxing in //hetlb:noalloc function %s: %s argument allocates when boxed into %s", fd.Name.Name, at, pt)
		}
	}
}

func typeAsSignature(t types.Type) (*types.Signature, bool) {
	if t == nil {
		return nil, false
	}
	sig, ok := t.Underlying().(*types.Signature)
	return sig, ok
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

// scratchRoots computes the set of local objects that alias caller-owned or
// scratch memory: the receiver, every parameter, and (in declaration order)
// locals defined from an expression rooted at one of those — e.g.
// `to1 := s.To1[:0]` or `buckets := s.Buckets(k)`.
func scratchRoots(pass *analysis.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	roots := make(map[types.Object]bool)
	addField := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil {
					roots[obj] = true
				}
			}
		}
	}
	addField(fd.Recv)
	addField(fd.Type.Params)

	// Forward pass in source order: defines see earlier marks.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE {
			return true
		}
		for i, lhs := range as.Lhs {
			if i >= len(as.Rhs) {
				break
			}
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			root := analysis.RootIdent(as.Rhs[i])
			if root == nil {
				continue
			}
			if isScratchRooted(pass, root, roots) {
				if obj := pass.TypesInfo.Defs[id]; obj != nil {
					roots[obj] = true
				}
			}
		}
		return true
	})
	return roots
}

// isScratchRooted reports whether the identifier denotes caller-owned or
// scratch memory: a known root object, or any variable whose (pointer-
// stripped) named type mentions Scratch.
func isScratchRooted(pass *analysis.Pass, id *ast.Ident, roots map[types.Object]bool) bool {
	obj := pass.TypesInfo.ObjectOf(id)
	if obj == nil {
		return false
	}
	if roots[obj] {
		return true
	}
	if named := analysis.NamedType(obj.Type()); named != nil && strings.Contains(named.Obj().Name(), "Scratch") {
		return true
	}
	return false
}
