package lockshape_test

import (
	"path/filepath"
	"strings"
	"testing"

	"hetlb/internal/analysis"
	"hetlb/internal/analysis/analysistest"
	"hetlb/internal/analysis/load"
	"hetlb/internal/analysis/lockshape"
)

// TestLockshape runs the golden packages: locktwo reintroduces the
// two-shard-lock session (the regression the analyzer exists to catch),
// lockclean pins the real engine's known-good shapes.
func TestLockshape(t *testing.T) {
	testdata := filepath.Join("..", "testdata")
	analysistest.Run(t, testdata, lockshape.Analyzer,
		"locktwo/shardgossip", "lockclean/shardgossip")
}

// TestOutOfScope proves the analyzer is inert outside the concurrency
// scope: the same mutex shapes in an unscoped package produce nothing.
func TestOutOfScope(t *testing.T) {
	loader := load.NewTestLoader(filepath.Join("..", "testdata", "src"))
	pkg, err := loader.Load("unscopedlocks")
	if err != nil {
		t.Fatalf("loading unscopedlocks: %v", err)
	}
	diags, _, err := analysis.Run(pkg, []*analysis.Analyzer{lockshape.Analyzer}, false)
	if err != nil {
		t.Fatalf("running lockshape: %v", err)
	}
	if len(diags) != 0 {
		t.Fatalf("got %d diagnostics on an unscoped package, want 0: %+v", len(diags), diags)
	}
}

// TestMisplacedGuarded asserts directly (the diagnostic lands on the
// annotation's own line, where a want comment cannot coexist) that a
// //hetlb:guarded governing anything but a struct field is reported.
func TestMisplacedGuarded(t *testing.T) {
	loader := load.NewTestLoader(filepath.Join("..", "testdata", "src"))
	pkg, err := loader.Load("markbad/shardgossip")
	if err != nil {
		t.Fatalf("loading markbad/shardgossip: %v", err)
	}
	diags, _, err := analysis.Run(pkg, []*analysis.Analyzer{lockshape.Analyzer}, false)
	if err != nil {
		t.Fatalf("running lockshape: %v", err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly 1: %+v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "misplaced //hetlb:guarded") {
		t.Errorf("diagnostic %q does not report the misplaced mark", diags[0].Message)
	}
}
