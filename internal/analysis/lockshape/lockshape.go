// Package lockshape proves the sharded engine's locking invariant
// mechanically: no path through a shardgossip session holds two shard
// mutexes at once, and writes to //hetlb:guarded fields (the partial load
// reductions) happen under a shard lock — or on the coordinator, which owns
// all quiesced state between barriers.
//
// The at-most-one-shard-mutex rule is what makes the engine deadlock-free
// without lock ordering (DESIGN.md §14): updatePartials takes the touched
// machine's block mutex for a few integer operations and never nests it. A
// refactor that takes a second lock two calls deep would deadlock only under
// a cross-shard schedule on a loaded machine — exactly the kind of bug that
// survives tests. So the analyzer abstract-interprets every function with a
// held-mutex count: Lock on a shard mutex while one is held is a finding,
// and so is a call into a function whose summary says it may acquire one.
// Branches take the maximum of their arms; net-acquiring loop bodies are
// walked twice so the second iteration sees the first's lock.
//
// Guarded-field writes are checked against the worker/coordinator split from
// the package call graph: a write with no lock held is a finding only in
// worker-concurrent code (reachable from a `go` spawn). The phase-B lockless
// rescan is exactly such a write whose safety argument (the barrier between
// phases) is outside the lock shape — it carries a reasoned
// //hetlb:concurrency-ok, which is the point: the proof boundary is written
// down where it is crossed.
//
// Soundness limits: holding *a* shard mutex is taken as holding the *owning*
// one (lock identity is not tracked), mutexes reached through aliases or
// copies are invisible, and an unresolved `go` through a function value
// hides its spawn tree (flow.Graph.UnresolvedGo). See DESIGN.md §16.
package lockshape

import (
	"go/ast"
	"go/token"
	"go/types"

	"hetlb/internal/analysis"
	"hetlb/internal/analysis/flow"
)

// Analyzer is the shard-mutex shape check.
var Analyzer = &analysis.Analyzer{
	Name:         "lockshape",
	Doc:          "no path may hold two shard mutexes; //hetlb:guarded fields are written only under a shard lock or on the coordinator",
	Run:          run,
	Suppressible: true,
}

type summary struct {
	mayAcquire bool   // acquires a shard mutex somewhere inside
	net        int    // locks still held when the function returns
	trace      string // call chain to the innermost Lock, for messages
}

type checker struct {
	pass      *analysis.Pass
	graph     *flow.Graph
	conc      *flow.Concurrency
	ann       *analysis.Annotations
	mutexes   map[*types.Var]bool // in-package struct fields of type sync.Mutex
	guarded   map[*types.Var]bool // fields marked //hetlb:guarded
	summaries map[*flow.Func]summary
	consumed  map[token.Pos]bool // guarded marks that matched a field
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !analysis.IsConcurrencyScoped(pass.Pkg.Path()) {
		return nil, nil
	}
	c := &checker{
		pass:      pass,
		graph:     flow.Build(pass),
		summaries: make(map[*flow.Func]summary),
		mutexes:   make(map[*types.Var]bool),
		guarded:   make(map[*types.Var]bool),
		consumed:  make(map[token.Pos]bool),
	}
	c.conc = c.graph.Concurrency()
	c.ann, _ = analysis.ParseAnnotations(pass.Fset, pass.Files) // malformed-annotation diags are the driver's
	c.collectFields()
	c.buildSummaries()
	for _, fn := range c.graph.Funcs {
		w := &walker{c: c, fn: fn, report: true}
		w.stmts(fn.Body.List, 0)
	}
	c.reportMisplacedMarks()
	return nil, nil
}

// collectFields finds the shard mutex fields (any sync.Mutex field of an
// in-package struct — the scoped package's convention is that such a field
// guards its struct's shard-local state) and the //hetlb:guarded fields.
func (c *checker) collectFields() {
	for _, file := range c.pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					obj, ok := c.pass.TypesInfo.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					if isSyncMutex(obj.Type()) {
						c.mutexes[obj] = true
					}
					pos := c.pass.Fset.Position(name.Pos())
					if mark, ok := c.ann.MarkAt(analysis.VerbGuarded, pos.Filename, pos.Line); ok {
						c.guarded[obj] = true
						c.consumed[mark] = true
					}
				}
			}
			return true
		})
	}
}

func isSyncMutex(t types.Type) bool {
	named := analysis.NamedType(t)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Name() == "sync" &&
		(named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex")
}

// reportMisplacedMarks flags //hetlb:guarded comments whose governed line
// holds no struct field: the mark is checked, not trusted, exactly like a
// misplaced //hetlb:noalloc.
func (c *checker) reportMisplacedMarks() {
	for pos := range c.ann.MarkPositions(analysis.VerbGuarded) {
		if !c.consumed[pos] {
			c.pass.Reportf(pos, "misplaced //hetlb:%s: no struct field on the governed line", analysis.VerbGuarded)
		}
	}
}

// buildSummaries computes each function's lock summary to a fixpoint, in
// source order per round for determinism.
func (c *checker) buildSummaries() {
	for changed := true; changed; {
		changed = false
		for _, fn := range c.graph.Funcs {
			w := &walker{c: c, fn: fn}
			exit := w.stmts(fn.Body.List, 0)
			s := summary{
				mayAcquire: w.acquired,
				net:        exit + w.deferNet,
				trace:      w.acquireTrace,
			}
			if s != c.summaries[fn] {
				c.summaries[fn] = s
				changed = true
			}
		}
	}
}

// walker abstract-interprets one function body with a held-mutex count.
type walker struct {
	c            *checker
	fn           *flow.Func
	report       bool
	deferNet     int    // deferred Unlocks, applied at function exit
	acquired     bool   // saw a Lock (or a call that may Lock)
	acquireTrace string // chain to the innermost Lock
}

func (w *walker) stmts(list []ast.Stmt, h int) int {
	for _, s := range list {
		h = w.stmt(s, h)
	}
	return h
}

func (w *walker) stmt(s ast.Stmt, h int) int {
	switch s := s.(type) {
	case nil:
		return h
	case *ast.ExprStmt:
		return w.expr(s.X, h)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			h = w.expr(rhs, h)
		}
		for _, lhs := range s.Lhs {
			w.checkGuardedWrite(lhs, h)
			h = w.expr(lhs, h)
		}
		return h
	case *ast.IncDecStmt:
		w.checkGuardedWrite(s.X, h)
		return w.expr(s.X, h)
	case *ast.DeferStmt:
		if kind := w.mutexCallKind(s.Call); kind == "Unlock" {
			w.deferNet--
			return h
		} else if kind == "Lock" {
			// A deferred Lock is senseless; treat as acquiring now so the
			// double-lock check still sees it.
			return w.lockAt(s.Call.Pos(), h)
		}
		return w.expr(s.Call, h)
	case *ast.GoStmt:
		// The spawned body is its own graph node; the spawn itself neither
		// acquires nor releases in this goroutine. Arguments may.
		for _, arg := range s.Call.Args {
			h = w.expr(arg, h)
		}
		return h
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			h = w.expr(r, h)
		}
		return h
	case *ast.IfStmt:
		h = w.stmt(s.Init, h)
		h = w.expr(s.Cond, h)
		h1 := w.stmt(s.Body, h)
		h2 := h
		if s.Else != nil {
			h2 = w.stmt(s.Else, h)
		}
		return maxInt(h1, h2)
	case *ast.ForStmt:
		h = w.stmt(s.Init, h)
		if s.Cond != nil {
			h = w.expr(s.Cond, h)
		}
		body := func(entry int) int {
			e := w.stmt(s.Body, entry)
			return w.stmt(s.Post, e)
		}
		h1 := body(h)
		if h1 > h {
			// Net-acquiring loop body: the second iteration enters with the
			// first's lock still held — walk again so Lock-while-held fires.
			h1 = body(h1)
		}
		return maxInt(h, h1)
	case *ast.RangeStmt:
		h = w.expr(s.X, h)
		h1 := w.stmt(s.Body, h)
		if h1 > h {
			h1 = w.stmt(s.Body, h1)
		}
		return maxInt(h, h1)
	case *ast.BlockStmt:
		return w.stmts(s.List, h)
	case *ast.SwitchStmt:
		h = w.stmt(s.Init, h)
		if s.Tag != nil {
			h = w.expr(s.Tag, h)
		}
		return w.caseMax(s.Body, h)
	case *ast.TypeSwitchStmt:
		h = w.stmt(s.Init, h)
		h = w.stmt(s.Assign, h)
		return w.caseMax(s.Body, h)
	case *ast.SelectStmt:
		return w.caseMax(s.Body, h)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, h)
	case *ast.SendStmt:
		h = w.expr(s.Chan, h)
		return w.expr(s.Value, h)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						h = w.expr(v, h)
					}
				}
			}
		}
		return h
	default:
		return h
	}
}

// caseMax folds a switch/select body: every clause starts at the entry
// count; the exit is the maximum across clauses.
func (w *walker) caseMax(body *ast.BlockStmt, h int) int {
	out := h
	for _, clause := range body.List {
		var stmts []ast.Stmt
		switch cl := clause.(type) {
		case *ast.CaseClause:
			for _, e := range cl.List {
				h = w.expr(e, h)
			}
			stmts = cl.Body
		case *ast.CommClause:
			h = w.stmt(cl.Comm, h)
			stmts = cl.Body
		}
		out = maxInt(out, w.stmts(stmts, h))
	}
	return out
}

// expr walks an expression in evaluation order, interpreting mutex calls and
// in-package calls through their summaries.
func (w *walker) expr(e ast.Expr, h int) int {
	if e == nil {
		return h
	}
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		switch x := ast.Unparen(e).(type) {
		case nil:
		case *ast.CallExpr:
			for _, arg := range x.Args {
				walk(arg)
			}
			switch w.mutexCallKind(x) {
			case "Lock":
				h = w.lockAt(x.Pos(), h)
				return
			case "Unlock":
				if h > 0 {
					h--
				}
				return
			}
			walk(x.Fun)
			if callee := w.calleeFunc(x); callee != nil {
				s := w.c.summaries[callee]
				if s.mayAcquire {
					w.acquired = true
					if w.acquireTrace == "" {
						// s.trace already starts at callee's name.
						w.acquireTrace = w.fn.Name + " → " + s.trace
					}
					if h >= 1 && w.report {
						w.c.pass.Reportf(x.Pos(),
							"second shard mutex acquired while one is held: call path %s → %s takes another shard lock; sessions may take at most one (DESIGN.md §14)",
							w.fn.Name, s.trace)
					}
				}
				h += s.net
			}
		case *ast.FuncLit:
			// Its body is a separate graph node with its own walk.
		case *ast.BinaryExpr:
			walk(x.X)
			walk(x.Y)
		case *ast.UnaryExpr:
			walk(x.X)
		case *ast.StarExpr:
			walk(x.X)
		case *ast.SelectorExpr:
			walk(x.X)
		case *ast.IndexExpr:
			walk(x.X)
			walk(x.Index)
		case *ast.SliceExpr:
			walk(x.X)
			walk(x.Low)
			walk(x.High)
			walk(x.Max)
		case *ast.CompositeLit:
			for _, elt := range x.Elts {
				walk(elt)
			}
		case *ast.KeyValueExpr:
			walk(x.Value)
		case *ast.TypeAssertExpr:
			walk(x.X)
		}
	}
	walk(e)
	return h
}

// lockAt interprets one Lock acquisition at pos.
func (w *walker) lockAt(pos token.Pos, h int) int {
	w.acquired = true
	if w.acquireTrace == "" {
		w.acquireTrace = w.fn.Name
	}
	if h >= 1 && w.report {
		w.c.pass.Reportf(pos,
			"second shard mutex acquired while one is already held in %s: sessions may take at most one shard lock at a time (DESIGN.md §14)",
			w.fn.Name)
	}
	return h + 1
}

// mutexCallKind classifies call as Lock/Unlock on a shard mutex field
// ("" otherwise).
func (w *walker) mutexCallKind(call *ast.CallExpr) string {
	fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	name := fun.Sel.Name
	if name != "Lock" && name != "Unlock" && name != "RLock" && name != "RUnlock" {
		return ""
	}
	recv, ok := ast.Unparen(fun.X).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	sel, ok := w.c.pass.TypesInfo.Selections[recv]
	if !ok || sel.Kind() != types.FieldVal {
		return ""
	}
	field, ok := sel.Obj().(*types.Var)
	if !ok || !w.c.mutexes[field] {
		return ""
	}
	if name == "RLock" {
		return "Lock"
	}
	if name == "RUnlock" {
		return "Unlock"
	}
	return name
}

// calleeFunc resolves an in-package call target.
func (w *walker) calleeFunc(call *ast.CallExpr) *flow.Func {
	if f := analysis.Callee(w.c.pass.TypesInfo, call); f != nil {
		return w.c.graph.FuncOf(f)
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return w.c.graph.FuncOfLit(lit)
	}
	return nil
}

// checkGuardedWrite reports a write to a //hetlb:guarded field with no shard
// lock held — unless the enclosing function is coordinator-only, which owns
// all shard state between barriers by construction.
func (w *walker) checkGuardedWrite(lhs ast.Expr, h int) {
	if !w.report || h >= 1 {
		return
	}
	field := guardedFieldOf(w.c, lhs)
	if field == nil {
		return
	}
	if !w.c.conc.Concurrent(w.fn) {
		return // coordinator-phase write: between barriers it owns the state
	}
	w.c.pass.Reportf(lhs.Pos(),
		"write to guarded field %s without holding its shard mutex on a worker path (%s): //hetlb:guarded fields are written under the owning shard's lock (DESIGN.md §14)",
		field.Name(), w.c.conc.Trace(w.fn))
}

// guardedFieldOf resolves the first //hetlb:guarded field along lhs's
// selector chain, or nil.
func guardedFieldOf(c *checker, lhs ast.Expr) *types.Var {
	var found *types.Var
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		if found != nil {
			return
		}
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			if sel, ok := c.pass.TypesInfo.Selections[x]; ok && sel.Kind() == types.FieldVal {
				if field, ok := sel.Obj().(*types.Var); ok && c.guarded[field] {
					found = field
					return
				}
			}
			walk(x.X)
		case *ast.IndexExpr:
			walk(x.X)
		case *ast.StarExpr:
			walk(x.X)
		}
	}
	walk(lhs)
	return found
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
