// Package analysistest runs an analyzer over GOPATH-style golden packages
// under a testdata directory and checks its diagnostics against `// want`
// comments, mirroring golang.org/x/tools/go/analysis/analysistest.
//
// Expectation syntax (on the line the diagnostic is reported):
//
//	m[k] = v // want `map iteration`
//	bad()   // want "first" "second"
//
// Each quoted string is a regular expression matched (unanchored) against a
// diagnostic message on that line; every diagnostic must be wanted and every
// want must be matched. Suppression comments are applied before matching, so
// a violation carrying a valid //hetlb: suppression and no want comment is
// itself a test that suppression works.
package analysistest

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"hetlb/internal/analysis"
	"hetlb/internal/analysis/load"
)

// Run checks one analyzer against the golden packages (paths under
// testdata/src). Unused-suppression findings are off: single-analyzer runs
// cannot tell whether a suppression aimed at another analyzer is stale.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	RunSuite(t, testdata, []*analysis.Analyzer{a}, false, pkgPaths...)
}

// RunSuite checks a set of analyzers together, optionally including the
// unused-suppression hygiene findings (the whole-suite driver behaviour).
func RunSuite(t *testing.T, testdata string, analyzers []*analysis.Analyzer, reportUnused bool, pkgPaths ...string) {
	t.Helper()
	src := filepath.Join(testdata, "src")
	for _, path := range pkgPaths {
		loader := load.NewTestLoader(src)
		pkg, err := loader.Load(path)
		if err != nil {
			t.Errorf("loading %s: %v", path, err)
			continue
		}
		diags, _, err := analysis.Run(pkg, analyzers, reportUnused)
		if err != nil {
			t.Errorf("running on %s: %v", path, err)
			continue
		}
		exps, err := expectations(filepath.Join(src, filepath.FromSlash(path)))
		if err != nil {
			t.Errorf("parsing expectations for %s: %v", path, err)
			continue
		}
		match(t, pkg, path, diags, exps)
	}
}

// expectation is one `// want` regexp anchored to file:line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// wantToken extracts the quoted expectation strings after a `// want`.
var wantToken = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// expectations scans the package directory's Go files for want comments.
func expectations(dir string) ([]*expectation, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []*expectation
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		for i, lineText := range strings.Split(string(data), "\n") {
			_, rest, ok := strings.Cut(lineText, "// want ")
			if !ok {
				continue
			}
			for _, tok := range wantToken.FindAllString(rest, -1) {
				var pat string
				if tok[0] == '`' {
					pat = tok[1 : len(tok)-1]
				} else if unq, err := strconv.Unquote(tok); err == nil {
					pat = unq
				} else {
					continue
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					return nil, err
				}
				out = append(out, &expectation{
					file: filepath.Join(dir, e.Name()),
					line: i + 1,
					re:   re,
					raw:  pat,
				})
			}
		}
	}
	return out, nil
}

// match pairs diagnostics with expectations and reports both directions of
// mismatch.
func match(t *testing.T, pkg *analysis.Package, path string, diags []analysis.Diagnostic, exps []*expectation) {
	t.Helper()
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		found := false
		for _, e := range exps {
			if e.matched || e.line != pos.Line || filepath.Base(e.file) != filepath.Base(pos.Filename) {
				continue
			}
			if e.re.MatchString(d.Message) {
				e.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic [%s]: %s", pos, d.Analyzer, d.Message)
		}
	}
	for _, e := range exps {
		if !e.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.raw)
		}
	}
}
