// Package dynamic simulates the operational mode Section IV of the paper
// motivates for a-priori balancers: the balancing algorithm runs
// *concurrently with the application*. Machines execute their local queues
// while, periodically, a random pair of machines rebalances its pending
// (not-yet-started) jobs with a protocol kernel. Jobs may all be present at
// time zero or arrive over time on random machines ("tasks might
// dynamically be created on a processor").
//
// This closes the loop between the paper's two worlds: the protocols of
// internal/protocol decide *where* jobs go, the discrete-event kernel of
// internal/des decides *when* things happen, and the result is measured in
// schedule terms (makespan, flow time) rather than balancing terms.
package dynamic

import (
	"fmt"
	"math"

	"hetlb/internal/core"
	"hetlb/internal/des"
	"hetlb/internal/protocol"
	"hetlb/internal/rng"
)

// Config parameterizes a run.
type Config struct {
	// Seed drives arrivals, placement and pair selection.
	Seed uint64
	// BalanceEvery is the virtual-time period between balancing events
	// (each event rebalances one random pair's pending jobs); 0 disables
	// balancing entirely (the no-balancer baseline).
	BalanceEvery int64
	// MeanInterarrival > 0 spreads job arrivals with exponential gaps of
	// this mean, each job landing on a uniformly random machine. 0 makes
	// all jobs available at time zero according to Initial.
	MeanInterarrival float64
	// Initial places the jobs when MeanInterarrival == 0; it must be
	// complete. Ignored otherwise.
	Initial *core.Assignment
	// MaxEvents is a safety valve (0 = generous default).
	MaxEvents uint64
}

// Result summarizes a run.
type Result struct {
	// Makespan is when the last job completed.
	Makespan int64
	// MeanFlow and MaxFlow summarize completion − arrival over jobs.
	MeanFlow float64
	MaxFlow  int64
	// Exchanges counts balancing events that moved at least one job;
	// BalanceEvents counts all balancing events.
	Exchanges, BalanceEvents int
	// JobsMoved counts job migrations (a job moved twice counts twice).
	JobsMoved int
	// Completion and Arrival per job (diagnostics).
	Completion, Arrival []int64
}

type machine struct {
	pending   []int
	running   int
	busyUntil int64 // completion time of the running job
}

// Simulator couples execution with periodic pairwise balancing.
type Simulator struct {
	model core.CostModel
	proto protocol.Protocol
	cfg   Config
	sim   *des.Simulator
	gen   *rng.RNG
	ms    []machine
	left  int
	res   Result
}

// New validates the configuration and builds a simulator.
func New(model core.CostModel, proto protocol.Protocol, cfg Config) (*Simulator, error) {
	if cfg.BalanceEvery < 0 {
		return nil, fmt.Errorf("dynamic: negative balance period")
	}
	if cfg.MeanInterarrival < 0 {
		return nil, fmt.Errorf("dynamic: negative interarrival mean")
	}
	if cfg.MeanInterarrival == 0 {
		if cfg.Initial == nil || !cfg.Initial.Complete() {
			return nil, fmt.Errorf("dynamic: static mode needs a complete initial assignment")
		}
	}
	s := &Simulator{
		model: model,
		proto: proto,
		cfg:   cfg,
		sim:   des.New(),
		gen:   rng.New(cfg.Seed),
		ms:    make([]machine, model.NumMachines()),
		left:  model.NumJobs(),
	}
	for i := range s.ms {
		s.ms[i].running = -1
	}
	s.res.Completion = make([]int64, model.NumJobs())
	s.res.Arrival = make([]int64, model.NumJobs())
	return s, nil
}

// Run executes the simulation to completion.
func (s *Simulator) Run() Result {
	n := s.model.NumJobs()
	if n == 0 {
		return s.res
	}
	// Schedule arrivals.
	if s.cfg.MeanInterarrival == 0 {
		for j := 0; j < n; j++ {
			i := s.cfg.Initial.MachineOf(j)
			s.ms[i].pending = append(s.ms[i].pending, j)
		}
		for i := range s.ms {
			i := i
			s.sim.At(0, des.PhaseStart, func() { s.start(i) })
		}
	} else {
		t := 0.0
		for j := 0; j < n; j++ {
			t += expSample(s.gen, s.cfg.MeanInterarrival)
			at := int64(t)
			j := j
			s.sim.At(at, des.PhaseTransfer, func() { s.arrive(j) })
		}
	}
	// Periodic balancing.
	if s.cfg.BalanceEvery > 0 && s.model.NumMachines() > 1 {
		s.sim.At(s.cfg.BalanceEvery, des.PhaseTransfer, s.balanceTick)
	}

	maxEvents := s.cfg.MaxEvents
	if maxEvents == 0 {
		maxEvents = 10_000_000
	}
	if !s.sim.Run(maxEvents) {
		panic("dynamic: event budget exhausted")
	}
	if s.left != 0 {
		panic("dynamic: drained with jobs unfinished")
	}
	var sumFlow float64
	for j := 0; j < n; j++ {
		f := s.res.Completion[j] - s.res.Arrival[j]
		sumFlow += float64(f)
		if f > s.res.MaxFlow {
			s.res.MaxFlow = f
		}
	}
	s.res.MeanFlow = sumFlow / float64(n)
	return s.res
}

// expSample draws an exponential gap with the given mean.
func expSample(gen *rng.RNG, mean float64) float64 {
	u := gen.Float64()
	for u == 0 {
		u = gen.Float64()
	}
	return -mean * math.Log(u)
}

// arrive lands job j on a random machine.
func (s *Simulator) arrive(j int) {
	i := s.gen.Intn(s.model.NumMachines())
	s.res.Arrival[j] = s.sim.Now()
	s.ms[i].pending = append(s.ms[i].pending, j)
	s.sim.At(s.sim.Now(), des.PhaseStart, func() { s.start(i) })
}

// start runs machine i's next pending job if it is idle.
func (s *Simulator) start(i int) {
	m := &s.ms[i]
	if m.running != -1 || len(m.pending) == 0 {
		return
	}
	j := m.pending[0]
	m.pending = m.pending[1:]
	m.running = j
	done := s.sim.Now() + int64(s.model.Cost(i, j))
	m.busyUntil = done
	s.sim.At(done, des.PhaseComplete, func() { s.complete(i, j) })
}

// complete finishes job j on machine i.
func (s *Simulator) complete(i, j int) {
	s.ms[i].running = -1
	s.res.Completion[j] = s.sim.Now()
	s.left--
	if s.left == 0 {
		s.res.Makespan = s.sim.Now()
		return
	}
	s.sim.At(s.sim.Now(), des.PhaseStart, func() { s.start(i) })
}

// balanceTick rebalances one random pair's pending jobs and reschedules
// itself while work remains.
func (s *Simulator) balanceTick() {
	if s.left == 0 {
		return
	}
	mm := s.model.NumMachines()
	i := s.gen.Intn(mm)
	peer := s.gen.Pick(mm, i)
	s.res.BalanceEvents++

	// Pool pending jobs only; running jobs are non-preemptible, but their
	// remaining time is real load the kernel must account for (otherwise
	// a short job stays parked behind a long-running one while another
	// machine idles).
	union := append(append([]int(nil), s.ms[i].pending...), s.ms[peer].pending...)
	sortInts(union)
	var toI, toPeer []int
	if ls, ok := s.proto.(protocol.LoadedSplitter); ok {
		toI, toPeer = ls.SplitLoaded(i, peer, s.remaining(i), s.remaining(peer), union)
	} else {
		toI, toPeer = s.proto.Split(i, peer, union)
	}
	moved := countMoves(s.ms[i].pending, toI) + countMoves(s.ms[peer].pending, toPeer)
	if moved > 0 {
		s.res.Exchanges++
		s.res.JobsMoved += moved
	}
	s.ms[i].pending = toI
	s.ms[peer].pending = toPeer
	s.sim.At(s.sim.Now(), des.PhaseStart, func() { s.start(i) })
	peerCopy := peer
	s.sim.At(s.sim.Now(), des.PhaseStart, func() { s.start(peerCopy) })

	s.sim.After(s.cfg.BalanceEvery, des.PhaseTransfer, s.balanceTick)
}

// remaining returns the remaining processing time of machine i's running
// job (0 when idle).
func (s *Simulator) remaining(i int) core.Cost {
	m := &s.ms[i]
	if m.running == -1 {
		return 0
	}
	return core.Cost(m.busyUntil - s.sim.Now())
}

// countMoves counts jobs in after that were not in before.
func countMoves(before, after []int) int {
	in := make(map[int]bool, len(before))
	for _, j := range before {
		in[j] = true
	}
	moves := 0
	for _, j := range after {
		if !in[j] {
			moves++
		}
	}
	return moves
}

func sortInts(s []int) {
	// Insertion sort: unions are small and usually nearly sorted.
	for i := 1; i < len(s); i++ {
		v := s[i]
		k := i - 1
		for k >= 0 && s[k] > v {
			s[k+1] = s[k]
			k--
		}
		s[k+1] = v
	}
}
