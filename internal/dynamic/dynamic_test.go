package dynamic

import (
	"testing"

	"hetlb/internal/core"
	"hetlb/internal/protocol"
	"hetlb/internal/rng"
	"hetlb/internal/workload"
)

func TestStaticModeNeedsInitial(t *testing.T) {
	id, _ := core.NewIdentical(2, []core.Cost{1})
	if _, err := New(id, protocol.SameCost{Model: id}, Config{}); err == nil {
		t.Fatal("missing initial accepted")
	}
	if _, err := New(id, protocol.SameCost{Model: id}, Config{BalanceEvery: -1}); err == nil {
		t.Fatal("negative period accepted")
	}
	if _, err := New(id, protocol.SameCost{Model: id}, Config{MeanInterarrival: -1}); err == nil {
		t.Fatal("negative interarrival accepted")
	}
}

func TestAllJobsCompleteStatic(t *testing.T) {
	gen := rng.New(1)
	id := workload.UniformIdentical(gen, 4, 40, 1, 20)
	init := core.AllOnMachine(id, 0)
	sim, err := New(id, protocol.SameCost{Model: id}, Config{Seed: 2, BalanceEvery: 5, Initial: init})
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run()
	for j, c := range res.Completion {
		if c <= 0 {
			t.Fatalf("job %d not completed", j)
		}
		if res.Arrival[j] != 0 {
			t.Fatal("static mode arrivals should be 0")
		}
	}
	if res.Makespan <= 0 {
		t.Fatal("no makespan")
	}
}

func TestBalancingHelpsSkewedStart(t *testing.T) {
	// Everything starts on one machine. Without balancing the makespan is
	// the full serial time; with periodic balancing it must come down
	// substantially.
	gen := rng.New(3)
	id := workload.UniformIdentical(gen, 8, 64, 1, 50)
	init := core.AllOnMachine(id, 0)
	var serial core.Cost
	for j := 0; j < 64; j++ {
		serial += id.Size(j)
	}

	noBal, err := New(id, protocol.SameCost{Model: id}, Config{Seed: 4, Initial: init})
	if err != nil {
		t.Fatal(err)
	}
	off := noBal.Run()
	if off.Makespan != int64(serial) {
		t.Fatalf("no-balancer makespan %d, want serial %d", off.Makespan, serial)
	}
	if off.BalanceEvents != 0 {
		t.Fatal("balancing happened with BalanceEvery=0")
	}

	bal, err := New(id, protocol.SameCost{Model: id}, Config{Seed: 4, BalanceEvery: 2, Initial: init})
	if err != nil {
		t.Fatal(err)
	}
	on := bal.Run()
	if on.Makespan >= off.Makespan/2 {
		t.Fatalf("balancing barely helped: %d vs %d", on.Makespan, off.Makespan)
	}
	if on.Exchanges == 0 || on.JobsMoved == 0 {
		t.Fatal("balancing reported no work")
	}
}

func TestDynamicArrivalsComplete(t *testing.T) {
	gen := rng.New(5)
	tc := workload.UniformTwoCluster(gen, 3, 3, 48, 1, 40)
	sim, err := New(tc, protocol.DLB2C{Model: tc}, Config{
		Seed: 6, BalanceEvery: 10, MeanInterarrival: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run()
	for j := range res.Completion {
		if res.Completion[j] < res.Arrival[j] {
			t.Fatalf("job %d completed before arriving", j)
		}
	}
	if res.MeanFlow <= 0 || res.MaxFlow < int64(res.MeanFlow) {
		t.Fatalf("flow stats wrong: mean %v max %v", res.MeanFlow, res.MaxFlow)
	}
}

func TestArrivalOrderIsSpread(t *testing.T) {
	// Exponential interarrivals: arrivals must be non-decreasing in job
	// index and not all zero.
	gen := rng.New(7)
	id := workload.UniformIdentical(gen, 4, 30, 1, 10)
	sim, err := New(id, protocol.SameCost{Model: id}, Config{Seed: 8, MeanInterarrival: 5})
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run()
	nonzero := 0
	for j := 1; j < len(res.Arrival); j++ {
		if res.Arrival[j] < res.Arrival[j-1] {
			t.Fatal("arrivals not monotone in job index")
		}
		if res.Arrival[j] > 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Fatal("all arrivals at time zero despite interarrival mean")
	}
}

func TestBalancingUnderArrivalsReducesFlow(t *testing.T) {
	// Jobs arrive on random machines of a heterogeneous system; the
	// balancer should reduce the mean flow time versus no balancing
	// (jobs parked on a bad cluster wait much longer otherwise).
	gen := rng.New(9)
	tc := workload.UniformTwoCluster(gen, 4, 4, 96, 1, 100)
	run := func(every int64) Result {
		sim, err := New(tc, protocol.DLB2C{Model: tc}, Config{
			Seed: 10, BalanceEvery: every, MeanInterarrival: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sim.Run()
	}
	off := run(0)
	on := run(5)
	if on.MeanFlow >= off.MeanFlow {
		t.Fatalf("balancing did not reduce mean flow: %v vs %v", on.MeanFlow, off.MeanFlow)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	gen := rng.New(11)
	id := workload.UniformIdentical(gen, 4, 24, 1, 30)
	init := core.RoundRobin(id)
	mk := func() Result {
		sim, err := New(id, protocol.SameCost{Model: id}, Config{Seed: 12, BalanceEvery: 3, Initial: init})
		if err != nil {
			t.Fatal(err)
		}
		return sim.Run()
	}
	a, b := mk(), mk()
	if a.Makespan != b.Makespan || a.JobsMoved != b.JobsMoved || a.Exchanges != b.Exchanges {
		t.Fatal("same seed, different run")
	}
}

func TestEmptyInstance(t *testing.T) {
	id, _ := core.NewIdentical(2, nil)
	sim, err := New(id, protocol.SameCost{Model: id}, Config{Initial: core.NewAssignment(id)})
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run()
	if res.Makespan != 0 {
		t.Fatal("empty run has makespan")
	}
}

func TestRunningJobsNeverMoved(t *testing.T) {
	// A single huge job starts at t=0 on machine 0; balancing at t=1 must
	// not move it (non-preemption) and the job completes on machine 0.
	id, _ := core.NewIdentical(2, []core.Cost{1000, 1, 1})
	init, _ := core.FromMachineOf(id, []int{0, 0, 0})
	sim, err := New(id, protocol.SameCost{Model: id}, Config{Seed: 13, BalanceEvery: 1, Initial: init})
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run()
	if res.Completion[0] != 1000 {
		t.Fatalf("running job was disturbed: completion %d", res.Completion[0])
	}
	// The two small jobs should migrate to machine 1 early and finish
	// long before the big one.
	if res.Completion[1] > 100 || res.Completion[2] > 100 {
		t.Fatalf("small jobs not rescued: %v", res.Completion)
	}
}

func BenchmarkDynamicTwoCluster(b *testing.B) {
	gen := rng.New(14)
	tc := workload.UniformTwoCluster(gen, 16, 8, 192, 1, 1000)
	for i := 0; i < b.N; i++ {
		sim, err := New(tc, protocol.DLB2C{Model: tc}, Config{
			Seed: uint64(i), BalanceEvery: 20, MeanInterarrival: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		sim.Run()
	}
}
