package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("step %d: streams diverge: %d != %d", i, got, want)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams from different seeds coincide %d/100 times", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	var acc uint64
	for i := 0; i < 100; i++ {
		acc |= r.Uint64()
	}
	if acc == 0 {
		t.Fatal("seed 0 produced an all-zero stream")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	a := parent.Split()
	b := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams coincide %d/100 times", same)
	}
}

func TestSplitDeterminism(t *testing.T) {
	a := New(9).Split()
	b := New(9).Split()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

func TestDeriveSeedPure(t *testing.T) {
	if DeriveSeed(42, 7) != DeriveSeed(42, 7) {
		t.Fatal("DeriveSeed is not a pure function")
	}
	if DeriveSeed(42) != DeriveSeed(42) {
		t.Fatal("DeriveSeed without keys is not pure")
	}
}

func TestDeriveSeedKeySensitivity(t *testing.T) {
	// Distinct indices, seeds or key paths must produce distinct seeds
	// (collisions among a few thousand derivations would indicate a broken
	// mixer, not bad luck).
	seen := make(map[uint64][2]uint64)
	for seed := uint64(0); seed < 8; seed++ {
		for key := uint64(0); key < 512; key++ {
			v := DeriveSeed(seed, key)
			if prev, ok := seen[v]; ok {
				t.Fatalf("DeriveSeed(%d,%d) == DeriveSeed(%d,%d)", seed, key, prev[0], prev[1])
			}
			seen[v] = [2]uint64{seed, key}
		}
	}
	if DeriveSeed(1, 2, 3) == DeriveSeed(1, 3, 2) {
		t.Fatal("key order must matter")
	}
	if DeriveSeed(1, 2) == DeriveSeed(1, 2, 0) {
		t.Fatal("key path length must matter")
	}
}

func TestSubstreamOrderIndependence(t *testing.T) {
	// Substream(seed, i) must equal itself regardless of which other
	// substreams were derived first — the property the parallel harness
	// relies on.
	a := Substream(5, 3)
	_ = Substream(5, 0)
	_ = Substream(5, 1)
	b := Substream(5, 3)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Substream depends on derivation order")
		}
	}
}

func TestSubstreamsIndependent(t *testing.T) {
	a := Substream(5, 0)
	b := Substream(5, 1)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("adjacent substreams coincide %d/100 times", same)
	}
}

func TestInt64nRange(t *testing.T) {
	r := New(3)
	if err := quick.Check(func(nRaw int64) bool {
		n := nRaw%1000 + 1
		if n <= 0 {
			n = -n + 1
		}
		v := r.Int64n(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInt64nPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n=0")
		}
	}()
	New(1).Int64n(0)
}

func TestIntRangeInclusive(t *testing.T) {
	r := New(5)
	seenLo, seenHi := false, false
	for i := 0; i < 10000; i++ {
		v := r.IntRange(10, 13)
		if v < 10 || v > 13 {
			t.Fatalf("IntRange out of bounds: %d", v)
		}
		if v == 10 {
			seenLo = true
		}
		if v == 13 {
			seenHi = true
		}
	}
	if !seenLo || !seenHi {
		t.Fatal("IntRange endpoints never sampled")
	}
}

func TestIntRangeSingleton(t *testing.T) {
	r := New(5)
	for i := 0; i < 10; i++ {
		if v := r.IntRange(4, 4); v != 4 {
			t.Fatalf("IntRange(4,4) = %d", v)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 || math.IsNaN(v) {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestUniformityChiSquare(t *testing.T) {
	// Crude uniformity check for Intn over 10 buckets: chi-square with 9
	// degrees of freedom should be far below 30 for a healthy generator.
	r := New(123)
	const buckets, samples = 10, 100000
	counts := make([]float64, buckets)
	for i := 0; i < samples; i++ {
		counts[r.Intn(buckets)]++
	}
	expected := float64(samples) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := c - expected
		chi2 += d * d / expected
	}
	if chi2 > 30 {
		t.Fatalf("chi-square too large: %v (counts %v)", chi2, counts)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(17)
	for n := 1; n <= 32; n++ {
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) is not a permutation: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPickExcludes(t *testing.T) {
	r := New(23)
	for n := 2; n <= 8; n++ {
		for excluded := 0; excluded < n; excluded++ {
			seen := make(map[int]bool)
			for i := 0; i < 200; i++ {
				v := r.Pick(n, excluded)
				if v == excluded {
					t.Fatalf("Pick(%d, %d) returned the excluded value", n, excluded)
				}
				if v < 0 || v >= n {
					t.Fatalf("Pick(%d, %d) out of range: %d", n, excluded, v)
				}
				seen[v] = true
			}
			if len(seen) != n-1 {
				t.Fatalf("Pick(%d, %d) did not cover all candidates: %v", n, excluded, seen)
			}
		}
	}
}

func TestPickPanicsOnTooFew(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n=1")
		}
	}()
	New(1).Pick(1, 0)
}

func TestShuffleSwapConsistency(t *testing.T) {
	// Shuffle via the swap callback must agree with ShuffleInts for the
	// same generator state.
	a := New(99)
	b := New(99)
	s1 := []int{0, 1, 2, 3, 4, 5, 6, 7}
	s2 := []int{0, 1, 2, 3, 4, 5, 6, 7}
	a.ShuffleInts(s1)
	b.Shuffle(len(s2), func(i, k int) { s2[i], s2[k] = s2[k], s2[i] })
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("Shuffle and ShuffleInts disagree: %v vs %v", s1, s2)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Intn(1000)
	}
	_ = sink
}

// TestReseedMatchesNew pins the Reseed contract the sharded engine's epoch
// scheduling depends on: after Reseed(s), a generator at any prior stream
// position produces exactly the stream New(s) would, with no allocation.
func TestReseedMatchesNew(t *testing.T) {
	r := New(1)
	for i := 0; i < 17; i++ { // move to an arbitrary stream position
		r.Uint64()
	}
	for _, seed := range []uint64{0, 1, 42, 0xdeadbeef} {
		r.Reseed(seed)
		fresh := New(seed)
		for i := 0; i < 32; i++ {
			if got, want := r.Uint64(), fresh.Uint64(); got != want {
				t.Fatalf("seed %d draw %d: Reseed stream %d != New stream %d", seed, i, got, want)
			}
		}
	}
	allocs := testing.AllocsPerRun(100, func() { r.Reseed(7) })
	if allocs != 0 {
		t.Fatalf("Reseed allocates %v times per call, want 0", allocs)
	}
}
