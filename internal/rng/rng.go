// Package rng provides a small, deterministic, splittable random number
// generator used throughout hetlb.
//
// Reproducibility is a first-class requirement for the experiments in this
// repository: every figure of the paper is regenerated from a fixed seed, and
// concurrent components (one goroutine per machine in the distributed
// runtime) each need an independent stream that does not depend on
// scheduling order. The generator is based on SplitMix64 for seeding and
// xoshiro256** for the stream, both public-domain algorithms with good
// statistical quality and trivial implementations.
package rng

import "math/bits"

// RNG is a deterministic pseudo random number generator. It is NOT safe for
// concurrent use; use Split to derive independent generators for concurrent
// components.
type RNG struct {
	s [4]uint64
}

// splitmix64 advances the given state and returns the next output. It is
// used to expand a 64-bit seed into the 256-bit xoshiro state, following the
// recommendation of the xoshiro authors.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from seed. Two generators created with the
// same seed produce identical streams.
func New(seed uint64) *RNG {
	r := &RNG{}
	r.Reseed(seed)
	return r
}

// Reseed re-initializes r in place to the exact state New(seed) would
// produce, discarding whatever stream position r held. It allocates nothing,
// which is why the sharded gossip engine re-keys one long-lived coordinator
// generator per epoch (with a DeriveSeed-keyed seed) instead of constructing
// a fresh Substream: the epoch schedule stays a pure function of
// (seed, epoch) while the steady-state step path stays allocation-free.
func (r *RNG) Reseed(seed uint64) {
	st := seed
	for i := range r.s {
		r.s[i] = splitmix64(&st)
	}
	// The all-zero state is invalid for xoshiro; the SplitMix64 expansion
	// cannot produce it, but keep a guard for clarity and safety.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
}

// Uint64 returns the next value of the stream (xoshiro256**).
func (r *RNG) Uint64() uint64 {
	result := bits.RotateLeft64(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = bits.RotateLeft64(r.s[3], 45)
	return result
}

// Split returns a new generator whose stream is statistically independent
// from r's. It advances r. Splitting is how per-machine generators are
// derived in the concurrent runtime so that results do not depend on
// goroutine interleaving.
func (r *RNG) Split() *RNG {
	return New(r.Uint64())
}

// DeriveSeed deterministically mixes a base seed with a key path and returns
// a substream seed. Unlike Split, it is a pure function: the result depends
// only on (seed, keys), never on how many other substreams were derived
// before it. This is the primitive behind keyed replication streams — the
// i-th replication of an experiment uses DeriveSeed(expSeed, i), so its
// result is a function of its index alone and is identical no matter in
// which order (or on how many workers) the replications execute.
func DeriveSeed(seed uint64, keys ...uint64) uint64 {
	st := seed
	out := splitmix64(&st)
	for _, k := range keys {
		// Fold each key into the running state through an odd multiplier
		// (golden ratio) so that adjacent keys land in distant states, then
		// re-scramble with SplitMix64.
		st = out ^ (k*0x9e3779b97f4a7c15 + 0x6a09e667f3bcc909)
		out = splitmix64(&st)
	}
	return out
}

// Substream returns a generator seeded with DeriveSeed(seed, keys...): the
// keyed, order-independent counterpart of Split.
func Substream(seed uint64, keys ...uint64) *RNG {
	return New(DeriveSeed(seed, keys...))
}

// Int63 returns a non-negative int64.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Int64n returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Int64n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int64n with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation with rejection to
	// remove modulo bias.
	for {
		v := r.Uint64()
		hi, lo := bits.Mul64(v, uint64(n))
		if lo >= uint64(n) || lo >= -uint64(n)%uint64(n) {
			return int64(hi)
		}
	}
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	return int(r.Int64n(int64(n)))
}

// IntRange returns a uniform value in [lo, hi] inclusive. It panics if
// hi < lo.
func (r *RNG) IntRange(lo, hi int64) int64 {
	if hi < lo {
		panic("rng: IntRange with hi < lo")
	}
	return lo + r.Int64n(hi-lo+1)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * 0x1p-53
}

// Bool returns true with probability 1/2.
func (r *RNG) Bool() bool {
	return r.Uint64()&1 == 1
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	r.PermInto(p)
	return p
}

// PermInto fills p with a random permutation of [0, len(p)) — the
// allocation-free form of Perm. It performs exactly the same generator draws
// as Perm of the same length, so the two are interchangeable without
// perturbing downstream streams.
func (r *RNG) PermInto(p []int) {
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
}

// ShuffleInts shuffles s in place (Fisher–Yates).
func (r *RNG) ShuffleInts(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		k := r.Intn(i + 1)
		s[i], s[k] = s[k], s[i]
	}
}

// Shuffle shuffles n elements using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, k int)) {
	for i := n - 1; i > 0; i-- {
		k := r.Intn(i + 1)
		swap(i, k)
	}
}

// Pick returns a uniform element index in [0, n) different from excluded.
// It panics if n < 2. This is the "select a random peer other than myself"
// primitive of all the gossip protocols.
func (r *RNG) Pick(n, excluded int) int {
	if n < 2 {
		panic("rng: Pick needs at least two candidates")
	}
	v := r.Intn(n - 1)
	if v >= excluded {
		v++
	}
	return v
}
