package worksteal

import (
	"testing"

	"hetlb/internal/central"
	"hetlb/internal/core"
	"hetlb/internal/exact"
	"hetlb/internal/obs"
	"hetlb/internal/rng"
	"hetlb/internal/workload"
)

func TestTheorem1Trap(t *testing.T) {
	// Table I: from the circled distribution, no steal can happen before
	// time n, the run finishes at exactly n+1 under the charitable
	// zero-latency semantics, and OPT is 2 — an unbounded ratio in n.
	for _, n := range []core.Cost{10, 100, 1000} {
		d, init := workload.WorkStealingTrap(n)
		for seed := uint64(0); seed < 8; seed++ {
			sim, err := New(d, init, Config{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			st := sim.Run()
			if st.FirstStealTime != int64(n) {
				t.Fatalf("n=%d seed=%d: first steal at %d, want %d", n, seed, st.FirstStealTime, n)
			}
			if st.Makespan != int64(n)+1 {
				t.Fatalf("n=%d seed=%d: makespan %d, want %d", n, seed, st.Makespan, int64(n)+1)
			}
		}
		if opt := exact.Solve(d).Opt; opt != 2 {
			t.Fatalf("trap OPT = %d, want 2", opt)
		}
	}
}

func TestAllJobsCompleteExactlyOnce(t *testing.T) {
	gen := rng.New(1)
	d := workload.UniformDense(gen, 4, 40, 1, 30)
	init := core.RoundRobin(d)
	sim, err := New(d, init, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	st := sim.Run()
	if len(st.Completion) != 40 {
		t.Fatal("completion vector wrong size")
	}
	for j, c := range st.Completion {
		if c <= 0 {
			t.Fatalf("job %d has completion time %d", j, c)
		}
		if c > st.Makespan {
			t.Fatalf("job %d completes after the makespan", j)
		}
		if e := st.ExecutedOn[j]; e < 0 || e >= 4 {
			t.Fatalf("job %d executed on invalid machine %d", j, e)
		}
	}
}

func TestMakespanAtLeastCriticalWork(t *testing.T) {
	// Work stealing cannot beat the per-job lower bound max_j min_i p_ij,
	// nor can all machines together do more than the total work implies.
	gen := rng.New(2)
	for iter := 0; iter < 20; iter++ {
		d := workload.UniformDense(gen, 3, 12, 1, 50)
		init := core.RoundRobin(d)
		sim, err := New(d, init, Config{Seed: gen.Uint64()})
		if err != nil {
			t.Fatal(err)
		}
		st := sim.Run()
		if st.Makespan < int64(core.LowerBound(d)) {
			t.Fatalf("makespan %d below the instance lower bound %d", st.Makespan, core.LowerBound(d))
		}
	}
}

func TestIdenticalMachinesReasonableMakespan(t *testing.T) {
	// On identical machines with zero steal latency, work stealing is a
	// decentralized List Scheduling; it should be within Graham's factor
	// 2 of the lower bound.
	gen := rng.New(3)
	for iter := 0; iter < 15; iter++ {
		id := workload.UniformIdentical(gen, 6, 60, 1, 100)
		init := core.AllOnMachine(id, 0)
		sim, err := New(id, init, Config{Seed: gen.Uint64()})
		if err != nil {
			t.Fatal(err)
		}
		st := sim.Run()
		lb := core.IdenticalLowerBound(id)
		if st.Makespan > 2*int64(lb) {
			t.Fatalf("makespan %d > 2×LB %d on identical machines", st.Makespan, lb)
		}
		if st.Steals == 0 {
			t.Fatal("no steals from an all-on-one start")
		}
	}
}

func TestStealLatencySlowsRun(t *testing.T) {
	gen := rng.New(4)
	id := workload.UniformIdentical(gen, 4, 40, 1, 20)
	init := core.AllOnMachine(id, 0)
	fast, _ := New(id, init, Config{Seed: 5})
	slow, _ := New(id, init, Config{Seed: 5, StealLatency: 50})
	fs := fast.Run()
	ss := slow.Run()
	if ss.Makespan < fs.Makespan {
		t.Fatalf("latency 50 finished earlier (%d) than latency 0 (%d)", ss.Makespan, fs.Makespan)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	gen := rng.New(5)
	d := workload.UniformDense(gen, 4, 30, 1, 40)
	init := core.RoundRobin(d)
	a, _ := New(d, init, Config{Seed: 11})
	b, _ := New(d, init, Config{Seed: 11})
	sa, sb := a.Run(), b.Run()
	if sa.Makespan != sb.Makespan || sa.Steals != sb.Steals || sa.Probes != sb.Probes {
		t.Fatal("same seed produced different runs")
	}
}

func TestRejectsIncompleteAssignment(t *testing.T) {
	d := core.MustDense([][]core.Cost{{1, 2}})
	a := core.NewAssignment(d)
	a.Assign(0, 0)
	if _, err := New(d, a, Config{}); err == nil {
		t.Fatal("incomplete assignment accepted")
	}
}

func TestRejectsNegativeLatency(t *testing.T) {
	d := core.MustDense([][]core.Cost{{1}})
	a := core.AllOnMachine(d, 0)
	if _, err := New(d, a, Config{StealLatency: -1}); err == nil {
		t.Fatal("negative latency accepted")
	}
}

func TestEmptyInstance(t *testing.T) {
	id, _ := core.NewIdentical(3, nil)
	a := core.NewAssignment(id)
	sim, err := New(id, a, Config{})
	if err != nil {
		t.Fatal(err)
	}
	st := sim.Run()
	if st.Makespan != 0 || st.Steals != 0 {
		t.Fatalf("empty run: %+v", st)
	}
}

func TestSingleMachineNoSteals(t *testing.T) {
	id, _ := core.NewIdentical(1, []core.Cost{3, 4, 5})
	a := core.AllOnMachine(id, 0)
	sim, _ := New(id, a, Config{Seed: 1})
	st := sim.Run()
	if st.Makespan != 12 {
		t.Fatalf("makespan %d, want 12", st.Makespan)
	}
	if st.Steals != 0 || st.JobsMoved != 0 {
		t.Fatal("steals on a single machine")
	}
}

func TestGoodInitialDistributionFewMoves(t *testing.T) {
	// Starting from the CLB2C schedule on a two-cluster instance, work
	// stealing should need few moves and finish near the schedule's
	// makespan (it cannot finish later than a constant factor of it under
	// zero latency; assert the weak sanity bound of 2×).
	gen := rng.New(6)
	tc := workload.UniformTwoCluster(gen, 4, 4, 64, 1, 100)
	init := central.RunCLB2C(tc)
	sim, _ := New(tc, init, Config{Seed: 9})
	st := sim.Run()
	if st.Makespan > 2*int64(init.Makespan()) {
		t.Fatalf("work stealing worsened a good schedule: %d vs %d", st.Makespan, init.Makespan())
	}
}

func BenchmarkWorkStealPaperScale(b *testing.B) {
	gen := rng.New(7)
	tc := workload.UniformTwoCluster(gen, 64, 32, 768, 1, 1000)
	init := core.RoundRobin(tc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim, err := New(tc, init, Config{Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		sim.Run()
	}
}

func TestStealOnePolicy(t *testing.T) {
	// Steal-one must still complete everything and typically needs more
	// steals than steal-half from a skewed start.
	gen := rng.New(21)
	id := workload.UniformIdentical(gen, 6, 60, 1, 50)
	init := core.AllOnMachine(id, 0)
	half, _ := New(id, init, Config{Seed: 3})
	one, _ := New(id, init, Config{Seed: 3, Policy: StealOne})
	sh := half.Run()
	so := one.Run()
	if so.Steals <= sh.Steals {
		t.Fatalf("steal-one used %d steals, steal-half %d", so.Steals, sh.Steals)
	}
	for j, c := range so.Completion {
		if c <= 0 {
			t.Fatalf("steal-one lost job %d", j)
		}
	}
	// Both stay within the Graham factor on identical machines.
	lb := core.IdenticalLowerBound(id)
	if so.Makespan > 2*int64(lb) {
		t.Fatalf("steal-one makespan %d > 2×LB %d", so.Makespan, lb)
	}
}

func TestStealOneTrapStillDelayed(t *testing.T) {
	// Theorem 1 does not depend on the steal amount: the first steal is
	// still blocked until time n.
	d, init := workload.WorkStealingTrap(200)
	sim, _ := New(d, init, Config{Seed: 1, Policy: StealOne})
	st := sim.Run()
	if st.FirstStealTime != 200 {
		t.Fatalf("first steal at %d, want 200", st.FirstStealTime)
	}
	if st.Makespan != 201 {
		t.Fatalf("makespan %d, want 201", st.Makespan)
	}
}

func BenchmarkWorkStealStealOne(b *testing.B) {
	gen := rng.New(22)
	tc := workload.UniformTwoCluster(gen, 64, 32, 768, 1, 1000)
	init := core.RoundRobin(tc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim, err := New(tc, init, Config{Seed: uint64(i), Policy: StealOne})
		if err != nil {
			b.Fatal(err)
		}
		sim.Run()
	}
}

func TestObsMetricsMatchStats(t *testing.T) {
	// The obs counters must agree with the Stats the simulator already
	// reports, and the tracer must carry one event per probe and per steal.
	gen := rng.New(61)
	tc := workload.UniformTwoCluster(gen, 8, 4, 96, 1, 100)
	init := core.AllOnMachine(tc, 0)
	reg := obs.NewRegistry()
	met := NewMetrics(reg, tc.NumMachines())
	tr := obs.NewTracer(1 << 16)
	sim, err := New(tc, init, Config{Seed: 62, StealLatency: 3, Metrics: met, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	st := sim.Run()

	if got := met.Probes.Value(); got != int64(st.Probes) {
		t.Fatalf("worksteal_probes_total = %d, want %d", got, st.Probes)
	}
	if got := met.Steals.Value(); got != int64(st.Steals) {
		t.Fatalf("worksteal_steals_total = %d, want %d", got, st.Steals)
	}
	if met.Steals.Value() == 0 {
		t.Fatal("instance produced no steals; test is vacuous")
	}
	if got := met.StolenPerSteal.Count(); got != int64(st.Steals) {
		t.Fatalf("worksteal_stolen_per_steal count = %d, want %d", got, st.Steals)
	}
	if got, want := met.JobsStolen.Value(), met.StolenPerSteal.Sum(); got != want {
		t.Fatalf("worksteal_jobs_stolen_total = %d, histogram sum %d", got, want)
	}
	// Idle time: non-negative per machine, and bounded by makespan each.
	var idle int64
	for i := 0; i < tc.NumMachines(); i++ {
		v := met.Idle.At(i).Value()
		if v < 0 || v > st.Makespan {
			t.Fatalf("machine %d idle %d outside [0, %d]", i, v, st.Makespan)
		}
		idle += v
	}
	// Machines 1.. start empty next to a loaded machine 0, so some idle
	// time must have been charged before the first successful steals.
	if idle == 0 {
		t.Fatal("no idle time charged on an all-on-one start")
	}
	var attempts, successes int64
	for _, ev := range tr.Events() {
		switch ev.Type {
		case obs.EvStealAttempt:
			attempts++
		case obs.EvStealSuccess:
			successes++
		}
	}
	if tr.Dropped() != 0 {
		t.Fatalf("tracer dropped %d events; raise capacity", tr.Dropped())
	}
	if attempts != int64(st.Probes) || successes != int64(st.Steals) {
		t.Fatalf("tracer saw %d attempts / %d successes, want %d / %d",
			attempts, successes, st.Probes, st.Steals)
	}
}
