// Package worksteal simulates the classical work-stealing scheduler
// (Algorithm 1 of the paper, after Burton & Sleep) on an arbitrary cost
// model. It is the a-posteriori baseline the paper argues against: Theorem 1
// shows that on unrelated machines a bad initial distribution delays the
// first steal until after the optimal makespan has already elapsed
// (Table I), which this simulator reproduces exactly.
//
// Semantics. Each machine owns a deque of pending jobs and runs them one at
// a time from the front. A machine whose deque empties starts a steal
// episode: it probes the other machines in a uniformly random order and
// steals the back half (⌈pending/2⌉) of the first victim that has pending
// (non-running) jobs. Within one timestamp, completions are processed before
// steal resolutions, which are processed before job starts — i.e.
// rebalancing happens at scheduling points before the local dequeue. This is
// the most charitable semantics for work stealing; it is what allows the
// Table I instance to finish at n+1 rather than 2n.
//
// Jobs are never created during a run, so the total number of pending jobs
// only decreases; a machine that goes idle when nothing is pending anywhere
// can never steal again and retires.
package worksteal

import (
	"fmt"

	"hetlb/internal/core"
	"hetlb/internal/des"
	"hetlb/internal/obs"
	"hetlb/internal/obs/span"
	"hetlb/internal/obs/timeline"
	"hetlb/internal/rng"
)

// Metrics bundles the simulator's obs instruments.
type Metrics struct {
	// Probes counts victim probes; Steals successful steals; JobsStolen
	// the jobs transferred by them.
	Probes, Steals, JobsStolen *obs.Counter
	// Idle accumulates, per machine, the virtual time spent with an empty
	// deque waiting for work (probing victims or blocked on latency).
	// Trailing idleness of retired machines is not charged: once nothing is
	// pending anywhere a machine can never run again, so its "idle" tail is
	// unbounded-by-definition rather than schedulable waste.
	Idle *obs.CounterVec
	// StolenPerSteal is the distribution of jobs taken per successful
	// steal.
	StolenPerSteal *obs.Histogram
}

// NewMetrics registers the simulator's instruments for the given machine
// count (idempotent on the same registry).
func NewMetrics(r *obs.Registry, machines int) *Metrics {
	return &Metrics{
		Probes:         r.Counter("worksteal_probes_total", "victim probes"),
		Steals:         r.Counter("worksteal_steals_total", "successful steals"),
		JobsStolen:     r.Counter("worksteal_jobs_stolen_total", "jobs transferred by steals"),
		Idle:           r.CounterVec("worksteal_idle_vt_total", "virtual time spent idle per machine", "machine", obs.IndexLabels(machines)),
		StolenPerSteal: r.Histogram("worksteal_stolen_per_steal", "jobs taken per successful steal", obs.Pow2Bounds(12)),
	}
}

// StealPolicy selects how much a successful steal takes.
type StealPolicy int

// Steal policies.
const (
	// StealHalf takes the back ⌈pending/2⌉ of the victim's deque —
	// Algorithm 1's "steal half", the Cilk-style default.
	StealHalf StealPolicy = iota
	// StealOne takes a single job from the back — the classic ablation;
	// cheaper transfers, more steal traffic.
	StealOne
)

// Config parameterizes a simulation.
type Config struct {
	// Seed drives victim selection.
	Seed uint64
	// StealLatency is the virtual time consumed by each victim probe.
	// Zero models instantaneous steals (the paper's idealization).
	StealLatency int64
	// Policy selects the steal amount (default StealHalf).
	Policy StealPolicy
	// MaxEvents bounds the simulation as a safety valve; 0 picks a
	// generous default derived from the instance size.
	MaxEvents uint64
	// Metrics, when non-nil, receives steal/idle instrumentation (build
	// with NewMetrics for the same machine count).
	Metrics *Metrics
	// Tracer, when non-nil, receives EvStealAttempt per probe and
	// EvStealSuccess per steal (Time = virtual time, A = thief,
	// B = victim, Value = jobs taken).
	Tracer *obs.Tracer
	// Spans, when non-nil, receives one KindSession span per successful
	// steal (A = thief, B = victim, Start = when the thief went idle, End =
	// the steal's commit time, Value = jobs taken), parented to a KindRun
	// span closed at the end of Run. Times are virtual.
	Spans *span.Recorder
	// Timeline, when non-nil, receives one point per successful steal:
	// Time = virtual time, Imbalance = jobs not yet completed (the
	// scheduler's distance from done; there is no running Cmax), cumulative
	// Moves = jobs stolen and Messages = victim probes.
	Timeline *timeline.Recorder
}

// Stats is the outcome of a simulation.
type Stats struct {
	// Makespan is the completion time of the last job.
	Makespan int64
	// FirstStealTime is the time of the first successful steal, or -1 if
	// no steal ever succeeded.
	FirstStealTime int64
	// Steals counts successful steals; Probes counts victim probes.
	Steals, Probes int
	// JobsMoved counts jobs that changed machine at least once.
	JobsMoved int
	// Completion holds each job's completion time.
	Completion []int64
	// ExecutedOn holds the machine that finally executed each job.
	ExecutedOn []int
}

type machine struct {
	pending []int // deque: front = next to run locally, back = steal side
	running int   // job index or -1
}

// Simulator runs Algorithm 1 on one instance from one initial distribution.
type Simulator struct {
	model   core.CostModel
	sim     *des.Simulator
	gen     *rng.RNG
	cfg     Config
	ms      []machine
	pending int // total pending (not running) jobs
	left    int // jobs not yet completed
	stats   Stats
	moved   []bool
	// orders[i] is machine i's reusable victim-order buffer. A machine has
	// at most one steal episode chain in flight at a time (a new episode
	// starts only from its own start/complete, after any previous chain
	// ended), so reusing the buffer per machine is safe and keeps episodes
	// allocation-free.
	orders [][]int
	// idleSince[i] is the virtual time machine i last ran out of local
	// work, or -1 while it is running/has work; used for the idle metric.
	idleSince []int64
	runSpan   span.ID
	stolen    int64 // cumulative jobs transferred by steals (timeline Moves)
}

// New builds a simulator from a complete initial assignment. The assignment
// is not mutated; its job placement defines the initial deques (jobs in
// increasing index order).
func New(m core.CostModel, initial *core.Assignment, cfg Config) (*Simulator, error) {
	if !initial.Complete() {
		return nil, fmt.Errorf("worksteal: initial assignment must place every job")
	}
	if cfg.StealLatency < 0 {
		return nil, fmt.Errorf("worksteal: negative steal latency")
	}
	s := &Simulator{
		model:     m,
		sim:       des.New(),
		gen:       rng.New(cfg.Seed),
		cfg:       cfg,
		ms:        make([]machine, m.NumMachines()),
		left:      m.NumJobs(),
		moved:     make([]bool, m.NumJobs()),
		orders:    make([][]int, m.NumMachines()),
		idleSince: make([]int64, m.NumMachines()),
	}
	for i := range s.orders {
		s.orders[i] = make([]int, m.NumMachines())
	}
	for i := range s.idleSince {
		s.idleSince[i] = -1
	}
	s.stats.FirstStealTime = -1
	s.stats.Completion = make([]int64, m.NumJobs())
	s.stats.ExecutedOn = make([]int, m.NumJobs())
	for i := range s.ms {
		s.ms[i].running = -1
	}
	for j := 0; j < m.NumJobs(); j++ {
		i := initial.MachineOf(j)
		s.ms[i].pending = append(s.ms[i].pending, j)
	}
	s.pending = m.NumJobs()
	if cfg.Spans != nil {
		s.runSpan = cfg.Spans.NextID()
	}
	return s, nil
}

// Run simulates until every job has completed and returns the statistics.
func (s *Simulator) Run() Stats {
	if s.left == 0 {
		return s.stats
	}
	for i := range s.ms {
		i := i
		s.sim.At(0, des.PhaseStart, func() { s.start(i) })
	}
	maxEvents := s.cfg.MaxEvents
	if maxEvents == 0 {
		// Each job contributes one completion and at most one start per
		// move; probes are bounded by (machines per episode) × episodes.
		maxEvents = uint64(1000000 + 100*uint64(s.model.NumJobs())*uint64(s.model.NumMachines()))
	}
	if !s.sim.Run(maxEvents) {
		panic("worksteal: event budget exhausted; simulation diverged")
	}
	if s.left != 0 {
		panic("worksteal: simulation drained with jobs uncompleted")
	}
	if sp := s.cfg.Spans; sp != nil {
		sp.Append(span.Span{
			ID:     s.runSpan,
			Parent: sp.Root(),
			Kind:   span.KindRun,
			A:      -1,
			B:      -1,
			Start:  0,
			End:    s.stats.Makespan,
			Value:  s.stats.Makespan,
		})
	}
	return s.stats
}

// start runs machine i's next local job or begins a steal episode.
func (s *Simulator) start(i int) {
	m := &s.ms[i]
	if m.running != -1 {
		return
	}
	if len(m.pending) > 0 {
		s.settleIdle(i)
		j := m.pending[0]
		m.pending = m.pending[1:]
		s.pending--
		m.running = j
		done := s.sim.Now() + int64(s.model.Cost(i, j))
		s.sim.At(done, des.PhaseComplete, func() { s.complete(i, j) })
		return
	}
	s.markIdle(i)
	if s.pending == 0 {
		// Nothing stealable exists now or ever again: retire.
		return
	}
	s.gen.PermInto(s.orders[i])
	s.episode(i, s.orders[i])
}

// markIdle notes that machine i ran out of local work at the current time
// (no-op if it is already idle).
func (s *Simulator) markIdle(i int) {
	if s.idleSince[i] < 0 {
		s.idleSince[i] = s.sim.Now()
	}
}

// settleIdle charges machine i's accumulated idle span to the idle metric
// when it resumes running.
func (s *Simulator) settleIdle(i int) {
	if s.idleSince[i] < 0 {
		return
	}
	if s.cfg.Metrics != nil {
		s.cfg.Metrics.Idle.At(i).Add(s.sim.Now() - s.idleSince[i])
	}
	s.idleSince[i] = -1
}

// complete finishes job j on machine i and schedules what i does next: a
// local start if it has pending work, otherwise a steal episode in the
// transfer phase of the current instant (so steals settle before any starts
// at this timestamp).
func (s *Simulator) complete(i, j int) {
	m := &s.ms[i]
	m.running = -1
	s.stats.Completion[j] = s.sim.Now()
	s.stats.ExecutedOn[j] = i
	if s.moved[j] {
		s.stats.JobsMoved++
	}
	s.left--
	if s.left == 0 {
		s.stats.Makespan = s.sim.Now()
		return
	}
	if len(m.pending) > 0 {
		s.sim.At(s.sim.Now(), des.PhaseStart, func() { s.start(i) })
	} else if s.pending > 0 {
		s.markIdle(i)
		// Draw the victim order now (the draw point is part of the
		// deterministic event order) into the machine's own buffer.
		s.gen.PermInto(s.orders[i])
		order := s.orders[i]
		s.sim.At(s.sim.Now(), des.PhaseTransfer, func() { s.episode(i, order) })
	}
	// If s.pending == 0 the machine retires; pending never grows.
}

// episode probes victims in the given order until a steal succeeds or the
// order is exhausted. Each probe consumes StealLatency virtual time.
func (s *Simulator) episode(i int, order []int) {
	for k, victim := range order {
		if victim == i {
			continue
		}
		s.stats.Probes++
		if s.cfg.Metrics != nil {
			s.cfg.Metrics.Probes.Inc()
		}
		if s.cfg.Tracer != nil {
			s.cfg.Tracer.Emit(obs.Event{Time: s.sim.Now(), Type: obs.EvStealAttempt, A: int32(i), B: int32(victim)})
		}
		v := &s.ms[victim]
		if len(v.pending) == 0 {
			if s.cfg.StealLatency > 0 {
				rest := order[k+1:]
				s.sim.After(s.cfg.StealLatency, des.PhaseTransfer, func() { s.episode(i, rest) })
				return
			}
			continue
		}
		commit := func() {
			s.steal(i, victim)
		}
		if s.cfg.StealLatency > 0 {
			s.sim.After(s.cfg.StealLatency, des.PhaseTransfer, commit)
		} else {
			commit()
		}
		return
	}
	// Every victim probed empty. With zero latency this implies nothing is
	// pending anywhere (the thief's own deque is empty too) and the
	// machine retires; with positive latency victims may have been drained
	// between probes, so re-enter start to re-evaluate.
	if s.pending > 0 {
		s.sim.At(s.sim.Now(), des.PhaseStart, func() { s.start(i) })
	}
}

// steal transfers the back half of the victim's pending deque to machine i
// and starts i's next job immediately (still within the transfer phase: a
// thief begins executing stolen work right away, so machines that only
// *start* at this instant cannot steal it back). The victim may have been
// drained between the probe and a latency-delayed commit, in which case the
// thief re-enters start to try again.
func (s *Simulator) steal(i, victim int) {
	v := &s.ms[victim]
	if len(v.pending) == 0 {
		s.start(i)
		return
	}
	take := (len(v.pending) + 1) / 2
	if s.cfg.Policy == StealOne {
		take = 1
	}
	stolen := v.pending[len(v.pending)-take:]
	v.pending = v.pending[:len(v.pending)-take]
	m := &s.ms[i]
	m.pending = append(m.pending, stolen...)
	for _, j := range stolen {
		s.moved[j] = true
	}
	s.stats.Steals++
	if s.stats.FirstStealTime == -1 {
		s.stats.FirstStealTime = s.sim.Now()
	}
	if met := s.cfg.Metrics; met != nil {
		met.Steals.Inc()
		met.JobsStolen.Add(int64(take))
		met.StolenPerSteal.Observe(int64(take))
	}
	if s.cfg.Tracer != nil {
		s.cfg.Tracer.Emit(obs.Event{Time: s.sim.Now(), Type: obs.EvStealSuccess, A: int32(i), B: int32(victim), Value: int64(take)})
	}
	if sp := s.cfg.Spans; sp != nil {
		since := s.idleSince[i]
		if since < 0 {
			since = s.sim.Now()
		}
		sp.Append(span.Span{
			Parent: s.runSpan,
			Kind:   span.KindSession,
			Tag:    span.TagInitiator,
			Flags:  span.FlagCommitted,
			A:      int32(i),
			B:      int32(victim),
			Start:  since,
			End:    s.sim.Now(),
			Value:  int64(take),
		})
	}
	s.stolen += int64(take)
	if tl := s.cfg.Timeline; tl != nil {
		tl.Record(timeline.Point{
			Time:      s.sim.Now(),
			Imbalance: int64(s.left),
			Moves:     s.stolen,
			Messages:  int64(s.stats.Probes),
		})
	}
	s.start(i)
}
