package plot

import (
	"strings"
	"testing"
)

func TestNewSeriesPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch accepted")
		}
	}()
	NewSeries("bad", []float64{1, 2}, []float64{1})
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	s := []Series{
		NewSeries("a", []float64{1, 2}, []float64{3, 4}),
		NewSeries("b,with comma", []float64{5}, []float64{6}),
	}
	if err := WriteCSV(&b, s); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines: %q", len(lines), out)
	}
	if lines[0] != "series,x,y" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "a,1,3" || lines[2] != "a,2,4" {
		t.Fatalf("rows = %q", lines[1:3])
	}
	if !strings.HasPrefix(lines[3], `"b,with comma"`) {
		t.Fatalf("escaping broken: %q", lines[3])
	}
}

func TestASCIIContainsMarkersAndLegend(t *testing.T) {
	s := []Series{
		NewSeries("first", []float64{0, 1, 2}, []float64{0, 1, 4}),
		NewSeries("second", []float64{0, 1, 2}, []float64{4, 1, 0}),
	}
	out := ASCII("demo", s, 40, 10)
	if !strings.Contains(out, "demo") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatal("markers missing")
	}
	if !strings.Contains(out, "first") || !strings.Contains(out, "second") {
		t.Fatal("legend missing")
	}
}

func TestASCIIEmpty(t *testing.T) {
	out := ASCII("empty", nil, 40, 10)
	if !strings.Contains(out, "(no data)") {
		t.Fatal("empty chart should say so")
	}
}

func TestASCIIConstantSeries(t *testing.T) {
	// Constant x or y must not divide by zero.
	s := []Series{NewSeries("flat", []float64{1, 1, 1}, []float64{2, 2, 2})}
	out := ASCII("flat", s, 20, 5)
	if !strings.Contains(out, "*") {
		t.Fatal("flat series not plotted")
	}
}

func TestASCIIMinimumDimensions(t *testing.T) {
	s := []Series{NewSeries("p", []float64{0}, []float64{0})}
	out := ASCII("tiny", s, 1, 1) // clamped internally
	if len(out) == 0 {
		t.Fatal("no output")
	}
}

func TestTable(t *testing.T) {
	out := Table([]string{"name", "value"}, [][]string{
		{"alpha", "1"},
		{"a-much-longer-name", "22"},
	})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Fatalf("header: %q", lines[0])
	}
	if !strings.Contains(lines[3], "a-much-longer-name") {
		t.Fatal("row missing")
	}
	// Columns aligned: "value" column starts at the same offset in all rows.
	idx := strings.Index(lines[0], "value")
	if !strings.HasPrefix(lines[2][idx:], "1") || !strings.HasPrefix(lines[3][idx:], "22") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestTableShortRow(t *testing.T) {
	out := Table([]string{"a", "b"}, [][]string{{"only"}})
	if !strings.Contains(out, "only") {
		t.Fatal("short row dropped")
	}
}
