// Package plot renders experiment output in two forms: CSV (for external
// plotting of the reproduced figures) and quick ASCII charts (so cmd/figures
// shows the shape of each figure directly in the terminal, which is how the
// "does the reproduction match the paper" judgement is made).
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// NewSeries builds a series, panicking on length mismatch (a programming
// error in an experiment driver).
func NewSeries(name string, x, y []float64) Series {
	if len(x) != len(y) {
		panic(fmt.Sprintf("plot: series %q has %d x values but %d y values", name, len(x), len(y)))
	}
	return Series{Name: name, X: x, Y: y}
}

// WriteCSV emits the series as tidy CSV: series,x,y per row.
func WriteCSV(w io.Writer, series []Series) error {
	if _, err := fmt.Fprintln(w, "series,x,y"); err != nil {
		return err
	}
	for _, s := range series {
		for k := range s.X {
			if _, err := fmt.Fprintf(w, "%s,%g,%g\n", csvEscape(s.Name), s.X[k], s.Y[k]); err != nil {
				return err
			}
		}
	}
	return nil
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// markers distinguish series in ASCII charts.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '~'}

// ASCII renders the series as a width×height character chart with simple
// axes and a legend. Points are plotted with per-series markers; collisions
// keep the earlier series' marker.
func ASCII(title string, series []Series, width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range series {
		for k := range s.X {
			points++
			minX, maxX = math.Min(minX, s.X[k]), math.Max(maxX, s.X[k])
			minY, maxY = math.Min(minY, s.Y[k]), math.Max(maxY, s.Y[k])
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if points == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		mk := markers[si%len(markers)]
		for k := range s.X {
			c := int((s.X[k] - minX) / (maxX - minX) * float64(width-1))
			r := height - 1 - int((s.Y[k]-minY)/(maxY-minY)*float64(height-1))
			if grid[r][c] == ' ' {
				grid[r][c] = mk
			}
		}
	}
	for r, row := range grid {
		label := "        "
		if r == 0 {
			label = fmt.Sprintf("%8.3g", maxY)
		} else if r == height-1 {
			label = fmt.Sprintf("%8.3g", minY)
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, string(row))
	}
	fmt.Fprintf(&b, "%s %s\n", strings.Repeat(" ", 9), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s %-*.4g%*.4g\n", strings.Repeat(" ", 9), width/2, minX, width-width/2, maxX)
	for si, s := range series {
		fmt.Fprintf(&b, "  %c %s\n", markers[si%len(markers)], s.Name)
	}
	return b.String()
}

// Table renders rows as a fixed-width text table; headers define the
// columns.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for c, h := range headers {
		widths[c] = len(h)
	}
	for _, row := range rows {
		for c, cell := range row {
			if c < len(widths) && len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for c := range headers {
			cell := ""
			if c < len(cells) {
				cell = cells[c]
			}
			fmt.Fprintf(&b, "%-*s", widths[c]+2, cell)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for c := range sep {
		sep[c] = strings.Repeat("-", widths[c])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}
