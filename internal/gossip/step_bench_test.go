package gossip

import (
	"fmt"
	"testing"

	"hetlb/internal/core"
	"hetlb/internal/obs/span"
	"hetlb/internal/obs/timeline"
	"hetlb/internal/protocol"
	"hetlb/internal/rng"
	"hetlb/internal/workload"
)

// BenchmarkEngineStep measures the bare per-step cost of the sequential
// engine — pair selection, union pooling, kernel, apply, bookkeeping — for
// every protocol, at the paper's scale (m=96, n=768) and at 10× that
// (m=960, n=7680). The per-step cost must be O(|union|), independent of n
// for a fixed jobs-per-machine density, and allocation-free in steady state;
// BENCH_3.json records the pre-index O(n) baseline next to the current
// numbers.
func BenchmarkEngineStep(b *testing.B) {
	for _, sc := range []struct {
		name string
		mult int
	}{
		{"paper", 1}, // m=96, n=768: the paper's evaluation scale
		{"10x", 10},  // m=960, n=7680: where the O(n) scan dominated
	} {
		m := 96 * sc.mult
		n := 768 * sc.mult
		for _, pc := range stepBenchProtocols(m, n) {
			b.Run(fmt.Sprintf("%s/%s", pc.name, sc.name), func(b *testing.B) {
				a := core.RoundRobin(pc.model)
				e := New(pc.proto, a, Config{Seed: 7})
				// Settle into the steady state the figures run in: loads
				// near-balanced, scratch and index capacities at their
				// high-water marks.
				for s := 0; s < 4*m; s++ {
					e.Step()
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					e.Step()
				}
			})
		}
	}
}

// BenchmarkEngineStepObserved is BenchmarkEngineStep with the full
// observability wiring enabled — a span recorder receiving one KindStep span
// per step and a timeline recorder sampling every step. The delta against
// BenchmarkEngineStep is the per-step cost of tracing when it is switched on
// (BENCH_6.json records both columns); the disabled path is guarded
// separately by the >2% benchguard gate against BENCH_3.json.
func BenchmarkEngineStepObserved(b *testing.B) {
	for _, sc := range []struct {
		name string
		mult int
	}{
		{"paper", 1},
		{"10x", 10},
	} {
		m := 96 * sc.mult
		n := 768 * sc.mult
		for _, pc := range stepBenchProtocols(m, n) {
			b.Run(fmt.Sprintf("%s/%s", pc.name, sc.name), func(b *testing.B) {
				a := core.RoundRobin(pc.model)
				e := New(pc.proto, a, Config{
					Seed:     7,
					Spans:    span.NewRecorder(1 << 12),
					Timeline: timeline.NewRecorder(1 << 10),
				})
				for s := 0; s < 4*m; s++ {
					e.Step()
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					e.Step()
				}
			})
		}
	}
}

type stepBenchCase struct {
	name  string
	model core.CostModel
	proto protocol.Protocol
}

// stepBenchProtocols builds one instance per protocol at the given scale,
// from fixed seeds so re-runs and the recorded baseline are comparable.
func stepBenchProtocols(m, n int) []stepBenchCase {
	gen := rng.New(uint64(1000*m + n))
	id := workload.UniformIdentical(gen, m, n, 1, 1000)
	rel := workload.UniformRelated(gen, m, n, 8, 1, 1000)
	ty := workload.UniformTyped(gen, m, n, 8, 1, 1000)
	tc := workload.UniformTwoCluster(gen, 2*m/3, m/3, n, 1, 1000)
	kc := uniformKCluster(gen, 4, m/4, n, 1000)
	return []stepBenchCase{
		{"SameCost", id, protocol.SameCost{Model: id}},
		{"OJTB", rel, protocol.OJTB{Model: rel}},
		{"MJTB", ty, protocol.MJTB{Model: ty}},
		{"DLB2C", tc, protocol.DLB2C{Model: tc}},
		{"DLBKC", kc, protocol.DLBKC{Model: kc}},
	}
}

func uniformKCluster(gen *rng.RNG, k, perCluster, n int, hi core.Cost) *core.KCluster {
	sizes := make([]int, k)
	p := make([][]core.Cost, k)
	for c := 0; c < k; c++ {
		sizes[c] = perCluster
		p[c] = make([]core.Cost, n)
		for j := range p[c] {
			p[c][j] = gen.IntRange(1, hi)
		}
	}
	kc, err := core.NewKCluster(sizes, p)
	if err != nil {
		panic(err)
	}
	return kc
}
