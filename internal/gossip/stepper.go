package gossip

import "hetlb/internal/core"

// Stepper is the read surface a balancing engine exposes to observers: the
// sequential Engine here and the sharded engine in internal/shardgossip both
// implement it, so the probes in internal/trace (makespan trajectories,
// threshold watchers, timeline samplers) work unchanged on either. Every
// method is an O(1) (amortized) query off the engine's incremental caches —
// observers run inside the step path, so anything costlier would distort
// what is being measured.
type Stepper interface {
	// Steps returns the number of pairwise balancing operations executed so
	// far. The sharded engine counts sessions: its unit of progress is the
	// same pairwise exchange, only the schedule differs.
	Steps() int
	// Moves returns the cumulative number of job migrations.
	Moves() int
	// Makespan returns the current Cmax of the schedule.
	Makespan() core.Cost
	// TotalLoad returns the sum of all machine loads.
	TotalLoad() int64
	// Machines returns m, the number of machines balanced.
	Machines() int
	// Exchanges returns the live per-machine participation counts; callers
	// must copy to snapshot.
	Exchanges() []int
}

// Machines implements Stepper.
func (e *Engine) Machines() int { return e.a.Model().NumMachines() }

var _ Stepper = (*Engine)(nil)
