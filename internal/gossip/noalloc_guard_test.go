package gossip

import (
	"testing"

	"hetlb/internal/core"
)

// TestEngineStepNoalloc is the dynamic half of the //hetlb:noalloc contract
// on Engine.Step (the static half is hetlbvet's noalloc analyzer): once the
// engine has settled into steady state — loads near-balanced, scratch and
// per-machine job index at their high-water capacities — a step must not
// allocate, for every protocol, at the paper's evaluation scale.
func TestEngineStepNoalloc(t *testing.T) {
	const m, n = 96, 768
	for _, pc := range stepBenchProtocols(m, n) {
		t.Run(pc.name, func(t *testing.T) {
			a := core.RoundRobin(pc.model)
			e := New(pc.proto, a, Config{Seed: 7})
			// Warm far past the measurement window so a late high-water
			// bump cannot land inside it.
			for s := 0; s < 20*m; s++ {
				e.Step()
			}
			if allocs := testing.AllocsPerRun(200, func() { e.Step() }); allocs != 0 {
				t.Errorf("Engine.Step (%s): %.3f allocs/run, want 0", pc.name, allocs)
			}
		})
	}
}
