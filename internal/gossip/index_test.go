package gossip

import (
	"slices"
	"testing"

	"hetlb/internal/core"
	"hetlb/internal/pairwise"
	"hetlb/internal/protocol"
	"hetlb/internal/rng"
	"hetlb/internal/workload"
)

// TestUnionMatchesScan is the tentpole property test of the per-machine job
// index: after every engine step, the index-backed pooling (AppendUnion and
// per-machine Jobs) must agree with a brute-force O(n) scan of the
// job→machine map, for random instances, protocols and step counts.
func TestUnionMatchesScan(t *testing.T) {
	for seed := uint64(1); seed <= 15; seed++ {
		gen := rng.New(seed * 2654435761)
		m := 3 + gen.Intn(8)
		n := 2*m + gen.Intn(6*m)
		for _, c := range indexScanCases(gen, m, n) {
			a := core.NewAssignment(c.model)
			for j := 0; j < n; j++ {
				a.Assign(j, gen.Intn(m))
			}
			e := New(c.proto, a, Config{Seed: seed})
			steps := 1 + gen.Intn(120)
			for s := 0; s < steps; s++ {
				e.Step()
				if err := a.Validate(); err != nil {
					t.Fatalf("%s seed=%d step=%d: %v", c.name, seed, s, err)
				}
				for i := 0; i < m; i++ {
					want := scanMachine(a, i)
					got := a.Jobs(i)
					if !slices.Equal(want, got) {
						t.Fatalf("%s seed=%d step=%d: Jobs(%d) = %v, scan = %v",
							c.name, seed, s, i, got, want)
					}
				}
				// Random pairs: index-backed union vs the O(n) scan union.
				for trial := 0; trial < 4; trial++ {
					i := gen.Intn(m)
					j := gen.Pick(m, i)
					want := pairwise.Union(a, i, j)
					got := pairwise.AppendUnion(nil, a, i, j)
					if !slices.Equal(want, got) {
						t.Fatalf("%s seed=%d step=%d: AppendUnion(%d,%d) = %v, Union scan = %v",
							c.name, seed, s, i, j, got, want)
					}
				}
			}
		}
	}
}

type indexScanCase struct {
	name  string
	model core.CostModel
	proto protocol.Protocol
}

// indexScanCases covers every protocol family with a small random instance.
func indexScanCases(gen *rng.RNG, m, n int) []indexScanCase {
	id := workload.UniformIdentical(gen, m, n, 1, 25)
	rel := workload.UniformRelated(gen, m, n, 5, 1, 25)
	ty := workload.UniformTyped(gen, m, n, 1+gen.Intn(3), 1, 25)
	m1 := 1 + gen.Intn(m-1)
	tc := workload.UniformTwoCluster(gen, m1, m-m1, n, 1, 25)
	return []indexScanCase{
		{"SameCost", id, protocol.SameCost{Model: id}},
		{"OJTB", rel, protocol.OJTB{Model: rel}},
		{"MJTB", ty, protocol.MJTB{Model: ty}},
		{"DLB2C", tc, protocol.DLB2C{Model: tc}},
		{"SameCostMinMove", id, protocol.SameCostMinMove{Model: id}},
		{"DLB2CMinMove", tc, protocol.DLB2CMinMove{Model: tc}},
	}
}

// scanMachine lists the jobs on a machine by scanning every job — the
// trusted O(n) reference the index must reproduce.
func scanMachine(a *core.Assignment, machine int) []int {
	var jobs []int
	for j := 0; j < a.Model().NumJobs(); j++ {
		if a.MachineOf(j) == machine {
			jobs = append(jobs, j)
		}
	}
	return jobs
}
