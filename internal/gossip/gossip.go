// Package gossip is the sequential simulation engine for the decentralized
// protocols: at each step an initiator machine is selected, it picks a random
// peer, and the pair is balanced with the protocol's kernel. This serializes
// the asynchronous gossip of the paper's simulator into a reproducible
// sequence of pairwise exchanges, which is how the paper itself counts
// "iterations" (Figures 4 and 5).
//
// The engine is deliberately decoupled from what is measured: observers
// receive every step and can record makespan trajectories, threshold
// crossings or exchange counts (see internal/trace). A concurrent
// message-passing runtime with the same semantics lives in internal/distrun.
package gossip

import (
	"hetlb/internal/core"
	"hetlb/internal/obs"
	"hetlb/internal/obs/span"
	"hetlb/internal/obs/timeline"
	"hetlb/internal/pairwise"
	"hetlb/internal/protocol"
	"hetlb/internal/rng"
)

// Selection chooses the pair of machines balanced at each step.
type Selection interface {
	// Name identifies the policy in benchmark output.
	Name() string
	// Pair returns two distinct machines among m.
	Pair(gen *rng.RNG, m int) (int, int)
}

// UniformInitiator models the paper's loop most directly: the initiator is
// uniform over machines (every machine runs the same loop at the same rate)
// and the target is uniform over the other machines.
type UniformInitiator struct{}

// Name implements Selection.
func (UniformInitiator) Name() string { return "uniform-initiator" }

// Pair implements Selection.
func (UniformInitiator) Pair(gen *rng.RNG, m int) (int, int) {
	i := gen.Intn(m)
	return i, gen.Pick(m, i)
}

// Sweep is a deterministic ablation policy: initiators advance round-robin
// while targets stay uniform. It removes initiator variance and is used to
// measure how much of the convergence speed is due to selection randomness.
type Sweep struct{ next int }

// Name implements Selection.
func (*Sweep) Name() string { return "sweep" }

// Pair implements Selection.
func (s *Sweep) Pair(gen *rng.RNG, m int) (int, int) {
	i := s.next % m
	// Advance modulo m so the counter never overflows, no matter how long
	// the run (and so a Sweep reused across machine counts stays in range).
	s.next = (i + 1) % m
	return i, gen.Pick(m, i)
}

// Observer receives a notification after every balancing step.
type Observer interface {
	// OnStep is called after step number step (0-based) balanced machines
	// i and j; e exposes the engine's incremental read surface. The sharded
	// engine notifies once per epoch barrier with i = j = -1 (an epoch
	// balances many pairs at once, so no single pair describes it); step is
	// then the index of the epoch's last session.
	OnStep(e Stepper, step, i, j int)
}

// Metrics bundles the engine-internal obs instruments. All fields are
// registered by NewMetrics; a nil *Metrics disables instrumentation with a
// single branch per step.
type Metrics struct {
	// Steps counts balancing steps; Moves counts job migrations; Changed
	// counts steps whose pair loads changed.
	Steps, Moves, Changed *obs.Counter
	// Makespan tracks the current Cmax after every step.
	Makespan *obs.Gauge
	// StepMoves is the distribution of migrations per step.
	StepMoves *obs.Histogram
}

// NewMetrics registers the engine's instruments on a registry (idempotent:
// repeated calls on the same registry share the same counters).
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		Steps:     r.Counter("gossip_steps_total", "pairwise balancing steps executed"),
		Moves:     r.Counter("gossip_moves_total", "job migrations across all steps"),
		Changed:   r.Counter("gossip_changed_steps_total", "steps whose pair loads changed"),
		Makespan:  r.Gauge("gossip_makespan", "current Cmax of the schedule"),
		StepMoves: r.Histogram("gossip_step_moves", "jobs migrated per balancing step", obs.Pow2Bounds(8)),
	}
}

// Engine drives one simulation run.
type Engine struct {
	proto     protocol.Protocol
	a         *core.Assignment
	gen       *rng.RNG
	selection Selection
	observers []Observer
	metrics   *Metrics
	tracer    *obs.Tracer
	spans     *span.Recorder
	timeline  *timeline.Recorder
	// runSpan is the engine's root span, allocated eagerly in New (its close
	// record is appended by Run). All step spans parent to it.
	runSpan span.ID
	// self is the engine pre-boxed as a Stepper, so notifying observers on
	// the //hetlb:noalloc step path passes an existing interface value
	// instead of boxing *Engine at every call site.
	self Stepper
	// sumLoad is the total load across machines, maintained incrementally (a
	// step changes only the pair) so timeline imbalance needs no O(m) scan.
	sumLoad int64

	exchanges []int // per-machine count of balancing participations
	steps     int
	moves     int // total job migrations across all steps
	// scratch backs the allocation-free step path; buffers grow to their
	// high-water marks during the first steps and are reused thereafter.
	scratch pairwise.Scratch
	// noChange counts consecutive steps whose pair loads were unchanged;
	// it gates the expensive full stability check.
	noChange int
	// cachedMax caches the makespan between steps: a step only touches two
	// machines, so the maximum is maintained incrementally and the O(m)
	// rescan happens lazily, only after the top machine loses its top spot.
	cachedMax core.Cost
	maxValid  bool
}

// Config parameterizes New.
type Config struct {
	// Seed seeds the engine's generator.
	Seed uint64
	// Selection defaults to UniformInitiator.
	Selection Selection
	// Metrics, when non-nil, receives engine-internal counters every step
	// (build one with NewMetrics).
	Metrics *Metrics
	// Tracer, when non-nil, receives a pair-selected event per step (Time =
	// step index, Value = jobs migrated) and a makespan sample whenever the
	// schedule changed.
	Tracer *obs.Tracer
	// Spans, when non-nil, receives one KindStep span per balancing step
	// (A/B the pair, Start = End = step index, Value = jobs moved), all
	// parented to a KindRun span that Run closes. Times are logical (step
	// indices), never wall clock.
	Spans *span.Recorder
	// Timeline, when non-nil, receives one convergence point per step:
	// Time = step index, Cmax, Imbalance = Cmax − mean load, cumulative
	// Moves; Messages is 0 (the sequential engine sends none).
	Timeline *timeline.Recorder
}

// New builds an engine around a protocol and an initial assignment. The
// assignment is mutated in place by Run/Step.
func New(p protocol.Protocol, a *core.Assignment, cfg Config) *Engine {
	sel := cfg.Selection
	if sel == nil {
		sel = UniformInitiator{}
	}
	e := &Engine{
		proto:     p,
		a:         a,
		gen:       rng.New(cfg.Seed),
		selection: sel,
		metrics:   cfg.Metrics,
		tracer:    cfg.Tracer,
		spans:     cfg.Spans,
		timeline:  cfg.Timeline,
		exchanges: make([]int, a.Model().NumMachines()),
	}
	for i := 0; i < a.Model().NumMachines(); i++ {
		e.sumLoad += int64(a.Load(i))
	}
	if e.spans != nil {
		e.runSpan = e.spans.NextID()
	}
	e.self = e
	return e
}

// Observe registers an observer.
func (e *Engine) Observe(o Observer) { e.observers = append(e.observers, o) }

// Assignment returns the live assignment.
func (e *Engine) Assignment() *core.Assignment { return e.a }

// Exchanges returns the per-machine balancing participation counts (live
// slice; callers must copy to snapshot).
func (e *Engine) Exchanges() []int { return e.exchanges }

// Steps returns the number of steps executed so far.
func (e *Engine) Steps() int { return e.steps }

// Moves returns the total number of job migrations so far — the "amount of
// tasks exchanged" the paper's conclusion asks to minimize. A job moved in
// k different steps counts k times (it would cross the network each time).
func (e *Engine) Moves() int { return e.moves }

// Step performs one pairwise balancing and reports whether the pair's loads
// changed (a cheap proxy for "the schedule changed" used to pace stability
// checks; a full check is Stable()).
//
//hetlb:noalloc
func (e *Engine) Step() bool {
	m := e.a.Model().NumMachines()
	i, j := e.selection.Pair(e.gen, m)
	l1, l2 := e.a.Load(i), e.a.Load(j)
	moved := e.proto.BalanceScratch(&e.scratch, e.a, i, j)
	e.moves += moved
	e.exchanges[i]++
	e.exchanges[j]++
	n1, n2 := e.a.Load(i), e.a.Load(j)
	changed := n1 != l1 || n2 != l2
	e.sumLoad += int64(n1) + int64(n2) - int64(l1) - int64(l2)
	if changed {
		e.noChange = 0
	} else {
		e.noChange++
	}
	// Maintain the makespan cache: only machines i and j changed load. If
	// either rose to (or above) the cached maximum it is the new maximum;
	// otherwise, if a pair machine may have held the maximum and dropped,
	// the maximum could now be anywhere — invalidate and rescan lazily.
	if e.maxValid && changed {
		hi := n1
		if n2 > hi {
			hi = n2
		}
		if hi >= e.cachedMax {
			e.cachedMax = hi
		} else if l1 >= e.cachedMax || l2 >= e.cachedMax {
			e.maxValid = false
		}
	}
	step := e.steps
	e.steps++
	if e.metrics != nil {
		e.metrics.Steps.Inc()
		if moved > 0 {
			e.metrics.Moves.Add(int64(moved))
		}
		if changed {
			e.metrics.Changed.Inc()
		}
		e.metrics.StepMoves.Observe(int64(moved))
		e.metrics.Makespan.Set(int64(e.Makespan()))
	}
	if e.tracer != nil {
		e.tracer.Emit(obs.Event{Time: int64(step), Type: obs.EvPairSelected, A: int32(i), B: int32(j), Value: int64(moved)})
		if changed {
			e.tracer.Emit(obs.Event{Time: int64(step), Type: obs.EvMakespanSample, A: -1, B: -1, Value: int64(e.Makespan())})
		}
	}
	if e.spans != nil {
		var fl span.Flags
		if changed {
			fl = span.FlagCommitted
		}
		e.spans.Append(span.Span{
			Parent: e.runSpan,
			Kind:   span.KindStep,
			Flags:  fl,
			A:      int32(i),
			B:      int32(j),
			Start:  int64(step),
			End:    int64(step),
			Value:  int64(moved),
		})
	}
	if e.timeline != nil {
		cmax := int64(e.Makespan())
		e.timeline.Record(timeline.Point{
			Time:      int64(step),
			Cmax:      cmax,
			Imbalance: cmax - e.sumLoad/int64(m),
			Moves:     int64(e.moves),
		})
	}
	for _, o := range e.observers {
		o.OnStep(e.self, step, i, j)
	}
	return changed
}

// Makespan returns the current Cmax of the schedule, served from the
// engine's incremental cache (amortized O(1) per step versus the O(m) scan
// of Assignment.Makespan). The cache assumes the assignment is mutated only
// through Step; an observer that moves jobs itself must use
// e.Assignment().Makespan() instead.
func (e *Engine) Makespan() core.Cost {
	if !e.maxValid {
		e.cachedMax = e.a.Makespan()
		e.maxValid = true
	}
	return e.cachedMax
}

// TotalLoad returns the sum of all machine loads, maintained incrementally
// by Step. It is the numerator of the mean load that the timeline's
// imbalance column subtracts from Cmax.
func (e *Engine) TotalLoad() int64 { return e.sumLoad }

// Result summarizes a Run.
type Result struct {
	// Steps is the number of pairwise balancing operations executed.
	Steps int
	// Converged is true if the run stopped at a verified stable schedule.
	Converged bool
	// FinalMakespan is Cmax of the assignment when the run stopped.
	FinalMakespan core.Cost
}

// Run executes up to maxSteps balancing steps. If detectStability is true,
// the run stops early once the schedule is provably stable: after every
// window of steps with no observed load change, a full O(m²) stability check
// is performed. DLB2C runs on adversarial instances may never converge
// (Proposition 8); maxSteps bounds those.
func (e *Engine) Run(maxSteps int, detectStability bool) Result {
	m := e.a.Model().NumMachines()
	startStep := e.steps
	// A full sweep's worth of quiet steps before paying for a full check.
	window := 2 * m
	if window < 8 {
		window = 8
	}
	for s := 0; s < maxSteps; s++ {
		e.Step()
		if detectStability && e.noChange >= window {
			e.noChange = 0
			if protocol.Stable(e.proto, e.a) {
				e.closeRunSpan(startStep, true)
				return Result{Steps: e.steps, Converged: true, FinalMakespan: e.Makespan()}
			}
		}
	}
	converged := false
	if detectStability {
		converged = protocol.Stable(e.proto, e.a)
	}
	e.closeRunSpan(startStep, converged)
	return Result{Steps: e.steps, Converged: converged, FinalMakespan: e.Makespan()}
}

// closeRunSpan appends the run span's close record (Start/End in step
// indices, Value = final Cmax, FlagCommitted when the run converged). Each
// Run call on the same engine appends another record for the same ID;
// consumers see the latest extent.
func (e *Engine) closeRunSpan(startStep int, converged bool) {
	if e.spans == nil {
		return
	}
	var fl span.Flags
	if converged {
		fl = span.FlagCommitted
	}
	e.spans.Append(span.Span{
		ID:     e.runSpan,
		Parent: e.spans.Root(),
		Kind:   span.KindRun,
		Flags:  fl,
		A:      -1,
		B:      -1,
		Start:  int64(startStep),
		End:    int64(e.steps),
		Value:  int64(e.Makespan()),
	})
}
