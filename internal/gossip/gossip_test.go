package gossip

import (
	"testing"

	"hetlb/internal/core"
	"hetlb/internal/obs"
	"hetlb/internal/protocol"
	"hetlb/internal/rng"
	"hetlb/internal/workload"
)

func TestRunConvergesOneType(t *testing.T) {
	// OJTB on one job type must converge and the engine must detect it.
	ty, _ := core.NewTyped([][]core.Cost{{2}, {3}, {5}}, make([]int, 10))
	a := core.AllOnMachine(ty, 2)
	e := New(protocol.OJTB{Model: ty}, a, Config{Seed: 1})
	res := e.Run(20000, true)
	if !res.Converged {
		t.Fatal("engine did not detect convergence")
	}
	if res.FinalMakespan != a.Makespan() {
		t.Fatal("result makespan inconsistent with assignment")
	}
	if !protocol.Stable(protocol.OJTB{Model: ty}, a) {
		t.Fatal("reported converged but not stable")
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	gen := rng.New(42)
	tc := workload.UniformTwoCluster(gen, 4, 2, 24, 1, 50)
	a1 := core.RoundRobin(tc)
	a2 := core.RoundRobin(tc)
	r1 := New(protocol.DLB2C{Model: tc}, a1, Config{Seed: 7}).Run(300, false)
	r2 := New(protocol.DLB2C{Model: tc}, a2, Config{Seed: 7}).Run(300, false)
	if r1.FinalMakespan != r2.FinalMakespan || !a1.Equal(a2) {
		t.Fatal("same seed produced different runs")
	}
	a3 := core.RoundRobin(tc)
	r3 := New(protocol.DLB2C{Model: tc}, a3, Config{Seed: 8}).Run(300, false)
	// Different seeds will usually differ; only check it doesn't crash and
	// remains valid.
	if err := a3.Validate(); err != nil {
		t.Fatal(err)
	}
	_ = r3
}

func TestRunMaxStepsBound(t *testing.T) {
	// The non-converging cycle instance must stop exactly at maxSteps.
	tc, start := workload.CycleInstance()
	e := New(protocol.DLB2C{Model: tc}, start.Clone(), Config{Seed: 3})
	res := e.Run(500, true)
	if res.Converged {
		t.Fatal("cycle instance reported converged")
	}
	if res.Steps != 500 {
		t.Fatalf("steps = %d, want 500", res.Steps)
	}
}

func TestExchangeCounting(t *testing.T) {
	gen := rng.New(1)
	id := workload.UniformIdentical(gen, 6, 30, 1, 10)
	a := core.RoundRobin(id)
	e := New(protocol.SameCost{Model: id}, a, Config{Seed: 2})
	const steps = 200
	e.Run(steps, false)
	total := 0
	for _, c := range e.Exchanges() {
		total += c
	}
	if total != 2*steps {
		t.Fatalf("total exchange participations = %d, want %d", total, 2*steps)
	}
	if e.Steps() != steps {
		t.Fatalf("Steps() = %d", e.Steps())
	}
}

func TestUniformInitiatorDistinct(t *testing.T) {
	gen := rng.New(5)
	sel := UniformInitiator{}
	for k := 0; k < 1000; k++ {
		i, j := sel.Pair(gen, 7)
		if i == j || i < 0 || j < 0 || i >= 7 || j >= 7 {
			t.Fatalf("bad pair (%d, %d)", i, j)
		}
	}
}

func TestSweepCoversAllInitiators(t *testing.T) {
	gen := rng.New(6)
	sel := &Sweep{}
	seen := make(map[int]bool)
	for k := 0; k < 10; k++ {
		i, j := sel.Pair(gen, 5)
		if i == j {
			t.Fatal("sweep produced identical pair")
		}
		seen[i] = true
	}
	if len(seen) != 5 {
		t.Fatalf("sweep initiators covered %d/5 machines", len(seen))
	}
}

func TestObserverSeesEveryStep(t *testing.T) {
	gen := rng.New(7)
	id := workload.UniformIdentical(gen, 4, 12, 1, 10)
	a := core.RoundRobin(id)
	e := New(protocol.SameCost{Model: id}, a, Config{Seed: 9})
	var steps []int
	e.Observe(observerFunc(func(_ Stepper, step, i, j int) {
		steps = append(steps, step)
	}))
	e.Run(50, false)
	if len(steps) != 50 {
		t.Fatalf("observer saw %d steps, want 50", len(steps))
	}
	for k, s := range steps {
		if s != k {
			t.Fatalf("step numbering broken at %d: %d", k, s)
		}
	}
}

type observerFunc func(e Stepper, step, i, j int)

func (f observerFunc) OnStep(e Stepper, step, i, j int) { f(e, step, i, j) }

func TestDefaultSelection(t *testing.T) {
	id, _ := core.NewIdentical(3, []core.Cost{1, 2, 3})
	a := core.RoundRobin(id)
	e := New(protocol.SameCost{Model: id}, a, Config{Seed: 1})
	if e.selection == nil {
		t.Fatal("nil selection not defaulted")
	}
	if e.selection.Name() != (UniformInitiator{}).Name() {
		t.Fatal("default selection is not uniform-initiator")
	}
}

func TestStabilityDetectionNotPremature(t *testing.T) {
	// With detectStability, a converged result must actually be stable
	// even if load-unchanged steps happened earlier by chance.
	gen := rng.New(11)
	for trial := 0; trial < 10; trial++ {
		tc := workload.UniformTwoCluster(gen, 2, 2, 12, 1, 10)
		a := core.RoundRobin(tc)
		e := New(protocol.DLB2C{Model: tc}, a, Config{Seed: gen.Uint64()})
		res := e.Run(5000, true)
		if res.Converged && !protocol.Stable(protocol.DLB2C{Model: tc}, a) {
			t.Fatal("converged result is not stable")
		}
	}
}

func BenchmarkGossipDLB2CPaperScale(b *testing.B) {
	gen := rng.New(12)
	tc := workload.UniformTwoCluster(gen, 64, 32, 768, 1, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := core.RoundRobin(tc)
		e := New(protocol.DLB2C{Model: tc}, a, Config{Seed: uint64(i)})
		e.Run(96*5, false) // five exchanges per machine, the Figure 5 scale
	}
}

func TestMovesCounted(t *testing.T) {
	// From an all-on-one-machine start every early step moves jobs; the
	// counter must be positive, monotone and conserved across observers.
	gen := rng.New(20)
	id := workload.UniformIdentical(gen, 4, 32, 1, 50)
	a := core.AllOnMachine(id, 0)
	e := New(protocol.SameCost{Model: id}, a, Config{Seed: 21})
	if e.Moves() != 0 {
		t.Fatal("moves before any step")
	}
	prev := 0
	for s := 0; s < 50; s++ {
		e.Step()
		if e.Moves() < prev {
			t.Fatal("move counter decreased")
		}
		prev = e.Moves()
	}
	if e.Moves() == 0 {
		t.Fatal("no moves counted from a pathological start")
	}
}

func TestMinMoveProtocolFewerMoves(t *testing.T) {
	gen := rng.New(22)
	id := workload.UniformIdentical(gen, 6, 60, 1, 100)
	run := func(p protocol.Protocol) int {
		a := core.AllOnMachine(id, 0)
		e := New(p, a, Config{Seed: 23})
		e.Run(300, false)
		return e.Moves()
	}
	rebuild := run(protocol.SameCost{Model: id})
	minmove := run(protocol.SameCostMinMove{Model: id})
	if minmove >= rebuild {
		t.Fatalf("min-move moved %d jobs, rebuild %d", minmove, rebuild)
	}
}

func TestMakespanCacheMatchesRecompute(t *testing.T) {
	// The cached makespan must equal a full rescan after every single step,
	// across protocols that move jobs in both directions.
	gen := rng.New(31)
	tc := workload.UniformTwoCluster(gen, 6, 4, 80, 1, 100)
	a := core.RoundRobin(tc)
	e := New(protocol.DLB2C{Model: tc}, a, Config{Seed: 32})
	if e.Makespan() != a.Makespan() {
		t.Fatal("initial cached makespan wrong")
	}
	e.Observe(observerFunc(func(o Stepper, step, i, j int) {
		e := o.(*Engine)
		if got, want := e.Makespan(), e.Assignment().Makespan(); got != want {
			t.Fatalf("step %d: cached makespan %d != recomputed %d", step, got, want)
		}
	}))
	e.Run(2000, false)
}

func TestEngineMetrics(t *testing.T) {
	gen := rng.New(41)
	id := workload.UniformIdentical(gen, 5, 40, 1, 30)
	a := core.AllOnMachine(id, 0)
	reg := obs.NewRegistry()
	met := NewMetrics(reg)
	tr := obs.NewTracer(4096)
	e := New(protocol.SameCost{Model: id}, a, Config{Seed: 42, Metrics: met, Tracer: tr})
	const steps = 300
	e.Run(steps, false)

	if got := met.Steps.Value(); got != steps {
		t.Fatalf("gossip_steps_total = %d, want %d", got, steps)
	}
	if got := met.Moves.Value(); got != int64(e.Moves()) {
		t.Fatalf("gossip_moves_total = %d, want %d", got, e.Moves())
	}
	if got := met.Makespan.Value(); got != int64(a.Makespan()) {
		t.Fatalf("gossip_makespan = %d, want %d", got, a.Makespan())
	}
	if got := met.StepMoves.Count(); got != steps {
		t.Fatalf("gossip_step_moves count = %d, want %d", got, steps)
	}
	if got := met.StepMoves.Sum(); got != int64(e.Moves()) {
		t.Fatalf("gossip_step_moves sum = %d, want %d", got, e.Moves())
	}
	// One pair-selected event per step, each mirroring the step index.
	var pairs int
	for _, ev := range tr.Events() {
		if ev.Type == obs.EvPairSelected {
			pairs++
		}
	}
	if pairs != steps {
		t.Fatalf("tracer recorded %d pair-selected events, want %d", pairs, steps)
	}
}

func TestMetricsRegistryReuseAcrossRuns(t *testing.T) {
	// Re-wiring the same registry into a second engine must accumulate, not
	// panic on duplicate registration.
	id, _ := core.NewIdentical(3, []core.Cost{5, 5, 5, 5, 5, 5})
	reg := obs.NewRegistry()
	for run := 0; run < 2; run++ {
		a := core.RoundRobin(id)
		e := New(protocol.SameCost{Model: id}, a, Config{Seed: uint64(run), Metrics: NewMetrics(reg)})
		e.Run(10, false)
	}
	if got := NewMetrics(reg).Steps.Value(); got != 20 {
		t.Fatalf("accumulated steps = %d, want 20", got)
	}
}

// BenchmarkEngineMakespanCached measures Engine.Makespan (incremental cache)
// queried every step; BenchmarkEngineMakespanRecompute is the old path, a
// full O(m) rescan per query. The gap is the satellite-task win inherited by
// trace.MakespanSeries and trace.ThresholdWatcher.
func BenchmarkEngineMakespanCached(b *testing.B) {
	benchMakespanQuery(b, func(e *Engine) core.Cost { return e.Makespan() })
}

// BenchmarkEngineMakespanRecompute is the baseline full-rescan variant.
func BenchmarkEngineMakespanRecompute(b *testing.B) {
	benchMakespanQuery(b, func(e *Engine) core.Cost { return e.Assignment().Makespan() })
}

func benchMakespanQuery(b *testing.B, query func(*Engine) core.Cost) {
	// Many machines, few jobs per machine: the regime where the O(m) rescan
	// dominates a step and the incremental cache pays off.
	gen := rng.New(50)
	tc := workload.UniformTwoCluster(gen, 2048, 1024, 1024, 1, 1000)
	a := core.RoundRobin(tc)
	e := New(protocol.DLB2C{Model: tc}, a, Config{Seed: 51})
	var sink core.Cost
	e.Observe(observerFunc(func(o Stepper, _, _, _ int) { sink = query(o.(*Engine)) }))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
	_ = sink
}
