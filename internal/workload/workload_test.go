package workload

import (
	"testing"

	"hetlb/internal/core"
	"hetlb/internal/rng"
)

func TestUniformIdenticalRanges(t *testing.T) {
	gen := rng.New(1)
	id := UniformIdentical(gen, 96, 768, 1, 1000)
	if id.NumMachines() != 96 || id.NumJobs() != 768 {
		t.Fatalf("dims %dx%d", id.NumMachines(), id.NumJobs())
	}
	for j := 0; j < 768; j++ {
		if s := id.Size(j); s < 1 || s > 1000 {
			t.Fatalf("job %d size %d out of [1,1000]", j, s)
		}
	}
}

func TestUniformTwoClusterRanges(t *testing.T) {
	gen := rng.New(2)
	tc := UniformTwoCluster(gen, 64, 32, 768, 1, 1000)
	if tc.NumMachines() != 96 || tc.NumJobs() != 768 {
		t.Fatalf("dims %dx%d", tc.NumMachines(), tc.NumJobs())
	}
	for j := 0; j < 768; j++ {
		for c := 0; c < 2; c++ {
			if v := tc.ClusterCost(c, j); v < 1 || v > 1000 {
				t.Fatalf("cost[%d][%d] = %d", c, j, v)
			}
		}
	}
}

func TestUniformTwoClusterIndependence(t *testing.T) {
	// The two cluster cost vectors should not be identical (they are
	// drawn independently).
	gen := rng.New(3)
	tc := UniformTwoCluster(gen, 2, 2, 200, 1, 1000)
	same := 0
	for j := 0; j < 200; j++ {
		if tc.ClusterCost(0, j) == tc.ClusterCost(1, j) {
			same++
		}
	}
	if same > 10 {
		t.Fatalf("%d/200 identical cluster costs; generator correlated?", same)
	}
}

func TestCorrelatedTwoClusterRatioBounded(t *testing.T) {
	gen := rng.New(4)
	tc := CorrelatedTwoCluster(gen, 2, 2, 300, 10, 1000, 3)
	for j := 0; j < 300; j++ {
		a := float64(tc.ClusterCost(0, j))
		b := float64(tc.ClusterCost(1, j))
		r := b / a
		if r > 3.5 || r < 1/3.5 { // slack for integer truncation
			t.Fatalf("job %d ratio %v outside [1/3, 3]", j, r)
		}
		if b < 1 {
			t.Fatalf("job %d cost below 1", j)
		}
	}
}

func TestCorrelatedPanicsOnBadRatio(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("maxRatio < 1 accepted")
		}
	}()
	CorrelatedTwoCluster(rng.New(1), 1, 1, 1, 1, 10, 0.5)
}

func TestUniformTypedShape(t *testing.T) {
	gen := rng.New(5)
	ty := UniformTyped(gen, 5, 100, 4, 1, 50)
	if ty.NumTypes() != 4 || ty.NumJobs() != 100 || ty.NumMachines() != 5 {
		t.Fatal("bad dims")
	}
	counted := 0
	for k := 0; k < 4; k++ {
		counted += len(ty.JobsOfType(k))
	}
	if counted != 100 {
		t.Fatalf("types partition %d/100 jobs", counted)
	}
}

func TestUniformDenseAndRelated(t *testing.T) {
	gen := rng.New(6)
	d := UniformDense(gen, 4, 9, 5, 15)
	if err := core.CheckModel(d); err != nil {
		t.Fatal(err)
	}
	rel := UniformRelated(gen, 4, 9, 10, 1, 100)
	if err := core.CheckModel(rel); err != nil {
		t.Fatal(err)
	}
}

func TestWorkStealingTrapShape(t *testing.T) {
	d, a := WorkStealingTrap(50)
	if d.NumMachines() != 3 || d.NumJobs() != 5 {
		t.Fatal("Table I dims wrong")
	}
	// Initial distribution: job0 on B, job1 on C, jobs 2..4 on A.
	if a.MachineOf(0) != 1 || a.MachineOf(1) != 2 {
		t.Fatal("Table I circled distribution wrong")
	}
	for j := 2; j < 5; j++ {
		if a.MachineOf(j) != 0 {
			t.Fatal("Table I circled distribution wrong")
		}
	}
	// Each job must cost n on its initial machine (that is the trap).
	for j := 0; j < 5; j++ {
		if d.Cost(a.MachineOf(j), j) != 50 {
			t.Fatalf("job %d costs %d on its trap machine, want 50", j, d.Cost(a.MachineOf(j), j))
		}
	}
	opt := WorkStealingTrapOptimal(d)
	if opt.Makespan() != 2 {
		t.Fatalf("claimed optimal has makespan %d, want 2", opt.Makespan())
	}
}

func TestPairwiseTrapShape(t *testing.T) {
	d, a := PairwiseTrap(9)
	if d.NumMachines() != 3 || d.NumJobs() != 3 {
		t.Fatal("Table II dims wrong")
	}
	if a.Makespan() != 9 {
		t.Fatalf("trap makespan %d, want 9", a.Makespan())
	}
	opt := PairwiseTrapOptimal(d)
	if opt.Makespan() != 1 {
		t.Fatalf("optimal makespan %d, want 1", opt.Makespan())
	}
	// Structure: job j costs 1 on machine j, n on (j+1)%3, n² on (j+2)%3.
	for j := 0; j < 3; j++ {
		if d.Cost(j, j) != 1 || d.Cost((j+1)%3, j) != 9 || d.Cost((j+2)%3, j) != 81 {
			t.Fatalf("Table II costs wrong for job %d", j)
		}
	}
}

func TestCycleInstanceShape(t *testing.T) {
	tc, a := CycleInstance()
	if tc.NumMachines() != 3 || tc.NumJobs() != 5 {
		t.Fatal("Figure 1 instance dims wrong")
	}
	if !a.Complete() {
		t.Fatal("initial assignment incomplete")
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := UniformTwoCluster(rng.New(99), 4, 4, 50, 1, 100)
	b := UniformTwoCluster(rng.New(99), 4, 4, 50, 1, 100)
	for j := 0; j < 50; j++ {
		if a.ClusterCost(0, j) != b.ClusterCost(0, j) || a.ClusterCost(1, j) != b.ClusterCost(1, j) {
			t.Fatal("generator not deterministic")
		}
	}
}
