package workload

import (
	"runtime"
	"testing"

	"hetlb/internal/rng"
)

// allocBytes measures the total bytes allocated by f (cumulative, so heap
// churn and GC do not hide anything).
func allocBytes(f func()) uint64 {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	f()
	runtime.ReadMemStats(&after)
	return after.TotalAlloc - before.TotalAlloc
}

// TestGeneratorFootprintCompact pins the scale contract of the structured
// generators: building a typed or two-cluster instance allocates O(n + m·k)
// bytes, never an O(m·n) dense intermediate. At m = 100k, n = 1M a dense
// view would be ~800 GB; the bounds here are four orders of magnitude below
// that, so any dense materialization sneaking into the constructors fails
// loudly.
func TestGeneratorFootprintCompact(t *testing.T) {
	gen := rng.New(1)
	const m, n, k = 100_000, 1_000_000, 4

	got := allocBytes(func() { _ = UniformTyped(gen, m, n, k, 1, 100) })
	// typeOf (n ints) plus the m×k cost table, with copies inside NewTyped:
	// tens of MB. Dense would be ~800 GB.
	if limit := uint64(96 << 20); got > limit {
		t.Fatalf("UniformTyped(m=%d, n=%d, k=%d) allocated %d MB, want <= %d MB (dense intermediate?)",
			m, n, k, got>>20, limit>>20)
	}

	got = allocBytes(func() { _ = UniformTwoCluster(gen, m/2, m/2, n, 1, 100) })
	// Two per-cluster cost vectors of n entries, with copies: ~32 MB.
	if limit := uint64(64 << 20); got > limit {
		t.Fatalf("UniformTwoCluster(m=%d, n=%d) allocated %d MB, want <= %d MB (dense intermediate?)",
			m, n, got>>20, limit>>20)
	}
}
