// Package workload generates problem instances: the random workloads used by
// the paper's evaluation (job lengths uniform on [1, 1000]) and the three
// hand-crafted adversarial instances of Table I, Table II and Figure 1.
package workload

import (
	"fmt"
	"math"

	"hetlb/internal/core"
	"hetlb/internal/rng"
)

// UniformIdentical returns an identical-machines instance with n jobs whose
// sizes are uniform on [lo, hi]. This is the paper's homogeneous workload
// (one cluster of 96 machines, 768 jobs, sizes U[1,1000]).
func UniformIdentical(r *rng.RNG, m, n int, lo, hi core.Cost) *core.Identical {
	sizes := make([]core.Cost, n)
	for j := range sizes {
		sizes[j] = r.IntRange(lo, hi)
	}
	id, err := core.NewIdentical(m, sizes)
	if err != nil {
		panic(err) // m > 0 is the caller's responsibility; misuse is a bug
	}
	return id
}

// UniformTwoCluster returns a two-cluster instance with m1+m2 machines and n
// jobs whose per-cluster costs are drawn independently and uniformly on
// [lo, hi]. This is the paper's heterogeneous workload (clusters of 64 and
// 32 machines, 768 jobs, costs U[1,1000]): "the time to execute a job on
// each cluster is a probability distribution", independent per cluster.
func UniformTwoCluster(r *rng.RNG, m1, m2, n int, lo, hi core.Cost) *core.TwoCluster {
	p0 := make([]core.Cost, n)
	p1 := make([]core.Cost, n)
	for j := 0; j < n; j++ {
		p0[j] = r.IntRange(lo, hi)
		p1[j] = r.IntRange(lo, hi)
	}
	tc, err := core.NewTwoCluster(m1, m2, p0, p1)
	if err != nil {
		panic(err)
	}
	return tc
}

// CorrelatedTwoCluster returns a two-cluster instance where cluster-1 costs
// are the cluster-0 cost scaled by a per-job factor drawn uniformly from
// [1/maxRatio, maxRatio]. It models accelerators that are consistently
// faster or slower per job family, and is used in ablation benches.
func CorrelatedTwoCluster(r *rng.RNG, m1, m2, n int, lo, hi core.Cost, maxRatio float64) *core.TwoCluster {
	if maxRatio < 1 {
		panic(fmt.Sprintf("workload: maxRatio must be >= 1, got %v", maxRatio))
	}
	p0 := make([]core.Cost, n)
	p1 := make([]core.Cost, n)
	for j := 0; j < n; j++ {
		p0[j] = r.IntRange(lo, hi)
		// log-uniform ratio in [1/maxRatio, maxRatio]
		u := r.Float64()*2 - 1 // [-1, 1)
		ratio := math.Pow(maxRatio, u)
		c := core.Cost(float64(p0[j]) * ratio)
		if c < 1 {
			c = 1
		}
		p1[j] = c
	}
	tc, err := core.NewTwoCluster(m1, m2, p0, p1)
	if err != nil {
		panic(err)
	}
	return tc
}

// UniformTyped returns a typed instance with k job types. The cost of each
// (machine, type) pair is uniform on [lo, hi] and each job's type is uniform
// on [0, k).
func UniformTyped(r *rng.RNG, m, n, k int, lo, hi core.Cost) *core.Typed {
	p := make([][]core.Cost, m)
	for i := range p {
		p[i] = make([]core.Cost, k)
		for t := range p[i] {
			p[i][t] = r.IntRange(lo, hi)
		}
	}
	typeOf := make([]int, n)
	for j := range typeOf {
		typeOf[j] = r.Intn(k)
	}
	ty, err := core.NewTyped(p, typeOf)
	if err != nil {
		panic(err)
	}
	return ty
}

// UniformDense returns a fully unrelated instance with all m×n costs drawn
// independently and uniformly on [lo, hi].
func UniformDense(r *rng.RNG, m, n int, lo, hi core.Cost) *core.Dense {
	p := make([][]core.Cost, m)
	for i := range p {
		p[i] = make([]core.Cost, n)
		for j := range p[i] {
			p[i][j] = r.IntRange(lo, hi)
		}
	}
	return core.MustDense(p)
}

// UniformRelated returns a related instance with integer speeds uniform on
// [1, maxSpeed] and job sizes uniform on [lo, hi].
func UniformRelated(r *rng.RNG, m, n int, maxSpeed int64, lo, hi core.Cost) *core.Related {
	speeds := make([]int64, m)
	for i := range speeds {
		speeds[i] = r.IntRange(1, maxSpeed)
	}
	sizes := make([]core.Cost, n)
	for j := range sizes {
		sizes[j] = r.IntRange(lo, hi)
	}
	rel, err := core.NewRelated(speeds, sizes)
	if err != nil {
		panic(err)
	}
	return rel
}
