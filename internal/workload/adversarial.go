package workload

import "hetlb/internal/core"

// WorkStealingTrap builds the Table I instance of the paper (Theorem 1):
// 5 jobs on 3 machines where work stealing, started from the circled initial
// distribution, cannot perform its first steal before time n and finishes at
// n+1, while the optimal makespan is 2.
//
// Costs (machines A, B, C = 0, 1, 2):
//
//	job 0: 1  n  n   (initially on B)
//	job 1: 1  1  n   (initially on C)
//	job 2: n  1  1   (initially on A)
//	job 3: n  1  1   (initially on A)
//	job 4: n  1  1   (initially on A)
//
// Machine A grinds through jobs 2..4 at cost n each while B and C are pinned
// down by one job of cost n; nothing is stealable before time n because each
// victim's only job is already running. The optimal schedule puts jobs 0 and
// 1 on A (cost 1 each) and spreads jobs 2..4 over B and C for a makespan
// of 2.
func WorkStealingTrap(n core.Cost) (*core.Dense, *core.Assignment) {
	d := core.MustDense([][]core.Cost{
		{1, 1, n, n, n}, // machine A
		{n, 1, 1, 1, 1}, // machine B
		{n, n, 1, 1, 1}, // machine C
	})
	a, err := core.FromMachineOf(d, []int{1, 2, 0, 0, 0})
	if err != nil {
		panic(err)
	}
	return d, a
}

// WorkStealingTrapOptimal returns an optimal assignment for the Table I
// instance: jobs 0 and 1 on machine A, jobs 2 and 3 on B, job 4 on C, with
// makespan 2.
func WorkStealingTrapOptimal(d *core.Dense) *core.Assignment {
	a, err := core.FromMachineOf(d, []int{0, 0, 1, 1, 2})
	if err != nil {
		panic(err)
	}
	return a
}

// PairwiseTrap builds the Table II instance of the paper (Proposition 2):
// 3 jobs on 3 fully heterogeneous machines where the circled distribution is
// optimally balanced for every pair of machines, yet its makespan is n while
// the optimum is 1.
//
// Job j costs 1 on machine j, n on machine (j+1) mod 3 and n² on machine
// (j+2) mod 3; the trap assignment places job j on machine (j+1) mod 3.
func PairwiseTrap(n core.Cost) (*core.Dense, *core.Assignment) {
	n2 := n * n
	p := make([][]core.Cost, 3)
	for i := range p {
		p[i] = make([]core.Cost, 3)
	}
	for j := 0; j < 3; j++ {
		p[j][j] = 1
		p[(j+1)%3][j] = n
		p[(j+2)%3][j] = n2
	}
	d := core.MustDense(p)
	a, err := core.FromMachineOf(d, []int{1, 2, 0})
	if err != nil {
		panic(err)
	}
	return d, a
}

// PairwiseTrapOptimal returns the optimal assignment of the Table II
// instance (job j on machine j, makespan 1).
func PairwiseTrapOptimal(d *core.Dense) *core.Assignment {
	a, err := core.FromMachineOf(d, []int{0, 1, 2})
	if err != nil {
		panic(err)
	}
	return a
}

// CycleInstance builds a two-cluster instance on which DLB2C does not
// converge (Proposition 8 / Figure 1 of the paper): started from the
// returned assignment, there is a sequence of pairwise balancing operations
// that revisits the same schedule without ever reaching a stable state.
//
// The paper's own 5-job/3-machine instance is only given graphically
// (Figure 1(d)); the instance below — with the same shape, 5 jobs on 3
// machines split 2+1 across the clusters — was found with cmd/findcycle,
// which exhaustively enumerates the schedules reachable under every pairwise
// balancing sequence. From the returned assignment, 19 schedules are
// reachable, none of them stable, so DLB2C provably never converges here
// (verified by TestCycleInstanceNeverConverges).
func CycleInstance() (*core.TwoCluster, *core.Assignment) {
	// Cluster 0 has machines {0, 1}; cluster 1 has machine {2}.
	// Job costs per cluster:
	//	          j0  j1  j2  j3  j4
	//	cluster0:  1   4   2   1   5
	//	cluster1:  3   2   1   1   2
	tc, err := core.NewTwoCluster(2, 1,
		[]core.Cost{1, 4, 2, 1, 5},
		[]core.Cost{3, 2, 1, 1, 2},
	)
	if err != nil {
		panic(err)
	}
	a, err := core.FromMachineOf(tc, []int{1, 0, 1, 0, 1})
	if err != nil {
		panic(err)
	}
	return tc, a
}
