package faults

import (
	"reflect"
	"strings"
	"testing"
)

func TestZero(t *testing.T) {
	if !(Config{}).Zero() {
		t.Fatal("zero value not Zero()")
	}
	for _, c := range []Config{
		{DropProb: 0.1},
		{DupProb: 0.1},
		{JitterMax: 1},
		{Crashes: []Crash{{Machine: 0, At: 1, RecoverAt: 2}}},
	} {
		if c.Zero() {
			t.Fatalf("%+v reported Zero()", c)
		}
	}
}

func TestValidate(t *testing.T) {
	ok := Config{
		DropProb: 0.3, DupProb: 0.1, JitterMax: 5,
		Crashes: []Crash{
			{Machine: 0, At: 10, RecoverAt: 20},
			{Machine: 0, At: 21, RecoverAt: 30},
			{Machine: 1, At: 15, LoseJobs: true}, // never recovers
		},
	}
	if err := ok.Validate(2); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{DropProb: 1},
		{DropProb: -0.1},
		{DupProb: 1.5},
		{JitterMax: -1},
		{Crashes: []Crash{{Machine: 2, At: 1, RecoverAt: 2}}},
		{Crashes: []Crash{{Machine: 0, At: 0, RecoverAt: 2}}},
		{Crashes: []Crash{{Machine: 0, At: 5, RecoverAt: 5}}},
		// overlapping downtimes on the same machine
		{Crashes: []Crash{{Machine: 0, At: 10, RecoverAt: 20}, {Machine: 0, At: 15, RecoverAt: 25}}},
		// one interval nested inside the other
		{Crashes: []Crash{{Machine: 0, At: 10, RecoverAt: 30}, {Machine: 0, At: 15, RecoverAt: 20}}},
		// the second crash at the exact recovery instant (ambiguous ordering)
		{Crashes: []Crash{{Machine: 0, At: 10, RecoverAt: 20}, {Machine: 0, At: 20, RecoverAt: 25}}},
		// crash after a crash that never recovers
		{Crashes: []Crash{{Machine: 0, At: 10}, {Machine: 0, At: 15, RecoverAt: 25}}},
		// two identical crashes
		{Crashes: []Crash{{Machine: 0, At: 10, RecoverAt: 20}, {Machine: 0, At: 10, RecoverAt: 20}}},
	}
	for i, c := range bad {
		if err := c.Validate(2); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
}

// TestValidateOverlapErrors pins the shape of the overlap diagnostics: the
// error must name the machine and quote both down intervals (or the
// never-recovering crash), so a rejected chaos plan is diagnosable from the
// message alone instead of from a downstream simulation failure.
func TestValidateOverlapErrors(t *testing.T) {
	cases := []struct {
		cfg  Config
		want []string
	}{
		{
			Config{Crashes: []Crash{{Machine: 1, At: 10, RecoverAt: 20}, {Machine: 1, At: 15, RecoverAt: 25}}},
			[]string{"machine 1", "[15, 25)", "[10, 20)", "already down"},
		},
		{
			Config{Crashes: []Crash{{Machine: 0, At: 10}, {Machine: 0, At: 15, RecoverAt: 25}}},
			[]string{"machine 0", "[10, ∞)", "never recovers"},
		},
		{
			Config{Crashes: []Crash{{Machine: 1, At: 10, RecoverAt: 20}, {Machine: 1, At: 20, RecoverAt: 30}}},
			[]string{"machine 1", "coincides", "[10, 20)", "strictly after"},
		},
	}
	for i, cse := range cases {
		err := cse.cfg.Validate(4)
		if err == nil {
			t.Fatalf("case %d: overlapping schedule accepted", i)
		}
		for _, frag := range cse.want {
			if !strings.Contains(err.Error(), frag) {
				t.Errorf("case %d: error %q does not mention %q", i, err, frag)
			}
		}
	}
}

// Validate is order-insensitive: the same overlapping pair must be rejected
// however the schedule lists it.
func TestValidateOrderInsensitive(t *testing.T) {
	a := Crash{Machine: 0, At: 10, RecoverAt: 20}
	b := Crash{Machine: 0, At: 15, RecoverAt: 25}
	for i, cfg := range []Config{{Crashes: []Crash{a, b}}, {Crashes: []Crash{b, a}}} {
		if err := cfg.Validate(2); err == nil {
			t.Errorf("ordering %d accepted an overlapping schedule", i)
		}
	}
}

func TestMessageFree(t *testing.T) {
	if !(Config{Crashes: []Crash{{Machine: 0, At: 1, RecoverAt: 2}}}).MessageFree() {
		t.Fatal("crash-only config not MessageFree")
	}
	for _, c := range []Config{{DropProb: 0.1}, {DupProb: 0.1}, {JitterMax: 1}} {
		if c.MessageFree() {
			t.Fatalf("%+v reported MessageFree", c)
		}
	}
}

// The fate of the k-th message on a link must not depend on the order in
// which the simulation touches other links.
func TestMessageOrderIndependent(t *testing.T) {
	cfg := Config{DropProb: 0.3, DupProb: 0.2, JitterMax: 7}
	a := NewPlan(42, cfg)
	b := NewPlan(42, cfg)

	// Plan a: link (0,1) fully first, then (1,0), then (2,0).
	var seqA [][]Outcome
	for _, link := range [][2]int{{0, 1}, {1, 0}, {2, 0}} {
		var outs []Outcome
		for k := 0; k < 50; k++ {
			outs = append(outs, a.Message(link[0], link[1]))
		}
		seqA = append(seqA, outs)
	}
	// Plan b: the same links interleaved round-robin.
	seqB := make([][]Outcome, 3)
	for k := 0; k < 50; k++ {
		for li, link := range [][2]int{{0, 1}, {1, 0}, {2, 0}} {
			seqB[li] = append(seqB[li], b.Message(link[0], link[1]))
		}
	}
	if !reflect.DeepEqual(seqA, seqB) {
		t.Fatal("per-link outcomes depend on interleaving")
	}
}

func TestMessageRates(t *testing.T) {
	cfg := Config{DropProb: 0.25, DupProb: 0.25, JitterMax: 9}
	p := NewPlan(7, cfg)
	const n = 20000
	var dropped, dup int
	for k := 0; k < n; k++ {
		out := p.Message(0, 1)
		switch out.Copies {
		case 0:
			dropped++
		case 2:
			dup++
		}
		for c := 0; c < out.Copies && c < 2; c++ {
			if out.Jitter[c] < 0 || out.Jitter[c] > cfg.JitterMax {
				t.Fatalf("jitter %d outside [0, %d]", out.Jitter[c], cfg.JitterMax)
			}
		}
	}
	// Drops exclude the duplicated-drop overlap: P(drop & !dup) = 0.1875.
	if f := float64(dropped) / n; f < 0.15 || f > 0.23 {
		t.Errorf("drop fraction %v far from 0.1875", f)
	}
	if f := float64(dup) / n; f < 0.15 || f > 0.23 {
		t.Errorf("dup fraction %v far from 0.1875", f)
	}
}

func TestZeroConfigPlanIsTransparent(t *testing.T) {
	p := NewPlan(1, Config{})
	for k := 0; k < 100; k++ {
		out := p.Message(3, 4)
		if out.Copies != 1 || out.Jitter[0] != 0 {
			t.Fatalf("zero config produced %+v", out)
		}
	}
}

func TestRandomCrashes(t *testing.T) {
	a := RandomCrashes(99, 8, 1000, 20, 50, 0.5)
	b := RandomCrashes(99, 8, 1000, 20, 50, 0.5)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("RandomCrashes not deterministic")
	}
	if len(a) == 0 {
		t.Fatal("no crashes generated")
	}
	cfg := Config{Crashes: a}
	if err := cfg.Validate(8); err != nil {
		t.Fatalf("generated schedule invalid: %v", err)
	}
	for _, cr := range a {
		if cr.At < 1 || cr.At > 1000 {
			t.Errorf("crash time %d outside [1, 1000]", cr.At)
		}
		if cr.RecoverAt <= cr.At {
			t.Errorf("recovery %d not after crash %d", cr.RecoverAt, cr.At)
		}
	}
	if c := RandomCrashes(99, 8, 1000, 20, 50, 0.25); reflect.DeepEqual(a, c) {
		t.Error("loseProb change did not alter schedule")
	}
}

func TestDownAt(t *testing.T) {
	c := Config{Crashes: []Crash{
		{Machine: 1, At: 10, RecoverAt: 20},
		{Machine: 1, At: 30, RecoverAt: 0}, // never recovers
		{Machine: 2, At: 5, RecoverAt: 6},
	}}
	cases := []struct {
		machine int
		t       int64
		want    bool
	}{
		{1, 9, false}, {1, 10, true}, {1, 19, true}, {1, 20, false},
		{1, 29, false}, {1, 30, true}, {1, 1 << 60, true},
		{2, 5, true}, {2, 6, false},
		{0, 10, false}, // never scheduled
	}
	for _, cse := range cases {
		if got := c.DownAt(cse.machine, cse.t); got != cse.want {
			t.Errorf("DownAt(%d, %d) = %v, want %v", cse.machine, cse.t, got, cse.want)
		}
	}
}

func TestTotalDowntime(t *testing.T) {
	c := Config{Crashes: []Crash{
		{Machine: 1, At: 10, RecoverAt: 20},   // 10 units
		{Machine: 2, At: 90, RecoverAt: 0},    // permanent: counts to the horizon
		{Machine: 3, At: 200, RecoverAt: 300}, // beyond the horizon: ignored
	}}
	if got := c.TotalDowntime(100); got != 10+10 {
		t.Errorf("TotalDowntime(100) = %d, want 20", got)
	}
	if got := c.TotalDowntime(15); got != 5 {
		t.Errorf("TotalDowntime(15) = %d, want 5", got)
	}
	if got := (Config{}).TotalDowntime(100); got != 0 {
		t.Errorf("empty schedule TotalDowntime = %d, want 0", got)
	}
}
