// Package faults is the deterministic fault-injection plan for the
// message-passing runtime (internal/netsim): per-link message drop,
// duplication and latency jitter, plus a machine crash/recovery schedule
// with optional job loss.
//
// Determinism is the whole design. Every per-message decision is a pure
// function of (plan seed, sender, receiver, per-link message index) through
// rng.Substream, never of a shared stream consumed in event order — so the
// same seed yields the same fault schedule no matter how events interleave,
// and a simulation replayed under the same plan is bit-identical. The crash
// schedule is an explicit list (or is generated up front by RandomCrashes,
// itself a pure function of its seed), so churn is equally replayable.
package faults

import (
	"fmt"
	"sort"

	"hetlb/internal/rng"
)

// Config describes the faults to inject. The zero value injects nothing.
type Config struct {
	// DropProb is the probability that a message transmission is lost
	// (each retransmission is an independent trial). Must be in [0, 1).
	DropProb float64
	// DupProb is the probability that a transmission is delivered twice.
	// Must be in [0, 1].
	DupProb float64
	// JitterMax adds a uniform extra delay in [0, JitterMax] virtual time
	// units to every delivered copy (bounded jitter; may reorder messages).
	JitterMax int64
	// Crashes is the machine crash/recovery schedule.
	Crashes []Crash
}

// Crash is one scheduled machine failure.
type Crash struct {
	// Machine is the machine that fails.
	Machine int
	// At is the virtual time of the crash (≥ 1).
	At int64
	// RecoverAt is the virtual time the machine comes back (must be > At),
	// or 0 for a machine that never recovers.
	RecoverAt int64
	// LoseJobs controls the fate of the jobs the machine holds when it
	// crashes: true records them as permanently lost; false freezes them
	// with the machine and re-hosts them there on recovery.
	LoseJobs bool
}

// Zero reports whether the configuration injects no faults at all.
func (c Config) Zero() bool {
	return c.MessageFree() && len(c.Crashes) == 0
}

// MessageFree reports whether the configuration injects no message-level
// faults (drop, duplication, jitter) — crashes, if any, are the only
// entries. The epoch engines, which exchange no messages, accept exactly
// these configurations.
func (c Config) MessageFree() bool {
	return c.DropProb == 0 && c.DupProb == 0 && c.JitterMax == 0
}

// Validate checks the configuration against a machine count. Crash
// intervals on the same machine must be disjoint and separated: a machine is
// down over [At, RecoverAt) — or [At, ∞) when it never recovers — and its
// next crash must come strictly after the previous recovery. Back-to-back
// schedules (the next At equal to the previous RecoverAt) are rejected too:
// the runtimes process a recovery and a crash at the same instant in event
// order, and which fires first would silently decide whether the machine is
// up, so the ambiguity is refused up front instead of becoming a wedged or
// double-crashed machine deep inside a simulation.
func (c Config) Validate(machines int) error {
	if c.DropProb < 0 || c.DropProb >= 1 {
		return fmt.Errorf("faults: DropProb %v outside [0, 1)", c.DropProb)
	}
	if c.DupProb < 0 || c.DupProb > 1 {
		return fmt.Errorf("faults: DupProb %v outside [0, 1]", c.DupProb)
	}
	if c.JitterMax < 0 {
		return fmt.Errorf("faults: negative JitterMax %d", c.JitterMax)
	}
	prev := make(map[int]Crash) // machine -> its latest validated crash
	for _, cr := range sortedCrashes(c.Crashes) {
		if cr.Machine < 0 || cr.Machine >= machines {
			return fmt.Errorf("faults: crash machine %d outside [0, %d)", cr.Machine, machines)
		}
		if cr.At < 1 {
			return fmt.Errorf("faults: crash at time %d (must be >= 1)", cr.At)
		}
		if cr.RecoverAt != 0 && cr.RecoverAt <= cr.At {
			return fmt.Errorf("faults: machine %d recovery at %d not after crash at %d",
				cr.Machine, cr.RecoverAt, cr.At)
		}
		if p, ok := prev[cr.Machine]; ok {
			switch {
			case p.RecoverAt == 0:
				return fmt.Errorf("faults: machine %d crash at %d overlaps its down interval [%d, ∞): the crash at %d never recovers, so no later crash of that machine can be scheduled",
					cr.Machine, cr.At, p.At, p.At)
			case cr.At < p.RecoverAt:
				return fmt.Errorf("faults: machine %d crash interval %s overlaps %s: a machine cannot crash while it is already down",
					cr.Machine, interval(cr), interval(p))
			case cr.At == p.RecoverAt:
				return fmt.Errorf("faults: machine %d crash at %d coincides with its recovery from %s: same-instant recover+crash ordering is ambiguous, schedule the next crash strictly after the recovery",
					cr.Machine, cr.At, interval(p))
			}
		}
		prev[cr.Machine] = cr
	}
	return nil
}

// interval renders a crash's down interval for error messages.
func interval(cr Crash) string {
	if cr.RecoverAt == 0 {
		return fmt.Sprintf("[%d, ∞)", cr.At)
	}
	return fmt.Sprintf("[%d, %d)", cr.At, cr.RecoverAt)
}

// DownAt reports whether the schedule has the machine down at time t: some
// crash happened at or before t and its recovery (if any) is after t. It is
// a pure function of the schedule — the planned counterpart of the
// runtime's dynamic crash state, usable to cross-check the two after a run
// or to annotate a report with scheduled churn.
func (c Config) DownAt(machine int, t int64) bool {
	for _, cr := range c.Crashes {
		if cr.Machine != machine {
			continue
		}
		if t >= cr.At && (cr.RecoverAt == 0 || t < cr.RecoverAt) {
			return true
		}
	}
	return false
}

// TotalDowntime returns the scheduled machine-downtime (summed over
// machines) overlapping [0, horizon]. Crashes that never recover count to
// the horizon. Assumes a validated schedule (per-machine intervals do not
// overlap).
func (c Config) TotalDowntime(horizon int64) int64 {
	var total int64
	for _, cr := range c.Crashes {
		if cr.At > horizon {
			continue
		}
		end := cr.RecoverAt
		if end == 0 || end > horizon {
			end = horizon
		}
		if end > cr.At {
			total += end - cr.At
		}
	}
	return total
}

// sortedCrashes returns the schedule ordered by (At, Machine, RecoverAt) —
// the deterministic order the runtime schedules them in.
func sortedCrashes(cs []Crash) []Crash {
	out := append([]Crash(nil), cs...)
	sort.Slice(out, func(a, b int) bool {
		if out[a].At != out[b].At {
			return out[a].At < out[b].At
		}
		if out[a].Machine != out[b].Machine {
			return out[a].Machine < out[b].Machine
		}
		return out[a].RecoverAt < out[b].RecoverAt
	})
	return out
}

// Outcome is the fate of one message transmission.
type Outcome struct {
	// Copies is how many copies will be delivered: 0 (dropped), 1, or 2
	// (duplicated).
	Copies int
	// Jitter is the extra delay of each copy, valid for indices < Copies.
	Jitter [2]int64
}

// Plan is the runtime fault oracle for one simulated run. It is not safe
// for concurrent use (the discrete-event simulation is single-threaded).
type Plan struct {
	seed uint64
	cfg  Config
	seq  map[uint64]uint64 // link (from, to) -> transmissions so far
}

// NewPlan builds a plan from a seed and a validated configuration.
func NewPlan(seed uint64, cfg Config) *Plan {
	return &Plan{seed: seed, cfg: cfg, seq: make(map[uint64]uint64)}
}

// Config returns the plan's configuration.
func (p *Plan) Config() Config { return p.cfg }

// Crashes returns the crash schedule in deterministic execution order.
func (p *Plan) Crashes() []Crash { return sortedCrashes(p.cfg.Crashes) }

// Message decides the fate of the next transmission on the link from → to.
// The decision for the k-th transmission on a link depends only on
// (seed, from, to, k): links are independent substreams, so the schedule is
// identical no matter in which order the simulation touches them.
func (p *Plan) Message(from, to int) Outcome {
	key := uint64(from)<<32 | uint64(uint32(to))
	k := p.seq[key]
	p.seq[key] = k + 1
	g := rng.Substream(p.seed, uint64(from), uint64(to), k)
	out := Outcome{Copies: 1}
	if g.Float64() < p.cfg.DropProb {
		out.Copies = 0
	}
	if g.Float64() < p.cfg.DupProb {
		out.Copies++ // a duplicate of a dropped message still arrives once
	}
	if p.cfg.JitterMax > 0 {
		out.Jitter[0] = g.Int64n(p.cfg.JitterMax + 1)
		out.Jitter[1] = g.Int64n(p.cfg.JitterMax + 1)
	}
	return out
}

// RandomCrashes generates a valid random crash schedule: count crashes at
// uniform times in [1, horizon], each on a uniform machine, down for
// 1 + U[0, 2·meanDown) time units, losing its jobs with probability
// loseProb. Candidates that would overlap an earlier crash of the same
// machine are discarded, so the result may hold fewer than count entries.
// The schedule is a pure function of the arguments.
func RandomCrashes(seed uint64, machines int, horizon int64, count int, meanDown int64, loseProb float64) []Crash {
	if machines < 1 || horizon < 1 || count < 1 {
		return nil
	}
	if meanDown < 1 {
		meanDown = 1
	}
	var out []Crash
	lastUp := make(map[int]int64)
	for i := 0; i < count; i++ {
		g := rng.Substream(seed, 0xC4A5, uint64(i))
		cr := Crash{
			Machine:  g.Intn(machines),
			At:       1 + g.Int64n(horizon),
			LoseJobs: g.Float64() < loseProb,
		}
		cr.RecoverAt = cr.At + 1 + g.Int64n(2*meanDown)
		out = append(out, cr)
	}
	out = sortedCrashes(out)
	kept := out[:0]
	for _, cr := range out {
		if up, ok := lastUp[cr.Machine]; ok && cr.At <= up {
			continue
		}
		lastUp[cr.Machine] = cr.RecoverAt
		kept = append(kept, cr)
	}
	return kept
}
