package central

import (
	"container/heap"
	"fmt"

	"hetlb/internal/core"
)

// OnlineLS is the submission-time scheduler the paper's related work
// describes: each arriving job goes to the least loaded machine, maintained
// in a priority queue so each placement costs O(log m). On identical
// machines every intermediate solution is a 2-approximation (Graham), but
// the structure is inherently centralized — which is the paper's argument
// for decentralized alternatives.
type OnlineLS struct {
	model      core.CostModel
	assignment *core.Assignment
	h          *loadHeap
}

// NewOnlineLS builds an empty online scheduler over the model.
func NewOnlineLS(m core.CostModel) *OnlineLS {
	machines := make([]int, m.NumMachines())
	for i := range machines {
		machines[i] = i
	}
	a := core.NewAssignment(m)
	h := &loadHeap{a: a, machines: machines}
	heap.Init(h)
	return &OnlineLS{model: m, assignment: a, h: h}
}

// Add places job j on the currently least loaded machine and returns that
// machine. O(log m).
func (o *OnlineLS) Add(job int) int {
	if o.assignment.MachineOf(job) != -1 {
		panic(fmt.Sprintf("central: job %d submitted twice", job))
	}
	i := o.h.machines[0]
	o.assignment.Assign(job, i)
	heap.Fix(o.h, 0)
	return i
}

// Assignment exposes the live assignment (do not mutate machines placed so
// far except through Add).
func (o *OnlineLS) Assignment() *core.Assignment { return o.assignment }

// Makespan returns the current Cmax.
func (o *OnlineLS) Makespan() core.Cost { return o.assignment.Makespan() }
