package central

import (
	"testing"

	"hetlb/internal/core"
	"hetlb/internal/exact"
	"hetlb/internal/rng"
	"hetlb/internal/workload"
)

func TestListSchedulingIdenticalTwoApprox(t *testing.T) {
	// Graham's bound: on identical machines List Scheduling is a
	// (2 - 1/m)-approximation. Check against the exact solver.
	gen := rng.New(1)
	for iter := 0; iter < 80; iter++ {
		m := 2 + gen.Intn(3)
		n := 1 + gen.Intn(8)
		id := workload.UniformIdentical(gen, m, n, 1, 40)
		ls := ListScheduling(id, nil)
		opt := exact.Solve(id).Opt
		bound := 2*opt - (opt+core.Cost(m)-1)/core.Cost(m) // 2*OPT - OPT/m, integer-safe upper estimate
		if ls.Makespan() > bound {
			t.Fatalf("LS makespan %d exceeds Graham bound (opt=%d, m=%d)", ls.Makespan(), opt, m)
		}
		if err := ls.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLPTFourThirdsApprox(t *testing.T) {
	gen := rng.New(2)
	for iter := 0; iter < 80; iter++ {
		m := 2 + gen.Intn(3)
		n := 1 + gen.Intn(9)
		id := workload.UniformIdentical(gen, m, n, 1, 40)
		lpt := LPT(id)
		opt := exact.Solve(id).Opt
		// LPT ≤ (4/3 - 1/(3m))·OPT ≤ 4/3·OPT; use exact rational compare:
		// 3·LPT ≤ 4·OPT.
		if 3*lpt.Makespan() > 4*opt {
			t.Fatalf("LPT makespan %d > 4/3·OPT (opt=%d, m=%d, n=%d)", lpt.Makespan(), opt, m, n)
		}
	}
}

func TestLPTClassicWorstCase(t *testing.T) {
	// Classic LPT tight-ish example: sizes {3,3,2,2,2} on 2 machines.
	// OPT = 6 (3+3 vs 2+2+2) but LPT pairs the 3s apart and ends at 7,
	// within the 4/3 bound. This pins the known behaviour so a regression
	// in the ordering is caught.
	id, _ := core.NewIdentical(2, []core.Cost{3, 3, 2, 2, 2})
	lpt := LPT(id)
	if lpt.Makespan() != 7 {
		t.Fatalf("LPT = %d, want 7", lpt.Makespan())
	}
	if opt := exact.Solve(id).Opt; opt != 6 {
		t.Fatalf("OPT = %d, want 6", opt)
	}
}

func TestListSchedulingCompletesAllJobs(t *testing.T) {
	gen := rng.New(3)
	d := workload.UniformDense(gen, 4, 20, 1, 100)
	a := ListScheduling(d, nil)
	if !a.Complete() {
		t.Fatal("List Scheduling left jobs unassigned")
	}
}

func TestListSchedulingEmpty(t *testing.T) {
	id, _ := core.NewIdentical(2, nil)
	a := ListScheduling(id, nil)
	if a.Makespan() != 0 {
		t.Fatal("empty instance should have makespan 0")
	}
}

func TestRatioLessExactAndTotal(t *testing.T) {
	tc, _ := core.NewTwoCluster(1, 1,
		[]core.Cost{2, 4, 1, 3},
		[]core.Cost{4, 2, 1, 3})
	// Ratios: j0=0.5, j1=2, j2=1, j3=1. Sorted: j0, then (j2, j3 tie by
	// index), then j1.
	jobs := []int{0, 1, 2, 3}
	SortByRatio(tc, jobs)
	want := []int{0, 2, 3, 1}
	for i := range want {
		if jobs[i] != want[i] {
			t.Fatalf("SortByRatio = %v, want %v", jobs, want)
		}
	}
	// Antisymmetry and totality on distinct jobs.
	for a := 0; a < 4; a++ {
		for b := 0; b < 4; b++ {
			if a == b {
				continue
			}
			if RatioLess(tc, a, b) == RatioLess(tc, b, a) {
				t.Fatalf("RatioLess not a strict total order on (%d, %d)", a, b)
			}
		}
	}
}

func TestCLB2CCompleteAndValid(t *testing.T) {
	gen := rng.New(4)
	tc := workload.UniformTwoCluster(gen, 3, 2, 24, 1, 100)
	a := RunCLB2C(tc)
	if !a.Complete() {
		t.Fatal("CLB2C left jobs unassigned")
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCLB2CRespectsClusters(t *testing.T) {
	// Jobs must only land on machines in the provided subsets.
	gen := rng.New(5)
	tc := workload.UniformTwoCluster(gen, 4, 4, 16, 1, 50)
	a := core.NewAssignment(tc)
	jobs := []int{0, 1, 2, 3, 4, 5}
	CLB2C(a, tc, []int{1}, []int{6}, jobs)
	for _, j := range jobs {
		i := a.MachineOf(j)
		if i != 1 && i != 6 {
			t.Fatalf("job %d on machine %d, expected 1 or 6", j, i)
		}
	}
	if a.NumAssigned() != len(jobs) {
		t.Fatal("not all requested jobs were placed")
	}
}

func TestCLB2CTwoApproximation(t *testing.T) {
	// Theorem 6: under the hypothesis p_{i,j} ≤ OPT, CLB2C ≤ 2·OPT.
	// Verify against the exact solver on random small instances, skipping
	// instances that violate the hypothesis.
	gen := rng.New(6)
	checked := 0
	for iter := 0; iter < 400 && checked < 120; iter++ {
		m1 := 1 + gen.Intn(3)
		m2 := 1 + gen.Intn(3)
		n := 4 + gen.Intn(7)
		tc := workload.UniformTwoCluster(gen, m1, m2, n, 1, 20)
		res := exact.Solve(tc)
		if !res.Proven {
			continue
		}
		if !core.HypothesisHolds(tc, res.Opt) {
			continue
		}
		checked++
		a := RunCLB2C(tc)
		if a.Makespan() > 2*res.Opt {
			t.Fatalf("CLB2C makespan %d > 2·OPT (opt=%d, m1=%d m2=%d n=%d)",
				a.Makespan(), res.Opt, m1, m2, n)
		}
	}
	if checked < 50 {
		t.Fatalf("only %d instances satisfied the hypothesis; test too weak", checked)
	}
}

func TestCLB2CPrefersGoodCluster(t *testing.T) {
	// Two machines (one per cluster), two jobs strongly biased to opposite
	// clusters: CLB2C must put each job on its good cluster.
	tc, _ := core.NewTwoCluster(1, 1,
		[]core.Cost{1, 100},
		[]core.Cost{100, 1})
	a := RunCLB2C(tc)
	if a.MachineOf(0) != 0 || a.MachineOf(1) != 1 {
		t.Fatalf("CLB2C misplaced biased jobs: %s", a)
	}
	if a.Makespan() != 1 {
		t.Fatalf("makespan = %d, want 1", a.Makespan())
	}
}

func TestCLB2CDeterministic(t *testing.T) {
	gen := rng.New(7)
	tc := workload.UniformTwoCluster(gen, 3, 3, 30, 1, 100)
	a := RunCLB2C(tc)
	b := RunCLB2C(tc)
	if !a.Equal(b) {
		t.Fatal("CLB2C is not deterministic")
	}
}

func TestCLB2CPairwiseSubproblem(t *testing.T) {
	// Balancing two machines (one per cluster) with CLB2C must never leave
	// one machine empty while the other holds jobs that run faster on the
	// empty machine's cluster and the imbalance exceeds their cost.
	gen := rng.New(8)
	for iter := 0; iter < 50; iter++ {
		tc := workload.UniformTwoCluster(gen, 1, 1, 10, 1, 30)
		a := core.NewAssignment(tc)
		CLB2C(a, tc, []int{0}, []int{1}, allJobs(tc))
		if !a.Complete() {
			t.Fatal("pairwise CLB2C incomplete")
		}
		// The resulting two-machine schedule must be at most 2× the
		// two-machine optimum (Theorem 6 with |M1|=|M2|=1), when the
		// hypothesis holds.
		res := exact.Solve(tc)
		if core.HypothesisHolds(tc, res.Opt) && a.Makespan() > 2*res.Opt {
			t.Fatalf("pairwise CLB2C %d > 2·OPT %d", a.Makespan(), res.Opt)
		}
	}
}

func BenchmarkListScheduling(b *testing.B) {
	gen := rng.New(9)
	id := workload.UniformIdentical(gen, 96, 768, 1, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ListScheduling(id, nil)
	}
}

func BenchmarkCLB2CPaperScale(b *testing.B) {
	gen := rng.New(10)
	tc := workload.UniformTwoCluster(gen, 64, 32, 768, 1, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunCLB2C(tc)
	}
}
