package central

import (
	"testing"

	"hetlb/internal/core"
	"hetlb/internal/exact"
	"hetlb/internal/rng"
	"hetlb/internal/workload"
)

func TestOnlineLSMatchesBatchOnIdentical(t *testing.T) {
	// On identical machines, adding jobs in index order must reproduce
	// List Scheduling exactly (same least-loaded/lowest-index rule).
	gen := rng.New(1)
	for iter := 0; iter < 30; iter++ {
		id := workload.UniformIdentical(gen, 2+gen.Intn(5), 1+gen.Intn(20), 1, 50)
		o := NewOnlineLS(id)
		for j := 0; j < id.NumJobs(); j++ {
			o.Add(j)
		}
		batch := ListScheduling(id, nil)
		if o.Makespan() != batch.Makespan() {
			t.Fatalf("online %d != batch %d", o.Makespan(), batch.Makespan())
		}
	}
}

func TestOnlineLSIntermediateTwoApprox(t *testing.T) {
	// The related-work property: on identical machines EVERY intermediate
	// solution is a 2-approximation of the optimum over the jobs placed
	// so far.
	gen := rng.New(2)
	for iter := 0; iter < 15; iter++ {
		m := 2 + gen.Intn(3)
		n := 3 + gen.Intn(5)
		id := workload.UniformIdentical(gen, m, n, 1, 30)
		o := NewOnlineLS(id)
		for j := 0; j < n; j++ {
			o.Add(j)
			// Optimal over the prefix [0, j].
			sizes := make([]core.Cost, j+1)
			for k := range sizes {
				sizes[k] = id.Size(k)
			}
			prefix, err := core.NewIdentical(m, sizes)
			if err != nil {
				t.Fatal(err)
			}
			opt := exact.Solve(prefix).Opt
			if o.Makespan() > 2*opt {
				t.Fatalf("intermediate makespan %d > 2·OPT %d after %d jobs",
					o.Makespan(), opt, j+1)
			}
		}
	}
}

func TestOnlineLSDoubleAddPanics(t *testing.T) {
	id, _ := core.NewIdentical(2, []core.Cost{1, 2})
	o := NewOnlineLS(id)
	o.Add(0)
	defer func() {
		if recover() == nil {
			t.Fatal("double Add did not panic")
		}
	}()
	o.Add(0)
}

func TestOnlineLSReturnsPlacement(t *testing.T) {
	id, _ := core.NewIdentical(3, []core.Cost{5, 5, 5, 5})
	o := NewOnlineLS(id)
	seen := make(map[int]bool)
	for j := 0; j < 3; j++ {
		seen[o.Add(j)] = true
	}
	if len(seen) != 3 {
		t.Fatal("first three unit jobs should spread over all machines")
	}
	if o.Assignment().NumAssigned() != 3 {
		t.Fatal("assignment out of sync")
	}
}

func BenchmarkOnlineLSAdd(b *testing.B) {
	gen := rng.New(3)
	id := workload.UniformIdentical(gen, 1024, 1, 1, 1000)
	// Rebuild periodically to keep Add amortized-representative without
	// running out of jobs.
	o := NewOnlineLS(id)
	_ = o
	sizes := make([]core.Cost, b.N)
	for k := range sizes {
		sizes[k] = gen.IntRange(1, 1000)
	}
	big, _ := core.NewIdentical(1024, sizes)
	sched := NewOnlineLS(big)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched.Add(i)
	}
}
