// Package central implements the centralized scheduling algorithms used by
// the paper: Graham's List Scheduling and LPT on identical machines, the
// Earliest Completion Time greedy on unrelated machines, and the paper's own
// CLB2C (Centralized Load Balancing for Two Clusters, Algorithm 5), a
// 2-approximation for two clusters of identical machines under the
// hypothesis that no single job is longer than the optimal makespan
// (Theorem 6).
//
// CLB2C doubles as the kernel of the decentralized DLB2C: balancing one
// machine from each cluster is CLB2C on two singleton "clusters".
package central

import (
	"container/heap"
	"sort"

	"hetlb/internal/core"
)

// loadHeap is a min-heap of machines ordered by current load in an
// assignment, with machine index as a deterministic tie break.
type loadHeap struct {
	a        *core.Assignment
	machines []int
}

func (h *loadHeap) Len() int { return len(h.machines) }
func (h *loadHeap) Less(x, y int) bool {
	lx, ly := h.a.Load(h.machines[x]), h.a.Load(h.machines[y])
	if lx != ly {
		return lx < ly
	}
	return h.machines[x] < h.machines[y]
}
func (h *loadHeap) Swap(x, y int) { h.machines[x], h.machines[y] = h.machines[y], h.machines[x] }
func (h *loadHeap) Push(x any)    { h.machines = append(h.machines, x.(int)) }
func (h *loadHeap) Pop() any {
	old := h.machines
	n := len(old)
	v := old[n-1]
	h.machines = old[:n-1]
	return v
}

// ListScheduling assigns the given jobs, in the given order, each to the
// machine that completes it earliest (ECT). On identical machines this is
// Graham's List Scheduling (a 2-approximation); on unrelated machines it is
// the natural greedy (no guarantee, used as a baseline).
//
// jobs may be nil, meaning all jobs of the model in index order. The
// returned assignment is complete with respect to jobs.
func ListScheduling(m core.CostModel, jobs []int) *core.Assignment {
	a := core.NewAssignment(m)
	if jobs == nil {
		jobs = allJobs(m)
	}
	for _, j := range jobs {
		best := 0
		bestC := a.Load(0) + m.Cost(0, j)
		for i := 1; i < m.NumMachines(); i++ {
			if c := a.Load(i) + m.Cost(i, j); c < bestC {
				best, bestC = i, c
			}
		}
		a.Assign(j, best)
	}
	return a
}

// LPT runs Largest Processing Time first on an identical-machines instance:
// jobs sorted by decreasing size, then List Scheduling. It is a
// 4/3-approximation on identical machines.
func LPT(id *core.Identical) *core.Assignment {
	jobs := allJobs(id)
	sort.Slice(jobs, func(a, b int) bool {
		sa, sb := id.Size(jobs[a]), id.Size(jobs[b])
		if sa != sb {
			return sa > sb
		}
		return jobs[a] < jobs[b]
	})
	return ListScheduling(id, jobs)
}

// RatioLess orders jobs by increasing cost ratio
// cluster0/cluster1 using exact integer cross multiplication, with the job
// index as a deterministic tie break. It is the ordering at the heart of
// CLB2C and of the Greedy Load Balancing of Algorithm 6.
func RatioLess(m core.Clustered, a, b int) bool {
	la := m.ClusterCost(0, a) * m.ClusterCost(1, b)
	lb := m.ClusterCost(0, b) * m.ClusterCost(1, a)
	if la != lb {
		return la < lb
	}
	return a < b
}

// SortByRatio sorts jobs in place by increasing cluster0/cluster1 cost
// ratio.
func SortByRatio(m core.Clustered, jobs []int) {
	sort.Slice(jobs, func(x, y int) bool { return RatioLess(m, jobs[x], jobs[y]) })
}

// CLB2C implements Algorithm 5 of the paper on an arbitrary sub-problem: it
// assigns each job of jobs onto one of the machines in ms0 (which must
// belong to cluster 0) or ms1 (cluster 1), mutating a. The jobs must be
// unassigned in a.
//
// The jobs are considered sorted by increasing cost ratio p0/p1. At each
// step the head job (relatively cheapest on cluster 0) is tentatively placed
// on the least-loaded machine of ms0 and the tail job on the least-loaded
// machine of ms1; whichever placement finishes earlier is committed. Ties
// favor cluster 0, matching the "≤" of the paper's pseudocode.
func CLB2C(a *core.Assignment, m core.Clustered, ms0, ms1, jobs []int) {
	sorted := append([]int(nil), jobs...)
	SortByRatio(m, sorted)

	h0 := &loadHeap{a: a, machines: append([]int(nil), ms0...)}
	h1 := &loadHeap{a: a, machines: append([]int(nil), ms1...)}
	heap.Init(h0)
	heap.Init(h1)

	lo, hi := 0, len(sorted)-1
	for lo <= hi {
		jHead, jTail := sorted[lo], sorted[hi]
		i0 := h0.machines[0]
		i1 := h1.machines[0]
		c0 := a.Load(i0) + m.ClusterCost(0, jHead)
		c1 := a.Load(i1) + m.ClusterCost(1, jTail)
		if c0 <= c1 {
			a.Assign(jHead, i0)
			lo++
			heap.Fix(h0, 0)
		} else {
			a.Assign(jTail, i1)
			hi--
			heap.Fix(h1, 0)
		}
	}
}

// RunCLB2C builds a complete schedule of all jobs of a two-cluster model
// with CLB2C. This is the centralized reference ("cent" in Figure 5 of the
// paper).
func RunCLB2C(m core.Clustered) *core.Assignment {
	a := core.NewAssignment(m)
	var ms0, ms1 []int
	for i := 0; i < m.NumMachines(); i++ {
		if m.ClusterOf(i) == 0 {
			ms0 = append(ms0, i)
		} else {
			ms1 = append(ms1, i)
		}
	}
	CLB2C(a, m, ms0, ms1, allJobs(m))
	return a
}

func allJobs(m core.CostModel) []int {
	jobs := make([]int, m.NumJobs())
	for j := range jobs {
		jobs[j] = j
	}
	return jobs
}
