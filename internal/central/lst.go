package central

import (
	"fmt"
	"sort"

	"hetlb/internal/core"
	"hetlb/internal/lp"
)

// LST implements the Lenstra–Shmoys–Tardos 2-approximation for R||Cmax —
// the general centralized algorithm the paper's related work cites as the
// state of the art ("the problem without pre-emption can be approximated
// within a factor 2 ... using a linear programming problem but then using
// intelligent rounding techniques"). The paper's CLB2C exists precisely
// because this algorithm "requires solving a linear program which seems
// difficult to decentralize reasonably"; having it here gives the
// experiments the strongest centralized reference.
//
// Outline:
//  1. Binary-search the smallest integer deadline T for which the LP
//     { Σ_i x_ij = 1 ∀j;  Σ_j p_ij·x_ij ≤ T ∀i;  x_ij ≥ 0, only for
//     pairs with p_ij ≤ T } is feasible. T* ≤ OPT because the optimal
//     schedule is feasible for T = OPT.
//  2. Take a basic (vertex) solution of LP(T*): it has at most n + m
//     positive variables, so the bipartite graph of *fractional*
//     assignments is a pseudoforest (each component has at most one
//     cycle).
//  3. Assign integral jobs where x_ij ≈ 1; match each fractional job to
//     one of its fractional machines by leaf-peeling and alternate
//     matching around cycles, giving every machine at most ONE extra job
//     of size ≤ T*. Hence Cmax ≤ T* + T* ≤ 2·OPT.
//
// Intended for small and medium instances (the LP is dense).
type LSTResult struct {
	// Assignment is the rounded schedule.
	Assignment *core.Assignment
	// Deadline is T*, the smallest LP-feasible deadline (a lower bound on
	// OPT).
	Deadline core.Cost
	// LPSolves counts the feasibility LPs solved during the search.
	LPSolves int
	// Fallbacks counts fractional jobs the matching could not place and
	// that were assigned greedily instead (0 in exact arithmetic; numeric
	// dirt guard).
	Fallbacks int
}

// LST runs the algorithm. It fails only if some job cannot run anywhere
// (all costs Infinite) or an LP ends abnormally.
func LST(m core.CostModel) (*LSTResult, error) {
	n := m.NumJobs()
	if n == 0 {
		return &LSTResult{Assignment: core.NewAssignment(m)}, nil
	}
	// Search range: LB from the instance bound, UB from the ECT greedy.
	lo := core.LowerBound(m)
	hi := ListScheduling(m, nil).Makespan()
	solves := 0
	feasibleAt := func(t core.Cost) ([]float64, bool, error) {
		solves++
		x, ok, err := solveDeadlineLP(m, t)
		return x, ok, err
	}
	// The greedy bound must be feasible; guard against pathological
	// instances anyway.
	var xBest []float64
	if x, ok, err := feasibleAt(hi); err != nil {
		return nil, err
	} else if !ok {
		return nil, fmt.Errorf("central: LP infeasible even at the greedy makespan %d", hi)
	} else {
		xBest = x
	}
	bestT := hi
	for lo < bestT {
		mid := lo + (bestT-lo)/2
		x, ok, err := feasibleAt(mid)
		if err != nil {
			return nil, err
		}
		if ok {
			bestT = mid
			xBest = x
		} else {
			lo = mid + 1
		}
	}

	a, fallbacks := roundVertex(m, bestT, xBest)
	return &LSTResult{Assignment: a, Deadline: bestT, LPSolves: solves, Fallbacks: fallbacks}, nil
}

// solveDeadlineLP builds and solves LP(T); it returns the flattened
// variable vector x[i*n+j] and whether the LP is feasible.
func solveDeadlineLP(m core.CostModel, t core.Cost) ([]float64, bool, error) {
	mm, n := m.NumMachines(), m.NumJobs()
	// Quick necessary condition: every job has some machine with
	// p_ij ≤ t.
	for j := 0; j < n; j++ {
		ok := false
		for i := 0; i < mm && !ok; i++ {
			ok = m.Cost(i, j) <= t
		}
		if !ok {
			return nil, false, nil
		}
	}
	nv := mm * n
	obj := make([]float64, nv) // pure feasibility: zero objective
	cons := make([]lp.Constraint, 0, n+mm)
	for j := 0; j < n; j++ {
		coeffs := make([]float64, nv)
		for i := 0; i < mm; i++ {
			if m.Cost(i, j) <= t {
				coeffs[i*n+j] = 1
			}
		}
		cons = append(cons, lp.Constraint{Coeffs: coeffs, Rel: lp.EQ, RHS: 1})
	}
	for i := 0; i < mm; i++ {
		coeffs := make([]float64, nv)
		for j := 0; j < n; j++ {
			if m.Cost(i, j) <= t {
				coeffs[i*n+j] = float64(m.Cost(i, j))
			}
		}
		cons = append(cons, lp.Constraint{Coeffs: coeffs, Rel: lp.LE, RHS: float64(t)})
	}
	x, _, st := lp.Solve(obj, cons)
	switch st {
	case lp.Optimal:
		// Zero out the disallowed pairs defensively (they have zero
		// columns and stay zero, but be explicit).
		for i := 0; i < mm; i++ {
			for j := 0; j < n; j++ {
				if m.Cost(i, j) > t {
					x[i*n+j] = 0
				}
			}
		}
		return x, true, nil
	case lp.Infeasible:
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("central: deadline LP ended %v", st)
	}
}

const fracEps = 1e-7

// roundVertex converts a basic LP solution into an integral schedule.
func roundVertex(m core.CostModel, t core.Cost, x []float64) (*core.Assignment, int) {
	mm, n := m.NumMachines(), m.NumJobs()
	a := core.NewAssignment(m)

	// adj[j] lists machines with fractional x; machineAdj[i] lists jobs.
	adj := make([][]int, n)
	for j := 0; j < n; j++ {
		// Integral part first: the largest x wins if ≈ 1.
		argmax, vmax := -1, -1.0
		for i := 0; i < mm; i++ {
			if v := x[i*n+j]; v > vmax {
				argmax, vmax = i, v
			}
		}
		if vmax >= 1-fracEps {
			a.Assign(j, argmax)
			continue
		}
		for i := 0; i < mm; i++ {
			if v := x[i*n+j]; v > fracEps && v < 1-fracEps {
				adj[j] = append(adj[j], i)
			}
		}
		if len(adj[j]) == 0 {
			// All mass numerically blurred; take the argmax.
			a.Assign(j, argmax)
		}
	}

	// Match each fractional job to one of its fractional machines, each
	// machine absorbing at most one extra job. A vertex solution's
	// fractional graph is a pseudoforest in which such a job-perfect
	// matching always exists; a maximum bipartite matching (Kuhn's
	// augmenting paths) finds it robustly even with numeric dirt.
	matchOfMachine := make([]int, mm) // machine → job, -1 free
	for i := range matchOfMachine {
		matchOfMachine[i] = -1
	}
	var visited []bool
	var tryAugment func(j int) bool
	tryAugment = func(j int) bool {
		for _, i := range adj[j] {
			if visited[i] {
				continue
			}
			visited[i] = true
			if matchOfMachine[i] == -1 || tryAugment(matchOfMachine[i]) {
				matchOfMachine[i] = j
				return true
			}
		}
		return false
	}
	fallbacks := 0
	for j := 0; j < n; j++ {
		if a.MachineOf(j) != -1 {
			continue
		}
		visited = make([]bool, mm)
		if tryAugment(j) {
			continue
		}
		// Numeric-dirt fallback: cheapest allowed machine.
		best, bestC := -1, core.Cost(0)
		for i := 0; i < mm; i++ {
			if c := m.Cost(i, j); c <= t && (best == -1 || c < bestC) {
				best, bestC = i, c
			}
		}
		if best == -1 {
			best = 0
		}
		a.Assign(j, best)
		fallbacks++
	}
	for i, j := range matchOfMachine {
		if j != -1 && a.MachineOf(j) == -1 {
			a.Assign(j, i)
		}
	}
	return a, fallbacks
}

// sortedCandidates is kept for tests that inspect the deadline grid.
func sortedCandidates(m core.CostModel) []core.Cost {
	seen := make(map[core.Cost]bool)
	var out []core.Cost
	for i := 0; i < m.NumMachines(); i++ {
		for j := 0; j < m.NumJobs(); j++ {
			c := m.Cost(i, j)
			if c < core.Infinite && !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}
