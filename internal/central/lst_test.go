package central

import (
	"testing"

	"hetlb/internal/core"
	"hetlb/internal/exact"
	"hetlb/internal/rng"
	"hetlb/internal/workload"
)

func TestLSTTwoApproximation(t *testing.T) {
	// The theorem: LST ≤ 2·OPT. Check against the exact solver on random
	// small unrelated instances. Additionally T* ≤ OPT must hold.
	gen := rng.New(1)
	for iter := 0; iter < 60; iter++ {
		mm := 2 + gen.Intn(3)
		n := 2 + gen.Intn(7)
		d := workload.UniformDense(gen, mm, n, 1, 30)
		res, err := LST(d)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Assignment.Complete() {
			t.Fatal("LST left jobs unassigned")
		}
		if err := res.Assignment.Validate(); err != nil {
			t.Fatal(err)
		}
		sol := exact.Solve(d)
		if res.Deadline > sol.Opt {
			t.Fatalf("deadline %d exceeds OPT %d (not a lower bound!)", res.Deadline, sol.Opt)
		}
		if res.Assignment.Makespan() > 2*sol.Opt {
			t.Fatalf("LST makespan %d > 2·OPT (OPT=%d, m=%d n=%d)",
				res.Assignment.Makespan(), sol.Opt, mm, n)
		}
		if res.Assignment.Makespan() > 2*res.Deadline {
			t.Fatalf("LST makespan %d > 2·T* (T*=%d) — rounding guarantee broken",
				res.Assignment.Makespan(), res.Deadline)
		}
	}
}

func TestLSTRespectsDeadlinePlusOne(t *testing.T) {
	// Sharper structural property: every machine carries LP load ≤ T*
	// plus at most ONE extra matched job of cost ≤ T*; the per-machine
	// load is therefore ≤ 2·T*. Checked indirectly above; here verify no
	// fallbacks fire on clean instances.
	gen := rng.New(2)
	totalFallbacks := 0
	for iter := 0; iter < 40; iter++ {
		d := workload.UniformDense(gen, 3, 8, 1, 50)
		res, err := LST(d)
		if err != nil {
			t.Fatal(err)
		}
		totalFallbacks += res.Fallbacks
	}
	if totalFallbacks > 2 {
		t.Fatalf("%d numeric fallbacks over 40 instances; vertex rounding is misbehaving", totalFallbacks)
	}
}

func TestLSTBiasedInstanceOptimal(t *testing.T) {
	// Perfectly biased jobs: T* = OPT = 1 and the rounding is exact.
	d := core.MustDense([][]core.Cost{
		{1, 100, 1, 100},
		{100, 1, 100, 1},
	})
	res, err := LST(d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadline != 2 {
		t.Fatalf("deadline = %d, want 2", res.Deadline)
	}
	if res.Assignment.Makespan() > 4 {
		t.Fatalf("makespan %d > 2·T*", res.Assignment.Makespan())
	}
}

func TestLSTEmptyInstance(t *testing.T) {
	id, _ := core.NewIdentical(3, nil)
	res, err := LST(id)
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignment.Makespan() != 0 {
		t.Fatal("empty instance nonzero makespan")
	}
}

func TestLSTSingleMachine(t *testing.T) {
	id, _ := core.NewIdentical(1, []core.Cost{3, 4})
	res, err := LST(id)
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignment.Makespan() != 7 || res.Deadline != 7 {
		t.Fatalf("single machine: makespan %d deadline %d", res.Assignment.Makespan(), res.Deadline)
	}
}

func TestLSTOnTwoClusterVsCLB2C(t *testing.T) {
	// Both are 2-approximations on two-cluster instances; LST's deadline
	// is a valid lower bound for judging CLB2C too.
	gen := rng.New(3)
	for iter := 0; iter < 15; iter++ {
		tc := workload.UniformTwoCluster(gen, 2, 2, 10, 1, 40)
		res, err := LST(tc)
		if err != nil {
			t.Fatal(err)
		}
		clb := RunCLB2C(tc)
		if clb.Makespan() > 2*res.Deadline+core.Cost(2*res.Fallbacks)*40 {
			// CLB2C ≤ 2·OPT and T* ≤ OPT, so CLB2C ≤ 2·T* can fail only
			// if T* < OPT strictly... CLB2C ≤ 2·OPT always; compare to
			// 2·OPT via exact instead.
			sol := exact.Solve(tc)
			if sol.Proven && core.HypothesisHolds(tc, sol.Opt) && clb.Makespan() > 2*sol.Opt {
				t.Fatalf("CLB2C %d > 2·OPT %d", clb.Makespan(), sol.Opt)
			}
		}
	}
}

func TestSortedCandidatesSortedDistinct(t *testing.T) {
	d := core.MustDense([][]core.Cost{{3, 1, 3}, {2, 2, 5}})
	cands := sortedCandidates(d)
	want := []core.Cost{1, 2, 3, 5}
	if len(cands) != len(want) {
		t.Fatalf("candidates %v", cands)
	}
	for k := range want {
		if cands[k] != want[k] {
			t.Fatalf("candidates %v, want %v", cands, want)
		}
	}
}

func BenchmarkLST4x16(b *testing.B) {
	gen := rng.New(4)
	d := workload.UniformDense(gen, 4, 16, 1, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LST(d); err != nil {
			b.Fatal(err)
		}
	}
}
