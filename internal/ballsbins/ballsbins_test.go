package ballsbins

import (
	"testing"

	"hetlb/internal/central"
	"hetlb/internal/core"
	"hetlb/internal/rng"
	"hetlb/internal/workload"
)

func TestPlaceValidations(t *testing.T) {
	id, _ := core.NewIdentical(4, []core.Cost{1, 2})
	if _, err := Place(id, Config{D: 0}); err == nil {
		t.Fatal("D=0 accepted")
	}
	if _, err := Place(id, Config{D: 5}); err == nil {
		t.Fatal("D>m accepted")
	}
}

func TestPlaceCompleteAndValid(t *testing.T) {
	gen := rng.New(1)
	id := workload.UniformIdentical(gen, 8, 100, 1, 50)
	for d := 1; d <= 8; d++ {
		a, err := Place(id, Config{D: d, Seed: uint64(d)})
		if err != nil {
			t.Fatal(err)
		}
		if !a.Complete() {
			t.Fatalf("d=%d: jobs unassigned", d)
		}
		if err := a.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTwoChoicesBeatsOneChoice(t *testing.T) {
	// The power of two choices: averaged over seeds, the max-load gap
	// with d=2 must be clearly below d=1 (uniform random placement).
	gen := rng.New(2)
	id := workload.UniformIdentical(gen, 32, 512, 1, 100)
	var gap1, gap2 float64
	const runs = 20
	for s := 0; s < runs; s++ {
		a1, _ := Place(id, Config{D: 1, Seed: uint64(s)})
		a2, _ := Place(id, Config{D: 2, Seed: uint64(s)})
		gap1 += MaxGap(a1)
		gap2 += MaxGap(a2)
	}
	if gap2 >= gap1*0.8 {
		t.Fatalf("two choices did not help: gap1=%v gap2=%v", gap1/runs, gap2/runs)
	}
}

func TestFullScanByCompletionMatchesListScheduling(t *testing.T) {
	// d = m with the completion rule is exactly the ECT greedy (ties to
	// the lower machine index in both implementations).
	gen := rng.New(3)
	d := workload.UniformDense(gen, 5, 40, 1, 100)
	a, err := Place(d, Config{D: 5, Policy: ByCompletion, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	ls := central.ListScheduling(d, nil)
	if !a.Equal(ls) {
		t.Fatal("full-scan d-choices disagrees with List Scheduling")
	}
}

func TestByCompletionBeatsByLoadOnHeterogeneous(t *testing.T) {
	// On unrelated machines the load-only rule ignores affinity; the
	// completion rule must produce a smaller makespan on strongly biased
	// instances.
	gen := rng.New(4)
	tc := workload.UniformTwoCluster(gen, 8, 8, 256, 1, 1000)
	var byLoad, byCompletion core.Cost
	for s := uint64(0); s < 10; s++ {
		a, _ := Place(tc, Config{D: 4, Policy: ByLoad, Seed: s})
		b, _ := Place(tc, Config{D: 4, Policy: ByCompletion, Seed: s})
		byLoad += a.Makespan()
		byCompletion += b.Makespan()
	}
	if byCompletion >= byLoad {
		t.Fatalf("completion rule did not help: %d vs %d", byCompletion, byLoad)
	}
}

func TestSampleDistinctProducesDistinct(t *testing.T) {
	gen := rng.New(5)
	out := make([]int, 6)
	for iter := 0; iter < 500; iter++ {
		sampleDistinct(gen, 8, out)
		seen := make(map[int]bool)
		for _, v := range out {
			if v < 0 || v >= 8 || seen[v] {
				t.Fatalf("bad probe set %v", out)
			}
			seen[v] = true
		}
	}
}

func TestSampleDistinctCoversAll(t *testing.T) {
	gen := rng.New(6)
	out := make([]int, 3)
	hits := make(map[int]bool)
	for iter := 0; iter < 2000; iter++ {
		sampleDistinct(gen, 5, out)
		for _, v := range out {
			hits[v] = true
		}
	}
	if len(hits) != 5 {
		t.Fatalf("probes covered %d/5 machines", len(hits))
	}
}

func TestMaxGapZeroWhenBalanced(t *testing.T) {
	id, _ := core.NewIdentical(2, []core.Cost{3, 3})
	a, _ := core.FromMachineOf(id, []int{0, 1})
	if g := MaxGap(a); g != 0 {
		t.Fatalf("gap = %v on a perfectly balanced assignment", g)
	}
}

func BenchmarkTwoChoicesPaperScale(b *testing.B) {
	gen := rng.New(7)
	id := workload.UniformIdentical(gen, 96, 768, 1, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Place(id, Config{D: 2, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
