// Package ballsbins implements the submission-time balancing baselines the
// paper's related work discusses (Section III): placing each arriving job
// on the least loaded of d randomly probed machines ("the power of d
// choices", Azar et al.), which trades balance quality for probe cost and
// is fully decentralized on identical or related machines — but, as the
// paper argues, carries no guarantee on fully heterogeneous machines.
//
// The package exists as a baseline: the experiments compare its placements
// with List Scheduling (d = m, centralized) and with the paper's a-priori
// pairwise protocols.
package ballsbins

import (
	"fmt"

	"hetlb/internal/core"
	"hetlb/internal/rng"
)

// Policy selects how the d probed candidates are compared.
type Policy int

// Policies.
const (
	// ByLoad places the job on the candidate with the smallest current
	// load — the classical d-choices rule; oblivious to heterogeneity.
	ByLoad Policy = iota
	// ByCompletion places the job on the candidate finishing it earliest
	// (load + cost there) — the natural heterogeneous adaptation.
	ByCompletion
)

// Config parameterizes a run.
type Config struct {
	// D is the number of machines probed per job (1 ≤ D ≤ m). D = 1 is
	// uniform random placement; D = m is a full scan.
	D int
	// Policy picks the comparison rule.
	Policy Policy
	// Seed drives the probes.
	Seed uint64
}

// Place assigns every job of the model (in index order, modelling arrival
// order) using the d-choices rule and returns the assignment.
func Place(m core.CostModel, cfg Config) (*core.Assignment, error) {
	mm := m.NumMachines()
	if cfg.D < 1 || cfg.D > mm {
		return nil, fmt.Errorf("ballsbins: D must be in [1, %d], got %d", mm, cfg.D)
	}
	gen := rng.New(cfg.Seed)
	a := core.NewAssignment(m)
	probes := make([]int, cfg.D)
	for j := 0; j < m.NumJobs(); j++ {
		sampleDistinct(gen, mm, probes)
		best := probes[0]
		bestKey := key(a, m, best, j, cfg.Policy)
		for _, i := range probes[1:] {
			if k := key(a, m, i, j, cfg.Policy); k < bestKey || (k == bestKey && i < best) {
				best, bestKey = i, k
			}
		}
		a.Assign(j, best)
	}
	return a, nil
}

// key is the quantity minimized when choosing among candidates.
func key(a *core.Assignment, m core.CostModel, machine, job int, p Policy) core.Cost {
	switch p {
	case ByCompletion:
		return a.Load(machine) + m.Cost(machine, job)
	default:
		return a.Load(machine)
	}
}

// sampleDistinct fills out with distinct uniform machine indices
// (partial Fisher–Yates over a virtual [0, m) array, rebuilt per call via a
// small map to stay O(d)).
func sampleDistinct(gen *rng.RNG, m int, out []int) {
	swapped := make(map[int]int, len(out))
	at := func(i int) int {
		if v, ok := swapped[i]; ok {
			return v
		}
		return i
	}
	for k := range out {
		r := k + gen.Intn(m-k)
		out[k] = at(r)
		swapped[r] = at(k)
	}
}

// MaxGap returns the difference between the maximum load and the average
// load of a complete assignment — the imbalance measure of the
// balls-in-bins literature.
func MaxGap(a *core.Assignment) float64 {
	mm := a.Model().NumMachines()
	var sum core.Cost
	var max core.Cost
	for i := 0; i < mm; i++ {
		l := a.Load(i)
		sum += l
		if l > max {
			max = l
		}
	}
	return float64(max) - float64(sum)/float64(mm)
}
