package shardgossip

import (
	"runtime"
	"testing"

	"hetlb/internal/core"
	"hetlb/internal/faults"
	"hetlb/internal/obs"
	"hetlb/internal/obs/span"
	"hetlb/internal/protocol"
	"hetlb/internal/rng"
	"hetlb/internal/workload"
)

// chaosOutcome is everything a faulted invariance run compares: the
// placement hash, the trajectory counters, and the degradation counters.
type chaosOutcome struct {
	sig       uint64
	makespan  core.Cost
	moves     int
	steps     int
	crashes   int
	recovered int
	jobsLost  int
	rehosted  int
	voided    int
}

// runChaos executes a fixed 48-epoch MJTB run on a fixed typed instance
// under the given crash plan and shard count, validates conservation, and
// returns the comparable outcome.
func runChaos(t *testing.T, plan faults.Config, shards int) chaosOutcome {
	t.Helper()
	gen := rng.New(300)
	ty := workload.UniformTyped(gen, 24, 300, 3, 1, 50)
	e, err := New(protocol.MJTB{Model: ty}, core.RoundRobin(ty), Config{Seed: 11, Shards: shards, Faults: &plan})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for epoch := 0; epoch < 48; epoch++ {
		e.StepEpoch()
	}
	if err := e.ValidateConservation(); err != nil {
		t.Fatalf("shards=%d: %v", shards, err)
	}
	fs := e.faults
	out := chaosOutcome{
		sig:      sigHash(e.Snapshot()),
		makespan: e.Makespan(),
		moves:    e.Moves(),
		steps:    e.Steps(),
		voided:   e.Voided(),
	}
	if fs != nil {
		out.crashes, out.recovered = fs.crashes, fs.recoveries
		out.jobsLost, out.rehosted = fs.jobsLost, fs.jobsRehosted
	}
	return out
}

// TestShardChaosProperty is the acceptance suite: 128 random crash/loss
// plans, each replayed at S ∈ {1, 2, 4} and at GOMAXPROCS 1 vs the
// process's own, must produce bit-identical placements and counters and
// conserve every job after the plan drains (the 48-epoch run outlives the
// 40-epoch fault horizon).
func TestShardChaosProperty(t *testing.T) {
	plans := 128
	if testing.Short() {
		plans = 16
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for p := 0; p < plans; p++ {
		seed := rng.DeriveSeed(424242, uint64(p))
		plan := faults.Config{
			Crashes: faults.RandomCrashes(seed, 24, 40, 1+p%6, 8, 0.25*float64(p%5)),
		}
		base := runChaos(t, plan, 1)
		if base.crashes == 0 {
			t.Fatalf("plan %d scheduled no crashes", p)
		}
		for _, s := range []int{2, 4} {
			if got := runChaos(t, plan, s); got != base {
				t.Fatalf("plan %d shards=%d diverged:\n got %+v\nwant %+v", p, s, got, base)
			}
		}
		runtime.GOMAXPROCS(1)
		got := runChaos(t, plan, 4)
		runtime.GOMAXPROCS(prev)
		if got != base {
			t.Fatalf("plan %d GOMAXPROCS=1 diverged:\n got %+v\nwant %+v", p, got, base)
		}
	}
}

// TestShardChaosPinnedGolden hardcodes one faulted trajectory. A change here
// means the faulted sharded trajectory itself changed — down-set
// derivation, void filtering, loss/rehost bookkeeping, or the schedule —
// which the bit-identical criterion forbids without a documented break.
func TestShardChaosPinnedGolden(t *testing.T) {
	plan := faults.Config{
		Crashes: faults.RandomCrashes(rng.DeriveSeed(424242, 7), 24, 40, 4, 8, 0.5),
	}
	base := runChaos(t, plan, 1)
	for _, s := range []int{2, 4, 8} {
		if got := runChaos(t, plan, s); got != base {
			t.Fatalf("shards=%d diverged:\n got %+v\nwant %+v", s, got, base)
		}
	}
	want := chaosOutcome{
		sig: 0xe045043407441a98, makespan: 131, moves: 1778, steps: 576,
		crashes: 4, recovered: 4, jobsLost: 2, rehosted: 16, voided: 28,
	}
	if base != want {
		t.Fatalf("golden broken:\n got %+v\nwant %+v", base, want)
	}
}

// TestStableLatchReopensOnRecovery is the latch regression: a run that
// proves stability while a machine is down (its frozen jobs out of play)
// must drop the verified-stable fast path the moment the machine recovers,
// because the recovered work re-enters the matchings.
func TestStableLatchReopensOnRecovery(t *testing.T) {
	gen := rng.New(310)
	ty := workload.UniformTyped(gen, 8, 64, 2, 1, 20)
	plan := faults.Config{Crashes: []faults.Crash{{Machine: 2, At: 1, RecoverAt: 120}}}
	e, err := New(protocol.MJTB{Model: ty}, core.RoundRobin(ty), Config{Seed: 3, Shards: 2, Faults: &plan})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	res := e.Run(100_000, true)
	if !res.Converged || !e.Stable() {
		t.Fatalf("run did not latch stability with machine 2 down (epochs=%d)", e.Epochs())
	}
	if e.Epochs() >= 120 {
		t.Fatalf("stability latched only after the recovery (epoch %d); shrink the instance", e.Epochs())
	}
	if !e.Down(2) || e.DownMachines() != 1 {
		t.Fatal("machine 2 not reported down")
	}
	for e.Epochs() < 120 {
		e.StepEpoch()
		if !e.Stable() {
			t.Fatalf("latch dropped at epoch %d, before the recovery", e.Epochs())
		}
	}
	e.StepEpoch() // applies the recovery before executing epoch 120
	if e.Stable() {
		t.Fatal("verified-stable latch survived a recovery")
	}
	if e.Down(2) || e.DownMachines() != 0 {
		t.Fatal("machine 2 still reported down after recovery")
	}
	res = e.Run(100_000, true)
	if !res.Converged {
		t.Fatal("run did not re-converge after the recovery")
	}
	if res.JobsRehosted == 0 || res.JobsLost != 0 {
		t.Fatalf("rehosted=%d lost=%d, want rehosted>0 lost=0", res.JobsRehosted, res.JobsLost)
	}
	if err := e.ValidateConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestLoseJobsCrash pins the loss policy: a LoseJobs crash empties the
// machine, the lost ledger and the partial snapshot agree, and conservation
// still holds.
func TestLoseJobsCrash(t *testing.T) {
	gen := rng.New(320)
	ty := workload.UniformTyped(gen, 6, 60, 2, 1, 10)
	plan := faults.Config{Crashes: []faults.Crash{{Machine: 1, At: 2, LoseJobs: true}}}
	e, err := New(protocol.MJTB{Model: ty}, core.RoundRobin(ty), Config{Seed: 5, Shards: 3, Faults: &plan})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for epoch := 0; epoch < 10; epoch++ {
		e.StepEpoch()
	}
	lost := e.Lost()
	if len(lost) == 0 {
		t.Fatal("no jobs recorded lost")
	}
	for _, lj := range lost {
		if lj.Machine != 1 || lj.Epoch != 2 {
			t.Fatalf("lost entry %+v, want machine 1 at epoch 2", lj)
		}
	}
	snap := e.Snapshot()
	if snap.Complete() {
		t.Fatal("snapshot complete despite lost jobs")
	}
	unplaced := snap.Unplaced()
	if len(unplaced) != len(lost) {
		t.Fatalf("%d unplaced jobs for %d lost", len(unplaced), len(lost))
	}
	if err := e.ValidateConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestFrozenJobsKeepCounting pins the freeze policy: without LoseJobs the
// crashed machine's load stays in the Cmax reduction (mirroring netsim's
// frozen-work accounting) and comes back intact.
func TestFrozenJobsKeepCounting(t *testing.T) {
	gen := rng.New(330)
	ty := workload.UniformTyped(gen, 4, 40, 2, 5, 9)
	plan := faults.Config{Crashes: []faults.Crash{{Machine: 0, At: 1, RecoverAt: 6}}}
	e, err := New(protocol.MJTB{Model: ty}, core.RoundRobin(ty), Config{Seed: 8, Shards: 1, Faults: &plan})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.StepEpoch() // epoch 0: all up
	frozenLoad := e.load[0]
	jobs := len(e.jobs[0])
	if jobs == 0 {
		t.Fatal("machine 0 holds no jobs at the crash")
	}
	for epoch := 1; epoch < 6; epoch++ {
		e.StepEpoch()
		if e.load[0] != frozenLoad || len(e.jobs[0]) != jobs {
			t.Fatalf("frozen machine changed at epoch %d", epoch)
		}
		if e.Makespan() < frozenLoad {
			t.Fatalf("Cmax %d excludes frozen load %d", e.Makespan(), frozenLoad)
		}
	}
	e.StepEpoch() // applies the recovery
	if e.Down(0) {
		t.Fatal("machine 0 still down")
	}
	if err := e.ValidateConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestFaultObservability checks the degraded-mode instruments: the metrics
// counters agree with the Result's degradation fields and KindFault
// crash/recover spans hang under the run span.
func TestFaultObservability(t *testing.T) {
	gen := rng.New(340)
	ty := workload.UniformTyped(gen, 10, 100, 2, 1, 20)
	plan := faults.Config{Crashes: []faults.Crash{
		{Machine: 1, At: 2, RecoverAt: 5},
		{Machine: 7, At: 3, LoseJobs: true},
	}}
	reg := obs.NewRegistry()
	met := NewMetrics(reg)
	rec := span.NewRecorder(1 << 12)
	e, err := New(protocol.MJTB{Model: ty}, core.RoundRobin(ty), Config{Seed: 2, Shards: 2, Faults: &plan, Metrics: met, Spans: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	res := e.Run(200, false)
	if res.Crashes != 2 || res.Recoveries != 1 {
		t.Fatalf("crashes=%d recoveries=%d, want 2/1", res.Crashes, res.Recoveries)
	}
	if res.JobsLost == 0 || res.JobsRehosted == 0 || res.Voided == 0 {
		t.Fatalf("lost=%d rehosted=%d voided=%d, want all > 0", res.JobsLost, res.JobsRehosted, res.Voided)
	}
	if got := met.Crashes.Value(); got != int64(res.Crashes) {
		t.Fatalf("metric crashes %d != result %d", got, res.Crashes)
	}
	if got := met.Recoveries.Value(); got != int64(res.Recoveries) {
		t.Fatalf("metric recoveries %d != result %d", got, res.Recoveries)
	}
	if got := met.JobsLost.Value(); got != int64(res.JobsLost) {
		t.Fatalf("metric jobs lost %d != result %d", got, res.JobsLost)
	}
	if got := met.JobsRehosted.Value(); got != int64(res.JobsRehosted) {
		t.Fatalf("metric rehosted %d != result %d", got, res.JobsRehosted)
	}
	if got := met.Voided.Value(); got != int64(res.Voided) {
		t.Fatalf("metric voided %d != result %d", got, res.Voided)
	}
	// Machine 7 never recovers, so the gauge must still read 1.
	if got := met.Down.Value(); got != 1 {
		t.Fatalf("down gauge %d, want 1", got)
	}
	var runID span.ID
	crash, recover, voidedSpans := 0, 0, 0
	for _, s := range rec.Spans() {
		if s.Kind == span.KindRun {
			runID = s.ID
		}
	}
	for _, s := range rec.Spans() {
		switch {
		case s.Kind == span.KindFault && s.Tag == span.TagCrash:
			crash++
			if s.Parent != runID {
				t.Fatalf("crash span parented under %d, want run span %d", s.Parent, runID)
			}
		case s.Kind == span.KindFault && s.Tag == span.TagRecover:
			recover++
		case s.Kind == span.KindSession && s.Flags&span.FlagAborted != 0 && s.Tag == span.TagCrash:
			voidedSpans++
		}
	}
	if crash != 2 || recover != 1 {
		t.Fatalf("fault spans crash=%d recover=%d, want 2/1", crash, recover)
	}
	if voidedSpans != res.Voided {
		t.Fatalf("%d voided session spans for %d voided sessions", voidedSpans, res.Voided)
	}
}

// TestFaultPlanRejected pins New's plan validation: message-level faults
// and invalid crash schedules must be refused up front.
func TestFaultPlanRejected(t *testing.T) {
	gen := rng.New(350)
	ty := workload.UniformTyped(gen, 4, 20, 2, 1, 10)
	for _, plan := range []faults.Config{
		{DropProb: 0.1, Crashes: []faults.Crash{{Machine: 0, At: 1, RecoverAt: 2}}},
		{JitterMax: 3, Crashes: []faults.Crash{{Machine: 0, At: 1, RecoverAt: 2}}},
		{Crashes: []faults.Crash{{Machine: 9, At: 1, RecoverAt: 2}}},
		{Crashes: []faults.Crash{{Machine: 0, At: 1, RecoverAt: 3}, {Machine: 0, At: 2, RecoverAt: 4}}},
	} {
		if _, err := New(protocol.MJTB{Model: ty}, core.RoundRobin(ty), Config{Shards: 1, Faults: &plan}); err == nil {
			t.Fatalf("plan %+v accepted", plan)
		}
	}
	// A nil or zero plan arms nothing: the engine stays on the unarmed path.
	e, err := New(protocol.MJTB{Model: ty}, core.RoundRobin(ty), Config{Shards: 1, Faults: &faults.Config{}})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.faults != nil {
		t.Fatal("zero plan armed fault state")
	}
}

// TestFaultFreeTrajectoryUnchanged re-pins the PR-7/8 golden through a
// Config that carries a nil fault plan: arming the field must not perturb
// the fault-free trajectory.
func TestFaultFreeTrajectoryUnchanged(t *testing.T) {
	gen := rng.New(200)
	ty := workload.UniformTyped(gen, 33, 400, 4, 1, 99)
	e, err := New(protocol.MJTB{Model: ty}, core.RoundRobin(ty), Config{Seed: 9, Shards: 4, Faults: nil})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for epoch := 0; epoch < 40; epoch++ {
		e.StepEpoch()
	}
	got := outcome{sigHash(e.Snapshot()), e.Makespan(), e.Moves(), e.Steps()}
	want := outcome{sig: 0x07e3d49fe327e355, makespan: 260, moves: 2311, steps: 640}
	if got != want {
		t.Fatalf("fault-free golden broken:\n got %+v\nwant %+v", got, want)
	}
}
