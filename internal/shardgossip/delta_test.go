package shardgossip

import (
	"runtime"
	"slices"
	"testing"

	"hetlb/internal/core"
	"hetlb/internal/protocol"
	"hetlb/internal/rng"
	"hetlb/internal/workload"
)

// TestDeltaLoadsMatchRecompute pins the O(moved) session updates and the
// per-shard partial reductions against ground truth: after EVERY epoch of a
// 64-epoch run, each machine's cached load must exactly equal the sum of its
// job costs recomputed from scratch, and the barrier's reduced makespan /
// total load must equal a full O(m) fold over those recomputed loads.
// core.Cost is integral, so equality is exact — no tolerance.
func TestDeltaLoadsMatchRecompute(t *testing.T) {
	gen := rng.New(200)
	ty := workload.UniformTyped(gen, 11, 150, 3, 1, 50)
	tc := workload.UniformTwoCluster(gen, 6, 5, 130, 1, 40)
	cases := []struct {
		name   string
		model  core.CostModel
		proto  protocol.Protocol
		shards int
	}{
		{"typed-mjtb/s=1", ty, protocol.MJTB{Model: ty}, 1},
		{"typed-mjtb/s=3", ty, protocol.MJTB{Model: ty}, 3},
		{"twocluster-dlb2c/s=1", tc, protocol.DLB2C{Model: tc}, 1},
		{"twocluster-dlb2c/s=4", tc, protocol.DLB2C{Model: tc}, 4},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			e, err := New(c.proto, core.RoundRobin(c.model), Config{Seed: 42, Shards: c.shards})
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			m := c.model.NumMachines()
			for epoch := 0; epoch < 64; epoch++ {
				e.StepEpoch()
				var max core.Cost
				var sum int64
				for i := 0; i < m; i++ {
					var want core.Cost
					for _, j := range e.jobs[i] {
						want += c.model.Cost(i, j)
					}
					if e.load[i] != want {
						t.Fatalf("epoch %d machine %d: delta-updated load %d != recomputed %d", epoch, i, e.load[i], want)
					}
					if want > max {
						max = want
					}
					sum += int64(want)
				}
				if e.Makespan() != max {
					t.Fatalf("epoch %d: reduced makespan %d != recomputed %d", epoch, e.Makespan(), max)
				}
				if e.TotalLoad() != sum {
					t.Fatalf("epoch %d: reduced total load %d != recomputed %d", epoch, e.TotalLoad(), sum)
				}
			}
		})
	}
}

// TestStableFastPathMatchesFullPath proves the verified-stable session skip
// is invisible: run engine A to convergence (latching the fast path), step
// it further, and compare every Stepper-visible output against engine B,
// which executes the identical schedule with the full kernel path (never
// latched because it never runs a stability check).
func TestStableFastPathMatchesFullPath(t *testing.T) {
	build := func() *Engine {
		ty, _ := core.NewTyped([][]core.Cost{{2}, {3}, {5}, {4}, {3}, {2}}, make([]int, 18))
		e, err := New(protocol.OJTB{Model: ty}, core.AllOnMachine(ty, 2), Config{Seed: 17, Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	a := build()
	defer a.Close()
	res := a.Run(50000, true)
	if !res.Converged {
		t.Fatal("instance did not converge; pick a different seed")
	}
	if !a.Stable() {
		t.Fatal("converged run did not latch the verified-stable fast path")
	}
	const extra = 40
	for k := 0; k < extra; k++ {
		a.StepEpoch()
	}

	b := build()
	defer b.Close()
	if b.Stable() {
		t.Fatal("fresh engine unexpectedly stable")
	}
	for b.Epochs() < a.Epochs() {
		b.StepEpoch()
	}
	if b.Stable() {
		t.Fatal("engine B latched stability without a stability check; comparison would be vacuous")
	}
	if a.Steps() != b.Steps() || a.Moves() != b.Moves() {
		t.Fatalf("steps/moves diverged: (%d, %d) != (%d, %d)", a.Steps(), a.Moves(), b.Steps(), b.Moves())
	}
	if a.Makespan() != b.Makespan() || a.TotalLoad() != b.TotalLoad() {
		t.Fatalf("makespan/total load diverged: (%d, %d) != (%d, %d)", a.Makespan(), a.TotalLoad(), b.Makespan(), b.TotalLoad())
	}
	if !slices.Equal(a.Exchanges(), b.Exchanges()) {
		t.Fatal("exchange counters diverged between fast path and full path")
	}
	if !a.Snapshot().Equal(b.Snapshot()) {
		t.Fatal("placements diverged between fast path and full path")
	}
}

// TestAutoShardHeuristic checks the Shards: 0 default: the partition gets
// AutoShards(m) shards (GOMAXPROCS clamped to m), and — because shard count
// never affects results — the run is bit-identical to an explicit S=1 engine.
func TestAutoShardHeuristic(t *testing.T) {
	gen := rng.New(201)
	ty := workload.UniformTyped(gen, 9, 90, 2, 1, 30)
	auto, err := New(protocol.MJTB{Model: ty}, core.RoundRobin(ty), Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer auto.Close()
	if got, want := auto.Partition().NumShards(), AutoShards(9); got != want {
		t.Fatalf("auto shard count = %d, want AutoShards(9) = %d", got, want)
	}
	one, err := New(protocol.MJTB{Model: ty}, core.RoundRobin(ty), Config{Seed: 5, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer one.Close()
	for k := 0; k < 30; k++ {
		auto.StepEpoch()
		one.StepEpoch()
	}
	if auto.Makespan() != one.Makespan() || auto.Moves() != one.Moves() {
		t.Fatalf("auto-sharded run diverged from S=1: (%d, %d) != (%d, %d)",
			auto.Makespan(), auto.Moves(), one.Makespan(), one.Moves())
	}
	if !auto.Snapshot().Equal(one.Snapshot()) {
		t.Fatal("auto-sharded placement diverged from S=1")
	}
}

// TestAutoShardsClamps pins the heuristic's bounds without depending on the
// runner's core count: never more shards than machines, never fewer than 1.
func TestAutoShardsClamps(t *testing.T) {
	if got := AutoShards(1); got != 1 {
		t.Fatalf("AutoShards(1) = %d, want 1", got)
	}
	if got, max := AutoShards(2), 2; got < 1 || got > max {
		t.Fatalf("AutoShards(2) = %d, out of [1, %d]", got, max)
	}
	if p := runtime.GOMAXPROCS(0); AutoShards(1<<20) != p {
		t.Fatalf("AutoShards(1<<20) = %d, want GOMAXPROCS = %d", AutoShards(1<<20), p)
	}
}
