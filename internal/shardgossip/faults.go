// Fault support for the sharded epoch engine: the crash/recovery schedules
// of internal/faults replayed at epoch granularity.
//
// # Virtual time and the down-set
//
// The engine's virtual time is the epoch index: a Crash{At: k} takes effect
// before epoch k executes, and Recovery at r brings the machine back before
// epoch r — the machine is down for exactly the epochs in [At, RecoverAt),
// matching faults.Config.DownAt. All transitions are applied by the
// coordinator between epochs (applyFaults at the top of StepEpoch), so the
// down-set is frozen for the whole epoch and every worker reads it without
// synchronization.
//
// # Determinism
//
// The schedule draw is untouched: epoch k's matching remains a pure function
// of DeriveSeed(seed, k). Faults only *filter* it — a pair touching a down
// machine is voided for that epoch (no exchange, no kernel, no load write).
// The voided set is a pure function of (schedule, fault plan, epoch), so
// faulted runs stay bit-identical at any shard count and GOMAXPROCS, exactly
// like fault-free ones.
//
// # Crash semantics
//
// A crash with LoseJobs freezes nothing: the machine's jobs move to the lost
// ledger, its load drops to zero, and its block's partial sum is adjusted in
// place (the block is marked dirty so phase B rescans its max). Without
// LoseJobs the jobs freeze with the machine — they stay in its list and its
// load stays in the partial reductions, so Cmax keeps counting frozen work,
// mirroring netsim — and are re-hosted in place on recovery. Every
// transition unlatches the verified-stable fast path and resets the quiet
// counter: a recovery brings frozen work back into play and a crash removes
// a participant from every future matching, so a previously proven
// stability no longer holds.
package shardgossip

import (
	"fmt"
	"sort"

	"hetlb/internal/core"
	"hetlb/internal/faults"
	"hetlb/internal/obs/span"
)

// LostJob is one job permanently removed by a LoseJobs crash: which job,
// which machine held it, and the epoch the crash was applied before.
type LostJob struct {
	Job     int
	Machine int
	Epoch   int
}

// faultEvent is one scheduled transition at epoch granularity, applied when
// virtual time (the index of the epoch about to execute) reaches at.
type faultEvent struct {
	at      int64
	machine int32
	recover bool
	lose    bool // crash events only: jobs are lost, not frozen
}

// faultState is the engine's dynamic crash state. nil on a fault-free
// engine, so the only cost an unarmed run pays is one nil-check branch per
// session.
type faultState struct {
	cfg    faults.Config
	events []faultEvent // sorted by (at, machine); consumed in order
	next   int

	//hetlb:frozen
	down      []bool // read-only during an epoch; written between epochs
	downCount int
	frozen    []int32 // frozen[x] = jobs frozen on down machine x

	lost         []LostJob
	crashes      int
	recoveries   int
	jobsLost     int
	jobsRehosted int
	voided       int // sessions voided across the engine's lifetime
}

// newFaultState validates and compiles a fault plan for m machines.
func newFaultState(cfg faults.Config, m int) (*faultState, error) {
	if !cfg.MessageFree() {
		return nil, fmt.Errorf("shardgossip: fault plan injects message faults (drop/dup/jitter); the epoch engine exchanges no messages, only crash schedules apply")
	}
	if err := cfg.Validate(m); err != nil {
		return nil, err
	}
	fs := &faultState{
		cfg:    cfg,
		down:   make([]bool, m),
		frozen: make([]int32, m),
	}
	for _, cr := range cfg.Crashes {
		fs.events = append(fs.events, faultEvent{at: cr.At, machine: int32(cr.Machine), lose: cr.LoseJobs})
		if cr.RecoverAt != 0 {
			fs.events = append(fs.events, faultEvent{at: cr.RecoverAt, machine: int32(cr.Machine), recover: true})
		}
	}
	sort.Slice(fs.events, func(a, b int) bool {
		ea, eb := fs.events[a], fs.events[b]
		if ea.at != eb.at {
			return ea.at < eb.at
		}
		if ea.machine != eb.machine {
			return ea.machine < eb.machine
		}
		// Validation forbids a same-machine same-instant recover+crash; the
		// tiebreak only fixes a total order for determinism's sake.
		return ea.recover && !eb.recover
	})
	return fs, nil
}

// applyFaults applies every scheduled transition up to and including the
// epoch about to execute. Runs on the coordinator between epochs: no worker
// is live, so state and partials are written without locks.
func (e *Engine) applyFaults() {
	fs := e.faults
	now := int64(e.epoch)
	fired := false
	for fs.next < len(fs.events) && fs.events[fs.next].at <= now {
		ev := fs.events[fs.next]
		fs.next++
		fired = true
		if ev.recover {
			e.recoverMachine(ev)
		} else {
			e.crashMachine(ev)
		}
		// Any transition invalidates a proven stability and dirties the
		// machine's block so phase B refreshes its partial max.
		e.stable = false
		e.noChange = 0
		e.shards[e.part.ShardOf(int(ev.machine))].dirty = true
	}
	if fired && e.metrics != nil {
		e.metrics.Down.Set(int64(fs.downCount))
	}
}

// crashMachine takes machine ev.machine down, losing or freezing its jobs
// per the plan's loss policy.
func (e *Engine) crashMachine(ev faultEvent) {
	fs := e.faults
	x := int(ev.machine)
	fs.down[x] = true
	fs.downCount++
	fs.crashes++
	affected := len(e.jobs[x])
	if ev.lose {
		for _, j := range e.jobs[x] {
			fs.lost = append(fs.lost, LostJob{Job: j, Machine: x, Epoch: e.epoch})
		}
		fs.jobsLost += affected
		old := e.load[x]
		e.jobs[x] = e.jobs[x][:0]
		e.load[x] = 0
		e.shards[e.part.ShardOf(x)].partialSum -= int64(old)
	} else {
		fs.frozen[x] = int32(affected)
	}
	if e.metrics != nil {
		e.metrics.Crashes.Inc()
		if ev.lose && affected > 0 {
			e.metrics.JobsLost.Add(int64(affected))
		}
	}
	if e.spans != nil {
		e.spans.Append(span.Span{
			Parent: e.runSpan,
			Kind:   span.KindFault,
			Tag:    span.TagCrash,
			Flags:  span.FlagCrashed,
			A:      ev.machine,
			B:      -1,
			Start:  int64(e.sessions),
			End:    int64(e.sessions),
			Value:  int64(affected),
		})
	}
}

// recoverMachine brings machine ev.machine back; jobs frozen by a
// non-losing crash are re-hosted in place (their loads never left the
// partial reductions).
func (e *Engine) recoverMachine(ev faultEvent) {
	fs := e.faults
	x := int(ev.machine)
	fs.down[x] = false
	fs.downCount--
	fs.recoveries++
	rehosted := int(fs.frozen[x])
	fs.jobsRehosted += rehosted
	fs.frozen[x] = 0
	if e.metrics != nil {
		e.metrics.Recoveries.Inc()
		if rehosted > 0 {
			e.metrics.JobsRehosted.Add(int64(rehosted))
		}
	}
	if e.spans != nil {
		e.spans.Append(span.Span{
			Parent: e.runSpan,
			Kind:   span.KindFault,
			Tag:    span.TagRecover,
			A:      ev.machine,
			B:      -1,
			Start:  int64(e.sessions),
			End:    int64(e.sessions),
			Value:  int64(rehosted),
		})
	}
}

// Down reports whether machine x is currently down under the armed fault
// plan (always false without one).
func (e *Engine) Down(x int) bool {
	return e.faults != nil && e.faults.down[x]
}

// DownMachines returns how many machines are currently down.
func (e *Engine) DownMachines() int {
	if e.faults == nil {
		return 0
	}
	return e.faults.downCount
}

// Lost returns a copy of the lost-jobs ledger, in the order the losses
// occurred.
func (e *Engine) Lost() []LostJob {
	if e.faults == nil {
		return nil
	}
	return append([]LostJob(nil), e.faults.lost...)
}

// Voided returns the number of sessions voided so far because a participant
// was down.
func (e *Engine) Voided() int {
	if e.faults == nil {
		return 0
	}
	return e.faults.voided
}

// ValidateConservation checks the engine's global invariants after (or
// during) a faulted run: every job of the model is either placed on exactly
// one machine or recorded exactly once in the lost ledger; every cached
// load, the per-shard partial reductions and the barrier-cached aggregates
// match a recomputation from job costs; and the dynamic down-set matches
// the plan's DownAt at the engine's current virtual time. Call it between
// epochs (it reads coordinator-owned state). It is the sharded counterpart
// of netsim's conservation invariant and is O(n + m).
func (e *Engine) ValidateConservation() error {
	n := e.model.NumJobs()
	m := e.part.NumMachines()
	const (
		unseen = iota
		placed
		lostMark
	)
	seen := make([]int8, n)
	for i := 0; i < m; i++ {
		var sum core.Cost
		for _, j := range e.jobs[i] {
			if j < 0 || j >= n {
				return fmt.Errorf("shardgossip: machine %d lists invalid job %d", i, j)
			}
			if seen[j] != unseen {
				return fmt.Errorf("shardgossip: job %d placed on more than one machine", j)
			}
			seen[j] = placed
			sum += e.model.Cost(i, j)
		}
		if sum != e.load[i] {
			return fmt.Errorf("shardgossip: machine %d cached load %d != recomputed %d", i, e.load[i], sum)
		}
	}
	if e.faults != nil {
		for _, lj := range e.faults.lost {
			switch seen[lj.Job] {
			case placed:
				return fmt.Errorf("shardgossip: job %d both placed and in the lost ledger", lj.Job)
			case lostMark:
				return fmt.Errorf("shardgossip: job %d recorded lost twice", lj.Job)
			}
			seen[lj.Job] = lostMark
		}
	}
	for j := 0; j < n; j++ {
		if seen[j] == unseen {
			return fmt.Errorf("shardgossip: job %d neither placed nor in the lost ledger", j)
		}
	}
	var sum int64
	var max core.Cost
	for _, l := range e.load {
		sum += int64(l)
		if l > max {
			max = l
		}
	}
	if sum != e.sumLoad {
		return fmt.Errorf("shardgossip: cached total load %d != recomputed %d", e.sumLoad, sum)
	}
	if max != e.cachedMax {
		return fmt.Errorf("shardgossip: cached makespan %d != recomputed %d", e.cachedMax, max)
	}
	for s := range e.shards {
		lo, hi := e.part.Bounds(s)
		var psum int64
		var pmax core.Cost
		for _, l := range e.load[lo:hi] {
			psum += int64(l)
			if l > pmax {
				pmax = l
			}
		}
		if psum != e.shards[s].partialSum {
			return fmt.Errorf("shardgossip: shard %d partial sum %d != recomputed %d", s, e.shards[s].partialSum, psum)
		}
		if !e.shards[s].dirty && pmax != e.shards[s].partialMax {
			return fmt.Errorf("shardgossip: shard %d partial max %d != recomputed %d", s, e.shards[s].partialMax, pmax)
		}
	}
	if e.faults != nil && e.epoch > 0 {
		// applyFaults last ran with virtual time e.epoch-1 (the top of the
		// last executed epoch), so the dynamic down-set must equal the plan's
		// schedule evaluated there.
		now := int64(e.epoch - 1)
		for x := 0; x < m; x++ {
			if want := e.faults.cfg.DownAt(x, now); e.faults.down[x] != want {
				return fmt.Errorf("shardgossip: machine %d down=%v but the plan says %v at epoch %d", x, e.faults.down[x], want, now)
			}
		}
	}
	return nil
}
