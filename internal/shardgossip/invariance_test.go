package shardgossip

import (
	"hash/fnv"
	"runtime"
	"testing"

	"hetlb/internal/core"
	"hetlb/internal/protocol"
	"hetlb/internal/rng"
	"hetlb/internal/workload"
)

// outcome is everything an invariance test compares: a 64-bit placement
// hash plus the scalar trajectory counters.
type outcome struct {
	sig      uint64
	makespan core.Cost
	moves    int
	steps    int
}

func sigHash(a *core.Assignment) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(a.Signature()))
	return h.Sum64()
}

// runTyped executes a fixed 40-epoch MJTB run on a fixed typed instance
// (odd m, so every epoch leaves one machine idle) at the given shard count.
func runTyped(t *testing.T, shards int) outcome {
	t.Helper()
	gen := rng.New(200)
	ty := workload.UniformTyped(gen, 33, 400, 4, 1, 99)
	e, err := New(protocol.MJTB{Model: ty}, core.RoundRobin(ty), Config{Seed: 9, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for epoch := 0; epoch < 40; epoch++ {
		e.StepEpoch()
	}
	return outcome{sigHash(e.Snapshot()), e.Makespan(), e.Moves(), e.Steps()}
}

// TestShardCountInvariance is the tentpole acceptance test: the same run at
// S ∈ {1, 2, 4, 8} must produce bit-identical placements and counters.
func TestShardCountInvariance(t *testing.T) {
	base := runTyped(t, 1)
	for _, s := range []int{2, 4, 8} {
		if got := runTyped(t, s); got != base {
			t.Fatalf("shards=%d diverged: %+v != %+v", s, got, base)
		}
	}
}

// TestParallelismInvariance re-runs the S=4 engine under GOMAXPROCS ∈ {1, 2,
// max}: scheduling pressure must not reach the results.
func TestParallelismInvariance(t *testing.T) {
	base := runTyped(t, 4)
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range []int{1, 2, prev} {
		runtime.GOMAXPROCS(procs)
		if got := runTyped(t, 4); got != base {
			t.Fatalf("GOMAXPROCS=%d diverged: %+v != %+v", procs, got, base)
		}
	}
}

// TestPinnedGolden hardcodes the typed run's outcome. A change here means
// the sharded trajectory itself changed — schedule derivation, kernel
// behavior, or RNG — which is exactly what the bit-identical acceptance
// criterion forbids without a deliberate, documented break.
func TestPinnedGolden(t *testing.T) {
	want := outcome{sig: 0x07e3d49fe327e355, makespan: 260, moves: 2311, steps: 640}
	if got := runTyped(t, 4); got != want {
		t.Fatalf("golden broken:\n got %+v\nwant %+v", got, want)
	}
}

// TestPinnedGoldenTwoCluster pins a second trajectory on the other headline
// model family, DLB2C on a two-cluster instance with even m.
func TestPinnedGoldenTwoCluster(t *testing.T) {
	gen := rng.New(201)
	tc := workload.UniformTwoCluster(gen, 12, 12, 300, 1, 80)
	run := func(shards int) outcome {
		e, err := New(protocol.DLB2C{Model: tc}, core.RoundRobin(tc), Config{Seed: 17, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		for epoch := 0; epoch < 30; epoch++ {
			e.StepEpoch()
		}
		return outcome{sigHash(e.Snapshot()), e.Makespan(), e.Moves(), e.Steps()}
	}
	want := outcome{sig: 0x1796cf386ce39f20, makespan: 389, moves: 1837, steps: 360}
	for _, s := range []int{1, 3, 8} {
		if got := run(s); got != want {
			t.Fatalf("shards=%d golden broken:\n got %+v\nwant %+v", s, got, want)
		}
	}
}
