package shardgossip

import (
	"hetlb/internal/gossip"
	"hetlb/internal/rng"
)

// MatchingSelection is a gossip.Selection that replays the sharded engine's
// epoch schedule on the sequential gossip.Engine: epoch e of seed s draws
// the permutation keyed by rng.DeriveSeed(s, e) and yields its ⌊m/2⌋
// disjoint pairs in order. A gossip.Engine run with this selection and a
// shardgossip.Engine with the same seed execute the exact same sessions in
// the exact same order, which is what the S=1 equivalence tests pin.
//
// It ignores the generator passed to Pair — the schedule is keyed by its own
// seed so it cannot drift if the engine draws for other purposes — and is
// sized to one machine count at construction.
type MatchingSelection struct {
	seed  uint64
	gen   *rng.RNG
	perm  []int
	pos   int
	epoch uint64
}

// NewMatchingSelection builds the selection for m machines.
func NewMatchingSelection(seed uint64, m int) *MatchingSelection {
	return &MatchingSelection{
		seed: seed,
		gen:  rng.New(0),
		perm: make([]int, m),
		pos:  m / 2, // force a fresh epoch on the first Pair call
	}
}

// Name implements gossip.Selection.
func (*MatchingSelection) Name() string { return "epoch-matching" }

// Pair implements gossip.Selection.
func (s *MatchingSelection) Pair(_ *rng.RNG, m int) (int, int) {
	if m != len(s.perm) {
		panic("shardgossip: MatchingSelection sized for a different machine count")
	}
	if s.pos >= m/2 {
		s.gen.Reseed(rng.DeriveSeed(s.seed, s.epoch))
		s.epoch++
		s.gen.PermInto(s.perm)
		s.pos = 0
	}
	i, j := s.perm[2*s.pos], s.perm[2*s.pos+1]
	s.pos++
	return i, j
}

var _ gossip.Selection = (*MatchingSelection)(nil)
