// Package shardgossip is the sharded, parallel counterpart of the
// sequential engine in internal/gossip: S workers step one run of a
// decentralized protocol at 100k-machine / 10M-job scale, and the result is
// bit-identical at ANY shard count — including S=1, which replays the exact
// trajectory of gossip.Engine under the same schedule (see
// MatchingSelection).
//
// # Execution model
//
// Machines are assigned to S shards by a core.Partition (contiguous blocks).
// Time advances in epochs. Per epoch the coordinator derives a schedule — a
// random perfect matching of the machines — and hands every shard the
// sessions it owns (a session is owned by the lower shard index of its
// pair). Workers then execute their sessions: intra-shard sessions run
// lock-free inside the owner goroutine; cross-shard sessions acquire the two
// shards' mutexes in increasing shard index (a total order, so sessions
// cannot deadlock). A barrier closes the epoch: the coordinator reduces the
// shards' accumulators in shard order, refreshes the makespan cache, and
// notifies metrics, timeline and observers once per epoch.
//
// # Determinism argument
//
// The schedule is a pure function of (seed, epoch): the coordinator reseeds
// one generator with rng.DeriveSeed(seed, epoch) and draws one permutation,
// pairing perm[2t] with perm[2t+1]. No worker holds a generator, and no
// random draw ever happens on a worker goroutine, so goroutine interleaving
// cannot reach the schedule. Because the schedule is a matching, the
// sessions of one epoch touch pairwise-disjoint machine state; any
// interleaving of them produces the same post-epoch state, so placements,
// loads, moves and exchange counters are bit-identical for any shard count
// and any GOMAXPROCS. (The issue's alternative — per-worker
// rng.Substream(seed, shard, epoch) generators — was rejected: any
// shard-keyed draw that feeds the schedule would make results depend on S,
// breaking cross-shard-count identity.) The shard mutexes are redundant
// under a matching — they are kept because lock-ordered sessions are the
// discipline any future non-matching schedule must follow, and an
// uncontended lock costs nanoseconds.
//
// Span traces use per-shard sub-recorders (disjoint ID namespaces) merged in
// shard order, so the trace is deterministic for a fixed S regardless of
// scheduling; across different S the same session spans appear grouped by
// their owner shard.
package shardgossip

import (
	"fmt"
	"slices"
	"sync"

	"hetlb/internal/core"
	"hetlb/internal/gossip"
	"hetlb/internal/obs"
	"hetlb/internal/obs/span"
	"hetlb/internal/obs/timeline"
	"hetlb/internal/pairwise"
	"hetlb/internal/protocol"
	"hetlb/internal/rng"
)

// shardSpanCap bounds each shard's private span ring (one KindSession record
// per owned session; the ring's stride-free drop accounting keeps truncation
// honest on long runs).
const shardSpanCap = 1 << 14

// Metrics bundles the engine's obs instruments. All record paths are
// allocation-free; a nil *Metrics disables instrumentation with one branch
// per epoch.
type Metrics struct {
	// Epochs counts completed epochs; Sessions the pairwise sessions they
	// executed; Changed those that altered a pair's loads; Moves the job
	// migrations; Cross the sessions whose pair straddled two shards.
	Epochs, Sessions, Changed, Moves, Cross *obs.Counter
	// Makespan tracks Cmax after every epoch barrier.
	Makespan *obs.Gauge
	// EpochMoves is the distribution of migrations per epoch.
	EpochMoves *obs.Histogram
}

// NewMetrics registers the engine's instruments on a registry (idempotent on
// the same registry).
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		Epochs:     r.Counter("shardgossip_epochs_total", "epochs executed (one schedule barrier each)"),
		Sessions:   r.Counter("shardgossip_sessions_total", "pairwise balancing sessions executed"),
		Changed:    r.Counter("shardgossip_changed_sessions_total", "sessions that changed the pair's loads"),
		Moves:      r.Counter("shardgossip_moves_total", "job migrations across all sessions"),
		Cross:      r.Counter("shardgossip_cross_sessions_total", "sessions whose pair straddled two shards"),
		Makespan:   r.Gauge("shardgossip_makespan", "current Cmax of the schedule"),
		EpochMoves: r.Histogram("shardgossip_epoch_moves", "jobs migrated per epoch", obs.Pow2Bounds(24)),
	}
}

// Config parameterizes New.
type Config struct {
	// Seed keys the epoch schedules. Two engines with equal seeds execute
	// identical schedules at any shard count.
	Seed uint64
	// Shards is the number of worker shards S (default 1). It must not
	// exceed the machine count.
	Shards int
	// Metrics, when non-nil, receives per-epoch counters (build with
	// NewMetrics).
	Metrics *Metrics
	// Spans, when non-nil, receives one KindSession span per session
	// (recorded into per-shard sub-recorders, merged in shard order when a
	// Run finishes) and a KindRun close record per Run. Times are logical
	// session indices, never wall clock.
	Spans *span.Recorder
	// Timeline, when non-nil, receives one convergence point per epoch:
	// Time = index of the epoch's last session, Cmax, Imbalance =
	// Cmax − ⌊ΣC/m⌋, cumulative Moves.
	Timeline *timeline.Recorder
}

// shardState is the per-shard slice of the engine a worker owns during an
// epoch: its scratch, its owned-session list, and its epoch accumulators
// (reduced by the coordinator at the barrier, in shard order).
type shardState struct {
	mu      sync.Mutex
	scratch pairwise.Scratch
	sess    []int32 // indices into pairI/pairJ of the sessions this shard owns
	moves   int
	changed int
	spans   *span.Recorder // nil when span recording is off
}

// Engine drives one sharded simulation run. It is not safe for concurrent
// use; Step/Run must be called from one goroutine (the coordinator).
type Engine struct {
	proto protocol.Protocol
	model core.CostModel
	part  *core.Partition
	seed  uint64

	// Per-machine state. During an epoch each entry is written by at most
	// one worker (the owner of the machine's session — the schedule is a
	// matching), and the epoch barrier publishes all writes back to the
	// coordinator.
	jobs      [][]int // jobs[i] is machine i's job list, sorted ascending
	load      []core.Cost
	exchanges []int

	// Epoch schedule, written by the coordinator before workers start.
	gen   *rng.RNG // reseeded with DeriveSeed(seed, epoch) per epoch
	perm  []int
	pairI []int32
	pairJ []int32
	cross int // cross-shard sessions this epoch

	shards []shardState

	epoch     int
	sessions  int // total sessions executed; the Stepper's step count
	moves     int
	sumLoad   int64
	cachedMax core.Cost
	// noChange counts consecutive sessions in all-quiet epochs; it gates the
	// expensive full stability check, mirroring gossip.Engine.
	noChange int

	metrics   *Metrics
	spans     *span.Recorder
	runSpan   span.ID
	timeline  *timeline.Recorder
	observers []gossip.Observer
	// self is the engine pre-boxed as a gossip.Stepper so observer
	// notification does not box *Engine per epoch.
	self gossip.Stepper

	// Worker pool, live iff NumShards() > 1: worker s (s >= 1) blocks on
	// start[s]; the coordinator runs shard 0 inline. Signalling is channel
	// send + WaitGroup, so steady-state epochs allocate nothing.
	start  []chan struct{}
	quit   chan struct{}
	wg     sync.WaitGroup
	closed bool
}

// New builds a sharded engine from a complete initial assignment. The
// assignment is read once (not mutated and not retained): the engine owns
// per-machine job lists, like the message-passing runtime. Engines with
// Shards > 1 hold worker goroutines; call Close when done with them.
func New(p protocol.Protocol, initial *core.Assignment, cfg Config) (*Engine, error) {
	model := initial.Model()
	m := model.NumMachines()
	if m < 2 {
		return nil, fmt.Errorf("shardgossip: need at least 2 machines to form pairs, got %d", m)
	}
	if !initial.Complete() {
		return nil, fmt.Errorf("shardgossip: initial assignment must place every job")
	}
	shards := cfg.Shards
	if shards <= 0 {
		shards = 1
	}
	part, err := core.NewPartition(m, shards)
	if err != nil {
		return nil, err
	}

	n := model.NumJobs()
	e := &Engine{
		proto:     p,
		model:     model,
		part:      part,
		seed:      cfg.Seed,
		load:      make([]core.Cost, m),
		exchanges: make([]int, m),
		gen:       rng.New(cfg.Seed),
		perm:      make([]int, m),
		pairI:     make([]int32, m/2),
		pairJ:     make([]int32, m/2),
		shards:    make([]shardState, shards),
		metrics:   cfg.Metrics,
		spans:     cfg.Spans,
		timeline:  cfg.Timeline,
	}

	// Build the job lists with a counting pass over one exactly-sized
	// backing array — at 10M jobs, per-machine appends onto 100k separately
	// growing slices would dominate construction.
	counts := make([]int, m)
	for j := 0; j < n; j++ {
		counts[initial.MachineOf(j)]++
	}
	backing := make([]int, 0, n)
	e.jobs = make([][]int, m)
	start := 0
	for i, c := range counts {
		e.jobs[i] = backing[start : start : start+c]
		start += c
	}
	for j := 0; j < n; j++ {
		i := initial.MachineOf(j)
		e.jobs[i] = append(e.jobs[i], j) // increasing j: sorted by construction
	}
	var max core.Cost
	for i := 0; i < m; i++ {
		l := initial.Load(i)
		e.load[i] = l
		e.sumLoad += int64(l)
		if l > max {
			max = l
		}
	}
	e.cachedMax = max

	if e.spans != nil {
		e.runSpan = e.spans.NextID()
		ns := e.spans.ClaimNamespaces(shards)
		for s := range e.shards {
			e.shards[s].spans = span.NewSub(shardSpanCap, ns+uint64(s))
		}
	}
	e.self = e

	if shards > 1 {
		e.start = make([]chan struct{}, shards)
		e.quit = make(chan struct{})
		for s := 1; s < shards; s++ {
			e.start[s] = make(chan struct{}, 1)
			go e.worker(s)
		}
	}
	return e, nil
}

// Close stops the worker goroutines. It is idempotent and safe on engines
// with one shard (which have no workers). The engine must not be stepped
// after Close.
func (e *Engine) Close() {
	if e.quit != nil && !e.closed {
		e.closed = true
		close(e.quit)
	}
}

// Observe registers an observer, notified once per epoch at the barrier
// with i = j = -1 (see gossip.Observer).
func (e *Engine) Observe(o gossip.Observer) { e.observers = append(e.observers, o) }

// Partition returns the machine→shard partition.
func (e *Engine) Partition() *core.Partition { return e.part }

// Epochs returns the number of epochs executed so far.
func (e *Engine) Epochs() int { return e.epoch }

// Steps implements gossip.Stepper: the number of pairwise sessions executed.
func (e *Engine) Steps() int { return e.sessions }

// Moves implements gossip.Stepper.
func (e *Engine) Moves() int { return e.moves }

// Makespan implements gossip.Stepper, served from the barrier-refreshed
// cache (exact between epochs, which is the only time the coordinator runs).
func (e *Engine) Makespan() core.Cost { return e.cachedMax }

// TotalLoad implements gossip.Stepper.
func (e *Engine) TotalLoad() int64 { return e.sumLoad }

// Machines implements gossip.Stepper.
func (e *Engine) Machines() int { return e.part.NumMachines() }

// Exchanges implements gossip.Stepper (live slice; copy to snapshot).
func (e *Engine) Exchanges() []int { return e.exchanges }

var _ gossip.Stepper = (*Engine)(nil)

// worker is the loop of shard s (s >= 1): run the shard's sessions when
// signalled, report through the epoch WaitGroup, exit on Close.
func (e *Engine) worker(s int) {
	for {
		select {
		case <-e.quit:
			return
		case <-e.start[s]:
			e.runShard(s)
			e.wg.Done()
		}
	}
}

// StepEpoch executes one epoch — ⌊m/2⌋ sessions on a (seed, epoch)-keyed
// random perfect matching (odd m leaves one machine idle per epoch) — and
// reports whether any session changed its pair's loads.
func (e *Engine) StepEpoch() bool {
	e.prepareEpoch()
	if e.start != nil {
		e.wg.Add(len(e.shards) - 1)
		for s := 1; s < len(e.shards); s++ {
			e.start[s] <- struct{}{}
		}
		e.runShard(0)
		e.wg.Wait()
	} else {
		e.runShard(0)
	}
	return e.barrier()
}

// prepareEpoch draws the epoch's matching and distributes session ownership.
// Session t pairs perm[2t] with perm[2t+1]; the owner is the lower of the
// two shard indices. Ownership lists reuse their buffers, so warm epochs
// allocate nothing.
func (e *Engine) prepareEpoch() {
	e.gen.Reseed(rng.DeriveSeed(e.seed, uint64(e.epoch)))
	e.gen.PermInto(e.perm)
	for s := range e.shards {
		sh := &e.shards[s]
		sh.sess = sh.sess[:0]
		sh.moves = 0
		sh.changed = 0
	}
	e.cross = 0
	for t := range e.pairI {
		i, j := e.perm[2*t], e.perm[2*t+1]
		e.pairI[t] = int32(i)
		e.pairJ[t] = int32(j)
		si, sj := e.part.ShardOf(i), e.part.ShardOf(j)
		owner := si
		if sj < owner {
			owner = sj
		}
		if si != sj {
			e.cross++
		}
		e.shards[owner].sess = append(e.shards[owner].sess, int32(t))
	}
}

// runShard executes shard s's owned sessions in schedule order.
func (e *Engine) runShard(s int) {
	sh := &e.shards[s]
	for _, t := range sh.sess {
		e.session(s, int(t))
	}
}

// session executes pair t of the current epoch on behalf of owner shard s:
// merge the pair's sorted job lists into the shard's scratch, split with the
// protocol's kernel, sort the sides back into job order and write them back,
// updating loads and the shard's epoch accumulators. Cross-shard sessions
// take both shards' mutexes in increasing shard index. In steady state the
// only memory touched is the shard's scratch and the pair's job lists.
//
//hetlb:noalloc
func (e *Engine) session(s, t int) {
	sh := &e.shards[s]
	i, j := int(e.pairI[t]), int(e.pairJ[t])
	si, sj := e.part.ShardOf(i), e.part.ShardOf(j)
	if si != sj {
		lo, hi := si, sj
		if lo > hi {
			lo, hi = hi, lo
		}
		e.shards[lo].mu.Lock()
		e.shards[hi].mu.Lock()
		defer e.shards[lo].mu.Unlock()
		defer e.shards[hi].mu.Unlock()
	}

	sc := &sh.scratch
	sc.Union = pairwise.MergeSortedInto(sc.Union[:0], e.jobs[i], e.jobs[j])
	l1, l2 := e.load[i], e.load[j]
	toI, toJ := e.proto.SplitScratch(sc, i, j, sc.Union)
	// The split sides alias the scratch, which the session owns — sort them
	// in place to restore the increasing-index invariant of the job lists.
	slices.Sort(toI)
	slices.Sort(toJ)
	moved := pairwise.DiffCount(e.jobs[i], toI) + pairwise.DiffCount(e.jobs[j], toJ)
	var n1, n2 core.Cost
	for _, job := range toI {
		n1 += e.model.Cost(i, job)
	}
	for _, job := range toJ {
		n2 += e.model.Cost(j, job)
	}
	e.jobs[i] = append(e.jobs[i][:0], toI...)
	e.jobs[j] = append(e.jobs[j][:0], toJ...)
	e.load[i], e.load[j] = n1, n2
	e.exchanges[i]++
	e.exchanges[j]++
	sh.moves += moved
	changed := n1 != l1 || n2 != l2
	if changed {
		sh.changed++
	}
	if sh.spans != nil {
		var fl span.Flags
		if changed {
			fl = span.FlagCommitted
		}
		sh.spans.Append(span.Span{
			Parent: e.runSpan,
			Kind:   span.KindSession,
			Flags:  fl,
			A:      int32(i),
			B:      int32(j),
			Start:  int64(e.sessions + t),
			End:    int64(e.sessions + t),
			Value:  int64(moved),
		})
	}
}

// barrier closes the epoch on the coordinator: reduce the shards' epoch
// accumulators in shard order, refresh the makespan/total-load caches with
// one O(m) pass, and notify metrics, timeline and observers.
func (e *Engine) barrier() bool {
	np := len(e.pairI)
	moves, changed := 0, 0
	for s := range e.shards {
		sh := &e.shards[s]
		moves += sh.moves
		changed += sh.changed
	}
	e.moves += moves
	e.sessions += np
	e.epoch++

	var max core.Cost
	var sum int64
	for _, l := range e.load {
		if l > max {
			max = l
		}
		sum += int64(l)
	}
	e.cachedMax = max
	e.sumLoad = sum

	if changed == 0 {
		e.noChange += np
	} else {
		e.noChange = 0
	}

	if e.metrics != nil {
		e.metrics.Epochs.Inc()
		e.metrics.Sessions.Add(int64(np))
		e.metrics.Changed.Add(int64(changed))
		if moves > 0 {
			e.metrics.Moves.Add(int64(moves))
		}
		if e.cross > 0 {
			e.metrics.Cross.Add(int64(e.cross))
		}
		e.metrics.Makespan.Set(int64(max))
		e.metrics.EpochMoves.Observe(int64(moves))
	}
	if e.timeline != nil {
		e.timeline.Record(timeline.Point{
			Time:      int64(e.sessions - 1),
			Cmax:      int64(max),
			Imbalance: int64(max) - sum/int64(e.part.NumMachines()),
			Moves:     int64(e.moves),
		})
	}
	for _, o := range e.observers {
		o.OnStep(e.self, e.sessions-1, -1, -1)
	}
	return changed > 0
}

// Snapshot materializes the current placement as a fresh core.Assignment
// over the engine's model. It is O(n) and independent of the shard count.
func (e *Engine) Snapshot() *core.Assignment {
	machineOf := make([]int, e.model.NumJobs())
	for i := range e.jobs {
		for _, j := range e.jobs[i] {
			machineOf[j] = i
		}
	}
	a, err := core.FromMachineOf(e.model, machineOf)
	if err != nil {
		// Unreachable: the engine conserves the job set of its complete
		// initial assignment.
		panic(err)
	}
	return a
}

// Result summarizes a Run.
type Result struct {
	// Assignment is the final placement (a snapshot; the engine can keep
	// stepping afterwards).
	Assignment *core.Assignment
	// Epochs and Steps count epochs and pairwise sessions executed across
	// the engine's lifetime.
	Epochs int
	Steps  int
	// Converged is true if the run stopped at a verified stable schedule.
	Converged bool
	// FinalMakespan is Cmax when the run stopped.
	FinalMakespan core.Cost
}

// Run executes whole epochs until at least maxSessions sessions have run
// (the session budget of gossip.Engine.Run; the last epoch may overshoot by
// less than one epoch's worth). If detectStability is true the run stops
// early once the schedule is provably stable: after every window of quiet
// sessions, a full O(m²) stability check runs on a snapshot.
func (e *Engine) Run(maxSessions int, detectStability bool) Result {
	m := e.part.NumMachines()
	startSessions := e.sessions
	window := 2 * m
	if window < 8 {
		window = 8
	}
	for e.sessions-startSessions < maxSessions {
		e.StepEpoch()
		if detectStability && e.noChange >= window {
			e.noChange = 0
			if a := e.Snapshot(); protocol.Stable(e.proto, a) {
				e.finishSpans(startSessions, true)
				return Result{Assignment: a, Epochs: e.epoch, Steps: e.sessions, Converged: true, FinalMakespan: e.cachedMax}
			}
		}
	}
	a := e.Snapshot()
	converged := false
	if detectStability {
		converged = protocol.Stable(e.proto, a)
	}
	e.finishSpans(startSessions, converged)
	return Result{Assignment: a, Epochs: e.epoch, Steps: e.sessions, Converged: converged, FinalMakespan: e.cachedMax}
}

// finishSpans merges the per-shard session rings into the main recorder in
// shard order (then resets them for the next Run) and appends the run
// span's close record, mirroring gossip.Engine.closeRunSpan.
func (e *Engine) finishSpans(startSessions int, converged bool) {
	if e.spans == nil {
		return
	}
	for s := range e.shards {
		sub := e.shards[s].spans
		e.spans.Merge(sub)
		sub.Reset()
	}
	var fl span.Flags
	if converged {
		fl = span.FlagCommitted
	}
	e.spans.Append(span.Span{
		ID:     e.runSpan,
		Parent: e.spans.Root(),
		Kind:   span.KindRun,
		Flags:  fl,
		A:      -1,
		B:      -1,
		Start:  int64(startSessions),
		End:    int64(e.sessions),
		Value:  int64(e.cachedMax),
	})
}
