// Package shardgossip is the sharded, parallel counterpart of the
// sequential engine in internal/gossip: S workers step one run of a
// decentralized protocol at 100k-machine / 10M-job scale, and the result is
// bit-identical at ANY shard count — including S=1, which replays the exact
// trajectory of gossip.Engine under the same schedule (see
// MatchingSelection).
//
// # Execution model
//
// Machines are assigned to S shards by a core.Partition (contiguous blocks).
// Time advances in epochs. Each epoch's schedule — a random perfect matching
// of the machines — is drawn by a dedicated scheduler goroutine one epoch
// ahead (see "Pipelined schedule" below) and handed to every shard as the
// set of sessions it owns (a session is owned by the lower shard index of
// its pair). Workers then execute their sessions without long-lived locks:
// the matching guarantees the sessions of one epoch touch pairwise-disjoint
// machine state, so the session body (merge, kernel, sort, write-back) is
// lock-free; only the few-instruction update of a block's partial max/sum
// accumulators takes that block's mutex (see "Per-shard reductions"). A
// barrier closes the epoch: the coordinator reduces the S shards'
// accumulators in shard order — never rescanning the m loads — and notifies
// metrics, timeline and observers once per epoch.
//
// # Per-shard reductions
//
// Each shard maintains a partial sum and partial max of the loads in its
// machine block, updated in O(1) per load write under the block's mutex.
// Within an epoch every machine's load is written at most once (matching),
// so the partial max is exact unless the write that held the block max
// decreased it — that write observes old == partialMax and marks the block
// dirty. Dirty blocks are rescanned in parallel (each owner scans its own
// O(m/S) block) in a second fan-out before the barrier, so barrier() only
// folds S partials: the coordinator's former O(m) Amdahl term is gone.
//
// # Pipelined schedule
//
// The matching for epoch k is a pure function of (seed, k):
// Reseed(DeriveSeed(seed, k)) + one PermInto, pairing perm[2t] with
// perm[2t+1]. Because it depends on nothing else, epoch k+1's schedule is
// drawn by the scheduler goroutine while epoch k executes, double-buffered
// and handed over by channel, so the serial draw leaves the critical path.
// StepEpoch receives the pre-drawn front buffer, immediately recycles the
// previous buffer to the scheduler for epoch k+1, and only then starts the
// shards.
//
// # O(moved) sessions
//
// A session computes its pair's new loads from cost deltas of the jobs that
// actually moved (pairwise.AppendDiff of each side's arrivals; the union is
// conserved, so one side's arrivals are the other side's departures) instead
// of resumming the whole union — integer arithmetic, so the result is
// bit-identical to a full recomputation. A session that moved nothing skips
// the write-back and the partial updates entirely. On top of that, once a
// Run's stability check has *proved* the placement pairwise-stable, the
// engine latches a verified-stable fast path: every later session is known
// to be a kernel no-op and only performs the bookkeeping (exchange counters,
// spans), making converged epochs O(1) per session regardless of the mean
// jobs-per-machine.
//
// # Determinism argument
//
// The schedule is a pure function of (seed, epoch) drawn by the single
// scheduler goroutine; no worker holds a generator, and no random draw ever
// happens on a worker goroutine, so goroutine interleaving cannot reach the
// schedule. Because the schedule is a matching, the sessions of one epoch
// touch pairwise-disjoint machine state; any interleaving of them produces
// the same post-epoch state, so placements, loads, moves and exchange
// counters are bit-identical for any shard count and any GOMAXPROCS. (The
// issue's alternative — per-worker rng.Substream(seed, shard, epoch)
// generators — was rejected: any shard-keyed draw that feeds the schedule
// would make results depend on S, breaking cross-shard-count identity.) The
// partial max/sum accumulators are reduced in shard order and rescans
// recompute a block max from loads alone, so they cannot introduce
// interleaving dependence either.
//
// Span traces use per-shard sub-recorders (disjoint ID namespaces) merged in
// shard order, so the trace is deterministic for a fixed S regardless of
// scheduling; across different S the same session spans appear grouped by
// their owner shard.
package shardgossip

import (
	"fmt"
	"runtime"
	"slices"
	"sync"

	"hetlb/internal/core"
	"hetlb/internal/faults"
	"hetlb/internal/gossip"
	"hetlb/internal/obs"
	"hetlb/internal/obs/span"
	"hetlb/internal/obs/timeline"
	"hetlb/internal/pairwise"
	"hetlb/internal/protocol"
	"hetlb/internal/rng"
)

// shardSpanCap bounds each shard's private span ring (one KindSession record
// per owned session; the ring's stride-free drop accounting keeps truncation
// honest on long runs).
const shardSpanCap = 1 << 14

// Worker dispatch phases: after the sessions fan-out, a second fan-out
// rescans dirty blocks. The coordinator writes phase between barriers; the
// start-channel send/receive orders the write before any worker reads it.
const (
	phaseSessions = iota
	phaseRescan
)

// Metrics bundles the engine's obs instruments. All record paths are
// allocation-free; a nil *Metrics disables instrumentation with one branch
// per epoch.
type Metrics struct {
	// Epochs counts completed epochs; Sessions the pairwise sessions they
	// executed; Changed those that altered a pair's loads; Moves the job
	// migrations; Cross the sessions whose pair straddled two shards.
	Epochs, Sessions, Changed, Moves, Cross *obs.Counter
	// Makespan tracks Cmax after every epoch barrier.
	Makespan *obs.Gauge
	// EpochMoves is the distribution of migrations per epoch.
	EpochMoves *obs.Histogram
	// Crashes and Recoveries count fault-plan transitions applied; JobsLost
	// and JobsRehosted the jobs a LoseJobs crash removed / a recovery brought
	// back; Voided the sessions skipped because a participant was down.
	Crashes, Recoveries, JobsLost, JobsRehosted, Voided *obs.Counter
	// Down gauges the number of machines currently down.
	Down *obs.Gauge
}

// NewMetrics registers the engine's instruments on a registry (idempotent on
// the same registry).
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		Epochs:     r.Counter("shardgossip_epochs_total", "epochs executed (one schedule barrier each)"),
		Sessions:   r.Counter("shardgossip_sessions_total", "pairwise balancing sessions executed"),
		Changed:    r.Counter("shardgossip_changed_sessions_total", "sessions that changed the pair's loads"),
		Moves:      r.Counter("shardgossip_moves_total", "job migrations across all sessions"),
		Cross:      r.Counter("shardgossip_cross_sessions_total", "sessions whose pair straddled two shards"),
		Makespan:   r.Gauge("shardgossip_makespan", "current Cmax of the schedule"),
		EpochMoves: r.Histogram("shardgossip_epoch_moves", "jobs migrated per epoch", obs.Pow2Bounds(24)),

		Crashes:      r.Counter("shardgossip_crashes_total", "machine crashes applied from the fault plan"),
		Recoveries:   r.Counter("shardgossip_recoveries_total", "machine recoveries applied from the fault plan"),
		JobsLost:     r.Counter("shardgossip_jobs_lost_total", "jobs permanently lost to LoseJobs crashes"),
		JobsRehosted: r.Counter("shardgossip_jobs_rehosted_total", "frozen jobs re-hosted on machine recovery"),
		Voided:       r.Counter("shardgossip_voided_sessions_total", "sessions voided because a participant was down"),
		Down:         r.Gauge("shardgossip_down_machines", "machines currently down"),
	}
}

// Config parameterizes New.
type Config struct {
	// Seed keys the epoch schedules. Two engines with equal seeds execute
	// identical schedules at any shard count.
	Seed uint64
	// Shards is the number of worker shards S. Zero selects the automatic
	// heuristic AutoShards (GOMAXPROCS clamped to the machine count); the
	// choice never affects results, only parallelism. Explicit values must
	// lie in [1, m]; negative values are rejected.
	Shards int
	// Metrics, when non-nil, receives per-epoch counters (build with
	// NewMetrics).
	Metrics *Metrics
	// Spans, when non-nil, receives one KindSession span per session
	// (recorded into per-shard sub-recorders, merged in shard order when a
	// Run finishes) and a KindRun close record per Run. Times are logical
	// session indices, never wall clock.
	Spans *span.Recorder
	// Timeline, when non-nil, receives one convergence point per epoch:
	// Time = index of the epoch's last session, Cmax, Imbalance =
	// Cmax − ⌊ΣC/m⌋, cumulative Moves.
	Timeline *timeline.Recorder
	// Faults, when non-nil and non-zero, arms a crash/recovery schedule
	// against the run. Only message-free plans (no drop/dup/jitter) are
	// accepted — the epoch engine exchanges no messages. Virtual time is the
	// epoch index: Crash{At: k} takes the machine down for epochs
	// [At, RecoverAt). The fault-free path pays one nil-check per session;
	// see faults.go for crash semantics and the determinism argument.
	Faults *faults.Config
}

// AutoShards is the Shards: 0 heuristic: one shard per available core
// (runtime.GOMAXPROCS), clamped to [1, m]. More shards than cores only adds
// coordination overhead, and a shard needs at least one machine; results are
// identical for any choice, so the heuristic is free to track the hardware.
func AutoShards(m int) int {
	s := runtime.GOMAXPROCS(0)
	if s < 1 {
		s = 1
	}
	if s > m {
		s = m
	}
	return s
}

// schedule is one epoch's pair matching plus its precomputed distribution:
// session t pairs pairI[t] with pairJ[t]; sess[s] lists the sessions shard s
// owns; cross counts pairs straddling two shards. Two schedule buffers
// double-buffer between the coordinator (executing epoch k) and the
// scheduler goroutine (drawing epoch k+1).
type schedule struct {
	//hetlb:frozen
	pairI []int32
	//hetlb:frozen
	pairJ []int32
	//hetlb:frozen
	sess [][]int32
	//hetlb:frozen
	cross int
}

// shardState is the per-shard slice of the engine a worker owns during an
// epoch: its scratch, its epoch accumulators (moves/changed, reduced by the
// coordinator at the barrier in shard order), and the block's partial load
// reduction. The mutex guards ONLY partialSum/partialMax/dirty — see
// updatePartials for the locking invariant.
type shardState struct {
	mu      sync.Mutex
	scratch pairwise.Scratch
	moves   int
	changed int
	voided  int
	// partialSum and partialMax reduce the loads of this shard's machine
	// block; dirty marks that the block max may have decreased and the block
	// needs an O(m/S) rescan before the barrier (see package doc,
	// "Per-shard reductions").
	//hetlb:guarded
	partialSum int64
	//hetlb:guarded
	partialMax core.Cost
	//hetlb:guarded
	dirty bool
	spans *span.Recorder // nil when span recording is off
}

// Engine drives one sharded simulation run. It is not safe for concurrent
// use; Step/Run must be called from one goroutine (the coordinator).
type Engine struct {
	proto protocol.Protocol
	model core.CostModel
	part  *core.Partition
	seed  uint64

	// Per-machine state. During an epoch each entry is written by at most
	// one worker (the owner of the machine's session — the schedule is a
	// matching), and the epoch barrier publishes all writes back to the
	// coordinator.
	jobs      [][]int // jobs[i] is machine i's job list, sorted ascending
	load      []core.Cost
	exchanges []int

	// Pipelined schedule: cur is the front buffer (the epoch being
	// executed); the scheduler goroutine owns drawGen/perm and fills the
	// back buffer handed to it on drawKick, returning it on drawReady.
	//hetlb:frozen
	cur       *schedule
	drawKick  chan *schedule
	drawReady chan *schedule
	drawGen   *rng.RNG // owned by the scheduler goroutine after New
	perm      []int    // owned by the scheduler goroutine after New

	shards []shardState
	//hetlb:frozen
	phase int // worker dispatch phase for the current fan-out

	epoch     int
	sessions  int // total sessions executed; the Stepper's step count
	moves     int
	sumLoad   int64
	cachedMax core.Cost
	// noChange counts consecutive sessions in all-quiet epochs; it gates the
	// expensive full stability check, mirroring gossip.Engine.
	noChange int
	// stable latches once checkStable proves the placement pairwise-stable;
	// from then on sessions take the bookkeeping-only fast path.
	//hetlb:frozen
	stable bool
	// faults is the dynamic crash state of an armed fault plan; nil on a
	// fault-free engine (see faults.go).
	faults *faultState

	metrics   *Metrics
	spans     *span.Recorder
	runSpan   span.ID
	timeline  *timeline.Recorder
	observers []gossip.Observer
	// self is the engine pre-boxed as a gossip.Stepper so observer
	// notification does not box *Engine per epoch.
	self gossip.Stepper

	// Worker pool, live iff NumShards() > 1: worker s (s >= 1) blocks on
	// start[s]; the coordinator runs shard 0 inline. Signalling is channel
	// send + WaitGroup, so steady-state epochs allocate nothing.
	start  []chan struct{}
	quit   chan struct{}
	wg     sync.WaitGroup
	closed bool
}

// New builds a sharded engine from a complete initial assignment. The
// assignment is read once (not mutated and not retained): the engine owns
// per-machine job lists, like the message-passing runtime. Every engine owns
// at least the pipelined-schedule goroutine (plus workers when Shards > 1);
// call Close when done with it.
func New(p protocol.Protocol, initial *core.Assignment, cfg Config) (*Engine, error) {
	model := initial.Model()
	m := model.NumMachines()
	if m < 2 {
		return nil, fmt.Errorf("shardgossip: need at least 2 machines to form pairs, got %d", m)
	}
	if !initial.Complete() {
		return nil, fmt.Errorf("shardgossip: initial assignment must place every job")
	}
	shards := cfg.Shards
	if shards < 0 {
		return nil, fmt.Errorf("shardgossip: negative shard count %d (use 0 for the AutoShards heuristic)", shards)
	}
	if shards == 0 {
		shards = AutoShards(m)
	}
	part, err := core.NewPartition(m, shards)
	if err != nil {
		return nil, err
	}

	n := model.NumJobs()
	e := &Engine{
		proto:     p,
		model:     model,
		part:      part,
		seed:      cfg.Seed,
		load:      make([]core.Cost, m),
		exchanges: make([]int, m),
		drawKick:  make(chan *schedule, 2),
		drawReady: make(chan *schedule, 2),
		drawGen:   rng.New(cfg.Seed), // reseeded per draw with DeriveSeed(seed, epoch)
		perm:      make([]int, m),
		shards:    make([]shardState, shards),
		metrics:   cfg.Metrics,
		spans:     cfg.Spans,
		timeline:  cfg.Timeline,
	}
	if cfg.Faults != nil && !cfg.Faults.Zero() {
		fs, err := newFaultState(*cfg.Faults, m)
		if err != nil {
			return nil, err
		}
		e.faults = fs
	}

	// Build the job lists with a counting pass over one exactly-sized
	// backing array — at 10M jobs, per-machine appends onto 100k separately
	// growing slices would dominate construction.
	counts := make([]int, m)
	for j := 0; j < n; j++ {
		counts[initial.MachineOf(j)]++
	}
	backing := make([]int, 0, n)
	e.jobs = make([][]int, m)
	start := 0
	for i, c := range counts {
		e.jobs[i] = backing[start : start : start+c]
		start += c
	}
	for j := 0; j < n; j++ {
		i := initial.MachineOf(j)
		e.jobs[i] = append(e.jobs[i], j) // increasing j: sorted by construction
	}
	var max core.Cost
	for i := 0; i < m; i++ {
		l := initial.Load(i)
		e.load[i] = l
		e.sumLoad += int64(l)
		if l > max {
			max = l
		}
	}
	e.cachedMax = max
	// Seed the per-shard partial reductions from the initial loads.
	for s := range e.shards {
		sh := &e.shards[s]
		lo, hi := part.Bounds(s)
		for _, l := range e.load[lo:hi] {
			sh.partialSum += int64(l)
			if l > sh.partialMax {
				sh.partialMax = l
			}
		}
	}

	if e.spans != nil {
		e.runSpan = e.spans.NextID()
		ns := e.spans.ClaimNamespaces(shards)
		for s := range e.shards {
			e.shards[s].spans = span.NewSub(shardSpanCap, ns+uint64(s))
		}
	}
	e.self = e

	e.quit = make(chan struct{})
	if shards > 1 {
		e.start = make([]chan struct{}, shards)
		for s := 1; s < shards; s++ {
			e.start[s] = make(chan struct{}, 1)
			go e.worker(s)
		}
	}
	// Prime the pipeline: hand both buffers to the scheduler so epoch 0 is
	// drawn before the first StepEpoch and epoch 1 right behind it.
	go e.scheduler()
	for b := 0; b < 2; b++ {
		e.drawKick <- &schedule{
			pairI: make([]int32, m/2),
			pairJ: make([]int32, m/2),
			sess:  make([][]int32, shards),
		}
	}
	return e, nil
}

// Close stops the worker and scheduler goroutines. It is idempotent. The
// engine must not be stepped after Close.
func (e *Engine) Close() {
	if e.quit != nil && !e.closed {
		e.closed = true
		close(e.quit)
	}
}

// Observe registers an observer, notified once per epoch at the barrier
// with i = j = -1 (see gossip.Observer).
func (e *Engine) Observe(o gossip.Observer) { e.observers = append(e.observers, o) }

// Partition returns the machine→shard partition.
func (e *Engine) Partition() *core.Partition { return e.part }

// Epochs returns the number of epochs executed so far.
func (e *Engine) Epochs() int { return e.epoch }

// Stable reports whether a Run's stability check has proved the placement
// pairwise-stable, enabling the bookkeeping-only session fast path.
func (e *Engine) Stable() bool { return e.stable }

// Steps implements gossip.Stepper: the number of pairwise sessions executed.
func (e *Engine) Steps() int { return e.sessions }

// Moves implements gossip.Stepper.
func (e *Engine) Moves() int { return e.moves }

// Makespan implements gossip.Stepper, served from the barrier-refreshed
// cache (exact between epochs, which is the only time the coordinator runs).
func (e *Engine) Makespan() core.Cost { return e.cachedMax }

// TotalLoad implements gossip.Stepper.
func (e *Engine) TotalLoad() int64 { return e.sumLoad }

// Machines implements gossip.Stepper.
func (e *Engine) Machines() int { return e.part.NumMachines() }

// Exchanges implements gossip.Stepper (live slice; copy to snapshot).
func (e *Engine) Exchanges() []int { return e.exchanges }

var _ gossip.Stepper = (*Engine)(nil)

// worker is the loop of shard s (s >= 1): when signalled, run the current
// phase's work for the shard (sessions, or a dirty-block rescan), report
// through the epoch WaitGroup, exit on Close.
func (e *Engine) worker(s int) {
	for {
		select {
		case <-e.quit:
			return
		case <-e.start[s]:
			if e.phase == phaseRescan {
				e.rescanBlock(s)
			} else {
				e.runShard(s)
			}
			e.wg.Done()
		}
	}
}

// scheduler is the pipelined-draw goroutine: it receives a free schedule
// buffer, fills it with the matching for the next undrawn epoch — a pure
// function of (seed, epoch) — and hands it back. Epochs are drawn in order
// starting at 0; the coordinator consumes them in order, so the draw for
// epoch k+1 overlaps the execution of epoch k.
func (e *Engine) scheduler() {
	for epoch := uint64(0); ; epoch++ {
		var b *schedule
		select {
		case <-e.quit:
			return
		case b = <-e.drawKick:
		}
		e.drawSchedule(b, epoch)
		e.drawReady <- b // cap 2 ≥ buffers in flight: never blocks
	}
}

// drawSchedule fills b with epoch's matching and session-ownership lists.
// Session t pairs perm[2t] with perm[2t+1]; the owner is the lower of the
// two shard indices. Ownership lists reuse their buffers, so warm draws
// allocate nothing.
//
//hetlb:noalloc
func (e *Engine) drawSchedule(b *schedule, epoch uint64) {
	e.drawGen.Reseed(rng.DeriveSeed(e.seed, epoch))
	e.drawGen.PermInto(e.perm)
	for s := range b.sess {
		b.sess[s] = b.sess[s][:0]
	}
	b.cross = 0
	for t := range b.pairI {
		i, j := e.perm[2*t], e.perm[2*t+1]
		b.pairI[t] = int32(i)
		b.pairJ[t] = int32(j)
		si, sj := e.part.ShardOf(i), e.part.ShardOf(j)
		owner := si
		if sj < owner {
			owner = sj
		}
		if si != sj {
			b.cross++
		}
		b.sess[owner] = append(b.sess[owner], int32(t))
	}
}

// StepEpoch executes one epoch — ⌊m/2⌋ sessions on a (seed, epoch)-keyed
// random perfect matching (odd m leaves one machine idle per epoch) — and
// reports whether any session changed its pair's loads.
func (e *Engine) StepEpoch() bool {
	// Apply the fault plan's transitions first: the down-set is frozen for
	// the whole epoch, so every worker reads it without synchronization.
	if e.faults != nil {
		e.applyFaults()
	}
	// Take the pre-drawn schedule and immediately recycle the previous
	// buffer: the next epoch's draw proceeds concurrently with this one's
	// execution.
	sched := <-e.drawReady
	if e.cur != nil {
		e.drawKick <- e.cur
	}
	e.cur = sched
	for s := range e.shards {
		sh := &e.shards[s]
		sh.moves = 0
		sh.changed = 0
		sh.voided = 0
	}
	if e.start != nil {
		e.phase = phaseSessions
		e.wg.Add(len(e.shards) - 1)
		for s := 1; s < len(e.shards); s++ {
			e.start[s] <- struct{}{}
		}
		e.runShard(0)
		e.wg.Wait()
		// Phase B: owners of dirty blocks rescan them in parallel. The
		// barrier above ordered every load write before these reads.
		dirty := 0
		for s := 1; s < len(e.shards); s++ {
			if e.shards[s].dirty {
				dirty++
			}
		}
		if dirty > 0 {
			e.phase = phaseRescan
			e.wg.Add(dirty)
			for s := 1; s < len(e.shards); s++ {
				if e.shards[s].dirty {
					e.start[s] <- struct{}{}
				}
			}
		}
		if e.shards[0].dirty {
			e.rescanBlock(0)
		}
		if dirty > 0 {
			e.wg.Wait()
		}
	} else {
		e.runShard(0)
		if e.shards[0].dirty {
			e.rescanBlock(0)
		}
	}
	return e.barrier()
}

// runShard executes shard s's owned sessions in schedule order.
func (e *Engine) runShard(s int) {
	for _, t := range e.cur.sess[s] {
		e.session(s, int(t))
	}
}

// rescanBlock recomputes shard s's partial max from its O(m/S) block of
// loads. It runs only between the session barrier and the epoch barrier
// (phase B), when no session is writing loads, so it takes no lock.
func (e *Engine) rescanBlock(s int) {
	sh := &e.shards[s]
	lo, hi := e.part.Bounds(s)
	var max core.Cost
	for _, l := range e.load[lo:hi] {
		if l > max {
			max = l
		}
	}
	sh.partialMax = max //hetlb:concurrency-ok phase B rescan: the session barrier ordered every load write before this read, and only block s's owner rescans block s
	sh.dirty = false    //hetlb:concurrency-ok phase B rescan: only block s's owner clears its own dirty flag between the session and epoch barriers
}

// updatePartials folds one machine's load change into its block's partial
// reduction. Locking invariant: a session takes at most ONE shard mutex at a
// time (the block owning the touched machine), holds it for these few
// integer operations only, and never nests it with another — so no lock
// ordering is needed and deadlock is impossible by construction. The unlock
// is explicit, not deferred: this sits on the //hetlb:noalloc hot path and a
// defer would cost more than the critical section.
//
//hetlb:noalloc
func (e *Engine) updatePartials(machine int, old, new core.Cost) {
	sh := &e.shards[e.part.ShardOf(machine)]
	sh.mu.Lock()
	sh.partialSum += int64(new) - int64(old)
	// Within an epoch each machine's load is written once, so old is the
	// machine's epoch-start load and old <= partialMax always holds.
	if new > sh.partialMax {
		sh.partialMax = new
	} else if new < old && old == sh.partialMax {
		// The write that held the block max decreased it: the partial max
		// may now overestimate. The owner rescans the block in phase B.
		sh.dirty = true
	}
	sh.mu.Unlock()
}

// session executes pair t of the current epoch on behalf of owner shard s:
// merge the pair's sorted job lists into the shard's scratch, split with the
// protocol's kernel, sort the sides back into job order, and apply the
// result as O(moved) deltas — AppendDiff yields each side's arrivals (the
// other side's departures, since the union is conserved), whose costs adjust
// the pair's loads exactly. A session that moved nothing writes nothing. In
// steady state the only memory touched is the shard's scratch and the pair's
// job lists; once the engine is verified stable, the kernel is skipped
// entirely (see package doc).
//
//hetlb:noalloc
func (e *Engine) session(s, t int) {
	sh := &e.shards[s]
	i, j := int(e.cur.pairI[t]), int(e.cur.pairJ[t])
	if fs := e.faults; fs != nil && (fs.down[i] || fs.down[j]) {
		// Voided: a pair touching a down machine skips the session entirely
		// for this epoch — no exchange, no kernel, no load write. The
		// down-set is fixed at the epoch's start, so the voided set is a
		// pure function of (schedule, plan, epoch) at any shard count.
		sh.voided++
		if sh.spans != nil {
			sh.spans.Append(span.Span{
				Parent: e.runSpan,
				Kind:   span.KindSession,
				Tag:    span.TagCrash,
				Flags:  span.FlagAborted,
				A:      int32(i),
				B:      int32(j),
				Start:  int64(e.sessions + t),
				End:    int64(e.sessions + t),
			})
		}
		return
	}
	e.exchanges[i]++
	e.exchanges[j]++
	if e.stable {
		// Verified-stable fast path: the kernel is provably a no-op, so
		// only the bookkeeping of a no-change session remains.
		if sh.spans != nil {
			sh.spans.Append(span.Span{
				Parent: e.runSpan,
				Kind:   span.KindSession,
				A:      int32(i),
				B:      int32(j),
				Start:  int64(e.sessions + t),
				End:    int64(e.sessions + t),
			})
		}
		return
	}

	sc := &sh.scratch
	sc.Union = pairwise.MergeSortedInto(sc.Union[:0], e.jobs[i], e.jobs[j])
	l1, l2 := e.load[i], e.load[j]
	toI, toJ := e.proto.SplitScratch(sc, i, j, sc.Union)
	// The split sides alias the scratch, which the session owns — sort them
	// in place to restore the increasing-index invariant of the job lists.
	slices.Sort(toI)
	slices.Sort(toJ)
	sc.Diff1 = pairwise.AppendDiff(sc.Diff1[:0], e.jobs[i], toI)
	sc.Diff2 = pairwise.AppendDiff(sc.Diff2[:0], e.jobs[j], toJ)
	moved := len(sc.Diff1) + len(sc.Diff2)
	changed := false
	if moved > 0 {
		// Arrivals at i departed from j and vice versa: adjust both loads
		// by exactly the terms that differ from the previous sums. Integer
		// costs make the result bit-identical to a full recomputation.
		var d1, d2 core.Cost
		for _, job := range sc.Diff1 {
			d1 += e.model.Cost(i, job)
			d2 -= e.model.Cost(j, job)
		}
		for _, job := range sc.Diff2 {
			d2 += e.model.Cost(j, job)
			d1 -= e.model.Cost(i, job)
		}
		n1, n2 := l1+d1, l2+d2
		e.jobs[i] = append(e.jobs[i][:0], toI...)
		e.jobs[j] = append(e.jobs[j][:0], toJ...)
		e.load[i], e.load[j] = n1, n2
		e.updatePartials(i, l1, n1)
		e.updatePartials(j, l2, n2)
		sh.moves += moved
		changed = n1 != l1 || n2 != l2
		if changed {
			sh.changed++
		}
	}
	if sh.spans != nil {
		var fl span.Flags
		if changed {
			fl = span.FlagCommitted
		}
		sh.spans.Append(span.Span{
			Parent: e.runSpan,
			Kind:   span.KindSession,
			Flags:  fl,
			A:      int32(i),
			B:      int32(j),
			Start:  int64(e.sessions + t),
			End:    int64(e.sessions + t),
			Value:  int64(moved),
		})
	}
}

// barrier closes the epoch on the coordinator: reduce the shards' epoch
// accumulators and partial load reductions in shard order — S values, never
// the m loads — and notify metrics, timeline and observers.
func (e *Engine) barrier() bool {
	np := len(e.cur.pairI)
	moves, changed := 0, 0
	var max core.Cost
	var sum int64
	for s := range e.shards {
		sh := &e.shards[s]
		moves += sh.moves
		changed += sh.changed
		if sh.partialMax > max {
			max = sh.partialMax
		}
		sum += sh.partialSum
	}
	e.moves += moves
	e.sessions += np
	e.epoch++
	e.cachedMax = max
	e.sumLoad = sum

	if changed == 0 {
		e.noChange += np
	} else {
		e.noChange = 0
	}

	if e.faults != nil {
		voided := 0
		for s := range e.shards {
			voided += e.shards[s].voided
		}
		e.faults.voided += voided
		if e.metrics != nil && voided > 0 {
			e.metrics.Voided.Add(int64(voided))
		}
	}

	if e.metrics != nil {
		e.metrics.Epochs.Inc()
		e.metrics.Sessions.Add(int64(np))
		e.metrics.Changed.Add(int64(changed))
		if moves > 0 {
			e.metrics.Moves.Add(int64(moves))
		}
		if e.cur.cross > 0 {
			e.metrics.Cross.Add(int64(e.cur.cross))
		}
		e.metrics.Makespan.Set(int64(max))
		e.metrics.EpochMoves.Observe(int64(moves))
	}
	if e.timeline != nil {
		e.timeline.Record(timeline.Point{
			Time:      int64(e.sessions - 1),
			Cmax:      int64(max),
			Imbalance: int64(max) - sum/int64(e.part.NumMachines()),
			Moves:     int64(e.moves),
		})
	}
	for _, o := range e.observers {
		o.OnStep(e.self, e.sessions-1, -1, -1)
	}
	return changed > 0
}

// Snapshot materializes the current placement as a fresh core.Assignment
// over the engine's model. It is O(n) and independent of the shard count.
// Jobs lost to a LoseJobs crash are unassigned in the snapshot (use Lost
// for the ledger); fault-free snapshots are always complete.
func (e *Engine) Snapshot() *core.Assignment {
	machineOf := make([]int, e.model.NumJobs())
	for j := range machineOf {
		machineOf[j] = -1
	}
	for i := range e.jobs {
		for _, j := range e.jobs[i] {
			machineOf[j] = i
		}
	}
	a, err := core.FromMachineOf(e.model, machineOf)
	if err != nil {
		// Unreachable: the engine conserves the job set of its complete
		// initial assignment (minus the lost ledger, which FromMachineOf
		// leaves unassigned).
		panic(err)
	}
	return a
}

// checkStable proves or refutes pairwise stability of the current placement
// without cloning assignments: for every pair (i, j), the protocol kernel
// applied to the merged union must reproduce the current sides exactly. It
// is the scratch-based equivalent of protocol.Stable on a Snapshot (same
// O(m²) pair scan; kernels are deterministic and idempotent). On success the
// engine latches the verified-stable fast path — sound because a stable
// placement makes every future session a kernel no-op, so the state can
// never change again.
func (e *Engine) checkStable() bool {
	if e.stable {
		return true
	}
	m := e.part.NumMachines()
	sc := &e.shards[0].scratch
	// Down machines are excluded: they participate in no session, so
	// stability among the up machines is all a latch may rely on. Any later
	// crash or recovery re-opens the latch (see applyFaults).
	var down []bool
	if e.faults != nil {
		down = e.faults.down
	}
	for i := 0; i < m; i++ {
		if down != nil && down[i] {
			continue
		}
		for j := i + 1; j < m; j++ {
			if down != nil && down[j] {
				continue
			}
			sc.Union = pairwise.MergeSortedInto(sc.Union[:0], e.jobs[i], e.jobs[j])
			toI, toJ := e.proto.SplitScratch(sc, i, j, sc.Union)
			slices.Sort(toI)
			slices.Sort(toJ)
			if !slices.Equal(toI, e.jobs[i]) || !slices.Equal(toJ, e.jobs[j]) {
				return false
			}
		}
	}
	e.stable = true
	return true
}

// Result summarizes a Run.
type Result struct {
	// Assignment is the final placement (a snapshot; the engine can keep
	// stepping afterwards).
	Assignment *core.Assignment
	// Epochs and Steps count epochs and pairwise sessions executed across
	// the engine's lifetime.
	Epochs int
	Steps  int
	// Converged is true if the run stopped at a verified stable schedule
	// (stability is checked among the up machines only when a fault plan is
	// armed).
	Converged bool
	// FinalMakespan is Cmax when the run stopped.
	FinalMakespan core.Cost
	// Crashes, Recoveries, JobsLost, JobsRehosted and Voided summarize the
	// armed fault plan's effect across the engine's lifetime (all zero
	// without one): transitions applied, jobs lost / re-hosted, and sessions
	// voided because a participant was down.
	Crashes, Recoveries    int
	JobsLost, JobsRehosted int
	Voided                 int
}

// Run executes whole epochs until at least maxSessions sessions have run
// (the session budget of gossip.Engine.Run; the last epoch may overshoot by
// less than one epoch's worth). If detectStability is true the run stops
// early once the schedule is provably stable: after every window of quiet
// sessions, the full O(m²) stability check runs (and, on success, latches
// the verified-stable session fast path for any further stepping).
func (e *Engine) Run(maxSessions int, detectStability bool) Result {
	m := e.part.NumMachines()
	startSessions := e.sessions
	window := 2 * m
	if window < 8 {
		window = 8
	}
	for e.sessions-startSessions < maxSessions {
		e.StepEpoch()
		if detectStability && e.noChange >= window {
			e.noChange = 0
			if e.checkStable() {
				a := e.Snapshot()
				e.finishSpans(startSessions, true)
				return e.makeResult(a, true)
			}
		}
	}
	a := e.Snapshot()
	converged := false
	if detectStability {
		converged = e.checkStable()
	}
	e.finishSpans(startSessions, converged)
	return e.makeResult(a, converged)
}

// makeResult assembles a Run's Result, folding in the fault plan's
// degradation counters when one is armed.
func (e *Engine) makeResult(a *core.Assignment, converged bool) Result {
	r := Result{Assignment: a, Epochs: e.epoch, Steps: e.sessions, Converged: converged, FinalMakespan: e.cachedMax}
	if fs := e.faults; fs != nil {
		r.Crashes, r.Recoveries = fs.crashes, fs.recoveries
		r.JobsLost, r.JobsRehosted = fs.jobsLost, fs.jobsRehosted
		r.Voided = fs.voided
	}
	return r
}

// finishSpans merges the per-shard session rings into the main recorder in
// shard order (then resets them for the next Run) and appends the run
// span's close record, mirroring gossip.Engine.closeRunSpan.
func (e *Engine) finishSpans(startSessions int, converged bool) {
	if e.spans == nil {
		return
	}
	for s := range e.shards {
		sub := e.shards[s].spans
		e.spans.Merge(sub)
		sub.Reset()
	}
	var fl span.Flags
	if converged {
		fl = span.FlagCommitted
	}
	e.spans.Append(span.Span{
		ID:     e.runSpan,
		Parent: e.spans.Root(),
		Kind:   span.KindRun,
		Flags:  fl,
		A:      -1,
		B:      -1,
		Start:  int64(startSessions),
		End:    int64(e.sessions),
		Value:  int64(e.cachedMax),
	})
}
