package shardgossip

import (
	"testing"

	"hetlb/internal/core"
	"hetlb/internal/obs"
	"hetlb/internal/obs/span"
	"hetlb/internal/obs/timeline"
	"hetlb/internal/protocol"
	"hetlb/internal/rng"
	"hetlb/internal/workload"
)

// TestEngineMetrics checks the per-epoch instrument contract: counters
// reconcile with the engine's own counters, and the registry survives being
// wired into a second engine.
func TestEngineMetrics(t *testing.T) {
	gen := rng.New(400)
	id := workload.UniformIdentical(gen, 10, 80, 1, 30)
	reg := obs.NewRegistry()
	met := NewMetrics(reg)
	e, err := New(protocol.SameCost{Model: id}, core.AllOnMachine(id, 0), Config{Seed: 6, Shards: 3, Metrics: met})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	const epochs = 40
	for k := 0; k < epochs; k++ {
		e.StepEpoch()
	}
	if got := met.Epochs.Value(); got != epochs {
		t.Fatalf("shardgossip_epochs_total = %d, want %d", got, epochs)
	}
	if got := met.Sessions.Value(); got != int64(e.Steps()) {
		t.Fatalf("shardgossip_sessions_total = %d, want %d", got, e.Steps())
	}
	if got := met.Moves.Value(); got != int64(e.Moves()) {
		t.Fatalf("shardgossip_moves_total = %d, want %d", got, e.Moves())
	}
	if got := met.Makespan.Value(); got != int64(e.Makespan()) {
		t.Fatalf("shardgossip_makespan = %d, want %d", got, e.Makespan())
	}
	if got := met.EpochMoves.Count(); got != epochs {
		t.Fatalf("shardgossip_epoch_moves count = %d, want %d", got, epochs)
	}
	if got := met.EpochMoves.Sum(); got != int64(e.Moves()) {
		t.Fatalf("shardgossip_epoch_moves sum = %d, want %d", got, e.Moves())
	}
	// Three shards over ten machines must see some cross-shard sessions in
	// 40 random matchings.
	if met.Cross.Value() == 0 {
		t.Fatal("no cross-shard sessions counted")
	}
	// Re-registration on the same registry must accumulate, not panic.
	if NewMetrics(reg).Epochs.Value() != epochs {
		t.Fatal("metrics registry not reusable")
	}
}

// TestSpansMergedInShardOrder checks the trace contract of a sharded Run:
// every session span lands in the main recorder grouped by owner shard
// (namespaced IDs, non-decreasing shard index), parented to the run span
// whose close record ends the trace, and the session count reconciles with
// Steps(). Reading the spans mid-run would race the workers; the contract is
// that they appear at Run's end.
func TestSpansMergedInShardOrder(t *testing.T) {
	gen := rng.New(401)
	id := workload.UniformIdentical(gen, 12, 96, 1, 25)
	rec := span.NewRecorder(1 << 15)
	const shards = 4
	e, err := New(protocol.SameCost{Model: id}, core.RoundRobin(id), Config{Seed: 8, Shards: shards, Spans: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	const budget = 20 * (12 / 2)
	res := e.Run(budget, false)

	spans := rec.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans recorded")
	}
	last := spans[len(spans)-1]
	if last.Kind != span.KindRun {
		t.Fatalf("trace does not end with the run close record, got kind %v", last.Kind)
	}
	if last.Start != 0 || last.End != int64(res.Steps) {
		t.Fatalf("run span extent [%d, %d], want [0, %d]", last.Start, last.End, res.Steps)
	}
	sessions := 0
	prevShard := uint64(0)
	for _, s := range spans[:len(spans)-1] {
		if s.Kind != span.KindSession {
			t.Fatalf("unexpected span kind %v in session trace", s.Kind)
		}
		if s.Parent != last.ID {
			t.Fatal("session span not parented to the run span")
		}
		// Sub-recorder IDs carry their namespace in the high bits; merging in
		// shard order means the namespace sequence is non-decreasing.
		ns := uint64(s.ID) >> 32
		if ns < prevShard {
			t.Fatalf("session spans not merged in shard order: namespace %d after %d", ns, prevShard)
		}
		prevShard = ns
		sessions++
	}
	if sessions != res.Steps {
		t.Fatalf("trace holds %d session spans, want %d", sessions, res.Steps)
	}
}

// TestTimelinePerEpoch checks the convergence timeline: one point per epoch,
// Time = the epoch's last session index, monotone Moves, and an imbalance
// consistent with Cmax and the mean load.
func TestTimelinePerEpoch(t *testing.T) {
	gen := rng.New(402)
	id := workload.UniformIdentical(gen, 8, 64, 1, 20)
	tl := timeline.NewRecorder(256)
	e, err := New(protocol.SameCost{Model: id}, core.AllOnMachine(id, 0), Config{Seed: 11, Shards: 2, Timeline: tl})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	const epochs = 25
	for k := 0; k < epochs; k++ {
		e.StepEpoch()
	}
	pts := tl.Points()
	if len(pts) != epochs {
		t.Fatalf("timeline holds %d points, want %d", len(pts), epochs)
	}
	np := int64(8 / 2)
	var prevMoves int64
	for k, p := range pts {
		if want := int64(k+1)*np - 1; p.Time != want {
			t.Fatalf("point %d at time %d, want %d", k, p.Time, want)
		}
		if p.Moves < prevMoves {
			t.Fatal("timeline moves decreased")
		}
		prevMoves = p.Moves
		if p.Imbalance != p.Cmax-int64(e.TotalLoad())/8 {
			t.Fatalf("point %d imbalance %d inconsistent", k, p.Imbalance)
		}
	}
}
