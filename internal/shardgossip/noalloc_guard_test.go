package shardgossip

import (
	"fmt"
	"testing"

	"hetlb/internal/core"
	"hetlb/internal/protocol"
	"hetlb/internal/rng"
	"hetlb/internal/workload"
)

// TestStepEpochNoalloc is the dynamic half of the //hetlb:noalloc contract
// on the per-worker session path (the static half is hetlbvet's noalloc
// analyzer): once scratches, ownership lists and job buffers are at their
// high-water capacities, a whole epoch — schedule draw, worker fan-out,
// every session, barrier reduction — must not allocate. PR-3's steady-state
// guarantees survive the sharded refactor only if this holds at S > 1 too,
// where the epoch crosses goroutines.
func TestStepEpochNoalloc(t *testing.T) {
	gen := rng.New(300)
	ty := workload.UniformTyped(gen, 64, 512, 3, 1, 50)
	tc := workload.UniformTwoCluster(gen, 32, 32, 512, 1, 50)
	cases := []struct {
		name  string
		model core.CostModel
		proto protocol.Protocol
	}{
		{"typed-mjtb", ty, protocol.MJTB{Model: ty}},
		{"twocluster-dlb2c", tc, protocol.DLB2C{Model: tc}},
	}
	for _, c := range cases {
		for _, shards := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s-s%d", c.name, shards), func(t *testing.T) {
				e, err := New(c.proto, core.RoundRobin(c.model), Config{Seed: 5, Shards: shards})
				if err != nil {
					t.Fatal(err)
				}
				defer e.Close()
				// Warm far past the measurement window so a late high-water
				// bump cannot land inside it.
				for epoch := 0; epoch < 50; epoch++ {
					e.StepEpoch()
				}
				if allocs := testing.AllocsPerRun(100, func() { e.StepEpoch() }); allocs != 0 {
					t.Errorf("StepEpoch (%s, shards=%d): %.3f allocs/run, want 0", c.name, shards, allocs)
				}
			})
		}
	}
}
