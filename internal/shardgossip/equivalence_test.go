package shardgossip

import (
	"slices"
	"testing"

	"hetlb/internal/core"
	"hetlb/internal/gossip"
	"hetlb/internal/protocol"
	"hetlb/internal/rng"
	"hetlb/internal/workload"
)

// TestS1MatchesSequentialEngine pins the refactor's central claim: a
// one-shard engine replays gossip.Engine exactly. With MatchingSelection
// feeding the sequential engine the sharded schedule, every epoch must agree
// on steps, moves, makespan, total load, per-machine exchange counts and the
// full placement — step for step, not just at the end.
func TestS1MatchesSequentialEngine(t *testing.T) {
	gen := rng.New(100)
	ty := workload.UniformTyped(gen, 9, 120, 3, 1, 50)
	tc := workload.UniformTwoCluster(gen, 5, 4, 110, 1, 40)
	cases := []struct {
		name  string
		model core.CostModel
		proto protocol.Protocol
	}{
		{"typed-mjtb", ty, protocol.MJTB{Model: ty}},
		{"twocluster-dlb2c", tc, protocol.DLB2C{Model: tc}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			const seed = 7
			m := c.model.NumMachines()
			ref := gossip.New(c.proto, core.RoundRobin(c.model), gossip.Config{
				// The engine seed is irrelevant: MatchingSelection ignores the
				// engine's generator by design.
				Seed:      12345,
				Selection: NewMatchingSelection(seed, m),
			})
			sh, err := New(c.proto, core.RoundRobin(c.model), Config{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			defer sh.Close()

			for epoch := 0; epoch < 60; epoch++ {
				for s := 0; s < m/2; s++ {
					ref.Step()
				}
				sh.StepEpoch()
				if sh.Steps() != ref.Steps() {
					t.Fatalf("epoch %d: steps %d != %d", epoch, sh.Steps(), ref.Steps())
				}
				if sh.Moves() != ref.Moves() {
					t.Fatalf("epoch %d: moves %d != %d", epoch, sh.Moves(), ref.Moves())
				}
				if sh.Makespan() != ref.Makespan() {
					t.Fatalf("epoch %d: makespan %d != %d", epoch, sh.Makespan(), ref.Makespan())
				}
				if sh.TotalLoad() != ref.TotalLoad() {
					t.Fatalf("epoch %d: total load %d != %d", epoch, sh.TotalLoad(), ref.TotalLoad())
				}
				if !slices.Equal(sh.Exchanges(), ref.Exchanges()) {
					t.Fatalf("epoch %d: exchange counts diverged", epoch)
				}
				if snap := sh.Snapshot(); !snap.Equal(ref.Assignment()) {
					t.Fatalf("epoch %d: placements diverged", epoch)
				}
			}
		})
	}
}

// TestRunMatchesSequentialRun checks the whole-run surface too: same final
// makespan and placement for a session budget that is a whole number of
// epochs.
func TestRunMatchesSequentialRun(t *testing.T) {
	gen := rng.New(101)
	tc := workload.UniformTwoCluster(gen, 6, 4, 100, 1, 60)
	m := tc.NumMachines()
	const seed, epochs = 13, 50
	budget := epochs * (m / 2)

	ref := gossip.New(protocol.DLB2C{Model: tc}, core.RoundRobin(tc), gossip.Config{
		Selection: NewMatchingSelection(seed, m),
	})
	refRes := ref.Run(budget, false)

	sh, err := New(protocol.DLB2C{Model: tc}, core.RoundRobin(tc), Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	res := sh.Run(budget, false)
	if res.Steps != refRes.Steps {
		t.Fatalf("steps %d != %d", res.Steps, refRes.Steps)
	}
	if res.FinalMakespan != refRes.FinalMakespan {
		t.Fatalf("makespan %d != %d", res.FinalMakespan, refRes.FinalMakespan)
	}
	if !res.Assignment.Equal(ref.Assignment()) {
		t.Fatal("final placements diverged")
	}
	if res.Epochs != epochs {
		t.Fatalf("epochs = %d, want %d", res.Epochs, epochs)
	}
}

// TestRunDetectsStability mirrors the sequential engine's convergence test:
// OJTB on one job type must converge, the result must verify as stable, and
// the snapshot must agree with the reported makespan.
func TestRunDetectsStability(t *testing.T) {
	ty, _ := core.NewTyped([][]core.Cost{{2}, {3}, {5}, {4}}, make([]int, 12))
	p := protocol.OJTB{Model: ty}
	e, err := New(p, core.AllOnMachine(ty, 2), Config{Seed: 1, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	res := e.Run(20000, true)
	if !res.Converged {
		t.Fatal("sharded engine did not detect convergence")
	}
	if !protocol.Stable(p, res.Assignment) {
		t.Fatal("reported converged but not stable")
	}
	if res.FinalMakespan != res.Assignment.Makespan() {
		t.Fatal("result makespan inconsistent with assignment")
	}
}

// TestNewRejectsBadInputs covers the constructor's error paths and Close's
// idempotence.
func TestNewRejectsBadInputs(t *testing.T) {
	ty, _ := core.NewTyped([][]core.Cost{{2}}, make([]int, 4))
	if _, err := New(protocol.OJTB{Model: ty}, core.RoundRobin(ty), Config{}); err == nil {
		t.Fatal("accepted a single-machine instance")
	}

	ty2, _ := core.NewTyped([][]core.Cost{{2}, {3}}, make([]int, 4))
	incomplete := core.NewAssignment(ty2)
	if _, err := New(protocol.OJTB{Model: ty2}, incomplete, Config{}); err == nil {
		t.Fatal("accepted an incomplete assignment")
	}
	if _, err := New(protocol.OJTB{Model: ty2}, core.RoundRobin(ty2), Config{Shards: 3}); err == nil {
		t.Fatal("accepted more shards than machines")
	}
	if _, err := New(protocol.OJTB{Model: ty2}, core.RoundRobin(ty2), Config{Shards: -1}); err == nil {
		t.Fatal("accepted a negative shard count")
	}

	e, err := New(protocol.OJTB{Model: ty2}, core.RoundRobin(ty2), Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	e.Close()
	e.Close() // must be idempotent
}

// TestObserverSeesEpochs checks the Stepper-based observer contract on the
// sharded engine: one notification per epoch, step = the epoch's last
// session index, i = j = -1.
func TestObserverSeesEpochs(t *testing.T) {
	gen := rng.New(102)
	id := workload.UniformIdentical(gen, 8, 64, 1, 20)
	e, err := New(protocol.SameCost{Model: id}, core.RoundRobin(id), Config{Seed: 3, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	var steps []int
	e.Observe(observerFunc(func(o gossip.Stepper, step, i, j int) {
		if i != -1 || j != -1 {
			t.Errorf("epoch notification carried pair (%d, %d), want (-1, -1)", i, j)
		}
		if o.Makespan() != e.Makespan() || o.Machines() != 8 {
			t.Error("observer Stepper disagrees with engine")
		}
		steps = append(steps, step)
	}))
	const epochs = 10
	for k := 0; k < epochs; k++ {
		e.StepEpoch()
	}
	if len(steps) != epochs {
		t.Fatalf("observer saw %d epochs, want %d", len(steps), epochs)
	}
	np := 8 / 2
	for k, s := range steps {
		if want := (k+1)*np - 1; s != want {
			t.Fatalf("epoch %d reported step %d, want %d", k, s, want)
		}
	}
}

type observerFunc func(e gossip.Stepper, step, i, j int)

func (f observerFunc) OnStep(e gossip.Stepper, step, i, j int) { f(e, step, i, j) }
