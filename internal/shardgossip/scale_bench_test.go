package shardgossip

import (
	"fmt"
	"testing"

	"hetlb/internal/core"
	"hetlb/internal/faults"
	"hetlb/internal/protocol"
	"hetlb/internal/rng"
	"hetlb/internal/workload"
)

// benchSharded measures one epoch of the sharded engine — pipelined schedule
// handoff, ⌊m/2⌋ sessions, partial-reduction barrier — per protocol family
// and shard count. Results are recorded in BENCH_8.json; sessions/sec is the
// headline metric (one session is one pairwise exchange, the unit the paper
// counts).
func benchSharded(b *testing.B, m, n int) {
	gen := rng.New(500)
	ty := workload.UniformTyped(gen, m, n, 5, 1, 100)
	tc := workload.UniformTwoCluster(gen, m/2, m-m/2, n, 1, 100)
	cases := []struct {
		name  string
		model core.CostModel
		proto protocol.Protocol
	}{
		{"typed", ty, protocol.MJTB{Model: ty}},
		{"twocluster", tc, protocol.DLB2C{Model: tc}},
	}
	for _, c := range cases {
		for _, shards := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/shards=%d", c.name, shards), func(b *testing.B) {
				e, err := New(c.proto, core.RoundRobin(c.model), Config{Seed: 1, Shards: shards})
				if err != nil {
					b.Fatal(err)
				}
				defer e.Close()
				// Two warm epochs bring scratches and job buffers to their
				// high-water capacities; the measured epochs are steady-state.
				e.StepEpoch()
				e.StepEpoch()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					e.StepEpoch()
				}
				b.StopTimer()
				sessions := float64(m/2) * float64(b.N)
				b.ReportMetric(sessions/b.Elapsed().Seconds(), "sessions/sec")
			})
		}
	}
}

// BenchmarkShardedStep is the headline scale benchmark: m = 100k machines,
// n = 10M jobs, typed and two-cluster, shards ∈ {1, 2, 4, 8}. One op is one
// epoch (50 000 sessions). It needs ~1 GB and minutes of wall clock, so it
// is skipped under -short and run via `make bench-scale`.
func BenchmarkShardedStep(b *testing.B) {
	if testing.Short() {
		b.Skip("100k/10M scale benchmark skipped in short mode")
	}
	benchSharded(b, 100_000, 10_000_000)
}

// BenchmarkShardedStepScale is the CI-sized guard variant (m = 2048,
// n = 16384) gated by benchguard against BENCH_8.json's "guard" column —
// same code path and sub-benchmark shape, small enough for every CI run.
func BenchmarkShardedStepScale(b *testing.B) {
	benchSharded(b, 2048, 16_384)
}

// BenchmarkShardedStepFaults prices the crash-tolerant path at the CI guard
// size (m = 2048, n = 16384, typed, shards = 4). "armed" runs with a fault
// plan whose crashes never fire inside the measured window: every session
// pays the down-set endpoint check and every epoch the transition scan, so
// the delta against the fault-free guard column is the whole cost of arming
// a plan. "churn" fires a crash or recovery every couple of epochs
// (horizon 4096 — longer -benchtime runs drain the plan and decay toward
// the armed number), adding void bookkeeping, loss escrow and latch
// invalidation. Recorded in BENCH_9.json next to the fault-free guard
// column, which benchguard gates against BENCH_8's within 5%.
func BenchmarkShardedStepFaults(b *testing.B) {
	const m, n = 2048, 16_384
	plans := []struct {
		name string
		plan []faults.Crash
	}{
		{"armed", []faults.Crash{
			{Machine: 0, At: 1 << 40, RecoverAt: 1<<40 + 1},
			{Machine: 1, At: 1 << 40, RecoverAt: 1<<40 + 1},
		}},
		{"churn", faults.RandomCrashes(77, m, 4096, 2048, 64, 0.25)},
	}
	for _, p := range plans {
		b.Run(fmt.Sprintf("%s/shards=4", p.name), func(b *testing.B) {
			gen := rng.New(500)
			ty := workload.UniformTyped(gen, m, n, 5, 1, 100)
			e, err := New(protocol.MJTB{Model: ty}, core.RoundRobin(ty),
				Config{Seed: 1, Shards: 4, Faults: &faults.Config{Crashes: p.plan}})
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			e.StepEpoch()
			e.StepEpoch()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.StepEpoch()
			}
			b.StopTimer()
			sessions := float64(m/2) * float64(b.N)
			b.ReportMetric(sessions/b.Elapsed().Seconds(), "sessions/sec")
		})
	}
}

// BenchmarkNoChangeTail measures the converged steady state — the long
// no-change tail every gossip run ends in. A single-type OJTB instance is
// driven to a verified-stable placement once (outside the timer), then
// epochs are measured at increasing mean jobs-per-machine. With the
// verified-stable fast path a session is O(1) bookkeeping, so ns/op must be
// flat in jobs-per-machine; before this optimization each session resummed
// its O(union) pooled jobs even when nothing moved. The unlatched variant
// (stable detection off) shows the O(moved) delta path alone: the kernel
// still scans the union, but no cost sums and no write-backs happen.
func BenchmarkNoChangeTail(b *testing.B) {
	const m = 64
	for _, mode := range []string{"latched", "delta-only"} {
		for _, jpm := range []int{16, 64, 256} {
			b.Run(fmt.Sprintf("%s/jobs-per-machine=%d", mode, jpm), func(b *testing.B) {
				speeds := make([][]core.Cost, m)
				gen := rng.New(600)
				for i := range speeds {
					speeds[i] = []core.Cost{gen.IntRange(2, 9)}
				}
				ty, err := core.NewTyped(speeds, make([]int, m*jpm))
				if err != nil {
					b.Fatal(err)
				}
				e, err2 := New(protocol.OJTB{Model: ty}, core.RoundRobin(ty), Config{Seed: 9, Shards: 2})
				if err2 != nil {
					b.Fatal(err2)
				}
				defer e.Close()
				res := e.Run(50_000_000, true)
				if !res.Converged {
					b.Fatal("instance did not converge; the tail benchmark needs a stable placement")
				}
				if mode == "delta-only" {
					// Measure the pre-latch no-op path: kernels run, move
					// nothing, and the session applies zero deltas.
					e.stable = false
				}
				e.StepEpoch() // warm the measured path
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					e.StepEpoch()
				}
			})
		}
	}
}
