package shardgossip

import (
	"fmt"
	"testing"

	"hetlb/internal/core"
	"hetlb/internal/protocol"
	"hetlb/internal/rng"
	"hetlb/internal/workload"
)

// benchSharded measures one epoch of the sharded engine — schedule draw,
// ⌊m/2⌋ sessions, barrier — per protocol family and shard count. Results
// are recorded in BENCH_7.json; sessions/sec is the headline metric (one
// session is one pairwise exchange, the unit the paper counts).
func benchSharded(b *testing.B, m, n int) {
	gen := rng.New(500)
	ty := workload.UniformTyped(gen, m, n, 5, 1, 100)
	tc := workload.UniformTwoCluster(gen, m/2, m-m/2, n, 1, 100)
	cases := []struct {
		name  string
		model core.CostModel
		proto protocol.Protocol
	}{
		{"typed", ty, protocol.MJTB{Model: ty}},
		{"twocluster", tc, protocol.DLB2C{Model: tc}},
	}
	for _, c := range cases {
		for _, shards := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("%s/shards=%d", c.name, shards), func(b *testing.B) {
				e, err := New(c.proto, core.RoundRobin(c.model), Config{Seed: 1, Shards: shards})
				if err != nil {
					b.Fatal(err)
				}
				defer e.Close()
				// Two warm epochs bring scratches and job buffers to their
				// high-water capacities; the measured epochs are steady-state.
				e.StepEpoch()
				e.StepEpoch()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					e.StepEpoch()
				}
				b.StopTimer()
				sessions := float64(m/2) * float64(b.N)
				b.ReportMetric(sessions/b.Elapsed().Seconds(), "sessions/sec")
			})
		}
	}
}

// BenchmarkShardedStep is the headline scale benchmark: m = 100k machines,
// n = 10M jobs, typed and two-cluster, shards ∈ {1, 4, 8}. One op is one
// epoch (50 000 sessions). It needs ~1 GB and minutes of wall clock, so it
// is skipped under -short and run via `make bench-scale`.
func BenchmarkShardedStep(b *testing.B) {
	if testing.Short() {
		b.Skip("100k/10M scale benchmark skipped in short mode")
	}
	benchSharded(b, 100_000, 10_000_000)
}

// BenchmarkShardedStepScale is the CI-sized guard variant (m = 2048,
// n = 16384) gated by benchguard against BENCH_7.json's "guard" column —
// same code path and sub-benchmark shape, small enough for every CI run.
func BenchmarkShardedStepScale(b *testing.B) {
	benchSharded(b, 2048, 16_384)
}
