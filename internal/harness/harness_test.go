package harness

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"hetlb/internal/obs"
)

// simulate is a stand-in replication body: a few thousand RNG draws reduced
// to one number, so any stream mixup or result misplacement changes the
// output.
func simulate(rep *Rep) (uint64, error) {
	var acc uint64
	for k := 0; k < 2000; k++ {
		acc ^= rep.RNG.Uint64() + uint64(rep.Index)
	}
	return acc, nil
}

func TestMapDeterministicAcrossParallelism(t *testing.T) {
	const n = 64
	ref, err := Map(Sequential(), 42, n, simulate)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 4, 8, runtime.GOMAXPROCS(0)} {
		got, err := Map(Options{Parallelism: p}, 42, n, simulate)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("parallelism %d changed the results", p)
		}
	}
}

func TestMapResultsAreIndexAddressed(t *testing.T) {
	out, err := Map(Options{Parallelism: 4}, 1, 32, func(rep *Rep) (int, error) {
		return rep.Index * 10, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*10 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapZeroAndNegativeCounts(t *testing.T) {
	out, err := Map(Options{}, 1, 0, simulate)
	if err != nil || len(out) != 0 {
		t.Fatalf("n=0: out=%v err=%v", out, err)
	}
	if _, err := Map(Options{}, 1, -1, simulate); err == nil {
		t.Fatal("n=-1 accepted")
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	var cur, peak atomic.Int64
	_, err := Map(Options{Parallelism: 3}, 7, 50, func(rep *Rep) (int, error) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 3 {
		t.Fatalf("observed %d concurrent replications with Parallelism 3", p)
	}
}

func TestMapErrorCancelsAndReportsLowestIndex(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	_, err := Map(Sequential(), 1, 100, func(rep *Rep) (int, error) {
		ran.Add(1)
		if rep.Index == 5 {
			return 0, boom
		}
		return rep.Index, nil
	})
	var he *Error
	if !errors.As(err, &he) || he.Index != 5 || !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if ran.Load() != 6 {
		t.Fatalf("sequential run executed %d replications after failure at 5", ran.Load())
	}
}

func TestMapContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	_, err := Map(Options{Parallelism: 2, Context: ctx}, 1, 1000, func(rep *Rep) (int, error) {
		if ran.Add(1) == 10 {
			cancel()
		}
		time.Sleep(100 * time.Microsecond)
		return 0, nil
	})
	if err == nil {
		t.Fatal("cancelled run reported success")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if ran.Load() == 1000 {
		t.Fatal("cancellation did not stop the pool")
	}
}

func TestMapTimeout(t *testing.T) {
	start := time.Now()
	_, err := Map(Options{Parallelism: 2, Timeout: 20 * time.Millisecond}, 1, 1000,
		func(rep *Rep) (int, error) {
			time.Sleep(2 * time.Millisecond)
			return 0, nil
		})
	if err == nil {
		t.Fatal("timed-out run reported success")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("timeout not enforced (took %v)", el)
	}
}

func TestMapKeepsCompletedResultsOnError(t *testing.T) {
	out, err := Map(Sequential(), 1, 10, func(rep *Rep) (int, error) {
		if rep.Index == 7 {
			return 0, errors.New("late failure")
		}
		return rep.Index + 1, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	for i := 0; i < 7; i++ {
		if out[i] != i+1 {
			t.Fatalf("completed result %d lost: %v", i, out[i])
		}
	}
}

func TestMapMetricsAndTrace(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer(1 << 10)
	const n = 20
	_, err := Map(Options{Parallelism: 4, Metrics: reg, Trace: tr}, 3, n, simulate)
	if err != nil {
		t.Fatal(err)
	}
	if v := reg.Counter("harness_replications_started_total", "").Value(); v != n {
		t.Fatalf("started = %d", v)
	}
	if v := reg.Counter("harness_replications_completed_total", "").Value(); v != n {
		t.Fatalf("completed = %d", v)
	}
	if v := reg.Counter("harness_replications_failed_total", "").Value(); v != 0 {
		t.Fatalf("failed = %d", v)
	}
	if v := reg.Histogram("harness_replication_wall_ns", "", obs.Pow2Bounds(40)).Count(); v != n {
		t.Fatalf("wall histogram has %d observations", v)
	}
	starts, ends := 0, 0
	for _, e := range tr.Events() {
		switch e.Type {
		case obs.EvReplicationStart:
			starts++
		case obs.EvReplicationEnd:
			ends++
			if e.Value < 0 {
				t.Fatal("successful replication traced as failed")
			}
		}
	}
	if starts != n || ends != n {
		t.Fatalf("trace has %d starts / %d ends", starts, ends)
	}
}

func TestMapFailureMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	_, err := Map(Options{Parallelism: 1, Metrics: reg}, 1, 5, func(rep *Rep) (int, error) {
		if rep.Index == 2 {
			return 0, fmt.Errorf("no")
		}
		return 0, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if v := reg.Counter("harness_replications_failed_total", "").Value(); v != 1 {
		t.Fatalf("failed = %d", v)
	}
}

func TestMapProgressReachesTotal(t *testing.T) {
	var last atomic.Int64
	var calls atomic.Int64
	_, err := Map(Options{
		Parallelism: 4,
		OnProgress: func(done, total int) {
			calls.Add(1)
			if total != 30 {
				t.Errorf("total = %d", total)
			}
			last.Store(int64(done))
		},
	}, 9, 30, simulate)
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 30 || last.Load() != 30 {
		t.Fatalf("progress calls=%d last=%d", calls.Load(), last.Load())
	}
}

func TestSubstreamsUnaffectedByWorkerCount(t *testing.T) {
	// The replication body records the first draw of its stream; that draw
	// must be a pure function of (seed, index).
	first := func(p int) []uint64 {
		out, err := Map(Options{Parallelism: p}, 77, 16, func(rep *Rep) (uint64, error) {
			return rep.RNG.Uint64(), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	if !reflect.DeepEqual(first(1), first(8)) {
		t.Fatal("first draws depend on worker count")
	}
}
