// Package harness is the deterministic replication runner behind every
// experiment driver in the repository. A stochastic-scheduling evaluation is
// embarrassingly parallel — thousands of independent replications of the same
// simulation under different seeds — but parallel execution is only
// acceptable if it cannot change the numbers. The harness guarantees that by
// construction:
//
//  1. Keyed substreams, pre-split before dispatch. Replication i draws all
//     of its randomness from rng.Substream(seed, i), a pure function of the
//     experiment seed and the replication index. No replication ever reads
//     another's stream, so results are bit-identical for any worker count
//     and any completion order.
//  2. Index-addressed results. Replication i writes results[i]; aggregation
//     happens over the ordered slice after the pool drains, never in
//     completion order.
//  3. Bounded worker pool. Parallelism caps the number of in-flight
//     replications (default GOMAXPROCS); a context and an optional deadline
//     cancel the remainder of a run early.
//
// The harness also plumbs the observability layer through every run:
// replications started/completed/failed counters, a wall-time histogram, one
// EvReplicationStart/End trace event pair per replication, and an optional
// progress callback for interactive front ends.
package harness

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hetlb/internal/obs"
	"hetlb/internal/obs/span"
	"hetlb/internal/rng"
)

// defaultRepSpanCap bounds each replication's private span ring when
// Options.SpanCap is unset: large enough for a full chaos replication,
// small enough that pre-allocating one per in-flight replication is cheap.
const defaultRepSpanCap = 1 << 14

// Options configures a replication run. The zero value is valid: run on
// GOMAXPROCS workers with no deadline and no instrumentation.
type Options struct {
	// Parallelism bounds the number of concurrently executing replications.
	// 0 (or negative) means runtime.GOMAXPROCS(0). Parallelism 1 executes
	// the replications strictly in index order on the calling goroutine's
	// schedule — the sequential reference every other setting must match.
	Parallelism int
	// Context cancels the run early when done; nil means Background.
	// Replications that never started report context.Cause as the run
	// error; completed replications keep their results.
	Context context.Context
	// Timeout, when positive, bounds the whole run's wall time.
	Timeout time.Duration
	// Metrics, when non-nil, receives the harness_* instruments
	// (replications started/completed/failed, wall-time histogram, worker
	// gauge). Safe to share across runs: registration is idempotent and the
	// counters accumulate.
	Metrics *obs.Registry
	// Trace, when non-nil, receives one EvReplicationStart/EvReplicationEnd
	// event pair per replication (Time is the replication index, Value the
	// wall nanoseconds, negative on failure).
	Trace *obs.Tracer
	// OnProgress, when non-nil, is called after every finished replication
	// with the number completed so far and the total. Calls are serialized
	// but arrive in completion order, which under parallelism is not index
	// order.
	OnProgress func(completed, total int)
	// Spans, when non-nil, collects the causal span trace of the whole run.
	// Each replication records into a private sub-recorder namespaced by its
	// index (so span IDs never collide) whose root is the replication's
	// KindReplication span; after the pool drains the sub-recorders are
	// merged into Spans in index order — the merged trace is bit-identical
	// for every Parallelism, like the results.
	Spans *span.Recorder
	// SpanCap bounds each replication's private span ring; 0 defaults to
	// 16384. A replication that overflows its ring keeps the newest spans
	// and the merged trace accounts the loss in Dropped.
	SpanCap int
}

// Rep is one replication's execution context, handed to the replication
// body.
type Rep struct {
	// Index is the replication number in [0, n).
	Index int
	// RNG is the replication's private generator, derived as
	// rng.Substream(seed, Index) before dispatch. All of the replication's
	// randomness — instance generation, initial placement, engine seeds —
	// must come from it (or from streams split off it).
	RNG *rng.RNG
	// Ctx is the run's context; long replications should poll it and bail
	// out early on cancellation.
	Ctx context.Context
	// Spans is the replication's private span recorder (nil when the run
	// does not collect spans). Its Root() is the replication's span, so
	// runtimes parent their run spans to it automatically.
	Spans *span.Recorder
}

// metrics bundles the harness instruments; nil disables them with one
// branch per replication.
type metrics struct {
	started, completed, failed *obs.Counter
	wall                       *obs.Histogram
	workers                    *obs.Gauge
}

func newMetrics(r *obs.Registry) *metrics {
	if r == nil {
		return nil
	}
	return &metrics{
		started:   r.Counter("harness_replications_started_total", "replications dispatched to the worker pool"),
		completed: r.Counter("harness_replications_completed_total", "replications that finished successfully"),
		failed:    r.Counter("harness_replications_failed_total", "replications that returned an error"),
		wall:      r.Histogram("harness_replication_wall_ns", "wall time per replication in nanoseconds", obs.Pow2Bounds(40)),
		workers:   r.Gauge("harness_workers", "worker pool size of the most recent run"),
	}
}

// Error reports a failed run: the lowest-indexed replication error observed
// before the pool drained.
type Error struct {
	// Index is the replication that failed.
	Index int
	// Err is its error.
	Err error
}

func (e *Error) Error() string { return fmt.Sprintf("harness: replication %d: %v", e.Index, e.Err) }

// Unwrap exposes the underlying replication error to errors.Is/As.
func (e *Error) Unwrap() error { return e.Err }

// Map runs n replications of fn on a bounded worker pool and returns their
// results in index order. Replication i receives a Rep whose RNG is the
// keyed substream rng.Substream(seed, i), so the returned slice is identical
// for every Options.Parallelism — the determinism contract the experiment
// drivers and their golden tests rely on.
//
// If any replication returns an error, the rest of the run is cancelled and
// Map returns a *Error for the lowest-indexed failure it observed. If the
// context expires first, Map returns the context's error. In both cases the
// already-completed results are returned alongside the error (failed or
// skipped slots hold the zero value of T).
func Map[T any](opt Options, seed uint64, n int, fn func(rep *Rep) (T, error)) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("harness: negative replication count %d", n)
	}
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	workers := opt.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	ctx := opt.Context
	if ctx == nil {
		ctx = context.Background()
	}
	var cancel context.CancelFunc
	if opt.Timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, opt.Timeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()

	ins := newMetrics(opt.Metrics)
	if ins != nil {
		ins.workers.Set(int64(workers))
	}

	// Pre-split every substream before dispatch. This is cheap (a few
	// SplitMix64 rounds per replication) and makes the determinism argument
	// trivial: the streams exist, fully formed, before any worker runs.
	gens := make([]*rng.RNG, n)
	for i := range gens {
		gens[i] = rng.Substream(seed, uint64(i))
	}

	// Per-replication span recorders, created lazily as indices are claimed
	// and merged in index order after the pool drains: namespaced IDs and
	// ordered merging make the combined trace independent of Parallelism.
	var srecs []*span.Recorder
	var nsBase uint64
	var parentRoot span.ID
	spanCap := opt.SpanCap
	if spanCap <= 0 {
		spanCap = defaultRepSpanCap
	}
	if opt.Spans != nil {
		srecs = make([]*span.Recorder, n)
		// One namespace block per Map call: successive runs merging into
		// the same trace (e.g. sweep cells) never collide.
		nsBase = opt.Spans.ClaimNamespaces(n)
		parentRoot = opt.Spans.Root()
	}

	var (
		next      atomic.Int64 // next replication index to claim
		mu        sync.Mutex   // guards completed, firstErr and OnProgress
		completed int
		firstErr  *Error
		wg        sync.WaitGroup
	)
	body := func() {
		defer wg.Done()
		for {
			i := int(next.Add(1)) - 1
			if i >= n || ctx.Err() != nil {
				return
			}
			if ins != nil {
				ins.started.Inc()
			}
			if opt.Trace != nil {
				opt.Trace.Emit(obs.Event{Time: int64(i), Type: obs.EvReplicationStart, A: int32(i), B: -1})
			}
			var rec *span.Recorder
			var repSpan span.ID
			if srecs != nil {
				rec = span.NewSub(spanCap, nsBase+uint64(i))
				repSpan = rec.NextID()
				rec.SetRoot(repSpan)
				srecs[i] = rec
			}
			start := time.Now() //hetlb:nondeterministic-ok wall clock only feeds the replication-wall histogram, never results
			v, err := fn(&Rep{Index: i, RNG: gens[i], Ctx: ctx, Spans: rec})
			wall := time.Since(start).Nanoseconds() //hetlb:nondeterministic-ok wall clock only feeds the replication-wall histogram, never results
			if rec != nil {
				var fl span.Flags
				if err != nil {
					fl = span.FlagFailed
				}
				rec.Append(span.Span{
					ID:     repSpan,
					Parent: parentRoot,
					Kind:   span.KindReplication,
					Flags:  fl,
					A:      int32(i),
					B:      -1,
					Start:  int64(i),
					End:    int64(i),
				})
			}
			if err != nil {
				if ins != nil {
					ins.failed.Inc()
					ins.wall.Observe(wall)
				}
				if opt.Trace != nil {
					opt.Trace.Emit(obs.Event{Time: int64(i), Type: obs.EvReplicationEnd, A: int32(i), B: -1, Value: -wall})
				}
				mu.Lock()
				if firstErr == nil || i < firstErr.Index {
					firstErr = &Error{Index: i, Err: err}
				}
				mu.Unlock()
				cancel()
				return
			}
			out[i] = v
			if ins != nil {
				ins.completed.Inc()
				ins.wall.Observe(wall)
			}
			if opt.Trace != nil {
				opt.Trace.Emit(obs.Event{Time: int64(i), Type: obs.EvReplicationEnd, A: int32(i), B: -1, Value: wall})
			}
			mu.Lock()
			completed++
			if opt.OnProgress != nil {
				opt.OnProgress(completed, n)
			}
			mu.Unlock()
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go body()
	}
	wg.Wait()

	if opt.Spans != nil {
		for _, rec := range srecs {
			if rec != nil {
				opt.Spans.Merge(rec)
			}
		}
	}

	if firstErr != nil {
		return out, firstErr
	}
	if completed < n {
		// Only a context expiry can leave work undone without a
		// replication error.
		return out, fmt.Errorf("harness: run cancelled after %d/%d replications: %w", completed, n, context.Cause(ctx))
	}
	return out, nil
}

// Sequential returns options that force single-worker in-order execution —
// the reference schedule for determinism tests.
func Sequential() Options { return Options{Parallelism: 1} }
