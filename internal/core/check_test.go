package core

import "testing"

// TestCheckerFastPaths verifies that every structured model catches a
// negative cost through its own Check fast path (the constructors do not
// scan costs, so CheckModel is where the invariant is enforced).
func TestCheckerFastPaths(t *testing.T) {
	id, _ := NewIdentical(3, []Cost{4, -1, 2})
	rel, _ := NewRelated([]int64{1, 2}, []Cost{5, -3})
	ty, _ := NewTyped([][]Cost{{1, 2}, {3, -4}}, []int{0, 1, 0})
	tc, _ := NewTwoCluster(1, 1, []Cost{1, 2}, []Cost{3, -5})
	den := MustDense([][]Cost{{1, 2}, {3, -6}})
	for name, m := range map[string]CostModel{
		"identical": id, "related": rel, "typed": ty, "twocluster": tc, "dense": den,
	} {
		if _, ok := m.(Checker); !ok {
			t.Errorf("%s: does not implement Checker", name)
		}
		if err := CheckModel(m); err == nil {
			t.Errorf("%s: CheckModel accepted a negative cost", name)
		}
	}
	okTy, _ := NewTyped([][]Cost{{1, 2}, {3, 4}}, []int{0, 1, 0})
	if err := CheckModel(okTy); err != nil {
		t.Errorf("valid typed model rejected: %v", err)
	}
}

// opaqueModel is a CostModel with no Checker implementation, standing in for
// a user-supplied model whose only interface is the Cost function.
type opaqueModel struct {
	m, n int
	cost Cost
}

func (o opaqueModel) NumMachines() int   { return o.m }
func (o opaqueModel) NumJobs() int       { return o.n }
func (o opaqueModel) Cost(_, _ int) Cost { return o.cost }

// TestCheckModelSampledFallback checks that an opaque model far above the
// cell budget is validated by sampling: an everywhere-negative 100k×10M
// model is rejected, a non-negative one accepted, and neither takes the
// 10¹²-lookup full scan to answer (the test would time out if it did).
func TestCheckModelSampledFallback(t *testing.T) {
	if err := CheckModel(opaqueModel{m: 100_000, n: 10_000_000, cost: -1}); err == nil {
		t.Error("sampled CheckModel accepted an everywhere-negative model")
	}
	if err := CheckModel(opaqueModel{m: 100_000, n: 10_000_000, cost: 7}); err != nil {
		t.Errorf("sampled CheckModel rejected a valid model: %v", err)
	}
	// Small opaque models still get the exact full scan.
	if err := CheckModel(opaqueModel{m: 4, n: 4, cost: -1}); err == nil {
		t.Error("full-scan CheckModel accepted a negative model")
	}
}

// TestJobsOfTypeBuckets pins the lazy-bucket contract: increasing job order,
// empty types served as empty slices, and zero allocations per call once the
// buckets exist.
func TestJobsOfTypeBuckets(t *testing.T) {
	ty, err := NewTyped([][]Cost{{1, 2, 3}}, []int{2, 0, 2, 2, 0})
	if err != nil {
		t.Fatal(err)
	}
	want := map[int][]int{0: {1, 4}, 1: {}, 2: {0, 2, 3}}
	for typ, jobs := range map[int][]int{0: ty.JobsOfType(0), 1: ty.JobsOfType(1), 2: ty.JobsOfType(2)} {
		if len(jobs) != len(want[typ]) {
			t.Fatalf("JobsOfType(%d) = %v, want %v", typ, jobs, want[typ])
		}
		for x, j := range jobs {
			if j != want[typ][x] {
				t.Fatalf("JobsOfType(%d) = %v, want %v", typ, jobs, want[typ])
			}
		}
	}
	allocs := testing.AllocsPerRun(100, func() { _ = ty.JobsOfType(2) })
	if allocs != 0 {
		t.Errorf("JobsOfType allocates %v per call after the bucket build, want 0", allocs)
	}
}

// TestEnsureIndexPresized pins the index build at its counted shape: a small
// constant number of allocations regardless of m and n (subslices of one
// backing array), with the index still passing full validation — including
// with unassigned jobs in the mapping.
func TestEnsureIndexPresized(t *testing.T) {
	model, _ := NewIdentical(257, make([]Cost, 10_000))
	const runs = 8
	as := make([]*Assignment, runs+1)
	for i := range as {
		as[i] = RoundRobin(model)
	}
	next := 0
	allocs := testing.AllocsPerRun(runs, func() { as[next].ensureIndex(); next++ })
	if allocs > 4 {
		t.Errorf("ensureIndex: %v allocations per build, want <= 4 (jobsOn, posOf, counts, backing)", allocs)
	}
	for _, a := range as {
		if err := a.Validate(); err != nil {
			t.Fatalf("presized index fails validation: %v", err)
		}
	}

	machineOf := make([]int, model.NumJobs())
	for j := range machineOf {
		machineOf[j] = j % 257
		if j%5 == 0 {
			machineOf[j] = -1 // holes must not corrupt the counted layout
		}
	}
	holey, err := FromMachineOf(model, machineOf)
	if err != nil {
		t.Fatal(err)
	}
	if got := holey.Jobs(3); len(got) == 0 {
		t.Fatal("expected jobs on machine 3")
	}
	if err := holey.Validate(); err != nil {
		t.Fatalf("index with unassigned jobs fails validation: %v", err)
	}
}
