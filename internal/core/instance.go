package core

import (
	"fmt"
	"sync"
)

// Dense is a fully general unrelated-machines instance backed by an explicit
// m×n cost matrix.
type Dense struct {
	p [][]Cost // p[machine][job]
}

// NewDense builds a Dense instance from the given matrix. The matrix is used
// directly (not copied); callers must not mutate it afterwards. All rows must
// have equal length.
func NewDense(p [][]Cost) (*Dense, error) {
	if len(p) == 0 {
		return nil, fmt.Errorf("core: dense instance needs at least one machine")
	}
	n := len(p[0])
	for i, row := range p {
		if len(row) != n {
			return nil, fmt.Errorf("core: row %d has %d jobs, row 0 has %d", i, len(row), n)
		}
	}
	return &Dense{p: p}, nil
}

// MustDense is NewDense but panics on error; intended for tests and for
// hand-built adversarial instances whose shape is known statically.
func MustDense(p [][]Cost) *Dense {
	d, err := NewDense(p)
	if err != nil {
		panic(err)
	}
	return d
}

// NumMachines implements CostModel.
func (d *Dense) NumMachines() int { return len(d.p) }

// NumJobs implements CostModel.
func (d *Dense) NumJobs() int { return len(d.p[0]) }

// Cost implements CostModel.
func (d *Dense) Cost(machine, job int) Cost { return d.p[machine][job] }

// Check implements Checker. Dense has no structure to exploit, so it scans
// the matrix in full up to checkCellBudget cells and falls back to the same
// deterministic per-row sample CheckModel uses for opaque models beyond it.
func (d *Dense) Check() error { return checkDenseView(d) }

// Identical is an instance of identical machines: every job has the same
// processing time on every machine.
type Identical struct {
	m int
	p []Cost // p[job]
}

// NewIdentical builds an identical-machines instance with m machines and the
// given job sizes.
func NewIdentical(m int, sizes []Cost) (*Identical, error) {
	if m <= 0 {
		return nil, fmt.Errorf("core: identical instance needs m > 0, got %d", m)
	}
	return &Identical{m: m, p: sizes}, nil
}

// NumMachines implements CostModel.
func (id *Identical) NumMachines() int { return id.m }

// NumJobs implements CostModel.
func (id *Identical) NumJobs() int { return len(id.p) }

// Cost implements CostModel.
func (id *Identical) Cost(_, job int) Cost { return id.p[job] }

// Size returns the machine-independent size of a job.
func (id *Identical) Size(job int) Cost { return id.p[job] }

// Check implements Checker in O(n): every cost of the m×n matrix is one of
// the n stored sizes.
func (id *Identical) Check() error {
	for j, c := range id.p {
		if c < 0 {
			return fmt.Errorf("core: job %d has negative size %d", j, c)
		}
	}
	return nil
}

// Related is a uniformly-related instance: machine i processes job j in
// size[j] / speed[i] time. To stay in integer arithmetic, speeds are
// expressed as positive integers and the cost is the ceiling of the
// division, which preserves the "faster machine is never slower" property.
type Related struct {
	speed []int64 // speed[machine] > 0
	p     []Cost  // size[job]
}

// NewRelated builds a related-machines instance.
func NewRelated(speeds []int64, sizes []Cost) (*Related, error) {
	if len(speeds) == 0 {
		return nil, fmt.Errorf("core: related instance needs at least one machine")
	}
	for i, s := range speeds {
		if s <= 0 {
			return nil, fmt.Errorf("core: machine %d has non-positive speed %d", i, s)
		}
	}
	return &Related{speed: speeds, p: sizes}, nil
}

// NumMachines implements CostModel.
func (r *Related) NumMachines() int { return len(r.speed) }

// NumJobs implements CostModel.
func (r *Related) NumJobs() int { return len(r.p) }

// Cost implements CostModel.
func (r *Related) Cost(machine, job int) Cost {
	s := r.speed[machine]
	return (r.p[job] + Cost(s) - 1) / Cost(s)
}

// Check implements Checker in O(m+n): with positive speeds, ceil(size/speed)
// is non-negative iff the size is.
func (r *Related) Check() error {
	for i, s := range r.speed {
		if s <= 0 {
			return fmt.Errorf("core: machine %d has non-positive speed %d", i, s)
		}
	}
	for j, c := range r.p {
		if c < 0 {
			return fmt.Errorf("core: job %d has negative size %d", j, c)
		}
	}
	return nil
}

// Typed is an instance where jobs are grouped into k types (Section V of the
// paper): two jobs of the same type have identical cost on every machine, so
// the matrix collapses to m×k.
type Typed struct {
	typeOf []int    // typeOf[job] in [0, k)
	p      [][]Cost // p[machine][type]

	// Lazily built type→jobs buckets serving JobsOfType. All buckets are
	// carved out of one shared backing array; the Once makes the build safe
	// under the concurrent engines, which share one model across workers.
	bucketOnce sync.Once
	byType     [][]int
}

// NewTyped builds a typed instance. p[i][t] is the cost of any type-t job on
// machine i; typeOf maps each job to its type.
func NewTyped(p [][]Cost, typeOf []int) (*Typed, error) {
	if len(p) == 0 {
		return nil, fmt.Errorf("core: typed instance needs at least one machine")
	}
	k := len(p[0])
	for i, row := range p {
		if len(row) != k {
			return nil, fmt.Errorf("core: machine %d has %d types, machine 0 has %d", i, len(row), k)
		}
	}
	for j, t := range typeOf {
		if t < 0 || t >= k {
			return nil, fmt.Errorf("core: job %d has type %d outside [0, %d)", j, t, k)
		}
	}
	return &Typed{typeOf: typeOf, p: p}, nil
}

// NumMachines implements CostModel.
func (t *Typed) NumMachines() int { return len(t.p) }

// NumJobs implements CostModel.
func (t *Typed) NumJobs() int { return len(t.typeOf) }

// Cost implements CostModel.
func (t *Typed) Cost(machine, job int) Cost { return t.p[machine][t.typeOf[job]] }

// NumTypes returns k, the number of job types.
func (t *Typed) NumTypes() int { return len(t.p[0]) }

// TypeOf returns the type of a job.
func (t *Typed) TypeOf(job int) int { return t.typeOf[job] }

// Check implements Checker in O(m·k+n): the matrix has only m·k distinct
// entries, and the type map is range-checked per job.
func (t *Typed) Check() error {
	k := t.NumTypes()
	for i, row := range t.p {
		for typ, c := range row {
			if c < 0 {
				return fmt.Errorf("core: negative cost p[%d][type %d] = %d", i, typ, c)
			}
		}
	}
	for j, tt := range t.typeOf {
		if tt < 0 || tt >= k {
			return fmt.Errorf("core: job %d has type %d outside [0, %d)", j, tt, k)
		}
	}
	return nil
}

// JobsOfType returns the indices of all jobs with the given type, in
// increasing order. The buckets are built once, lazily, on the first call —
// a counting pass plus one shared backing array — so each call serves a
// subslice in O(1) instead of scanning and reallocating O(n) per query.
// The returned slice is shared; callers must not mutate it.
func (t *Typed) JobsOfType(typ int) []int {
	t.bucketOnce.Do(t.buildBuckets)
	return t.byType[typ]
}

// buildBuckets fills byType: counts per type, then per-type subslices of a
// single n-sized backing array, appended in increasing job order.
func (t *Typed) buildBuckets() {
	k := t.NumTypes()
	counts := make([]int, k)
	for _, tt := range t.typeOf {
		counts[tt]++
	}
	backing := make([]int, 0, len(t.typeOf))
	t.byType = make([][]int, k)
	start := 0
	for typ, c := range counts {
		// Full-slice expressions pin each bucket's capacity so an (illegal)
		// append through a returned bucket cannot silently overwrite its
		// neighbour.
		t.byType[typ] = backing[start : start : start+c]
		start += c
	}
	for j, tt := range t.typeOf {
		t.byType[tt] = append(t.byType[tt], j)
	}
}

// TwoCluster is the Section VI instance: machines are partitioned into two
// clusters of identical machines, and a job's cost depends only on the
// cluster, so the matrix collapses to 2×n.
type TwoCluster struct {
	m1, m2 int       // sizes of cluster 0 and cluster 1
	p      [2][]Cost // p[cluster][job]
}

// NewTwoCluster builds a two-cluster instance with m1 machines in cluster 0
// and m2 machines in cluster 1. Machines [0, m1) belong to cluster 0 and
// machines [m1, m1+m2) to cluster 1.
func NewTwoCluster(m1, m2 int, p0, p1 []Cost) (*TwoCluster, error) {
	if m1 <= 0 || m2 <= 0 {
		return nil, fmt.Errorf("core: two-cluster instance needs positive cluster sizes, got %d and %d", m1, m2)
	}
	if len(p0) != len(p1) {
		return nil, fmt.Errorf("core: cluster cost vectors disagree on n: %d vs %d", len(p0), len(p1))
	}
	return &TwoCluster{m1: m1, m2: m2, p: [2][]Cost{p0, p1}}, nil
}

// NumMachines implements CostModel.
func (tc *TwoCluster) NumMachines() int { return tc.m1 + tc.m2 }

// NumJobs implements CostModel.
func (tc *TwoCluster) NumJobs() int { return len(tc.p[0]) }

// Cost implements CostModel.
func (tc *TwoCluster) Cost(machine, job int) Cost {
	return tc.p[tc.ClusterOf(machine)][job]
}

// ClusterOf returns 0 or 1, the cluster of the given machine.
func (tc *TwoCluster) ClusterOf(machine int) int {
	if machine < tc.m1 {
		return 0
	}
	return 1
}

// ClusterSize returns the number of machines in the given cluster.
func (tc *TwoCluster) ClusterSize(cluster int) int {
	if cluster == 0 {
		return tc.m1
	}
	return tc.m2
}

// ClusterCost returns the cost of a job on any machine of the given cluster.
func (tc *TwoCluster) ClusterCost(cluster, job int) Cost { return tc.p[cluster][job] }

// Check implements Checker in O(n): the m×n matrix has only the 2×n stored
// entries.
func (tc *TwoCluster) Check() error {
	for cluster, row := range tc.p {
		for j, c := range row {
			if c < 0 {
				return fmt.Errorf("core: negative cost p[cluster %d][%d] = %d", cluster, j, c)
			}
		}
	}
	return nil
}

// Clustered is implemented by cost models that expose a partition of the
// machines into two clusters of identical machines. DLB2C and CLB2C require
// this structure.
type Clustered interface {
	CostModel
	ClusterOf(machine int) int
	ClusterSize(cluster int) int
	ClusterCost(cluster, job int) Cost
}

var (
	_ CostModel = (*Dense)(nil)
	_ CostModel = (*Identical)(nil)
	_ CostModel = (*Related)(nil)
	_ CostModel = (*Typed)(nil)
	_ Clustered = (*TwoCluster)(nil)

	_ Checker = (*Dense)(nil)
	_ Checker = (*Identical)(nil)
	_ Checker = (*Related)(nil)
	_ Checker = (*Typed)(nil)
	_ Checker = (*TwoCluster)(nil)
)
