package core

import (
	"testing"

	"hetlb/internal/rng"
)

// scanJobs is the brute-force O(n) reference the index must agree with.
func scanJobs(a *Assignment, machine int) []int {
	var jobs []int
	for j := 0; j < a.Model().NumJobs(); j++ {
		if a.MachineOf(j) == machine {
			jobs = append(jobs, j)
		}
	}
	return jobs
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if a[k] != b[k] {
			return false
		}
	}
	return true
}

func TestJobIndexTracksRandomMutations(t *testing.T) {
	gen := rng.New(101)
	const m, n = 5, 40
	p := make([][]Cost, m)
	for i := range p {
		p[i] = make([]Cost, n)
		for j := range p[i] {
			p[i][j] = gen.IntRange(1, 50)
		}
	}
	a := NewAssignment(MustDense(p))
	// Force the index live before any assignment exists.
	if got := a.Jobs(0); got != nil {
		t.Fatalf("Jobs on empty assignment = %v", got)
	}
	for step := 0; step < 2000; step++ {
		j := gen.Intn(n)
		switch {
		case a.MachineOf(j) == -1:
			a.Assign(j, gen.Intn(m))
		case gen.Bool():
			a.Unassign(j)
		default:
			a.Move(j, gen.Intn(m))
		}
		if step%97 == 0 {
			for i := 0; i < m; i++ {
				if got, want := a.Jobs(i), scanJobs(a, i); !sameInts(got, want) {
					t.Fatalf("step %d machine %d: Jobs = %v, scan = %v", step, i, got, want)
				}
			}
			if err := a.Validate(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
}

func TestAppendJobsReusesAndOrders(t *testing.T) {
	id, _ := NewIdentical(2, []Cost{1, 1, 1, 1, 1, 1})
	a := NewAssignment(id)
	// Assign out of order so the swap-delete list is genuinely unsorted.
	for _, j := range []int{4, 0, 2, 5, 1} {
		a.Assign(j, 0)
	}
	a.Unassign(2) // swap-delete moves job 1 into job 2's slot
	buf := make([]int, 0, 8)
	got := a.AppendJobs(buf, 0)
	if !sameInts(got, []int{0, 1, 4, 5}) {
		t.Fatalf("AppendJobs = %v", got)
	}
	if &got[0] != &buf[:1][0] {
		t.Fatal("AppendJobs reallocated despite sufficient capacity")
	}
	// Appending after existing content must sort only the new segment.
	pre := []int{99}
	got = a.AppendJobs(pre, 0)
	if !sameInts(got, []int{99, 0, 1, 4, 5}) {
		t.Fatalf("AppendJobs with prefix = %v", got)
	}
}

func TestCloneRebuildsIndexLazily(t *testing.T) {
	id, _ := NewIdentical(3, []Cost{2, 3, 5, 7})
	a := RoundRobin(id)
	_ = a.Jobs(0) // index live on the original
	b := a.Clone()
	if b.indexed {
		t.Fatal("clone should not inherit a live index")
	}
	b.Move(0, 2)
	if got := b.Jobs(2); !sameInts(got, scanJobs(b, 2)) {
		t.Fatalf("clone Jobs(2) = %v", got)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	// The original's index must be unaffected by the clone's mutations.
	if got := a.Jobs(0); !sameInts(got, scanJobs(a, 0)) {
		t.Fatalf("original Jobs(0) = %v", got)
	}
}

func TestValidateCatchesIndexCorruption(t *testing.T) {
	id, _ := NewIdentical(2, []Cost{1, 1, 1, 1})
	corrupt := []struct {
		name string
		do   func(a *Assignment)
	}{
		{"wrong machine list", func(a *Assignment) {
			a.jobsOn[1] = append(a.jobsOn[1], a.jobsOn[0][0])
			a.jobsOn[0] = a.jobsOn[0][1:]
		}},
		{"stale position", func(a *Assignment) { a.posOf[a.jobsOn[0][0]]++ }},
		{"dropped entry", func(a *Assignment) { a.jobsOn[0] = a.jobsOn[0][:len(a.jobsOn[0])-1] }},
		{"duplicated entry", func(a *Assignment) { a.jobsOn[0] = append(a.jobsOn[0], a.jobsOn[0][0]) }},
	}
	for _, tc := range corrupt {
		a := RoundRobin(id)
		_ = a.Jobs(0) // make the index live
		if err := a.Validate(); err != nil {
			t.Fatalf("%s: pre-corruption Validate failed: %v", tc.name, err)
		}
		tc.do(a)
		if err := a.Validate(); err == nil {
			t.Fatalf("%s: Validate missed the corruption", tc.name)
		}
	}
}
