package core

import "fmt"

// Partition assigns machines to shards for the sharded gossip engine. It
// cuts [0, m) into NumShards contiguous, near-equal blocks: the first
// m mod S shards get one extra machine. Contiguity is what makes ShardOf a
// constant-time arithmetic lookup with no per-machine table, and it keeps a
// shard's slice of every per-machine array (loads, job lists, exchange
// counters) a single cache-friendly range.
//
// A Partition describes ownership only; it holds no job or load state and is
// safe for concurrent use.
type Partition struct {
	m      int
	shards int
	quot   int // base block size, m / shards
	rem    int // number of leading shards holding quot+1 machines
}

// NewPartition returns a partition of m machines into shards blocks. It
// errors when m < 1, shards < 1, or shards > m (a shard that owns no
// machines could never make progress and would deadlock an epoch barrier
// that waits for work from every worker).
func NewPartition(m, shards int) (*Partition, error) {
	if m < 1 {
		return nil, fmt.Errorf("core: partition over %d machines (need at least 1)", m)
	}
	if shards < 1 {
		return nil, fmt.Errorf("core: partition into %d shards (need at least 1)", shards)
	}
	if shards > m {
		return nil, fmt.Errorf("core: %d shards over %d machines would leave empty shards", shards, m)
	}
	return &Partition{m: m, shards: shards, quot: m / shards, rem: m % shards}, nil
}

// NumMachines returns the number of machines partitioned.
func (p *Partition) NumMachines() int { return p.m }

// NumShards returns the number of shards.
func (p *Partition) NumShards() int { return p.shards }

// ShardOf returns the shard owning the given machine. It panics if the
// machine index is out of range.
func (p *Partition) ShardOf(machine int) int {
	if machine < 0 || machine >= p.m {
		panic(fmt.Sprintf("core: ShardOf(%d) with %d machines", machine, p.m))
	}
	wide := p.rem * (p.quot + 1) // machines covered by the quot+1-sized shards
	if machine < wide {
		return machine / (p.quot + 1)
	}
	return p.rem + (machine-wide)/p.quot
}

// Bounds returns the half-open machine range [lo, hi) owned by the given
// shard. It panics if the shard index is out of range.
func (p *Partition) Bounds(shard int) (lo, hi int) {
	if shard < 0 || shard >= p.shards {
		panic(fmt.Sprintf("core: Bounds(%d) with %d shards", shard, p.shards))
	}
	if shard < p.rem {
		lo = shard * (p.quot + 1)
		return lo, lo + p.quot + 1
	}
	lo = p.rem*(p.quot+1) + (shard-p.rem)*p.quot
	return lo, lo + p.quot
}

// Size returns the number of machines owned by the given shard.
func (p *Partition) Size(shard int) int {
	lo, hi := p.Bounds(shard)
	return hi - lo
}
