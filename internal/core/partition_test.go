package core

import "testing"

// TestPartitionCoversExactly checks, for a grid of (m, shards) shapes, that
// the blocks tile [0, m) without gaps or overlaps, that ShardOf agrees with
// Bounds on every machine, and that sizes differ by at most one.
func TestPartitionCoversExactly(t *testing.T) {
	for _, m := range []int{1, 2, 3, 7, 8, 64, 100, 1000} {
		for _, s := range []int{1, 2, 3, 4, 7, 8} {
			if s > m {
				continue
			}
			p, err := NewPartition(m, s)
			if err != nil {
				t.Fatalf("NewPartition(%d, %d): %v", m, s, err)
			}
			if p.NumMachines() != m || p.NumShards() != s {
				t.Fatalf("(%d,%d): got (%d,%d)", m, s, p.NumMachines(), p.NumShards())
			}
			next, total := 0, 0
			minSize, maxSize := m+1, -1
			for shard := 0; shard < s; shard++ {
				lo, hi := p.Bounds(shard)
				if lo != next {
					t.Fatalf("(%d,%d) shard %d: starts at %d, want %d", m, s, shard, lo, next)
				}
				if hi <= lo {
					t.Fatalf("(%d,%d) shard %d: empty range [%d,%d)", m, s, shard, lo, hi)
				}
				if got := p.Size(shard); got != hi-lo {
					t.Fatalf("(%d,%d) shard %d: Size %d != bounds %d", m, s, shard, got, hi-lo)
				}
				for i := lo; i < hi; i++ {
					if got := p.ShardOf(i); got != shard {
						t.Fatalf("(%d,%d): ShardOf(%d) = %d, want %d", m, s, i, got, shard)
					}
				}
				if hi-lo < minSize {
					minSize = hi - lo
				}
				if hi-lo > maxSize {
					maxSize = hi - lo
				}
				total += hi - lo
				next = hi
			}
			if next != m || total != m {
				t.Fatalf("(%d,%d): blocks cover %d machines, want %d", m, s, total, m)
			}
			if maxSize-minSize > 1 {
				t.Fatalf("(%d,%d): block sizes range [%d,%d], want near-equal", m, s, minSize, maxSize)
			}
		}
	}
}

// TestPartitionSingleMachineShards pins the S == m degenerate shape: every
// shard owns exactly one machine, so ShardOf is the identity and each block
// is the unit range [i, i+1).
func TestPartitionSingleMachineShards(t *testing.T) {
	for _, m := range []int{1, 2, 5, 64} {
		p, err := NewPartition(m, m)
		if err != nil {
			t.Fatalf("NewPartition(%d, %d): %v", m, m, err)
		}
		for i := 0; i < m; i++ {
			if got := p.ShardOf(i); got != i {
				t.Fatalf("m=%d: ShardOf(%d) = %d, want identity", m, i, got)
			}
			lo, hi := p.Bounds(i)
			if lo != i || hi != i+1 {
				t.Fatalf("m=%d: Bounds(%d) = [%d,%d), want [%d,%d)", m, i, lo, hi, i, i+1)
			}
			if p.Size(i) != 1 {
				t.Fatalf("m=%d: Size(%d) = %d, want 1", m, i, p.Size(i))
			}
		}
	}
}

// TestPartitionRejectsBadShapes checks the constructor's error cases and the
// panics on out-of-range queries.
func TestPartitionRejectsBadShapes(t *testing.T) {
	for _, bad := range []struct{ m, s int }{
		{0, 1}, {-1, 1}, // m == 0 / negative m
		{4, 0}, {4, -2}, {0, 0}, // S <= 0 must be rejected here, not normalized by callers
		{3, 4}, {1, 2}, // S > m would leave empty shards
	} {
		if _, err := NewPartition(bad.m, bad.s); err == nil {
			t.Errorf("NewPartition(%d, %d): want error", bad.m, bad.s)
		}
	}
	p, err := NewPartition(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: want panic", name)
			}
		}()
		f()
	}
	mustPanic("ShardOf(-1)", func() { p.ShardOf(-1) })
	mustPanic("ShardOf(8)", func() { p.ShardOf(8) })
	mustPanic("Bounds(3)", func() { p.Bounds(3) })
	mustPanic("Bounds(-1)", func() { p.Bounds(-1) })
}
