// Package core defines the scheduling problem studied by the paper:
// independent, sequential, non-preemptible jobs must be partitioned onto
// unrelated machines to minimize the makespan (R||Cmax in Graham's
// three-field notation).
//
// The package provides the cost models (identical, related, unrelated, typed
// jobs, two clusters), the Assignment type that all balancing algorithms
// manipulate, and makespan/work/lower-bound computations. Everything else in
// the repository is built on top of these types.
package core

import "fmt"

// Cost is a processing time expressed in abstract integer time units.
// Integer costs are used deliberately: the paper's Markov analysis operates
// on integer load vectors, and integer arithmetic keeps every pairwise
// balancing decision exactly reproducible (no floating-point ties).
type Cost = int64

// Infinite marks a job that cannot run on a machine. It is large enough to
// dominate any realistic schedule while leaving headroom so that sums of a
// few infinite costs do not overflow int64.
const Infinite Cost = 1 << 50

// CostModel exposes the processing-time matrix p[i][j] of an instance.
// Implementations may store the full dense matrix or exploit structure
// (typed jobs, clustered machines) to answer in O(1) from compact storage.
type CostModel interface {
	// NumMachines returns m, the number of machines.
	NumMachines() int
	// NumJobs returns n, the number of jobs.
	NumJobs() int
	// Cost returns the processing time of job j on machine i.
	Cost(machine, job int) Cost
}

// TotalWorkOn returns the sum over all jobs of their cost on the given
// machine. It is mostly useful for single-cluster reasoning where each job
// costs the same on every machine of the cluster.
func TotalWorkOn(m CostModel, machine int) Cost {
	var w Cost
	for j := 0; j < m.NumJobs(); j++ {
		w += m.Cost(machine, j)
	}
	return w
}

// MinCost returns the smallest processing time of job j over all machines,
// along with a machine achieving it.
func MinCost(m CostModel, job int) (Cost, int) {
	best := m.Cost(0, job)
	arg := 0
	for i := 1; i < m.NumMachines(); i++ {
		if c := m.Cost(i, job); c < best {
			best, arg = c, i
		}
	}
	return best, arg
}

// MaxCost returns the largest finite processing time of job j over all
// machines. If the job is infinite everywhere the returned cost is Infinite.
func MaxCost(m CostModel, job int) Cost {
	var best Cost = -1
	for i := 0; i < m.NumMachines(); i++ {
		if c := m.Cost(i, job); c < Infinite && c > best {
			best = c
		}
	}
	if best < 0 {
		return Infinite
	}
	return best
}

// Checker is implemented by cost models that can verify their own invariants
// faster than a dense scan by exploiting their structure: Identical and
// TwoCluster read O(n) stored costs, Related reads O(m+n), Typed reads
// O(m·k+n) — never the m·n product the dense matrix view suggests. CheckModel
// dispatches to it when present.
type Checker interface {
	// Check verifies the model's invariants (non-negative costs plus any
	// structure the model promises) and returns a descriptive error on the
	// first violation.
	Check() error
}

// checkCellBudget bounds how many Cost lookups CheckModel spends on a model
// that exposes no structure (no Checker implementation). Below the budget the
// full matrix is scanned; above it a deterministic per-row sample is checked
// instead, so validating a pathological 100k×10M dense view costs millions of
// lookups, not 10¹².
const checkCellBudget = 1 << 22

// CheckModel verifies basic sanity of a cost model: positive dimensions and
// non-negative costs. Algorithms in this repository assume these invariants.
//
// Models implementing Checker are verified through their own structure-aware
// fast path. For anything else the dense matrix is scanned in full only while
// m·n stays within checkCellBudget; larger models get a deterministic sample
// (every row, evenly strided columns, stride offset by the row index so
// neighbouring rows probe different columns). A sampled pass can miss an
// isolated negative cell — the structured models all implement Checker, so
// the sampling fallback only applies to models whose cost function is opaque
// and whose full scan is the very cost this check must avoid.
func CheckModel(m CostModel) error {
	if m.NumMachines() <= 0 {
		return fmt.Errorf("core: model has %d machines, need at least 1", m.NumMachines())
	}
	if m.NumJobs() < 0 {
		return fmt.Errorf("core: model has negative job count %d", m.NumJobs())
	}
	if c, ok := m.(Checker); ok {
		return c.Check()
	}
	return checkDenseView(m)
}

// checkDenseView validates an opaque model through its Cost method: a full
// scan within checkCellBudget, a strided per-row sample beyond it.
func checkDenseView(m CostModel) error {
	mach, n := m.NumMachines(), m.NumJobs()
	if n == 0 {
		return nil
	}
	if int64(mach)*int64(n) <= checkCellBudget {
		for i := 0; i < mach; i++ {
			for j := 0; j < n; j++ {
				if m.Cost(i, j) < 0 {
					return fmt.Errorf("core: negative cost p[%d][%d] = %d", i, j, m.Cost(i, j))
				}
			}
		}
		return nil
	}
	perRow := checkCellBudget / mach
	if perRow < 1 {
		perRow = 1
	}
	if perRow > n {
		perRow = n
	}
	stride := n / perRow
	for i := 0; i < mach; i++ {
		for t := 0; t < perRow; t++ {
			j := (i + t*stride) % n
			if m.Cost(i, j) < 0 {
				return fmt.Errorf("core: negative cost p[%d][%d] = %d (sampled)", i, j, m.Cost(i, j))
			}
		}
	}
	return nil
}
