// Package core defines the scheduling problem studied by the paper:
// independent, sequential, non-preemptible jobs must be partitioned onto
// unrelated machines to minimize the makespan (R||Cmax in Graham's
// three-field notation).
//
// The package provides the cost models (identical, related, unrelated, typed
// jobs, two clusters), the Assignment type that all balancing algorithms
// manipulate, and makespan/work/lower-bound computations. Everything else in
// the repository is built on top of these types.
package core

import "fmt"

// Cost is a processing time expressed in abstract integer time units.
// Integer costs are used deliberately: the paper's Markov analysis operates
// on integer load vectors, and integer arithmetic keeps every pairwise
// balancing decision exactly reproducible (no floating-point ties).
type Cost = int64

// Infinite marks a job that cannot run on a machine. It is large enough to
// dominate any realistic schedule while leaving headroom so that sums of a
// few infinite costs do not overflow int64.
const Infinite Cost = 1 << 50

// CostModel exposes the processing-time matrix p[i][j] of an instance.
// Implementations may store the full dense matrix or exploit structure
// (typed jobs, clustered machines) to answer in O(1) from compact storage.
type CostModel interface {
	// NumMachines returns m, the number of machines.
	NumMachines() int
	// NumJobs returns n, the number of jobs.
	NumJobs() int
	// Cost returns the processing time of job j on machine i.
	Cost(machine, job int) Cost
}

// TotalWorkOn returns the sum over all jobs of their cost on the given
// machine. It is mostly useful for single-cluster reasoning where each job
// costs the same on every machine of the cluster.
func TotalWorkOn(m CostModel, machine int) Cost {
	var w Cost
	for j := 0; j < m.NumJobs(); j++ {
		w += m.Cost(machine, j)
	}
	return w
}

// MinCost returns the smallest processing time of job j over all machines,
// along with a machine achieving it.
func MinCost(m CostModel, job int) (Cost, int) {
	best := m.Cost(0, job)
	arg := 0
	for i := 1; i < m.NumMachines(); i++ {
		if c := m.Cost(i, job); c < best {
			best, arg = c, i
		}
	}
	return best, arg
}

// MaxCost returns the largest finite processing time of job j over all
// machines. If the job is infinite everywhere the returned cost is Infinite.
func MaxCost(m CostModel, job int) Cost {
	var best Cost = -1
	for i := 0; i < m.NumMachines(); i++ {
		if c := m.Cost(i, job); c < Infinite && c > best {
			best = c
		}
	}
	if best < 0 {
		return Infinite
	}
	return best
}

// CheckModel verifies basic sanity of a cost model: positive dimensions and
// non-negative costs. Algorithms in this repository assume these invariants.
func CheckModel(m CostModel) error {
	if m.NumMachines() <= 0 {
		return fmt.Errorf("core: model has %d machines, need at least 1", m.NumMachines())
	}
	if m.NumJobs() < 0 {
		return fmt.Errorf("core: model has negative job count %d", m.NumJobs())
	}
	for i := 0; i < m.NumMachines(); i++ {
		for j := 0; j < m.NumJobs(); j++ {
			if m.Cost(i, j) < 0 {
				return fmt.Errorf("core: negative cost p[%d][%d] = %d", i, j, m.Cost(i, j))
			}
		}
	}
	return nil
}
