package core

import "sort"

// LowerBound returns a generic lower bound on OPT for any unrelated
// instance: the maximum of
//
//   - the largest over jobs of the cheapest execution time of that job
//     (some machine has to run each job), and
//   - the total work when every job runs on its cheapest machine, divided by
//     the number of machines (average-load argument), rounded up.
//
// The bound is valid for every instance and tight on many structured ones;
// the exact solver uses it for pruning and the tests use it to sanity-check
// approximation ratios.
func LowerBound(m CostModel) Cost {
	var maxMin Cost
	var sumMin Cost
	for j := 0; j < m.NumJobs(); j++ {
		c, _ := MinCost(m, j)
		if c > maxMin {
			maxMin = c
		}
		sumMin += c
	}
	mm := Cost(m.NumMachines())
	avg := (sumMin + mm - 1) / mm
	if avg > maxMin {
		return avg
	}
	return maxMin
}

// IdenticalLowerBound specializes the bound for identical machines where it
// is simply max(ceil(ΣP/m), max job size).
func IdenticalLowerBound(id *Identical) Cost {
	var sum, max Cost
	for j := 0; j < id.NumJobs(); j++ {
		s := id.Size(j)
		sum += s
		if s > max {
			max = s
		}
	}
	m := Cost(id.NumMachines())
	avg := (sum + m - 1) / m
	if avg > max {
		return avg
	}
	return max
}

// TwoClusterFractionalLB returns a lower bound on OPT for a two-cluster
// instance obtained by relaxing the problem twice: machines within a cluster
// are pooled (each cluster is one big machine with |Mc| units of speed) and
// one job may be split fractionally between the clusters.
//
// Under that relaxation the optimal split assigns a prefix of the jobs
// sorted by cost ratio p0/p1 to cluster 0 — exactly the structure CLB2C
// exploits — so the bound is computed by a single scan over the sorted jobs.
// The result is returned in fractional time units.
func TwoClusterFractionalLB(tc Clustered) float64 {
	n := tc.NumJobs()
	if n == 0 {
		return 0
	}
	m1 := float64(tc.ClusterSize(0))
	m2 := float64(tc.ClusterSize(1))

	jobs := make([]int, n)
	for j := range jobs {
		jobs[j] = j
	}
	// Sort by increasing p0/p1 via cross multiplication (integer-exact).
	sort.Slice(jobs, func(a, b int) bool {
		ja, jb := jobs[a], jobs[b]
		return tc.ClusterCost(0, ja)*tc.ClusterCost(1, jb) < tc.ClusterCost(0, jb)*tc.ClusterCost(1, ja)
	})

	// suffix1[k] = total cluster-1 work of jobs[k:].
	suffix1 := make([]float64, n+1)
	for k := n - 1; k >= 0; k-- {
		suffix1[k] = suffix1[k+1] + float64(tc.ClusterCost(1, jobs[k]))
	}

	best := -1.0
	w0 := 0.0
	for k := 0; k <= n; k++ {
		// jobs[:k] on cluster 0, jobs[k:] on cluster 1, plus possibly a
		// fractional part of the boundary job.
		a := w0 / m1
		b := suffix1[k] / m2
		v := a
		if b > v {
			v = b
		}
		// Allow splitting the boundary job between the clusters: the
		// fractional optimum equalizes the two cluster finish times if
		// that falls between the k and k+1 split points.
		if k < n {
			p0 := float64(tc.ClusterCost(0, jobs[k]))
			p1 := float64(tc.ClusterCost(1, jobs[k]))
			// Fraction x of job k on cluster 0: load0 = (w0+x*p0)/m1,
			// load1 = (suffix1[k+1]+(1-x)*p1)/m2; minimize the max over
			// x in [0,1]. The max is minimized either at a boundary
			// (covered by the integer scan) or where the loads equalize.
			den := p0/m1 + p1/m2
			if den > 0 {
				x := (suffix1[k+1]/m2 + p1/m2 - w0/m1) / den
				if x > 0 && x < 1 {
					eq := (w0 + x*p0) / m1
					if best < 0 || eq < best {
						best = eq
					}
				}
			}
			w0 += p0
		}
		if best < 0 || v < best {
			best = v
		}
	}
	return best
}

// PMax returns the largest finite processing time appearing in the model,
// the p_max of Theorem 10.
func PMax(m CostModel) Cost {
	var max Cost
	for i := 0; i < m.NumMachines(); i++ {
		for j := 0; j < m.NumJobs(); j++ {
			if c := m.Cost(i, j); c < Infinite && c > max {
				max = c
			}
		}
	}
	return max
}

// HypothesisHolds reports whether the Section VI hypothesis
// "every processing time is at most the optimal makespan" holds for the
// given model and a value opt (usually a lower bound; using a lower bound
// makes the check conservative).
func HypothesisHolds(m CostModel, opt Cost) bool {
	for i := 0; i < m.NumMachines(); i++ {
		for j := 0; j < m.NumJobs(); j++ {
			if m.Cost(i, j) > opt {
				return false
			}
		}
	}
	return true
}
