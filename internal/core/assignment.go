package core

import (
	"fmt"
	"slices"
	"sort"
)

// Assignment is a partition of the jobs of a cost model onto its machines.
// It is the object every balancing algorithm manipulates. Loads are
// maintained incrementally so Makespan and Load are O(1) amortized queries.
//
// Beyond the job→machine map, an Assignment keeps a per-machine job index
// (jobsOn/posOf) so that Jobs and AppendJobs are O(jobs-on-machine) instead
// of O(n). The index is built lazily on the first per-machine query and
// maintained by every mutation from then on; assignments that are never
// queried per machine (solver outputs, the clones of the stability check)
// never pay for it. Per-machine lists use swap-delete and are therefore
// unordered internally; queries sort on the way out, preserving the
// increasing-job-order contract the kernels and stability detection rely on.
//
// An Assignment is not safe for concurrent mutation; the concurrent runtime
// gives each machine ownership of its own job set and serializes pairwise
// exchanges (see internal/distrun).
type Assignment struct {
	model     CostModel
	machineOf []int  // machineOf[job] = machine, or -1 if unassigned
	load      []Cost // load[machine] = sum of costs of its jobs
	assigned  int    // number of assigned jobs

	// Per-machine job index, live iff indexed is true. jobsOn[i] holds
	// machine i's jobs in arbitrary order; posOf[j] is job j's position in
	// jobsOn[machineOf[j]] (meaningless while j is unassigned).
	jobsOn  [][]int
	posOf   []int
	indexed bool
}

// NewAssignment returns an empty assignment (all jobs unassigned) over the
// given model.
func NewAssignment(m CostModel) *Assignment {
	a := &Assignment{
		model:     m,
		machineOf: make([]int, m.NumJobs()),
		load:      make([]Cost, m.NumMachines()),
	}
	for j := range a.machineOf {
		a.machineOf[j] = -1
	}
	return a
}

// Model returns the cost model the assignment refers to.
func (a *Assignment) Model() CostModel { return a.model }

// Clone returns a deep copy of the assignment sharing the (immutable) model.
// The job index is not copied: the clone rebuilds it lazily on its first
// per-machine query. This keeps Clone at three allocations, which the
// O(m²)-clones stability check (protocol.Stable) depends on.
func (a *Assignment) Clone() *Assignment {
	b := &Assignment{
		model:     a.model,
		machineOf: append([]int(nil), a.machineOf...),
		load:      append([]Cost(nil), a.load...),
		assigned:  a.assigned,
	}
	return b
}

// ensureIndex builds the per-machine job index if it is not live. The build
// is a counting pass followed by per-machine subslices of one exactly-sized
// backing array: at 10M jobs over 100k machines this is two linear passes and
// three allocations, where machine-by-machine appends would pay millions of
// grow-and-copy steps on 100k separately reallocated lists. Full-slice
// expressions pin each machine's capacity, so a list that later outgrows its
// block (jobs migrating in) reallocates privately instead of overwriting its
// neighbour's region.
func (a *Assignment) ensureIndex() {
	if a.indexed {
		return
	}
	m := a.model.NumMachines()
	if a.jobsOn == nil {
		a.jobsOn = make([][]int, m)
	}
	if a.posOf == nil {
		a.posOf = make([]int, a.model.NumJobs())
	}
	counts := make([]int, m)
	for _, i := range a.machineOf {
		if i != -1 {
			counts[i]++
		}
	}
	backing := make([]int, 0, a.assigned)
	start := 0
	for i, c := range counts {
		a.jobsOn[i] = backing[start : start : start+c]
		start += c
	}
	for j, i := range a.machineOf {
		if i != -1 {
			a.posOf[j] = len(a.jobsOn[i])
			a.jobsOn[i] = append(a.jobsOn[i], j)
		}
	}
	a.indexed = true
}

// indexAssign records job joining machine in the live index.
func (a *Assignment) indexAssign(job, machine int) {
	a.posOf[job] = len(a.jobsOn[machine])
	a.jobsOn[machine] = append(a.jobsOn[machine], job)
}

// indexUnassign removes job from machine's list by swap-delete.
func (a *Assignment) indexUnassign(job, machine int) {
	list := a.jobsOn[machine]
	pos, last := a.posOf[job], len(list)-1
	moved := list[last]
	list[pos] = moved
	a.posOf[moved] = pos
	a.jobsOn[machine] = list[:last]
}

// Assign places job j on the given machine. The job must currently be
// unassigned.
func (a *Assignment) Assign(job, machine int) {
	if a.machineOf[job] != -1 {
		panic(fmt.Sprintf("core: job %d already assigned to machine %d", job, a.machineOf[job]))
	}
	a.machineOf[job] = machine
	a.load[machine] += a.model.Cost(machine, job)
	a.assigned++
	if a.indexed {
		a.indexAssign(job, machine)
	}
}

// Unassign removes job j from its machine. The job must be assigned.
func (a *Assignment) Unassign(job int) {
	i := a.machineOf[job]
	if i == -1 {
		panic(fmt.Sprintf("core: job %d is not assigned", job))
	}
	a.load[i] -= a.model.Cost(i, job)
	a.machineOf[job] = -1
	a.assigned--
	if a.indexed {
		a.indexUnassign(job, i)
	}
}

// Move transfers job j to the given machine (assigning it if it was
// unassigned).
func (a *Assignment) Move(job, machine int) {
	if a.machineOf[job] != -1 {
		a.Unassign(job)
	}
	a.Assign(job, machine)
}

// MachineOf returns the machine of job j, or -1 if unassigned.
func (a *Assignment) MachineOf(job int) int { return a.machineOf[job] }

// Load returns the current load of the given machine.
func (a *Assignment) Load(machine int) Cost { return a.load[machine] }

// Loads returns a copy of the load vector.
func (a *Assignment) Loads() []Cost {
	return append([]Cost(nil), a.load...)
}

// NumAssigned returns the number of currently assigned jobs.
func (a *Assignment) NumAssigned() int { return a.assigned }

// Complete reports whether every job is assigned.
func (a *Assignment) Complete() bool { return a.assigned == a.model.NumJobs() }

// Unplaced returns the jobs currently unassigned, in increasing job order —
// empty (nil) for a complete assignment. Partial assignments arise from
// crash plans that lose jobs (the sharded engine's snapshots leave lost
// jobs unassigned); Unplaced is how reports enumerate them.
func (a *Assignment) Unplaced() []int {
	if a.Complete() {
		return nil
	}
	out := make([]int, 0, a.model.NumJobs()-a.assigned)
	for j, i := range a.machineOf {
		if i == -1 {
			out = append(out, j)
		}
	}
	return out
}

// Jobs returns the jobs currently assigned to the given machine, in
// increasing job order. It is O(k log k) for k jobs on the machine (plus a
// one-time O(n+m) index build on the assignment's first per-machine query);
// hot paths that want to avoid the allocation use AppendJobs.
func (a *Assignment) Jobs(machine int) []int {
	return a.AppendJobs(nil, machine)
}

// AppendJobs appends the jobs currently assigned to the given machine to
// dst, in increasing job order, and returns the extended slice. It performs
// no allocation once dst has the capacity, which is what makes the engines'
// step paths allocation-free in steady state.
func (a *Assignment) AppendJobs(dst []int, machine int) []int {
	a.ensureIndex()
	start := len(dst)
	dst = append(dst, a.jobsOn[machine]...)
	slices.Sort(dst[start:])
	return dst
}

// Makespan returns the maximum machine load, i.e. Cmax of the partition.
func (a *Assignment) Makespan() Cost {
	var max Cost
	for _, l := range a.load {
		if l > max {
			max = l
		}
	}
	return max
}

// ArgMakespan returns a machine achieving the makespan (the smallest index
// among ties).
func (a *Assignment) ArgMakespan() int {
	arg := 0
	for i, l := range a.load {
		if l > a.load[arg] {
			arg = i
		}
	}
	return arg
}

// MinLoad returns the minimum machine load and a machine achieving it.
func (a *Assignment) MinLoad() (Cost, int) {
	arg := 0
	for i, l := range a.load {
		if l < a.load[arg] {
			arg = i
		}
	}
	return a.load[arg], arg
}

// TotalWork returns the sum of all machine loads under the current
// assignment (the "work" W of the paper's proofs).
func (a *Assignment) TotalWork() Cost {
	var w Cost
	for _, l := range a.load {
		w += l
	}
	return w
}

// Validate checks internal consistency: cached loads must equal recomputed
// loads and the assigned counter must match. It returns a descriptive error
// on the first inconsistency found.
func (a *Assignment) Validate() error {
	recomputed := make([]Cost, a.model.NumMachines())
	count := 0
	for j, i := range a.machineOf {
		if i == -1 {
			continue
		}
		if i < 0 || i >= a.model.NumMachines() {
			return fmt.Errorf("core: job %d on invalid machine %d", j, i)
		}
		recomputed[i] += a.model.Cost(i, j)
		count++
	}
	for i, l := range recomputed {
		if l != a.load[i] {
			return fmt.Errorf("core: machine %d cached load %d != recomputed %d", i, a.load[i], l)
		}
	}
	if count != a.assigned {
		return fmt.Errorf("core: assigned counter %d != actual %d", a.assigned, count)
	}
	return a.validateIndex()
}

// validateIndex cross-checks the per-machine job index against machineOf:
// every assigned job must sit exactly where posOf says, every indexed job
// must be assigned to the machine whose list holds it, and list sizes must
// add up. A live index that drifted from machineOf would silently corrupt
// every kernel input, so tests surface it here rather than downstream.
func (a *Assignment) validateIndex() error {
	if !a.indexed {
		return nil
	}
	if len(a.jobsOn) != a.model.NumMachines() {
		return fmt.Errorf("core: index has %d machine lists for %d machines", len(a.jobsOn), a.model.NumMachines())
	}
	total := 0
	for i, list := range a.jobsOn {
		total += len(list)
		for pos, j := range list {
			if j < 0 || j >= len(a.machineOf) {
				return fmt.Errorf("core: index lists invalid job %d on machine %d", j, i)
			}
			if a.machineOf[j] != i {
				return fmt.Errorf("core: index lists job %d on machine %d but machineOf says %d", j, i, a.machineOf[j])
			}
			if a.posOf[j] != pos {
				return fmt.Errorf("core: job %d at position %d of machine %d but posOf says %d", j, pos, i, a.posOf[j])
			}
		}
	}
	if total != a.assigned {
		return fmt.Errorf("core: index holds %d jobs, assigned counter %d", total, a.assigned)
	}
	return nil
}

// String renders a compact human-readable view of the assignment, used by
// examples and tests.
func (a *Assignment) String() string {
	s := fmt.Sprintf("Cmax=%d", a.Makespan())
	for i := 0; i < a.model.NumMachines(); i++ {
		s += fmt.Sprintf(" | m%d(load=%d):%v", i, a.load[i], a.Jobs(i))
	}
	return s
}

// RoundRobin assigns all jobs cyclically over the machines; it is the
// standard "arbitrary initial distribution" used to start the decentralized
// protocols.
func RoundRobin(m CostModel) *Assignment {
	a := NewAssignment(m)
	for j := 0; j < m.NumJobs(); j++ {
		a.Assign(j, j%m.NumMachines())
	}
	return a
}

// AllOnMachine assigns every job to one machine. Useful as a pathological
// starting point in convergence tests.
func AllOnMachine(m CostModel, machine int) *Assignment {
	a := NewAssignment(m)
	for j := 0; j < m.NumJobs(); j++ {
		a.Assign(j, machine)
	}
	return a
}

// FromMachineOf builds an assignment from an explicit job→machine mapping.
// Entries equal to -1 are left unassigned.
func FromMachineOf(m CostModel, machineOf []int) (*Assignment, error) {
	if len(machineOf) != m.NumJobs() {
		return nil, fmt.Errorf("core: mapping has %d entries for %d jobs", len(machineOf), m.NumJobs())
	}
	a := NewAssignment(m)
	for j, i := range machineOf {
		if i == -1 {
			continue
		}
		if i < 0 || i >= m.NumMachines() {
			return nil, fmt.Errorf("core: job %d mapped to invalid machine %d", j, i)
		}
		a.Assign(j, i)
	}
	return a, nil
}

// Equal reports whether two assignments place every job identically.
func (a *Assignment) Equal(b *Assignment) bool {
	if len(a.machineOf) != len(b.machineOf) {
		return false
	}
	for j := range a.machineOf {
		if a.machineOf[j] != b.machineOf[j] {
			return false
		}
	}
	return true
}

// Signature returns a canonical string key of the job→machine map, used for
// cycle detection in non-converging DLB2C runs.
func (a *Assignment) Signature() string {
	buf := make([]byte, 0, 4*len(a.machineOf))
	for _, i := range a.machineOf {
		buf = append(buf, byte(i), byte(i>>8), byte(i>>16), byte(i>>24))
	}
	return string(buf)
}

// SortedLoads returns the load vector in non-decreasing order; two
// assignments with equal sorted loads are equivalent for makespan purposes.
func (a *Assignment) SortedLoads() []Cost {
	ls := a.Loads()
	sort.Slice(ls, func(x, y int) bool { return ls[x] < ls[y] })
	return ls
}
