package core

import "fmt"

// KCluster generalizes TwoCluster to k ≥ 1 clusters of identical machines —
// the extension the paper names as future work ("its extension to more than
// two clusters of machines are possible future works"). A job's cost
// depends only on the cluster, so the matrix collapses to k×n.
type KCluster struct {
	sizes     []int         // machines per cluster
	clusterOf []int         // precomputed machine → cluster
	p         [][]Cost      // p[cluster][job]
	views     [][]*pairView // cached two-cluster views, views[a][b] with a != b
}

// NewKCluster builds a k-cluster instance. sizes[c] is the machine count of
// cluster c; p[c][j] the cost of job j on any machine of cluster c.
// Machines are numbered cluster by cluster: cluster 0 first, then 1, etc.
func NewKCluster(sizes []int, p [][]Cost) (*KCluster, error) {
	if len(sizes) == 0 {
		return nil, fmt.Errorf("core: k-cluster instance needs at least one cluster")
	}
	if len(p) != len(sizes) {
		return nil, fmt.Errorf("core: %d clusters but %d cost rows", len(sizes), len(p))
	}
	n := len(p[0])
	total := 0
	for c, s := range sizes {
		if s <= 0 {
			return nil, fmt.Errorf("core: cluster %d has non-positive size %d", c, s)
		}
		if len(p[c]) != n {
			return nil, fmt.Errorf("core: cluster %d has %d job costs, cluster 0 has %d", c, len(p[c]), n)
		}
		total += s
	}
	clusterOf := make([]int, 0, total)
	for c, s := range sizes {
		for i := 0; i < s; i++ {
			clusterOf = append(clusterOf, c)
		}
	}
	k := &KCluster{sizes: sizes, clusterOf: clusterOf, p: p}
	// Precompute every two-cluster view. Views are tiny, read-only, and
	// requested on every cross-cluster balancing step, so caching them here
	// keeps PairView allocation-free and safe to call from concurrent
	// sessions.
	k.views = make([][]*pairView, len(sizes))
	for a := range k.views {
		k.views[a] = make([]*pairView, len(sizes))
		for b := range k.views[a] {
			if a != b {
				k.views[a][b] = &pairView{k: k, a: a, b: b}
			}
		}
	}
	return k, nil
}

// NumMachines implements CostModel.
func (k *KCluster) NumMachines() int { return len(k.clusterOf) }

// NumJobs implements CostModel.
func (k *KCluster) NumJobs() int { return len(k.p[0]) }

// Cost implements CostModel.
func (k *KCluster) Cost(machine, job int) Cost { return k.p[k.clusterOf[machine]][job] }

// NumClusters returns k.
func (k *KCluster) NumClusters() int { return len(k.sizes) }

// ClusterOf returns the cluster of a machine.
func (k *KCluster) ClusterOf(machine int) int { return k.clusterOf[machine] }

// ClusterSize returns the machine count of a cluster.
func (k *KCluster) ClusterSize(cluster int) int { return k.sizes[cluster] }

// ClusterCost returns the cost of a job on any machine of a cluster.
func (k *KCluster) ClusterCost(cluster, job int) Cost { return k.p[cluster][job] }

// PairView restricts a KCluster to two of its clusters so that the
// two-cluster kernels (CLB2C on a pair, Greedy Load Balancing) apply
// unchanged: view cluster 0 is KCluster cluster a, view cluster 1 is b.
// Machine indices are unchanged — only machines actually belonging to a or
// b may be passed to kernels using the view. Views are cached at
// construction, so the call is allocation-free.
func (k *KCluster) PairView(a, b int) Clustered {
	if a == b {
		panic("core: PairView needs two distinct clusters")
	}
	return k.views[a][b]
}

type pairView struct {
	k    *KCluster
	a, b int
}

func (v *pairView) NumMachines() int { return v.k.NumMachines() }
func (v *pairView) NumJobs() int     { return v.k.NumJobs() }
func (v *pairView) Cost(machine, job int) Cost {
	return v.k.ClusterCost(v.k.ClusterOf(machine), job)
}

func (v *pairView) ClusterOf(machine int) int {
	switch v.k.ClusterOf(machine) {
	case v.a:
		return 0
	case v.b:
		return 1
	}
	panic(fmt.Sprintf("core: machine %d belongs to neither cluster %d nor %d", machine, v.a, v.b))
}

func (v *pairView) ClusterSize(cluster int) int {
	if cluster == 0 {
		return v.k.ClusterSize(v.a)
	}
	return v.k.ClusterSize(v.b)
}

func (v *pairView) ClusterCost(cluster, job int) Cost {
	if cluster == 0 {
		return v.k.ClusterCost(v.a, job)
	}
	return v.k.ClusterCost(v.b, job)
}

// TwoClusterOf converts a KCluster with exactly two clusters into the
// TwoCluster type (so the Theorem 6/7 tooling applies directly).
func (k *KCluster) TwoClusterOf() (*TwoCluster, error) {
	if len(k.sizes) != 2 {
		return nil, fmt.Errorf("core: instance has %d clusters, not 2", len(k.sizes))
	}
	return NewTwoCluster(k.sizes[0], k.sizes[1], k.p[0], k.p[1])
}

var _ CostModel = (*KCluster)(nil)
var _ Clustered = (*pairView)(nil)
