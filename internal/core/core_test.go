package core

import (
	"testing"
	"testing/quick"

	"hetlb/internal/rng"
)

func TestDenseBasics(t *testing.T) {
	d := MustDense([][]Cost{
		{1, 2, 3},
		{4, 5, 6},
	})
	if d.NumMachines() != 2 || d.NumJobs() != 3 {
		t.Fatalf("bad dims: %d machines, %d jobs", d.NumMachines(), d.NumJobs())
	}
	if d.Cost(1, 2) != 6 {
		t.Fatalf("Cost(1,2) = %d, want 6", d.Cost(1, 2))
	}
	if err := CheckModel(d); err != nil {
		t.Fatal(err)
	}
}

func TestNewDenseRejectsRagged(t *testing.T) {
	if _, err := NewDense([][]Cost{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged matrix accepted")
	}
	if _, err := NewDense(nil); err == nil {
		t.Fatal("empty matrix accepted")
	}
}

func TestCheckModelRejectsNegative(t *testing.T) {
	d := MustDense([][]Cost{{1, -2}})
	if err := CheckModel(d); err == nil {
		t.Fatal("negative cost accepted")
	}
}

func TestIdentical(t *testing.T) {
	id, err := NewIdentical(4, []Cost{5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for j, want := range []Cost{5, 7, 9} {
			if id.Cost(i, j) != want {
				t.Fatalf("Cost(%d,%d) = %d, want %d", i, j, id.Cost(i, j), want)
			}
		}
	}
	if _, err := NewIdentical(0, nil); err == nil {
		t.Fatal("m=0 accepted")
	}
}

func TestRelatedCeilingDivision(t *testing.T) {
	r, err := NewRelated([]int64{1, 2, 3}, []Cost{7})
	if err != nil {
		t.Fatal(err)
	}
	wants := []Cost{7, 4, 3} // ceil(7/1), ceil(7/2), ceil(7/3)
	for i, want := range wants {
		if got := r.Cost(i, 0); got != want {
			t.Fatalf("Cost(%d,0) = %d, want %d", i, got, want)
		}
	}
	if _, err := NewRelated([]int64{0}, nil); err == nil {
		t.Fatal("zero speed accepted")
	}
}

func TestRelatedFasterNeverSlower(t *testing.T) {
	gen := rng.New(1)
	for iter := 0; iter < 200; iter++ {
		size := gen.IntRange(1, 1000)
		s1 := gen.IntRange(1, 20)
		s2 := s1 + gen.IntRange(0, 20)
		r, err := NewRelated([]int64{s1, s2}, []Cost{size})
		if err != nil {
			t.Fatal(err)
		}
		if r.Cost(1, 0) > r.Cost(0, 0) {
			t.Fatalf("faster machine slower: size=%d speeds=(%d,%d)", size, s1, s2)
		}
	}
}

func TestTyped(t *testing.T) {
	ty, err := NewTyped([][]Cost{{1, 10}, {10, 1}}, []int{0, 1, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if ty.NumTypes() != 2 || ty.NumJobs() != 5 {
		t.Fatalf("bad dims: %d types, %d jobs", ty.NumTypes(), ty.NumJobs())
	}
	if ty.Cost(0, 0) != 1 || ty.Cost(0, 1) != 10 || ty.Cost(1, 1) != 1 {
		t.Fatal("typed costs wrong")
	}
	if got := ty.JobsOfType(1); len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 4 {
		t.Fatalf("JobsOfType(1) = %v", got)
	}
	if _, err := NewTyped([][]Cost{{1}}, []int{0, 1}); err == nil {
		t.Fatal("out-of-range type accepted")
	}
	if _, err := NewTyped([][]Cost{{1, 2}, {3}}, nil); err == nil {
		t.Fatal("ragged type matrix accepted")
	}
}

func TestTwoCluster(t *testing.T) {
	tc, err := NewTwoCluster(2, 3, []Cost{1, 4}, []Cost{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if tc.NumMachines() != 5 {
		t.Fatalf("NumMachines = %d", tc.NumMachines())
	}
	for i := 0; i < 2; i++ {
		if tc.ClusterOf(i) != 0 {
			t.Fatalf("machine %d should be cluster 0", i)
		}
	}
	for i := 2; i < 5; i++ {
		if tc.ClusterOf(i) != 1 {
			t.Fatalf("machine %d should be cluster 1", i)
		}
	}
	if tc.Cost(0, 1) != 4 || tc.Cost(4, 1) != 2 {
		t.Fatal("cluster costs wrong")
	}
	if tc.ClusterSize(0) != 2 || tc.ClusterSize(1) != 3 {
		t.Fatal("cluster sizes wrong")
	}
	if _, err := NewTwoCluster(0, 1, nil, nil); err == nil {
		t.Fatal("empty cluster accepted")
	}
	if _, err := NewTwoCluster(1, 1, []Cost{1}, []Cost{1, 2}); err == nil {
		t.Fatal("mismatched job vectors accepted")
	}
}

func TestMinMaxCost(t *testing.T) {
	d := MustDense([][]Cost{
		{5, Infinite},
		{3, 7},
		{9, Infinite},
	})
	c, i := MinCost(d, 0)
	if c != 3 || i != 1 {
		t.Fatalf("MinCost = (%d, %d)", c, i)
	}
	if MaxCost(d, 0) != 9 {
		t.Fatalf("MaxCost = %d", MaxCost(d, 0))
	}
	if MaxCost(d, 1) != 7 {
		t.Fatalf("MaxCost job1 = %d", MaxCost(d, 1))
	}
}

func TestMaxCostAllInfinite(t *testing.T) {
	d := MustDense([][]Cost{{Infinite}, {Infinite}})
	if MaxCost(d, 0) != Infinite {
		t.Fatal("MaxCost of an everywhere-infinite job should be Infinite")
	}
}

func TestAssignmentLifecycle(t *testing.T) {
	d := MustDense([][]Cost{
		{1, 2, 3},
		{4, 5, 6},
	})
	a := NewAssignment(d)
	if a.Complete() {
		t.Fatal("empty assignment reported complete")
	}
	a.Assign(0, 0)
	a.Assign(1, 1)
	a.Assign(2, 0)
	if !a.Complete() || a.NumAssigned() != 3 {
		t.Fatal("assignment should be complete")
	}
	if a.Load(0) != 4 || a.Load(1) != 5 {
		t.Fatalf("loads = %d, %d", a.Load(0), a.Load(1))
	}
	if a.Makespan() != 5 || a.ArgMakespan() != 1 {
		t.Fatalf("makespan = %d on %d", a.Makespan(), a.ArgMakespan())
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	a.Move(1, 0) // now machine 0 has jobs 0,1,2 = 1+2+3 = 6
	if a.Load(0) != 6 || a.Load(1) != 0 {
		t.Fatalf("after move loads = %d, %d", a.Load(0), a.Load(1))
	}
	min, arg := a.MinLoad()
	if min != 0 || arg != 1 {
		t.Fatalf("MinLoad = (%d, %d)", min, arg)
	}
	if got := a.Jobs(0); len(got) != 3 {
		t.Fatalf("Jobs(0) = %v", got)
	}
	if a.TotalWork() != 6 {
		t.Fatalf("TotalWork = %d", a.TotalWork())
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAssignPanicsOnDouble(t *testing.T) {
	d := MustDense([][]Cost{{1}})
	a := NewAssignment(d)
	a.Assign(0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("double assign did not panic")
		}
	}()
	a.Assign(0, 0)
}

func TestUnassignPanicsOnUnassigned(t *testing.T) {
	d := MustDense([][]Cost{{1}})
	a := NewAssignment(d)
	defer func() {
		if recover() == nil {
			t.Fatal("unassign of unassigned job did not panic")
		}
	}()
	a.Unassign(0)
}

func TestCloneIsDeep(t *testing.T) {
	d := MustDense([][]Cost{{1, 2}, {3, 4}})
	a := RoundRobin(d)
	b := a.Clone()
	b.Move(0, 1)
	if a.MachineOf(0) != 0 {
		t.Fatal("mutating clone affected original")
	}
	if a.Equal(b) {
		t.Fatal("Equal should be false after divergence")
	}
	c := a.Clone()
	if !a.Equal(c) {
		t.Fatal("fresh clone should be Equal")
	}
}

func TestRoundRobinAndAllOn(t *testing.T) {
	id, _ := NewIdentical(3, []Cost{1, 1, 1, 1, 1, 1, 1})
	a := RoundRobin(id)
	if a.Load(0) != 3 || a.Load(1) != 2 || a.Load(2) != 2 {
		t.Fatalf("round robin loads: %v", a.Loads())
	}
	b := AllOnMachine(id, 1)
	if b.Load(1) != 7 || b.Load(0) != 0 {
		t.Fatalf("all-on loads: %v", b.Loads())
	}
}

func TestFromMachineOf(t *testing.T) {
	d := MustDense([][]Cost{{1, 2, 3}, {4, 5, 6}})
	a, err := FromMachineOf(d, []int{1, -1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if a.MachineOf(0) != 1 || a.MachineOf(1) != -1 || a.MachineOf(2) != 0 {
		t.Fatal("mapping not honored")
	}
	if _, err := FromMachineOf(d, []int{0}); err == nil {
		t.Fatal("short mapping accepted")
	}
	if _, err := FromMachineOf(d, []int{0, 0, 9}); err == nil {
		t.Fatal("invalid machine accepted")
	}
}

func TestUnplaced(t *testing.T) {
	d := MustDense([][]Cost{{1, 2, 3, 4}, {4, 5, 6, 7}})
	a, err := FromMachineOf(d, []int{1, -1, 0, -1})
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Unplaced(); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("Unplaced = %v, want [1 3]", got)
	}
	a.Assign(1, 0)
	a.Assign(3, 1)
	if got := a.Unplaced(); got != nil {
		t.Fatalf("complete assignment Unplaced = %v, want nil", got)
	}
}

func TestSignatureDistinguishes(t *testing.T) {
	d := MustDense([][]Cost{{1, 2}, {3, 4}})
	a, _ := FromMachineOf(d, []int{0, 1})
	b, _ := FromMachineOf(d, []int{1, 0})
	if a.Signature() == b.Signature() {
		t.Fatal("different assignments share a signature")
	}
	c, _ := FromMachineOf(d, []int{0, 1})
	if a.Signature() != c.Signature() {
		t.Fatal("equal assignments have different signatures")
	}
}

func TestSortedLoads(t *testing.T) {
	d := MustDense([][]Cost{{5, 1}, {5, 1}, {5, 1}})
	a, _ := FromMachineOf(d, []int{2, 0})
	ls := a.SortedLoads()
	if ls[0] != 0 || ls[1] != 1 || ls[2] != 5 {
		t.Fatalf("SortedLoads = %v", ls)
	}
}

func TestLowerBoundSimple(t *testing.T) {
	// One job of cost 10 everywhere: LB must be 10.
	d := MustDense([][]Cost{{10}, {10}})
	if LowerBound(d) != 10 {
		t.Fatalf("LowerBound = %d", LowerBound(d))
	}
	// Four unit jobs on two machines: LB = ceil(4/2) = 2.
	id, _ := NewIdentical(2, []Cost{1, 1, 1, 1})
	if LowerBound(id) != 2 {
		t.Fatalf("LowerBound = %d", LowerBound(id))
	}
	if IdenticalLowerBound(id) != 2 {
		t.Fatalf("IdenticalLowerBound = %d", IdenticalLowerBound(id))
	}
}

func TestIdenticalLowerBoundMaxJob(t *testing.T) {
	id, _ := NewIdentical(4, []Cost{9, 1, 1})
	if IdenticalLowerBound(id) != 9 {
		t.Fatalf("IdenticalLowerBound = %d, want 9", IdenticalLowerBound(id))
	}
}

func TestLowerBoundNeverExceedsAnySchedule(t *testing.T) {
	// Property: LowerBound(model) <= makespan of any complete assignment.
	gen := rng.New(77)
	for iter := 0; iter < 300; iter++ {
		m := 1 + gen.Intn(4)
		n := 1 + gen.Intn(8)
		p := make([][]Cost, m)
		for i := range p {
			p[i] = make([]Cost, n)
			for j := range p[i] {
				p[i][j] = gen.IntRange(1, 50)
			}
		}
		d := MustDense(p)
		lb := LowerBound(d)
		a := NewAssignment(d)
		for j := 0; j < n; j++ {
			a.Assign(j, gen.Intn(m))
		}
		if lb > a.Makespan() {
			t.Fatalf("LowerBound %d exceeds a feasible makespan %d", lb, a.Makespan())
		}
	}
}

func TestTwoClusterFractionalLB(t *testing.T) {
	// Two machines (1+1), two jobs each costing 4 on their "good" cluster
	// and 100 on the other: fractional LB should be 4 (each job on its
	// cluster).
	tc, _ := NewTwoCluster(1, 1, []Cost{4, 100}, []Cost{100, 4})
	lb := TwoClusterFractionalLB(tc)
	if lb < 3.999 || lb > 4.001 {
		t.Fatalf("fractional LB = %v, want 4", lb)
	}
}

func TestTwoClusterFractionalLBIsLowerBound(t *testing.T) {
	// Property: the fractional bound never exceeds the makespan of any
	// feasible integral assignment.
	gen := rng.New(101)
	for iter := 0; iter < 200; iter++ {
		m1 := 1 + gen.Intn(3)
		m2 := 1 + gen.Intn(3)
		n := 1 + gen.Intn(8)
		p0 := make([]Cost, n)
		p1 := make([]Cost, n)
		for j := 0; j < n; j++ {
			p0[j] = gen.IntRange(1, 30)
			p1[j] = gen.IntRange(1, 30)
		}
		tc, err := NewTwoCluster(m1, m2, p0, p1)
		if err != nil {
			t.Fatal(err)
		}
		lb := TwoClusterFractionalLB(tc)
		a := NewAssignment(tc)
		for j := 0; j < n; j++ {
			a.Assign(j, gen.Intn(m1+m2))
		}
		if lb > float64(a.Makespan())+1e-9 {
			t.Fatalf("fractional LB %v exceeds feasible makespan %d", lb, a.Makespan())
		}
	}
}

func TestTwoClusterFractionalLBEmpty(t *testing.T) {
	tc, _ := NewTwoCluster(2, 2, nil, nil)
	if lb := TwoClusterFractionalLB(tc); lb != 0 {
		t.Fatalf("empty instance LB = %v", lb)
	}
}

func TestPMaxSkipsInfinite(t *testing.T) {
	d := MustDense([][]Cost{{3, Infinite}, {8, 2}})
	if PMax(d) != 8 {
		t.Fatalf("PMax = %d", PMax(d))
	}
}

func TestHypothesisHolds(t *testing.T) {
	d := MustDense([][]Cost{{3, 5}, {4, 2}})
	if !HypothesisHolds(d, 5) {
		t.Fatal("hypothesis should hold at opt=5")
	}
	if HypothesisHolds(d, 4) {
		t.Fatal("hypothesis should fail at opt=4")
	}
}

func TestTotalWorkOn(t *testing.T) {
	d := MustDense([][]Cost{{1, 2, 3}, {4, 5, 6}})
	if TotalWorkOn(d, 0) != 6 || TotalWorkOn(d, 1) != 15 {
		t.Fatal("TotalWorkOn wrong")
	}
}

func TestLoadConservationProperty(t *testing.T) {
	// quick.Check: moving jobs around never changes the identity
	// sum-of-loads == sum of costs on current machines, as checked by
	// Validate.
	id, _ := NewIdentical(4, []Cost{3, 1, 4, 1, 5, 9, 2, 6})
	a := RoundRobin(id)
	gen := rng.New(5)
	f := func(seed uint64) bool {
		g := rng.New(seed ^ gen.Uint64())
		for k := 0; k < 16; k++ {
			a.Move(g.Intn(8), g.Intn(4))
		}
		if err := a.Validate(); err != nil {
			return false
		}
		return a.TotalWork() == 31 // 3+1+4+1+5+9+2+6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
