package core

import "testing"

func TestKClusterShape(t *testing.T) {
	kc, err := NewKCluster([]int{2, 3, 1}, [][]Cost{
		{1, 2}, {3, 4}, {5, 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if kc.NumMachines() != 6 || kc.NumJobs() != 2 || kc.NumClusters() != 3 {
		t.Fatal("bad dims")
	}
	wantCluster := []int{0, 0, 1, 1, 1, 2}
	for i, want := range wantCluster {
		if kc.ClusterOf(i) != want {
			t.Fatalf("machine %d in cluster %d, want %d", i, kc.ClusterOf(i), want)
		}
	}
	if kc.Cost(0, 1) != 2 || kc.Cost(4, 0) != 3 || kc.Cost(5, 1) != 6 {
		t.Fatal("costs wrong")
	}
	if kc.ClusterSize(1) != 3 {
		t.Fatal("cluster size wrong")
	}
}

func TestKClusterRejectsBadInput(t *testing.T) {
	if _, err := NewKCluster(nil, nil); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := NewKCluster([]int{1}, [][]Cost{{1}, {2}}); err == nil {
		t.Fatal("row count mismatch accepted")
	}
	if _, err := NewKCluster([]int{1, 0}, [][]Cost{{1}, {1}}); err == nil {
		t.Fatal("zero-size cluster accepted")
	}
	if _, err := NewKCluster([]int{1, 1}, [][]Cost{{1, 2}, {1}}); err == nil {
		t.Fatal("ragged costs accepted")
	}
}

func TestPairViewMapsClusters(t *testing.T) {
	kc, _ := NewKCluster([]int{1, 1, 1}, [][]Cost{
		{10, 20}, {30, 40}, {50, 60},
	})
	v := kc.PairView(2, 0)
	if v.ClusterOf(2) != 0 || v.ClusterOf(0) != 1 {
		t.Fatal("view cluster mapping wrong")
	}
	if v.ClusterCost(0, 1) != 60 || v.ClusterCost(1, 0) != 10 {
		t.Fatal("view costs wrong")
	}
	if v.ClusterSize(0) != 1 || v.ClusterSize(1) != 1 {
		t.Fatal("view sizes wrong")
	}
	if v.Cost(1, 0) != 30 { // machine 1 keeps its true cost
		t.Fatal("view Cost wrong")
	}
}

func TestPairViewPanicsOutsidePair(t *testing.T) {
	kc, _ := NewKCluster([]int{1, 1, 1}, [][]Cost{{1}, {2}, {3}})
	v := kc.PairView(0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("machine outside the pair accepted")
		}
	}()
	v.ClusterOf(2)
}

func TestPairViewSameClusterPanics(t *testing.T) {
	kc, _ := NewKCluster([]int{1, 1}, [][]Cost{{1}, {2}})
	defer func() {
		if recover() == nil {
			t.Fatal("PairView(1,1) accepted")
		}
	}()
	kc.PairView(1, 1)
}

func TestTwoClusterOf(t *testing.T) {
	kc, _ := NewKCluster([]int{2, 3}, [][]Cost{{1, 2}, {3, 4}})
	tc, err := kc.TwoClusterOf()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		for j := 0; j < 2; j++ {
			if tc.Cost(i, j) != kc.Cost(i, j) {
				t.Fatalf("cost mismatch at (%d,%d)", i, j)
			}
		}
	}
	kc3, _ := NewKCluster([]int{1, 1, 1}, [][]Cost{{1}, {2}, {3}})
	if _, err := kc3.TwoClusterOf(); err == nil {
		t.Fatal("3-cluster conversion accepted")
	}
}
