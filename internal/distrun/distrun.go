// Package distrun executes the decentralized protocols the way the paper
// describes them operationally: every machine runs its own loop
// concurrently (one goroutine per machine), repeatedly picks a random peer
// and rebalances the pair. It complements the sequential engine in
// internal/gossip: gossip serializes the dynamics for exact reproducibility,
// distrun actually runs them in parallel and demonstrates that the protocols
// need no coordinator — only pairwise sessions.
//
// Synchronization model. Each machine owns its job list behind a mutex. A
// balancing session locks the two machines in increasing index order (a
// total order on locks, so sessions cannot deadlock), pools the two job
// lists, calls the protocol's pure Split kernel, and writes the two sides
// back. Sessions on disjoint pairs proceed in parallel. Loads are derived
// from owned job lists, so there is no shared mutable state beyond the two
// locked machines and a few atomic counters.
//
// Termination. The protocols may never converge (Proposition 8), so a run
// is bounded by a global session budget; optionally it also stops once a
// configurable streak of consecutive sessions observed no change, after
// which stability is verified sequentially and reported honestly.
package distrun

import (
	"context"
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"hetlb/internal/core"
	"hetlb/internal/obs"
	"hetlb/internal/obs/span"
	"hetlb/internal/obs/timeline"
	"hetlb/internal/pairwise"
	"hetlb/internal/protocol"
	"hetlb/internal/rng"
)

// Metrics bundles the runtime's obs instruments. All record paths are
// allocation-free and safe from every machine goroutine.
type Metrics struct {
	// Sessions counts completed pairwise sessions; Changed those that
	// altered the partition; Moves the jobs that switched sides.
	Sessions, Changed, Moves *obs.Counter
	// PerMachine counts each machine's session participations (initiator
	// or target), mirroring Result.Exchanges.
	PerMachine *obs.CounterVec
	// LockWait is the wall-clock nanoseconds a session spent acquiring the
	// pair's two mutexes — the runtime's only contention point.
	LockWait *obs.Histogram
}

// NewMetrics registers the runtime's instruments for a system of the given
// machine count (idempotent on the same registry).
func NewMetrics(r *obs.Registry, machines int) *Metrics {
	return &Metrics{
		Sessions:   r.Counter("distrun_sessions_total", "pairwise balancing sessions completed"),
		Changed:    r.Counter("distrun_changed_sessions_total", "sessions that changed the partition"),
		Moves:      r.Counter("distrun_moves_total", "jobs that switched machines across all sessions"),
		PerMachine: r.CounterVec("distrun_machine_sessions_total", "session participations per machine", "machine", obs.IndexLabels(machines)),
		LockWait:   r.Histogram("distrun_lock_wait_ns", "nanoseconds spent acquiring the session's pair locks", obs.Pow2Bounds(30)),
	}
}

// Config parameterizes a run.
type Config struct {
	// Seed derives each machine's private generator.
	Seed uint64
	// MaxSteps is the global budget of pairwise sessions (required > 0).
	MaxSteps int64
	// QuiesceStreak stops the run early once EVERY machine has initiated
	// this many consecutive sessions without observing a change (any
	// change anywhere resets all counts); 0 disables early stopping.
	// A per-machine requirement is essential: a single fast machine can
	// see hundreds of quiet sessions while a pair it never probes is
	// still unbalanced.
	QuiesceStreak int64
	// Context, when non-nil, allows a graceful shutdown: cancellation stops
	// every machine loop after its current session, Run returns the partial
	// result, and no goroutine outlives the call. Nil means Background.
	Context context.Context
	// Metrics, when non-nil, receives session/lock instrumentation (build
	// with NewMetrics for the same machine count).
	Metrics *Metrics
	// Tracer, when non-nil, receives one EvPairSelected event per session
	// (Time = session sequence number, Value = jobs moved).
	Tracer *obs.Tracer
	// Spans, when non-nil, receives one KindSession span per pairwise
	// session (A = initiator, B = peer, Start = End = session sequence
	// number, Value = jobs moved, FlagCommitted when the partition changed),
	// parented to a KindRun span closed at the end of the run. Sessions
	// complete concurrently, so the append ORDER is scheduling-dependent
	// (the spans themselves are not) — this runtime is inherently
	// nondeterministic, unlike gossip/netsim.
	Spans *span.Recorder
	// Timeline, when non-nil, receives one point per session: Time = session
	// sequence number and cumulative Moves. Cmax/Imbalance are recorded as 0
	// — computing them would require locking every machine mid-run.
	Timeline *timeline.Recorder
}

// Result summarizes a run.
type Result struct {
	// Assignment is the final placement, reconstructed from the machines'
	// job lists.
	Assignment *core.Assignment
	// Steps is the number of pairwise sessions executed.
	Steps int64
	// Converged reports whether the final schedule was verified stable.
	Converged bool
	// Exchanges counts each machine's session participations.
	Exchanges []int64
}

type machineState struct {
	mu   sync.Mutex
	jobs []int // sorted by job index
}

// Run executes the protocol concurrently from the given complete initial
// assignment (which is not mutated) and returns the outcome.
func Run(p protocol.Protocol, initial *core.Assignment, cfg Config) (Result, error) {
	if !initial.Complete() {
		return Result{}, fmt.Errorf("distrun: initial assignment must place every job")
	}
	if cfg.MaxSteps <= 0 {
		return Result{}, fmt.Errorf("distrun: MaxSteps must be positive")
	}
	model := initial.Model()
	m := model.NumMachines()

	ms := make([]machineState, m)
	for j := 0; j < model.NumJobs(); j++ {
		i := initial.MachineOf(j)
		ms[i].jobs = append(ms[i].jobs, j) // increasing j: already sorted
	}

	ctx := cfg.Context
	if ctx == nil {
		ctx = context.Background()
	}

	exchanges := make([]int64, m)
	var steps atomic.Int64
	var done atomic.Bool
	var movesTotal atomic.Int64
	tracker := newQuiesceTracker(m)

	var runSpan span.ID
	if cfg.Spans != nil {
		runSpan = cfg.Spans.NextID()
	}
	closeRun := func(res Result) Result {
		if cfg.Spans != nil {
			var fl span.Flags
			if res.Converged {
				fl = span.FlagCommitted
			}
			cfg.Spans.Append(span.Span{
				ID:     runSpan,
				Parent: cfg.Spans.Root(),
				Kind:   span.KindRun,
				Flags:  fl,
				A:      -1,
				B:      -1,
				Start:  0,
				End:    res.Steps,
				Value:  int64(res.Assignment.Makespan()),
			})
		}
		return res
	}

	if m == 1 {
		res, err := finish(p, model, ms, steps.Load(), exchanges)
		if err != nil {
			return res, err
		}
		return closeRun(res), nil
	}

	// Derive per-machine generators deterministically from the seed before
	// starting any goroutine, so each machine's peer sequence does not
	// depend on scheduling.
	root := rng.New(cfg.Seed)
	gens := make([]*rng.RNG, m)
	for i := range gens {
		gens[i] = root.Split()
	}

	var wg sync.WaitGroup
	for i := 0; i < m; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			gen := gens[i]
			// One scratch per machine goroutine: sessions run under the
			// pair's locks, but scratch reuse must not cross goroutines.
			var scratch pairwise.Scratch
			for {
				if done.Load() || ctx.Err() != nil {
					return
				}
				// Claim a step from the global budget.
				s := steps.Add(1)
				if s > cfg.MaxSteps {
					steps.Add(-1)
					return
				}
				peer := gen.Pick(m, i)
				moved := session(p, ms, i, peer, &scratch, cfg.Metrics)
				changed := moved > 0
				atomic.AddInt64(&exchanges[i], 1)
				atomic.AddInt64(&exchanges[peer], 1)
				if met := cfg.Metrics; met != nil {
					met.Sessions.Inc()
					if changed {
						met.Changed.Inc()
						met.Moves.Add(int64(moved))
					}
					met.PerMachine.At(i).Inc()
					met.PerMachine.At(peer).Inc()
				}
				if cfg.Tracer != nil {
					cfg.Tracer.Emit(obs.Event{Time: s - 1, Type: obs.EvPairSelected, A: int32(i), B: int32(peer), Value: int64(moved)})
				}
				total := movesTotal.Add(int64(moved))
				if cfg.Spans != nil {
					var fl span.Flags
					if changed {
						fl = span.FlagCommitted
					}
					cfg.Spans.Append(span.Span{
						Parent: runSpan,
						Kind:   span.KindSession,
						Flags:  fl,
						A:      int32(i),
						B:      int32(peer),
						Start:  s - 1,
						End:    s - 1,
						Value:  int64(moved),
					})
				}
				if cfg.Timeline != nil {
					cfg.Timeline.Record(timeline.Point{Time: s - 1, Moves: total})
				}
				if cfg.QuiesceStreak > 0 && tracker.record(i, changed, cfg.QuiesceStreak) {
					done.Store(true)
					return
				}
				// Yield after every session so that all machine loops
				// interleave even on GOMAXPROCS=1; otherwise one machine
				// can consume the whole session budget while pairs not
				// involving it are never balanced.
				runtime.Gosched()
			}
		}(i)
	}
	wg.Wait()
	res, err := finish(p, model, ms, steps.Load(), exchanges)
	if err != nil {
		return res, err
	}
	return closeRun(res), nil
}

// quiesceTracker implements the all-machines-quiet stopping rule. It is a
// single small critical section per session; the sessions themselves do
// O(u log u) work, so the shared lock is not a scalability concern for a
// simulator.
type quiesceTracker struct {
	mu    sync.Mutex
	quiet []int64 // consecutive quiet sessions per initiator since last change
}

func newQuiesceTracker(m int) *quiesceTracker {
	return &quiesceTracker{quiet: make([]int64, m)}
}

// record notes the outcome of a session initiated by machine i and reports
// whether the quiesce condition (every machine quiet for at least k
// consecutive own sessions) now holds.
func (q *quiesceTracker) record(i int, changed bool, k int64) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if changed {
		for idx := range q.quiet {
			q.quiet[idx] = 0
		}
		return false
	}
	q.quiet[i]++
	for _, c := range q.quiet {
		if c < k {
			return false
		}
	}
	return true
}

// session locks the pair in index order, pools their jobs into the caller's
// scratch, splits them with the protocol's scratch kernel and writes the
// sides back into the machines' own buffers. It returns the number of jobs
// that switched sides (0 means the partition is unchanged: the union is
// conserved, so any change shows up as a job missing from its old list).
// In steady state the only memory touched is the scratch and the two job
// lists, so sessions are allocation-free.
func session(p protocol.Protocol, ms []machineState, i, peer int, s *pairwise.Scratch, met *Metrics) int {
	lo, hi := i, peer
	if lo > hi {
		lo, hi = hi, lo
	}
	if met != nil {
		t0 := time.Now() //hetlb:nondeterministic-ok wall clock only feeds the lock-wait histogram, never job placement
		ms[lo].mu.Lock()
		ms[hi].mu.Lock()
		met.LockWait.Observe(time.Since(t0).Nanoseconds()) //hetlb:nondeterministic-ok wall clock only feeds the lock-wait histogram, never job placement
	} else {
		ms[lo].mu.Lock()
		ms[hi].mu.Lock()
	}
	defer ms[hi].mu.Unlock()
	defer ms[lo].mu.Unlock()

	s.Union = pairwise.MergeSortedInto(s.Union[:0], ms[i].jobs, ms[peer].jobs)
	toI, toPeer := p.SplitScratch(s, i, peer, s.Union)
	// The split sides alias the scratch, which the session owns — sort them
	// in place to restore the increasing-index invariant of the job lists.
	slices.Sort(toI)
	slices.Sort(toPeer)
	moved := pairwise.DiffCount(ms[i].jobs, toI) + pairwise.DiffCount(ms[peer].jobs, toPeer)
	ms[i].jobs = append(ms[i].jobs[:0], toI...)
	ms[peer].jobs = append(ms[peer].jobs[:0], toPeer...)
	return moved
}

// finish reconstructs the assignment, verifies stability and packages the
// result.
func finish(p protocol.Protocol, model core.CostModel, ms []machineState, steps int64, exchanges []int64) (Result, error) {
	a := core.NewAssignment(model)
	for i := range ms {
		for _, j := range ms[i].jobs {
			a.Assign(j, i)
		}
	}
	if !a.Complete() {
		return Result{}, fmt.Errorf("distrun: %d jobs lost during the run", model.NumJobs()-a.NumAssigned())
	}
	return Result{
		Assignment: a,
		Steps:      steps,
		Converged:  protocol.Stable(p, a),
		Exchanges:  exchanges,
	}, nil
}
