package distrun

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"hetlb/internal/core"
	"hetlb/internal/exact"
	"hetlb/internal/obs"
	"hetlb/internal/protocol"
	"hetlb/internal/rng"
	"hetlb/internal/workload"
)

func TestJobsConservedUnderConcurrency(t *testing.T) {
	gen := rng.New(1)
	tc := workload.UniformTwoCluster(gen, 8, 4, 96, 1, 100)
	initial := core.RoundRobin(tc)
	res, err := Run(protocol.DLB2C{Model: tc}, initial, Config{Seed: 2, MaxSteps: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Assignment.Complete() {
		t.Fatal("jobs lost")
	}
	if err := res.Assignment.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Steps != 5000 && !res.Converged {
		// With no quiescing the budget must be fully consumed unless the
		// run converged... the engine has no early exit without
		// QuiesceStreak, so Steps must equal the budget.
		t.Fatalf("steps = %d, want 5000", res.Steps)
	}
	var totalEx int64
	for _, e := range res.Exchanges {
		totalEx += e
	}
	if totalEx != 2*res.Steps {
		t.Fatalf("exchange participations %d != 2×steps %d", totalEx, res.Steps)
	}
}

func TestInitialNotMutated(t *testing.T) {
	gen := rng.New(2)
	id := workload.UniformIdentical(gen, 4, 20, 1, 50)
	initial := core.AllOnMachine(id, 0)
	before := initial.Clone()
	if _, err := Run(protocol.SameCost{Model: id}, initial, Config{Seed: 3, MaxSteps: 500}); err != nil {
		t.Fatal(err)
	}
	if !initial.Equal(before) {
		t.Fatal("Run mutated the initial assignment")
	}
}

func TestOneTypeReachesOptimalMakespan(t *testing.T) {
	// Lemma 4 guarantees the *makespan* converges to the optimum under
	// OJTB with one job type. Job identities may keep churning between
	// equal-load placements (pairwise kernels re-canonicalize identities),
	// so exact placement stability is not required — only the makespan.
	ty, _ := core.NewTyped([][]core.Cost{{2}, {3}, {5}, {4}}, make([]int, 12))
	initial := core.AllOnMachine(ty, 0)
	res, err := Run(protocol.OJTB{Model: ty}, initial, Config{Seed: 4, MaxSteps: 20000, QuiesceStreak: 200})
	if err != nil {
		t.Fatal(err)
	}
	if opt := exact.Solve(ty).Opt; res.Assignment.Makespan() != opt {
		t.Fatalf("reached %d, OPT=%d", res.Assignment.Makespan(), opt)
	}
}

func TestStableImpliesTwoApproxConcurrent(t *testing.T) {
	gen := rng.New(5)
	checked := 0
	for iter := 0; iter < 250 && checked < 15; iter++ {
		tc := workload.UniformTwoCluster(gen, 2, 2, 10, 1, 10)
		initial := core.RoundRobin(tc)
		res, err := Run(protocol.DLB2C{Model: tc}, initial, Config{Seed: gen.Uint64(), MaxSteps: 4000, QuiesceStreak: 150})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			continue // churn or genuine non-convergence: both allowed
		}
		sol := exact.Solve(tc)
		if !sol.Proven || !core.HypothesisHolds(tc, sol.Opt) {
			continue
		}
		checked++
		if res.Assignment.Makespan() > 2*sol.Opt {
			t.Fatalf("stable concurrent DLB2C %d > 2·OPT %d", res.Assignment.Makespan(), sol.Opt)
		}
	}
	if checked < 3 {
		t.Fatalf("only %d converged instances checked", checked)
	}
}

func TestQuiesceStopsEarly(t *testing.T) {
	// A trivially stable start (perfectly spread unit jobs) must quiesce
	// long before the budget.
	id, _ := core.NewIdentical(4, []core.Cost{5, 5, 5, 5})
	initial := core.RoundRobin(id) // one job per machine: stable
	res, err := Run(protocol.SameCost{Model: id}, initial, Config{Seed: 6, MaxSteps: 1 << 20, QuiesceStreak: 64})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("stable start not detected")
	}
	if res.Steps >= 1<<20 {
		t.Fatal("quiescing did not stop the run early")
	}
}

func TestSingleMachine(t *testing.T) {
	id, _ := core.NewIdentical(1, []core.Cost{1, 2, 3})
	initial := core.AllOnMachine(id, 0)
	res, err := Run(protocol.SameCost{Model: id}, initial, Config{Seed: 7, MaxSteps: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Steps != 0 {
		t.Fatalf("single machine: %+v", res)
	}
	if res.Assignment.Makespan() != 6 {
		t.Fatal("assignment corrupted")
	}
}

func TestRejectsBadConfig(t *testing.T) {
	id, _ := core.NewIdentical(2, []core.Cost{1})
	a := core.NewAssignment(id) // incomplete
	if _, err := Run(protocol.SameCost{Model: id}, a, Config{MaxSteps: 10}); err == nil {
		t.Fatal("incomplete assignment accepted")
	}
	b := core.AllOnMachine(id, 0)
	if _, err := Run(protocol.SameCost{Model: id}, b, Config{MaxSteps: 0}); err == nil {
		t.Fatal("zero budget accepted")
	}
}

func TestHeavyConcurrencyStress(t *testing.T) {
	// Large machine count and budget: primarily a -race exercise.
	if testing.Short() {
		t.Skip("stress test")
	}
	gen := rng.New(8)
	tc := workload.UniformTwoCluster(gen, 32, 16, 384, 1, 1000)
	initial := core.RoundRobin(tc)
	res, err := Run(protocol.DLB2C{Model: tc}, initial, Config{Seed: 9, MaxSteps: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Assignment.Complete() {
		t.Fatal("jobs lost under stress")
	}
	if err := res.Assignment.Validate(); err != nil {
		t.Fatal(err)
	}
	// The schedule should have improved substantially over round-robin.
	if res.Assignment.Makespan() >= core.RoundRobin(tc).Makespan() {
		t.Fatal("no improvement after 20000 concurrent sessions")
	}
}

func BenchmarkConcurrentDLB2C(b *testing.B) {
	gen := rng.New(10)
	tc := workload.UniformTwoCluster(gen, 64, 32, 768, 1, 1000)
	initial := core.RoundRobin(tc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(protocol.DLB2C{Model: tc}, initial, Config{Seed: uint64(i), MaxSteps: 96 * 5}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestObsCountersMatchExchanges runs the concurrent runtime with the obs
// instruments attached and asserts that every metric agrees exactly with
// the runtime's own accounting — under -race in CI, this exercises the
// record path from all machine goroutines simultaneously.
func TestObsCountersMatchExchanges(t *testing.T) {
	gen := rng.New(71)
	tc := workload.UniformTwoCluster(gen, 8, 4, 96, 1, 100)
	initial := core.RoundRobin(tc)
	reg := obs.NewRegistry()
	met := NewMetrics(reg, tc.NumMachines())
	tr := obs.NewTracer(1 << 14)
	res, err := Run(protocol.DLB2C{Model: tc}, initial, Config{
		Seed:     72,
		MaxSteps: 600,
		Metrics:  met,
		Tracer:   tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := met.Sessions.Value(); got != res.Steps {
		t.Fatalf("distrun_sessions_total = %d, want %d", got, res.Steps)
	}
	for i, want := range res.Exchanges {
		if got := met.PerMachine.At(i).Value(); got != want {
			t.Fatalf("machine %d sessions = %d, want %d", i, got, want)
		}
	}
	if got, want := met.PerMachine.Total(), 2*res.Steps; got != want {
		t.Fatalf("total participations = %d, want %d", got, want)
	}
	if met.Changed.Value() > met.Sessions.Value() {
		t.Fatal("more changed sessions than sessions")
	}
	if met.Changed.Value() == 0 {
		t.Fatal("no session changed anything on an unbalanced start")
	}
	if met.LockWait.Count() != res.Steps {
		t.Fatalf("lock-wait observations = %d, want %d", met.LockWait.Count(), res.Steps)
	}
	if got := tr.Total(); got != uint64(res.Steps) {
		t.Fatalf("tracer events = %d, want %d", got, res.Steps)
	}
	// The final placement must still be a valid assignment.
	if err := res.Assignment.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestObsMovesMatchPlacementDrift cross-checks the moves counter: from an
// all-on-one-machine start, the first sessions must move jobs, and the
// total moved can never be less than the number of jobs that ended up away
// from machine 0.
func TestObsMovesMatchPlacementDrift(t *testing.T) {
	gen := rng.New(81)
	id := workload.UniformIdentical(gen, 6, 48, 1, 50)
	initial := core.AllOnMachine(id, 0)
	reg := obs.NewRegistry()
	met := NewMetrics(reg, id.NumMachines())
	res, err := Run(protocol.SameCost{Model: id}, initial, Config{
		Seed: 82, MaxSteps: 400, Metrics: met,
	})
	if err != nil {
		t.Fatal(err)
	}
	away := 0
	for j := 0; j < id.NumJobs(); j++ {
		if res.Assignment.MachineOf(j) != 0 {
			away++
		}
	}
	if met.Moves.Value() < int64(away) {
		t.Fatalf("moves counter %d < %d jobs that left machine 0", met.Moves.Value(), away)
	}
}

// Cancelling the run's context must stop every machine goroutine: Run
// returns a valid partial result and no goroutine outlives the call.
func TestShutdownNoGoroutineLeak(t *testing.T) {
	gen := rng.New(7)
	tc := workload.UniformTwoCluster(gen, 8, 4, 96, 1, 100)
	initial := core.RoundRobin(tc)

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		// A budget far beyond what the cancellation window allows: without
		// the context check the run would take visibly long.
		res, err := Run(protocol.DLB2C{Model: tc}, initial, Config{Seed: 8, MaxSteps: 1 << 40, Context: ctx})
		if err == nil && !res.Assignment.Complete() {
			err = fmt.Errorf("jobs lost in partial result")
		}
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
	// The machine goroutines exit after their current session; poll briefly
	// for the count to settle back to the pre-run level.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutines leaked: %d before, %d after shutdown", before, n)
	}
}
