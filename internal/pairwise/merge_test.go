package pairwise

import (
	"slices"
	"testing"

	"hetlb/internal/rng"
)

// naiveDiff is the oracle: elements of new absent from old, computed by a
// per-element membership scan with multiset semantics (each occurrence in
// old cancels at most one occurrence in new), matching the sorted two-pointer
// walk of AppendDiff/DiffCount.
func naiveDiff(old, new []int) []int {
	remaining := append([]int(nil), old...)
	var out []int
	for _, v := range new {
		idx := -1
		for k, w := range remaining {
			if w == v {
				idx = k
				break
			}
		}
		if idx >= 0 {
			remaining = append(remaining[:idx], remaining[idx+1:]...)
		} else {
			out = append(out, v)
		}
	}
	return out
}

// randomSorted draws a sorted list of up to maxLen values in [0, valRange),
// with duplicates allowed — job IDs are unique in the engines, but the
// kernels themselves are specified on arbitrary sorted lists.
func randomSorted(gen *rng.RNG, maxLen, valRange int) []int {
	n := int(gen.Uint64() % uint64(maxLen+1))
	out := make([]int, n)
	for i := range out {
		out[i] = int(gen.Uint64() % uint64(valRange))
	}
	slices.Sort(out)
	return out
}

func TestAppendDiffProperty(t *testing.T) {
	gen := rng.New(0x5eed)
	for trial := 0; trial < 2000; trial++ {
		old := randomSorted(gen, 40, 30)
		new := randomSorted(gen, 40, 30)
		got := AppendDiff(nil, old, new)
		want := naiveDiff(old, new)
		if !slices.Equal(got, want) {
			t.Fatalf("trial %d: AppendDiff(%v, %v) = %v, oracle %v", trial, old, new, got, want)
		}
		if count := DiffCount(old, new); count != len(got) {
			t.Fatalf("trial %d: DiffCount = %d, len(AppendDiff) = %d", trial, count, len(got))
		}
		if !slices.IsSorted(got) {
			t.Fatalf("trial %d: AppendDiff output %v not sorted", trial, got)
		}
	}
}

func TestAppendDiffEdgeCases(t *testing.T) {
	cases := []struct {
		name     string
		old, new []int
		want     []int
	}{
		{"both empty", nil, nil, nil},
		{"empty old", nil, []int{1, 2, 3}, []int{1, 2, 3}},
		{"empty new", []int{1, 2, 3}, nil, nil},
		{"identical", []int{4, 7, 9}, []int{4, 7, 9}, nil},
		{"disjoint", []int{1, 3}, []int{2, 4}, []int{2, 4}},
		{"duplicates cancel once", []int{5, 5}, []int{5, 5, 5}, []int{5}},
	}
	for _, tc := range cases {
		if got := AppendDiff(nil, tc.old, tc.new); !slices.Equal(got, tc.want) {
			t.Errorf("%s: AppendDiff(%v, %v) = %v, want %v", tc.name, tc.old, tc.new, got, tc.want)
		}
	}
}

func TestAppendDiffPreservesDst(t *testing.T) {
	dst := []int{-1, -2}
	got := AppendDiff(dst, []int{1}, []int{1, 2})
	if want := []int{-1, -2, 2}; !slices.Equal(got, want) {
		t.Fatalf("AppendDiff must append to dst: got %v, want %v", got, want)
	}
}
