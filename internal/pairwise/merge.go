package pairwise

// MergeSortedInto appends the sorted merge of a and b (each sorted
// ascending) to dst and returns the extended slice. It is the pooling step
// of a pair session in the concurrent runtimes: each side keeps its job list
// sorted, so the union of a pair is a linear merge into the session's
// scratch, not a concatenate-and-sort.
//
//hetlb:noalloc
func MergeSortedInto(dst, a, b []int) []int {
	x, y := 0, 0
	for x < len(a) && y < len(b) {
		if a[x] < b[y] {
			dst = append(dst, a[x])
			x++
		} else {
			dst = append(dst, b[y])
			y++
		}
	}
	dst = append(dst, a[x:]...)
	return append(dst, b[y:]...)
}

// DiffCount returns how many elements of new are absent from old (both
// sorted ascending) — i.e. the jobs that arrived on this side of a split.
// Summed over both sides of a session it is the session's move count: the
// union is conserved, so every change of the partition shows up as an
// arrival.
//
//hetlb:noalloc
func DiffCount(old, new []int) int {
	moved, x := 0, 0
	for _, v := range new {
		for x < len(old) && old[x] < v {
			x++
		}
		if x < len(old) && old[x] == v {
			x++
		} else {
			moved++
		}
	}
	return moved
}

// AppendDiff appends to dst the elements of new that are absent from old
// (both sorted ascending) and returns the extended slice — the arrived-job
// set that DiffCount only counts. len(AppendDiff(nil, old, new)) ==
// DiffCount(old, new) for every input pair. The sharded engine feeds the
// arrivals of both sides of a session through the cost model to update loads
// by O(moved) deltas instead of resumming the whole union; a converged
// session appends nothing and costs one linear scan.
//
//hetlb:noalloc
func AppendDiff(dst, old, new []int) []int {
	x := 0
	for _, v := range new {
		for x < len(old) && old[x] < v {
			x++
		}
		if x < len(old) && old[x] == v {
			x++
		} else {
			dst = append(dst, v)
		}
	}
	return dst
}
