package pairwise

import (
	"testing"

	"hetlb/internal/core"
	"hetlb/internal/rng"
	"hetlb/internal/workload"
)

// The //hetlb:noalloc annotations on the kernels are enforced statically by
// hetlbvet's noalloc analyzer, whose rules are necessarily approximate (it
// does not re-run escape analysis). These guards are the dynamic half of the
// contract: after a warm-up that brings every buffer to its high-water
// capacity, each annotated kernel must report exactly zero allocations per
// run. A regression here means a hidden make/box the analyzer missed; a
// regression there means a shape these runs don't exercise.

func assertNoAllocs(t *testing.T, name string, f func()) {
	t.Helper()
	f() // warm-up: reach high-water buffer capacities before measuring
	if allocs := testing.AllocsPerRun(100, f); allocs != 0 {
		t.Errorf("%s: %.2f allocs/run, want 0", name, allocs)
	}
}

func guardInstance(seed uint64) (*core.Dense, *core.Assignment, []int) {
	gen := rng.New(seed)
	d := workload.UniformDense(gen, 4, 64, 1, 100)
	a := core.RoundRobin(d)
	union := AppendUnion(nil, a, 0, 1)
	return d, a, union
}

func TestAppendUnionNoalloc(t *testing.T) {
	_, a, dst := guardInstance(11)
	assertNoAllocs(t, "AppendUnion", func() {
		dst = AppendUnion(dst[:0], a, 0, 1)
	})
}

func TestApplyCountNoalloc(t *testing.T) {
	d, a, union := guardInstance(12)
	to1, to2 := SplitBasicGreedy(d, 0, 1, union)
	// Swap the two sides and back so every run performs real Moves; the
	// per-machine job index reaches its high-water capacity on the first
	// swap and is reused thereafter.
	assertNoAllocs(t, "ApplyCount", func() {
		ApplyCount(a, 0, 1, to2, to1)
		ApplyCount(a, 0, 1, to1, to2)
	})
}

func TestAppendSplitBasicGreedyNoalloc(t *testing.T) {
	d, _, union := guardInstance(13)
	var to1, to2 []int
	assertNoAllocs(t, "AppendSplitBasicGreedy", func() {
		to1, to2 = AppendSplitBasicGreedy(d, 0, 1, union, to1[:0], to2[:0])
	})
}

func TestAppendSplitSameCostNoalloc(t *testing.T) {
	d, _, union := guardInstance(14)
	var to1, to2 []int
	assertNoAllocs(t, "AppendSplitSameCost", func() {
		to1, to2 = AppendSplitSameCost(d, 0, 1, union, to1[:0], to2[:0])
	})
}

func TestSplitGreedyLoadBalancingScratchNoalloc(t *testing.T) {
	gen := rng.New(15)
	tc := workload.UniformTwoCluster(gen, 2, 2, 64, 1, 100)
	jobs := make([]int, tc.NumJobs())
	for j := range jobs {
		jobs[j] = j
	}
	var s Scratch
	// Machines 0 and 1 share cluster 0.
	assertNoAllocs(t, "SplitGreedyLoadBalancingScratch", func() {
		SplitGreedyLoadBalancingScratch(&s, tc, 0, 1, jobs)
	})
}

func TestSplitCLB2CScratchNoalloc(t *testing.T) {
	gen := rng.New(16)
	tc := workload.UniformTwoCluster(gen, 2, 2, 64, 1, 100)
	jobs := make([]int, tc.NumJobs())
	for j := range jobs {
		jobs[j] = j
	}
	var s Scratch
	// Machine 0 is in cluster 0, machine 2 in cluster 1.
	assertNoAllocs(t, "SplitCLB2CScratch", func() {
		SplitCLB2CScratch(&s, tc, 0, 2, jobs)
	})
}

func TestAppendDiffNoalloc(t *testing.T) {
	_, a, union := guardInstance(17)
	old := append([]int(nil), union...)
	_ = a
	// new differs from old in a prefix swap so every run appends real work.
	new := append([]int(nil), old...)
	for i := 0; i < len(new)/2; i++ {
		new[i] += 1000
	}
	// Re-sorting keeps the sorted-input contract after the perturbation.
	for i := 1; i < len(new); i++ {
		for j := i; j > 0 && new[j] < new[j-1]; j-- {
			new[j], new[j-1] = new[j-1], new[j]
		}
	}
	var s Scratch
	assertNoAllocs(t, "AppendDiff", func() {
		s.Diff1 = AppendDiff(s.Diff1[:0], old, new)
		s.Diff2 = AppendDiff(s.Diff2[:0], new, old)
	})
	if len(s.Diff1) == 0 || len(s.Diff2) == 0 {
		t.Fatalf("guard exercised an empty diff (lens %d/%d); perturbation failed", len(s.Diff1), len(s.Diff2))
	}
}

func TestScratchBucketsNoalloc(t *testing.T) {
	var s Scratch
	const k = 8
	for i, b := 0, s.Buckets(k); i < len(b); i++ {
		b[i] = append(b[i], i) // grow individual buckets so reuse is visible
	}
	assertNoAllocs(t, "Scratch.Buckets", func() {
		buckets := s.Buckets(k)
		if len(buckets) != k {
			t.Fatalf("Buckets(%d) returned %d buckets", k, len(buckets))
		}
	})
}
