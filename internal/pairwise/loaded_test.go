package pairwise

import (
	"testing"

	"hetlb/internal/core"
	"hetlb/internal/rng"
	"hetlb/internal/workload"
)

func equalSplits(a1, a2, b1, b2 []int) bool {
	if len(a1) != len(b1) || len(a2) != len(b2) {
		return false
	}
	for k := range a1 {
		if a1[k] != b1[k] {
			return false
		}
	}
	for k := range a2 {
		if a2[k] != b2[k] {
			return false
		}
	}
	return true
}

func TestLoadedZeroBaseMatchesUnloaded(t *testing.T) {
	gen := rng.New(1)
	for iter := 0; iter < 40; iter++ {
		d := workload.UniformDense(gen, 2, 10, 1, 30)
		jobs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
		u1, u2 := SplitBasicGreedy(d, 0, 1, jobs)
		l1, l2 := SplitBasicGreedyLoaded(d, 0, 1, 0, 0, jobs)
		if !equalSplits(u1, u2, l1, l2) {
			t.Fatal("BasicGreedyLoaded(0,0) != BasicGreedy")
		}
		s1, s2 := SplitSameCost(d, 0, 1, jobs)
		sl1, sl2 := SplitSameCostLoaded(d, 0, 1, 0, 0, jobs)
		if !equalSplits(s1, s2, sl1, sl2) {
			t.Fatal("SameCostLoaded(0,0) != SameCost")
		}
	}
}

func TestLoadedZeroBaseMatchesUnloadedClustered(t *testing.T) {
	gen := rng.New(2)
	for iter := 0; iter < 40; iter++ {
		tc := workload.UniformTwoCluster(gen, 2, 2, 10, 1, 30)
		jobs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
		g1, g2 := SplitGreedyLoadBalancing(tc, 0, 1, jobs)
		gl1, gl2 := SplitGreedyLoadBalancingLoaded(tc, 0, 1, 0, 0, jobs)
		if !equalSplits(g1, g2, gl1, gl2) {
			t.Fatal("GreedyLoadBalancingLoaded(0,0) != unloaded")
		}
		c1, c2 := SplitCLB2C(tc, 0, 2, jobs)
		cl1, cl2 := SplitCLB2CLoaded(tc, 0, 2, 0, 0, jobs)
		if !equalSplits(c1, c2, cl1, cl2) {
			t.Fatal("CLB2CLoaded(0,0) != unloaded")
		}
	}
}

func TestLoadedSymmetricUnderSwap(t *testing.T) {
	gen := rng.New(3)
	tc := workload.UniformTwoCluster(gen, 2, 2, 12, 1, 40)
	jobs := []int{0, 2, 3, 5, 7, 8, 10, 11}
	// Same-cluster loaded kernel.
	a1, a2 := SplitGreedyLoadBalancingLoaded(tc, 0, 1, 13, 7, jobs)
	b2, b1 := SplitGreedyLoadBalancingLoaded(tc, 1, 0, 7, 13, jobs)
	if !equalSplits(a1, a2, b1, b2) {
		t.Fatal("loaded same-cluster kernel depends on argument order")
	}
	// Cross-cluster loaded kernel.
	c1, c2 := SplitCLB2CLoaded(tc, 0, 2, 13, 7, jobs)
	d2, d1 := SplitCLB2CLoaded(tc, 2, 0, 7, 13, jobs)
	if !equalSplits(c1, c2, d1, d2) {
		t.Fatal("loaded cross-cluster kernel depends on argument order")
	}
}

func TestLoadedBiasesAwayFromBusyMachine(t *testing.T) {
	// Machine 0 carries a large base load: the loaded kernel must push
	// (almost) everything to machine 1.
	id, _ := core.NewIdentical(2, []core.Cost{5, 5, 5, 5})
	to0, to1 := SplitSameCostLoaded(id, 0, 1, 1000, 0, []int{0, 1, 2, 3})
	if len(to0) != 0 || len(to1) != 4 {
		t.Fatalf("loaded kernel kept jobs on the busy machine: %v | %v", to0, to1)
	}
}

func TestLoadedCLB2CBiasesAwayFromBusyCluster(t *testing.T) {
	tc, _ := core.NewTwoCluster(1, 1, []core.Cost{5, 5}, []core.Cost{6, 6})
	// Cluster-0 machine busy for 100: both jobs should land on cluster 1
	// even though it is slightly slower per job.
	toA, toB := SplitCLB2CLoaded(tc, 0, 1, 100, 0, []int{0, 1})
	if len(toA) != 0 || len(toB) != 2 {
		t.Fatalf("loaded CLB2C ignored the base load: %v | %v", toA, toB)
	}
}
