package pairwise

import "hetlb/internal/core"

// The *Loaded kernel variants account for pre-existing, non-movable load on
// each machine — in the dynamic simulator this is the remaining time of the
// job currently running (non-preemptible). The plain Split* kernels are the
// base == 0 specialization. Canonicalization swaps the bases together with
// the machines, so the loaded kernels remain functions of the unordered
// pair.

// SplitBasicGreedyLoaded is SplitBasicGreedy starting from loads base1 and
// base2.
func SplitBasicGreedyLoaded(m core.CostModel, m1, m2 int, base1, base2 core.Cost, jobs []int) (to1, to2 []int) {
	if m1 > m2 {
		to2, to1 = SplitBasicGreedyLoaded(m, m2, m1, base2, base1, jobs)
		return to1, to2
	}
	l1, l2 := base1, base2
	for _, j := range jobs {
		c1, c2 := m.Cost(m1, j), m.Cost(m2, j)
		if l1+c1 <= l2+c2 {
			to1 = append(to1, j)
			l1 += c1
		} else {
			to2 = append(to2, j)
			l2 += c2
		}
	}
	return to1, to2
}

// SplitSameCostLoaded is SplitSameCost starting from loads base1 and base2.
func SplitSameCostLoaded(m core.CostModel, m1, m2 int, base1, base2 core.Cost, jobs []int) (to1, to2 []int) {
	if m1 > m2 {
		to2, to1 = SplitSameCostLoaded(m, m2, m1, base2, base1, jobs)
		return to1, to2
	}
	l1, l2 := base1, base2
	for _, j := range jobs {
		if l1 <= l2 {
			to1 = append(to1, j)
			l1 += m.Cost(m1, j)
		} else {
			to2 = append(to2, j)
			l2 += m.Cost(m2, j)
		}
	}
	return to1, to2
}

// SplitGreedyLoadBalancingLoaded is SplitGreedyLoadBalancing starting from
// loads base1 and base2.
func SplitGreedyLoadBalancingLoaded(c core.Clustered, m1, m2 int, base1, base2 core.Cost, jobs []int) (to1, to2 []int) {
	if c.ClusterOf(m1) != c.ClusterOf(m2) {
		panic("pairwise: GreedyLoadBalancing requires machines of the same cluster")
	}
	if m1 > m2 {
		to2, to1 = SplitGreedyLoadBalancingLoaded(c, m2, m1, base2, base1, jobs)
		return to1, to2
	}
	own := c.ClusterOf(m1)
	l1, l2 := base1, base2
	for _, j := range sortByOwnRatio(c, own, jobs) {
		cost := c.ClusterCost(own, j)
		if l1 <= l2 {
			to1 = append(to1, j)
			l1 += cost
		} else {
			to2 = append(to2, j)
			l2 += cost
		}
	}
	return to1, to2
}

// SplitCLB2CLoaded is SplitCLB2C starting from pre-existing loads baseA and
// baseB on mA and mB respectively.
func SplitCLB2CLoaded(c core.Clustered, mA, mB int, baseA, baseB core.Cost, jobs []int) (toA, toB []int) {
	if c.ClusterOf(mA) == c.ClusterOf(mB) {
		panic("pairwise: CLB2C on a pair requires machines of different clusters")
	}
	swapped := false
	m0, m1 := mA, mB
	b0, b1 := baseA, baseB
	if c.ClusterOf(m0) == 1 {
		m0, m1 = m1, m0
		b0, b1 = b1, b0
		swapped = true
	}
	sorted := sortByOwnRatio(c, 0, jobs)
	var to0, to1 []int
	l0, l1 := b0, b1
	lo, hi := 0, len(sorted)-1
	for lo <= hi {
		jHead, jTail := sorted[lo], sorted[hi]
		c0 := l0 + c.ClusterCost(0, jHead)
		c1 := l1 + c.ClusterCost(1, jTail)
		if c0 <= c1 {
			to0 = append(to0, jHead)
			l0 = c0
			lo++
		} else {
			to1 = append(to1, jTail)
			l1 = c1
			hi--
		}
	}
	if swapped {
		return to1, to0
	}
	return to0, to1
}
