package pairwise

import (
	"testing"

	"hetlb/internal/core"
	"hetlb/internal/exact"
	"hetlb/internal/rng"
	"hetlb/internal/workload"
)

func TestUnion(t *testing.T) {
	d := core.MustDense([][]core.Cost{{1, 1, 1, 1}, {1, 1, 1, 1}, {1, 1, 1, 1}})
	a, _ := core.FromMachineOf(d, []int{0, 1, 2, 0})
	got := Union(a, 0, 2)
	want := []int{0, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("Union = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Union = %v, want %v", got, want)
		}
	}
}

func TestBasicGreedyOneTypeOptimal(t *testing.T) {
	// Lemma 3: with a single job type, BasicGreedy yields an optimal
	// two-machine schedule. Compare against the exact solver for random
	// machine costs and job counts.
	gen := rng.New(1)
	for iter := 0; iter < 100; iter++ {
		n := 1 + gen.Intn(10)
		p1 := gen.IntRange(1, 9)
		p2 := gen.IntRange(1, 9)
		ty, err := core.NewTyped([][]core.Cost{{p1}, {p2}}, make([]int, n))
		if err != nil {
			t.Fatal(err)
		}
		a := core.AllOnMachine(ty, 0)
		BasicGreedy(a, 0, 1)
		opt := exact.Solve(ty).Opt
		if a.Makespan() != opt {
			t.Fatalf("BasicGreedy %d != OPT %d (n=%d, p=%d/%d)", a.Makespan(), opt, n, p1, p2)
		}
		if err := a.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestBasicGreedyPreservesJobSet(t *testing.T) {
	gen := rng.New(2)
	d := workload.UniformDense(gen, 3, 12, 1, 50)
	a := core.RoundRobin(d)
	before := a.TotalWork()
	_ = before
	union := Union(a, 0, 1)
	outside := Union(a, 2, 2)
	BasicGreedy(a, 0, 1)
	// Jobs of machine 2 untouched, union still on {0, 1}, all assigned.
	for _, j := range outside {
		if a.MachineOf(j) != 2 {
			t.Fatalf("job %d left machine 2", j)
		}
	}
	for _, j := range union {
		if i := a.MachineOf(j); i != 0 && i != 1 {
			t.Fatalf("job %d escaped the pair", j)
		}
	}
	if !a.Complete() {
		t.Fatal("jobs lost")
	}
}

func TestBasicGreedyIdempotent(t *testing.T) {
	gen := rng.New(3)
	for iter := 0; iter < 50; iter++ {
		d := workload.UniformDense(gen, 2, 10, 1, 30)
		a := core.RoundRobin(d)
		BasicGreedy(a, 0, 1)
		b := a.Clone()
		BasicGreedy(b, 0, 1)
		if !a.Equal(b) {
			t.Fatal("BasicGreedy is not idempotent")
		}
	}
}

func TestGreedySameCostBalances(t *testing.T) {
	// Identical machines: after GreedySameCost the imbalance is at most
	// the largest pooled job (the Markov model's transition condition).
	gen := rng.New(4)
	for iter := 0; iter < 100; iter++ {
		n := 1 + gen.Intn(12)
		id := workload.UniformIdentical(gen, 2, n, 1, 20)
		a := core.AllOnMachine(id, 0)
		GreedySameCost(a, 0, 1)
		var pmax core.Cost
		for j := 0; j < n; j++ {
			if s := id.Size(j); s > pmax {
				pmax = s
			}
		}
		diff := a.Load(0) - a.Load(1)
		if diff < 0 {
			diff = -diff
		}
		if diff > pmax {
			t.Fatalf("imbalance %d exceeds pmax %d", diff, pmax)
		}
	}
}

func TestGreedySameCostIdempotent(t *testing.T) {
	gen := rng.New(5)
	id := workload.UniformIdentical(gen, 3, 10, 1, 100)
	a := core.RoundRobin(id)
	GreedySameCost(a, 0, 2)
	b := a.Clone()
	GreedySameCost(b, 0, 2)
	if !a.Equal(b) {
		t.Fatal("GreedySameCost is not idempotent")
	}
}

func TestGreedyLoadBalancingSameClusterOnly(t *testing.T) {
	tc, _ := core.NewTwoCluster(2, 2, []core.Cost{1, 2}, []core.Cost{2, 1})
	a := core.RoundRobin(tc)
	defer func() {
		if recover() == nil {
			t.Fatal("cross-cluster GreedyLoadBalancing did not panic")
		}
	}()
	GreedyLoadBalancing(a, tc, 0, 3)
}

func TestGreedyLoadBalancingBalancesAndConserves(t *testing.T) {
	gen := rng.New(6)
	for iter := 0; iter < 50; iter++ {
		tc := workload.UniformTwoCluster(gen, 3, 2, 20, 1, 50)
		a := core.RoundRobin(tc)
		work := a.TotalWork()
		GreedyLoadBalancing(a, tc, 0, 2) // both in cluster 0
		if a.TotalWork() != work {
			t.Fatal("same-cluster balancing changed total work")
		}
		if !a.Complete() {
			t.Fatal("jobs lost")
		}
		if err := a.Validate(); err != nil {
			t.Fatal(err)
		}
		// Imbalance bounded by the largest pooled job.
		var pmax core.Cost
		for _, j := range Union(a, 0, 2) {
			if c := tc.Cost(0, j); c > pmax {
				pmax = c
			}
		}
		diff := a.Load(0) - a.Load(2)
		if diff < 0 {
			diff = -diff
		}
		if diff > pmax && pmax > 0 {
			t.Fatalf("imbalance %d exceeds pooled pmax %d", diff, pmax)
		}
	}
}

func TestGreedyLoadBalancingMaxRatioPlacedLast(t *testing.T) {
	// The Theorem 7 machinery needs the max-ratio job of the loaded
	// machine to arrive last. With two jobs of very different ratios and a
	// fresh pool, the low-ratio job must be placed first (it lands on m1
	// by the tie rule), so after balancing the high-ratio job sits alone.
	tc, _ := core.NewTwoCluster(2, 1, []core.Cost{1, 10}, []core.Cost{10, 1})
	a, _ := core.FromMachineOf(tc, []int{0, 0, -1, -1, -1}[:2])
	GreedyLoadBalancing(a, tc, 0, 1)
	// job 0 (ratio 0.1) placed first on the emptier machine; job 1
	// (ratio 10) goes to whichever machine has smaller load then.
	if a.MachineOf(0) == a.MachineOf(1) {
		t.Fatalf("both jobs on one machine: %s", a)
	}
}

func TestCLB2CPairCrossClusterOnly(t *testing.T) {
	tc, _ := core.NewTwoCluster(2, 2, []core.Cost{1}, []core.Cost{1})
	a := core.RoundRobin(tc)
	defer func() {
		if recover() == nil {
			t.Fatal("same-cluster CLB2CPair did not panic")
		}
	}()
	CLB2CPair(a, tc, 0, 1)
}

func TestCLB2CPairOrientation(t *testing.T) {
	// Passing the machines in either order must give the same result.
	gen := rng.New(7)
	tc := workload.UniformTwoCluster(gen, 1, 1, 12, 1, 40)
	a := core.RoundRobin(tc)
	b := a.Clone()
	CLB2CPair(a, tc, 0, 1)
	CLB2CPair(b, tc, 1, 0)
	if !a.Equal(b) {
		t.Fatal("CLB2CPair depends on argument order")
	}
}

func TestCLB2CPairMovesBiasedJobs(t *testing.T) {
	// Jobs heavily biased toward cluster 1 but parked on a cluster-0
	// machine must migrate when that machine balances with a cluster-1
	// machine.
	tc, _ := core.NewTwoCluster(1, 1,
		[]core.Cost{100, 100, 1},
		[]core.Cost{1, 1, 100})
	a, _ := core.FromMachineOf(tc, []int{0, 0, 1})
	CLB2CPair(a, tc, 0, 1)
	if a.MachineOf(0) != 1 || a.MachineOf(1) != 1 || a.MachineOf(2) != 0 {
		t.Fatalf("biased jobs not exchanged: %s", a)
	}
}

func TestCLB2CPairIdempotent(t *testing.T) {
	gen := rng.New(8)
	for iter := 0; iter < 50; iter++ {
		tc := workload.UniformTwoCluster(gen, 2, 2, 14, 1, 30)
		a := core.RoundRobin(tc)
		CLB2CPair(a, tc, 1, 3)
		b := a.Clone()
		CLB2CPair(b, tc, 1, 3)
		if !a.Equal(b) {
			t.Fatal("CLB2CPair is not idempotent")
		}
	}
}

func TestPairwiseTrapIsPairwiseStable(t *testing.T) {
	// Proposition 2: on the Table II instance, every pair of machines is
	// already optimally balanced in the trap assignment — BasicGreedy
	// over any pair must not lower the pair's local makespan below its
	// current value. (BasicGreedy may produce an equally-bad different
	// split on fully unrelated costs; the point of the proposition is
	// that no pairwise move reaches the global optimum of 1.)
	d, trap := workload.PairwiseTrap(10)
	for m1 := 0; m1 < 3; m1++ {
		for m2 := m1 + 1; m2 < 3; m2++ {
			b := trap.Clone()
			// Pairwise-optimal rebalancing of the pair: exhaustive over
			// the union (at most 2 jobs here).
			jobs := Union(b, m1, m2)
			bestPair := exhaustivePair(b, d, m1, m2, jobs)
			localBefore := maxLoad(trap, m1, m2)
			if bestPair < localBefore {
				t.Fatalf("pair (%d,%d) could improve from %d to %d — trap not stable",
					m1, m2, localBefore, bestPair)
			}
		}
	}
}

func maxLoad(a *core.Assignment, m1, m2 int) core.Cost {
	l1, l2 := a.Load(m1), a.Load(m2)
	if l1 > l2 {
		return l1
	}
	return l2
}

// exhaustivePair returns the best achievable max-load of the pair over all
// 2^|jobs| splits of the pooled jobs.
func exhaustivePair(a *core.Assignment, m core.CostModel, m1, m2 int, jobs []int) core.Cost {
	best := core.Cost(1) << 62
	for mask := 0; mask < 1<<len(jobs); mask++ {
		var l1, l2 core.Cost
		for b, j := range jobs {
			if mask&(1<<b) != 0 {
				l1 += m.Cost(m1, j)
			} else {
				l2 += m.Cost(m2, j)
			}
		}
		v := l1
		if l2 > v {
			v = l2
		}
		if v < best {
			best = v
		}
	}
	return best
}

func BenchmarkBasicGreedyPair(b *testing.B) {
	gen := rng.New(9)
	id := workload.UniformIdentical(gen, 2, 256, 1, 1000)
	a := core.RoundRobin(id)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BasicGreedy(a, 0, 1)
	}
}

func BenchmarkCLB2CPair(b *testing.B) {
	gen := rng.New(10)
	tc := workload.UniformTwoCluster(gen, 1, 1, 256, 1, 1000)
	a := core.RoundRobin(tc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CLB2CPair(a, tc, 0, 1)
	}
}
