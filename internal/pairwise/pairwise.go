// Package pairwise implements the two-machine balancing kernels that the
// decentralized protocols are built from:
//
//   - BasicGreedy (Algorithm 2): earliest-completion-time greedy over the
//     union of the two machines' jobs; optimal when all jobs are of one type.
//   - GreedyLoadBalancing (Algorithm 6): same-cluster rebalancing that sorts
//     the union by cluster cost ratio and assigns each job to the less
//     loaded machine.
//   - CLB2C on a pair: Algorithm 5 run on two singleton clusters, used by
//     DLB2C when the two machines belong to different clusters.
//
// Every kernel exists in two layers. The Split* functions are pure: given
// the pooled job set they return the partition (jobs for the first machine,
// jobs for the second) without touching any shared state — this is what the
// concurrent runtime (internal/distrun) calls while holding only the two
// machines involved. The same-named convenience wrappers apply a split to a
// core.Assignment for the sequential engine and the tests.
//
// All kernels are deterministic functions of the pooled job set (not of how
// the pair currently splits it), which makes them idempotent: applying the
// same kernel to the same pair twice in a row leaves the partition
// unchanged. Stability detection relies on this.
package pairwise

import (
	"slices"

	"hetlb/internal/core"
)

// Union returns the jobs currently assigned to either machine, in increasing
// job order, by a brute-force O(n) scan of the job→machine map. The step
// paths use the index-backed AppendUnion instead; the scan form stays as the
// reference the property tests compare the index against, and as what the
// stability check's short-lived clones use (they never amortize an index
// build).
func Union(a *core.Assignment, m1, m2 int) []int {
	var jobs []int
	for j := 0; j < a.Model().NumJobs(); j++ {
		if i := a.MachineOf(j); i == m1 || i == m2 {
			jobs = append(jobs, j)
		}
	}
	return jobs
}

// AppendUnion appends the jobs currently assigned to either machine to dst,
// in increasing job order, and returns the extended slice. It reads the
// assignment's per-machine job index, so it is O(u log u) for a union of
// size u — independent of the total job count — and allocation-free once
// dst has the capacity.
//
//hetlb:noalloc
func AppendUnion(dst []int, a *core.Assignment, m1, m2 int) []int {
	start := len(dst)
	dst = a.AppendJobs(dst, m1)
	dst = a.AppendJobs(dst, m2)
	// The two segments are each sorted and disjoint; one more sort of the
	// combined (mostly ordered) segment interleaves them.
	slices.Sort(dst[start:])
	return dst
}

// Apply moves the pooled jobs of machines m1 and m2 according to a split.
// Every job in to1/to2 must currently be assigned to m1 or m2.
func Apply(a *core.Assignment, m1, m2 int, to1, to2 []int) {
	ApplyCount(a, m1, m2, to1, to2)
}

// ApplyCount is Apply returning the number of jobs whose machine changed —
// the per-step migration count the engines report. to1 and to2 are disjoint,
// so the count equals the number of Move operations performed.
//
//hetlb:noalloc
func ApplyCount(a *core.Assignment, m1, m2 int, to1, to2 []int) int {
	moved := 0
	for _, j := range to1 {
		if a.MachineOf(j) != m1 {
			a.Move(j, m1)
			moved++
		}
	}
	for _, j := range to2 {
		if a.MachineOf(j) != m2 {
			a.Move(j, m2)
			moved++
		}
	}
	return moved
}

// SplitBasicGreedy implements Algorithm 2 as a pure function: each job of
// jobs (in the given order; callers pass increasing job index) goes to the
// machine where it would complete earliest given the loads accumulated so
// far, ties to the lower-indexed machine (so the kernel is a function of
// the unordered pair and stability is well defined). When the jobs all have the same cost per machine (one job
// type), the result is an optimal two-machine schedule (Lemma 3).
func SplitBasicGreedy(m core.CostModel, m1, m2 int, jobs []int) (to1, to2 []int) {
	return AppendSplitBasicGreedy(m, m1, m2, jobs, nil, nil)
}

// AppendSplitBasicGreedy is SplitBasicGreedy appending into caller-owned
// buffers (reused capacity, no allocation in steady state). The greedy loads
// start at zero regardless of existing buffer content, so MJTB can
// accumulate the per-type splits of one pair into a single pair of buffers.
//
//hetlb:noalloc
func AppendSplitBasicGreedy(m core.CostModel, m1, m2 int, jobs, to1, to2 []int) ([]int, []int) {
	if m1 > m2 {
		to2, to1 = AppendSplitBasicGreedy(m, m2, m1, jobs, to2, to1)
		return to1, to2
	}
	var l1, l2 core.Cost
	for _, j := range jobs {
		c1, c2 := m.Cost(m1, j), m.Cost(m2, j)
		if l1+c1 <= l2+c2 {
			to1 = append(to1, j)
			l1 += c1
		} else {
			to2 = append(to2, j)
			l2 += c2
		}
	}
	return to1, to2
}

// BasicGreedy applies SplitBasicGreedy to the live union of a pair.
func BasicGreedy(a *core.Assignment, m1, m2 int) {
	jobs := Union(a, m1, m2)
	to1, to2 := SplitBasicGreedy(a.Model(), m1, m2, jobs)
	Apply(a, m1, m2, to1, to2)
}

// BasicGreedyJobs is BasicGreedy restricted to an explicit job set (used by
// MJTB to balance one type at a time). The jobs must currently be assigned
// to m1 or m2.
func BasicGreedyJobs(a *core.Assignment, m1, m2 int, jobs []int) {
	to1, to2 := SplitBasicGreedy(a.Model(), m1, m2, jobs)
	Apply(a, m1, m2, to1, to2)
}

// sortByOwnRatio orders jobs by increasing cost ratio own-cluster cost over
// other-cluster cost (exact integer cross multiplication, index tie break).
func sortByOwnRatio(c core.Clustered, own int, jobs []int) []int {
	return appendSortedByOwnRatio(nil, c, own, jobs)
}

// appendSortedByOwnRatio appends jobs to dst and sorts the appended segment
// by the ratio order. The comparator is a total order (index tie break), so
// the result is unique regardless of the sort algorithm.
func appendSortedByOwnRatio(dst []int, c core.Clustered, own int, jobs []int) []int {
	other := 1 - own
	start := len(dst)
	dst = append(dst, jobs...)
	slices.SortFunc(dst[start:], func(jx, jy int) int {
		lx := c.ClusterCost(own, jx) * c.ClusterCost(other, jy)
		ly := c.ClusterCost(own, jy) * c.ClusterCost(other, jx)
		switch {
		case lx < ly:
			return -1
		case lx > ly:
			return 1
		default:
			return jx - jy
		}
	})
	return dst
}

// SplitGreedyLoadBalancing implements Algorithm 6 as a pure function for two
// machines of the same cluster: the pooled jobs are sorted by increasing
// cost ratio of the pair's own cluster over the other cluster, then each job
// goes to the machine with the smaller accumulated load (ties to the
// lower-indexed machine, making the kernel symmetric in its arguments).
//
// The ratio order does not change the loads (both machines price jobs
// identically) but it is essential to the stable-state analysis of
// Theorem 7: it guarantees that the job of maximal ratio on the makespan
// machine is placed last.
func SplitGreedyLoadBalancing(c core.Clustered, m1, m2 int, jobs []int) (to1, to2 []int) {
	if c.ClusterOf(m1) != c.ClusterOf(m2) {
		panic("pairwise: GreedyLoadBalancing requires machines of the same cluster")
	}
	if m1 > m2 {
		to2, to1 = SplitGreedyLoadBalancing(c, m2, m1, jobs)
		return to1, to2
	}
	own := c.ClusterOf(m1)
	var l1, l2 core.Cost
	for _, j := range sortByOwnRatio(c, own, jobs) {
		cost := c.ClusterCost(own, j)
		if l1 <= l2 {
			to1 = append(to1, j)
			l1 += cost
		} else {
			to2 = append(to2, j)
			l2 += cost
		}
	}
	return to1, to2
}

// SplitGreedyLoadBalancingScratch is SplitGreedyLoadBalancing against
// caller-owned scratch: the returned slices alias s.To1/s.To2 and the ratio
// order is built in s.Sorted. No allocation in steady state.
//
//hetlb:noalloc
func SplitGreedyLoadBalancingScratch(s *Scratch, c core.Clustered, m1, m2 int, jobs []int) (to1, to2 []int) {
	if c.ClusterOf(m1) != c.ClusterOf(m2) {
		panic("pairwise: GreedyLoadBalancing requires machines of the same cluster")
	}
	swapped := m1 > m2
	lo := m1
	if swapped {
		lo = m2
	}
	own := c.ClusterOf(lo)
	s.Sorted = appendSortedByOwnRatio(s.Sorted[:0], c, own, jobs)
	tLo, tHi := s.To1[:0], s.To2[:0]
	var l1, l2 core.Cost
	for _, j := range s.Sorted {
		cost := c.ClusterCost(own, j)
		if l1 <= l2 {
			tLo = append(tLo, j)
			l1 += cost
		} else {
			tHi = append(tHi, j)
			l2 += cost
		}
	}
	s.To1, s.To2 = tLo, tHi
	if swapped {
		return tHi, tLo
	}
	return tLo, tHi
}

// GreedyLoadBalancing applies SplitGreedyLoadBalancing to the live union of
// a same-cluster pair.
func GreedyLoadBalancing(a *core.Assignment, c core.Clustered, m1, m2 int) {
	jobs := Union(a, m1, m2)
	to1, to2 := SplitGreedyLoadBalancing(c, m1, m2, jobs)
	Apply(a, m1, m2, to1, to2)
}

// SplitSameCost rebalances two machines that price every job identically
// (identical machines, or any single-cluster model): each job, in the given
// order, goes to the machine with the smaller accumulated load. This is
// BasicGreedy specialized to equal costs and is the kernel used for the
// homogeneous one-cluster experiments (Section VII.A).
func SplitSameCost(m core.CostModel, m1, m2 int, jobs []int) (to1, to2 []int) {
	return AppendSplitSameCost(m, m1, m2, jobs, nil, nil)
}

// AppendSplitSameCost is SplitSameCost appending into caller-owned buffers;
// like AppendSplitBasicGreedy, the loads start at zero for this call.
//
//hetlb:noalloc
func AppendSplitSameCost(m core.CostModel, m1, m2 int, jobs, to1, to2 []int) ([]int, []int) {
	if m1 > m2 {
		to2, to1 = AppendSplitSameCost(m, m2, m1, jobs, to2, to1)
		return to1, to2
	}
	var l1, l2 core.Cost
	for _, j := range jobs {
		if l1 <= l2 {
			to1 = append(to1, j)
			l1 += m.Cost(m1, j)
		} else {
			to2 = append(to2, j)
			l2 += m.Cost(m2, j)
		}
	}
	return to1, to2
}

// GreedySameCost applies SplitSameCost to the live union of a pair.
func GreedySameCost(a *core.Assignment, m1, m2 int) {
	jobs := Union(a, m1, m2)
	to1, to2 := SplitSameCost(a.Model(), m1, m2, jobs)
	Apply(a, m1, m2, to1, to2)
}

// SplitCLB2C runs Algorithm 5 on two singleton clusters as a pure function.
// mA and mB may be passed in either order; the returned toA/toB correspond
// to mA/mB respectively. The jobs are sorted by increasing cluster-0/1 cost
// ratio; at each step the head job is tentatively placed on the cluster-0
// machine and the tail job on the cluster-1 machine, and the placement that
// finishes earlier is committed (ties favor cluster 0).
func SplitCLB2C(c core.Clustered, mA, mB int, jobs []int) (toA, toB []int) {
	if c.ClusterOf(mA) == c.ClusterOf(mB) {
		panic("pairwise: CLB2C on a pair requires machines of different clusters")
	}
	swapped := false
	m0, m1 := mA, mB
	if c.ClusterOf(m0) == 1 {
		m0, m1 = m1, m0
		swapped = true
	}
	sorted := sortByOwnRatio(c, 0, jobs)
	var to0, to1 []int
	var l0, l1 core.Cost
	lo, hi := 0, len(sorted)-1
	for lo <= hi {
		jHead, jTail := sorted[lo], sorted[hi]
		c0 := l0 + c.ClusterCost(0, jHead)
		c1 := l1 + c.ClusterCost(1, jTail)
		if c0 <= c1 {
			to0 = append(to0, jHead)
			l0 = c0
			lo++
		} else {
			to1 = append(to1, jTail)
			l1 = c1
			hi--
		}
	}
	if swapped {
		return to1, to0
	}
	return to0, to1
}

// SplitCLB2CScratch is SplitCLB2C against caller-owned scratch: the returned
// slices alias s.To1/s.To2 and the ratio order is built in s.Sorted.
//
//hetlb:noalloc
func SplitCLB2CScratch(s *Scratch, c core.Clustered, mA, mB int, jobs []int) (toA, toB []int) {
	if c.ClusterOf(mA) == c.ClusterOf(mB) {
		panic("pairwise: CLB2C on a pair requires machines of different clusters")
	}
	swapped := c.ClusterOf(mA) == 1
	s.Sorted = appendSortedByOwnRatio(s.Sorted[:0], c, 0, jobs)
	to0, to1 := s.To1[:0], s.To2[:0]
	var l0, l1 core.Cost
	lo, hi := 0, len(s.Sorted)-1
	for lo <= hi {
		jHead, jTail := s.Sorted[lo], s.Sorted[hi]
		c0 := l0 + c.ClusterCost(0, jHead)
		c1 := l1 + c.ClusterCost(1, jTail)
		if c0 <= c1 {
			to0 = append(to0, jHead)
			l0 = c0
			lo++
		} else {
			to1 = append(to1, jTail)
			l1 = c1
			hi--
		}
	}
	s.To1, s.To2 = to0, to1
	if swapped {
		return to1, to0
	}
	return to0, to1
}

// CLB2CPair applies SplitCLB2C to the live union of a cross-cluster pair.
func CLB2CPair(a *core.Assignment, c core.Clustered, mA, mB int) {
	jobs := Union(a, mA, mB)
	toA, toB := SplitCLB2C(c, mA, mB, jobs)
	Apply(a, mA, mB, toA, toB)
}
