package pairwise

// Scratch holds the reusable buffers behind the allocation-free kernel and
// balancing variants. One Scratch serves one call chain at a time: the
// slices returned by the *Scratch kernels and by Protocol.SplitScratch alias
// these buffers and stay valid only until the scratch is used again. The
// sequential engine owns one Scratch per engine; the concurrent runtime owns
// one per machine goroutine (a Scratch is not safe for concurrent use).
//
// Ownership rules:
//   - the caller owns the Scratch and may mutate (e.g. sort) the returned
//     slices, since they are its own memory;
//   - kernels may clobber every buffer except the one passed to them as the
//     jobs input — SplitScratch implementations write To1/To2/Sorted and the
//     buckets but never Union, so `p.SplitScratch(s, i, j, s.Union)` is safe;
//   - buffers only grow, so a scratch reaches its high-water capacity after
//     a warm-up and performs no further allocations.
type Scratch struct {
	// Union is the pooled-jobs buffer, filled by AppendUnion (or a merge in
	// the concurrent runtime) and passed to SplitScratch as input.
	Union []int
	// To1 and To2 receive the two sides of a split.
	To1, To2 []int
	// Sorted is the kernel-internal ordering buffer (ratio or LPT order).
	Sorted []int
	// Side1 and Side2 hold the pair's current sides for placement-aware
	// (min-move) balancing.
	Side1, Side2 []int
	// Diff1 and Diff2 receive the arrived-job sets of a session's two sides
	// (AppendDiff output), which drive O(moved) load-delta updates in the
	// sharded engine.
	Diff1, Diff2 []int

	buckets [][]int // per-type buckets for MJTB
}

// Buckets returns k empty per-type buckets, reusing prior capacity. The
// returned slice shares its backing array with the scratch, so growth of an
// individual bucket (buckets[t] = append(buckets[t], ...)) is retained for
// the next call.
//
//hetlb:noalloc
func (s *Scratch) Buckets(k int) [][]int {
	if cap(s.buckets) < k {
		next := make([][]int, k) //hetlb:alloc-ok amortized warm-up growth: the bucket table reaches its high-water k and never reallocates
		copy(next, s.buckets[:cap(s.buckets)])
		s.buckets = next
	}
	s.buckets = s.buckets[:k]
	for i := range s.buckets {
		s.buckets[i] = s.buckets[i][:0]
	}
	return s.buckets
}
