package explain

import (
	"bytes"
	"strings"
	"testing"

	"hetlb/internal/core"
	"hetlb/internal/faults"
	"hetlb/internal/netsim"
	"hetlb/internal/obs/span"
	"hetlb/internal/obs/timeline"
	"hetlb/internal/protocol"
	"hetlb/internal/rng"
	"hetlb/internal/workload"
)

func TestSpanRoundTrip(t *testing.T) {
	rec := span.NewRecorder(16)
	want := []span.Span{
		{Kind: span.KindRun, A: -1, B: -1, Start: 0, End: 100, Value: 42},
		{Kind: span.KindSession, Tag: span.TagInitiator, Flags: span.FlagCommitted, A: 3, B: 7, Start: 10, End: 25, Clock: 9, Value: 2},
		{Kind: span.KindFault, Tag: span.TagDrop, Parent: 2, A: 3, B: 7, Start: 12, End: 12, Clock: 4, Value: 1},
	}
	for _, s := range want {
		rec.Append(s)
	}
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, hdr, err := ReadSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Retained != 3 || hdr.Dropped != 0 {
		t.Fatalf("header = %+v, want retained 3 dropped 0", hdr)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d spans, want %d", len(got), len(want))
	}
	for i, g := range got {
		w := want[i]
		w.ID = g.ID // Append assigned fresh IDs
		if g != w {
			t.Errorf("span %d = %+v, want %+v", i, g, w)
		}
	}
}

func TestReadSpansRejectsWrongMeta(t *testing.T) {
	_, _, err := ReadSpans(strings.NewReader("{\"meta\":\"hetlb-events\",\"version\":1}\n"))
	if err == nil {
		t.Fatal("expected an error for an event trace fed as a span trace")
	}
}

func TestTimelineRoundTripBothFormats(t *testing.T) {
	rec := timeline.NewRecorder(8)
	for i := 0; i < 5; i++ {
		rec.Record(timeline.Point{Time: int64(i * 10), Cmax: int64(100 - i), Imbalance: int64(5 - i), Moves: int64(i), Messages: int64(3 * i)})
	}
	want := rec.Points()

	var csv, js bytes.Buffer
	if err := rec.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	for name, buf := range map[string]*bytes.Buffer{"csv": &csv, "json": &js} {
		got, err := ReadTimeline(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: got %d points, want %d", name, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("%s: point %d = %+v, want %+v", name, i, got[i], want[i])
			}
		}
	}
}

func TestQuantile(t *testing.T) {
	s := []int64{10, 20, 30, 40}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 10}, {1, 40}, {0.5, 25}, {1.0 / 3, 20},
	}
	for _, c := range cases {
		if got := quantile(s, c.q); got != c.want {
			t.Errorf("quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := quantile(nil, 0.5); got != 0 {
		t.Errorf("quantile(empty) = %v, want 0", got)
	}
}

func TestStallDetection(t *testing.T) {
	// Improvement at t=0, then 10 flat samples, improvement, then flat tail.
	var pts []timeline.Point
	cmax := int64(100)
	for i := 0; i < 20; i++ {
		if i == 11 {
			cmax = 50
		}
		pts = append(pts, timeline.Point{Time: int64(i), Cmax: cmax})
	}
	tl := analyzeTimeline(pts, Options{StallPoints: 8}, 5)
	if len(tl.Stalls) != 1 {
		t.Fatalf("got %d stalls, want 1 (%+v)", len(tl.Stalls), tl.Stalls)
	}
	s := tl.Stalls[0]
	if s.Cmax != 100 || s.Points != 10 || s.From != 0 || s.To != 11 {
		t.Errorf("stall = %+v, want stuck at 100 for 10 points over t=0..11", s)
	}
	if tl.ConvergedAt != 11 {
		t.Errorf("ConvergedAt = %d, want 11", tl.ConvergedAt)
	}
	if tl.BestCmax != 50 || tl.InitialCmax != 100 || tl.FinalCmax != 50 {
		t.Errorf("summary = %+v", tl)
	}
}

// faultedRun produces the spans and timeline of one faulted message-passing
// run, exactly as `hetlb sim`/`chaos` would export them.
func faultedRun(t *testing.T) ([]span.Span, Header, []timeline.Point) {
	t.Helper()
	gen := rng.New(7)
	tc := workload.UniformTwoCluster(gen, 6, 3, 72, 1, 100)
	initial := core.NewAssignment(tc)
	for j := 0; j < tc.NumJobs(); j++ {
		initial.Assign(j, gen.Intn(tc.NumMachines()))
	}
	fc := &faults.Config{
		DropProb: 0.25, DupProb: 0.05, JitterMax: 3,
		Crashes: faults.RandomCrashes(gen.Uint64(), tc.NumMachines(), 1500, 2, 200, 0.5),
	}
	rec := span.NewRecorder(1 << 16)
	tl := timeline.NewRecorder(1 << 10)
	sim, err := netsim.New(tc, protocol.DLB2C{Model: tc}, initial, netsim.Config{
		Seed: gen.Uint64(), Latency: 2, Period: 10, Horizon: 1500,
		Faults: fc, Spans: rec, Timeline: tl,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run()

	var sb bytes.Buffer
	if err := rec.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	spans, hdr, err := ReadSpans(&sb)
	if err != nil {
		t.Fatal(err)
	}
	var tb bytes.Buffer
	if err := tl.WriteCSV(&tb); err != nil {
		t.Fatal(err)
	}
	pts, err := ReadTimeline(&tb)
	if err != nil {
		t.Fatal(err)
	}
	return spans, hdr, pts
}

// The acceptance bar: on a faulted run, explain must attribute at least one
// degradation (drop, retransmission, timeout or crash) to a specific
// session, and the rendered report must name it.
func TestExplainAttributesFaultsToSessions(t *testing.T) {
	spans, hdr, pts := faultedRun(t)
	r := Analyze(spans, hdr, pts, Options{})
	if r.SessionCount == 0 {
		t.Fatal("no sessions in the trace")
	}
	if len(r.Degraded) == 0 {
		t.Fatal("no degradation attributed to any session")
	}
	worst := r.Degraded[0]
	if worst.FaultTotal() == 0 {
		t.Fatal("degraded session with zero faults")
	}
	if r.Timeline == nil || r.Timeline.Points == 0 {
		t.Fatal("timeline missing from the report")
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"most degraded sessions", "convergence", "hottest machine pairs", "latency: p50"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// The report must be a pure function of the trace.
func TestExplainDeterministic(t *testing.T) {
	spans, hdr, pts := faultedRun(t)
	var a, b bytes.Buffer
	if err := Analyze(spans, hdr, pts, Options{}).WriteText(&a); err != nil {
		t.Fatal(err)
	}
	if err := Analyze(spans, hdr, pts, Options{}).WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("two analyses of the same trace differ")
	}
}
