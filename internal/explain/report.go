package explain

import (
	"bufio"
	"fmt"
	"io"

	"hetlb/internal/obs/span"
)

// WriteText renders the report as a sectioned plain-text diagnosis. The
// output is deterministic for a given trace: every list is sorted with
// explicit tie-breaking in Analyze.
func (r *Report) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)

	fmt.Fprintf(bw, "span trace: %d records retained", r.Header.Retained)
	if r.Header.Dropped > 0 {
		fmt.Fprintf(bw, " (%d dropped — the ring overflowed; raise -span-cap, attribution below is partial)", r.Header.Dropped)
	}
	fmt.Fprintln(bw)
	fmt.Fprintf(bw, "  runs %d, replications %d, sweep cells %d, sessions %d, steps %d, fault points %d\n",
		r.Runs, r.Replications, r.Sweeps, r.SessionCount, r.Steps, r.FaultPoints)

	if r.Timeline != nil {
		t := r.Timeline
		fmt.Fprintf(bw, "\nconvergence (%d samples)\n", t.Points)
		if t.Points > 0 {
			fmt.Fprintf(bw, "  Cmax %d -> %d (best %d)", t.InitialCmax, t.FinalCmax, t.BestCmax)
			if t.ConvergedAt >= 0 {
				fmt.Fprintf(bw, ", best first reached at t=%d", t.ConvergedAt)
			}
			fmt.Fprintln(bw)
			fmt.Fprintf(bw, "  cumulative: %d moves, %d messages\n", t.FinalMoves, t.FinalMessages)
			if len(t.Stalls) == 0 {
				fmt.Fprintf(bw, "  no stalls: the makespan never sat still long enough to flag\n")
			}
			for _, s := range t.Stalls {
				fmt.Fprintf(bw, "  stall: stuck at Cmax %d for %d samples (t=%d..%d)\n", s.Cmax, s.Points, s.From, s.To)
			}
		}
	}

	if r.SessionCount > 0 {
		fmt.Fprintf(bw, "\nsessions (%d merged)\n", r.SessionCount)
		fmt.Fprintf(bw, "  outcomes: %d committed, %d aborted, %d rejected, %d crashed\n",
			r.Committed, r.Aborted, r.Rejected, r.CrashedSessions)
		d := r.Durations
		fmt.Fprintf(bw, "  latency: p50 %.1f, p90 %.1f, p99 %.1f, max %.0f (logical time units)\n",
			d.P50, d.P90, d.P99, d.Max)
	}

	if r.Drops+r.Retransmits+r.Timeouts+r.MachineCrashes+r.Recoveries > 0 {
		fmt.Fprintf(bw, "\nfaults\n")
		fmt.Fprintf(bw, "  %d drops, %d retransmissions, %d timeouts, %d machine crashes, %d recoveries\n",
			r.Drops, r.Retransmits, r.Timeouts, r.MachineCrashes, r.Recoveries)
		if r.Orphans > 0 {
			fmt.Fprintf(bw, "  %d fault points lost their session to ring truncation\n", r.Orphans)
		}
		if len(r.Degraded) == 0 {
			fmt.Fprintf(bw, "  no session had a fault attributed to it\n")
		} else {
			fmt.Fprintf(bw, "  most degraded sessions (faults attributed to the session that suffered them):\n")
			for _, s := range r.Degraded {
				fmt.Fprintf(bw, "    session %d (machine %d -> %d): %d faults (%d drops, %d retransmits, %d timeouts, %d crashes), outcome %s, t=%d..%d\n",
					uint64(s.ID), s.Initiator, s.Target, s.FaultTotal(),
					s.Drops, s.Retransmits, s.Timeouts, s.Crashes,
					flagsText(s.Flags), s.Start, s.End)
			}
		}
	}

	if len(r.HotPairs) > 0 {
		fmt.Fprintf(bw, "\nhottest machine pairs (by jobs moved)\n")
		for _, p := range r.HotPairs {
			fmt.Fprintf(bw, "  %d <-> %d: %d jobs over %d sessions/steps (%d committed", p.A, p.B, p.Moved, p.Count, p.Commits)
			if p.Faulted > 0 {
				fmt.Fprintf(bw, ", %d faulted", p.Faulted)
			}
			fmt.Fprintf(bw, ")\n")
		}
	}

	return bw.Flush()
}

// flagsText names a session's outcome bits.
func flagsText(f span.Flags) string {
	if f == 0 {
		return "open"
	}
	s := ""
	add := func(name string) {
		if s != "" {
			s += "+"
		}
		s += name
	}
	if f&span.FlagCommitted != 0 {
		add("committed")
	}
	if f&span.FlagAborted != 0 {
		add("aborted")
	}
	if f&span.FlagRejected != 0 {
		add("rejected")
	}
	if f&span.FlagCrashed != 0 {
		add("crashed")
	}
	if f&span.FlagFailed != 0 {
		add("failed")
	}
	return s
}
