package explain

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"hetlb/internal/obs/span"
	"hetlb/internal/obs/timeline"
)

// Header is the accounting line of a spans JSONL export: how much the ring
// saw and how much survived. Dropped > 0 means the report describes a
// truncated trace and says so.
type Header struct {
	Total    uint64
	Dropped  uint64
	Retained int
}

// spanLine mirrors one span.Recorder JSONL record.
type spanLine struct {
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent"`
	Kind   string `json:"kind"`
	Tag    string `json:"tag"`
	Flags  uint8  `json:"flags"`
	A      int32  `json:"a"`
	B      int32  `json:"b"`
	Start  int64  `json:"start"`
	End    int64  `json:"end"`
	Clock  uint64 `json:"clock"`
	V      int64  `json:"v"`
}

// headerLine mirrors the self-describing first line of both JSONL exports.
type headerLine struct {
	Meta     string `json:"meta"`
	Version  int    `json:"version"`
	Total    uint64 `json:"total"`
	Dropped  uint64 `json:"dropped"`
	Retained int    `json:"retained"`
}

// kindOf inverts span.Kind.String (the wire names are pinned by tests).
func kindOf(s string) (span.Kind, error) {
	for k := span.KindRun; k <= span.KindFault; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown span kind %q", s)
}

// tagOf inverts span.Tag.String.
func tagOf(s string) (span.Tag, error) {
	for t := span.TagNone; t <= span.TagRecover; t++ {
		if t.String() == s {
			return t, nil
		}
	}
	return 0, fmt.Errorf("unknown span tag %q", s)
}

// ReadSpans parses a span.Recorder JSONL export: the header line followed by
// one record per line.
func ReadSpans(r io.Reader) ([]span.Span, Header, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	if !sc.Scan() {
		return nil, Header{}, fmt.Errorf("explain: empty span trace")
	}
	var h headerLine
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil {
		return nil, Header{}, fmt.Errorf("explain: span trace header: %w", err)
	}
	if h.Meta != "hetlb-spans" {
		return nil, Header{}, fmt.Errorf("explain: not a span trace (meta %q, want \"hetlb-spans\")", h.Meta)
	}
	hdr := Header{Total: h.Total, Dropped: h.Dropped, Retained: h.Retained}
	var out []span.Span
	line := 1
	for sc.Scan() {
		line++
		if len(strings.TrimSpace(string(sc.Bytes()))) == 0 {
			continue
		}
		var l spanLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			return nil, hdr, fmt.Errorf("explain: span trace line %d: %w", line, err)
		}
		k, err := kindOf(l.Kind)
		if err != nil {
			return nil, hdr, fmt.Errorf("explain: span trace line %d: %w", line, err)
		}
		t, err := tagOf(l.Tag)
		if err != nil {
			return nil, hdr, fmt.Errorf("explain: span trace line %d: %w", line, err)
		}
		out = append(out, span.Span{
			ID:     span.ID(l.ID),
			Parent: span.ID(l.Parent),
			Kind:   k,
			Tag:    t,
			Flags:  span.Flags(l.Flags),
			A:      l.A,
			B:      l.B,
			Start:  l.Start,
			End:    l.End,
			Clock:  l.Clock,
			Value:  l.V,
		})
	}
	return out, hdr, sc.Err()
}

// timelineJSON mirrors timeline.Recorder.WriteJSON.
type timelineJSON struct {
	Meta   string `json:"meta"`
	Points []struct {
		Time      int64 `json:"time"`
		Cmax      int64 `json:"cmax"`
		Imbalance int64 `json:"imbalance"`
		Moves     int64 `json:"moves"`
		Messages  int64 `json:"messages"`
	} `json:"points"`
}

// ReadTimeline parses a timeline export in either format, sniffing JSON
// (WriteJSON) against CSV (WriteCSV) from the first byte.
func ReadTimeline(r io.Reader) ([]timeline.Point, error) {
	br := bufio.NewReader(r)
	first, err := br.Peek(1)
	if err != nil {
		return nil, fmt.Errorf("explain: empty timeline")
	}
	if first[0] == '{' {
		var tj timelineJSON
		if err := json.NewDecoder(br).Decode(&tj); err != nil {
			return nil, fmt.Errorf("explain: timeline JSON: %w", err)
		}
		if tj.Meta != "hetlb-timeline" {
			return nil, fmt.Errorf("explain: not a timeline (meta %q, want \"hetlb-timeline\")", tj.Meta)
		}
		out := make([]timeline.Point, len(tj.Points))
		for i, p := range tj.Points {
			out[i] = timeline.Point{Time: p.Time, Cmax: p.Cmax, Imbalance: p.Imbalance, Moves: p.Moves, Messages: p.Messages}
		}
		return out, nil
	}
	sc := bufio.NewScanner(br)
	if !sc.Scan() {
		return nil, fmt.Errorf("explain: empty timeline")
	}
	if got := strings.TrimSpace(sc.Text()); got != "time,cmax,imbalance,moves,messages" {
		return nil, fmt.Errorf("explain: not a timeline CSV (header %q)", got)
	}
	var out []timeline.Point
	line := 1
	for sc.Scan() {
		line++
		row := strings.TrimSpace(sc.Text())
		if row == "" {
			continue
		}
		cols := strings.Split(row, ",")
		if len(cols) != 5 {
			return nil, fmt.Errorf("explain: timeline CSV line %d: %d columns, want 5", line, len(cols))
		}
		var vals [5]int64
		for i, c := range cols {
			v, err := strconv.ParseInt(strings.TrimSpace(c), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("explain: timeline CSV line %d: %w", line, err)
			}
			vals[i] = v
		}
		out = append(out, timeline.Point{Time: vals[0], Cmax: vals[1], Imbalance: vals[2], Moves: vals[3], Messages: vals[4]})
	}
	return out, sc.Err()
}
