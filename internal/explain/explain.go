// Package explain turns the observability exports — a causal span trace and
// a convergence timeline — into a post-run diagnosis: when the run converged
// and where it stalled, which machine pairs carried the balancing traffic,
// which sessions the injected faults actually degraded, and how long
// sessions took end to end (p50/p99).
//
// The analysis is a pure function of its inputs. Every aggregation iterates
// in sorted order with explicit tie-breaking, so the same trace always
// produces the same report — explain output can be diffed and golden-tested
// like any other artifact of the deterministic pipeline.
package explain

import (
	"sort"

	"hetlb/internal/obs/span"
	"hetlb/internal/obs/timeline"
)

// Options tunes the analysis. The zero value is usable.
type Options struct {
	// TopK bounds the ranked lists (hottest pairs, most degraded
	// sessions); 0 means 5.
	TopK int
	// StallPoints is the minimum number of consecutive timeline points
	// without a makespan improvement that counts as a stall; 0 means 8.
	StallPoints int
}

// Session is one merged balancing session: all span records sharing an ID
// (the initiator's and the target's close, when both sides recorded one)
// folded into a single interval.
type Session struct {
	ID                span.ID
	Initiator, Target int32
	// Flags is the union over the session's records; a session that one
	// side committed and a crash aborted carries both bits.
	Flags span.Flags
	// Start and End span the earliest open and the latest close seen.
	Start, End int64
	// Moved is the jobs the session migrated (0 for aborted sessions).
	Moved int64
	// Fault counts attributed to this session, by tag.
	Drops, Retransmits, Timeouts, Crashes int
}

// FaultTotal is the number of fault points attributed to the session.
func (s *Session) FaultTotal() int { return s.Drops + s.Retransmits + s.Timeouts + s.Crashes }

// Pair aggregates balancing activity between two machines, from session
// spans (A = initiator, B = target) and sequential step spans (A, B = the
// balanced pair).
type Pair struct {
	A, B    int32
	Count   int   // sessions/steps between the pair
	Moved   int64 // jobs migrated between the pair
	Faulted int   // sessions of the pair that suffered at least one fault
	Commits int   // sessions/steps that moved ownership
}

// Stall is a flat stretch of the timeline: the makespan did not improve for
// Points consecutive samples between two improvements.
type Stall struct {
	From, To int64 // logical time of the bracketing improvements
	Points   int   // samples inside the stretch
	Cmax     int64 // the makespan the run was stuck at
}

// Timeline summarizes the convergence trajectory.
type Timeline struct {
	Points                           int
	InitialCmax, FinalCmax, BestCmax int64
	// ConvergedAt is the logical time of the first sample at BestCmax.
	ConvergedAt int64
	// FinalMoves and FinalMessages are the cumulative totals at the last
	// sample.
	FinalMoves, FinalMessages int64
	// Stalls lists the flat stretches longer than Options.StallPoints,
	// longest first.
	Stalls []Stall
}

// Quantiles summarizes the merged session durations (End − Start, in the
// runtime's logical time unit).
type Quantiles struct {
	Count              int
	P50, P90, P99, Max float64
}

// Report is the full analysis.
type Report struct {
	// Header is the span export's ring accounting.
	Header Header
	// Record counts by kind.
	Runs, Replications, Sweeps, SessionCount, Steps, FaultPoints int
	// Session outcomes (per merged session).
	Committed, Aborted, Rejected, CrashedSessions int
	// Global fault counts by tag (session-level and machine-level both).
	Drops, Retransmits, Timeouts, MachineCrashes, Recoveries int
	// Orphans counts fault points whose parent session fell out of the
	// ring (attribution lost to truncation).
	Orphans int
	// Durations are the merged session latency quantiles.
	Durations Quantiles
	// Degraded ranks the sessions by attributed fault count, worst first.
	Degraded []Session
	// HotPairs ranks machine pairs by jobs moved, busiest first.
	HotPairs []Pair
	// Timeline is nil when no timeline was provided.
	Timeline *Timeline
}

// Analyze builds the report from a parsed span trace and an optional
// timeline (pts may be nil).
func Analyze(spans []span.Span, hdr Header, pts []timeline.Point, opt Options) *Report {
	topK := opt.TopK
	if topK <= 0 {
		topK = 5
	}
	r := &Report{Header: hdr}

	// Pass 1: merge session records by ID and count kinds.
	sessions := make(map[span.ID]*Session)
	var order []span.ID // first-seen order, for deterministic iteration
	for _, s := range spans {
		switch s.Kind {
		case span.KindRun:
			r.Runs++
		case span.KindReplication:
			r.Replications++
		case span.KindSweep:
			r.Sweeps++
		case span.KindStep:
			r.Steps++
		case span.KindFault:
			r.FaultPoints++
		case span.KindSession:
			m, ok := sessions[s.ID]
			if !ok {
				m = &Session{ID: s.ID, Initiator: s.A, Target: s.B, Start: s.Start, End: s.End}
				sessions[s.ID] = m
				order = append(order, s.ID)
			}
			m.Flags |= s.Flags
			if s.Start < m.Start {
				m.Start = s.Start
			}
			if s.End > m.End {
				m.End = s.End
			}
			// The initiator's close carries the authoritative move count;
			// fall back to any positive value for single-record sessions.
			if s.Tag == span.TagInitiator || m.Moved == 0 {
				if s.Value > m.Moved {
					m.Moved = s.Value
				}
			}
		}
	}
	r.SessionCount = len(sessions)

	// Pass 2: attribute fault points to their parent session.
	for _, s := range spans {
		if s.Kind != span.KindFault {
			continue
		}
		m := sessions[s.Parent]
		switch s.Tag {
		case span.TagDrop:
			r.Drops++
			if m != nil {
				m.Drops++
			} else if s.Parent != 0 {
				r.Orphans++
			}
		case span.TagRetransmit:
			r.Retransmits++
			if m != nil {
				m.Retransmits++
			} else if s.Parent != 0 {
				r.Orphans++
			}
		case span.TagTimeout:
			r.Timeouts++
			if m != nil {
				m.Timeouts++
			} else if s.Parent != 0 {
				r.Orphans++
			}
		case span.TagCrash:
			if m != nil {
				m.Crashes++
			} else {
				r.MachineCrashes++
			}
		case span.TagRecover:
			r.Recoveries++
		}
	}

	// Outcomes, durations and degraded ranking over the merged sessions.
	durations := make([]int64, 0, len(sessions))
	var degraded []Session
	for _, id := range order {
		m := sessions[id]
		if m.Flags&span.FlagCommitted != 0 {
			r.Committed++
		}
		if m.Flags&span.FlagAborted != 0 {
			r.Aborted++
		}
		if m.Flags&span.FlagRejected != 0 {
			r.Rejected++
		}
		if m.Flags&span.FlagCrashed != 0 {
			r.CrashedSessions++
		}
		durations = append(durations, m.End-m.Start)
		if m.FaultTotal() > 0 {
			degraded = append(degraded, *m)
		}
	}
	sort.Slice(degraded, func(i, j int) bool {
		if degraded[i].FaultTotal() != degraded[j].FaultTotal() {
			return degraded[i].FaultTotal() > degraded[j].FaultTotal()
		}
		return degraded[i].ID < degraded[j].ID
	})
	if len(degraded) > topK {
		degraded = degraded[:topK]
	}
	r.Degraded = degraded

	sort.Slice(durations, func(i, j int) bool { return durations[i] < durations[j] })
	r.Durations = Quantiles{
		Count: len(durations),
		P50:   quantile(durations, 0.50),
		P90:   quantile(durations, 0.90),
		P99:   quantile(durations, 0.99),
		Max:   quantile(durations, 1),
	}

	// Hottest pairs over sessions and sequential steps.
	type pairKey struct{ a, b int32 }
	pairs := make(map[pairKey]*Pair)
	var pairOrder []pairKey
	touch := func(a, b int32) *Pair {
		k := pairKey{a, b}
		p, ok := pairs[k]
		if !ok {
			p = &Pair{A: a, B: b}
			pairs[k] = p
			pairOrder = append(pairOrder, k)
		}
		return p
	}
	for _, id := range order {
		m := sessions[id]
		p := touch(m.Initiator, m.Target)
		p.Count++
		p.Moved += m.Moved
		if m.FaultTotal() > 0 {
			p.Faulted++
		}
		if m.Flags&span.FlagCommitted != 0 {
			p.Commits++
		}
	}
	for _, s := range spans {
		if s.Kind != span.KindStep {
			continue
		}
		p := touch(s.A, s.B)
		p.Count++
		p.Moved += s.Value
		if s.Flags&span.FlagCommitted != 0 {
			p.Commits++
		}
	}
	hot := make([]Pair, 0, len(pairOrder))
	for _, k := range pairOrder {
		hot = append(hot, *pairs[k])
	}
	sort.Slice(hot, func(i, j int) bool {
		if hot[i].Moved != hot[j].Moved {
			return hot[i].Moved > hot[j].Moved
		}
		if hot[i].Count != hot[j].Count {
			return hot[i].Count > hot[j].Count
		}
		if hot[i].A != hot[j].A {
			return hot[i].A < hot[j].A
		}
		return hot[i].B < hot[j].B
	})
	if len(hot) > topK {
		hot = hot[:topK]
	}
	r.HotPairs = hot

	if pts != nil {
		r.Timeline = analyzeTimeline(pts, opt, topK)
	}
	return r
}

// analyzeTimeline summarizes the trajectory and finds the stalls.
func analyzeTimeline(pts []timeline.Point, opt Options, topK int) *Timeline {
	stallMin := opt.StallPoints
	if stallMin <= 0 {
		stallMin = 8
	}
	t := &Timeline{Points: len(pts), ConvergedAt: -1}
	if len(pts) == 0 {
		return t
	}
	t.InitialCmax = pts[0].Cmax
	t.FinalCmax = pts[len(pts)-1].Cmax
	t.FinalMoves = pts[len(pts)-1].Moves
	t.FinalMessages = pts[len(pts)-1].Messages
	best := pts[0].Cmax
	for _, p := range pts {
		if p.Cmax < best {
			best = p.Cmax
		}
	}
	t.BestCmax = best
	// Walk the improvements: a stall is the stretch between two strict
	// improvements of the running minimum. The tail after the last
	// improvement is convergence, not a stall, and is reported via
	// ConvergedAt instead.
	runMin := pts[0].Cmax
	lastImprove := 0
	for i, p := range pts {
		if p.Cmax == best && t.ConvergedAt < 0 {
			t.ConvergedAt = p.Time
		}
		if p.Cmax < runMin {
			if gap := i - lastImprove - 1; gap >= stallMin {
				t.Stalls = append(t.Stalls, Stall{
					From:   pts[lastImprove].Time,
					To:     p.Time,
					Points: gap,
					Cmax:   runMin,
				})
			}
			runMin = p.Cmax
			lastImprove = i
		}
	}
	sort.Slice(t.Stalls, func(i, j int) bool {
		if t.Stalls[i].Points != t.Stalls[j].Points {
			return t.Stalls[i].Points > t.Stalls[j].Points
		}
		return t.Stalls[i].From < t.Stalls[j].From
	})
	if len(t.Stalls) > topK {
		t.Stalls = t.Stalls[:topK]
	}
	return t
}

// quantile interpolates linearly between the order statistics of a sorted
// sample; q is clamped to [0, 1]. An empty sample yields 0.
func quantile(sorted []int64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo == len(sorted)-1 {
		return float64(sorted[lo])
	}
	frac := pos - float64(lo)
	return float64(sorted[lo])*(1-frac) + float64(sorted[lo+1])*frac
}
