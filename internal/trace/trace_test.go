package trace

import (
	"testing"

	"hetlb/internal/core"
	"hetlb/internal/gossip"
	"hetlb/internal/obs"
	"hetlb/internal/protocol"
	"hetlb/internal/rng"
	"hetlb/internal/workload"
)

func run(t *testing.T, steps int, obs ...gossip.Observer) *gossip.Engine {
	t.Helper()
	gen := rng.New(1)
	id := workload.UniformIdentical(gen, 6, 48, 1, 100)
	a := core.AllOnMachine(id, 0)
	e := gossip.New(protocol.SameCost{Model: id}, a, gossip.Config{Seed: 2})
	for _, o := range obs {
		e.Observe(o)
	}
	e.Run(steps, false)
	return e
}

func TestMakespanSeriesSampling(t *testing.T) {
	s := &MakespanSeries{SampleEvery: 10}
	run(t, 100, s)
	if len(s.Values) != 10 {
		t.Fatalf("recorded %d samples, want 10", len(s.Values))
	}
	for k, step := range s.Steps {
		if step != k*10 {
			t.Fatalf("sample %d at step %d, want %d", k, step, k*10)
		}
	}
}

func TestMakespanSeriesEveryStep(t *testing.T) {
	s := &MakespanSeries{}
	run(t, 25, s)
	if len(s.Values) != 25 {
		t.Fatalf("recorded %d samples, want 25", len(s.Values))
	}
}

func TestMakespanSeriesDecreasesFromPathologicalStart(t *testing.T) {
	s := &MakespanSeries{}
	run(t, 300, s)
	if s.Values[len(s.Values)-1] >= s.Values[0] {
		t.Fatalf("makespan did not improve: %d -> %d", s.Values[0], s.Values[len(s.Values)-1])
	}
	if s.Min() > s.Values[0] {
		t.Fatal("Min exceeds first sample")
	}
}

func TestMakespanSeriesMinEmpty(t *testing.T) {
	s := &MakespanSeries{}
	if s.Min() != 0 {
		t.Fatal("Min of empty series should be 0")
	}
}

func TestThresholdWatcher(t *testing.T) {
	// From an all-on-one-machine start, the makespan eventually falls
	// below a generous threshold; the watcher must fire exactly once and
	// snapshot exchange counts.
	gen := rng.New(3)
	id := workload.UniformIdentical(gen, 6, 48, 1, 100)
	var total core.Cost
	for j := 0; j < 48; j++ {
		total += id.Size(j)
	}
	threshold := total/6 + 150 // mean + 1.5×pmax
	w := &ThresholdWatcher{Threshold: threshold}
	a := core.AllOnMachine(id, 0)
	e := gossip.New(protocol.SameCost{Model: id}, a, gossip.Config{Seed: 4})
	e.Observe(w)
	e.Run(3000, false)
	if !w.Crossed {
		t.Fatalf("threshold %d never crossed; final=%d", threshold, a.Makespan())
	}
	if len(w.ExchangesAtCross) != 6 {
		t.Fatal("exchange snapshot missing")
	}
	epm, ok := w.ExchangesPerMachine(6)
	if !ok || epm <= 0 {
		t.Fatalf("ExchangesPerMachine = (%v, %v)", epm, ok)
	}
	// The snapshot must not keep growing after the crossing.
	snap := append([]int(nil), w.ExchangesAtCross...)
	e.Run(100, false)
	for k := range snap {
		if snap[k] != w.ExchangesAtCross[k] {
			t.Fatal("snapshot mutated after crossing")
		}
	}
}

func TestThresholdWatcherNeverCrossed(t *testing.T) {
	w := &ThresholdWatcher{Threshold: 0} // unreachable with positive loads
	run(t, 50, w)
	if w.Crossed {
		t.Fatal("crossed impossible threshold")
	}
	if _, ok := w.ExchangesPerMachine(6); ok {
		t.Fatal("ExchangesPerMachine should report not-ok")
	}
}

func TestStepLogRecordsPairs(t *testing.T) {
	l := &StepLog{}
	e := run(t, 40, l)
	if len(l.Pairs) != 40 {
		t.Fatalf("logged %d pairs, want 40", len(l.Pairs))
	}
	m := e.Assignment().Model().NumMachines()
	for _, p := range l.Pairs {
		if p[0] == p[1] || p[0] >= m || p[1] >= m {
			t.Fatalf("invalid pair %v", p)
		}
	}
}

func TestMakespanSeriesTracerTee(t *testing.T) {
	tr := obs.NewTracer(256)
	s := &MakespanSeries{SampleEvery: 5, Tracer: tr}
	run(t, 50, s)
	events := tr.Events()
	if len(events) != len(s.Values) {
		t.Fatalf("tracer has %d events, series has %d samples", len(events), len(s.Values))
	}
	for k, ev := range events {
		if ev.Type != obs.EvMakespanSample {
			t.Fatalf("event %d type = %v", k, ev.Type)
		}
		if ev.Time != int64(s.Steps[k]) || ev.Value != int64(s.Values[k]) {
			t.Fatalf("event %d = %+v, want step %d value %d", k, ev, s.Steps[k], s.Values[k])
		}
	}
}

func TestInstrumentObserver(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer(1024)
	ins := NewInstrument(reg, tr)
	e := run(t, 200, ins)
	if got := ins.Steps.Value(); got != 200 {
		t.Fatalf("observed steps = %d, want 200", got)
	}
	if got := ins.Makespan.Value(); got != int64(e.Assignment().Makespan()) {
		t.Fatalf("trace_makespan = %d, want %d", got, e.Assignment().Makespan())
	}
	if ins.MinMakespan.Value() > ins.Makespan.Value() {
		// From the pathological start the series is near-monotone down; at
		// minimum the min must not exceed the last sample.
		t.Fatalf("min %d > last %d", ins.MinMakespan.Value(), ins.Makespan.Value())
	}
	if tr.Total() == 0 {
		t.Fatal("instrument emitted no tracer events")
	}
}

// benchSeries drives MakespanSeries sampling every step on a many-machine
// instance. Compare against benchSeriesRecompute: the series now reads the
// engine's incremental cache rather than rescanning all machine loads.
func BenchmarkMakespanSeriesCached(b *testing.B) {
	benchSeries(b, func(e *gossip.Engine) core.Cost { return e.Makespan() })
}

// BenchmarkMakespanSeriesRecompute is the pre-obs baseline: a full O(m)
// makespan rescan on every sampled step.
func BenchmarkMakespanSeriesRecompute(b *testing.B) {
	benchSeries(b, func(e *gossip.Engine) core.Cost { return e.Assignment().Makespan() })
}

type queryObserver struct {
	query func(*gossip.Engine) core.Cost
	sink  core.Cost
}

func (q *queryObserver) OnStep(e gossip.Stepper, _, _, _ int) { q.sink = q.query(e.(*gossip.Engine)) }

func benchSeries(b *testing.B, query func(*gossip.Engine) core.Cost) {
	gen := rng.New(60)
	id := workload.UniformIdentical(gen, 3072, 1024, 1, 100)
	a := core.RoundRobin(id)
	e := gossip.New(protocol.SameCost{Model: id}, a, gossip.Config{Seed: 61})
	e.Observe(&queryObserver{query: query})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}
