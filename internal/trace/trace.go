// Package trace provides gossip.Observer implementations that record what
// the paper's figures plot: makespan trajectories over iterations
// (Figure 4), first-crossing times of a makespan threshold with per-machine
// exchange counts (Figure 5), and generic step logs.
//
// The probes are built on the observability layer: makespan queries go
// through the engine's incremental cache (Engine.Makespan, amortized O(1)
// instead of an O(m) rescan per sampled step), and every probe can tee its
// samples into an obs.Tracer ring for timeline export. Instrument is the
// generic metrics-backed observer for callers that want a trajectory in an
// obs.Registry without touching the engine configuration.
package trace

import (
	"hetlb/internal/core"
	"hetlb/internal/gossip"
	"hetlb/internal/obs"
	"hetlb/internal/obs/timeline"
)

// MakespanSeries records Cmax every SampleEvery steps (and at step 0).
type MakespanSeries struct {
	// SampleEvery controls the sampling period; 0 or 1 records every step.
	SampleEvery int
	// Steps and Values are the recorded series.
	Steps  []int
	Values []core.Cost
	// Tracer, when non-nil, additionally receives one EvMakespanSample
	// event per recorded point.
	Tracer *obs.Tracer
}

// OnStep implements gossip.Observer.
func (t *MakespanSeries) OnStep(e gossip.Stepper, step, i, j int) {
	every := t.SampleEvery
	if every < 1 {
		every = 1
	}
	if step%every != 0 {
		return
	}
	cmax := e.Makespan()
	t.Steps = append(t.Steps, step)
	t.Values = append(t.Values, cmax)
	if t.Tracer != nil {
		t.Tracer.Emit(obs.Event{Time: int64(step), Type: obs.EvMakespanSample, A: -1, B: -1, Value: int64(cmax)})
	}
}

// Min returns the smallest recorded makespan (0 if empty).
func (t *MakespanSeries) Min() core.Cost {
	if len(t.Values) == 0 {
		return 0
	}
	min := t.Values[0]
	for _, v := range t.Values[1:] {
		if v < min {
			min = v
		}
	}
	return min
}

// ThresholdWatcher records the first step at which the makespan drops to or
// below Threshold, together with a snapshot of the per-machine exchange
// counts at that moment. This is exactly the measurement of Figure 5 (time
// to first reach 1.5× the CLB2C centralized makespan).
type ThresholdWatcher struct {
	// Threshold is the makespan level watched for.
	Threshold core.Cost
	// Crossed reports whether the threshold was reached.
	Crossed bool
	// FirstStep is the 0-based step index of the first crossing.
	FirstStep int
	// ExchangesAtCross is a copy of the per-machine exchange counts at the
	// crossing.
	ExchangesAtCross []int
	// Tracer, when non-nil, receives one EvMakespanSample event at the
	// crossing.
	Tracer *obs.Tracer
}

// OnStep implements gossip.Observer.
func (t *ThresholdWatcher) OnStep(e gossip.Stepper, step, i, j int) {
	if t.Crossed {
		return
	}
	cmax := e.Makespan()
	if cmax <= t.Threshold {
		t.Crossed = true
		t.FirstStep = step
		t.ExchangesAtCross = append([]int(nil), e.Exchanges()...)
		if t.Tracer != nil {
			t.Tracer.Emit(obs.Event{Time: int64(step), Type: obs.EvMakespanSample, A: -1, B: -1, Value: int64(cmax)})
		}
	}
}

// ExchangesPerMachine returns the crossing step normalized by the machine
// count, the x-axis unit of Figure 5. It returns ok=false if the threshold
// was never crossed.
func (t *ThresholdWatcher) ExchangesPerMachine(machines int) (float64, bool) {
	if !t.Crossed || machines == 0 {
		return 0, false
	}
	return float64(t.FirstStep+1) / float64(machines), true
}

// TimelineSampler feeds a timeline.Recorder from a gossip engine that was
// built without gossip.Config.Timeline — the observer-based counterpart of
// that field, for engines whose configuration the caller does not control.
// Every SampleEvery steps (and at step 0) it records one convergence point:
// current Cmax, the imbalance Cmax − ⌊ΣC/m⌋ against the ideal uniform load,
// and the cumulative move count. Both queries hit the engine's incremental
// caches, so sampling is O(1) per point.
type TimelineSampler struct {
	// SampleEvery thins the sampling; 0 or 1 records every step. The
	// timeline ring's own power-of-two downsampling bounds retention, so
	// thinning here only trades resolution for recording cost.
	SampleEvery int
	// Timeline receives the points; a nil recorder disables the observer.
	Timeline *timeline.Recorder
}

// OnStep implements gossip.Observer.
func (t *TimelineSampler) OnStep(e gossip.Stepper, step, i, j int) {
	if t.Timeline == nil {
		return
	}
	every := t.SampleEvery
	if every < 1 {
		every = 1
	}
	if step%every != 0 {
		return
	}
	cmax := int64(e.Makespan())
	m := int64(e.Machines())
	t.Timeline.Record(timeline.Point{
		Time:      int64(step),
		Cmax:      cmax,
		Imbalance: cmax - e.TotalLoad()/m,
		Moves:     int64(e.Moves()),
	})
}

// StepLog records every balanced pair; it is mainly a debugging aid and is
// used by tests to validate selection policies.
type StepLog struct {
	Pairs [][2]int
}

// OnStep implements gossip.Observer.
func (t *StepLog) OnStep(_ gossip.Stepper, _ int, i, j int) {
	t.Pairs = append(t.Pairs, [2]int{i, j})
}

// Instrument is the metrics-backed observer: it mirrors the engine's
// trajectory into an obs registry (observed steps, sampled Cmax, minimum
// Cmax seen) and optionally a tracer ring, for engines whose configuration
// the caller does not control (e.g. when attaching to an engine built
// elsewhere). Engines built with gossip.Config.Metrics do not need it.
type Instrument struct {
	// SampleEvery thins the makespan sampling; 0 or 1 samples every step.
	SampleEvery int
	// Steps counts observed steps; Makespan is the last sampled Cmax;
	// MinMakespan is the smallest Cmax sampled so far (negated SetMax).
	Steps       *obs.Counter
	Makespan    *obs.Gauge
	MinMakespan *obs.Gauge
	// Tracer, when non-nil, receives one EvMakespanSample per sample.
	Tracer *obs.Tracer

	sampled bool
}

// NewInstrument registers the observer's instruments on a registry.
func NewInstrument(r *obs.Registry, tracer *obs.Tracer) *Instrument {
	return &Instrument{
		Steps:       r.Counter("trace_observed_steps_total", "steps seen by the trace instrument"),
		Makespan:    r.Gauge("trace_makespan", "last sampled Cmax"),
		MinMakespan: r.Gauge("trace_makespan_min", "smallest Cmax sampled"),
		Tracer:      tracer,
	}
}

// OnStep implements gossip.Observer.
func (t *Instrument) OnStep(e gossip.Stepper, step, i, j int) {
	t.Steps.Inc()
	every := t.SampleEvery
	if every < 1 {
		every = 1
	}
	if step%every != 0 {
		return
	}
	cmax := int64(e.Makespan())
	t.Makespan.Set(cmax)
	if !t.sampled || cmax < t.MinMakespan.Value() {
		t.MinMakespan.Set(cmax)
		t.sampled = true
	}
	if t.Tracer != nil {
		t.Tracer.Emit(obs.Event{Time: int64(step), Type: obs.EvMakespanSample, A: int32(i), B: int32(j), Value: cmax})
	}
}
