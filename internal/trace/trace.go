// Package trace provides gossip.Observer implementations that record what
// the paper's figures plot: makespan trajectories over iterations
// (Figure 4), first-crossing times of a makespan threshold with per-machine
// exchange counts (Figure 5), and generic step logs.
package trace

import (
	"hetlb/internal/core"
	"hetlb/internal/gossip"
)

// MakespanSeries records Cmax every SampleEvery steps (and at step 0).
type MakespanSeries struct {
	// SampleEvery controls the sampling period; 0 or 1 records every step.
	SampleEvery int
	// Steps and Values are the recorded series.
	Steps  []int
	Values []core.Cost
}

// OnStep implements gossip.Observer.
func (t *MakespanSeries) OnStep(e *gossip.Engine, step, i, j int) {
	every := t.SampleEvery
	if every < 1 {
		every = 1
	}
	if step%every != 0 {
		return
	}
	t.Steps = append(t.Steps, step)
	t.Values = append(t.Values, e.Assignment().Makespan())
}

// Min returns the smallest recorded makespan (0 if empty).
func (t *MakespanSeries) Min() core.Cost {
	if len(t.Values) == 0 {
		return 0
	}
	min := t.Values[0]
	for _, v := range t.Values[1:] {
		if v < min {
			min = v
		}
	}
	return min
}

// ThresholdWatcher records the first step at which the makespan drops to or
// below Threshold, together with a snapshot of the per-machine exchange
// counts at that moment. This is exactly the measurement of Figure 5 (time
// to first reach 1.5× the CLB2C centralized makespan).
type ThresholdWatcher struct {
	// Threshold is the makespan level watched for.
	Threshold core.Cost
	// Crossed reports whether the threshold was reached.
	Crossed bool
	// FirstStep is the 0-based step index of the first crossing.
	FirstStep int
	// ExchangesAtCross is a copy of the per-machine exchange counts at the
	// crossing.
	ExchangesAtCross []int
}

// OnStep implements gossip.Observer.
func (t *ThresholdWatcher) OnStep(e *gossip.Engine, step, i, j int) {
	if t.Crossed {
		return
	}
	if e.Assignment().Makespan() <= t.Threshold {
		t.Crossed = true
		t.FirstStep = step
		t.ExchangesAtCross = append([]int(nil), e.Exchanges()...)
	}
}

// ExchangesPerMachine returns the crossing step normalized by the machine
// count, the x-axis unit of Figure 5. It returns ok=false if the threshold
// was never crossed.
func (t *ThresholdWatcher) ExchangesPerMachine(machines int) (float64, bool) {
	if !t.Crossed || machines == 0 {
		return 0, false
	}
	return float64(t.FirstStep+1) / float64(machines), true
}

// StepLog records every balanced pair; it is mainly a debugging aid and is
// used by tests to validate selection policies.
type StepLog struct {
	Pairs [][2]int
}

// OnStep implements gossip.Observer.
func (t *StepLog) OnStep(_ *gossip.Engine, _ int, i, j int) {
	t.Pairs = append(t.Pairs, [2]int{i, j})
}
