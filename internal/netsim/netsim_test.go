package netsim

import (
	"testing"

	"hetlb/internal/core"
	"hetlb/internal/obs"
	"hetlb/internal/protocol"
	"hetlb/internal/rng"
	"hetlb/internal/workload"
)

func TestConfigValidation(t *testing.T) {
	gen := rng.New(1)
	tc := workload.UniformTwoCluster(gen, 2, 2, 8, 1, 10)
	init := core.RoundRobin(tc)
	proto := protocol.DLB2C{Model: tc}
	if _, err := New(tc, proto, init, Config{Latency: 0, Period: 5, Horizon: 100}); err == nil {
		t.Fatal("latency 0 accepted")
	}
	if _, err := New(tc, proto, init, Config{Latency: 1, Period: 0, Horizon: 100}); err == nil {
		t.Fatal("period 0 accepted")
	}
	if _, err := New(tc, proto, init, Config{Latency: 1, Period: 5, Horizon: 0}); err == nil {
		t.Fatal("horizon 0 accepted")
	}
	incomplete := core.NewAssignment(tc)
	if _, err := New(tc, proto, incomplete, Config{Latency: 1, Period: 5, Horizon: 100}); err == nil {
		t.Fatal("incomplete initial accepted")
	}
}

func TestJobConservationSingleOwnership(t *testing.T) {
	gen := rng.New(2)
	tc := workload.UniformTwoCluster(gen, 6, 3, 72, 1, 100)
	init := core.RoundRobin(tc)
	sim, err := New(tc, protocol.DLB2C{Model: tc}, init, Config{
		Seed: 3, Latency: 2, Period: 10, Horizon: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := sim.Run()
	a, err := sim.Placement()
	if err != nil {
		t.Fatal(err) // double ownership would error here
	}
	if !a.Complete() {
		t.Fatalf("jobs lost: %d/%d placed", a.NumAssigned(), tc.NumJobs())
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if st.Sessions == 0 {
		t.Fatal("no sessions completed")
	}
	if a.Makespan() != st.FinalMakespan {
		t.Fatalf("final makespan mismatch: %d vs %d", a.Makespan(), st.FinalMakespan)
	}
}

func TestImprovesOverInitial(t *testing.T) {
	gen := rng.New(4)
	tc := workload.UniformTwoCluster(gen, 8, 4, 96, 1, 100)
	init := core.AllOnMachine(tc, 0)
	before := init.Makespan()
	sim, err := New(tc, protocol.DLB2C{Model: tc}, init, Config{
		Seed: 5, Latency: 1, Period: 8, Horizon: 3000,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := sim.Run()
	if st.FinalMakespan >= before/2 {
		t.Fatalf("message-passing runtime barely improved: %d -> %d", before, st.FinalMakespan)
	}
}

func TestRejectionsHappenUnderContention(t *testing.T) {
	// Tiny system, aggressive period vs latency: initiators must collide
	// and produce rejections without deadlocking.
	gen := rng.New(6)
	tc := workload.UniformTwoCluster(gen, 2, 1, 24, 1, 50)
	init := core.RoundRobin(tc)
	sim, err := New(tc, protocol.DLB2C{Model: tc}, init, Config{
		Seed: 7, Latency: 5, Period: 3, Horizon: 4000,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := sim.Run()
	if st.Rejections == 0 {
		t.Fatal("no rejections despite heavy contention")
	}
	if st.Sessions == 0 {
		t.Fatal("contention starved all sessions")
	}
	if _, err := sim.Placement(); err != nil {
		t.Fatal(err)
	}
}

func TestHigherLatencyFewerSessions(t *testing.T) {
	gen := rng.New(8)
	tc := workload.UniformTwoCluster(gen, 4, 4, 64, 1, 100)
	init := core.RoundRobin(tc)
	run := func(latency int64) Stats {
		sim, err := New(tc, protocol.DLB2C{Model: tc}, init, Config{
			Seed: 9, Latency: latency, Period: 10, Horizon: 5000,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sim.Run()
	}
	fast := run(1)
	slow := run(40) // session takes 3 hops = 120 >> period: mostly busy
	if slow.Sessions >= fast.Sessions {
		t.Fatalf("latency 40 completed %d sessions vs %d at latency 1",
			slow.Sessions, fast.Sessions)
	}
}

func TestSamplingCoversHorizon(t *testing.T) {
	gen := rng.New(10)
	id := workload.UniformIdentical(gen, 4, 32, 1, 20)
	init := core.RoundRobin(id)
	sim, err := New(id, protocol.SameCost{Model: id}, init, Config{
		Seed: 11, Latency: 1, Period: 50, Horizon: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := sim.Run()
	if len(st.Times) < 10 {
		t.Fatalf("only %d samples over the horizon", len(st.Times))
	}
	for k := 1; k < len(st.Times); k++ {
		if st.Times[k] <= st.Times[k-1] {
			t.Fatal("sample times not increasing")
		}
	}
	if st.Times[len(st.Times)-1] > 1000 {
		t.Fatal("sampled past the horizon")
	}
}

func TestMessageCountAccounting(t *testing.T) {
	// Every session costs 3 messages; every rejection costs 2.
	gen := rng.New(12)
	tc := workload.UniformTwoCluster(gen, 3, 3, 36, 1, 50)
	init := core.RoundRobin(tc)
	sim, err := New(tc, protocol.DLB2C{Model: tc}, init, Config{
		Seed: 13, Latency: 2, Period: 7, Horizon: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := sim.Run()
	want := 3*st.Sessions + 2*st.Rejections
	if st.Messages != want {
		t.Fatalf("messages = %d, want 3·%d + 2·%d = %d",
			st.Messages, st.Sessions, st.Rejections, want)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	gen := rng.New(14)
	tc := workload.UniformTwoCluster(gen, 4, 2, 48, 1, 60)
	init := core.RoundRobin(tc)
	run := func() Stats {
		sim, err := New(tc, protocol.DLB2C{Model: tc}, init, Config{
			Seed: 15, Latency: 3, Period: 9, Horizon: 1500,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sim.Run()
	}
	a, b := run(), run()
	if a.Sessions != b.Sessions || a.Messages != b.Messages || a.FinalMakespan != b.FinalMakespan {
		t.Fatal("same seed produced different runs")
	}
}

func BenchmarkNetsimPaperScale(b *testing.B) {
	gen := rng.New(16)
	tc := workload.UniformTwoCluster(gen, 64, 32, 768, 1, 1000)
	init := core.RoundRobin(tc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim, err := New(tc, protocol.DLB2C{Model: tc}, init, Config{
			Seed: uint64(i), Latency: 1, Period: 10, Horizon: 500,
		})
		if err != nil {
			b.Fatal(err)
		}
		sim.Run()
	}
}

// TestObsMetricsMatchStats attaches the obs instruments and checks every
// counter against the simulator's own statistics, plus the invariants of
// the three-message handshake.
func TestObsMetricsMatchStats(t *testing.T) {
	gen := rng.New(91)
	tc := workload.UniformTwoCluster(gen, 6, 3, 72, 1, 100)
	init := core.RoundRobin(tc)
	reg := obs.NewRegistry()
	met := NewMetrics(reg)
	tr := obs.NewTracer(1 << 15)
	sim, err := New(tc, protocol.DLB2C{Model: tc}, init, Config{
		Seed: 92, Latency: 3, Period: 10, Horizon: 1500,
		Metrics: met, Tracer: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := sim.Run()

	if got := met.Sessions.Value(); got != int64(st.Sessions) {
		t.Fatalf("netsim_sessions_total = %d, want %d", got, st.Sessions)
	}
	if got := met.Rejections.Value(); got != int64(st.Rejections) {
		t.Fatalf("netsim_rejections_total = %d, want %d", got, st.Rejections)
	}
	if got := met.Messages.Total(); got != int64(st.Messages) {
		t.Fatalf("netsim_messages_total = %d, want %d", got, st.Messages)
	}
	// Handshake shape: each completed session is REQUEST+OFFER+COMMIT, each
	// rejection REQUEST+REJECT.
	if got, want := met.Messages.At(MsgRequest).Value(), int64(st.Sessions+st.Rejections); got != want {
		t.Fatalf("requests = %d, want %d", got, want)
	}
	if got := met.Messages.At(MsgOffer).Value(); got != int64(st.Sessions) {
		t.Fatalf("offers = %d, want sessions %d", got, st.Sessions)
	}
	if got := met.Messages.At(MsgCommit).Value(); got != int64(st.Sessions) {
		t.Fatalf("commits = %d, want sessions %d", got, st.Sessions)
	}
	if got := met.Messages.At(MsgReject).Value(); got != int64(st.Rejections) {
		t.Fatalf("rejects = %d, want rejections %d", got, st.Rejections)
	}
	// Every message observed the constant simulated latency.
	if met.Latency.Count() != int64(st.Messages) || met.Latency.Sum() != 3*int64(st.Messages) {
		t.Fatalf("latency histogram count=%d sum=%d, want %d/%d",
			met.Latency.Count(), met.Latency.Sum(), st.Messages, 3*st.Messages)
	}
	// A completed handshake is exactly three hops of latency 3.
	if met.Handshake.Count() != int64(st.Sessions) {
		t.Fatalf("handshake count = %d, want %d", met.Handshake.Count(), st.Sessions)
	}
	if st.Sessions > 0 && met.Handshake.Sum() != 9*int64(st.Sessions) {
		t.Fatalf("handshake sum = %d, want %d", met.Handshake.Sum(), 9*st.Sessions)
	}
	if got := met.Makespan.Value(); got != int64(st.FinalMakespan) {
		// The gauge holds the last *sample*; after drainage the final value
		// can only differ if jobs were mid-flight at the last sample, which
		// Run's drain rules out at the final sample time. Allow either the
		// final makespan or the last sampled one.
		last := st.Makespans[len(st.Makespans)-1]
		if got != int64(last) {
			t.Fatalf("netsim_makespan = %d, want %d or %d", got, st.FinalMakespan, last)
		}
	}
	// Tracer: sent events must equal delivered messages (queue fully
	// drained), and session-end events equal sessions.
	var sent, recv, ended int
	for _, ev := range tr.Events() {
		switch ev.Type {
		case obs.EvMessageSent:
			sent++
		case obs.EvMessageRecv:
			recv++
		case obs.EvSessionEnd:
			ended++
		}
	}
	if tr.Dropped() == 0 {
		if sent != st.Messages || recv != st.Messages {
			t.Fatalf("tracer sent/recv = %d/%d, want %d", sent, recv, st.Messages)
		}
		if ended != st.Sessions {
			t.Fatalf("tracer session-end = %d, want %d", ended, st.Sessions)
		}
	}
	if st.Sessions == 0 {
		t.Fatal("test instance produced no sessions; weaken the horizon")
	}
}
