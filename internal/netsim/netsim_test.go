package netsim

import (
	"testing"

	"hetlb/internal/core"
	"hetlb/internal/protocol"
	"hetlb/internal/rng"
	"hetlb/internal/workload"
)

func TestConfigValidation(t *testing.T) {
	gen := rng.New(1)
	tc := workload.UniformTwoCluster(gen, 2, 2, 8, 1, 10)
	init := core.RoundRobin(tc)
	proto := protocol.DLB2C{Model: tc}
	if _, err := New(tc, proto, init, Config{Latency: 0, Period: 5, Horizon: 100}); err == nil {
		t.Fatal("latency 0 accepted")
	}
	if _, err := New(tc, proto, init, Config{Latency: 1, Period: 0, Horizon: 100}); err == nil {
		t.Fatal("period 0 accepted")
	}
	if _, err := New(tc, proto, init, Config{Latency: 1, Period: 5, Horizon: 0}); err == nil {
		t.Fatal("horizon 0 accepted")
	}
	incomplete := core.NewAssignment(tc)
	if _, err := New(tc, proto, incomplete, Config{Latency: 1, Period: 5, Horizon: 100}); err == nil {
		t.Fatal("incomplete initial accepted")
	}
}

func TestJobConservationSingleOwnership(t *testing.T) {
	gen := rng.New(2)
	tc := workload.UniformTwoCluster(gen, 6, 3, 72, 1, 100)
	init := core.RoundRobin(tc)
	sim, err := New(tc, protocol.DLB2C{Model: tc}, init, Config{
		Seed: 3, Latency: 2, Period: 10, Horizon: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := sim.Run()
	a, err := sim.Placement()
	if err != nil {
		t.Fatal(err) // double ownership would error here
	}
	if !a.Complete() {
		t.Fatalf("jobs lost: %d/%d placed", a.NumAssigned(), tc.NumJobs())
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if st.Sessions == 0 {
		t.Fatal("no sessions completed")
	}
	if a.Makespan() != st.FinalMakespan {
		t.Fatalf("final makespan mismatch: %d vs %d", a.Makespan(), st.FinalMakespan)
	}
}

func TestImprovesOverInitial(t *testing.T) {
	gen := rng.New(4)
	tc := workload.UniformTwoCluster(gen, 8, 4, 96, 1, 100)
	init := core.AllOnMachine(tc, 0)
	before := init.Makespan()
	sim, err := New(tc, protocol.DLB2C{Model: tc}, init, Config{
		Seed: 5, Latency: 1, Period: 8, Horizon: 3000,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := sim.Run()
	if st.FinalMakespan >= before/2 {
		t.Fatalf("message-passing runtime barely improved: %d -> %d", before, st.FinalMakespan)
	}
}

func TestRejectionsHappenUnderContention(t *testing.T) {
	// Tiny system, aggressive period vs latency: initiators must collide
	// and produce rejections without deadlocking.
	gen := rng.New(6)
	tc := workload.UniformTwoCluster(gen, 2, 1, 24, 1, 50)
	init := core.RoundRobin(tc)
	sim, err := New(tc, protocol.DLB2C{Model: tc}, init, Config{
		Seed: 7, Latency: 5, Period: 3, Horizon: 4000,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := sim.Run()
	if st.Rejections == 0 {
		t.Fatal("no rejections despite heavy contention")
	}
	if st.Sessions == 0 {
		t.Fatal("contention starved all sessions")
	}
	if _, err := sim.Placement(); err != nil {
		t.Fatal(err)
	}
}

func TestHigherLatencyFewerSessions(t *testing.T) {
	gen := rng.New(8)
	tc := workload.UniformTwoCluster(gen, 4, 4, 64, 1, 100)
	init := core.RoundRobin(tc)
	run := func(latency int64) Stats {
		sim, err := New(tc, protocol.DLB2C{Model: tc}, init, Config{
			Seed: 9, Latency: latency, Period: 10, Horizon: 5000,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sim.Run()
	}
	fast := run(1)
	slow := run(40) // session takes 3 hops = 120 >> period: mostly busy
	if slow.Sessions >= fast.Sessions {
		t.Fatalf("latency 40 completed %d sessions vs %d at latency 1",
			slow.Sessions, fast.Sessions)
	}
}

func TestSamplingCoversHorizon(t *testing.T) {
	gen := rng.New(10)
	id := workload.UniformIdentical(gen, 4, 32, 1, 20)
	init := core.RoundRobin(id)
	sim, err := New(id, protocol.SameCost{Model: id}, init, Config{
		Seed: 11, Latency: 1, Period: 50, Horizon: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := sim.Run()
	if len(st.Times) < 10 {
		t.Fatalf("only %d samples over the horizon", len(st.Times))
	}
	for k := 1; k < len(st.Times); k++ {
		if st.Times[k] <= st.Times[k-1] {
			t.Fatal("sample times not increasing")
		}
	}
	if st.Times[len(st.Times)-1] > 1000 {
		t.Fatal("sampled past the horizon")
	}
}

func TestMessageCountAccounting(t *testing.T) {
	// Every session costs 3 messages; every rejection costs 2.
	gen := rng.New(12)
	tc := workload.UniformTwoCluster(gen, 3, 3, 36, 1, 50)
	init := core.RoundRobin(tc)
	sim, err := New(tc, protocol.DLB2C{Model: tc}, init, Config{
		Seed: 13, Latency: 2, Period: 7, Horizon: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := sim.Run()
	want := 3*st.Sessions + 2*st.Rejections
	if st.Messages != want {
		t.Fatalf("messages = %d, want 3·%d + 2·%d = %d",
			st.Messages, st.Sessions, st.Rejections, want)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	gen := rng.New(14)
	tc := workload.UniformTwoCluster(gen, 4, 2, 48, 1, 60)
	init := core.RoundRobin(tc)
	run := func() Stats {
		sim, err := New(tc, protocol.DLB2C{Model: tc}, init, Config{
			Seed: 15, Latency: 3, Period: 9, Horizon: 1500,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sim.Run()
	}
	a, b := run(), run()
	if a.Sessions != b.Sessions || a.Messages != b.Messages || a.FinalMakespan != b.FinalMakespan {
		t.Fatal("same seed produced different runs")
	}
}

func BenchmarkNetsimPaperScale(b *testing.B) {
	gen := rng.New(16)
	tc := workload.UniformTwoCluster(gen, 64, 32, 768, 1, 1000)
	init := core.RoundRobin(tc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim, err := New(tc, protocol.DLB2C{Model: tc}, init, Config{
			Seed: uint64(i), Latency: 1, Period: 10, Horizon: 500,
		})
		if err != nil {
			b.Fatal(err)
		}
		sim.Run()
	}
}
