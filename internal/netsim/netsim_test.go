package netsim

import (
	"reflect"
	"testing"

	"hetlb/internal/core"
	"hetlb/internal/faults"
	"hetlb/internal/harness"
	"hetlb/internal/obs"
	"hetlb/internal/protocol"
	"hetlb/internal/rng"
	"hetlb/internal/workload"
)

func TestConfigValidation(t *testing.T) {
	gen := rng.New(1)
	tc := workload.UniformTwoCluster(gen, 2, 2, 8, 1, 10)
	init := core.RoundRobin(tc)
	proto := protocol.DLB2C{Model: tc}
	if _, err := New(tc, proto, init, Config{Latency: 0, Period: 5, Horizon: 100}); err == nil {
		t.Fatal("latency 0 accepted")
	}
	if _, err := New(tc, proto, init, Config{Latency: 1, Period: 0, Horizon: 100}); err == nil {
		t.Fatal("period 0 accepted")
	}
	if _, err := New(tc, proto, init, Config{Latency: 1, Period: 5, Horizon: 0}); err == nil {
		t.Fatal("horizon 0 accepted")
	}
	incomplete := core.NewAssignment(tc)
	if _, err := New(tc, proto, incomplete, Config{Latency: 1, Period: 5, Horizon: 100}); err == nil {
		t.Fatal("incomplete initial accepted")
	}
	// An assignment built against a different model shape must be rejected
	// up front instead of panicking mid-run.
	other := workload.UniformTwoCluster(rng.New(2), 3, 2, 12, 1, 10)
	if _, err := New(tc, proto, core.RoundRobin(other), Config{Latency: 1, Period: 5, Horizon: 100}); err == nil {
		t.Fatal("initial assignment for a different model accepted")
	}
	// Invalid fault plans are rejected in New too.
	bad := &faults.Config{DropProb: 1.5}
	if _, err := New(tc, proto, init, Config{Latency: 1, Period: 5, Horizon: 100, Faults: bad}); err == nil {
		t.Fatal("invalid fault config accepted")
	}
	crash := &faults.Config{Crashes: []faults.Crash{{Machine: 99, At: 1, RecoverAt: 2}}}
	if _, err := New(tc, proto, init, Config{Latency: 1, Period: 5, Horizon: 100, Faults: crash}); err == nil {
		t.Fatal("crash schedule for an unknown machine accepted")
	}
}

func TestJobConservationSingleOwnership(t *testing.T) {
	gen := rng.New(2)
	tc := workload.UniformTwoCluster(gen, 6, 3, 72, 1, 100)
	init := core.RoundRobin(tc)
	sim, err := New(tc, protocol.DLB2C{Model: tc}, init, Config{
		Seed: 3, Latency: 2, Period: 10, Horizon: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := sim.Run()
	if err := sim.ValidateConservation(); err != nil {
		t.Fatal(err)
	}
	a, err := sim.Placement()
	if err != nil {
		t.Fatal(err) // double ownership would error here
	}
	if !a.Complete() {
		t.Fatalf("jobs lost: %d/%d placed", a.NumAssigned(), tc.NumJobs())
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if st.Sessions == 0 {
		t.Fatal("no sessions completed")
	}
	if a.Makespan() != st.FinalMakespan {
		t.Fatalf("final makespan mismatch: %d vs %d", a.Makespan(), st.FinalMakespan)
	}
}

func TestImprovesOverInitial(t *testing.T) {
	gen := rng.New(4)
	tc := workload.UniformTwoCluster(gen, 8, 4, 96, 1, 100)
	init := core.AllOnMachine(tc, 0)
	before := init.Makespan()
	sim, err := New(tc, protocol.DLB2C{Model: tc}, init, Config{
		Seed: 5, Latency: 1, Period: 8, Horizon: 3000,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := sim.Run()
	if st.FinalMakespan >= before/2 {
		t.Fatalf("message-passing runtime barely improved: %d -> %d", before, st.FinalMakespan)
	}
}

func TestRejectionsHappenUnderContention(t *testing.T) {
	// Tiny system, aggressive period vs latency: initiators must collide
	// and produce rejections without deadlocking.
	gen := rng.New(6)
	tc := workload.UniformTwoCluster(gen, 2, 1, 24, 1, 50)
	init := core.RoundRobin(tc)
	sim, err := New(tc, protocol.DLB2C{Model: tc}, init, Config{
		Seed: 7, Latency: 5, Period: 3, Horizon: 4000,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := sim.Run()
	if st.Rejections == 0 {
		t.Fatal("no rejections despite heavy contention")
	}
	if st.Sessions == 0 {
		t.Fatal("contention starved all sessions")
	}
	if _, err := sim.Placement(); err != nil {
		t.Fatal(err)
	}
}

func TestHigherLatencyFewerSessions(t *testing.T) {
	gen := rng.New(8)
	tc := workload.UniformTwoCluster(gen, 4, 4, 64, 1, 100)
	init := core.RoundRobin(tc)
	run := func(latency int64) Stats {
		sim, err := New(tc, protocol.DLB2C{Model: tc}, init, Config{
			Seed: 9, Latency: latency, Period: 10, Horizon: 5000,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sim.Run()
	}
	fast := run(1)
	slow := run(40) // session takes 3 hops = 120 >> period: mostly busy
	if slow.Sessions >= fast.Sessions {
		t.Fatalf("latency 40 completed %d sessions vs %d at latency 1",
			slow.Sessions, fast.Sessions)
	}
}

func TestSamplingCoversHorizon(t *testing.T) {
	gen := rng.New(10)
	id := workload.UniformIdentical(gen, 4, 32, 1, 20)
	init := core.RoundRobin(id)
	sim, err := New(id, protocol.SameCost{Model: id}, init, Config{
		Seed: 11, Latency: 1, Period: 50, Horizon: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := sim.Run()
	if len(st.Times) < 10 {
		t.Fatalf("only %d samples over the horizon", len(st.Times))
	}
	for k := 1; k < len(st.Times); k++ {
		if st.Times[k] <= st.Times[k-1] {
			t.Fatal("sample times not increasing")
		}
	}
	if st.Times[len(st.Times)-1] > 1000 {
		t.Fatal("sampled past the horizon")
	}
}

func TestMessageCountAccounting(t *testing.T) {
	// On a perfect network every session costs 3 messages, every rejection
	// costs 2, nothing is retransmitted, and everything sent is delivered.
	gen := rng.New(12)
	tc := workload.UniformTwoCluster(gen, 3, 3, 36, 1, 50)
	init := core.RoundRobin(tc)
	sim, err := New(tc, protocol.DLB2C{Model: tc}, init, Config{
		Seed: 13, Latency: 2, Period: 7, Horizon: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := sim.Run()
	want := 3*st.Sessions + 2*st.Rejections
	if st.Sent != want {
		t.Fatalf("sent = %d, want 3·%d + 2·%d = %d",
			st.Sent, st.Sessions, st.Rejections, want)
	}
	if st.Delivered != st.Sent {
		t.Fatalf("delivered = %d, sent = %d on a perfect network", st.Delivered, st.Sent)
	}
	if st.Retransmissions != 0 || st.Timeouts != 0 || st.Dropped != 0 || st.Aborts != 0 {
		t.Fatalf("fault counters nonzero on a perfect network: %+v", st)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	gen := rng.New(14)
	tc := workload.UniformTwoCluster(gen, 4, 2, 48, 1, 60)
	init := core.RoundRobin(tc)
	run := func() Stats {
		sim, err := New(tc, protocol.DLB2C{Model: tc}, init, Config{
			Seed: 15, Latency: 3, Period: 9, Horizon: 1500,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sim.Run()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different runs")
	}
}

// TestZeroFaultPlanIsTransparent pins the acceptance criterion "a zero-fault
// plan reproduces the existing determinism goldens": attaching an all-zero
// faults.Config must yield bit-identical Stats to running with no plan at
// all, because the hardened handshake takes the exact same decisions when
// nothing is dropped, duplicated, jittered or crashed.
func TestZeroFaultPlanIsTransparent(t *testing.T) {
	gen := rng.New(77)
	tc := workload.UniformTwoCluster(gen, 5, 3, 64, 1, 80)
	init := core.RoundRobin(tc)
	run := func(fc *faults.Config) Stats {
		sim, err := New(tc, protocol.DLB2C{Model: tc}, init, Config{
			Seed: 78, Latency: 2, Period: 8, Horizon: 2500, Faults: fc,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sim.Run()
	}
	plain := run(nil)
	zero := run(&faults.Config{})
	if !reflect.DeepEqual(plain, zero) {
		t.Fatalf("zero-fault plan diverged from faultless run:\n%+v\nvs\n%+v", plain, zero)
	}
}

// TestLossyNetworkConserves drives one hard instance — high loss,
// duplication and jitter at once — and checks that the run drains, no
// machine is wedged, every job survives, and the fault counters are
// plausible.
func TestLossyNetworkConserves(t *testing.T) {
	gen := rng.New(30)
	tc := workload.UniformTwoCluster(gen, 5, 3, 64, 1, 100)
	init := core.RoundRobin(tc)
	sim, err := New(tc, protocol.DLB2C{Model: tc}, init, Config{
		Seed: 31, Latency: 2, Period: 9, Horizon: 3000,
		Faults:    &faults.Config{DropProb: 0.3, DupProb: 0.2, JitterMax: 3},
		MaxEvents: 5_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := sim.Run()
	if err := sim.ValidateConservation(); err != nil {
		t.Fatal(err)
	}
	a, err := sim.Placement()
	if err != nil {
		t.Fatal(err)
	}
	if !a.Complete() {
		t.Fatalf("no crashes were scheduled, yet only %d/%d jobs placed", a.NumAssigned(), tc.NumJobs())
	}
	if st.Dropped == 0 || st.Duplicated == 0 || st.Retransmissions == 0 || st.Timeouts == 0 {
		t.Fatalf("fault machinery unexercised: %+v", st)
	}
	if st.Sessions == 0 {
		t.Fatal("no session survived the lossy network")
	}
	if st.Delivered >= st.Sent {
		t.Fatalf("delivered %d >= sent %d under 30%% loss", st.Delivered, st.Sent)
	}
}

// TestCrashLosesJobs pins the lost-jobs ledger: a machine that crashes
// under a LoseJobs plan and never recovers must leave exactly its jobs in
// the ledger, and conservation must hold for the survivors.
func TestCrashLosesJobs(t *testing.T) {
	gen := rng.New(40)
	tc := workload.UniformTwoCluster(gen, 4, 2, 36, 1, 50)
	init := core.RoundRobin(tc)
	sim, err := New(tc, protocol.DLB2C{Model: tc}, init, Config{
		Seed: 41, Latency: 2, Period: 10, Horizon: 2000,
		Faults: &faults.Config{Crashes: []faults.Crash{
			{Machine: 2, At: 500, LoseJobs: true}, // never recovers
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := sim.Run()
	if err := sim.ValidateConservation(); err != nil {
		t.Fatal(err)
	}
	if st.Crashes != 1 || st.Recoveries != 0 {
		t.Fatalf("crashes/recoveries = %d/%d, want 1/0", st.Crashes, st.Recoveries)
	}
	if st.JobsLost != len(st.Lost) {
		t.Fatalf("JobsLost %d != ledger size %d", st.JobsLost, len(st.Lost))
	}
	if st.JobsLost == 0 {
		t.Fatal("machine 2 crashed holding nothing; pick a later crash time")
	}
	for _, l := range st.Lost {
		if l.Machine != 2 || l.Time != 500 {
			t.Fatalf("ledger entry %+v not from machine 2's crash at 500", l)
		}
	}
	a, err := sim.Placement()
	if err != nil {
		t.Fatal(err)
	}
	if got := tc.NumJobs() - a.NumAssigned(); got != st.JobsLost {
		t.Fatalf("%d jobs unplaced, ledger says %d", got, st.JobsLost)
	}
}

// TestCrashRehostsOnRecovery pins the retention path: with LoseJobs false
// the crashed machine freezes its jobs and re-hosts them on recovery, so
// the final placement is complete.
func TestCrashRehostsOnRecovery(t *testing.T) {
	gen := rng.New(50)
	tc := workload.UniformTwoCluster(gen, 4, 2, 36, 1, 50)
	init := core.RoundRobin(tc)
	sim, err := New(tc, protocol.DLB2C{Model: tc}, init, Config{
		Seed: 51, Latency: 2, Period: 10, Horizon: 2000,
		Faults: &faults.Config{
			DropProb: 0.1,
			Crashes: []faults.Crash{
				{Machine: 1, At: 400, RecoverAt: 900},
				{Machine: 3, At: 700, RecoverAt: 1500},
			},
		},
		MaxEvents: 5_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := sim.Run()
	if err := sim.ValidateConservation(); err != nil {
		t.Fatal(err)
	}
	if st.Crashes != 2 || st.Recoveries != 2 {
		t.Fatalf("crashes/recoveries = %d/%d, want 2/2", st.Crashes, st.Recoveries)
	}
	if st.JobsLost != 0 {
		t.Fatalf("retention plan lost %d jobs", st.JobsLost)
	}
	a, err := sim.Placement()
	if err != nil {
		t.Fatal(err)
	}
	if !a.Complete() {
		t.Fatalf("only %d/%d jobs placed after recoveries", a.NumAssigned(), tc.NumJobs())
	}
}

// chaosRun is the property-test body: build a random instance and a random
// fault plan from the replication's keyed substream, run it to drain under
// an event watchdog, and require the conservation invariant.
func chaosRun(rep *harness.Rep) (Stats, error) {
	g := rep.RNG
	tc := workload.UniformTwoCluster(g, 5, 3, 48, 1, 100)
	init := core.RoundRobin(tc)
	fc := &faults.Config{
		DropProb:  0.3 * g.Float64(), // loss up to 30%
		DupProb:   0.25 * g.Float64(),
		JitterMax: g.Int64n(4),
		Crashes:   faults.RandomCrashes(g.Uint64(), 8, 1200, 1+g.Intn(4), 150, 0.5),
	}
	sim, err := New(tc, protocol.DLB2C{Model: tc}, init, Config{
		Seed: g.Uint64(), Latency: 2, Period: 9, Horizon: 1200,
		Faults:    fc,
		MaxEvents: 2_000_000, // deadlock watchdog: drain must finish well below this
	})
	if err != nil {
		return Stats{}, err
	}
	st := sim.Run()
	if err := sim.ValidateConservation(); err != nil {
		return Stats{}, err
	}
	return st, nil
}

// TestChaosProperty is the acceptance property test: 128 seeds with random
// fault plans (loss up to 30%, duplication, jitter, crashes with and
// without job loss) all drain without deadlock and conserve jobs, and the
// whole sweep is bit-identical whether the harness runs it on 1 worker or
// 4.
func TestChaosProperty(t *testing.T) {
	const seeds = 128
	serial, err := harness.Map(harness.Options{Parallelism: 1}, 0xC805, seeds, chaosRun)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := harness.Map(harness.Options{Parallelism: 4}, 0xC805, seeds, chaosRun)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("chaos sweep differs between 1 and 4 workers")
	}
	// The sweep must actually exercise the machinery it claims to test.
	var crashes, lost, reclaimed, retrans, dups int
	for _, st := range serial {
		crashes += st.Crashes
		lost += st.JobsLost
		reclaimed += st.JobsReclaimed
		retrans += st.Retransmissions
		dups += st.Duplicated
	}
	if crashes == 0 || lost == 0 || retrans == 0 || dups == 0 {
		t.Fatalf("sweep too tame: crashes=%d lost=%d reclaimed=%d retrans=%d dups=%d",
			crashes, lost, reclaimed, retrans, dups)
	}
}

func BenchmarkNetsimPaperScale(b *testing.B) {
	gen := rng.New(16)
	tc := workload.UniformTwoCluster(gen, 64, 32, 768, 1, 1000)
	init := core.RoundRobin(tc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim, err := New(tc, protocol.DLB2C{Model: tc}, init, Config{
			Seed: uint64(i), Latency: 1, Period: 10, Horizon: 500,
		})
		if err != nil {
			b.Fatal(err)
		}
		sim.Run()
	}
}

func BenchmarkNetsimChaosPaperScale(b *testing.B) {
	gen := rng.New(17)
	tc := workload.UniformTwoCluster(gen, 64, 32, 768, 1, 1000)
	init := core.RoundRobin(tc)
	fc := &faults.Config{
		DropProb: 0.2, DupProb: 0.1, JitterMax: 2,
		Crashes: faults.RandomCrashes(18, 96, 500, 6, 60, 0.5),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim, err := New(tc, protocol.DLB2C{Model: tc}, init, Config{
			Seed: uint64(i), Latency: 1, Period: 10, Horizon: 500, Faults: fc,
		})
		if err != nil {
			b.Fatal(err)
		}
		sim.Run()
	}
}

// TestObsMetricsMatchStats attaches the obs instruments and checks every
// counter against the simulator's own statistics, plus the invariants of
// the three-message handshake on a perfect network.
func TestObsMetricsMatchStats(t *testing.T) {
	gen := rng.New(91)
	tc := workload.UniformTwoCluster(gen, 6, 3, 72, 1, 100)
	init := core.RoundRobin(tc)
	reg := obs.NewRegistry()
	met := NewMetrics(reg)
	tr := obs.NewTracer(1 << 15)
	sim, err := New(tc, protocol.DLB2C{Model: tc}, init, Config{
		Seed: 92, Latency: 3, Period: 10, Horizon: 1500,
		Metrics: met, Tracer: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := sim.Run()

	if got := met.Sessions.Value(); got != int64(st.Sessions) {
		t.Fatalf("netsim_sessions_total = %d, want %d", got, st.Sessions)
	}
	if got := met.Rejections.Value(); got != int64(st.Rejections) {
		t.Fatalf("netsim_rejections_total = %d, want %d", got, st.Rejections)
	}
	if got := met.Sent.Total(); got != int64(st.Sent) {
		t.Fatalf("netsim_messages_sent_total = %d, want %d", got, st.Sent)
	}
	if got := met.Delivered.Total(); got != int64(st.Delivered) {
		t.Fatalf("netsim_messages_delivered_total = %d, want %d", got, st.Delivered)
	}
	// Handshake shape: each completed session is REQUEST+OFFER+COMMIT, each
	// rejection REQUEST+REJECT; the perfect network delivers all of it.
	if got, want := met.Delivered.At(MsgRequest).Value(), int64(st.Sessions+st.Rejections); got != want {
		t.Fatalf("requests = %d, want %d", got, want)
	}
	if got := met.Delivered.At(MsgOffer).Value(); got != int64(st.Sessions) {
		t.Fatalf("offers = %d, want sessions %d", got, st.Sessions)
	}
	if got := met.Delivered.At(MsgCommit).Value(); got != int64(st.Sessions) {
		t.Fatalf("commits = %d, want sessions %d", got, st.Sessions)
	}
	if got := met.Delivered.At(MsgReject).Value(); got != int64(st.Rejections) {
		t.Fatalf("rejects = %d, want rejections %d", got, st.Rejections)
	}
	if got := met.Delivered.At(MsgAbort).Value(); got != 0 {
		t.Fatalf("aborts on a perfect network: %d", got)
	}
	// Every delivered copy observed the constant simulated latency.
	if met.Latency.Count() != int64(st.Delivered) || met.Latency.Sum() != 3*int64(st.Delivered) {
		t.Fatalf("latency histogram count=%d sum=%d, want %d/%d",
			met.Latency.Count(), met.Latency.Sum(), st.Delivered, 3*st.Delivered)
	}
	// A completed handshake is exactly three hops of latency 3.
	if met.Handshake.Count() != int64(st.Sessions) {
		t.Fatalf("handshake count = %d, want %d", met.Handshake.Count(), st.Sessions)
	}
	if st.Sessions > 0 && met.Handshake.Sum() != 9*int64(st.Sessions) {
		t.Fatalf("handshake sum = %d, want %d", met.Handshake.Sum(), 9*st.Sessions)
	}
	// Every completed session took zero retries on a perfect network.
	if met.SessionRetries.Count() != int64(st.Sessions) || met.SessionRetries.Sum() != 0 {
		t.Fatalf("session retries count=%d sum=%d, want %d/0",
			met.SessionRetries.Count(), met.SessionRetries.Sum(), st.Sessions)
	}
	if got := met.Makespan.Value(); got != int64(st.FinalMakespan) {
		// The gauge holds the last *sample*; after drainage the final value
		// can only differ if jobs were mid-flight at the last sample, which
		// Run's drain rules out at the final sample time. Allow either the
		// final makespan or the last sampled one.
		last := st.Makespans[len(st.Makespans)-1]
		if got != int64(last) {
			t.Fatalf("netsim_makespan = %d, want %d or %d", got, st.FinalMakespan, last)
		}
	}
	// Tracer: sent events equal transmissions, recv events deliveries
	// (queue fully drained), and session-end events equal sessions.
	var sent, recv, ended int
	for _, ev := range tr.Events() {
		switch ev.Type {
		case obs.EvMessageSent:
			sent++
		case obs.EvMessageRecv:
			recv++
		case obs.EvSessionEnd:
			ended++
		}
	}
	if tr.Dropped() == 0 {
		if sent != st.Sent || recv != st.Delivered {
			t.Fatalf("tracer sent/recv = %d/%d, want %d/%d", sent, recv, st.Sent, st.Delivered)
		}
		if ended != st.Sessions {
			t.Fatalf("tracer session-end = %d, want %d", ended, st.Sessions)
		}
	}
	if st.Sessions == 0 {
		t.Fatal("test instance produced no sessions; weaken the horizon")
	}
}

// TestObsFaultCountersMatchStats checks the degradation instruments against
// the Stats under a faulty plan.
func TestObsFaultCountersMatchStats(t *testing.T) {
	gen := rng.New(95)
	tc := workload.UniformTwoCluster(gen, 5, 3, 48, 1, 100)
	init := core.RoundRobin(tc)
	reg := obs.NewRegistry()
	met := NewMetrics(reg)
	sim, err := New(tc, protocol.DLB2C{Model: tc}, init, Config{
		Seed: 96, Latency: 2, Period: 9, Horizon: 2000,
		Faults: &faults.Config{
			DropProb: 0.25, DupProb: 0.15, JitterMax: 3,
			Crashes: []faults.Crash{
				{Machine: 1, At: 600, RecoverAt: 1100},
				{Machine: 6, At: 900, LoseJobs: true},
			},
		},
		MaxEvents: 5_000_000,
		Metrics:   met,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := sim.Run()
	if err := sim.ValidateConservation(); err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		name string
		got  int64
		want int
	}{
		{"sent", met.Sent.Total(), st.Sent},
		{"delivered", met.Delivered.Total(), st.Delivered},
		{"dropped", met.Dropped.Value(), st.Dropped},
		{"crash-voided", met.CrashDropped.Value(), st.CrashDropped},
		{"duplicated", met.Duplicated.Value(), st.Duplicated},
		{"dup-suppressed", met.DupSuppressed.Value(), st.DupSuppressed},
		{"timeouts", met.Timeouts.Value(), st.Timeouts},
		{"retransmissions", met.Retransmissions.Value(), st.Retransmissions},
		{"aborts", met.Aborts.Value(), st.Aborts},
		{"crashes", met.Crashes.Value(), st.Crashes},
		{"recoveries", met.Recoveries.Value(), st.Recoveries},
		{"jobs-lost", met.JobsLost.Value(), st.JobsLost},
		{"jobs-reclaimed", met.JobsReclaimed.Value(), st.JobsReclaimed},
	}
	for _, c := range checks {
		if c.got != int64(c.want) {
			t.Errorf("%s metric = %d, stats say %d", c.name, c.got, c.want)
		}
	}
	if st.Dropped == 0 || st.Crashes != 2 {
		t.Fatalf("plan under-exercised: %+v", st)
	}
}
