// Package netsim runs the decentralized protocols over an explicitly
// simulated network: machines are independent state machines that
// communicate only by timestamped point-to-point messages with latency —
// no shared memory of any kind, which is the paper's actual system model
// ("the machines do not share memory").
//
// A balancing session is a three-message handshake:
//
//	initiator            target
//	   | --- REQUEST ------> |   target idle? lock + reply
//	   | <----- OFFER ------ |   (carries the target's job list)
//	   | --- COMMIT -------> |   (carries the jobs now owned by target)
//	   | <----- REJECT ----- |   (instead of OFFER when target is busy)
//
// The initiator locks itself while a session is in flight, computes the
// protocol's pure Split kernel between OFFER and COMMIT, and both sides
// unlock on completion. Concurrent sessions on disjoint pairs proceed in
// parallel in virtual time; a busy target rejects, and the initiator backs
// off and retries with a fresh random peer. This demonstrates that
// DLB2C/OJTB/MJTB need nothing beyond pairwise messages — and lets the
// experiments measure how network latency stretches convergence.
package netsim

import (
	"fmt"
	"sort"

	"hetlb/internal/core"
	"hetlb/internal/des"
	"hetlb/internal/obs"
	"hetlb/internal/protocol"
	"hetlb/internal/rng"
)

// Message kinds, used as the CounterVec index and the tracer event payload.
const (
	MsgRequest = iota
	MsgOffer
	MsgCommit
	MsgReject
)

// MsgKinds are the wire names of the message kinds, indexed by the Msg*
// constants.
var MsgKinds = []string{"request", "offer", "commit", "reject"}

// Metrics bundles the runtime's obs instruments.
type Metrics struct {
	// Messages counts delivered messages by kind (request/offer/commit/
	// reject).
	Messages *obs.CounterVec
	// Sessions counts completed handshakes; Rejections REQUESTs that hit a
	// busy target.
	Sessions, Rejections *obs.Counter
	// Latency observes each message's simulated one-way delay; Handshake
	// the virtual time from REQUEST send to COMMIT delivery of completed
	// sessions (both in virtual time units).
	Latency, Handshake *obs.Histogram
	// Makespan tracks the last sampled Cmax.
	Makespan *obs.Gauge
}

// NewMetrics registers the runtime's instruments (idempotent on the same
// registry).
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		Messages:   r.CounterVec("netsim_messages_total", "messages delivered by kind", "kind", MsgKinds),
		Sessions:   r.Counter("netsim_sessions_total", "completed balancing handshakes"),
		Rejections: r.Counter("netsim_rejections_total", "REQUESTs rejected by a busy target"),
		Latency:    r.Histogram("netsim_message_latency_vt", "simulated one-way message delay in virtual time", obs.Pow2Bounds(16)),
		Handshake:  r.Histogram("netsim_handshake_vt", "virtual time from REQUEST send to COMMIT delivery", obs.Pow2Bounds(20)),
		Makespan:   r.Gauge("netsim_makespan", "last sampled Cmax"),
	}
}

// Config parameterizes a run.
type Config struct {
	// Seed drives peer selection and period jitter.
	Seed uint64
	// Latency is the one-way message delay in virtual time units
	// (must be ≥ 1: a network takes time).
	Latency int64
	// Period is the mean time between balancing attempts per machine;
	// actual gaps are Period ± up to 50% jitter to avoid lockstep.
	Period int64
	// Horizon stops the simulation at this virtual time.
	Horizon int64
	// Metrics, when non-nil, receives message/handshake instrumentation.
	Metrics *Metrics
	// Tracer, when non-nil, receives EvMessageSent/EvMessageRecv events
	// (Time = virtual time, A = sender, B = receiver, Value = kind) and an
	// EvSessionEnd per completed handshake.
	Tracer *obs.Tracer
}

// Stats summarizes a run.
type Stats struct {
	// Sessions counts completed balancing handshakes; Rejections counts
	// REQUESTs that hit a busy target.
	Sessions, Rejections int
	// Messages counts all messages delivered.
	Messages int
	// FinalMakespan is Cmax of the final placement.
	FinalMakespan core.Cost
	// MakespanAt samples (time, Cmax) once per Period.
	Times     []int64
	Makespans []core.Cost
}

type machineState struct {
	jobs []int // sorted
	busy bool
}

// Simulator executes the handshake protocol in virtual time.
type Simulator struct {
	model core.CostModel
	proto protocol.Protocol
	cfg   Config
	sim   *des.Simulator
	gens  []*rng.RNG
	ms    []machineState
	stats Stats
}

// New validates the configuration and prepares a run from the initial
// placement (not mutated).
func New(model core.CostModel, proto protocol.Protocol, initial *core.Assignment, cfg Config) (*Simulator, error) {
	if !initial.Complete() {
		return nil, fmt.Errorf("netsim: initial assignment must place every job")
	}
	if cfg.Latency < 1 {
		return nil, fmt.Errorf("netsim: latency must be >= 1")
	}
	if cfg.Period < 1 {
		return nil, fmt.Errorf("netsim: period must be >= 1")
	}
	if cfg.Horizon < 1 {
		return nil, fmt.Errorf("netsim: horizon must be >= 1")
	}
	s := &Simulator{
		model: model,
		proto: proto,
		cfg:   cfg,
		sim:   des.New(),
		ms:    make([]machineState, model.NumMachines()),
	}
	root := rng.New(cfg.Seed)
	s.gens = make([]*rng.RNG, model.NumMachines())
	for i := range s.gens {
		s.gens[i] = root.Split()
	}
	for j := 0; j < model.NumJobs(); j++ {
		i := initial.MachineOf(j)
		s.ms[i].jobs = append(s.ms[i].jobs, j)
	}
	return s, nil
}

// send delivers fn at the receiver after one network hop, recording the
// message on both ends when instrumentation is attached.
func (s *Simulator) send(kind, from, to int, fn func()) {
	s.stats.Messages++
	if met := s.cfg.Metrics; met != nil {
		met.Messages.At(kind).Inc()
		met.Latency.Observe(s.cfg.Latency)
	}
	if tr := s.cfg.Tracer; tr != nil {
		tr.Emit(obs.Event{Time: s.sim.Now(), Type: obs.EvMessageSent, A: int32(from), B: int32(to), Value: int64(kind)})
	}
	s.sim.After(s.cfg.Latency, des.PhaseTransfer, func() {
		if tr := s.cfg.Tracer; tr != nil {
			tr.Emit(obs.Event{Time: s.sim.Now(), Type: obs.EvMessageRecv, A: int32(from), B: int32(to), Value: int64(kind)})
		}
		fn()
	})
}

// Run executes until the horizon (plus drainage of in-flight handshakes)
// and returns the statistics.
func (s *Simulator) Run() Stats {
	m := s.model.NumMachines()
	if m > 1 {
		for i := 0; i < m; i++ {
			s.scheduleAttempt(i)
		}
	}
	// Makespan sampling once per period.
	var sampler func()
	sampler = func() {
		cmax := s.makespan()
		s.stats.Times = append(s.stats.Times, s.sim.Now())
		s.stats.Makespans = append(s.stats.Makespans, cmax)
		if s.cfg.Metrics != nil {
			s.cfg.Metrics.Makespan.Set(int64(cmax))
		}
		if s.cfg.Tracer != nil {
			s.cfg.Tracer.Emit(obs.Event{Time: s.sim.Now(), Type: obs.EvMakespanSample, A: -1, B: -1, Value: int64(cmax)})
		}
		if s.sim.Now()+s.cfg.Period <= s.cfg.Horizon {
			s.sim.After(s.cfg.Period, des.PhaseComplete, sampler)
		}
	}
	s.sim.At(0, des.PhaseComplete, sampler)

	// Drain the queue completely: no NEW session starts after the horizon
	// (attempt checks the clock), but handshakes already on the wire
	// finish, so ownership is never truncated mid-transfer.
	for s.sim.Step() {
	}
	s.stats.FinalMakespan = s.makespan()
	return s.stats
}

// scheduleAttempt queues machine i's next balancing attempt with jitter; it
// stops re-arming once the horizon has passed so the event queue drains.
func (s *Simulator) scheduleAttempt(i int) {
	gap := s.cfg.Period/2 + s.gens[i].Int64n(s.cfg.Period) // U[P/2, 3P/2)
	if gap < 1 {
		gap = 1
	}
	if s.sim.Now()+gap > s.cfg.Horizon {
		return
	}
	s.sim.After(gap, des.PhaseStart, func() { s.attempt(i) })
}

// attempt starts a session if machine i is free. The attempt's start time
// travels with the handshake so the completed-session duration can be
// observed at COMMIT delivery.
func (s *Simulator) attempt(i int) {
	defer s.scheduleAttempt(i)
	if s.ms[i].busy {
		return // still in a session (as target or initiator); try later
	}
	m := s.model.NumMachines()
	peer := s.gens[i].Pick(m, i)
	s.ms[i].busy = true
	start := s.sim.Now()
	if s.cfg.Tracer != nil {
		s.cfg.Tracer.Emit(obs.Event{Time: start, Type: obs.EvSessionStart, A: int32(i), B: int32(peer)})
	}
	s.send(MsgRequest, i, peer, func() { s.onRequest(i, peer, start) })
}

// onRequest is the target's handler. On acceptance the target hands its
// whole job list to the initiator (single ownership: from OFFER to COMMIT
// the pooled jobs live at the initiator side of the handshake).
func (s *Simulator) onRequest(initiator, target int, start int64) {
	if s.ms[target].busy {
		s.send(MsgReject, target, initiator, func() { s.onReject(initiator) })
		return
	}
	s.ms[target].busy = true
	offer := s.ms[target].jobs
	s.ms[target].jobs = nil
	s.send(MsgOffer, target, initiator, func() { s.onOffer(initiator, target, offer, start) })
}

// onReject unlocks the initiator.
func (s *Simulator) onReject(initiator int) {
	s.stats.Rejections++
	if s.cfg.Metrics != nil {
		s.cfg.Metrics.Rejections.Inc()
	}
	s.ms[initiator].busy = false
}

// onOffer runs the kernel at the initiator and commits.
func (s *Simulator) onOffer(initiator, target int, targetJobs []int, start int64) {
	union := mergeSorted(s.ms[initiator].jobs, targetJobs)
	toI, toT := s.proto.Split(initiator, target, union)
	toI = sortedCopy(toI)
	toT = sortedCopy(toT)
	s.ms[initiator].jobs = toI
	s.ms[initiator].busy = false
	s.stats.Sessions++
	if s.cfg.Metrics != nil {
		s.cfg.Metrics.Sessions.Inc()
	}
	s.send(MsgCommit, initiator, target, func() { s.onCommit(initiator, target, toT, start) })
}

// onCommit installs the target's new job list and unlocks it.
func (s *Simulator) onCommit(initiator, target int, jobs []int, start int64) {
	s.ms[target].jobs = jobs
	s.ms[target].busy = false
	if s.cfg.Metrics != nil {
		s.cfg.Metrics.Handshake.Observe(s.sim.Now() - start)
	}
	if s.cfg.Tracer != nil {
		s.cfg.Tracer.Emit(obs.Event{Time: s.sim.Now(), Type: obs.EvSessionEnd, A: int32(initiator), B: int32(target), Value: s.sim.Now() - start})
	}
}

// makespan computes Cmax from the owned job lists. Mid-handshake the pooled
// jobs live at the initiator/on the wire, so a sample may transiently
// undercount the target; it can never double-count (single ownership), and
// the final value is taken after the queue drains with no handshake in
// flight.
func (s *Simulator) makespan() core.Cost {
	var max core.Cost
	for i := range s.ms {
		var l core.Cost
		for _, j := range s.ms[i].jobs {
			l += s.model.Cost(i, j)
		}
		if l > max {
			max = l
		}
	}
	return max
}

// Placement reconstructs a core.Assignment from the current job lists.
// Jobs in flight inside an interrupted handshake stay with their previous
// owner.
func (s *Simulator) Placement() (*core.Assignment, error) {
	a := core.NewAssignment(s.model)
	for i := range s.ms {
		for _, j := range s.ms[i].jobs {
			if a.MachineOf(j) != -1 {
				return nil, fmt.Errorf("netsim: job %d owned twice", j)
			}
			a.Assign(j, i)
		}
	}
	return a, nil
}

func mergeSorted(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	x, y := 0, 0
	for x < len(a) && y < len(b) {
		if a[x] < b[y] {
			out = append(out, a[x])
			x++
		} else {
			out = append(out, b[y])
			y++
		}
	}
	out = append(out, a[x:]...)
	return append(out, b[y:]...)
}

func sortedCopy(s []int) []int {
	c := append([]int(nil), s...)
	sort.Ints(c)
	return c
}
