// Package netsim runs the decentralized protocols over an explicitly
// simulated network: machines are independent state machines that
// communicate only by timestamped point-to-point messages with latency —
// no shared memory of any kind, which is the paper's actual system model
// ("the machines do not share memory").
//
// A balancing session is a three-message handshake:
//
//	initiator            target
//	   | --- REQUEST ------> |   target idle? escrow jobs + reply
//	   | <----- OFFER ------ |   (carries the target's job list)
//	   | --- COMMIT -------> |   (carries the jobs now owned by target)
//	   | <----- REJECT ----- |   (instead of OFFER when target is busy)
//
// The initiator locks itself while a session is in flight, computes the
// protocol's pure Split kernel between OFFER and COMMIT, and both sides
// unlock on completion. Concurrent sessions on disjoint pairs proceed in
// parallel in virtual time; a busy target rejects, and the initiator backs
// off and retries with a fresh random peer. This demonstrates that
// DLB2C/OJTB/MJTB need nothing beyond pairwise messages — and lets the
// experiments measure how network latency stretches convergence.
//
// # Fault tolerance
//
// The network may misbehave when a fault plan (internal/faults) is
// attached: messages can be dropped, duplicated or jittered, and machines
// can crash and recover. The handshake is hardened so that no single lost
// or duplicated message can wedge a machine or lose/duplicate a job:
//
//   - Every session carries an id (initiator, per-initiator sequence
//     number). The sequence counter survives crashes ("stable storage"),
//     so ids are never reused and stale messages are recognizable.
//   - The target escrows its job list when it accepts a REQUEST. The pool
//     changes ownership exactly once, when the initiator processes the
//     OFFER: from then on the target's half lives in the initiator's
//     per-target done record (an outbox) until the COMMIT is applied.
//     Retransmitted OFFERs for a committed session are answered by
//     retransmitting the COMMIT from the done record, which makes COMMIT
//     delivery idempotent; OFFERs for a session the initiator no longer
//     knows are answered with ABORT, which restores the target's escrow.
//   - Both roles carry a timeout lease with capped exponential backoff.
//     The initiator retransmits the REQUEST a bounded number of times and
//     then gives up (safe: the pool never moved). The target re-OFFERs
//     until the session resolves (the pool is in limbo, so it must not
//     guess); with loss probability < 1 this terminates with probability 1.
//   - A crash voids the machine's in-flight messages (epoch stamp), drops
//     its open sessions and either records its jobs as lost or freezes
//     them for re-hosting on recovery, per the plan. Peers discover the
//     death through the same timeout path: the crash deterministically
//     records, per open session, whether the survivor must restore its
//     escrow, drop it, or reclaim an unapplied outbox, and the survivor's
//     next lease firing (or balancing attempt) applies that resolution.
//   - After the drain, ValidateConservation checks the invariant "every
//     job is placed exactly once among machine job lists (live or frozen
//     on a crashed machine), or explicitly recorded in the lost ledger
//     with its crash".
package netsim

import (
	"fmt"
	"math"
	"sort"

	"hetlb/internal/core"
	"hetlb/internal/des"
	"hetlb/internal/faults"
	"hetlb/internal/obs"
	"hetlb/internal/obs/span"
	"hetlb/internal/obs/timeline"
	"hetlb/internal/protocol"
	"hetlb/internal/rng"
)

// Message kinds, used as the CounterVec index and the tracer event payload.
const (
	MsgRequest = iota
	MsgOffer
	MsgCommit
	MsgReject
	MsgAbort
)

// MsgKinds are the wire names of the message kinds, indexed by the Msg*
// constants.
var MsgKinds = []string{"request", "offer", "commit", "reject", "abort"}

// faultsStream keys the fault plan's RNG substream off Config.Seed, so the
// schedule is independent of the per-machine attempt streams.
const faultsStream = 0xFA17D5

// Metrics bundles the runtime's obs instruments.
type Metrics struct {
	// Sent counts message transmissions by kind (request/offer/commit/
	// reject/abort), including retransmissions; Delivered counts the copies
	// actually handed to a live receiver (so duplicates count twice, and
	// dropped or crash-voided messages not at all).
	Sent, Delivered *obs.CounterVec
	// Sessions counts completed handshakes; Rejections REQUESTs that hit a
	// busy target.
	Sessions, Rejections *obs.Counter
	// Dropped counts messages lost by the fault plan; CrashDropped copies
	// voided because the sender crashed in flight or the receiver was down;
	// Duplicated extra copies injected by the plan; DupSuppressed received
	// messages ignored as stale or duplicate by the session-id logic.
	Dropped, CrashDropped, Duplicated, DupSuppressed *obs.Counter
	// Timeouts counts lease expiries on still-open sessions;
	// Retransmissions the re-sent messages they (or duplicate receipts)
	// triggered; Aborts sessions that ended without a commit.
	Timeouts, Retransmissions, Aborts *obs.Counter
	// Crashes and Recoveries count machine failures and returns; JobsLost
	// jobs recorded in the lost ledger at a crash; JobsReclaimed jobs an
	// initiator took back from an outbox whose target died before applying
	// the commit.
	Crashes, Recoveries, JobsLost, JobsReclaimed *obs.Counter
	// Latency observes each delivered copy's simulated one-way delay
	// (base latency plus jitter); Handshake the virtual time from REQUEST
	// send to COMMIT delivery of completed sessions (both in virtual time
	// units); SessionRetries the REQUEST retransmissions per completed
	// session.
	Latency, Handshake, SessionRetries *obs.Histogram
	// Makespan tracks the last sampled Cmax.
	Makespan *obs.Gauge
}

// NewMetrics registers the runtime's instruments (idempotent on the same
// registry).
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		Sent:            r.CounterVec("netsim_messages_sent_total", "message transmissions by kind (retransmissions included)", "kind", MsgKinds),
		Delivered:       r.CounterVec("netsim_messages_delivered_total", "message copies delivered to a live receiver by kind", "kind", MsgKinds),
		Sessions:        r.Counter("netsim_sessions_total", "completed balancing handshakes"),
		Rejections:      r.Counter("netsim_rejections_total", "REQUESTs rejected by a busy target"),
		Dropped:         r.Counter("netsim_messages_dropped_total", "messages lost by the fault plan"),
		CrashDropped:    r.Counter("netsim_messages_crash_voided_total", "message copies voided by a sender crash or down receiver"),
		Duplicated:      r.Counter("netsim_messages_duplicated_total", "extra message copies injected by the fault plan"),
		DupSuppressed:   r.Counter("netsim_duplicates_suppressed_total", "received messages ignored as stale or duplicate"),
		Timeouts:        r.Counter("netsim_timeouts_total", "lease expiries on still-open sessions"),
		Retransmissions: r.Counter("netsim_retransmissions_total", "messages re-sent after a timeout or duplicate receipt"),
		Aborts:          r.Counter("netsim_session_aborts_total", "sessions ended without a commit"),
		Crashes:         r.Counter("netsim_crashes_total", "machine crashes"),
		Recoveries:      r.Counter("netsim_recoveries_total", "machine recoveries"),
		JobsLost:        r.Counter("netsim_jobs_lost_total", "jobs recorded as lost at a crash"),
		JobsReclaimed:   r.Counter("netsim_jobs_reclaimed_total", "outbox jobs reclaimed from sessions killed by a target crash"),
		Latency:         r.Histogram("netsim_message_latency_vt", "simulated one-way delay of delivered copies in virtual time", obs.Pow2Bounds(16)),
		Handshake:       r.Histogram("netsim_handshake_vt", "virtual time from REQUEST send to COMMIT delivery", obs.Pow2Bounds(20)),
		SessionRetries:  r.Histogram("netsim_session_retries", "REQUEST retransmissions per completed session", obs.Pow2Bounds(8)),
		Makespan:        r.Gauge("netsim_makespan", "last sampled Cmax"),
	}
}

// Config parameterizes a run.
type Config struct {
	// Seed drives peer selection and period jitter; the fault plan derives
	// its own substream from it (keyed, so the schedule is independent of
	// event interleaving).
	Seed uint64
	// Latency is the one-way message delay in virtual time units
	// (must be ≥ 1: a network takes time).
	Latency int64
	// Period is the mean time between balancing attempts per machine;
	// actual gaps are Period ± up to 50% jitter to avoid lockstep.
	Period int64
	// Horizon stops the simulation at this virtual time.
	Horizon int64
	// Faults, when non-nil, attaches a fault plan (message drop/duplication/
	// jitter and machine crashes). A nil Faults — or a zero Config — runs
	// the perfect network and reproduces the historical behavior exactly.
	Faults *faults.Config
	// RTO is the initial retransmission timeout; 0 defaults to
	// 3·(Latency+JitterMax)+1, which exceeds any fault-free round trip so
	// the perfect-network path never retransmits.
	RTO int64
	// RTOCap bounds the exponential backoff; 0 defaults to 16·RTO.
	RTOCap int64
	// MaxRequestRetries bounds REQUEST retransmissions before the initiator
	// gives up (safe: no ownership has moved yet); 0 defaults to 6.
	MaxRequestRetries int
	// MaxEvents, when > 0, is a watchdog: Run panics if the drain processes
	// more events than this, turning a livelocked handshake into a loud
	// failure instead of a hung test.
	MaxEvents uint64
	// Metrics, when non-nil, receives message/handshake/fault
	// instrumentation.
	Metrics *Metrics
	// Tracer, when non-nil, receives EvMessageSent/EvMessageRecv events
	// (Time = virtual time, A = sender, B = receiver, Value = kind), an
	// EvSessionEnd per completed handshake, and EvMessageDropped/
	// EvMachineCrash/EvMachineRecover under faults.
	Tracer *obs.Tracer
	// Spans, when non-nil, receives the causal span trace: one KindRun span
	// per Run, one KindSession span per handshake (each side appends a close
	// record for the same ID, distinguished by Tag; Clock carries the
	// closer's Lamport time), and KindFault point records — drops,
	// retransmissions, timeouts, crashes, recoveries — parented to the
	// session they degraded (or to the run span for machine-level events).
	// All times are virtual; the trace is a pure function of Config.
	Spans *span.Recorder
	// Timeline, when non-nil, receives one convergence point per sampling
	// period: Time = virtual time, Cmax, Imbalance = Cmax − mean load over
	// all machines, cumulative Moves (jobs that changed machines in
	// committed sessions) and Messages (transmissions).
	Timeline *timeline.Recorder
}

// LostJob is one entry of the lost-jobs ledger: job was on machine Machine
// when it crashed at Time under a plan that loses jobs.
type LostJob struct {
	Job, Machine int
	Time         int64
}

// Stats summarizes a run. For a fixed Config (seed and fault plan
// included) the struct is bit-identical across runs and across harness
// worker counts.
type Stats struct {
	// Sessions counts completed balancing handshakes; Rejections counts
	// REQUESTs a busy target answered with REJECT (counted at the send).
	Sessions, Rejections int
	// Sent counts message transmissions (retransmissions included);
	// Delivered counts copies handed to a live receiver. On a perfect
	// network Sent == Delivered.
	Sent, Delivered int
	// Dropped counts messages lost by the fault plan; CrashDropped copies
	// voided by a sender crash or a down receiver; Duplicated extra copies
	// injected; DupSuppressed received messages ignored as stale/duplicate.
	Dropped, CrashDropped, Duplicated, DupSuppressed int
	// Timeouts counts lease expiries on open sessions; Retransmissions
	// re-sent messages; Aborts sessions ended without a commit.
	Timeouts, Retransmissions, Aborts int
	// Crashes and Recoveries count machine failures and returns.
	Crashes, Recoveries int
	// JobsLost is the lost-ledger size; JobsReclaimed counts outbox jobs
	// taken back after a target died before applying a commit.
	JobsLost, JobsReclaimed int
	// JobsMoved counts jobs that switched machines in committed sessions
	// (each migration counts once, the paper's "amount of tasks exchanged").
	JobsMoved int
	// Lost is the ledger of jobs destroyed by crashes, in (time, job) order.
	Lost []LostJob
	// FinalMakespan is Cmax of the final placement (frozen jobs on crashed
	// machines included; lost jobs excluded).
	FinalMakespan core.Cost
	// MakespanAt samples (time, Cmax) once per Period.
	Times     []int64
	Makespans []core.Cost
}

// doneRec remembers, per target, the last session this machine committed
// with it: the session id for duplicate handling and the target's half of
// the split, which acts as an outbox until the COMMIT is known applied.
type doneRec struct {
	seq uint64
	toT []int
	// span is the session's span ID, kept so a COMMIT retransmitted from
	// the outbox attributes its faults to the original session.
	span span.ID
}

type machineState struct {
	jobs []int // sorted; empty while escrowed to an open target session
	up   bool
	// epoch bumps on every crash and every recovery: in-flight messages and
	// pending attempt chains of an old incarnation check it and die.
	epoch uint32
	// clock is the machine's Lamport clock: bumped on every send, merged
	// (max + 1) on every delivery. Session close records carry it, so the
	// span trace totally orders each machine's view of causality.
	clock uint64
	// retained freezes the machine's jobs across a crash when the plan
	// re-hosts instead of losing them.
	retained []int

	// initiator-side session (0 = none)
	initSeq     uint64
	initPeer    int
	initStart   int64
	initRetries int
	initSpan    span.ID

	// target-side session (0 = none)
	tgtSeq   uint64
	tgtPeer  int
	tgtStart int64
	tgtSpan  span.ID
	escrow   []int

	// "stable storage": survives crashes so session ids are never reused
	// and finished sessions stay recognizable.
	seq     uint64
	lastSeq map[int]uint64 // per initiator: highest session seq ever accepted
	done    map[int]doneRec
}

// resKind is a crash resolution: when a machine dies, the fate of each of
// its open sessions' job pools is decided deterministically at the crash
// and recorded for the surviving peer to apply on its timeout path.
type resKind uint8

const (
	// resAbortInitiator frees an initiator whose target died holding the
	// escrowed pool (the pool died with it, or moved to its ledger).
	resAbortInitiator resKind = iota + 1
	// resReclaimOutbox tells an initiator its committed session will never
	// be applied: take the outbox jobs back.
	resReclaimOutbox
	// resRestoreEscrow tells a target its initiator died (or gave up)
	// without taking the pool: restore the escrow.
	resRestoreEscrow
	// resDropEscrow tells a target its initiator committed before dying:
	// the escrow is a stale duplicate of jobs now owned elsewhere.
	resDropEscrow
)

type resKey struct {
	init int
	seq  uint64
}

// Simulator executes the handshake protocol in virtual time.
type Simulator struct {
	model         core.CostModel
	proto         protocol.Protocol
	cfg           Config
	sim           *des.Simulator
	gens          []*rng.RNG
	ms            []machineState
	plan          *faults.Plan
	rto           int64
	rtoCap        int64
	maxReqRetries int
	deadRes       map[resKey]resKind
	spans         *span.Recorder
	tl            *timeline.Recorder
	runSpan       span.ID
	stats         Stats
}

// New validates the configuration and prepares a run from the initial
// placement (not mutated).
func New(model core.CostModel, proto protocol.Protocol, initial *core.Assignment, cfg Config) (*Simulator, error) {
	if im := initial.Model(); im.NumMachines() != model.NumMachines() || im.NumJobs() != model.NumJobs() {
		return nil, fmt.Errorf("netsim: initial assignment is for %d machines × %d jobs, cost model has %d × %d",
			im.NumMachines(), im.NumJobs(), model.NumMachines(), model.NumJobs())
	}
	if !initial.Complete() {
		return nil, fmt.Errorf("netsim: initial assignment must place every job")
	}
	if cfg.Latency < 1 {
		return nil, fmt.Errorf("netsim: latency must be >= 1")
	}
	if cfg.Period < 1 {
		return nil, fmt.Errorf("netsim: period must be >= 1")
	}
	if cfg.Horizon < 1 {
		return nil, fmt.Errorf("netsim: horizon must be >= 1")
	}
	if cfg.RTO < 0 || cfg.RTOCap < 0 || cfg.MaxRequestRetries < 0 {
		return nil, fmt.Errorf("netsim: RTO, RTOCap and MaxRequestRetries must be >= 0")
	}
	var jitterMax int64
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(model.NumMachines()); err != nil {
			return nil, fmt.Errorf("netsim: %w", err)
		}
		jitterMax = cfg.Faults.JitterMax
	}
	s := &Simulator{
		model:   model,
		proto:   proto,
		cfg:     cfg,
		sim:     des.New(),
		ms:      make([]machineState, model.NumMachines()),
		deadRes: make(map[resKey]resKind),
		spans:   cfg.Spans,
		tl:      cfg.Timeline,
	}
	if s.spans != nil {
		s.runSpan = s.spans.NextID()
	}
	if cfg.Faults != nil {
		s.plan = faults.NewPlan(rng.DeriveSeed(cfg.Seed, faultsStream), *cfg.Faults)
	}
	s.rto = cfg.RTO
	if s.rto == 0 {
		s.rto = 3*(cfg.Latency+jitterMax) + 1
	}
	s.rtoCap = cfg.RTOCap
	if s.rtoCap == 0 {
		s.rtoCap = 16 * s.rto
	}
	if s.rtoCap < s.rto {
		return nil, fmt.Errorf("netsim: RTOCap %d below RTO %d", s.rtoCap, s.rto)
	}
	s.maxReqRetries = cfg.MaxRequestRetries
	if s.maxReqRetries == 0 {
		s.maxReqRetries = 6
	}
	root := rng.New(cfg.Seed)
	s.gens = make([]*rng.RNG, model.NumMachines())
	for i := range s.gens {
		s.gens[i] = root.Split()
	}
	for i := range s.ms {
		s.ms[i].up = true
	}
	for j := 0; j < model.NumJobs(); j++ {
		i := initial.MachineOf(j)
		s.ms[i].jobs = append(s.ms[i].jobs, j)
	}
	return s, nil
}

// post transmits a message: the fault plan decides drop/duplication/jitter,
// and each surviving copy delivers fn after its network hop — unless the
// sender has since crashed (its epoch moved) or the receiver is down.
//
// Every message carries the session span it belongs to (sp, 0 when spans are
// off) and the sender's Lamport clock: the clock is bumped at the send,
// merged (max + 1) at each delivery, and a dropped transmission is recorded
// as a KindFault span attributed to the session that suffered it.
func (s *Simulator) post(kind, from, to int, sp span.ID, fn func()) {
	s.ms[from].clock++
	mclk := s.ms[from].clock
	s.stats.Sent++
	met := s.cfg.Metrics
	if met != nil {
		met.Sent.At(kind).Inc()
	}
	if tr := s.cfg.Tracer; tr != nil {
		tr.Emit(obs.Event{Time: s.sim.Now(), Type: obs.EvMessageSent, A: int32(from), B: int32(to), Value: int64(kind)})
	}
	out := faults.Outcome{Copies: 1}
	if s.plan != nil {
		out = s.plan.Message(from, to)
	}
	if out.Copies == 0 {
		s.stats.Dropped++
		if met != nil {
			met.Dropped.Inc()
		}
		if tr := s.cfg.Tracer; tr != nil {
			tr.Emit(obs.Event{Time: s.sim.Now(), Type: obs.EvMessageDropped, A: int32(from), B: int32(to), Value: int64(kind)})
		}
		s.faultSpan(sp, span.TagDrop, from, to, mclk, int64(kind))
		return
	}
	if out.Copies > 1 {
		s.stats.Duplicated += out.Copies - 1
		if met != nil {
			met.Duplicated.Add(int64(out.Copies - 1))
		}
	}
	epoch := s.ms[from].epoch
	for c := 0; c < out.Copies; c++ {
		delay := s.cfg.Latency + out.Jitter[c]
		s.sim.After(delay, des.PhaseTransfer, func() {
			if s.ms[from].epoch != epoch || !s.ms[to].up {
				s.stats.CrashDropped++
				if met != nil {
					met.CrashDropped.Inc()
				}
				return
			}
			rm := &s.ms[to]
			if mclk > rm.clock {
				rm.clock = mclk
			}
			rm.clock++
			s.stats.Delivered++
			if met != nil {
				met.Delivered.At(kind).Inc()
				met.Latency.Observe(delay)
			}
			if tr := s.cfg.Tracer; tr != nil {
				tr.Emit(obs.Event{Time: s.sim.Now(), Type: obs.EvMessageRecv, A: int32(from), B: int32(to), Value: int64(kind)})
			}
			fn()
		})
	}
}

// faultSpan appends a KindFault point record attributing a network incident
// (drop, retransmission, timeout, crash, recovery) to the span it degraded —
// a session span, or the run span for machine-level events.
func (s *Simulator) faultSpan(parent span.ID, tag span.Tag, a, b int, clk uint64, value int64) {
	if s.spans == nil {
		return
	}
	now := s.sim.Now()
	s.spans.Append(span.Span{
		Parent: parent,
		Kind:   span.KindFault,
		Tag:    tag,
		A:      int32(a),
		B:      int32(b),
		Start:  now,
		End:    now,
		Clock:  clk,
		Value:  value,
	})
}

// closeSession appends one side's close record for a session span: both
// participants close the same ID with their own role Tag and Lamport clock,
// and consumers merge the two records by ID.
func (s *Simulator) closeSession(id span.ID, tag span.Tag, fl span.Flags, initiator, target int, start int64, clk uint64, value int64) {
	if s.spans == nil || id == 0 {
		return
	}
	s.spans.Append(span.Span{
		ID:     id,
		Parent: s.runSpan,
		Kind:   span.KindSession,
		Tag:    tag,
		Flags:  fl,
		A:      int32(initiator),
		B:      int32(target),
		Start:  start,
		End:    s.sim.Now(),
		Clock:  clk,
		Value:  value,
	})
}

func (s *Simulator) dupSuppressed() {
	s.stats.DupSuppressed++
	if s.cfg.Metrics != nil {
		s.cfg.Metrics.DupSuppressed.Inc()
	}
}

// Run executes until the horizon (plus drainage of in-flight handshakes
// and scheduled recoveries) and returns the statistics.
func (s *Simulator) Run() Stats {
	m := s.model.NumMachines()
	if m > 1 {
		for i := 0; i < m; i++ {
			s.scheduleAttempt(i)
		}
	}
	if s.plan != nil {
		for _, cr := range s.plan.Crashes() {
			cr := cr
			s.sim.At(cr.At, des.PhaseComplete, func() { s.crash(cr) })
			if cr.RecoverAt > 0 {
				s.sim.At(cr.RecoverAt, des.PhaseComplete, func() { s.recover(cr.Machine) })
			}
		}
	}
	// Makespan sampling once per period.
	var sampler func()
	sampler = func() {
		cmax, sum := s.loadStats()
		s.stats.Times = append(s.stats.Times, s.sim.Now())
		s.stats.Makespans = append(s.stats.Makespans, cmax)
		if s.cfg.Metrics != nil {
			s.cfg.Metrics.Makespan.Set(int64(cmax))
		}
		if s.cfg.Tracer != nil {
			s.cfg.Tracer.Emit(obs.Event{Time: s.sim.Now(), Type: obs.EvMakespanSample, A: -1, B: -1, Value: int64(cmax)})
		}
		if s.tl != nil {
			s.tl.Record(timeline.Point{
				Time:      s.sim.Now(),
				Cmax:      int64(cmax),
				Imbalance: int64(cmax) - sum/int64(len(s.ms)),
				Moves:     int64(s.stats.JobsMoved),
				Messages:  int64(s.stats.Sent),
			})
		}
		if s.sim.Now()+s.cfg.Period <= s.cfg.Horizon {
			s.sim.After(s.cfg.Period, des.PhaseComplete, sampler)
		}
	}
	s.sim.At(0, des.PhaseComplete, sampler)

	// Drain the queue completely: no NEW session starts after the horizon
	// (attempt checks the clock), but handshakes already on the wire finish
	// — possibly through retransmissions — so ownership is never truncated
	// mid-transfer. The open-session leases keep the queue non-empty until
	// every session resolves, so a full drain implies no machine is wedged.
	for s.sim.Step() {
		if s.cfg.MaxEvents > 0 && s.sim.Processed() > s.cfg.MaxEvents {
			panic(fmt.Sprintf("netsim: event watchdog: %d events without draining (livelocked handshake?)", s.cfg.MaxEvents))
		}
	}
	// Settlement: initiators whose target died before applying a commit may
	// not attempt again after the horizon; reclaim those outboxes now.
	for i := range s.ms {
		s.sweepOutbox(i)
	}
	s.stats.FinalMakespan = s.makespan()
	if s.spans != nil {
		s.spans.Append(span.Span{
			ID:     s.runSpan,
			Parent: s.spans.Root(),
			Kind:   span.KindRun,
			A:      -1,
			B:      -1,
			Start:  0,
			End:    s.sim.Now(),
			Value:  int64(s.stats.FinalMakespan),
		})
	}
	return s.stats
}

// scheduleAttempt queues machine i's next balancing attempt with jitter; it
// stops re-arming once the horizon has passed so the event queue drains.
// The attempt carries the machine's epoch, so chains scheduled by a
// previous incarnation die after a crash.
func (s *Simulator) scheduleAttempt(i int) {
	gap := s.cfg.Period/2 + s.gens[i].Int64n(s.cfg.Period) // U[P/2, 3P/2)
	if gap < 1 {
		gap = 1
	}
	if s.sim.Now()+gap > s.cfg.Horizon {
		return
	}
	epoch := s.ms[i].epoch
	s.sim.After(gap, des.PhaseStart, func() { s.attempt(i, epoch) })
}

// attempt starts a session if machine i is free. The attempt's start time
// travels with the handshake so the completed-session duration can be
// observed at COMMIT delivery.
func (s *Simulator) attempt(i int, epoch uint32) {
	m := &s.ms[i]
	if m.epoch != epoch {
		return // chain from a previous incarnation; recovery started a new one
	}
	defer s.scheduleAttempt(i)
	s.sweepOutbox(i)
	if m.initSeq != 0 || m.tgtSeq != 0 {
		return // still in a session (as target or initiator); try later
	}
	peer := s.gens[i].Pick(s.model.NumMachines(), i)
	m.seq++
	seq := m.seq
	m.initSeq = seq
	m.initPeer = peer
	m.initStart = s.sim.Now()
	m.initRetries = 0
	var sid span.ID
	if s.spans != nil {
		sid = s.spans.NextID()
	}
	m.initSpan = sid
	if s.cfg.Tracer != nil {
		s.cfg.Tracer.Emit(obs.Event{Time: m.initStart, Type: obs.EvSessionStart, A: int32(i), B: int32(peer)})
	}
	start := m.initStart
	s.post(MsgRequest, i, peer, sid, func() { s.onRequest(i, peer, seq, start, sid) })
	if s.plan != nil {
		// A perfect network resolves every session within one RTO, so the
		// leases would only burn events; arm them only under a fault plan.
		s.armInitiatorLease(i, seq, 0)
	}
}

// backoff is the lease delay for the given retry count: RTO doubling up to
// RTOCap.
func (s *Simulator) backoff(retry int) int64 {
	d := s.rto
	for r := 0; r < retry && d < s.rtoCap; r++ {
		d <<= 1
	}
	if d > s.rtoCap {
		d = s.rtoCap
	}
	return d
}

func (s *Simulator) armInitiatorLease(i int, seq uint64, retry int) {
	s.sim.After(s.backoff(retry), des.PhaseStart, func() { s.initiatorLease(i, seq, retry) })
}

// initiatorLease fires when the initiator has waited one backoff step
// without the session resolving. Retries are bounded: before the OFFER is
// processed the pool has not moved, so giving up is always safe.
func (s *Simulator) initiatorLease(i int, seq uint64, retry int) {
	m := &s.ms[i]
	if m.initSeq != seq {
		return // session completed, was rejected, or the machine crashed
	}
	met := s.cfg.Metrics
	s.stats.Timeouts++
	if met != nil {
		met.Timeouts.Inc()
	}
	s.faultSpan(m.initSpan, span.TagTimeout, i, m.initPeer, m.clock, int64(retry))
	key := resKey{i, seq}
	if s.deadRes[key] == resAbortInitiator {
		// The target died holding the pool; its fate was settled at the
		// crash (lost or frozen with the target).
		delete(s.deadRes, key)
		s.closeSession(m.initSpan, span.TagInitiator, span.FlagAborted|span.FlagCrashed, i, m.initPeer, m.initStart, m.clock, 0)
		m.initSeq = 0
		m.initSpan = 0
		s.stats.Aborts++
		if met != nil {
			met.Aborts.Inc()
		}
		return
	}
	if retry >= s.maxReqRetries {
		s.closeSession(m.initSpan, span.TagInitiator, span.FlagAborted, i, m.initPeer, m.initStart, m.clock, 0)
		m.initSeq = 0
		m.initSpan = 0
		s.stats.Aborts++
		if met != nil {
			met.Aborts.Inc()
		}
		return
	}
	s.stats.Retransmissions++
	if met != nil {
		met.Retransmissions.Inc()
	}
	m.initRetries++
	peer, start := m.initPeer, m.initStart
	sid := m.initSpan
	s.faultSpan(sid, span.TagRetransmit, i, peer, m.clock, MsgRequest)
	s.post(MsgRequest, i, peer, sid, func() { s.onRequest(i, peer, seq, start, sid) })
	s.armInitiatorLease(i, seq, retry+1)
}

func (s *Simulator) armTargetLease(t, peer int, seq uint64, retry int) {
	s.sim.After(s.backoff(retry), des.PhaseStart, func() { s.targetLease(t, peer, seq, retry) })
}

// targetLease fires when the target has escrowed its pool for one backoff
// step without a COMMIT or ABORT. It re-OFFERs without bound (the pool is
// in limbo, so the target may not guess an outcome) — unless the initiator
// crashed, in which case the resolution recorded at the crash is applied.
// The lease is keyed on (peer, seq): seq alone comes from the peer's
// counter, so two sessions from different initiators may carry equal
// values.
func (s *Simulator) targetLease(t, peer int, seq uint64, retry int) {
	m := &s.ms[t]
	if m.tgtSeq != seq || m.tgtPeer != peer {
		return // session resolved or the machine crashed
	}
	met := s.cfg.Metrics
	s.stats.Timeouts++
	if met != nil {
		met.Timeouts.Inc()
	}
	s.faultSpan(m.tgtSpan, span.TagTimeout, peer, t, m.clock, int64(retry))
	if _, ok := s.deadRes[resKey{peer, seq}]; ok {
		s.resolveTarget(t, resRestoreEscrow)
		return
	}
	s.stats.Retransmissions++
	if met != nil {
		met.Retransmissions.Inc()
	}
	offered := m.escrow
	sid := m.tgtSpan
	s.faultSpan(sid, span.TagRetransmit, t, peer, m.clock, MsgOffer)
	s.post(MsgOffer, t, peer, sid, func() { s.onOffer(peer, t, seq, offered, sid) })
	s.armTargetLease(t, peer, seq, retry+1)
}

// resolveTarget ends machine t's open target session without a commit,
// preferring the resolution a peer crash recorded over the caller's
// default: restore the escrowed pool (it never changed hands) or drop it
// (the initiator committed, so the escrow is a stale duplicate).
func (s *Simulator) resolveTarget(t int, def resKind) {
	m := &s.ms[t]
	key := resKey{m.tgtPeer, m.tgtSeq}
	kind := def
	fromCrash := false
	if r, ok := s.deadRes[key]; ok {
		kind = r
		fromCrash = true
		delete(s.deadRes, key)
	}
	if kind != resDropEscrow {
		// Merge, don't assign: while the session was open the target may
		// have reclaimed an outbox from an earlier initiator role, so jobs
		// is not necessarily empty.
		m.jobs = mergeSorted(m.jobs, m.escrow)
	}
	fl := span.FlagAborted
	if kind == resDropEscrow {
		// The initiator committed before dying: the session succeeded, the
		// target just learned it through the crash resolution.
		fl = span.FlagCommitted
	}
	if fromCrash {
		fl |= span.FlagCrashed
	}
	s.closeSession(m.tgtSpan, span.TagTarget, fl, m.tgtPeer, t, m.tgtStart, m.clock, 0)
	m.escrow = nil
	m.tgtSeq = 0
	m.tgtSpan = 0
	s.stats.Aborts++
	if s.cfg.Metrics != nil {
		s.cfg.Metrics.Aborts.Inc()
	}
}

// onRequest is the target's handler. On acceptance the target escrows its
// whole job list and offers it (single ownership: from the OFFER's
// processing to the COMMIT's, the pooled jobs live at the initiator side).
func (s *Simulator) onRequest(initiator, target int, seq uint64, start int64, sid span.ID) {
	m := &s.ms[target]
	if m.tgtSeq == seq && m.tgtPeer == initiator {
		// Duplicate REQUEST for the session we already accepted: the OFFER
		// was probably lost — resend it.
		s.dupSuppressed()
		s.stats.Retransmissions++
		if s.cfg.Metrics != nil {
			s.cfg.Metrics.Retransmissions.Inc()
		}
		offered := m.escrow
		osid := m.tgtSpan
		s.faultSpan(osid, span.TagRetransmit, target, initiator, m.clock, MsgOffer)
		s.post(MsgOffer, target, initiator, osid, func() { s.onOffer(initiator, target, seq, offered, osid) })
		return
	}
	if seq <= m.lastSeq[initiator] {
		s.dupSuppressed() // stale duplicate of a session already finished
		return
	}
	if m.initSeq != 0 || m.tgtSeq != 0 {
		s.stats.Rejections++
		if s.cfg.Metrics != nil {
			s.cfg.Metrics.Rejections.Inc()
		}
		s.post(MsgReject, target, initiator, sid, func() { s.onReject(initiator, target, seq) })
		return
	}
	if m.lastSeq == nil {
		m.lastSeq = make(map[int]uint64)
	}
	m.lastSeq[initiator] = seq
	m.tgtSeq = seq
	m.tgtPeer = initiator
	m.tgtStart = start
	m.tgtSpan = sid
	m.escrow = m.jobs
	m.jobs = nil
	offered := m.escrow
	s.post(MsgOffer, target, initiator, sid, func() { s.onOffer(initiator, target, seq, offered, sid) })
	if s.plan != nil {
		s.armTargetLease(target, initiator, seq, 0)
	}
}

// onReject unlocks the initiator.
func (s *Simulator) onReject(initiator, target int, seq uint64) {
	m := &s.ms[initiator]
	if m.initSeq != seq || m.initPeer != target {
		s.dupSuppressed()
		return
	}
	s.closeSession(m.initSpan, span.TagInitiator, span.FlagRejected, initiator, target, m.initStart, m.clock, 0)
	m.initSeq = 0
	m.initSpan = 0
}

// onOffer runs the kernel at the initiator and commits. This is the
// session's single ownership-transfer point: the initiator takes the whole
// pool, keeps its half, and records the target's half in the done outbox
// before the COMMIT goes on the (lossy) wire.
func (s *Simulator) onOffer(initiator, target int, seq uint64, targetJobs []int, sid span.ID) {
	m := &s.ms[initiator]
	if m.initSeq == seq && m.initPeer == target {
		// A reclaim pending against a previous session with this target
		// must merge back before the split, so the kernel sees those jobs.
		s.sweepOutbox(initiator)
		union := mergeSorted(m.jobs, targetJobs)
		toI, toT := s.proto.Split(initiator, target, union)
		toI = sortedCopy(toI)
		toT = sortedCopy(toT)
		// Jobs that switched machines: arrived at the initiator (absent from
		// its pre-split list) or at the target (absent from the offer).
		moved := len(toI) - intersectCount(toI, m.jobs) + len(toT) - intersectCount(toT, targetJobs)
		s.stats.JobsMoved += moved
		m.jobs = toI
		if m.done == nil {
			m.done = make(map[int]doneRec)
		}
		csid := m.initSpan
		m.done[target] = doneRec{seq: seq, toT: toT, span: csid}
		s.closeSession(csid, span.TagInitiator, span.FlagCommitted, initiator, target, m.initStart, m.clock, int64(moved))
		m.initSeq = 0
		m.initSpan = 0
		s.stats.Sessions++
		if met := s.cfg.Metrics; met != nil {
			met.Sessions.Inc()
			met.SessionRetries.Observe(int64(m.initRetries))
		}
		s.post(MsgCommit, initiator, target, csid, func() { s.onCommit(initiator, target, seq, toT) })
		return
	}
	if d, ok := m.done[target]; ok && d.seq == seq {
		// OFFER retransmitted after we committed: the COMMIT was lost.
		s.dupSuppressed()
		s.stats.Retransmissions++
		if s.cfg.Metrics != nil {
			s.cfg.Metrics.Retransmissions.Inc()
		}
		s.faultSpan(d.span, span.TagRetransmit, initiator, target, m.clock, MsgCommit)
		s.post(MsgCommit, initiator, target, d.span, func() { s.onCommit(initiator, target, seq, d.toT) })
		return
	}
	// A session this machine no longer knows (it gave up, or crashed and
	// lost the volatile state): tell the target to resolve.
	s.dupSuppressed()
	s.post(MsgAbort, initiator, target, sid, func() { s.onAbort(initiator, target, seq) })
}

// onCommit installs the target's new job list and unlocks it. Session ids
// make this idempotent: duplicates and stale commits are suppressed.
func (s *Simulator) onCommit(initiator, target int, seq uint64, jobs []int) {
	m := &s.ms[target]
	if m.tgtSeq != seq || m.tgtPeer != initiator {
		s.dupSuppressed()
		return
	}
	// Merge, don't assign: jobs the target reclaimed from an old outbox
	// while this session was open live in m.jobs and are not part of the
	// committed split.
	m.jobs = mergeSorted(m.jobs, jobs)
	m.escrow = nil
	s.closeSession(m.tgtSpan, span.TagTarget, span.FlagCommitted, initiator, target, m.tgtStart, m.clock, int64(len(jobs)))
	m.tgtSeq = 0
	m.tgtSpan = 0
	if s.cfg.Metrics != nil {
		s.cfg.Metrics.Handshake.Observe(s.sim.Now() - m.tgtStart)
	}
	if s.cfg.Tracer != nil {
		s.cfg.Tracer.Emit(obs.Event{Time: s.sim.Now(), Type: obs.EvSessionEnd, A: int32(initiator), B: int32(target), Value: s.sim.Now() - m.tgtStart})
	}
}

// onAbort restores (or, per a crash resolution, drops) the target's escrow
// when the initiator disowns the session.
func (s *Simulator) onAbort(initiator, target int, seq uint64) {
	m := &s.ms[target]
	if m.tgtSeq != seq || m.tgtPeer != initiator {
		s.dupSuppressed()
		return
	}
	s.resolveTarget(target, resRestoreEscrow)
}

// sweepOutbox reclaims machine i's outbox entries whose target crashed
// before applying the commit (resolution recorded at the crash). Called on
// every attempt and at settlement; free when no crash is pending.
func (s *Simulator) sweepOutbox(i int) {
	m := &s.ms[i]
	if len(m.done) == 0 || len(s.deadRes) == 0 {
		return
	}
	for t := range s.ms {
		d, ok := m.done[t]
		if !ok {
			continue
		}
		key := resKey{i, d.seq}
		if s.deadRes[key] != resReclaimOutbox {
			continue
		}
		delete(s.deadRes, key)
		delete(m.done, t)
		m.jobs = mergeSorted(m.jobs, d.toT)
		s.stats.JobsReclaimed += len(d.toT)
		if met := s.cfg.Metrics; met != nil {
			met.JobsReclaimed.Add(int64(len(d.toT)))
		}
	}
}

// crash takes machine cr.Machine down: its in-flight messages and pending
// attempt chain are voided (epoch), its open sessions are torn down with a
// deterministic resolution recorded for each surviving peer, and the jobs
// it physically held are either appended to the lost ledger or frozen for
// re-hosting, per the plan.
func (s *Simulator) crash(cr faults.Crash) {
	x := cr.Machine
	m := &s.ms[x]
	if !m.up {
		return
	}
	now := s.sim.Now()
	phys := m.jobs // jobs physically at x at the instant of the crash
	m.jobs = nil

	// x was waiting as initiator: the pool never left the target's escrow.
	if m.initSeq != 0 {
		key := resKey{x, m.initSeq}
		if r, ok := s.deadRes[key]; ok {
			if r == resAbortInitiator { // target died first; x never consumed it
				delete(s.deadRes, key)
			}
		} else if t := m.initPeer; s.ms[t].tgtSeq == m.initSeq && s.ms[t].tgtPeer == x {
			s.deadRes[key] = resRestoreEscrow
		}
		s.faultSpan(m.initSpan, span.TagCrash, x, m.initPeer, m.clock, 0)
		s.closeSession(m.initSpan, span.TagInitiator, span.FlagAborted|span.FlagCrashed, x, m.initPeer, m.initStart, m.clock, 0)
		m.initSeq = 0
		m.initSpan = 0
	}
	// x was holding an escrow as target: decide where the pool lives.
	if m.tgtSeq != 0 {
		i := m.tgtPeer
		key := resKey{i, m.tgtSeq}
		if r, ok := s.deadRes[key]; ok {
			// The initiator crashed first and settled the pool's fate.
			delete(s.deadRes, key)
			if r == resRestoreEscrow {
				phys = append(phys, m.escrow...)
			} // resDropEscrow: the escrow is a stale duplicate
		} else if d, ok := s.ms[i].done[x]; ok && d.seq == m.tgtSeq {
			// Committed but unapplied: the pool is split between the
			// initiator's jobs and its outbox; x's escrow is stale and the
			// outbox can never be applied — the initiator reclaims it.
			s.deadRes[key] = resReclaimOutbox
		} else if s.ms[i].initSeq == m.tgtSeq && s.ms[i].initPeer == x {
			// Initiator still waiting: the pool dies with x; free the peer.
			s.deadRes[key] = resAbortInitiator
			phys = append(phys, m.escrow...)
		} else {
			// Initiator already gave up: the pool dies with x.
			phys = append(phys, m.escrow...)
		}
		s.faultSpan(m.tgtSpan, span.TagCrash, x, m.tgtPeer, m.clock, 0)
		s.closeSession(m.tgtSpan, span.TagTarget, span.FlagAborted|span.FlagCrashed, m.tgtPeer, x, m.tgtStart, m.clock, 0)
		m.escrow = nil
		m.tgtSeq = 0
		m.tgtSpan = 0
	}
	// Open target sessions elsewhere whose initiator is x.
	for t := range s.ms {
		tm := &s.ms[t]
		if t == x || tm.tgtSeq == 0 || tm.tgtPeer != x {
			continue
		}
		key := resKey{x, tm.tgtSeq}
		if _, ok := s.deadRes[key]; ok {
			continue // resolved above (x was still waiting on this session)
		}
		if d, ok := m.done[t]; ok && d.seq == tm.tgtSeq {
			// x committed but t never applied: the outbox dies with x and
			// t's escrow is the stale half — t must drop it.
			phys = append(phys, d.toT...)
			delete(m.done, t)
			s.deadRes[key] = resDropEscrow
		} else {
			// x gave this session up before crashing: t restores its pool.
			s.deadRes[key] = resRestoreEscrow
		}
	}
	// Remaining outbox entries: consume reclaim markers from targets that
	// crashed earlier (those jobs are physically at x); applied sessions
	// leave only stale records.
	for t := range s.ms {
		d, ok := m.done[t]
		if !ok {
			continue
		}
		key := resKey{x, d.seq}
		if s.deadRes[key] == resReclaimOutbox {
			delete(s.deadRes, key)
			phys = append(phys, d.toT...)
		}
		delete(m.done, t)
	}

	m.epoch++
	m.up = false
	sort.Ints(phys)
	s.stats.Crashes++
	met := s.cfg.Metrics
	if met != nil {
		met.Crashes.Inc()
	}
	if tr := s.cfg.Tracer; tr != nil {
		tr.Emit(obs.Event{Time: now, Type: obs.EvMachineCrash, A: int32(x), B: -1, Value: int64(len(phys))})
	}
	s.faultSpan(s.runSpan, span.TagCrash, x, -1, m.clock, int64(len(phys)))
	if cr.LoseJobs {
		for _, j := range phys {
			s.stats.Lost = append(s.stats.Lost, LostJob{Job: j, Machine: x, Time: now})
		}
		s.stats.JobsLost += len(phys)
		if met != nil {
			met.JobsLost.Add(int64(len(phys)))
		}
	} else {
		m.retained = phys
	}
}

// recover brings a crashed machine back with a fresh epoch, re-hosts its
// frozen jobs, and restarts its balancing attempts.
func (s *Simulator) recover(x int) {
	m := &s.ms[x]
	if m.up {
		return
	}
	m.up = true
	m.epoch++
	m.jobs = m.retained
	m.retained = nil
	s.stats.Recoveries++
	if s.cfg.Metrics != nil {
		s.cfg.Metrics.Recoveries.Inc()
	}
	if tr := s.cfg.Tracer; tr != nil {
		tr.Emit(obs.Event{Time: s.sim.Now(), Type: obs.EvMachineRecover, A: int32(x), B: -1, Value: int64(len(m.jobs))})
	}
	s.faultSpan(s.runSpan, span.TagRecover, x, -1, m.clock, int64(len(m.jobs)))
	if len(s.ms) > 1 {
		s.scheduleAttempt(x)
	}
}

// ValidateConservation checks the post-drain invariant: every job of the
// model is placed exactly once — in a machine's job list (frozen lists of
// down machines included) or in the lost ledger — no session, escrow or
// crash resolution is left open, and no job is both placed and lost. Call
// it after Run.
func (s *Simulator) ValidateConservation() error {
	owner := make([]int, s.model.NumJobs())
	for j := range owner {
		owner[j] = -1
	}
	claim := func(j, i int, what string) error {
		if j < 0 || j >= len(owner) {
			return fmt.Errorf("netsim: unknown job %d in %s of machine %d", j, what, i)
		}
		if owner[j] != -1 {
			return fmt.Errorf("netsim: job %d in %s of machine %d already owned by machine %d", j, what, i, owner[j])
		}
		owner[j] = i
		return nil
	}
	for i := range s.ms {
		m := &s.ms[i]
		if m.initSeq != 0 {
			return fmt.Errorf("netsim: machine %d wedged as initiator of session %d", i, m.initSeq)
		}
		if m.tgtSeq != 0 {
			return fmt.Errorf("netsim: machine %d wedged as target of session %d", i, m.tgtSeq)
		}
		if len(m.escrow) > 0 {
			return fmt.Errorf("netsim: machine %d left %d jobs in escrow", i, len(m.escrow))
		}
		for _, j := range m.jobs {
			if err := claim(j, i, "job list"); err != nil {
				return err
			}
		}
		for _, j := range m.retained {
			if err := claim(j, i, "frozen list"); err != nil {
				return err
			}
		}
	}
	for _, l := range s.stats.Lost {
		if l.Job < 0 || l.Job >= len(owner) {
			return fmt.Errorf("netsim: unknown job %d in lost ledger", l.Job)
		}
		if owner[l.Job] != -1 {
			return fmt.Errorf("netsim: job %d both placed (machine %d) and recorded lost", l.Job, owner[l.Job])
		}
		owner[l.Job] = -2
	}
	for j, o := range owner {
		if o == -1 {
			return fmt.Errorf("netsim: job %d neither placed nor recorded lost", j)
		}
	}
	for k, r := range s.deadRes { //hetlb:nondeterministic-ok error path: the map must be empty, so which entry names the failure is immaterial
		return fmt.Errorf("netsim: unconsumed crash resolution %d for session (%d, %d)", r, k.init, k.seq)
	}
	if s.plan != nil {
		// Run drains every scheduled recovery, so the machines still down
		// must be exactly the schedule's permanent crashes — the dynamic
		// crash state cross-checked against the pure fault plan.
		cfg := s.plan.Config()
		for i := range s.ms {
			if wantDown := cfg.DownAt(i, math.MaxInt64); s.ms[i].up == wantDown {
				return fmt.Errorf("netsim: machine %d ended up=%v but the fault plan schedules down=%v forever",
					i, s.ms[i].up, wantDown)
			}
		}
	}
	return nil
}

// makespan computes Cmax from the owned job lists (frozen lists of down
// machines included; lost jobs gone). Mid-handshake the pooled jobs live
// at the initiator/on the wire, so a sample may transiently undercount the
// target; it can never double-count (single ownership), and the final
// value is taken after the queue drains with no handshake in flight.
func (s *Simulator) makespan() core.Cost {
	max, _ := s.loadStats()
	return max
}

// loadStats scans the owned job lists once and returns both Cmax and the
// total load, so the timeline's imbalance column shares the makespan scan.
func (s *Simulator) loadStats() (core.Cost, int64) {
	var max core.Cost
	var sum int64
	for i := range s.ms {
		var l core.Cost
		for _, j := range s.ms[i].jobs {
			l += s.model.Cost(i, j)
		}
		for _, j := range s.ms[i].retained {
			l += s.model.Cost(i, j)
		}
		sum += int64(l)
		if l > max {
			max = l
		}
	}
	return max, sum
}

// Placement reconstructs a core.Assignment from the current job lists
// (frozen lists of down machines included). Jobs recorded lost stay
// unassigned, so the assignment is Complete only when nothing was lost.
func (s *Simulator) Placement() (*core.Assignment, error) {
	a := core.NewAssignment(s.model)
	place := func(i int, jobs []int) error {
		for _, j := range jobs {
			if a.MachineOf(j) != -1 {
				return fmt.Errorf("netsim: job %d owned twice", j)
			}
			a.Assign(j, i)
		}
		return nil
	}
	for i := range s.ms {
		if err := place(i, s.ms[i].jobs); err != nil {
			return nil, err
		}
		if err := place(i, s.ms[i].retained); err != nil {
			return nil, err
		}
	}
	return a, nil
}

func mergeSorted(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	x, y := 0, 0
	for x < len(a) && y < len(b) {
		if a[x] < b[y] {
			out = append(out, a[x])
			x++
		} else {
			out = append(out, b[y])
			y++
		}
	}
	out = append(out, a[x:]...)
	return append(out, b[y:]...)
}

func sortedCopy(s []int) []int {
	c := append([]int(nil), s...)
	sort.Ints(c)
	return c
}

// intersectCount returns |a ∩ b| for two sorted ascending slices.
func intersectCount(a, b []int) int {
	n, x, y := 0, 0, 0
	for x < len(a) && y < len(b) {
		switch {
		case a[x] < b[y]:
			x++
		case a[x] > b[y]:
			y++
		default:
			n++
			x++
			y++
		}
	}
	return n
}
