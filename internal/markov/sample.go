package markov

import (
	"fmt"
	"sort"

	"hetlb/internal/rng"
)

// SampleResult is an empirical estimate of the stationary makespan
// distribution obtained by running the load-vector random walk directly,
// without enumerating the state space. It cross-validates the exact chain
// on small parameters and extends Figure 2 to parameters whose sink
// component is too large to enumerate (the paper notes "the computational
// cost quickly increases with m and pmax, making larger runs prohibitively
// long" — sampling is the practical fallback).
type SampleResult struct {
	M     int
	PMax  int64
	Total int64
	// Values and Probs are the empirical makespan distribution.
	Values []int64
	Probs  []float64
	// Samples is the number of recorded observations.
	Samples int
	// MaxSeen is the largest makespan observed (must respect Theorem 10).
	MaxSeen int64
}

// Sample runs the walk for burnin steps, then records the makespan every
// thin steps until samples observations are collected.
func Sample(m int, pmax, total int64, burnin, samples, thin int, seed uint64) (*SampleResult, error) {
	if m < 2 {
		return nil, fmt.Errorf("markov: need at least 2 machines, got %d", m)
	}
	if pmax < 1 {
		return nil, fmt.Errorf("markov: pmax must be >= 1, got %d", pmax)
	}
	if total < 0 {
		return nil, fmt.Errorf("markov: negative total load")
	}
	if samples <= 0 || thin <= 0 || burnin < 0 {
		return nil, fmt.Errorf("markov: bad sampling parameters")
	}
	gen := rng.New(seed)

	// Start perfectly balanced (inside the sink component by Theorem 9).
	load := make([]int64, m)
	q, r := total/int64(m), total%int64(m)
	for i := range load {
		load[i] = q
		if int64(i) < r {
			load[i]++
		}
	}

	step := func() {
		a := gen.Intn(m)
		b := gen.Pick(m, a)
		t := load[a] + load[b]
		ds := splits(t, pmax)
		d := ds[gen.Intn(len(ds))]
		hi, lo := (t+d)/2, (t-d)/2
		if gen.Bool() {
			load[a], load[b] = hi, lo
		} else {
			load[a], load[b] = lo, hi
		}
	}

	for s := 0; s < burnin; s++ {
		step()
	}
	counts := make(map[int64]int)
	res := &SampleResult{M: m, PMax: pmax, Total: total, Samples: samples}
	for s := 0; s < samples; s++ {
		for k := 0; k < thin; k++ {
			step()
		}
		var mx int64
		for _, l := range load {
			if l > mx {
				mx = l
			}
		}
		counts[mx]++
		if mx > res.MaxSeen {
			res.MaxSeen = mx
		}
	}
	for v := range counts {
		res.Values = append(res.Values, v)
	}
	sort.Slice(res.Values, func(a, b int) bool { return res.Values[a] < res.Values[b] })
	res.Probs = make([]float64, len(res.Values))
	for k, v := range res.Values {
		res.Probs[k] = float64(counts[v]) / float64(samples)
	}
	return res, nil
}

// NormalizedDeviation converts a makespan to the Figure 2 axis.
func (s *SampleResult) NormalizedDeviation(makespan int64) float64 {
	balanced := (s.Total + int64(s.M) - 1) / int64(s.M)
	return float64(makespan-balanced) / float64(s.PMax)
}

// TotalVariation computes ½·Σ|p−q| between the empirical distribution and
// an exact one given as parallel (values, probs) slices.
func (s *SampleResult) TotalVariation(values []int64, probs []float64) float64 {
	exact := make(map[int64]float64, len(values))
	for k, v := range values {
		exact[v] = probs[k]
	}
	seen := make(map[int64]bool)
	var tv float64
	for k, v := range s.Values {
		seen[v] = true
		d := s.Probs[k] - exact[v]
		if d < 0 {
			d = -d
		}
		tv += d
	}
	for k, v := range values {
		if !seen[v] {
			tv += probs[k]
		}
	}
	return tv / 2
}
