// Package markov implements the Section VII.A analysis of the paper: the
// dynamics of DLB2C on a single homogeneous cluster abstracted as a Markov
// chain over integer load vectors.
//
// A state is a load vector L with ΣL = ΣP fixed. One step picks an
// unordered pair of machines uniformly, pools their load T, and re-splits it
// with a residual imbalance d chosen uniformly over the achievable values
// {d : 0 ≤ d ≤ min(pmax, T), d ≡ T (mod 2)} (the parity constraint keeps
// loads integral; the paper states the model as "uniform over {0..pmax}").
//
// Machine identities do not matter for the makespan, and the dynamics are
// symmetric under permutation, so states are canonicalized as sorted
// (non-increasing) vectors, which shrinks the space by up to m!.
//
// The sink strongly connected component (Theorem 9) is exactly the set of
// states reachable from the perfectly balanced state: the balanced state
// belongs to the sink, and the sink has no outgoing edges, so forward
// closure from it yields the whole component. Build enumerates it by BFS,
// Stationary computes the stationary distribution by power iteration, and
// MakespanDistribution projects it to the Figure 2 curves.
package markov

import (
	"fmt"
	"sort"
)

// entry is one sparse transition.
type entry struct {
	to   int32
	prob float64
}

// Chain is the canonicalized Markov chain restricted to the sink component.
type Chain struct {
	// M is the number of machines; PMax the largest job size; Total ΣP.
	M     int
	PMax  int64
	Total int64

	states [][]int64 // canonical (non-increasing) load vectors
	index  map[string]int32
	trans  [][]entry
}

// MaxStates caps enumeration to keep memory bounded; Build fails beyond it.
const MaxStates = 4_000_000

// key encodes a canonical vector for hashing.
func key(v []int64) string {
	b := make([]byte, 0, 3*len(v))
	for _, x := range v {
		// Loads are bounded by Total; 3 bytes cover every experiment here
		// (Total < 2^24). Guarded in Build.
		b = append(b, byte(x), byte(x>>8), byte(x>>16))
	}
	return string(b)
}

// canon sorts a copy of v in non-increasing order.
func canon(v []int64) []int64 {
	c := append([]int64(nil), v...)
	sortDesc(c)
	return c
}

// sortDesc sorts in place in non-increasing order. Machine counts are tiny
// (m ≤ 10 in every experiment), so insertion sort beats sort.Slice by a
// wide margin and allocates nothing — this is the hottest path of Build.
func sortDesc(c []int64) {
	for i := 1; i < len(c); i++ {
		v := c[i]
		k := i - 1
		for k >= 0 && c[k] < v {
			c[k+1] = c[k]
			k--
		}
		c[k+1] = v
	}
}

// Build enumerates the sink component for m machines, total load total and
// maximum job size pmax, and precomputes the sparse transition matrix.
func Build(m int, pmax, total int64) (*Chain, error) {
	if m < 2 {
		return nil, fmt.Errorf("markov: need at least 2 machines, got %d", m)
	}
	if pmax < 1 {
		return nil, fmt.Errorf("markov: pmax must be >= 1, got %d", pmax)
	}
	if total < 0 {
		return nil, fmt.Errorf("markov: negative total load")
	}
	if total >= 1<<24 {
		return nil, fmt.Errorf("markov: total load %d too large for state encoding", total)
	}
	c := &Chain{M: m, PMax: pmax, Total: total, index: make(map[string]int32)}

	// Perfectly balanced start: total = q·m + r gives r machines with q+1.
	q, r := total/int64(m), total%int64(m)
	start := make([]int64, m)
	for i := range start {
		start[i] = q
		if int64(i) < r {
			start[i] = q + 1
		}
	}
	start = canon(start)
	c.index[key(start)] = 0
	c.states = append(c.states, start)

	// Precompute the achievable residual splits for every pooled load t
	// (t ≤ total), so the hot loop never re-derives them.
	splitsByT := make([][]int64, total+1)
	for t := int64(0); t <= total; t++ {
		splitsByT[t] = splits(t, pmax)
	}

	numPairs := float64(m*(m-1)) / 2
	scratch := make([]int64, m)    // successor vector, reused
	keyBuf := make([]byte, 3*m)    // key bytes, reused for lookups
	acc := make(map[int32]float64) // successor → probability, reused
	for head := 0; head < len(c.states); head++ {
		cur := c.states[head]
		for k := range acc {
			delete(acc, k)
		}
		for a := 0; a < m; a++ {
			for b := a + 1; b < m; b++ {
				t := cur[a] + cur[b]
				ds := splitsByT[t]
				pd := 1 / (numPairs * float64(len(ds)))
				for _, d := range ds {
					copy(scratch, cur)
					scratch[a] = (t + d) / 2
					scratch[b] = (t - d) / 2
					sortDesc(scratch)
					for i, x := range scratch {
						keyBuf[3*i] = byte(x)
						keyBuf[3*i+1] = byte(x >> 8)
						keyBuf[3*i+2] = byte(x >> 16)
					}
					id, ok := c.index[string(keyBuf)]
					if !ok {
						if len(c.states) >= MaxStates {
							return nil, fmt.Errorf("markov: state space exceeds %d states (m=%d pmax=%d total=%d)",
								MaxStates, m, pmax, total)
						}
						id = int32(len(c.states))
						c.index[string(keyBuf)] = id
						c.states = append(c.states, append([]int64(nil), scratch...))
					}
					acc[id] += pd
				}
			}
		}
		row := make([]entry, 0, len(acc))
		for to, p := range acc {
			row = append(row, entry{to: to, prob: p})
		}
		sort.Slice(row, func(x, y int) bool { return row[x].to < row[y].to })
		c.trans = append(c.trans, row)
	}
	return c, nil
}

// splits returns the achievable residual imbalances for pooled load t.
func splits(t, pmax int64) []int64 {
	max := pmax
	if t < max {
		max = t
	}
	var ds []int64
	for d := t % 2; d <= max; d += 2 {
		ds = append(ds, d)
	}
	if len(ds) == 0 {
		// t odd and pmax == 0 cannot happen (pmax >= 1); t == 0 gives d=0.
		ds = []int64{t % 2}
	}
	return ds
}

// NumStates returns the size of the sink component.
func (c *Chain) NumStates() int { return len(c.states) }

// State returns the canonical load vector of state id (shared slice; do not
// mutate).
func (c *Chain) State(id int) []int64 { return c.states[id] }

// Makespan returns the largest load of state id.
func (c *Chain) Makespan(id int) int64 { return c.states[id][0] }

// MaxMakespan returns the largest makespan over the component.
func (c *Chain) MaxMakespan() int64 {
	var max int64
	for _, s := range c.states {
		if s[0] > max {
			max = s[0]
		}
	}
	return max
}

// TheoremTenBound returns ΣP/m + (m-1)/2·pmax, the Theorem 10 upper bound on
// the makespan of any sink-component state.
func (c *Chain) TheoremTenBound() float64 {
	return float64(c.Total)/float64(c.M) + float64(c.M-1)/2*float64(c.PMax)
}

// RowSum returns the total outgoing probability of state id (should be 1).
func (c *Chain) RowSum(id int) float64 {
	var s float64
	for _, e := range c.trans[id] {
		s += e.prob
	}
	return s
}

// Successors returns the transition row of a state as (state id,
// probability) pairs, for tests and inspection.
func (c *Chain) Successors(id int) ([]int, []float64) {
	row := c.trans[id]
	ids := make([]int, len(row))
	ps := make([]float64, len(row))
	for k, e := range row {
		ids[k] = int(e.to)
		ps[k] = e.prob
	}
	return ids, ps
}

// Stationary computes the stationary distribution by power iteration,
// stopping when the L1 change drops below tol or after maxIter sweeps.
// It returns the distribution and the number of iterations performed.
func (c *Chain) Stationary(tol float64, maxIter int) ([]float64, int) {
	n := len(c.states)
	pi := make([]float64, n)
	next := make([]float64, n)
	for i := range pi {
		pi[i] = 1 / float64(n)
	}
	for it := 1; it <= maxIter; it++ {
		for i := range next {
			next[i] = 0
		}
		for i, row := range c.trans {
			p := pi[i]
			if p == 0 {
				continue
			}
			for _, e := range row {
				next[e.to] += p * e.prob
			}
		}
		var diff, sum float64
		for i := range next {
			d := next[i] - pi[i]
			if d < 0 {
				d = -d
			}
			diff += d
			sum += next[i]
		}
		// Renormalize to counter floating point drift.
		for i := range next {
			next[i] /= sum
		}
		pi, next = next, pi
		if diff < tol {
			return pi, it
		}
	}
	return pi, maxIter
}

// StationaryResidual returns ‖πP − π‖₁ for a candidate stationary vector.
func (c *Chain) StationaryResidual(pi []float64) float64 {
	n := len(c.states)
	out := make([]float64, n)
	for i, row := range c.trans {
		for _, e := range row {
			out[e.to] += pi[i] * e.prob
		}
	}
	var r float64
	for i := range out {
		d := out[i] - pi[i]
		if d < 0 {
			d = -d
		}
		r += d
	}
	return r
}

// MakespanDistribution projects a state distribution onto the makespan:
// it returns the sorted support values and their probabilities.
func (c *Chain) MakespanDistribution(pi []float64) ([]int64, []float64) {
	acc := make(map[int64]float64)
	for id, p := range pi {
		acc[c.Makespan(id)] += p
	}
	values := make([]int64, 0, len(acc))
	for v := range acc {
		values = append(values, v)
	}
	sort.Slice(values, func(a, b int) bool { return values[a] < values[b] })
	probs := make([]float64, len(values))
	for k, v := range values {
		probs[k] = acc[v]
	}
	return values, probs
}

// NormalizedDeviation converts a makespan value to the Figure 2 x-axis:
// (Cmax − ⌈ΣP/m⌉) / pmax.
func (c *Chain) NormalizedDeviation(makespan int64) float64 {
	balanced := (c.Total + int64(c.M) - 1) / int64(c.M)
	return float64(makespan-balanced) / float64(c.PMax)
}

// ReachesBalancedFromAll verifies the strong-connectivity half of Theorem 9:
// every enumerated state can reach the balanced state. It runs a reverse BFS
// from state 0 and reports whether it covers the component.
func (c *Chain) ReachesBalancedFromAll() bool {
	n := len(c.states)
	rev := make([][]int32, n)
	for from, row := range c.trans {
		for _, e := range row {
			rev[e.to] = append(rev[e.to], int32(from))
		}
	}
	seen := make([]bool, n)
	queue := []int32{0}
	seen[0] = true
	count := 1
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range rev[v] {
			if !seen[w] {
				seen[w] = true
				count++
				queue = append(queue, w)
			}
		}
	}
	return count == n
}

// MinimumTotalForBound returns the smallest ΣP for which the Theorem 10
// bound is attainable (all chain terms non-negative): m(m-1)/2 · pmax,
// rounded up to a multiple of m so the balanced state is uniform. This is
// how the paper "set ΣP so that the maximum imbalance given in Theorem 10
// can be reached".
func MinimumTotalForBound(m int, pmax int64) int64 {
	w := int64(m) * int64(m-1) / 2 * pmax
	if rem := w % int64(m); rem != 0 {
		w += int64(m) - rem
	}
	return w
}
