package markov

import (
	"math"
	"testing"
)

func TestBuildRejectsBadParams(t *testing.T) {
	if _, err := Build(1, 4, 10); err == nil {
		t.Fatal("m=1 accepted")
	}
	if _, err := Build(3, 0, 10); err == nil {
		t.Fatal("pmax=0 accepted")
	}
	if _, err := Build(3, 4, -1); err == nil {
		t.Fatal("negative total accepted")
	}
}

func TestTwoMachineHandComputed(t *testing.T) {
	// m=2, total=2, pmax=2: states [1,1] and [2,0]; both transition to
	// each with probability 1/2, so the stationary distribution is
	// uniform.
	c, err := Build(2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumStates() != 2 {
		t.Fatalf("states = %d, want 2", c.NumStates())
	}
	pi, _ := c.Stationary(1e-12, 1000)
	for i, p := range pi {
		if math.Abs(p-0.5) > 1e-9 {
			t.Fatalf("pi[%d] = %v, want 0.5", i, p)
		}
	}
}

func TestRowsSumToOne(t *testing.T) {
	c, err := Build(4, 3, 12)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < c.NumStates(); id++ {
		if s := c.RowSum(id); math.Abs(s-1) > 1e-9 {
			t.Fatalf("state %d row sum %v", id, s)
		}
	}
}

func TestStatesAreCanonicalAndConserve(t *testing.T) {
	c, err := Build(5, 4, 20)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < c.NumStates(); id++ {
		s := c.State(id)
		var sum int64
		for k, v := range s {
			sum += v
			if v < 0 {
				t.Fatalf("state %d has negative load", id)
			}
			if k > 0 && s[k-1] < v {
				t.Fatalf("state %d not sorted: %v", id, s)
			}
		}
		if sum != 20 {
			t.Fatalf("state %d total %d, want 20", id, sum)
		}
	}
}

func TestTheorem9StrongConnectivity(t *testing.T) {
	// Every sink-component state must be able to return to the balanced
	// state (the component is strongly connected).
	for _, tc := range []struct {
		m     int
		pmax  int64
		total int64
	}{
		{3, 2, 6}, {4, 3, 16}, {6, 2, 30}, {5, 4, 40},
	} {
		c, err := Build(tc.m, tc.pmax, tc.total)
		if err != nil {
			t.Fatal(err)
		}
		if !c.ReachesBalancedFromAll() {
			t.Fatalf("m=%d pmax=%d total=%d: component not strongly connected",
				tc.m, tc.pmax, tc.total)
		}
	}
}

func TestTheorem10Bound(t *testing.T) {
	// No sink state exceeds ΣP/m + (m-1)/2·pmax.
	for _, tc := range []struct {
		m    int
		pmax int64
	}{
		{3, 2}, {4, 4}, {6, 2}, {5, 3},
	} {
		total := MinimumTotalForBound(tc.m, tc.pmax)
		c, err := Build(tc.m, tc.pmax, total)
		if err != nil {
			t.Fatal(err)
		}
		bound := c.TheoremTenBound()
		if got := float64(c.MaxMakespan()); got > bound+1e-9 {
			t.Fatalf("m=%d pmax=%d: max makespan %v exceeds Theorem 10 bound %v",
				tc.m, tc.pmax, got, bound)
		}
	}
}

func TestStationaryIsFixedPoint(t *testing.T) {
	c, err := Build(4, 4, 24)
	if err != nil {
		t.Fatal(err)
	}
	pi, iters := c.Stationary(1e-12, 5000)
	if iters >= 5000 {
		t.Fatal("power iteration did not converge")
	}
	var sum float64
	for _, p := range pi {
		if p < 0 {
			t.Fatal("negative stationary probability")
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("stationary sums to %v", sum)
	}
	if r := c.StationaryResidual(pi); r > 1e-8 {
		t.Fatalf("residual %v too large", r)
	}
}

func TestMakespanDistribution(t *testing.T) {
	c, err := Build(3, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	pi, _ := c.Stationary(1e-12, 2000)
	values, probs := c.MakespanDistribution(pi)
	var sum float64
	for k, p := range probs {
		sum += p
		if k > 0 && values[k] <= values[k-1] {
			t.Fatal("support not strictly increasing")
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("distribution sums to %v", sum)
	}
	// The balanced makespan (2) must carry positive probability, and no
	// value can be below it.
	if values[0] != 2 {
		t.Fatalf("smallest makespan %d, want 2", values[0])
	}
}

func TestNormalizedDeviation(t *testing.T) {
	c, err := Build(6, 4, 60)
	if err != nil {
		t.Fatal(err)
	}
	if d := c.NormalizedDeviation(10); math.Abs(d-0) > 1e-9 {
		t.Fatalf("deviation of balanced = %v", d)
	}
	if d := c.NormalizedDeviation(14); math.Abs(d-1) > 1e-9 {
		t.Fatalf("deviation of balanced+pmax = %v", d)
	}
}

func TestFigure2ShapeSmall(t *testing.T) {
	// Core qualitative claim of Figure 2: the stationary makespan
	// distribution is unimodal with mode near 0.5·pmax above balanced,
	// and the mass above 1.5·pmax is negligible.
	c, err := Build(6, 4, MinimumTotalForBound(6, 4))
	if err != nil {
		t.Fatal(err)
	}
	pi, _ := c.Stationary(1e-11, 5000)
	values, probs := c.MakespanDistribution(pi)
	// Mode position.
	mode := 0
	for k, p := range probs {
		if p > probs[mode] {
			mode = k
		}
	}
	dev := c.NormalizedDeviation(values[mode])
	if dev < 0.2 || dev > 0.9 {
		t.Fatalf("mode at normalized deviation %v, expected near 0.5", dev)
	}
	// Tail mass beyond 1.5·pmax.
	var tail float64
	for k, v := range values {
		if c.NormalizedDeviation(v) > 1.5 {
			tail += probs[k]
		}
	}
	if tail > 0.01 {
		t.Fatalf("tail mass beyond 1.5·pmax is %v, expected < 1%%", tail)
	}
}

func TestMinimumTotalForBound(t *testing.T) {
	// m(m-1)/2·pmax rounded up to a multiple of m.
	if got := MinimumTotalForBound(6, 4); got != 60 {
		t.Fatalf("got %d, want 60", got)
	}
	if got := MinimumTotalForBound(3, 3); got != 9 {
		t.Fatalf("got %d, want 9", got)
	}
	if got := MinimumTotalForBound(4, 3); got != 20 { // 18 → 20
		t.Fatalf("got %d, want 20", got)
	}
}

func TestSuccessorsExposedSorted(t *testing.T) {
	c, err := Build(3, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	ids, ps := c.Successors(0)
	if len(ids) == 0 || len(ids) != len(ps) {
		t.Fatal("bad successor row")
	}
	for k := 1; k < len(ids); k++ {
		if ids[k] <= ids[k-1] {
			t.Fatal("successors not sorted by id")
		}
	}
}

func BenchmarkBuildM6PMax4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Build(6, 4, 60); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStationaryM6PMax4(b *testing.B) {
	c, err := Build(6, 4, 60)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Stationary(1e-10, 3000)
	}
}

func TestTwoMachineStationaryIsUniformAnalytic(t *testing.T) {
	// For m=2 the pooled load is always the full total, so the next state
	// is drawn uniformly over the achievable imbalances REGARDLESS of the
	// current state — the chain forgets its state in one step and the
	// stationary distribution is exactly uniform over the imbalance
	// support. This is an analytic ground truth for the whole pipeline.
	for _, tc := range []struct {
		pmax, total int64
	}{
		{4, 10}, {5, 11}, {3, 9}, {8, 8},
	} {
		c, err := Build(2, tc.pmax, tc.total)
		if err != nil {
			t.Fatal(err)
		}
		pi, _ := c.Stationary(1e-13, 5000)
		want := 1 / float64(c.NumStates())
		for id, p := range pi {
			if math.Abs(p-want) > 1e-8 {
				t.Fatalf("pmax=%d total=%d: pi[%d]=%v, want uniform %v",
					tc.pmax, tc.total, id, p, want)
			}
		}
		// Support size: imbalances d ≡ total mod 2, 0 ≤ d ≤ min(pmax, total).
		maxD := tc.pmax
		if tc.total < maxD {
			maxD = tc.total
		}
		support := 0
		for d := tc.total % 2; d <= maxD; d += 2 {
			support++
		}
		if c.NumStates() != support {
			t.Fatalf("pmax=%d total=%d: %d states, want %d",
				tc.pmax, tc.total, c.NumStates(), support)
		}
	}
}
