package markov

import (
	"testing"
)

func TestSampleRejectsBadParams(t *testing.T) {
	if _, err := Sample(1, 4, 10, 0, 10, 1, 1); err == nil {
		t.Fatal("m=1 accepted")
	}
	if _, err := Sample(3, 0, 10, 0, 10, 1, 1); err == nil {
		t.Fatal("pmax=0 accepted")
	}
	if _, err := Sample(3, 4, 10, 0, 0, 1, 1); err == nil {
		t.Fatal("samples=0 accepted")
	}
	if _, err := Sample(3, 4, 10, -1, 10, 1, 1); err == nil {
		t.Fatal("negative burnin accepted")
	}
}

func TestSampleDistributionSumsToOne(t *testing.T) {
	s, err := Sample(4, 3, 16, 1000, 5000, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range s.Probs {
		sum += p
	}
	if sum < 0.9999 || sum > 1.0001 {
		t.Fatalf("probs sum to %v", sum)
	}
	if s.Samples != 5000 {
		t.Fatal("sample count wrong")
	}
}

func TestSampleRespectsTheorem10(t *testing.T) {
	for _, tc := range []struct {
		m    int
		pmax int64
	}{
		{4, 3}, {6, 4}, {5, 8},
	} {
		total := MinimumTotalForBound(tc.m, tc.pmax)
		s, err := Sample(tc.m, tc.pmax, total, 2000, 20000, 2, 7)
		if err != nil {
			t.Fatal(err)
		}
		bound := float64(total)/float64(tc.m) + float64(tc.m-1)/2*float64(tc.pmax)
		if float64(s.MaxSeen) > bound+1e-9 {
			t.Fatalf("m=%d pmax=%d: sampled makespan %d above Theorem 10 bound %v",
				tc.m, tc.pmax, s.MaxSeen, bound)
		}
	}
}

func TestSampleMatchesExactChain(t *testing.T) {
	// Monte Carlo vs exact stationary distribution: total variation must
	// be small with enough samples (cross-validation of both paths).
	const m, pmax, total = 4, 3, 20
	chain, err := Build(m, pmax, total)
	if err != nil {
		t.Fatal(err)
	}
	pi, _ := chain.Stationary(1e-11, 10000)
	values, probs := chain.MakespanDistribution(pi)

	s, err := Sample(m, pmax, total, 20000, 200000, 5, 99)
	if err != nil {
		t.Fatal(err)
	}
	if tv := s.TotalVariation(values, probs); tv > 0.02 {
		t.Fatalf("total variation %v between sampler and exact chain", tv)
	}
}

func TestSampleDeterministicForSeed(t *testing.T) {
	a, _ := Sample(4, 3, 16, 100, 1000, 2, 5)
	b, _ := Sample(4, 3, 16, 100, 1000, 2, 5)
	if len(a.Values) != len(b.Values) {
		t.Fatal("seeded sampling not deterministic")
	}
	for k := range a.Values {
		if a.Values[k] != b.Values[k] || a.Probs[k] != b.Probs[k] {
			t.Fatal("seeded sampling not deterministic")
		}
	}
}

func TestSampleNormalizedDeviation(t *testing.T) {
	s := &SampleResult{M: 6, PMax: 4, Total: 60}
	if d := s.NormalizedDeviation(14); d != 1 {
		t.Fatalf("deviation = %v, want 1", d)
	}
}

func TestTotalVariationEdges(t *testing.T) {
	s := &SampleResult{Values: []int64{5}, Probs: []float64{1}}
	if tv := s.TotalVariation([]int64{5}, []float64{1}); tv != 0 {
		t.Fatalf("identical distributions have TV %v", tv)
	}
	if tv := s.TotalVariation([]int64{6}, []float64{1}); tv != 1 {
		t.Fatalf("disjoint distributions have TV %v", tv)
	}
}

func BenchmarkSampleM6PMax16(b *testing.B) {
	total := MinimumTotalForBound(6, 16)
	for i := 0; i < b.N; i++ {
		if _, err := Sample(6, 16, total, 1000, 10000, 2, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
