package des

import "testing"

func TestOrderingByTime(t *testing.T) {
	s := New()
	var got []int
	s.At(5, PhaseStart, func() { got = append(got, 5) })
	s.At(1, PhaseStart, func() { got = append(got, 1) })
	s.At(3, PhaseStart, func() { got = append(got, 3) })
	if !s.Run(100) {
		t.Fatal("queue did not drain")
	}
	want := []int{1, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
	if s.Now() != 5 {
		t.Fatalf("clock = %d, want 5", s.Now())
	}
}

func TestPhaseOrderingWithinInstant(t *testing.T) {
	s := New()
	var got []string
	s.At(2, PhaseStart, func() { got = append(got, "start") })
	s.At(2, PhaseComplete, func() { got = append(got, "complete") })
	s.At(2, PhaseTransfer, func() { got = append(got, "transfer") })
	s.Run(100)
	if got[0] != "complete" || got[1] != "transfer" || got[2] != "start" {
		t.Fatalf("phase order wrong: %v", got)
	}
}

func TestSeqBreaksTies(t *testing.T) {
	s := New()
	var got []int
	for k := 0; k < 10; k++ {
		k := k
		s.At(1, PhaseStart, func() { got = append(got, k) })
	}
	s.Run(100)
	for k := 0; k < 10; k++ {
		if got[k] != k {
			t.Fatalf("insertion order not preserved: %v", got)
		}
	}
}

func TestEventsCanScheduleEvents(t *testing.T) {
	s := New()
	hits := 0
	var recur func()
	recur = func() {
		hits++
		if hits < 5 {
			s.After(2, PhaseStart, recur)
		}
	}
	s.At(0, PhaseStart, recur)
	if !s.Run(100) {
		t.Fatal("queue did not drain")
	}
	if hits != 5 || s.Now() != 8 {
		t.Fatalf("hits=%d now=%d", hits, s.Now())
	}
	if s.Processed() != 5 {
		t.Fatalf("Processed = %d", s.Processed())
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	s := New()
	s.At(5, PhaseStart, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(2, PhaseStart, func() {})
	})
	s.Run(10)
}

func TestNegativeDelayPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	s.After(-1, PhaseStart, func() {})
}

func TestRunBudget(t *testing.T) {
	s := New()
	for k := 0; k < 10; k++ {
		s.At(int64(k), PhaseStart, func() {})
	}
	if s.Run(3) {
		t.Fatal("Run reported drained with events left")
	}
	if s.Pending() != 7 {
		t.Fatalf("Pending = %d, want 7", s.Pending())
	}
	if !s.Run(100) {
		t.Fatal("second Run did not drain")
	}
}

func TestStepOnEmpty(t *testing.T) {
	s := New()
	if s.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestSameInstantSchedulingRunsBeforeLaterEvents(t *testing.T) {
	s := New()
	var got []string
	s.At(1, PhaseComplete, func() {
		got = append(got, "c")
		// Schedule at the same instant in a later phase: must run before
		// the event at time 2.
		s.At(1, PhaseStart, func() { got = append(got, "s") })
	})
	s.At(2, PhaseStart, func() { got = append(got, "later") })
	s.Run(100)
	if len(got) != 3 || got[0] != "c" || got[1] != "s" || got[2] != "later" {
		t.Fatalf("order: %v", got)
	}
}

// Cross-phase ordering at one timestamp must hold even when the events are
// scheduled from inside handlers at that same timestamp: a PhaseComplete
// handler scheduling PhaseTransfer and PhaseStart work for "now" sees it run
// in phase order, interleaved with events that were already queued.
func TestSameTimestampCrossPhaseOrdering(t *testing.T) {
	s := New()
	var got []string
	s.At(4, PhaseStart, func() { got = append(got, "start-pre") })
	s.At(4, PhaseComplete, func() {
		got = append(got, "complete")
		s.At(4, PhaseStart, func() { got = append(got, "start-post") })
		s.At(4, PhaseTransfer, func() { got = append(got, "transfer-post") })
	})
	s.At(4, PhaseTransfer, func() { got = append(got, "transfer-pre") })
	s.Run(100)
	want := []string{"complete", "transfer-pre", "transfer-post", "start-pre", "start-post"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// After(0, ...) is legal: it schedules at the current instant and still
// respects phase ordering and insertion order within the phase.
func TestAfterZeroDelay(t *testing.T) {
	s := New()
	var got []string
	s.At(3, PhaseTransfer, func() {
		got = append(got, "transfer")
		s.After(0, PhaseStart, func() { got = append(got, "start-b") })
		s.After(0, PhaseStart, func() { got = append(got, "start-c") })
	})
	s.At(3, PhaseStart, func() { got = append(got, "start-a") })
	s.Run(100)
	want := []string{"transfer", "start-a", "start-b", "start-c"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if s.Now() != 3 {
		t.Fatalf("clock = %d, want 3", s.Now())
	}
}
