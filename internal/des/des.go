// Package des is a minimal deterministic discrete-event simulation kernel:
// a clock plus a priority queue of timestamped callbacks. The work-stealing
// simulator (internal/worksteal) is built on it.
//
// Determinism: events at the same timestamp are ordered first by an explicit
// phase (so that, e.g., all job completions at time t are processed before
// steal resolutions at time t, which in turn precede job starts at time t),
// then by insertion sequence. Reruns with the same inputs produce identical
// schedules.
package des

import "container/heap"

// Phase orders events within a single timestamp.
type Phase uint8

// Phases used by the schedulers built on this kernel. Lower runs first.
const (
	// PhaseComplete is for "work finished" events.
	PhaseComplete Phase = iota
	// PhaseTransfer is for rebalancing/steal resolutions.
	PhaseTransfer
	// PhaseStart is for "begin next work item" events.
	PhaseStart
)

type event struct {
	time  int64
	phase Phase
	seq   uint64
	fn    func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(a, b int) bool {
	if h[a].time != h[b].time {
		return h[a].time < h[b].time
	}
	if h[a].phase != h[b].phase {
		return h[a].phase < h[b].phase
	}
	return h[a].seq < h[b].seq
}
func (h eventHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// Simulator owns the virtual clock and the pending event queue.
type Simulator struct {
	now    int64
	events eventHeap
	seq    uint64
	count  uint64 // processed events
}

// New returns a simulator with the clock at zero.
func New() *Simulator { return &Simulator{} }

// Now returns the current virtual time.
func (s *Simulator) Now() int64 { return s.now }

// Processed returns the number of events executed so far.
func (s *Simulator) Processed() uint64 { return s.count }

// Pending returns the number of queued events.
func (s *Simulator) Pending() int { return len(s.events) }

// At schedules fn at absolute time t with the given phase. Scheduling in the
// past panics: it would silently corrupt causality.
func (s *Simulator) At(t int64, phase Phase, fn func()) {
	if t < s.now {
		panic("des: event scheduled in the past")
	}
	heap.Push(&s.events, event{time: t, phase: phase, seq: s.seq, fn: fn})
	s.seq++
}

// After schedules fn d time units from now.
func (s *Simulator) After(d int64, phase Phase, fn func()) {
	if d < 0 {
		panic("des: negative delay")
	}
	s.At(s.now+d, phase, fn)
}

// Step executes the next event; it reports false when the queue is empty.
func (s *Simulator) Step() bool {
	if len(s.events) == 0 {
		return false
	}
	ev := heap.Pop(&s.events).(event)
	s.now = ev.time
	s.count++
	ev.fn()
	return true
}

// Run executes events until the queue is empty or maxEvents have been
// processed in this call; it reports whether the queue drained.
func (s *Simulator) Run(maxEvents uint64) bool {
	for n := uint64(0); n < maxEvents; n++ {
		if !s.Step() {
			return true
		}
	}
	return len(s.events) == 0
}
