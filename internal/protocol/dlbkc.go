package protocol

import (
	"slices"
	"sort"

	"hetlb/internal/core"
	"hetlb/internal/pairwise"
)

// DLBKC extends DLB2C to k clusters of identical machines — the paper's
// named future work. The pairwise rule generalizes naturally:
//
//   - machines of the same cluster pool their jobs and split them with a
//     size-descending greedy (LPT order; any order keeps the residual
//     imbalance within pmax, descending order tightens it in practice);
//   - machines of different clusters a and b run CLB2C on the two-cluster
//     restriction of the instance (costs of clusters a and b only).
//
// No approximation guarantee is proven for k > 2 (that is exactly what the
// paper leaves open); the repository's benchmarks measure its equilibrium
// quality against the fractional lower bound instead.
type DLBKC struct {
	// Model is the k-cluster instance; it must be the assignment's model.
	Model *core.KCluster
}

// Name implements Protocol.
func (DLBKC) Name() string { return "DLBKC" }

// Split implements Protocol.
func (p DLBKC) Split(i, j int, jobs []int) ([]int, []int) {
	a := p.Model.ClusterOf(i)
	b := p.Model.ClusterOf(j)
	if a == b {
		return p.splitSameCluster(a, i, j, jobs)
	}
	view := p.Model.PairView(a, b)
	return pairwise.SplitCLB2C(view, i, j, jobs)
}

// splitSameCluster pools the jobs and assigns each, in decreasing size
// (ties by index), to the machine with the smaller accumulated load; ties
// go to the lower-indexed machine so the kernel is symmetric.
func (p DLBKC) splitSameCluster(cluster, m1, m2 int, jobs []int) (to1, to2 []int) {
	if m1 > m2 {
		to2, to1 = p.splitSameCluster(cluster, m2, m1, jobs)
		return to1, to2
	}
	sorted := append([]int(nil), jobs...)
	sort.Slice(sorted, func(x, y int) bool {
		cx := p.Model.ClusterCost(cluster, sorted[x])
		cy := p.Model.ClusterCost(cluster, sorted[y])
		if cx != cy {
			return cx > cy
		}
		return sorted[x] < sorted[y]
	})
	var l1, l2 core.Cost
	for _, j := range sorted {
		c := p.Model.ClusterCost(cluster, j)
		if l1 <= l2 {
			to1 = append(to1, j)
			l1 += c
		} else {
			to2 = append(to2, j)
			l2 += c
		}
	}
	return to1, to2
}

// SplitScratch implements Protocol. Cross-cluster pairs reuse the views
// cached by the model at construction, so both branches are allocation-free.
func (p DLBKC) SplitScratch(s *pairwise.Scratch, i, j int, jobs []int) ([]int, []int) {
	a := p.Model.ClusterOf(i)
	b := p.Model.ClusterOf(j)
	if a == b {
		return p.splitSameClusterScratch(s, a, i, j, jobs)
	}
	view := p.Model.PairView(a, b)
	return pairwise.SplitCLB2CScratch(s, view, i, j, jobs)
}

// splitSameClusterScratch is splitSameCluster against caller-owned scratch.
func (p DLBKC) splitSameClusterScratch(s *pairwise.Scratch, cluster, m1, m2 int, jobs []int) (to1, to2 []int) {
	swapped := m1 > m2
	s.Sorted = append(s.Sorted[:0], jobs...)
	slices.SortFunc(s.Sorted, func(jx, jy int) int {
		cx := p.Model.ClusterCost(cluster, jx)
		cy := p.Model.ClusterCost(cluster, jy)
		switch {
		case cx > cy:
			return -1
		case cx < cy:
			return 1
		default:
			return jx - jy
		}
	})
	tLo, tHi := s.To1[:0], s.To2[:0]
	var lLo, lHi core.Cost
	for _, j := range s.Sorted {
		c := p.Model.ClusterCost(cluster, j)
		if lLo <= lHi {
			tLo = append(tLo, j)
			lLo += c
		} else {
			tHi = append(tHi, j)
			lHi += c
		}
	}
	s.To1, s.To2 = tLo, tHi
	if swapped {
		return tHi, tLo
	}
	return tLo, tHi
}

// Balance implements Protocol.
func (p DLBKC) Balance(a *core.Assignment, i, j int) { balance(p, a, i, j) }

// BalanceScratch implements Protocol.
func (p DLBKC) BalanceScratch(s *pairwise.Scratch, a *core.Assignment, i, j int) int {
	return balanceScratch(p, s, a, i, j)
}
