package protocol

import (
	"testing"

	"hetlb/internal/core"
	"hetlb/internal/exact"
	"hetlb/internal/rng"
	"hetlb/internal/workload"
)

// drive runs random pairwise steps of the protocol until the assignment is
// stable or maxSteps is exhausted; it reports whether stability was reached.
func drive(p Protocol, a *core.Assignment, gen *rng.RNG, maxSteps int) bool {
	m := a.Model().NumMachines()
	for s := 0; s < maxSteps; s++ {
		i := gen.Intn(m)
		j := gen.Pick(m, i)
		p.Balance(a, i, j)
		if s%25 == 24 && Stable(p, a) {
			return true
		}
	}
	return Stable(p, a)
}

func TestOJTBConvergesToOptimalOneType(t *testing.T) {
	// Lemma 4: with a single job type OJTB converges to an optimal
	// distribution. Random machine costs (typed model, k=1), random
	// initial distribution.
	gen := rng.New(1)
	for iter := 0; iter < 40; iter++ {
		m := 2 + gen.Intn(3)
		n := 1 + gen.Intn(9)
		p := make([][]core.Cost, m)
		for i := range p {
			p[i] = []core.Cost{gen.IntRange(1, 9)}
		}
		ty, err := core.NewTyped(p, make([]int, n))
		if err != nil {
			t.Fatal(err)
		}
		a := core.NewAssignment(ty)
		for j := 0; j < n; j++ {
			a.Assign(j, gen.Intn(m))
		}
		if !drive(OJTB{Model: ty}, a, gen, 4000) {
			t.Fatalf("OJTB did not stabilize (m=%d n=%d)", m, n)
		}
		opt := exact.Solve(ty).Opt
		if a.Makespan() != opt {
			t.Fatalf("OJTB stabilized at %d, OPT = %d (m=%d n=%d)", a.Makespan(), opt, m, n)
		}
	}
}

func TestOJTBMakespanNonIncreasingOneType(t *testing.T) {
	// The key step of Lemma 4: each optimal pairwise rebalancing never
	// increases the global makespan when all jobs are of one type.
	gen := rng.New(2)
	for iter := 0; iter < 30; iter++ {
		m := 2 + gen.Intn(4)
		n := 1 + gen.Intn(12)
		p := make([][]core.Cost, m)
		for i := range p {
			p[i] = []core.Cost{gen.IntRange(1, 9)}
		}
		ty, _ := core.NewTyped(p, make([]int, n))
		a := core.NewAssignment(ty)
		for j := 0; j < n; j++ {
			a.Assign(j, gen.Intn(m))
		}
		prev := a.Makespan()
		for s := 0; s < 200; s++ {
			i := gen.Intn(m)
			j := gen.Pick(m, i)
			OJTB{Model: ty}.Balance(a, i, j)
			if cur := a.Makespan(); cur > prev {
				t.Fatalf("makespan increased %d -> %d at step %d", prev, cur, s)
			} else {
				prev = cur
			}
		}
	}
}

func TestMJTBKApproximation(t *testing.T) {
	// Theorem 5: MJTB converges to a k-approximation with k job types.
	gen := rng.New(3)
	for iter := 0; iter < 25; iter++ {
		m := 2 + gen.Intn(2)
		k := 1 + gen.Intn(3)
		n := k + gen.Intn(7)
		ty := workload.UniformTyped(gen, m, n, k, 1, 9)
		a := core.NewAssignment(ty)
		for j := 0; j < n; j++ {
			a.Assign(j, gen.Intn(m))
		}
		proto := MJTB{Model: ty}
		if !drive(proto, a, gen, 6000) {
			t.Fatalf("MJTB did not stabilize (m=%d n=%d k=%d)", m, n, k)
		}
		res := exact.Solve(ty)
		if !res.Proven {
			continue
		}
		if a.Makespan() > core.Cost(k)*res.Opt {
			t.Fatalf("MJTB %d > %d·OPT (OPT=%d, m=%d n=%d)", a.Makespan(), k, res.Opt, m, n)
		}
	}
}

func TestMJTBEachTypeOptimallySpread(t *testing.T) {
	// Stronger intermediate property used by the Theorem 5 proof: at a
	// stable state, each type's sub-schedule is optimal for that type
	// alone... per pair. Verify the weaker per-pair form: for every pair
	// and type, re-balancing that type's jobs changes nothing.
	gen := rng.New(4)
	ty := workload.UniformTyped(gen, 3, 9, 2, 1, 9)
	a := core.NewAssignment(ty)
	for j := 0; j < 9; j++ {
		a.Assign(j, gen.Intn(3))
	}
	proto := MJTB{Model: ty}
	if !drive(proto, a, gen, 8000) {
		t.Skip("MJTB did not stabilize on this instance within the budget")
	}
	if i, j := UnstablePair(proto, a); i != -1 {
		t.Fatalf("stable state has unstable pair (%d, %d)", i, j)
	}
}

func TestDLB2CStableImpliesTwoApprox(t *testing.T) {
	// Theorem 7: if DLB2C reaches a stable schedule (and the hypothesis
	// p_{i,j} ≤ OPT holds), that schedule is a 2-approximation.
	gen := rng.New(5)
	checked := 0
	for iter := 0; iter < 200 && checked < 40; iter++ {
		m1 := 1 + gen.Intn(2)
		m2 := 1 + gen.Intn(2)
		n := 4 + gen.Intn(6)
		tc := workload.UniformTwoCluster(gen, m1, m2, n, 1, 10)
		a := core.RoundRobin(tc)
		proto := DLB2C{Model: tc}
		if !drive(proto, a, gen, 3000) {
			continue // non-convergence is allowed (Proposition 8)
		}
		res := exact.Solve(tc)
		if !res.Proven || !core.HypothesisHolds(tc, res.Opt) {
			continue
		}
		checked++
		if a.Makespan() > 2*res.Opt {
			t.Fatalf("stable DLB2C %d > 2·OPT (OPT=%d, m1=%d m2=%d n=%d)",
				a.Makespan(), res.Opt, m1, m2, n)
		}
	}
	if checked < 10 {
		t.Fatalf("only %d stable instances checked; test too weak", checked)
	}
}

func TestDLB2CPreservesJobs(t *testing.T) {
	gen := rng.New(6)
	tc := workload.UniformTwoCluster(gen, 3, 2, 30, 1, 100)
	a := core.RoundRobin(tc)
	proto := DLB2C{Model: tc}
	for s := 0; s < 500; s++ {
		i := gen.Intn(5)
		j := gen.Pick(5, i)
		proto.Balance(a, i, j)
	}
	if !a.Complete() {
		t.Fatal("DLB2C lost jobs")
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSameCostReachesNearBalance(t *testing.T) {
	// Homogeneous cluster: after enough random pairwise steps the
	// makespan should be within the Theorem 10 style bound of the mean —
	// in practice much closer (Figure 2); we assert the loose bound.
	gen := rng.New(7)
	id := workload.UniformIdentical(gen, 8, 64, 1, 100)
	a := core.AllOnMachine(id, 0)
	proto := SameCost{Model: id}
	for s := 0; s < 4000; s++ {
		i := gen.Intn(8)
		j := gen.Pick(8, i)
		proto.Balance(a, i, j)
	}
	var sum, pmax core.Cost
	for j := 0; j < 64; j++ {
		s := id.Size(j)
		sum += s
		if s > pmax {
			pmax = s
		}
	}
	bound := sum/8 + (8-1)*pmax/2 + 1
	if a.Makespan() > bound {
		t.Fatalf("makespan %d exceeds Theorem 10 bound %d", a.Makespan(), bound)
	}
}

func TestStableDetectsFixedPoint(t *testing.T) {
	// A single machine holding everything with a second empty identical
	// machine is unstable; after one balancing it becomes stable for m=2.
	id, _ := core.NewIdentical(2, []core.Cost{4, 4})
	a := core.AllOnMachine(id, 0)
	if Stable(SameCost{Model: id}, a) {
		t.Fatal("4+4 on one machine reported stable")
	}
	SameCost{Model: id}.Balance(a, 0, 1)
	if !Stable(SameCost{Model: id}, a) {
		t.Fatalf("balanced 4|4 not stable: %s", a)
	}
	if i, j := UnstablePair(SameCost{Model: id}, a); i != -1 || j != -1 {
		t.Fatal("UnstablePair found a pair in a stable state")
	}
}

func TestCycleInstanceNeverConverges(t *testing.T) {
	// Proposition 8: the workload.CycleInstance admits no reachable
	// stable schedule.
	tc, start := workload.CycleInstance()
	r := Explore(DLB2C{Model: tc}, start, 10000)
	if r.Truncated {
		t.Fatal("exploration truncated; raise the cap")
	}
	if !r.ProvesNonConvergence() {
		t.Fatalf("reachable=%d stable=%d: instance no longer proves Proposition 8",
			r.States, r.StableStates)
	}
	cyc := FindCycle(DLB2C{Model: tc}, start, 10000)
	if len(cyc) < 3 {
		t.Fatalf("no explicit cycle found (len=%d)", len(cyc))
	}
	if !cyc[0].Equal(cyc[len(cyc)-1]) {
		t.Fatal("cycle does not close")
	}
	// Each consecutive pair must be one balancing step apart.
	m := tc.NumMachines()
	for k := 0; k+1 < len(cyc); k++ {
		found := false
		for i := 0; i < m && !found; i++ {
			for j := i + 1; j < m && !found; j++ {
				b := cyc[k].Clone()
				DLB2C{Model: tc}.Balance(b, i, j)
				found = b.Equal(cyc[k+1])
			}
		}
		if !found {
			t.Fatalf("cycle edge %d is not a single balancing step", k)
		}
	}
}

func TestExploreCountsStableStates(t *testing.T) {
	// Tiny convergent system: reachable set must contain at least one
	// stable state.
	id, _ := core.NewIdentical(2, []core.Cost{2, 2})
	a := core.AllOnMachine(id, 0)
	r := Explore(SameCost{Model: id}, a, 100)
	if r.Truncated {
		t.Fatal("tiny exploration truncated")
	}
	if r.StableStates == 0 {
		t.Fatal("no stable state found for a trivially convergent system")
	}
	if r.MinMakespan != 2 || r.MaxMakespan != 4 {
		t.Fatalf("makespan range [%d, %d], want [2, 4]", r.MinMakespan, r.MaxMakespan)
	}
}

func TestExploreTruncation(t *testing.T) {
	gen := rng.New(8)
	tc := workload.UniformTwoCluster(gen, 3, 3, 16, 1, 50)
	a := core.RoundRobin(tc)
	r := Explore(DLB2C{Model: tc}, a, 5)
	if !r.Truncated {
		t.Fatal("expected truncation with a 5-state cap")
	}
	if r.States > 5 {
		t.Fatalf("visited %d states with cap 5", r.States)
	}
}

func TestProtocolNames(t *testing.T) {
	tc, _ := workload.CycleInstance()
	names := map[string]bool{
		OJTB{}.Name():           true,
		MJTB{}.Name():           true,
		DLB2C{Model: tc}.Name(): true,
		SameCost{}.Name():       true,
	}
	if len(names) != 4 {
		t.Fatal("protocol names are not distinct")
	}
}

func BenchmarkDLB2CStep(b *testing.B) {
	gen := rng.New(9)
	tc := workload.UniformTwoCluster(gen, 64, 32, 768, 1, 1000)
	a := core.RoundRobin(tc)
	proto := DLB2C{Model: tc}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m1 := gen.Intn(96)
		m2 := gen.Pick(96, m1)
		proto.Balance(a, m1, m2)
	}
}

func BenchmarkStableCheck(b *testing.B) {
	gen := rng.New(10)
	tc := workload.UniformTwoCluster(gen, 8, 4, 96, 1, 1000)
	a := core.RoundRobin(tc)
	proto := DLB2C{Model: tc}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Stable(proto, a)
	}
}

func TestStableDLB2CSatisfiesEquationThree(t *testing.T) {
	// Deep validation of the Theorem 7 proof structure: at a stable
	// schedule, Equation (3) of the paper holds — every job placed on
	// cluster 0 has a cost ratio p0/p1 at most that of every job placed
	// on cluster 1 (otherwise some cross-cluster CLB2C exchange would
	// swap them).
	gen := rng.New(31)
	verified := 0
	for iter := 0; iter < 300 && verified < 25; iter++ {
		tc := workload.UniformTwoCluster(gen, 1+gen.Intn(2), 1+gen.Intn(2), 4+gen.Intn(8), 1, 12)
		a := core.RoundRobin(tc)
		proto := DLB2C{Model: tc}
		if !drive(proto, a, gen, 3000) {
			continue
		}
		verified++
		// Collect jobs by cluster of their machine.
		var on0, on1 []int
		for j := 0; j < tc.NumJobs(); j++ {
			if tc.ClusterOf(a.MachineOf(j)) == 0 {
				on0 = append(on0, j)
			} else {
				on1 = append(on1, j)
			}
		}
		for _, j0 := range on0 {
			for _, j1 := range on1 {
				// p0(j0)/p1(j0) ≤ p0(j1)/p1(j1), cross-multiplied.
				lhs := tc.ClusterCost(0, j0) * tc.ClusterCost(1, j1)
				rhs := tc.ClusterCost(0, j1) * tc.ClusterCost(1, j0)
				if lhs > rhs {
					t.Fatalf("Equation 3 violated at a stable state: jobs %d (cluster 0) and %d (cluster 1)\n%s",
						j0, j1, a)
				}
			}
		}
	}
	if verified < 5 {
		t.Fatalf("only %d stable schedules verified", verified)
	}
}

func TestStableDLB2CWithinClusterImbalanceBounded(t *testing.T) {
	// Second structural property of the Theorem 7 machinery: at a stable
	// state, same-cluster machines differ by at most the largest job on
	// the more loaded machine (otherwise Greedy Load Balancing would
	// move one).
	gen := rng.New(32)
	verified := 0
	for iter := 0; iter < 300 && verified < 15; iter++ {
		tc := workload.UniformTwoCluster(gen, 2+gen.Intn(2), 1, 6+gen.Intn(6), 1, 12)
		a := core.RoundRobin(tc)
		proto := DLB2C{Model: tc}
		if !drive(proto, a, gen, 4000) {
			continue
		}
		verified++
		m := tc.NumMachines()
		for i := 0; i < m; i++ {
			for k := i + 1; k < m; k++ {
				if tc.ClusterOf(i) != tc.ClusterOf(k) {
					continue
				}
				hi, lo := i, k
				if a.Load(lo) > a.Load(hi) {
					hi, lo = lo, hi
				}
				d := a.Load(hi) - a.Load(lo)
				var pmax core.Cost
				for j := 0; j < tc.NumJobs(); j++ {
					if a.MachineOf(j) == hi {
						if c := tc.Cost(hi, j); c > pmax {
							pmax = c
						}
					}
				}
				if d > pmax {
					t.Fatalf("stable same-cluster imbalance %d exceeds heavy machine's pmax %d\n%s",
						d, pmax, a)
				}
			}
		}
	}
	if verified < 5 {
		t.Fatalf("only %d stable schedules verified", verified)
	}
}
