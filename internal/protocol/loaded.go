package protocol

import (
	"sort"

	"hetlb/internal/core"
	"hetlb/internal/pairwise"
)

// LoadedSplitter is implemented by protocols whose kernels can account for
// pre-existing non-movable load on each machine — in the dynamic execution
// simulator this is the remaining time of the currently running,
// non-preemptible job. SplitLoaded must reduce to Split when both bases are
// zero.
type LoadedSplitter interface {
	SplitLoaded(i, j int, baseI, baseJ core.Cost, jobs []int) (toI, toJ []int)
}

// SplitLoaded implements LoadedSplitter for OJTB.
func (p OJTB) SplitLoaded(i, j int, baseI, baseJ core.Cost, jobs []int) ([]int, []int) {
	return pairwise.SplitBasicGreedyLoaded(p.Model, i, j, baseI, baseJ, jobs)
}

// SplitLoaded implements LoadedSplitter for SameCost.
func (p SameCost) SplitLoaded(i, j int, baseI, baseJ core.Cost, jobs []int) ([]int, []int) {
	return pairwise.SplitSameCostLoaded(p.Model, i, j, baseI, baseJ, jobs)
}

// SplitLoaded implements LoadedSplitter for MJTB: each type is balanced
// with the loads accumulated by the previous types plus the bases.
func (p MJTB) SplitLoaded(i, j int, baseI, baseJ core.Cost, jobs []int) ([]int, []int) {
	byType := make([][]int, p.Model.NumTypes())
	for _, job := range jobs {
		t := p.Model.TypeOf(job)
		byType[t] = append(byType[t], job)
	}
	var toI, toJ []int
	lI, lJ := baseI, baseJ
	for t := 0; t < p.Model.NumTypes(); t++ {
		if len(byType[t]) == 0 {
			continue
		}
		a, b := pairwise.SplitBasicGreedyLoaded(p.Model, i, j, lI, lJ, byType[t])
		for _, job := range a {
			lI += p.Model.Cost(i, job)
		}
		for _, job := range b {
			lJ += p.Model.Cost(j, job)
		}
		toI = append(toI, a...)
		toJ = append(toJ, b...)
	}
	return toI, toJ
}

// SplitLoaded implements LoadedSplitter for DLB2C.
func (p DLB2C) SplitLoaded(i, j int, baseI, baseJ core.Cost, jobs []int) ([]int, []int) {
	if p.Model.ClusterOf(i) == p.Model.ClusterOf(j) {
		return pairwise.SplitGreedyLoadBalancingLoaded(p.Model, i, j, baseI, baseJ, jobs)
	}
	return pairwise.SplitCLB2CLoaded(p.Model, i, j, baseI, baseJ, jobs)
}

// SplitLoaded implements LoadedSplitter for DLBKC.
func (p DLBKC) SplitLoaded(i, j int, baseI, baseJ core.Cost, jobs []int) ([]int, []int) {
	a := p.Model.ClusterOf(i)
	b := p.Model.ClusterOf(j)
	if a == b {
		return p.splitSameClusterLoaded(a, i, j, baseI, baseJ, jobs)
	}
	view := p.Model.PairView(a, b)
	return pairwise.SplitCLB2CLoaded(view, i, j, baseI, baseJ, jobs)
}

func (p DLBKC) splitSameClusterLoaded(cluster, m1, m2 int, base1, base2 core.Cost, jobs []int) (to1, to2 []int) {
	if m1 > m2 {
		to2, to1 = p.splitSameClusterLoaded(cluster, m2, m1, base2, base1, jobs)
		return to1, to2
	}
	sorted := append([]int(nil), jobs...)
	sort.Slice(sorted, func(x, y int) bool {
		cx := p.Model.ClusterCost(cluster, sorted[x])
		cy := p.Model.ClusterCost(cluster, sorted[y])
		if cx != cy {
			return cx > cy
		}
		return sorted[x] < sorted[y]
	})
	l1, l2 := base1, base2
	for _, j := range sorted {
		c := p.Model.ClusterCost(cluster, j)
		if l1 <= l2 {
			to1 = append(to1, j)
			l1 += c
		} else {
			to2 = append(to2, j)
			l2 += c
		}
	}
	return to1, to2
}

var (
	_ LoadedSplitter = OJTB{}
	_ LoadedSplitter = SameCost{}
	_ LoadedSplitter = MJTB{}
	_ LoadedSplitter = DLB2C{}
	_ LoadedSplitter = DLBKC{}
)
