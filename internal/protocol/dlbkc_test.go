package protocol

import (
	"testing"

	"hetlb/internal/core"
	"hetlb/internal/exact"
	"hetlb/internal/lp"
	"hetlb/internal/rng"
)

func randomKCluster(gen *rng.RNG, k, perCluster, n int, hi core.Cost) *core.KCluster {
	sizes := make([]int, k)
	p := make([][]core.Cost, k)
	for c := 0; c < k; c++ {
		sizes[c] = perCluster
		p[c] = make([]core.Cost, n)
		for j := range p[c] {
			p[c][j] = gen.IntRange(1, hi)
		}
	}
	kc, err := core.NewKCluster(sizes, p)
	if err != nil {
		panic(err)
	}
	return kc
}

func TestDLBKCPreservesJobs(t *testing.T) {
	gen := rng.New(1)
	kc := randomKCluster(gen, 3, 2, 30, 50)
	a := core.RoundRobin(kc)
	proto := DLBKC{Model: kc}
	for s := 0; s < 400; s++ {
		i := gen.Intn(6)
		j := gen.Pick(6, i)
		proto.Balance(a, i, j)
	}
	if !a.Complete() {
		t.Fatal("jobs lost")
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDLBKCMatchesDLB2CWithTwoClusters(t *testing.T) {
	// With k=2, DLBKC's cross-cluster arm must equal DLB2C's (both are
	// pairwise CLB2C on the same restriction).
	gen := rng.New(2)
	for iter := 0; iter < 30; iter++ {
		kc := randomKCluster(gen, 2, 2, 12, 20)
		tc, err := kc.TwoClusterOf()
		if err != nil {
			t.Fatal(err)
		}
		aK, _ := core.FromMachineOf(kc, []int{0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3})
		aT, _ := core.FromMachineOf(tc, []int{0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3})
		// Cross-cluster pair (machine 0 in cluster 0, machine 2 in
		// cluster 1).
		DLBKC{Model: kc}.Balance(aK, 0, 2)
		DLB2C{Model: tc}.Balance(aT, 0, 2)
		for j := 0; j < 12; j++ {
			if aK.MachineOf(j) != aT.MachineOf(j) {
				t.Fatalf("iter %d: cross-cluster splits diverge at job %d:\n%s\n%s",
					iter, j, aK, aT)
			}
		}
	}
}

func TestDLBKCEquilibriumNearLPBound(t *testing.T) {
	// The extension has no proven ratio (the paper's open problem); check
	// empirically that the equilibrium stays within 2× the LP fractional
	// bound on random 3- and 4-cluster systems — mirroring the Theorem 7
	// quality that holds for k=2.
	gen := rng.New(3)
	for _, k := range []int{3, 4} {
		kc := randomKCluster(gen, k, 4, 32*k, 100)
		a := core.RoundRobin(kc)
		proto := DLBKC{Model: kc}
		m := kc.NumMachines()
		for s := 0; s < 40*m; s++ {
			i := gen.Intn(m)
			j := gen.Pick(m, i)
			proto.Balance(a, i, j)
		}
		lb, err := lp.FractionalMakespanKCluster(kc)
		if err != nil {
			t.Fatal(err)
		}
		if got := float64(a.Makespan()); got > 2*lb {
			t.Fatalf("k=%d: equilibrium %v > 2×LP bound %v", k, got, lb)
		}
	}
}

func TestDLBKCSameClusterSymmetric(t *testing.T) {
	gen := rng.New(4)
	kc := randomKCluster(gen, 2, 3, 18, 30)
	proto := DLBKC{Model: kc}
	jobs := []int{0, 3, 5, 7, 11, 16}
	to1a, to2a := proto.Split(0, 2, jobs) // both in cluster 0
	to2b, to1b := proto.Split(2, 0, jobs)
	if len(to1a) != len(to1b) || len(to2a) != len(to2b) {
		t.Fatal("same-cluster split depends on argument order")
	}
	for k := range to1a {
		if to1a[k] != to1b[k] {
			t.Fatal("same-cluster split depends on argument order")
		}
	}
}

func TestDLBKCStableSmallOptimal(t *testing.T) {
	// A tiny instance with perfectly biased jobs must stabilize at the
	// optimum: each job on its best cluster.
	kc, err := core.NewKCluster([]int{1, 1, 1}, [][]core.Cost{
		{1, 50, 50},
		{50, 1, 50},
		{50, 50, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	a := core.AllOnMachine(kc, 0)
	gen := rng.New(5)
	proto := DLBKC{Model: kc}
	for s := 0; s < 200; s++ {
		i := gen.Intn(3)
		j := gen.Pick(3, i)
		proto.Balance(a, i, j)
	}
	opt := exact.Solve(kc).Opt
	if a.Makespan() != opt {
		t.Fatalf("DLBKC reached %d, OPT=%d: %s", a.Makespan(), opt, a)
	}
	if !Stable(proto, a) {
		t.Fatal("optimal biased placement not stable")
	}
}

func BenchmarkDLBKCStep4Clusters(b *testing.B) {
	gen := rng.New(6)
	kc := randomKCluster(gen, 4, 24, 768, 1000)
	a := core.RoundRobin(kc)
	proto := DLBKC{Model: kc}
	m := kc.NumMachines()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := gen.Intn(m)
		y := gen.Pick(m, x)
		proto.Balance(a, x, y)
	}
}
