package protocol

import (
	"slices"
	"testing"

	"hetlb/internal/core"
	"hetlb/internal/pairwise"
	"hetlb/internal/rng"
	"hetlb/internal/workload"
)

// scratchCase pairs a protocol with a random instance of its model family.
type scratchCase struct {
	name  string
	model core.CostModel
	proto Protocol
}

// scratchCases builds one random instance per protocol, covering every
// Protocol implementation in the package.
func scratchCases(seed uint64) []scratchCase {
	gen := rng.New(seed)
	m := 4 + gen.Intn(6)
	n := 3*m + gen.Intn(3*m)
	id := workload.UniformIdentical(gen, m, n, 1, 40)
	rel := workload.UniformRelated(gen, m, n, 6, 1, 40)
	ty := workload.UniformTyped(gen, m, n, 1+gen.Intn(4), 1, 40)
	m1 := 1 + m/2
	tc := workload.UniformTwoCluster(gen, m1, m-m1, n, 1, 40)
	k := 2 + gen.Intn(3)
	kc := randomKCluster(gen, k, 1+m/k, n, 40)
	return []scratchCase{
		{"SameCost", id, SameCost{Model: id}},
		{"OJTB", rel, OJTB{Model: rel}},
		{"MJTB", ty, MJTB{Model: ty}},
		{"DLB2C", tc, DLB2C{Model: tc}},
		{"DLBKC", kc, DLBKC{Model: kc}},
		{"SameCostMinMove", id, SameCostMinMove{Model: id}},
		{"DLB2CMinMove", tc, DLB2CMinMove{Model: tc}},
	}
}

// TestSplitScratchMatchesSplit checks that for every protocol and random
// pooled job sets, SplitScratch is bit-identical to Split — including with a
// dirty scratch carried over between calls and with jobs aliasing s.Union.
func TestSplitScratchMatchesSplit(t *testing.T) {
	var s pairwise.Scratch // shared across all cases: leftovers must not leak
	for seed := uint64(1); seed <= 20; seed++ {
		gen := rng.New(seed * 7919)
		for _, c := range scratchCases(seed) {
			m := c.model.NumMachines()
			n := c.model.NumJobs()
			for trial := 0; trial < 25; trial++ {
				i := gen.Intn(m)
				j := gen.Pick(m, i)
				var jobs []int
				for job := 0; job < n; job++ {
					if gen.Intn(3) > 0 {
						jobs = append(jobs, job)
					}
				}
				wantI, wantJ := c.proto.Split(i, j, jobs)
				s.Union = append(s.Union[:0], jobs...)
				gotI, gotJ := c.proto.SplitScratch(&s, i, j, s.Union)
				if !slices.Equal(wantI, gotI) || !slices.Equal(wantJ, gotJ) {
					t.Fatalf("%s seed=%d pair=(%d,%d): SplitScratch (%v, %v) != Split (%v, %v) for jobs %v",
						c.name, seed, i, j, gotI, gotJ, wantI, wantJ, jobs)
				}
			}
		}
	}
}

// TestBalanceScratchMatchesBalance drives two copies of the same start
// through the same pair sequence — one with Balance, one with BalanceScratch
// — and checks that the assignments stay identical and that the returned
// migration count matches the observed machine changes.
func TestBalanceScratchMatchesBalance(t *testing.T) {
	var s pairwise.Scratch
	for seed := uint64(1); seed <= 12; seed++ {
		for _, c := range scratchCases(seed) {
			gen := rng.New(seed*104729 + 11)
			m := c.model.NumMachines()
			n := c.model.NumJobs()
			ref := core.NewAssignment(c.model)
			for job := 0; job < n; job++ {
				ref.Assign(job, gen.Intn(m))
			}
			idx := ref.Clone()
			for step := 0; step < 60; step++ {
				i := gen.Intn(m)
				j := gen.Pick(m, i)
				before := snapshot(idx, i, j)
				c.proto.Balance(ref, i, j)
				moved := c.proto.BalanceScratch(&s, idx, i, j)
				if !idx.Equal(ref) {
					t.Fatalf("%s seed=%d step=%d pair=(%d,%d): BalanceScratch diverged from Balance",
						c.name, seed, step, i, j)
				}
				if want := diffs(idx, before); moved != want {
					t.Fatalf("%s seed=%d step=%d pair=(%d,%d): BalanceScratch reported %d moves, observed %d",
						c.name, seed, step, i, j, moved, want)
				}
				if err := idx.Validate(); err != nil {
					t.Fatalf("%s seed=%d step=%d: invalid after BalanceScratch: %v", c.name, seed, step, err)
				}
			}
		}
	}
}

// TestBalanceScratchStableNoMoves checks the migration counter at a fixed
// point: once the pair is stable, BalanceScratch must report zero moves.
func TestBalanceScratchStableNoMoves(t *testing.T) {
	var s pairwise.Scratch
	for _, c := range scratchCases(3) {
		gen := rng.New(42)
		m := c.model.NumMachines()
		a := core.RoundRobin(c.model)
		i := gen.Intn(m)
		j := gen.Pick(m, i)
		c.proto.Balance(a, i, j)
		if moved := c.proto.BalanceScratch(&s, a, i, j); moved != 0 {
			t.Errorf("%s: repeated step on pair (%d,%d) reported %d moves, want 0", c.name, i, j, moved)
		}
	}
}
