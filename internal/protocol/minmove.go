package protocol

import (
	"slices"

	"hetlb/internal/core"
	"hetlb/internal/pairwise"
)

// The paper's conclusion lists "minimizing the number of tasks exchanged
// (or network usage)" as future work: the kernels of Algorithms 2/5/6
// rebuild the pair's partition from scratch, so two machines that are
// already nearly balanced may still swap many job identities. The MinMove
// variants below reach the same imbalance class (pairwise imbalance at most
// the largest pooled job) while only *transferring* jobs from the heavier
// to the lighter machine — no gratuitous identity churn.
//
// Trade-off: the within-cluster ratio ordering of Algorithm 6 (needed by
// the Theorem 7 proof machinery) is not maintained, so the 2-approximation
// argument for stable states no longer applies verbatim; the ablation
// benchmarks quantify what this costs in schedule quality against what it
// saves in movement.

// PlacedSplitter is implemented by protocols that exploit the *current*
// placement of the pooled jobs to minimize migrations. Engines use it in
// preference to Split when available.
type PlacedSplitter interface {
	// SplitPlaced partitions the pair's jobs given their current sides.
	// onI and onJ are in increasing job order and must not be mutated.
	SplitPlaced(i, j int, onI, onJ []int) (toI, toJ []int)
}

// transferSameCost moves jobs from the heavier side to the lighter side —
// choosing at each step the movable job that best halves the imbalance —
// until no single move reduces it. Both machines must price jobs
// identically (same cluster / identical machines). The final imbalance is
// at most the largest job on the heavier side, the same class as the
// rebuild kernels.
func transferSameCost(cost func(job int) core.Cost, onHeavy, onLight []int) (heavy, light []int) {
	return transferSameCostInPlace(cost, append([]int(nil), onHeavy...), append([]int(nil), onLight...))
}

// transferSameCostInPlace is transferSameCost on caller-owned slices: it
// mutates (and may grow) its arguments and returns them, possibly with their
// roles swapped. The scratch balancing path feeds it scratch-backed copies.
func transferSameCostInPlace(cost func(job int) core.Cost, heavy, light []int) ([]int, []int) {
	var lh, ll core.Cost
	for _, j := range heavy {
		lh += cost(j)
	}
	for _, j := range light {
		ll += cost(j)
	}
	for {
		if lh < ll {
			heavy, light = light, heavy
			lh, ll = ll, lh
		}
		d := lh - ll
		// Pick the movable job (size strictly between 0 and d) whose
		// size is closest to d/2: moving s changes the imbalance to
		// |d − 2s|.
		best := -1
		var bestGap core.Cost = 1 << 62
		for k, j := range heavy {
			s := cost(j)
			if s <= 0 || s >= d {
				continue
			}
			gap := d - 2*s
			if gap < 0 {
				gap = -gap
			}
			if gap < bestGap || (gap == bestGap && best >= 0 && heavy[k] < heavy[best]) {
				best, bestGap = k, gap
			}
		}
		if best == -1 {
			break
		}
		j := heavy[best]
		heavy = append(heavy[:best], heavy[best+1:]...)
		light = append(light, j)
		lh -= cost(j)
		ll += cost(j)
	}
	slices.Sort(heavy)
	slices.Sort(light)
	return heavy, light
}

// splitPlacedScratch is the scratch form of the same-cost placed split: it
// copies the sides into the To buffers, transfers in place, and leaves the
// (possibly grown) buffers on the scratch.
func splitPlacedScratch(s *pairwise.Scratch, cost func(job int) core.Cost, onI, onJ []int) (toI, toJ []int) {
	s.To1 = append(s.To1[:0], onI...)
	s.To2 = append(s.To2[:0], onJ...)
	var lI, lJ core.Cost
	for _, job := range s.To1 {
		lI += cost(job)
	}
	for _, job := range s.To2 {
		lJ += cost(job)
	}
	if lI >= lJ {
		toI, toJ = transferSameCostInPlace(cost, s.To1, s.To2)
	} else {
		toJ, toI = transferSameCostInPlace(cost, s.To2, s.To1)
	}
	s.To1, s.To2 = toI, toJ
	return toI, toJ
}

// SameCostMinMove is the movement-minimizing variant of SameCost.
type SameCostMinMove struct {
	// Model prices the jobs.
	Model core.CostModel
}

// Name implements Protocol.
func (SameCostMinMove) Name() string { return "SameCostMinMove" }

// Split implements Protocol (placement unknown: fall back to the rebuild
// kernel).
func (p SameCostMinMove) Split(i, j int, jobs []int) ([]int, []int) {
	return pairwise.SplitSameCost(p.Model, i, j, jobs)
}

// SplitScratch implements Protocol (placement unknown: fall back to the
// rebuild kernel).
func (p SameCostMinMove) SplitScratch(s *pairwise.Scratch, i, j int, jobs []int) ([]int, []int) {
	s.To1, s.To2 = pairwise.AppendSplitSameCost(p.Model, i, j, jobs, s.To1[:0], s.To2[:0])
	return s.To1, s.To2
}

// Balance implements Protocol.
func (p SameCostMinMove) Balance(a *core.Assignment, i, j int) {
	onI, onJ := placedSides(a, i, j)
	toI, toJ := p.SplitPlaced(i, j, onI, onJ)
	pairwise.Apply(a, i, j, toI, toJ)
}

// BalanceScratch implements Protocol. The pair's sides come from the
// assignment's job index instead of an O(n) scan.
func (p SameCostMinMove) BalanceScratch(s *pairwise.Scratch, a *core.Assignment, i, j int) int {
	s.Side1 = a.AppendJobs(s.Side1[:0], i)
	s.Side2 = a.AppendJobs(s.Side2[:0], j)
	cost := func(job int) core.Cost { return p.Model.Cost(i, job) }
	toI, toJ := splitPlacedScratch(s, cost, s.Side1, s.Side2)
	return pairwise.ApplyCount(a, i, j, toI, toJ)
}

// SplitPlaced implements PlacedSplitter.
func (p SameCostMinMove) SplitPlaced(i, j int, onI, onJ []int) ([]int, []int) {
	cost := func(job int) core.Cost { return p.Model.Cost(i, job) }
	var lI, lJ core.Cost
	for _, job := range onI {
		lI += cost(job)
	}
	for _, job := range onJ {
		lJ += cost(job)
	}
	if lI >= lJ {
		return transferSameCost(cost, onI, onJ)
	}
	toJ, toI := transferSameCost(cost, onJ, onI)
	return toI, toJ
}

// DLB2CMinMove is DLB2C with movement-minimizing same-cluster balancing;
// cross-cluster pairs still run CLB2C (affinity corrections inherently
// require movement).
type DLB2CMinMove struct {
	// Model is the clustered instance.
	Model core.Clustered
}

// Name implements Protocol.
func (DLB2CMinMove) Name() string { return "DLB2CMinMove" }

// Split implements Protocol.
func (p DLB2CMinMove) Split(i, j int, jobs []int) ([]int, []int) {
	return DLB2C{Model: p.Model}.Split(i, j, jobs)
}

// SplitScratch implements Protocol.
func (p DLB2CMinMove) SplitScratch(s *pairwise.Scratch, i, j int, jobs []int) ([]int, []int) {
	return DLB2C{Model: p.Model}.SplitScratch(s, i, j, jobs)
}

// Balance implements Protocol.
func (p DLB2CMinMove) Balance(a *core.Assignment, i, j int) {
	onI, onJ := placedSides(a, i, j)
	toI, toJ := p.SplitPlaced(i, j, onI, onJ)
	pairwise.Apply(a, i, j, toI, toJ)
}

// BalanceScratch implements Protocol.
func (p DLB2CMinMove) BalanceScratch(s *pairwise.Scratch, a *core.Assignment, i, j int) int {
	if p.Model.ClusterOf(i) != p.Model.ClusterOf(j) {
		s.Union = pairwise.AppendUnion(s.Union[:0], a, i, j)
		toI, toJ := pairwise.SplitCLB2CScratch(s, p.Model, i, j, s.Union)
		return pairwise.ApplyCount(a, i, j, toI, toJ)
	}
	s.Side1 = a.AppendJobs(s.Side1[:0], i)
	s.Side2 = a.AppendJobs(s.Side2[:0], j)
	cluster := p.Model.ClusterOf(i)
	cost := func(job int) core.Cost { return p.Model.ClusterCost(cluster, job) }
	toI, toJ := splitPlacedScratch(s, cost, s.Side1, s.Side2)
	return pairwise.ApplyCount(a, i, j, toI, toJ)
}

// SplitPlaced implements PlacedSplitter.
func (p DLB2CMinMove) SplitPlaced(i, j int, onI, onJ []int) ([]int, []int) {
	if p.Model.ClusterOf(i) != p.Model.ClusterOf(j) {
		union := mergeSortedInts(onI, onJ)
		return pairwise.SplitCLB2C(p.Model, i, j, union)
	}
	cluster := p.Model.ClusterOf(i)
	cost := func(job int) core.Cost { return p.Model.ClusterCost(cluster, job) }
	var lI, lJ core.Cost
	for _, job := range onI {
		lI += cost(job)
	}
	for _, job := range onJ {
		lJ += cost(job)
	}
	if lI >= lJ {
		return transferSameCost(cost, onI, onJ)
	}
	toJ, toI := transferSameCost(cost, onJ, onI)
	return toI, toJ
}

// placedSides returns the pair's jobs split by current machine, each in
// increasing job order.
func placedSides(a *core.Assignment, i, j int) (onI, onJ []int) {
	for job := 0; job < a.Model().NumJobs(); job++ {
		switch a.MachineOf(job) {
		case i:
			onI = append(onI, job)
		case j:
			onJ = append(onJ, job)
		}
	}
	return onI, onJ
}

func mergeSortedInts(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	x, y := 0, 0
	for x < len(a) && y < len(b) {
		if a[x] < b[y] {
			out = append(out, a[x])
			x++
		} else {
			out = append(out, b[y])
			y++
		}
	}
	out = append(out, a[x:]...)
	return append(out, b[y:]...)
}

var (
	_ Protocol       = SameCostMinMove{}
	_ Protocol       = DLB2CMinMove{}
	_ PlacedSplitter = SameCostMinMove{}
	_ PlacedSplitter = DLB2CMinMove{}
)
