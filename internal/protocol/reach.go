package protocol

import "hetlb/internal/core"

// Reachability describes the set of schedules reachable from an initial
// assignment under every possible sequence of pairwise balancing steps.
// It is the object used to exhibit Proposition 8 (DLB2C may never converge):
// if the reachable set contains no stable schedule, then any infinite run of
// the protocol changes state infinitely often and is trapped in a cycle of
// the (finite) reachable set.
type Reachability struct {
	// States is the number of distinct schedules reached.
	States int
	// StableStates is the number of reachable schedules that are fixed
	// points of the protocol.
	StableStates int
	// Truncated is true if exploration stopped at the state cap before
	// exhausting the reachable set; the other fields are then lower
	// bounds.
	Truncated bool
	// Representatives holds one assignment per reachable state, in BFS
	// order from the initial state (capped at the exploration limit).
	Representatives []*core.Assignment
	// MinMakespan and MaxMakespan are the extremes over reached states.
	MinMakespan, MaxMakespan core.Cost
}

// Explore runs a breadth-first search over schedules: from each state, every
// machine pair is balanced on a clone and new states are enqueued. maxStates
// caps the exploration.
func Explore(p Protocol, start *core.Assignment, maxStates int) *Reachability {
	m := start.Model().NumMachines()
	seen := map[string]bool{start.Signature(): true}
	queue := []*core.Assignment{start.Clone()}
	res := &Reachability{
		MinMakespan: start.Makespan(),
		MaxMakespan: start.Makespan(),
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		res.States++
		res.Representatives = append(res.Representatives, cur)
		if cm := cur.Makespan(); cm < res.MinMakespan {
			res.MinMakespan = cm
		} else if cm > res.MaxMakespan {
			res.MaxMakespan = cm
		}
		stable := true
		for i := 0; i < m; i++ {
			for j := i + 1; j < m; j++ {
				next := cur.Clone()
				p.Balance(next, i, j)
				if next.Equal(cur) {
					continue
				}
				stable = false
				sig := next.Signature()
				if seen[sig] {
					continue
				}
				if len(seen) >= maxStates {
					res.Truncated = true
					continue
				}
				seen[sig] = true
				queue = append(queue, next)
			}
		}
		if stable {
			res.StableStates++
		}
	}
	return res
}

// ProvesNonConvergence reports whether the exploration demonstrates
// Proposition 8: the reachable set was fully enumerated and contains no
// stable schedule, so the protocol can never converge from the initial
// state.
func (r *Reachability) ProvesNonConvergence() bool {
	return !r.Truncated && r.StableStates == 0 && r.States > 0
}

// FindCycle extracts an explicit cycle of schedules: a sequence
// S_0 → S_1 → ... → S_k = S_0 of distinct states (k ≥ 2) where each arrow is
// one pairwise balancing step. It returns nil if none exists within the
// explored states (e.g. when a stable state is reachable from everywhere).
func FindCycle(p Protocol, start *core.Assignment, maxStates int) []*core.Assignment {
	r := Explore(p, start, maxStates)
	m := start.Model().NumMachines()
	// Index states by signature.
	index := make(map[string]int, len(r.Representatives))
	for k, s := range r.Representatives {
		index[s.Signature()] = k
	}
	// Build the successor lists (state-changing steps only).
	adj := make([][]int, len(r.Representatives))
	for k, s := range r.Representatives {
		for i := 0; i < m; i++ {
			for j := i + 1; j < m; j++ {
				next := s.Clone()
				p.Balance(next, i, j)
				if next.Equal(s) {
					continue
				}
				if t, ok := index[next.Signature()]; ok {
					adj[k] = append(adj[k], t)
				}
			}
		}
	}
	// DFS for a back edge; reconstruct the cycle from the DFS stack.
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make([]int, len(adj))
	var stack []int
	var cycle []int
	var dfs func(v int) bool
	dfs = func(v int) bool {
		color[v] = grey
		stack = append(stack, v)
		for _, w := range adj[v] {
			if color[w] == grey {
				// Found a cycle: the suffix of the stack from w.
				for k := len(stack) - 1; k >= 0; k-- {
					if stack[k] == w {
						cycle = append(cycle, stack[k:]...)
						cycle = append(cycle, w)
						return true
					}
				}
			}
			if color[w] == white && dfs(w) {
				return true
			}
		}
		color[v] = black
		stack = stack[:len(stack)-1]
		return false
	}
	for v := range adj {
		if color[v] == white && dfs(v) {
			break
		}
	}
	if cycle == nil {
		return nil
	}
	out := make([]*core.Assignment, len(cycle))
	for k, v := range cycle {
		out[k] = r.Representatives[v]
	}
	return out
}
