// Package protocol defines the paper's decentralized balancing protocols as
// deterministic pairwise step functions:
//
//   - OJTB (Algorithm 3): One Job Type Balancing — BasicGreedy per pair;
//     converges to an optimal distribution when there is a single job type
//     (Lemma 4).
//   - MJTB (Algorithm 4): Multiple Job Type Balancing — OJTB applied
//     independently per job type; converges to a k-approximation
//     (Theorem 5).
//   - DLB2C (Algorithm 7): Decentralized Load Balancing for Two Clusters —
//     Greedy Load Balancing within a cluster, pairwise CLB2C across
//     clusters; any stable schedule is a 2-approximation (Theorem 7), but
//     the protocol may never stabilize (Proposition 8).
//
// Each protocol exposes the pure Split form (partition a pooled job set
// between two machines) used by the concurrent runtime, and the Balance
// form that applies the split to a core.Assignment, used by the sequential
// gossip engine and the exhaustive state-space exploration of
// Proposition 8. Both forms share the kernels in internal/pairwise.
package protocol

import (
	"hetlb/internal/core"
	"hetlb/internal/pairwise"
)

// Protocol is a decentralized balancing rule. Split must be a deterministic
// function of (i, j, jobs) so that stability is well defined and so that the
// sequential and concurrent engines behave identically.
//
// Every rule exists in an allocating and a scratch form. The scratch forms
// are what the engines run hundreds of thousands of times per replication:
// they reuse caller-owned buffers (see pairwise.Scratch) and must produce
// bit-identical results to their allocating counterparts — the determinism
// goldens in internal/experiments pin exactly that.
type Protocol interface {
	// Name identifies the protocol in traces and benchmark output.
	Name() string
	// Split partitions the pooled jobs between machines i and j and
	// returns the two sides. jobs is given in increasing index order and
	// must not be mutated.
	Split(i, j int, jobs []int) (toI, toJ []int)
	// SplitScratch is Split against caller-owned scratch: the returned
	// slices alias s and stay valid only until s is next used. jobs may
	// alias s.Union (implementations write the other buffers only); the
	// caller owns the result and may reorder it in place.
	SplitScratch(s *pairwise.Scratch, i, j int, jobs []int) (toI, toJ []int)
	// Balance performs one pairwise balancing step between machines i and
	// j of the assignment.
	Balance(a *core.Assignment, i, j int)
	// BalanceScratch is Balance reusing caller-owned scratch — the
	// allocation-free step path of the sequential engine. It reads the
	// pair's jobs through the assignment's per-machine index and returns
	// the number of jobs that changed machine.
	BalanceScratch(s *pairwise.Scratch, a *core.Assignment, i, j int) int
}

// balance pools the pair's jobs, splits them with p and applies the result.
// It scans the job→machine map directly (no index), which is what the
// stability check's short-lived clones want.
func balance(p Protocol, a *core.Assignment, i, j int) {
	jobs := pairwise.Union(a, i, j)
	toI, toJ := p.Split(i, j, jobs)
	pairwise.Apply(a, i, j, toI, toJ)
}

// balanceScratch pools the pair's jobs through the assignment's job index
// into s.Union, splits them with p's scratch kernel and applies the result,
// returning the migration count. It is generic so that protocol values whose
// fields are interfaces (SameCost, OJTB, DLB2C) are not re-boxed into the
// Protocol interface on every step — that boxing was the last per-step heap
// allocation.
func balanceScratch[P Protocol](p P, s *pairwise.Scratch, a *core.Assignment, i, j int) int {
	s.Union = pairwise.AppendUnion(s.Union[:0], a, i, j)
	toI, toJ := p.SplitScratch(s, i, j, s.Union)
	return pairwise.ApplyCount(a, i, j, toI, toJ)
}

// OJTB is Algorithm 3. It assumes (but does not verify) that all jobs have
// the same processing time on any given machine; under that assumption each
// pairwise step is an optimal two-machine rebalancing and the protocol
// converges to a global optimum (Lemma 4).
type OJTB struct {
	// Model prices the jobs; it must be the model of any assignment
	// passed to Balance.
	Model core.CostModel
}

// Name implements Protocol.
func (OJTB) Name() string { return "OJTB" }

// Split implements Protocol using BasicGreedy (Algorithm 2).
func (p OJTB) Split(i, j int, jobs []int) ([]int, []int) {
	return pairwise.SplitBasicGreedy(p.Model, i, j, jobs)
}

// SplitScratch implements Protocol.
func (p OJTB) SplitScratch(s *pairwise.Scratch, i, j int, jobs []int) ([]int, []int) {
	s.To1, s.To2 = pairwise.AppendSplitBasicGreedy(p.Model, i, j, jobs, s.To1[:0], s.To2[:0])
	return s.To1, s.To2
}

// Balance implements Protocol.
func (p OJTB) Balance(a *core.Assignment, i, j int) { balance(p, a, i, j) }

// BalanceScratch implements Protocol.
func (p OJTB) BalanceScratch(s *pairwise.Scratch, a *core.Assignment, i, j int) int {
	return balanceScratch(p, s, a, i, j)
}

// MJTB is Algorithm 4: the typed generalization of OJTB. Each pairwise step
// rebalances every job type independently with BasicGreedy, so each type's
// sub-schedule converges to its own optimum and the total makespan is at
// most k·OPT (Theorem 5).
type MJTB struct {
	// Model is the typed instance; it must be the assignment's model.
	Model *core.Typed
}

// Name implements Protocol.
func (MJTB) Name() string { return "MJTB" }

// Split implements Protocol.
func (p MJTB) Split(i, j int, jobs []int) ([]int, []int) {
	// Partition the union by type, preserving index order within a type,
	// then balance each type independently.
	byType := make([][]int, p.Model.NumTypes())
	for _, job := range jobs {
		t := p.Model.TypeOf(job)
		byType[t] = append(byType[t], job)
	}
	var toI, toJ []int
	for t := 0; t < p.Model.NumTypes(); t++ {
		if len(byType[t]) == 0 {
			continue
		}
		a, b := pairwise.SplitBasicGreedy(p.Model, i, j, byType[t])
		toI = append(toI, a...)
		toJ = append(toJ, b...)
	}
	return toI, toJ
}

// SplitScratch implements Protocol. The per-type greedy loads start from
// zero no matter what the output buffers hold, so every type appends into
// the same To1/To2 pair, exactly mirroring Split's per-type concatenation.
func (p MJTB) SplitScratch(s *pairwise.Scratch, i, j int, jobs []int) ([]int, []int) {
	byType := s.Buckets(p.Model.NumTypes())
	for _, job := range jobs {
		t := p.Model.TypeOf(job)
		byType[t] = append(byType[t], job)
	}
	toI, toJ := s.To1[:0], s.To2[:0]
	for t := 0; t < p.Model.NumTypes(); t++ {
		if len(byType[t]) == 0 {
			continue
		}
		toI, toJ = pairwise.AppendSplitBasicGreedy(p.Model, i, j, byType[t], toI, toJ)
	}
	s.To1, s.To2 = toI, toJ
	return toI, toJ
}

// Balance implements Protocol.
func (p MJTB) Balance(a *core.Assignment, i, j int) { balance(p, a, i, j) }

// BalanceScratch implements Protocol.
func (p MJTB) BalanceScratch(s *pairwise.Scratch, a *core.Assignment, i, j int) int {
	return balanceScratch(p, s, a, i, j)
}

// DLB2C is Algorithm 7 for a two-cluster model: same-cluster pairs use
// Greedy Load Balancing (Algorithm 6), cross-cluster pairs use CLB2C on two
// singleton clusters (Algorithm 5).
type DLB2C struct {
	// Model is the clustered instance; it must be the assignment's model.
	Model core.Clustered
}

// Name implements Protocol.
func (DLB2C) Name() string { return "DLB2C" }

// Split implements Protocol.
func (p DLB2C) Split(i, j int, jobs []int) ([]int, []int) {
	if p.Model.ClusterOf(i) == p.Model.ClusterOf(j) {
		return pairwise.SplitGreedyLoadBalancing(p.Model, i, j, jobs)
	}
	return pairwise.SplitCLB2C(p.Model, i, j, jobs)
}

// SplitScratch implements Protocol.
func (p DLB2C) SplitScratch(s *pairwise.Scratch, i, j int, jobs []int) ([]int, []int) {
	if p.Model.ClusterOf(i) == p.Model.ClusterOf(j) {
		return pairwise.SplitGreedyLoadBalancingScratch(s, p.Model, i, j, jobs)
	}
	return pairwise.SplitCLB2CScratch(s, p.Model, i, j, jobs)
}

// Balance implements Protocol.
func (p DLB2C) Balance(a *core.Assignment, i, j int) { balance(p, a, i, j) }

// BalanceScratch implements Protocol.
func (p DLB2C) BalanceScratch(s *pairwise.Scratch, a *core.Assignment, i, j int) int {
	return balanceScratch(p, s, a, i, j)
}

// SameCost is the single-cluster protocol used for the homogeneous
// experiments of Section VII.A: every pair is balanced with the same-cost
// greedy kernel. On an identical-machines model it is exactly the dynamics
// the paper's Markov chain abstracts.
type SameCost struct {
	// Model prices the jobs; it must be the model of any assignment
	// passed to Balance.
	Model core.CostModel
}

// Name implements Protocol.
func (SameCost) Name() string { return "SameCost" }

// Split implements Protocol.
func (p SameCost) Split(i, j int, jobs []int) ([]int, []int) {
	return pairwise.SplitSameCost(p.Model, i, j, jobs)
}

// SplitScratch implements Protocol.
func (p SameCost) SplitScratch(s *pairwise.Scratch, i, j int, jobs []int) ([]int, []int) {
	s.To1, s.To2 = pairwise.AppendSplitSameCost(p.Model, i, j, jobs, s.To1[:0], s.To2[:0])
	return s.To1, s.To2
}

// Balance implements Protocol.
func (p SameCost) Balance(a *core.Assignment, i, j int) { balance(p, a, i, j) }

// BalanceScratch implements Protocol.
func (p SameCost) BalanceScratch(s *pairwise.Scratch, a *core.Assignment, i, j int) int {
	return balanceScratch(p, s, a, i, j)
}

// Stable reports whether the assignment is a fixed point of the protocol:
// no pairwise balancing step changes the placement of any job. Stability is
// the premise of Theorem 7 ("if the algorithm converges..."). The check is
// O(m²) balancing steps, each on a clone.
func Stable(p Protocol, a *core.Assignment) bool {
	i, j := UnstablePair(p, a)
	return i == -1 && j == -1
}

// UnstablePair returns a pair of machines whose balancing step would change
// the assignment, or (-1, -1) if the assignment is stable.
func UnstablePair(p Protocol, a *core.Assignment) (int, int) {
	m := a.Model().NumMachines()
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			b := a.Clone()
			p.Balance(b, i, j)
			if !b.Equal(a) {
				return i, j
			}
		}
	}
	return -1, -1
}
