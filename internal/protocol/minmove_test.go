package protocol

import (
	"testing"

	"hetlb/internal/core"
	"hetlb/internal/rng"
	"hetlb/internal/workload"
)

func sumCosts(m core.CostModel, machine int, jobs []int) core.Cost {
	var s core.Cost
	for _, j := range jobs {
		s += m.Cost(machine, j)
	}
	return s
}

func TestMinMoveImbalanceBounded(t *testing.T) {
	// After SplitPlaced the pair's imbalance is at most the largest
	// pooled job — the same class as the rebuild kernel.
	gen := rng.New(1)
	for iter := 0; iter < 100; iter++ {
		n := 1 + gen.Intn(12)
		id := workload.UniformIdentical(gen, 2, n, 1, 20)
		p := SameCostMinMove{Model: id}
		var onI, onJ []int
		for j := 0; j < n; j++ {
			if gen.Bool() {
				onI = append(onI, j)
			} else {
				onJ = append(onJ, j)
			}
		}
		toI, toJ := p.SplitPlaced(0, 1, onI, onJ)
		if len(toI)+len(toJ) != n {
			t.Fatal("jobs lost")
		}
		d := sumCosts(id, 0, toI) - sumCosts(id, 1, toJ)
		if d < 0 {
			d = -d
		}
		var pmax core.Cost
		for j := 0; j < n; j++ {
			if s := id.Size(j); s > pmax {
				pmax = s
			}
		}
		if d > pmax {
			t.Fatalf("imbalance %d exceeds pmax %d", d, pmax)
		}
	}
}

func TestMinMoveMovesFewerJobs(t *testing.T) {
	// Against an almost balanced placement, the rebuild kernel may
	// reshuffle identities while min-move must touch at most a few jobs.
	id, _ := core.NewIdentical(2, []core.Cost{5, 5, 5, 5, 5, 5})
	// 4 vs 2 jobs: one transfer fixes it.
	onI := []int{0, 1, 2, 3}
	onJ := []int{4, 5}
	p := SameCostMinMove{Model: id}
	toI, toJ := p.SplitPlaced(0, 1, onI, onJ)
	if len(toI) != 3 || len(toJ) != 3 {
		t.Fatalf("expected 3|3 split, got %d|%d", len(toI), len(toJ))
	}
	moved := 0
	in := map[int]bool{0: true, 1: true, 2: true, 3: true}
	for _, j := range toJ {
		if in[j] {
			moved++
		}
	}
	if moved != 1 {
		t.Fatalf("min-move moved %d jobs, want 1", moved)
	}
}

func TestMinMoveFixedPointIsIdempotent(t *testing.T) {
	gen := rng.New(2)
	id := workload.UniformIdentical(gen, 2, 10, 1, 30)
	p := SameCostMinMove{Model: id}
	var onI, onJ []int
	for j := 0; j < 10; j++ {
		if gen.Bool() {
			onI = append(onI, j)
		} else {
			onJ = append(onJ, j)
		}
	}
	toI, toJ := p.SplitPlaced(0, 1, onI, onJ)
	againI, againJ := p.SplitPlaced(0, 1, toI, toJ)
	if len(againI) != len(toI) || len(againJ) != len(toJ) {
		t.Fatal("second application changed the split")
	}
	for k := range toI {
		if againI[k] != toI[k] {
			t.Fatal("second application changed the split")
		}
	}
}

func TestDLB2CMinMoveCrossClusterStillCorrects(t *testing.T) {
	// Cross-cluster balancing must still fix affinity even in the
	// min-move variant.
	tc, _ := core.NewTwoCluster(1, 1,
		[]core.Cost{100, 100, 1},
		[]core.Cost{1, 1, 100})
	p := DLB2CMinMove{Model: tc}
	toI, toJ := p.SplitPlaced(0, 1, []int{0, 1}, []int{2})
	// Jobs 0,1 belong on cluster 1; job 2 on cluster 0.
	if len(toI) != 1 || toI[0] != 2 || len(toJ) != 2 {
		t.Fatalf("affinity not corrected: %v | %v", toI, toJ)
	}
}

func TestMinMoveReducesTrafficAtSimilarQuality(t *testing.T) {
	// Head-to-head over random homogeneous systems: at the same step
	// budget, the min-move variant must migrate substantially fewer jobs
	// while landing at a similar makespan.
	gen := rng.New(3)
	id := workload.UniformIdentical(gen, 8, 96, 1, 100)
	run := func(p Protocol, seed uint64) (core.Cost, int) {
		a := core.AllOnMachine(id, 0)
		g := rng.New(seed)
		moves := 0
		for s := 0; s < 400; s++ {
			i := g.Intn(8)
			j := g.Pick(8, i)
			before := snapshot(a, i, j)
			p.Balance(a, i, j)
			moves += diffs(a, before)
		}
		return a.Makespan(), moves
	}
	cmRebuild, movesRebuild := run(SameCost{Model: id}, 9)
	cmMin, movesMin := run(SameCostMinMove{Model: id}, 9)
	if movesMin*2 >= movesRebuild {
		t.Fatalf("min-move did not halve traffic: %d vs %d", movesMin, movesRebuild)
	}
	// Quality within 10% of each other.
	if float64(cmMin) > 1.1*float64(cmRebuild) {
		t.Fatalf("min-move quality degraded: %d vs %d", cmMin, cmRebuild)
	}
}

func snapshot(a *core.Assignment, i, j int) map[int]int {
	out := make(map[int]int)
	for job := 0; job < a.Model().NumJobs(); job++ {
		if m := a.MachineOf(job); m == i || m == j {
			out[job] = m
		}
	}
	return out
}

func diffs(a *core.Assignment, before map[int]int) int {
	d := 0
	for job, m := range before {
		if a.MachineOf(job) != m {
			d++
		}
	}
	return d
}

func TestTransferHandlesEmptySides(t *testing.T) {
	id, _ := core.NewIdentical(2, []core.Cost{7})
	p := SameCostMinMove{Model: id}
	toI, toJ := p.SplitPlaced(0, 1, nil, []int{0})
	if len(toI)+len(toJ) != 1 {
		t.Fatal("job lost")
	}
	toI2, toJ2 := p.SplitPlaced(0, 1, nil, nil)
	if len(toI2) != 0 || len(toJ2) != 0 {
		t.Fatal("phantom jobs")
	}
}
