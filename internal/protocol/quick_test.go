package protocol

import (
	"testing"
	"testing/quick"

	"hetlb/internal/core"
	"hetlb/internal/rng"
	"hetlb/internal/workload"
)

// quickInstance derives a small random two-cluster system + protocol from a
// quick-check seed.
func quickInstance(seed uint64) (*core.TwoCluster, *core.Assignment, DLB2C, *rng.RNG) {
	gen := rng.New(seed)
	m1 := 1 + gen.Intn(3)
	m2 := 1 + gen.Intn(3)
	n := 1 + gen.Intn(12)
	tc := workload.UniformTwoCluster(gen, m1, m2, n, 1, 30)
	a := core.NewAssignment(tc)
	for j := 0; j < n; j++ {
		a.Assign(j, gen.Intn(m1+m2))
	}
	return tc, a, DLB2C{Model: tc}, gen
}

func TestQuickJobConservation(t *testing.T) {
	// Property: any sequence of DLB2C steps keeps every job assigned and
	// the assignment internally consistent.
	f := func(seed uint64) bool {
		tc, a, proto, gen := quickInstance(seed)
		m := tc.NumMachines()
		if m < 2 {
			return true
		}
		for s := 0; s < 40; s++ {
			i := gen.Intn(m)
			j := gen.Pick(m, i)
			proto.Balance(a, i, j)
		}
		return a.Complete() && a.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSplitPartitions(t *testing.T) {
	// Property: Split returns a partition of its input — every job on
	// exactly one side, nothing invented.
	f := func(seed uint64) bool {
		tc, a, proto, gen := quickInstance(seed)
		m := tc.NumMachines()
		if m < 2 {
			return true
		}
		i := gen.Intn(m)
		j := gen.Pick(m, i)
		var union []int
		for job := 0; job < tc.NumJobs(); job++ {
			if mm := a.MachineOf(job); mm == i || mm == j {
				union = append(union, job)
			}
		}
		toI, toJ := proto.Split(i, j, union)
		seen := make(map[int]int)
		for _, job := range toI {
			seen[job]++
		}
		for _, job := range toJ {
			seen[job]++
		}
		if len(seen) != len(union) {
			return false
		}
		for _, job := range union {
			if seen[job] != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSplitSymmetry(t *testing.T) {
	// Property: Split is a function of the unordered pair — swapping the
	// arguments swaps the outputs.
	f := func(seed uint64) bool {
		tc, a, proto, gen := quickInstance(seed)
		m := tc.NumMachines()
		if m < 2 {
			return true
		}
		i := gen.Intn(m)
		j := gen.Pick(m, i)
		var union []int
		for job := 0; job < tc.NumJobs(); job++ {
			if mm := a.MachineOf(job); mm == i || mm == j {
				union = append(union, job)
			}
		}
		aI, aJ := proto.Split(i, j, union)
		bJ, bI := proto.Split(j, i, union)
		if len(aI) != len(bI) || len(aJ) != len(bJ) {
			return false
		}
		for k := range aI {
			if aI[k] != bI[k] {
				return false
			}
		}
		for k := range aJ {
			if aJ[k] != bJ[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickOJTBPairMaxNonIncreasing(t *testing.T) {
	// Property: with one job type the pairwise kernel is OPTIMAL for the
	// pooled pair (Lemma 3), so one step never increases the pair's
	// maximum load. Note this deliberately does NOT hold for the greedy
	// rebuild kernels of DLB2C — their residual re-randomization is what
	// drives the paper's dynamic-equilibrium analysis — so the property
	// is asserted only where the paper proves it.
	f := func(seed uint64) bool {
		gen := rng.New(seed)
		m := 2 + gen.Intn(4)
		n := 1 + gen.Intn(12)
		p := make([][]core.Cost, m)
		for i := range p {
			p[i] = []core.Cost{gen.IntRange(1, 9)}
		}
		ty, err := core.NewTyped(p, make([]int, n))
		if err != nil {
			return false
		}
		a := core.NewAssignment(ty)
		for j := 0; j < n; j++ {
			a.Assign(j, gen.Intn(m))
		}
		proto := OJTB{Model: ty}
		for s := 0; s < 25; s++ {
			i := gen.Intn(m)
			j := gen.Pick(m, i)
			before := a.Load(i)
			if l := a.Load(j); l > before {
				before = l
			}
			proto.Balance(a, i, j)
			after := a.Load(i)
			if l := a.Load(j); l > after {
				after = l
			}
			if after > before {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIdempotentStep(t *testing.T) {
	// Property: balancing the same pair twice in a row equals balancing
	// it once (the kernels are functions of the pooled set).
	f := func(seed uint64) bool {
		tc, a, proto, gen := quickInstance(seed)
		m := tc.NumMachines()
		if m < 2 {
			return true
		}
		i := gen.Intn(m)
		j := gen.Pick(m, i)
		proto.Balance(a, i, j)
		b := a.Clone()
		proto.Balance(b, i, j)
		return b.Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMinMoveSameLoadsClassAsRebuild(t *testing.T) {
	// Property: on same-cluster pairs, the min-move kernel's final
	// imbalance is never worse than pmax (the rebuild kernel's class).
	f := func(seed uint64) bool {
		gen := rng.New(seed)
		n := 1 + gen.Intn(12)
		id := workload.UniformIdentical(gen, 2, n, 1, 25)
		p := SameCostMinMove{Model: id}
		var onI, onJ []int
		for j := 0; j < n; j++ {
			if gen.Bool() {
				onI = append(onI, j)
			} else {
				onJ = append(onJ, j)
			}
		}
		toI, toJ := p.SplitPlaced(0, 1, onI, onJ)
		var lI, lJ, pmax core.Cost
		for _, j := range toI {
			lI += id.Size(j)
		}
		for _, j := range toJ {
			lJ += id.Size(j)
		}
		for j := 0; j < n; j++ {
			if s := id.Size(j); s > pmax {
				pmax = s
			}
		}
		d := lI - lJ
		if d < 0 {
			d = -d
		}
		return d <= pmax
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMJTBTypePreservation(t *testing.T) {
	// Property: MJTB never mixes types across the split boundary in a way
	// that loses jobs — per-type counts are conserved.
	f := func(seed uint64) bool {
		gen := rng.New(seed)
		m := 2 + gen.Intn(3)
		k := 1 + gen.Intn(3)
		n := 1 + gen.Intn(10)
		ty := workload.UniformTyped(gen, m, n, k, 1, 20)
		a := core.NewAssignment(ty)
		for j := 0; j < n; j++ {
			a.Assign(j, gen.Intn(m))
		}
		countByType := func() []int {
			counts := make([]int, k)
			for j := 0; j < n; j++ {
				counts[ty.TypeOf(j)]++
			}
			return counts
		}
		before := countByType()
		proto := MJTB{Model: ty}
		for s := 0; s < 20; s++ {
			i := gen.Intn(m)
			j := gen.Pick(m, i)
			proto.Balance(a, i, j)
		}
		after := countByType()
		for t := range before {
			if before[t] != after[t] {
				return false
			}
		}
		return a.Complete()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
