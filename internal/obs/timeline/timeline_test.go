package timeline

import (
	"strings"
	"testing"
)

// offer records n points whose fields encode the offer sequence, so retained
// points are checkable.
func offer(r *Recorder, n int) {
	for i := 0; i < n; i++ {
		r.Record(Point{Time: int64(i), Cmax: 1000 - int64(i), Imbalance: int64(i % 7), Moves: int64(2 * i), Messages: int64(3 * i)})
	}
}

func TestShortRunRecordedExactly(t *testing.T) {
	r := NewRecorder(8)
	offer(r, 5)
	if r.Stride() != 1 || r.Len() != 5 || r.Seen() != 5 {
		t.Fatalf("stride/len/seen = %d/%d/%d, want 1/5/5", r.Stride(), r.Len(), r.Seen())
	}
	for i, p := range r.Points() {
		if p.Time != int64(i) {
			t.Fatalf("point %d has time %d", i, p.Time)
		}
	}
}

func TestDownsamplingKeepsStrideMultiples(t *testing.T) {
	r := NewRecorder(8)
	offer(r, 100)
	if r.Seen() != 100 {
		t.Fatalf("seen = %d, want 100", r.Seen())
	}
	stride := r.Stride()
	if stride&(stride-1) != 0 || stride < 100/8 {
		t.Fatalf("stride = %d, want a power of two >= 12", stride)
	}
	pts := r.Points()
	if len(pts) > 8 {
		t.Fatalf("retained %d points, capacity 8", len(pts))
	}
	for i, p := range pts {
		if p.Time != int64(i)*stride {
			t.Fatalf("point %d at time %d, want %d (stride %d)", i, p.Time, int64(i)*stride, stride)
		}
	}
}

// The retained set must be a pure function of the number of offers: a run
// recorded in one go and the same run recorded after a reset agree.
func TestDeterministicAcrossRuns(t *testing.T) {
	a := NewRecorder(16)
	b := NewRecorder(16)
	offer(a, 1000)
	offer(b, 1000)
	pa, pb := a.Points(), b.Points()
	if len(pa) != len(pb) {
		t.Fatalf("lens differ: %d vs %d", len(pa), len(pb))
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("point %d differs: %+v vs %+v", i, pa[i], pb[i])
		}
	}
	b.Reset()
	if b.Len() != 0 || b.Stride() != 1 || b.Seen() != 0 {
		t.Fatalf("reset recorder not empty")
	}
	offer(b, 1000)
	pb = b.Points()
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("after reset, point %d differs: %+v vs %+v", i, pa[i], pb[i])
		}
	}
}

func TestRecordDoesNotAllocate(t *testing.T) {
	r := NewRecorder(32)
	var i int64
	if n := testing.AllocsPerRun(5000, func() {
		r.Record(Point{Time: i, Cmax: i})
		i++
	}); n != 0 {
		t.Errorf("Record allocates %.2f per call, want 0", n)
	}
}

func TestWriteCSV(t *testing.T) {
	r := NewRecorder(4)
	r.Record(Point{Time: 0, Cmax: 10, Imbalance: 2, Moves: 0, Messages: 0})
	r.Record(Point{Time: 5, Cmax: 8, Imbalance: 1, Moves: 3, Messages: 6})
	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "time,cmax,imbalance,moves,messages\n0,10,2,0,0\n5,8,1,3,6\n"
	if sb.String() != want {
		t.Fatalf("csv = %q, want %q", sb.String(), want)
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRecorder(4)
	r.Record(Point{Time: 0, Cmax: 10, Imbalance: 2})
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	want := "{\"meta\":\"hetlb-timeline\",\"version\":1,\"stride\":1,\"seen\":1,\"retained\":1,\"points\":[\n" +
		"{\"time\":0,\"cmax\":10,\"imbalance\":2,\"moves\":0,\"messages\":0}\n]}\n"
	if sb.String() != want {
		t.Fatalf("json = %q, want %q", sb.String(), want)
	}
}
