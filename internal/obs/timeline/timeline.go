// Package timeline records a run's convergence trajectory — Cmax, imbalance,
// cumulative moves and messages against logical time — in a fixed budget of
// memory, using deterministic power-of-two downsampling.
//
// The recorder keeps every stride-th offered point (stride starts at 1, so
// short runs are recorded exactly). When the buffer fills, the stride doubles
// and the buffer is compacted in place, keeping the points whose offer
// sequence is a multiple of the new stride. Which points survive is a pure
// function of the Record call sequence — never of timing or scheduling — so
// timelines are bit-identical across runs and harness worker counts, and the
// retained points stay evenly spaced over the whole run instead of crowding
// its start or end.
//
// Record is allocation-free after construction (a mutex, an index test and at
// worst an in-place compaction), so the recorder can sit on the
// //hetlb:noalloc step paths.
package timeline

import (
	"bufio"
	"fmt"
	"io"
	"sync"
)

// Point is one sample of the convergence state, in the emitting runtime's
// logical time unit. Moves and Messages are cumulative since the start of
// the run; per-interval rates are recoverable by differencing neighbors.
// Runtimes that cannot cheaply compute a field record 0 (worksteal has no
// Cmax mid-run, gossip sends no messages); the consumer columns are fixed so
// exports stay schema-stable.
type Point struct {
	// Time is the sample's logical time (step index or virtual time).
	Time int64
	// Cmax is the makespan at Time.
	Cmax int64
	// Imbalance is Cmax minus the mean machine load at Time (>= 0; 0 means
	// perfectly flat).
	Imbalance int64
	// Moves counts job migrations applied so far.
	Moves int64
	// Messages counts protocol messages sent so far.
	Messages int64
}

// Recorder is a bounded, self-downsampling timeline.
type Recorder struct {
	mu     sync.Mutex
	pts    []Point // retained points, in offer order
	cap    int
	stride int64 // current keep-every-stride-th period (power of two)
	seen   int64 // points ever offered
}

// NewRecorder returns a recorder retaining at most capacity points
// (capacity >= 2; an odd capacity wastes its last slot after the first
// compaction).
func NewRecorder(capacity int) *Recorder {
	if capacity < 2 {
		panic("timeline: recorder capacity must be >= 2")
	}
	return &Recorder{pts: make([]Point, 0, capacity), cap: capacity, stride: 1}
}

// Record offers one sample. Whether it is retained depends only on how many
// samples were offered before it.
func (r *Recorder) Record(p Point) {
	r.mu.Lock()
	if r.seen%r.stride == 0 {
		if len(r.pts) == r.cap {
			// Full: keep every other retained point (offer sequences that
			// are multiples of the doubled stride) and double the stride.
			half := (len(r.pts) + 1) / 2
			for i := 1; i < half; i++ {
				r.pts[i] = r.pts[2*i]
			}
			r.pts = r.pts[:half]
			r.stride *= 2
		}
		if r.seen%r.stride == 0 {
			r.pts = append(r.pts, p)
		}
	}
	r.seen++
	r.mu.Unlock()
}

// Len returns the number of retained points.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.pts)
}

// Seen returns the number of points ever offered.
func (r *Recorder) Seen() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seen
}

// Stride returns the current downsampling period: one retained point per
// Stride offered.
func (r *Recorder) Stride() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stride
}

// Points returns a copy of the retained points in offer order.
func (r *Recorder) Points() []Point {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Point(nil), r.pts...)
}

// Reset empties the recorder and restores stride 1.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.pts = r.pts[:0]
	r.stride = 1
	r.seen = 0
	r.mu.Unlock()
}

// WriteCSV writes a header row and one row per retained point:
//
//	time,cmax,imbalance,moves,messages
func (r *Recorder) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("time,cmax,imbalance,moves,messages\n")
	for _, p := range r.Points() {
		fmt.Fprintf(bw, "%d,%d,%d,%d,%d\n", p.Time, p.Cmax, p.Imbalance, p.Moves, p.Messages)
	}
	return bw.Flush()
}

// WriteJSON writes one self-describing object: the downsampling state
// (stride, points seen, points retained) and the retained points.
func (r *Recorder) WriteJSON(w io.Writer) error {
	pts := r.Points()
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "{\"meta\":\"hetlb-timeline\",\"version\":1,\"stride\":%d,\"seen\":%d,\"retained\":%d,\"points\":[",
		r.Stride(), r.Seen(), len(pts))
	for i, p := range pts {
		if i > 0 {
			bw.WriteString(",")
		}
		fmt.Fprintf(bw, "\n{\"time\":%d,\"cmax\":%d,\"imbalance\":%d,\"moves\":%d,\"messages\":%d}",
			p.Time, p.Cmax, p.Imbalance, p.Moves, p.Messages)
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}
