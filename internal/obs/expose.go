package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// escapeHelp escapes a HELP string per the Prometheus text format:
// backslashes as \\ and line feeds as \n (a raw newline would terminate the
// comment mid-help and corrupt the exposition).
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4): HELP/TYPE headers (help strings
// escaped), counter/gauge samples, cumulative histogram buckets with `le`
// labels plus _sum and _count series. Metrics appear in registration order,
// which is deterministic for a fixed wiring.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range r.snapshotEntries() {
		if e.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", e.name, escapeHelp(e.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", e.name, e.kind)
		switch e.kind {
		case kindCounter:
			fmt.Fprintf(bw, "%s %d\n", e.name, e.c.Value())
		case kindCounterFunc:
			fmt.Fprintf(bw, "%s %d\n", e.name, e.fn())
		case kindGauge:
			fmt.Fprintf(bw, "%s %d\n", e.name, e.g.Value())
		case kindCounterVec:
			for i, lv := range e.cv.values {
				fmt.Fprintf(bw, "%s{%s=%q} %d\n", e.name, e.cv.label, lv, e.cv.At(i).Value())
			}
		case kindHistogram:
			var cum int64
			for i, b := range e.h.bounds {
				cum += e.h.BucketCount(i)
				fmt.Fprintf(bw, "%s_bucket{le=\"%d\"} %d\n", e.name, b, cum)
			}
			cum += e.h.BucketCount(len(e.h.bounds))
			fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", e.name, cum)
			fmt.Fprintf(bw, "%s_sum %d\n", e.name, e.h.Sum())
			fmt.Fprintf(bw, "%s_count %d\n", e.name, e.h.Count())
		}
	}
	return bw.Flush()
}

// SnapshotValue is the JSON form of one metric.
type SnapshotValue struct {
	Type  string           `json:"type"`
	Help  string           `json:"help,omitempty"`
	Value int64            `json:"value,omitempty"`
	Cells map[string]int64 `json:"cells,omitempty"`
	// Histogram-only fields.
	Sum     int64   `json:"sum,omitempty"`
	Count   int64   `json:"count,omitempty"`
	Bounds  []int64 `json:"bounds,omitempty"`
	Buckets []int64 `json:"buckets,omitempty"` // raw counts; last is +Inf overflow
}

// Snapshot returns a point-in-time copy of every metric, keyed by name.
// Counters and gauges populate Value; vectors populate Cells; histograms
// populate Sum/Count/Bounds/Buckets.
func (r *Registry) Snapshot() map[string]SnapshotValue {
	out := make(map[string]SnapshotValue)
	for _, e := range r.snapshotEntries() {
		sv := SnapshotValue{Type: e.kind.String(), Help: e.help}
		switch e.kind {
		case kindCounter:
			sv.Value = e.c.Value()
		case kindCounterFunc:
			sv.Value = e.fn()
		case kindGauge:
			sv.Value = e.g.Value()
		case kindCounterVec:
			sv.Cells = make(map[string]int64, e.cv.Len())
			for i, lv := range e.cv.values {
				sv.Cells[lv] = e.cv.At(i).Value()
			}
		case kindHistogram:
			sv.Sum = e.h.Sum()
			sv.Count = e.h.Count()
			sv.Bounds = append([]int64(nil), e.h.bounds...)
			sv.Buckets = make([]int64, len(e.h.bounds)+1)
			for i := range sv.Buckets {
				sv.Buckets[i] = e.h.BucketCount(i)
			}
		}
		out[e.name] = sv
	}
	return out
}

// WriteJSON renders the snapshot as one JSON object with sorted keys. It is
// emitted by hand (not encoding/json) to keep field order deterministic and
// the package free of reflection on its output path.
func (r *Registry) WriteJSON(w io.Writer) error {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)

	bw := bufio.NewWriter(w)
	bw.WriteString("{\n")
	for k, n := range names {
		sv := snap[n]
		fmt.Fprintf(bw, "  %q: {\"type\":%q", n, sv.Type)
		switch sv.Type {
		case "histogram":
			fmt.Fprintf(bw, ",\"sum\":%d,\"count\":%d,\"bounds\":", sv.Sum, sv.Count)
			writeInt64JSON(bw, sv.Bounds)
			bw.WriteString(",\"buckets\":")
			writeInt64JSON(bw, sv.Buckets)
		default:
			if sv.Cells != nil {
				bw.WriteString(",\"cells\":{")
				cellKeys := make([]string, 0, len(sv.Cells))
				for c := range sv.Cells {
					cellKeys = append(cellKeys, c)
				}
				sort.Strings(cellKeys)
				for i, c := range cellKeys {
					if i > 0 {
						bw.WriteString(",")
					}
					fmt.Fprintf(bw, "%q:%d", c, sv.Cells[c])
				}
				bw.WriteString("}")
			} else {
				fmt.Fprintf(bw, ",\"value\":%d", sv.Value)
			}
		}
		bw.WriteString("}")
		if k < len(names)-1 {
			bw.WriteString(",")
		}
		bw.WriteString("\n")
	}
	bw.WriteString("}\n")
	return bw.Flush()
}

func writeInt64JSON(w *bufio.Writer, xs []int64) {
	w.WriteString("[")
	for i, x := range xs {
		if i > 0 {
			w.WriteString(",")
		}
		fmt.Fprintf(w, "%d", x)
	}
	w.WriteString("]")
}
