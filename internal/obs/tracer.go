package obs

import (
	"bufio"
	"fmt"
	"io"
	"sync"
)

// EventType enumerates the structured events the runtimes emit. The set is
// deliberately closed and small: every event is a fixed-size value, so the
// tracer ring holds no pointers and Emit never allocates.
type EventType uint8

// Event types. A and B carry the actors (machine indices, -1 when absent);
// Value carries the payload described per type.
const (
	// EvPairSelected: a pairwise balancing step/session between machines A
	// and B; Value = jobs migrated by the exchange.
	EvPairSelected EventType = iota + 1
	// EvJobsMigrated: Value jobs changed machine in one operation (A → B
	// when directional, A/B the pair otherwise).
	EvJobsMigrated
	// EvMessageSent: machine A sent a message to machine B; Value = message
	// kind (runtime-defined small enum).
	EvMessageSent
	// EvMessageRecv: machine B received a message from machine A; Value =
	// message kind.
	EvMessageRecv
	// EvStealAttempt: thief A probed victim B.
	EvStealAttempt
	// EvStealSuccess: thief A stole Value jobs from victim B.
	EvStealSuccess
	// EvMakespanSample: Value = Cmax observed at Time.
	EvMakespanSample
	// EvSessionStart: machine A opened a balancing session with B.
	EvSessionStart
	// EvSessionEnd: the session between A and B completed; Value = duration
	// in the runtime's time unit.
	EvSessionEnd
	// EvReplicationStart: the harness dispatched replication A of an
	// experiment (B = -1).
	EvReplicationStart
	// EvReplicationEnd: replication A finished; Value = wall time in
	// nanoseconds (negative when the replication failed).
	EvReplicationEnd
	// EvMessageDropped: the fault plan dropped a message from A to B;
	// Value = message kind.
	EvMessageDropped
	// EvMachineCrash: machine A crashed (B = -1); Value = jobs it held at
	// the instant of the crash (lost or frozen, per the fault plan).
	EvMachineCrash
	// EvMachineRecover: machine A recovered (B = -1); Value = jobs
	// re-hosted on it.
	EvMachineRecover
)

// String returns the stable wire name of the event type (used by the JSONL
// and Chrome exports; tests pin these).
func (t EventType) String() string {
	switch t {
	case EvPairSelected:
		return "pair-selected"
	case EvJobsMigrated:
		return "jobs-migrated"
	case EvMessageSent:
		return "message-sent"
	case EvMessageRecv:
		return "message-recv"
	case EvStealAttempt:
		return "steal-attempt"
	case EvStealSuccess:
		return "steal-success"
	case EvMakespanSample:
		return "makespan-sample"
	case EvSessionStart:
		return "session-start"
	case EvSessionEnd:
		return "session-end"
	case EvReplicationStart:
		return "replication-start"
	case EvReplicationEnd:
		return "replication-end"
	case EvMessageDropped:
		return "message-dropped"
	case EvMachineCrash:
		return "machine-crash"
	case EvMachineRecover:
		return "machine-recover"
	}
	return "unknown"
}

// Event is one tracer record. Time is in the emitting runtime's unit
// (gossip: step index; netsim/worksteal: virtual time; distrun: session
// sequence number) — timelines from one runtime are internally consistent,
// which is what trace viewers need.
type Event struct {
	Time  int64
	Type  EventType
	A, B  int32
	Value int64
}

// Tracer is a bounded ring buffer of events. When full, the oldest events
// are overwritten; Dropped reports how many were lost. A single mutex
// guards the ring: the critical section is a slice store and two integer
// updates, which is cheap enough for every runtime here (the distrun hot
// path is dominated by its per-session sort).
type Tracer struct {
	mu    sync.Mutex
	buf   []Event
	total uint64 // events ever emitted
}

// NewTracer returns a tracer holding up to capacity events (capacity >= 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		panic("obs: tracer capacity must be >= 1")
	}
	return &Tracer{buf: make([]Event, capacity)}
}

// Emit records one event, overwriting the oldest if the ring is full.
func (t *Tracer) Emit(e Event) {
	t.mu.Lock()
	t.buf[t.total%uint64(len(t.buf))] = e
	t.total++
	t.mu.Unlock()
}

// Len returns the number of events currently retained.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.total < uint64(len(t.buf)) {
		return int(t.total)
	}
	return len(t.buf)
}

// Total returns the number of events ever emitted.
func (t *Tracer) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Dropped returns how many events were overwritten before being read.
func (t *Tracer) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.total <= uint64(len(t.buf)) {
		return 0
	}
	return t.total - uint64(len(t.buf))
}

// Events returns the retained events, oldest first.
func (t *Tracer) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := uint64(len(t.buf))
	if t.total <= n {
		return append([]Event(nil), t.buf[:t.total]...)
	}
	start := t.total % n
	out := make([]Event, 0, n)
	out = append(out, t.buf[start:]...)
	return append(out, t.buf[:start]...)
}

// Reset empties the ring and zeroes the emitted/dropped accounting.
func (t *Tracer) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.total = 0
}

// InstrumentTracer exposes the tracer's ring accounting on a registry as
// pull-style counters, so a scrape (or the debug server) can see a trace
// overflowing while the run is still going:
//
//	trace_ring_events_total   events ever emitted
//	trace_ring_dropped_total  events overwritten before export
func InstrumentTracer(r *Registry, t *Tracer) {
	r.CounterFunc("trace_ring_events_total", "events ever emitted into the trace ring", func() int64 { return int64(t.Total()) })
	r.CounterFunc("trace_ring_dropped_total", "trace ring events overwritten before export", func() int64 { return int64(t.Dropped()) })
}

// WriteJSONL writes a self-describing header line followed by the retained
// events, one JSON object per line:
//
//	{"meta":"hetlb-events","version":1,"total":2,"dropped":0,"retained":2}
//	{"t":12,"type":"pair-selected","a":3,"b":7,"v":2}
//
// The header carries the ring accounting, so a truncated trace declares how
// many events it lost.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	events := t.Events()
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "{\"meta\":\"hetlb-events\",\"version\":1,\"total\":%d,\"dropped\":%d,\"retained\":%d}\n",
		t.Total(), t.Dropped(), len(events))
	for _, e := range events {
		fmt.Fprintf(bw, "{\"t\":%d,\"type\":%q,\"a\":%d,\"b\":%d,\"v\":%d}\n",
			e.Time, e.Type.String(), e.A, e.B, e.Value)
	}
	return bw.Flush()
}

// WriteChromeTrace writes the retained events in the Chrome trace_event
// JSON format (load in chrome://tracing or Perfetto). Every event becomes a
// thread-scoped instant on pid 0 with tid = actor A (or 0 when absent), ts =
// the event's Time interpreted as microseconds, and the peer/payload in
// args.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"traceEvents\":[\n")
	events := t.Events()
	for i, e := range events {
		tid := e.A
		if tid < 0 {
			tid = 0
		}
		fmt.Fprintf(bw,
			"{\"name\":%q,\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":%d,\"ts\":%d,\"args\":{\"a\":%d,\"b\":%d,\"value\":%d}}",
			e.Type.String(), tid, e.Time, e.A, e.B, e.Value)
		if i < len(events)-1 {
			bw.WriteString(",")
		}
		bw.WriteString("\n")
	}
	bw.WriteString("],\"displayTimeUnit\":\"ms\"}\n")
	return bw.Flush()
}
