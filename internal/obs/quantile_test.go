package obs

import (
	"math"
	"testing"
)

func almost(got, want float64) bool { return math.Abs(got-want) < 1e-9 }

func TestQuantileEmpty(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_empty", "", []int64{1, 2, 4})
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
}

// One bucket holding everything: quantiles interpolate linearly across it.
func TestQuantileSingleBucketInterpolation(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_single", "", []int64{10, 20})
	for i := 0; i < 10; i++ {
		h.Observe(15) // all land in (10, 20]
	}
	cases := map[float64]float64{0.0: 10, 0.5: 15, 1.0: 20}
	for q, want := range cases {
		if got := h.Quantile(q); !almost(got, want) {
			t.Errorf("Quantile(%v) = %v, want %v", q, got, want)
		}
	}
}

// Uniform mass across two buckets: the median sits at the boundary, the
// quartiles at the buckets' midpoints.
func TestQuantileTwoBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_two", "", []int64{10, 20})
	for i := 0; i < 4; i++ {
		h.Observe(5)  // (0, 10]
		h.Observe(15) // (10, 20]
	}
	cases := map[float64]float64{0.25: 5, 0.5: 10, 0.75: 15, 1.0: 20}
	for q, want := range cases {
		if got := h.Quantile(q); !almost(got, want) {
			t.Errorf("Quantile(%v) = %v, want %v", q, got, want)
		}
	}
}

// The first bucket's implicit lower bound is 0.
func TestQuantileFirstBucketLowerBoundZero(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_first", "", []int64{8})
	h.Observe(3)
	h.Observe(5)
	if got := h.Quantile(0.5); !almost(got, 4) {
		t.Fatalf("Quantile(0.5) = %v, want 4 (midpoint of (0, 8])", got)
	}
}

// Mass in the +Inf overflow bucket clamps to the last finite bound.
func TestQuantileOverflowClamped(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_inf", "", []int64{1, 2, 4})
	h.Observe(100)
	h.Observe(200)
	for _, q := range []float64{0.5, 0.99, 1.0} {
		if got := h.Quantile(q); !almost(got, 4) {
			t.Errorf("Quantile(%v) = %v, want 4 (clamped to last finite bound)", q, got)
		}
	}
	// Mixed: p50 still inside the finite buckets, p99 in the overflow.
	h2 := r.Histogram("q_mixed", "", []int64{1, 2, 4})
	for i := 0; i < 98; i++ {
		h2.Observe(1)
	}
	h2.Observe(100)
	h2.Observe(100)
	if got := h2.Quantile(0.5); got > 1 {
		t.Errorf("p50 = %v, want <= 1", got)
	}
	if got := h2.Quantile(0.999); !almost(got, 4) {
		t.Errorf("p99.9 = %v, want 4 (clamped)", got)
	}
}

// Out-of-range q values clamp instead of misbehaving.
func TestQuantileClampsQ(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_clamp", "", []int64{10})
	h.Observe(5)
	if got := h.Quantile(-3); !almost(got, 0) {
		t.Errorf("Quantile(-3) = %v, want 0", got)
	}
	if got := h.Quantile(7); !almost(got, 10) {
		t.Errorf("Quantile(7) = %v, want 10", got)
	}
}
