package obs

import (
	"bytes"
	"testing"
)

// The Prometheus exposition is consumed byte-for-byte by scrapers and by the
// debug server; pin the whole rendering — help escaping, registration-order
// metric listing, label ordering, the histogram's cumulative buckets with
// +Inf and _sum/_count — against a golden string.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("alpha_total", "first metric; help with a \\ backslash\nand a newline")
	g := r.Gauge("beta_depth", "second metric")
	cv := r.CounterVec("gamma_by_kind", "third metric", "kind", []string{"request", "offer"})
	h := r.Histogram("delta_latency", "fourth metric", []int64{1, 2, 4})
	r.CounterFunc("epsilon_sampled_total", "fifth metric, sampled at exposition", func() int64 { return 77 })

	c.Add(3)
	g.Set(-5)
	cv.At(0).Add(2)
	cv.At(1).Inc()
	h.Observe(1) // bucket le=1
	h.Observe(2) // bucket le=2
	h.Observe(3) // bucket le=4
	h.Observe(9) // +Inf overflow

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP alpha_total first metric; help with a \\ backslash\nand a newline
# TYPE alpha_total counter
alpha_total 3
# HELP beta_depth second metric
# TYPE beta_depth gauge
beta_depth -5
# HELP gamma_by_kind third metric
# TYPE gamma_by_kind counter
gamma_by_kind{kind="request"} 2
gamma_by_kind{kind="offer"} 1
# HELP delta_latency fourth metric
# TYPE delta_latency histogram
delta_latency_bucket{le="1"} 1
delta_latency_bucket{le="2"} 2
delta_latency_bucket{le="4"} 3
delta_latency_bucket{le="+Inf"} 4
delta_latency_sum 15
delta_latency_count 4
# HELP epsilon_sampled_total fifth metric, sampled at exposition
# TYPE epsilon_sampled_total counter
epsilon_sampled_total 77
`
	if buf.String() != want {
		t.Errorf("WritePrometheus output differs from golden.\n--- got ---\n%s--- want ---\n%s", buf.String(), want)
	}

	// A second render is identical: exposition must not mutate state.
	var again bytes.Buffer
	if err := r.WritePrometheus(&again); err != nil {
		t.Fatal(err)
	}
	if again.String() != buf.String() {
		t.Error("second WritePrometheus render differs from the first")
	}
}
