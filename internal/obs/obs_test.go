package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("steps_total", "steps")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g := r.Gauge("makespan", "Cmax")
	g.Set(42)
	g.Add(-2)
	if g.Value() != 40 {
		t.Fatalf("gauge = %d, want 40", g.Value())
	}
	g.SetMax(10)
	if g.Value() != 40 {
		t.Fatalf("SetMax lowered the gauge to %d", g.Value())
	}
	g.SetMax(50)
	if g.Value() != 50 {
		t.Fatalf("SetMax(50) = %d, want 50", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []int64{1, 2, 4, 8})
	for _, v := range []int64{0, 1, 2, 3, 5, 9, 100} {
		h.Observe(v)
	}
	// v <= bound buckets: le=1 gets {0,1}, le=2 gets {2}, le=4 gets {3},
	// le=8 gets {5}, +Inf gets {9,100}.
	want := []int64{2, 1, 1, 1, 2}
	for i, w := range want {
		if got := h.BucketCount(i); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d, want 7", h.Count())
	}
	if h.Sum() != 120 {
		t.Fatalf("sum = %d, want 120", h.Sum())
	}
}

func TestBoundsHelpers(t *testing.T) {
	p := Pow2Bounds(3)
	if len(p) != 4 || p[0] != 1 || p[3] != 8 {
		t.Fatalf("Pow2Bounds(3) = %v", p)
	}
	l := LinearBounds(10, 5, 3)
	if len(l) != 3 || l[0] != 10 || l[2] != 20 {
		t.Fatalf("LinearBounds = %v", l)
	}
}

func TestCounterVec(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("sessions_total", "per machine", "machine", IndexLabels(3))
	v.At(0).Inc()
	v.At(2).Add(5)
	if v.Total() != 6 {
		t.Fatalf("total = %d, want 6", v.Total())
	}
	if v.Len() != 3 {
		t.Fatalf("len = %d, want 3", v.Len())
	}
}

func TestIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c", "help")
	b := r.Counter("c", "help")
	if a != b {
		t.Fatal("re-registering a counter returned a new instrument")
	}
	h1 := r.Histogram("h", "", []int64{1, 2})
	h2 := r.Histogram("h", "", []int64{1, 2})
	if h1 != h2 {
		t.Fatal("re-registering a histogram returned a new instrument")
	}
}

func TestRegistrationConflictsPanic(t *testing.T) {
	cases := []struct {
		name string
		fn   func(r *Registry)
	}{
		{"kind", func(r *Registry) { r.Counter("x", ""); r.Gauge("x", "") }},
		{"bounds", func(r *Registry) { r.Histogram("h", "", []int64{1}); r.Histogram("h", "", []int64{2}) }},
		{"vec-shape", func(r *Registry) {
			r.CounterVec("v", "", "m", IndexLabels(2))
			r.CounterVec("v", "", "m", IndexLabels(3))
		}},
		{"bad-name", func(r *Registry) { r.Counter("0bad name", "") }},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", tc.name)
				}
			}()
			tc.fn(NewRegistry())
		}()
	}
}

// TestRecordPathAllocFree asserts the tentpole constraint: recording through
// any instrument (and emitting a trace event) never allocates, so the
// instruments are safe on the distrun/gossip hot paths.
func TestRecordPathAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", Pow2Bounds(16))
	v := r.CounterVec("v", "", "machine", IndexLabels(8))
	tr := NewTracer(1024)
	checks := []struct {
		name string
		fn   func()
	}{
		{"Counter.Inc", func() { c.Inc() }},
		{"Counter.Add", func() { c.Add(3) }},
		{"Gauge.Set", func() { g.Set(7) }},
		{"Gauge.SetMax", func() { g.SetMax(9) }},
		{"Histogram.Observe", func() { h.Observe(12345) }},
		{"CounterVec.At.Inc", func() { v.At(5).Inc() }},
		{"Tracer.Emit", func() {
			tr.Emit(Event{Time: 1, Type: EvPairSelected, A: 1, B: 2, Value: 3})
		}},
	}
	for _, ch := range checks {
		if allocs := testing.AllocsPerRun(100, ch.fn); allocs != 0 {
			t.Errorf("%s allocates %.1f times per call, want 0", ch.name, allocs)
		}
	}
}

// TestConcurrentRecording hammers every instrument kind from many
// goroutines; totals must be exact. Run with -race in CI.
func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	h := r.Histogram("h", "", []int64{10, 100})
	v := r.CounterVec("v", "", "machine", IndexLabels(4))
	tr := NewTracer(64)
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(int64(i % 200))
				v.At(w % 4).Inc()
				tr.Emit(Event{Time: int64(i), Type: EvJobsMigrated, A: int32(w), B: -1, Value: 1})
			}
		}(w)
	}
	wg.Wait()
	const total = workers * perWorker
	if c.Value() != total {
		t.Fatalf("counter = %d, want %d", c.Value(), total)
	}
	if h.Count() != total {
		t.Fatalf("histogram count = %d, want %d", h.Count(), total)
	}
	if v.Total() != total {
		t.Fatalf("vec total = %d, want %d", v.Total(), total)
	}
	if tr.Total() != total {
		t.Fatalf("tracer total = %d, want %d", tr.Total(), total)
	}
	if tr.Len() != 64 {
		t.Fatalf("tracer len = %d, want 64", tr.Len())
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("steps_total", "pairwise steps").Add(12)
	r.Gauge("makespan", "Cmax").Set(99)
	h := r.Histogram("moves", "jobs per step", []int64{1, 4})
	h.Observe(0)
	h.Observe(3)
	h.Observe(9)
	v := r.CounterVec("msgs_total", "by kind", "kind", []string{"request", "offer"})
	v.At(1).Add(7)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP steps_total pairwise steps",
		"# TYPE steps_total counter",
		"steps_total 12",
		"# TYPE makespan gauge",
		"makespan 99",
		"# TYPE moves histogram",
		"moves_bucket{le=\"1\"} 1",
		"moves_bucket{le=\"4\"} 2",
		"moves_bucket{le=\"+Inf\"} 3",
		"moves_sum 12",
		"moves_count 3",
		"msgs_total{kind=\"request\"} 0",
		"msgs_total{kind=\"offer\"} 7",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	r := NewRegistry()
	r.Counter("steps_total", "steps").Add(3)
	h := r.Histogram("moves", "", []int64{2})
	h.Observe(1)
	h.Observe(5)
	r.CounterVec("msgs", "", "kind", []string{"a"}).At(0).Add(4)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]SnapshotValue
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("WriteJSON produced invalid JSON: %v\n%s", err, buf.String())
	}
	if decoded["steps_total"].Value != 3 {
		t.Fatalf("steps_total = %+v", decoded["steps_total"])
	}
	m := decoded["moves"]
	if m.Count != 2 || m.Sum != 6 || len(m.Buckets) != 2 || m.Buckets[0] != 1 || m.Buckets[1] != 1 {
		t.Fatalf("moves = %+v", m)
	}
	if decoded["msgs"].Cells["a"] != 4 {
		t.Fatalf("msgs = %+v", decoded["msgs"])
	}
}
