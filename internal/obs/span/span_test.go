package span

import (
	"strings"
	"testing"
)

func TestKindTagWireNames(t *testing.T) {
	kinds := map[Kind]string{
		KindRun: "run", KindReplication: "replication", KindSweep: "sweep",
		KindSession: "session", KindStep: "step", KindFault: "fault",
		Kind(0): "unknown",
	}
	for k, want := range kinds {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	tags := map[Tag]string{
		TagNone: "", TagInitiator: "initiator", TagTarget: "target",
		TagDrop: "drop", TagRetransmit: "retransmit", TagTimeout: "timeout",
		TagCrash: "crash", TagRecover: "recover", Tag(99): "unknown",
	}
	for tag, want := range tags {
		if got := tag.String(); got != want {
			t.Errorf("Tag(%d).String() = %q, want %q", tag, got, want)
		}
	}
}

func TestAppendAssignsSequentialIDs(t *testing.T) {
	r := NewRecorder(8)
	id1 := r.Append(Span{Kind: KindStep})
	id2 := r.Append(Span{Kind: KindStep})
	if id1 != 1 || id2 != 2 {
		t.Fatalf("ids = %d, %d, want 1, 2", id1, id2)
	}
	pre := r.NextID()
	if pre != 3 {
		t.Fatalf("NextID = %d, want 3", pre)
	}
	// Appending with a pre-allocated ID must not burn a fresh one.
	got := r.Append(Span{ID: pre, Kind: KindSession})
	if got != pre {
		t.Fatalf("Append(pre-allocated) returned %d, want %d", got, pre)
	}
	if next := r.NextID(); next != 4 {
		t.Fatalf("NextID after explicit-ID append = %d, want 4", next)
	}
}

func TestSubNamespaceDisjoint(t *testing.T) {
	a := NewSub(8, 1)
	b := NewSub(8, 2)
	ia := a.Append(Span{Kind: KindSession})
	ib := b.Append(Span{Kind: KindSession})
	if ia == ib {
		t.Fatalf("sub-recorders produced colliding ids %d", ia)
	}
	if ia != 1<<32|1 || ib != 2<<32|1 {
		t.Fatalf("ids = %#x, %#x, want namespaced", uint64(ia), uint64(ib))
	}
}

func TestRingOverflowDropsOldest(t *testing.T) {
	r := NewRecorder(2)
	for i := 0; i < 5; i++ {
		r.Append(Span{Kind: KindStep, Start: int64(i), End: int64(i)})
	}
	if r.Total() != 5 || r.Dropped() != 3 || r.Len() != 2 {
		t.Fatalf("total/dropped/len = %d/%d/%d, want 5/3/2", r.Total(), r.Dropped(), r.Len())
	}
	got := r.Spans()
	if len(got) != 2 || got[0].Start != 3 || got[1].Start != 4 {
		t.Fatalf("retained = %+v, want starts 3, 4", got)
	}
}

func TestMergePreservesIDsAndOrder(t *testing.T) {
	parent := NewRecorder(16)
	r1 := NewSub(8, 1)
	r2 := NewSub(8, 2)
	r1.Append(Span{Kind: KindReplication, A: 0})
	r1.Append(Span{Kind: KindSession, A: 0, B: 1})
	r2.Append(Span{Kind: KindReplication, A: 1})
	parent.Merge(r1)
	parent.Merge(r2)
	got := parent.Spans()
	if len(got) != 3 {
		t.Fatalf("merged %d spans, want 3", len(got))
	}
	if got[0].ID != 1<<32|1 || got[1].ID != 1<<32|2 || got[2].ID != 2<<32|1 {
		t.Fatalf("merged ids = %#x %#x %#x", uint64(got[0].ID), uint64(got[1].ID), uint64(got[2].ID))
	}
}

func TestRootRoundTrip(t *testing.T) {
	r := NewRecorder(4)
	if r.Root() != 0 {
		t.Fatalf("fresh recorder root = %d, want 0", r.Root())
	}
	r.SetRoot(7)
	if r.Root() != 7 {
		t.Fatalf("root = %d, want 7", r.Root())
	}
}

func TestWriteJSONL(t *testing.T) {
	r := NewRecorder(4)
	sid := r.NextID()
	r.Append(Span{ID: sid, Parent: 0, Kind: KindSession, Tag: TagTarget, Flags: FlagCommitted, A: 3, B: 7, Start: 120, End: 190, Clock: 42, Value: 5})
	r.Append(Span{Parent: sid, Kind: KindFault, Tag: TagDrop, A: 3, B: 7, Start: 150, End: 150, Value: 1})
	var sb strings.Builder
	if err := r.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want header + 2 records:\n%s", len(lines), sb.String())
	}
	if want := `{"meta":"hetlb-spans","version":1,"total":2,"dropped":0,"retained":2}`; lines[0] != want {
		t.Fatalf("header = %s, want %s", lines[0], want)
	}
	if want := `{"id":1,"parent":0,"kind":"session","tag":"target","flags":1,"a":3,"b":7,"start":120,"end":190,"clock":42,"v":5}`; lines[1] != want {
		t.Fatalf("line 1 = %s, want %s", lines[1], want)
	}
	if want := `{"id":2,"parent":1,"kind":"fault","tag":"drop","flags":0,"a":3,"b":7,"start":150,"end":150,"clock":0,"v":1}`; lines[2] != want {
		t.Fatalf("line 2 = %s, want %s", lines[2], want)
	}
}

func TestAppendAndNextIDDoNotAllocate(t *testing.T) {
	r := NewRecorder(64)
	s := Span{Kind: KindStep, A: 1, B: 2, Start: 10, End: 11, Value: 3}
	if n := testing.AllocsPerRun(200, func() { r.Append(s) }); n != 0 {
		t.Errorf("Append allocates %.1f per call, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() { r.NextID() }); n != 0 {
		t.Errorf("NextID allocates %.1f per call, want 0", n)
	}
}

func TestConcurrentAppendKeepsAccounting(t *testing.T) {
	r := NewRecorder(128)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			for i := 0; i < 1000; i++ {
				r.Append(Span{Kind: KindStep})
			}
			done <- struct{}{}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if r.Total() != 4000 || r.Dropped() != 4000-128 {
		t.Fatalf("total/dropped = %d/%d, want 4000/%d", r.Total(), r.Dropped(), 4000-128)
	}
}
