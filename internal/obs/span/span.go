// Package span is the causal tracing layer on top of internal/obs: a
// bounded ring of hierarchical span records (run → replication →
// sweep/session → step) plus the point records (drops, retransmits,
// timeouts, crashes, aborts) that attach to them.
//
// Spans are keyed on logical time only — DES virtual time, step counters,
// session sequence numbers — never the wall clock, so a span trace is a pure
// function of the seed and the determinism analyzer stays clean. Causality
// across machines is captured by Lamport clocks: each netsim machine keeps a
// counter that is bumped on every send and merged (max + 1) on every
// receive, and the clock value at a span's close (or at a point record) is
// stored in Span.Clock. Sorting the records of one trace by Clock yields an
// order consistent with the happened-before relation.
//
// The design constraints mirror obs.Tracer:
//
//  1. Fixed-size records. A Span holds no pointers, so the ring never
//     allocates after construction and Append is safe on the //hetlb:noalloc
//     step paths.
//  2. Bounded. When the ring is full the oldest records are overwritten and
//     counted in Dropped; the JSONL header makes truncation self-describing.
//  3. Deterministic IDs. IDs are allocated sequentially from a per-recorder
//     namespace. The replication harness gives replication i the namespace
//     (i+1)<<32 and merges the per-replication rings in index order after
//     the pool drains, so a merged trace is bit-identical for every worker
//     count.
package span

import (
	"bufio"
	"fmt"
	"io"
	"sync"
)

// ID identifies a span within one trace. 0 means "no span" (a root record,
// or span tracking disabled).
type ID uint64

// subShift is the namespace shift used by NewSub: the low 32 bits count
// records within a namespace, the high 32 bits name the namespace.
const subShift = 32

// Kind classifies a record.
type Kind uint8

// Record kinds, from coarse to fine. KindFault records are points, not
// intervals: they attach a fault occurrence to the session (Parent) that
// suffered it.
const (
	// KindRun spans a whole engine/simulator run.
	KindRun Kind = iota + 1
	// KindReplication spans one harness replication (A = index).
	KindReplication
	// KindSweep spans one cell of a parameter sweep (Value = cell index).
	KindSweep
	// KindSession spans one pairwise balancing session or steal episode
	// (A = initiator/thief, B = target/victim). In netsim each participating
	// side appends one close record for the same ID, distinguished by Tag;
	// consumers merge by ID.
	KindSession
	// KindStep spans one sequential engine step (A, B = the balanced pair).
	KindStep
	// KindFault is a point record: Parent is the suffering session (0 when
	// none was open), Tag names the fault.
	KindFault
)

// String returns the stable wire name (tests pin these).
func (k Kind) String() string {
	switch k {
	case KindRun:
		return "run"
	case KindReplication:
		return "replication"
	case KindSweep:
		return "sweep"
	case KindSession:
		return "session"
	case KindStep:
		return "step"
	case KindFault:
		return "fault"
	}
	return "unknown"
}

// Tag refines a record: the role that closed a session span, or the fault
// type of a KindFault point.
type Tag uint8

// Tags. TagInitiator/TagTarget mark which side of a netsim session appended
// the close record; the rest name fault events.
const (
	TagNone Tag = iota
	TagInitiator
	TagTarget
	// TagDrop: the fault plan dropped a message of this session.
	TagDrop
	// TagRetransmit: a message of this session was re-sent.
	TagRetransmit
	// TagTimeout: a lease expired while this session was open.
	TagTimeout
	// TagCrash: a machine participating in this session crashed.
	TagCrash
	// TagRecover: a machine came back (Parent = 0; machine-level event).
	TagRecover
)

// String returns the stable wire name ("" for TagNone; tests pin these).
func (t Tag) String() string {
	switch t {
	case TagNone:
		return ""
	case TagInitiator:
		return "initiator"
	case TagTarget:
		return "target"
	case TagDrop:
		return "drop"
	case TagRetransmit:
		return "retransmit"
	case TagTimeout:
		return "timeout"
	case TagCrash:
		return "crash"
	case TagRecover:
		return "recover"
	}
	return "unknown"
}

// Flags records how a span ended (bitmask; sessions may carry several, e.g.
// Aborted|Crashed).
type Flags uint8

// Flag bits.
const (
	// FlagCommitted: the session completed its handshake (ownership moved).
	FlagCommitted Flags = 1 << iota
	// FlagAborted: the session ended without a commit.
	FlagAborted
	// FlagRejected: the REQUEST hit a busy target.
	FlagRejected
	// FlagCrashed: a participant crashed while the span was open.
	FlagCrashed
	// FlagFailed: the spanned work returned an error (replications).
	FlagFailed
)

// Span is one record: a closed interval [Start, End] in the emitting
// runtime's logical time unit, or a point (Start == End) for KindFault.
// A and B carry the actor machines (-1 when absent), Value a kind-specific
// payload (jobs moved for sessions/steps, message kind for drops), Clock the
// Lamport clock at the close (0 when the runtime keeps no clocks).
type Span struct {
	ID     ID
	Parent ID
	Kind   Kind
	Tag    Tag
	Flags  Flags
	A, B   int32
	Start  int64
	End    int64
	Clock  uint64
	Value  int64
}

// Recorder is a bounded ring of Span records plus the trace's ID allocator.
// A single short mutex guards both; Append and NextID never allocate.
type Recorder struct {
	mu    sync.Mutex
	buf   []Span
	total uint64 // records ever appended
	next  uint64 // records IDs handed out in this namespace
	base  ID     // namespace ORed into every ID
	root  ID     // parent for the runtimes' top-level spans
	ns    uint64 // sub-recorder namespaces claimed so far (root recorder only)
}

// NewRecorder returns a recorder holding up to capacity records
// (capacity >= 1) in the root namespace.
func NewRecorder(capacity int) *Recorder {
	if capacity < 1 {
		panic("span: recorder capacity must be >= 1")
	}
	return &Recorder{buf: make([]Span, capacity)}
}

// NewSub returns a recorder in namespace ns (>= 1): its IDs are
// ns<<32 | seq, disjoint from the root namespace and from every other
// sub-recorder, so rings filled independently (one per harness replication)
// can be merged into one trace without collisions.
func NewSub(capacity int, ns uint64) *Recorder {
	if ns < 1 || ns >= 1<<subShift {
		panic("span: sub-recorder namespace must be in [1, 1<<32)")
	}
	r := NewRecorder(capacity)
	r.base = ID(ns << subShift)
	return r
}

// ClaimNamespaces reserves n consecutive sub-recorder namespaces on this
// recorder and returns the first (namespaces start at 1). The replication
// harness claims one block per Map call, so successive runs merging into
// the same trace — the cells of a sweep — never collide.
func (r *Recorder) ClaimNamespaces(n int) uint64 {
	r.mu.Lock()
	base := r.ns + 1
	r.ns += uint64(n)
	r.mu.Unlock()
	return base
}

// NextID allocates the next span ID. Use it when a span's record is
// appended only at its close but its ID must travel earlier (on messages,
// in fault point records).
func (r *Recorder) NextID() ID {
	r.mu.Lock()
	r.next++
	id := r.base | ID(r.next)
	r.mu.Unlock()
	return id
}

// SetRoot declares the span under which the next runtime run should hang
// (the harness sets it to the replication span). 0 clears it.
func (r *Recorder) SetRoot(id ID) {
	r.mu.Lock()
	r.root = id
	r.mu.Unlock()
}

// Root returns the declared parent for top-level runtime spans (0 if none).
func (r *Recorder) Root() ID {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.root
}

// Append records s, assigning it a fresh ID first when s.ID is 0, and
// returns the recorded ID. When the ring is full the oldest record is
// overwritten.
func (r *Recorder) Append(s Span) ID {
	r.mu.Lock()
	if s.ID == 0 {
		r.next++
		s.ID = r.base | ID(r.next)
	}
	r.buf[r.total%uint64(len(r.buf))] = s
	r.total++
	id := s.ID
	r.mu.Unlock()
	return id
}

// Len returns the number of records currently retained.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.total < uint64(len(r.buf)) {
		return int(r.total)
	}
	return len(r.buf)
}

// Total returns the number of records ever appended.
func (r *Recorder) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Dropped returns how many records were overwritten before being read.
func (r *Recorder) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.total <= uint64(len(r.buf)) {
		return 0
	}
	return r.total - uint64(len(r.buf))
}

// Spans returns the retained records, oldest first.
func (r *Recorder) Spans() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := uint64(len(r.buf))
	if r.total <= n {
		return append([]Span(nil), r.buf[:r.total]...)
	}
	start := r.total % n
	out := make([]Span, 0, n)
	out = append(out, r.buf[start:]...)
	return append(out, r.buf[:start]...)
}

// Reset empties the ring and the accounting; the ID allocator keeps
// advancing so IDs are never reused within a recorder's lifetime.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.total = 0
	r.mu.Unlock()
}

// Merge appends every retained record of src (oldest first) into r,
// preserving IDs. Use it only with disjoint namespaces (NewSub): the
// harness merges per-replication rings in index order, which keeps the
// merged trace deterministic for any worker count.
func (r *Recorder) Merge(src *Recorder) {
	for _, s := range src.Spans() {
		r.Append(s)
	}
}

// WriteJSONL writes a self-describing header line followed by one record
// per line:
//
//	{"meta":"hetlb-spans","version":1,"total":9,"dropped":0,"retained":9}
//	{"id":1,"parent":0,"kind":"session","tag":"target","flags":1,"a":3,"b":7,"start":120,"end":190,"clock":42,"v":5}
//
// The header's dropped count makes truncated traces self-describing; flags
// is the raw Flags bitmask.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	spans := r.Spans()
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "{\"meta\":\"hetlb-spans\",\"version\":1,\"total\":%d,\"dropped\":%d,\"retained\":%d}\n",
		r.Total(), r.Dropped(), len(spans))
	for _, s := range spans {
		fmt.Fprintf(bw, "{\"id\":%d,\"parent\":%d,\"kind\":%q,\"tag\":%q,\"flags\":%d,\"a\":%d,\"b\":%d,\"start\":%d,\"end\":%d,\"clock\":%d,\"v\":%d}\n",
			uint64(s.ID), uint64(s.Parent), s.Kind.String(), s.Tag.String(), s.Flags, s.A, s.B, s.Start, s.End, s.Clock, s.Value)
	}
	return bw.Flush()
}
