package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestTracerRingOverflow(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Emit(Event{Time: int64(i), Type: EvPairSelected})
	}
	if tr.Total() != 10 {
		t.Fatalf("total = %d, want 10", tr.Total())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
	events := tr.Events()
	if len(events) != 4 {
		t.Fatalf("len = %d, want 4", len(events))
	}
	for k, e := range events {
		if e.Time != int64(6+k) {
			t.Fatalf("event %d has time %d, want %d (oldest-first order)", k, e.Time, 6+k)
		}
	}
}

func TestTracerNoOverflow(t *testing.T) {
	tr := NewTracer(8)
	tr.Emit(Event{Time: 1})
	tr.Emit(Event{Time: 2})
	if tr.Dropped() != 0 {
		t.Fatalf("dropped = %d, want 0", tr.Dropped())
	}
	ev := tr.Events()
	if len(ev) != 2 || ev[0].Time != 1 || ev[1].Time != 2 {
		t.Fatalf("events = %v", ev)
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Total() != 0 {
		t.Fatal("Reset did not clear the tracer")
	}
}

func TestEventTypeNames(t *testing.T) {
	// The wire names are part of the export format; pin them.
	want := map[EventType]string{
		EvPairSelected:   "pair-selected",
		EvJobsMigrated:   "jobs-migrated",
		EvMessageSent:    "message-sent",
		EvMessageRecv:    "message-recv",
		EvStealAttempt:   "steal-attempt",
		EvStealSuccess:   "steal-success",
		EvMakespanSample: "makespan-sample",
		EvSessionStart:   "session-start",
		EvSessionEnd:     "session-end",
	}
	for ty, name := range want {
		if ty.String() != name {
			t.Errorf("%d.String() = %q, want %q", ty, ty.String(), name)
		}
	}
	if EventType(0).String() != "unknown" {
		t.Error("zero event type should stringify as unknown")
	}
}

func TestWriteJSONL(t *testing.T) {
	tr := NewTracer(8)
	tr.Emit(Event{Time: 5, Type: EvStealSuccess, A: 1, B: 2, Value: 3})
	tr.Emit(Event{Time: 6, Type: EvMakespanSample, A: -1, B: -1, Value: 77})
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want header + 2 events", len(lines))
	}
	var hdr struct {
		Meta     string `json:"meta"`
		Version  int    `json:"version"`
		Total    uint64 `json:"total"`
		Dropped  uint64 `json:"dropped"`
		Retained int    `json:"retained"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil {
		t.Fatalf("header invalid JSON: %v", err)
	}
	if hdr.Meta != "hetlb-events" || hdr.Version != 1 || hdr.Total != 2 || hdr.Dropped != 0 || hdr.Retained != 2 {
		t.Fatalf("header = %+v", hdr)
	}
	var rec struct {
		T    int64  `json:"t"`
		Type string `json:"type"`
		A    int32  `json:"a"`
		B    int32  `json:"b"`
		V    int64  `json:"v"`
	}
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatalf("line 1 invalid JSON: %v", err)
	}
	if rec.T != 5 || rec.Type != "steal-success" || rec.A != 1 || rec.B != 2 || rec.V != 3 {
		t.Fatalf("line 1 = %+v", rec)
	}
}

// A truncated trace must say so in its header.
func TestWriteJSONLHeaderReportsDrops(t *testing.T) {
	tr := NewTracer(2)
	for i := 0; i < 5; i++ {
		tr.Emit(Event{Time: int64(i), Type: EvPairSelected})
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	want := `{"meta":"hetlb-events","version":1,"total":5,"dropped":3,"retained":2}`
	if first := strings.SplitN(buf.String(), "\n", 2)[0]; first != want {
		t.Fatalf("header = %s, want %s", first, want)
	}
}

func TestInstrumentTracer(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(2)
	InstrumentTracer(reg, tr)
	for i := 0; i < 3; i++ {
		tr.Emit(Event{Time: int64(i)})
	}
	snap := reg.Snapshot()
	if got := snap["trace_ring_events_total"]; got.Type != "counter" || got.Value != 3 {
		t.Fatalf("trace_ring_events_total = %+v, want counter 3", got)
	}
	if got := snap["trace_ring_dropped_total"]; got.Value != 1 {
		t.Fatalf("trace_ring_dropped_total = %+v, want 1", got)
	}
	// Re-instrumenting with a fresh tracer re-points the samplers.
	tr2 := NewTracer(2)
	InstrumentTracer(reg, tr2)
	if got := reg.Snapshot()["trace_ring_events_total"]; got.Value != 0 {
		t.Fatalf("after re-instrumenting, trace_ring_events_total = %d, want 0", got.Value)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracer(8)
	tr.Emit(Event{Time: 10, Type: EvPairSelected, A: 3, B: 4, Value: 2})
	tr.Emit(Event{Time: 20, Type: EvMakespanSample, A: -1, B: -1, Value: 9})
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Pid  int    `json:"pid"`
			Tid  int    `json:"tid"`
			Ts   int64  `json:"ts"`
			Args struct {
				A     int32 `json:"a"`
				B     int32 `json:"b"`
				Value int64 `json:"value"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace invalid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(doc.TraceEvents))
	}
	e0 := doc.TraceEvents[0]
	if e0.Name != "pair-selected" || e0.Ph != "i" || e0.Tid != 3 || e0.Ts != 10 || e0.Args.Value != 2 {
		t.Fatalf("event 0 = %+v", e0)
	}
	// Negative actor maps to tid 0 so viewers do not choke.
	if doc.TraceEvents[1].Tid != 0 {
		t.Fatalf("makespan sample tid = %d, want 0", doc.TraceEvents[1].Tid)
	}
}
