// Package obs is the observability substrate shared by every runtime in the
// repository: a concurrency-safe metrics registry (counters, gauges,
// fixed-bucket histograms, per-index vectors) plus a structured event tracer
// (bounded ring buffer of typed events).
//
// Design constraints, in order:
//
//  1. Zero dependencies. Only the standard library; the exposition formats
//     (Prometheus text, JSON snapshot, JSONL, Chrome trace_event) are
//     emitted by hand.
//  2. Allocation-free record path. Counter.Add, Gauge.Set,
//     Histogram.Observe, CounterVec.At(i).Add and Tracer.Emit perform no
//     heap allocation, so they are safe on the distrun goroutine-per-machine
//     hot path and inside the gossip step loop. This is asserted by
//     testing.AllocsPerRun in the package tests.
//  3. Concurrency-safe. All record operations may be called from any number
//     of goroutines; metrics use atomics, the tracer a single short mutex.
//
// Registration is idempotent: asking a Registry for a metric that already
// exists returns the existing instrument (and panics if the name is reused
// with a different shape), so experiment loops can re-wire the same registry
// across repeated runs and accumulate.
package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the Prometheus exposition to stay
// truthful; this is not enforced on the hot path).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// SetMax raises the gauge to v if v is larger (atomic; useful for peaks).
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram over int64 observations. Bucket i
// counts observations v with v <= Bounds[i] (cumulative counting happens at
// exposition time, not record time); the implicit last bucket is +Inf.
type Histogram struct {
	bounds []int64        // strictly increasing upper bounds
	counts []atomic.Int64 // len(bounds)+1; last is the overflow bucket
	sum    atomic.Int64
	count  atomic.Int64
}

// Observe records one observation. The bucket scan is linear: bucket slices
// are short (tens of entries) and the loop is branch-predictable, which
// beats a binary search at this size and keeps the path trivially
// allocation-free.
func (h *Histogram) Observe(v int64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Bounds returns the bucket upper bounds (not a copy; do not mutate).
func (h *Histogram) Bounds() []int64 { return h.bounds }

// BucketCount returns the raw (non-cumulative) count of bucket i, where
// i == len(Bounds()) addresses the overflow (+Inf) bucket.
func (h *Histogram) BucketCount(i int) int64 { return h.counts[i].Load() }

// Quantile estimates the q-quantile (q in [0, 1], clamped) of the observed
// distribution by linear interpolation within the bucket holding the target
// rank, taking each bucket's lower bound as the previous bound (0 for the
// first). Estimates falling in the +Inf overflow bucket are clamped to the
// last finite bound — the histogram cannot know how far beyond it the tail
// reaches. Returns 0 when nothing was observed.
//
// The estimate reads each bucket once without locking the histogram;
// concurrent Observe calls can skew a live estimate by at most the
// in-flight observations, and a quiesced histogram (the explain pipeline's
// case) is exact up to bucket resolution.
func (h *Histogram) Quantile(q float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	var lower int64
	for i, b := range h.bounds {
		c := h.counts[i].Load()
		cum += c
		// Empty buckets are skipped, so q = 0 lands on the first non-empty
		// bucket's lower bound (the observed minimum, up to resolution).
		if c > 0 && float64(cum) >= rank {
			frac := (rank - float64(cum-c)) / float64(c)
			return float64(lower) + frac*float64(b-lower)
		}
		lower = b
	}
	return float64(h.bounds[len(h.bounds)-1])
}

// Pow2Bounds returns the bounds 1, 2, 4, ..., 2^maxExp — the default bucket
// layout for nonnegative integer quantities of unknown magnitude (job
// counts, virtual-time durations, nanoseconds).
func Pow2Bounds(maxExp int) []int64 {
	if maxExp < 0 {
		panic("obs: Pow2Bounds needs maxExp >= 0")
	}
	b := make([]int64, maxExp+1)
	for i := range b {
		b[i] = int64(1) << uint(i)
	}
	return b
}

// LinearBounds returns n bounds start, start+width, ..., start+(n-1)*width.
func LinearBounds(start, width int64, n int) []int64 {
	if n <= 0 || width <= 0 {
		panic("obs: LinearBounds needs n > 0 and width > 0")
	}
	b := make([]int64, n)
	for i := range b {
		b[i] = start + int64(i)*width
	}
	return b
}

// CounterVec is a fixed-cardinality family of counters indexed by a small
// dense integer domain (machine index, message kind). All cells are
// allocated at registration, so At is a slice index and recording through a
// cell is allocation-free.
type CounterVec struct {
	label  string
	values []string
	cells  []Counter
}

// At returns the counter for index i.
func (v *CounterVec) At(i int) *Counter { return &v.cells[i] }

// Len returns the number of cells.
func (v *CounterVec) Len() int { return len(v.cells) }

// Total returns the sum over all cells.
func (v *CounterVec) Total() int64 {
	var t int64
	for i := range v.cells {
		t += v.cells[i].Value()
	}
	return t
}

// IndexLabels returns the label values "0", "1", ..., "n-1" for vectors
// indexed by machine number.
func IndexLabels(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%d", i)
	}
	return out
}

// metricKind discriminates registry entries.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindCounterVec
	kindCounterFunc
)

func (k metricKind) String() string {
	switch k {
	case kindCounter, kindCounterVec, kindCounterFunc:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "unknown"
}

// entry is one registered metric.
type entry struct {
	name, help string
	kind       metricKind
	c          *Counter
	g          *Gauge
	h          *Histogram
	cv         *CounterVec
	fn         func() int64 // kindCounterFunc: sampled at exposition
}

// Registry holds named metrics and renders them. Registration takes a lock;
// recording through the returned instruments does not touch the registry at
// all.
type Registry struct {
	mu      sync.Mutex
	byName  map[string]*entry
	ordered []*entry // registration order, for stable exposition
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*entry)}
}

// lookup returns the existing entry for name after checking its kind, or
// nil if the name is free.
func (r *Registry) lookup(name string, kind metricKind) *entry {
	e, ok := r.byName[name]
	if !ok {
		validateName(name)
		return nil
	}
	if e.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %v (was %v)", name, kind, e.kind))
	}
	return e
}

func (r *Registry) add(e *entry) {
	r.byName[e.name] = e
	r.ordered = append(r.ordered, e)
}

// Counter returns the counter registered under name, creating it on first
// use. It panics if the name is already used by a different metric kind.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.lookup(name, kindCounter); e != nil {
		return e.c
	}
	e := &entry{name: name, help: help, kind: kindCounter, c: &Counter{}}
	r.add(e)
	return e.c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.lookup(name, kindGauge); e != nil {
		return e.g
	}
	e := &entry{name: name, help: help, kind: kindGauge, g: &Gauge{}}
	r.add(e)
	return e.g
}

// Histogram returns the histogram registered under name, creating it on
// first use with the given strictly increasing bucket bounds. Re-requesting
// the name with different bounds panics.
func (r *Registry) Histogram(name, help string, bounds []int64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not strictly increasing", name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.lookup(name, kindHistogram); e != nil {
		if !equalBounds(e.h.bounds, bounds) {
			panic(fmt.Sprintf("obs: histogram %q re-registered with different bounds", name))
		}
		return e.h
	}
	h := &Histogram{
		bounds: append([]int64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	e := &entry{name: name, help: help, kind: kindHistogram, h: h}
	r.add(e)
	return e.h
}

// CounterFunc registers a pull-style counter: fn is sampled at exposition
// time instead of being recorded into. Use it to surface monotone state
// another component already tracks — the canonical example is a tracer
// ring's emitted/dropped accounting (InstrumentTracer). Re-registering the
// name replaces the sampler, so a registry outliving its tracer can be
// re-pointed at a fresh one. fn must be safe to call from any goroutine and
// should be monotone non-decreasing for the exposition to stay truthful.
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	if fn == nil {
		panic("obs: CounterFunc needs a sampler")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.lookup(name, kindCounterFunc); e != nil {
		e.fn = fn
		return
	}
	r.add(&entry{name: name, help: help, kind: kindCounterFunc, fn: fn})
}

// CounterVec returns the counter vector registered under name, creating it
// on first use with one cell per label value. Re-requesting the name with a
// different label or cardinality panics.
func (r *Registry) CounterVec(name, help, label string, values []string) *CounterVec {
	if len(values) == 0 {
		panic("obs: counter vector needs at least one label value")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.lookup(name, kindCounterVec); e != nil {
		if e.cv.label != label || len(e.cv.values) != len(values) {
			panic(fmt.Sprintf("obs: counter vector %q re-registered with a different shape", name))
		}
		return e.cv
	}
	cv := &CounterVec{
		label:  label,
		values: append([]string(nil), values...),
		cells:  make([]Counter, len(values)),
	}
	e := &entry{name: name, help: help, kind: kindCounterVec, cv: cv}
	r.add(e)
	return e.cv
}

// snapshotEntries copies the entry list under the lock so exposition can
// iterate without holding it (values are read atomically per instrument).
func (r *Registry) snapshotEntries() []*entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*entry(nil), r.ordered...)
}

// validateName enforces the Prometheus metric-name charset so exported text
// is always scrapeable.
func validateName(name string) {
	if name == "" {
		panic("obs: empty metric name")
	}
	for i, ch := range name {
		letter := ch == '_' || ch == ':' ||
			(ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z')
		digit := ch >= '0' && ch <= '9'
		if !letter && !(digit && i > 0) {
			panic(fmt.Sprintf("obs: invalid metric name %q", name))
		}
	}
}

func equalBounds(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
