package exact

import (
	"testing"

	"hetlb/internal/core"
	"hetlb/internal/rng"
	"hetlb/internal/workload"
)

// bruteForce enumerates all m^n assignments. Ground truth for the solver.
func bruteForce(m core.CostModel) core.Cost {
	n := m.NumJobs()
	mm := m.NumMachines()
	best := core.Cost(1) << 62
	machOf := make([]int, n)
	var rec func(j int)
	rec = func(j int) {
		if j == n {
			load := make([]core.Cost, mm)
			for jj, i := range machOf {
				load[i] += m.Cost(i, jj)
			}
			var mx core.Cost
			for _, l := range load {
				if l > mx {
					mx = l
				}
			}
			if mx < best {
				best = mx
			}
			return
		}
		for i := 0; i < mm; i++ {
			machOf[j] = i
			rec(j + 1)
		}
	}
	rec(0)
	return best
}

func TestSolveMatchesBruteForce(t *testing.T) {
	gen := rng.New(2024)
	for iter := 0; iter < 120; iter++ {
		m := 2 + gen.Intn(2) // 2..3 machines
		n := 1 + gen.Intn(6) // 1..6 jobs
		d := workload.UniformDense(gen, m, n, 1, 20)
		want := bruteForce(d)
		res := Solve(d)
		if !res.Proven {
			t.Fatal("Solve did not prove optimality on a tiny instance")
		}
		if res.Opt != want {
			t.Fatalf("Solve = %d, brute force = %d (m=%d n=%d)", res.Opt, want, m, n)
		}
		if res.Assignment == nil || !res.Assignment.Complete() {
			t.Fatal("Solve returned incomplete assignment")
		}
		if res.Assignment.Makespan() != res.Opt {
			t.Fatalf("assignment makespan %d != reported opt %d", res.Assignment.Makespan(), res.Opt)
		}
	}
}

func TestSolveIdenticalSymmetryBreaking(t *testing.T) {
	// On identical machines symmetry breaking should keep the node count
	// small; a unit-jobs instance must produce a perfectly balanced OPT.
	id, _ := core.NewIdentical(4, []core.Cost{1, 1, 1, 1, 1, 1, 1, 1})
	res := Solve(id)
	if res.Opt != 2 {
		t.Fatalf("Opt = %d, want 2", res.Opt)
	}
	if res.Nodes > 100000 {
		t.Fatalf("symmetry breaking ineffective: %d nodes", res.Nodes)
	}
}

func TestSolveRespectsLowerBound(t *testing.T) {
	gen := rng.New(4)
	for iter := 0; iter < 50; iter++ {
		d := workload.UniformDense(gen, 3, 7, 1, 30)
		res := Solve(d)
		if lb := core.LowerBound(d); res.Opt < lb {
			t.Fatalf("Opt %d below lower bound %d", res.Opt, lb)
		}
	}
}

func TestSolveTableIOptimum(t *testing.T) {
	d, _ := workload.WorkStealingTrap(100)
	res := Solve(d)
	if res.Opt != 2 {
		t.Fatalf("Table I optimum = %d, want 2", res.Opt)
	}
}

func TestSolveTableIIOptimum(t *testing.T) {
	d, _ := workload.PairwiseTrap(50)
	res := Solve(d)
	if res.Opt != 1 {
		t.Fatalf("Table II optimum = %d, want 1", res.Opt)
	}
}

func TestSolveBudgetExhaustion(t *testing.T) {
	gen := rng.New(9)
	d := workload.UniformDense(gen, 4, 12, 1, 1000)
	res := SolveBudget(d, 10)
	if res.Proven {
		t.Fatal("10-node budget cannot prove optimality on a 4x12 instance")
	}
	// Even unproven, the incumbent must be a feasible makespan.
	if res.Assignment == nil || res.Assignment.Makespan() != res.Opt {
		t.Fatal("unproven result must still carry its incumbent")
	}
}

func TestSolveEmptyInstance(t *testing.T) {
	id, _ := core.NewIdentical(3, nil)
	res := Solve(id)
	if res.Opt != 0 || !res.Proven {
		t.Fatalf("empty instance: opt=%d proven=%v", res.Opt, res.Proven)
	}
}

func TestSolveTwoClusterAgainstFractionalLB(t *testing.T) {
	gen := rng.New(31)
	for iter := 0; iter < 40; iter++ {
		tc := workload.UniformTwoCluster(gen, 2, 2, 8, 1, 25)
		res := Solve(tc)
		if !res.Proven {
			t.Fatal("small two-cluster instance not proven")
		}
		if lb := core.TwoClusterFractionalLB(tc); float64(res.Opt) < lb-1e-9 {
			t.Fatalf("Opt %d below fractional LB %v", res.Opt, lb)
		}
	}
}

func BenchmarkSolve3x8(b *testing.B) {
	gen := rng.New(7)
	d := workload.UniformDense(gen, 3, 8, 1, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Solve(d)
	}
}
