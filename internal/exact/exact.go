// Package exact computes optimal makespans for small instances by branch and
// bound. It exists to provide ground truth (OPT) against which the tests and
// benchmarks measure the approximation ratios claimed by the paper
// (Theorem 5: MJTB ≤ k·OPT, Theorems 6/7: CLB2C and stable DLB2C ≤ 2·OPT).
//
// R||Cmax is NP-complete, so the solver is only intended for the instance
// sizes used in property tests (n ≲ 14, m ≲ 5); SolveBudget makes the node
// budget explicit for callers that must not block.
package exact

import (
	"sort"

	"hetlb/internal/core"
)

// Result is the outcome of an exact solve.
type Result struct {
	// Opt is the optimal makespan (valid only if Proven).
	Opt core.Cost
	// Assignment achieves Opt (valid only if Proven).
	Assignment *core.Assignment
	// Proven reports whether the search ran to completion within its node
	// budget. If false, Opt is the best upper bound found so far.
	Proven bool
	// Nodes is the number of branch-and-bound nodes expanded.
	Nodes int64
}

// Solve runs branch and bound to completion and returns the optimal
// makespan. Intended for small instances only.
func Solve(m core.CostModel) Result {
	return SolveBudget(m, 1<<62)
}

// SolveBudget runs branch and bound expanding at most maxNodes nodes.
func SolveBudget(m core.CostModel, maxNodes int64) Result {
	s := newSolver(m, maxNodes)
	s.run()
	res := Result{
		Opt:    s.bestVal,
		Proven: s.nodes < s.maxNodes,
		Nodes:  s.nodes,
	}
	if s.bestOf != nil {
		a, err := core.FromMachineOf(m, s.bestOf)
		if err != nil {
			panic(err) // solver produced an invalid mapping: internal bug
		}
		res.Assignment = a
	}
	return res
}

type solver struct {
	model    core.CostModel
	order    []int // jobs in branching order (decreasing min cost)
	sufMin   []core.Cost
	load     []core.Cost
	machOf   []int
	bestVal  core.Cost
	bestOf   []int
	nodes    int64
	maxNodes int64
	classes  []int // machine equivalence class ids (identical cost columns)
}

func newSolver(m core.CostModel, maxNodes int64) *solver {
	n := m.NumJobs()
	mm := m.NumMachines()
	s := &solver{
		model:    m,
		order:    make([]int, n),
		sufMin:   make([]core.Cost, n+1),
		load:     make([]core.Cost, mm),
		machOf:   make([]int, n),
		maxNodes: maxNodes,
	}
	for j := range s.order {
		s.order[j] = j
		s.machOf[j] = -1
	}
	// Branch on "hard" jobs first: decreasing cheapest execution time. This
	// tightens the incumbent early and makes the average-load bound bite.
	minCost := make([]core.Cost, n)
	for j := 0; j < n; j++ {
		minCost[j], _ = core.MinCost(m, j)
	}
	sort.Slice(s.order, func(a, b int) bool { return minCost[s.order[a]] > minCost[s.order[b]] })
	for k := n - 1; k >= 0; k-- {
		s.sufMin[k] = s.sufMin[k+1] + minCost[s.order[k]]
	}

	// Machine equivalence classes for symmetry breaking: two machines with
	// identical cost columns and equal current load are interchangeable, so
	// only the first of each (class, load) group is branched on.
	s.classes = make([]int, mm)
	for i := range s.classes {
		s.classes[i] = -1
	}
	next := 0
	for i := 0; i < mm; i++ {
		if s.classes[i] != -1 {
			continue
		}
		s.classes[i] = next
		for k := i + 1; k < mm; k++ {
			if s.classes[k] != -1 {
				continue
			}
			same := true
			for j := 0; j < n && same; j++ {
				same = m.Cost(i, j) == m.Cost(k, j)
			}
			if same {
				s.classes[k] = next
			}
		}
		next++
	}

	// Greedy incumbent (earliest completion time) to start with a finite
	// upper bound.
	greedyLoad := make([]core.Cost, mm)
	greedyOf := make([]int, n)
	for _, j := range s.order {
		best := 0
		bestC := greedyLoad[0] + m.Cost(0, j)
		for i := 1; i < mm; i++ {
			if c := greedyLoad[i] + m.Cost(i, j); c < bestC {
				best, bestC = i, c
			}
		}
		greedyLoad[best] += m.Cost(best, j)
		greedyOf[j] = best
	}
	var gMax core.Cost
	for _, l := range greedyLoad {
		if l > gMax {
			gMax = l
		}
	}
	s.bestVal = gMax
	s.bestOf = append([]int(nil), greedyOf...)
	return s
}

func (s *solver) run() {
	s.branch(0, 0)
}

// branch assigns s.order[k] onward; curMax is the makespan of the partial
// assignment so far.
func (s *solver) branch(k int, curMax core.Cost) {
	if s.nodes >= s.maxNodes {
		return
	}
	s.nodes++
	if curMax >= s.bestVal {
		return
	}
	n := s.model.NumJobs()
	if k == n {
		s.bestVal = curMax
		s.bestOf = append(s.bestOf[:0], s.machOf...)
		return
	}
	// Average-load bound: even if the remaining work spreads perfectly over
	// all machines at cheapest cost, the makespan cannot beat this.
	var total core.Cost
	for _, l := range s.load {
		total += l
	}
	mm := core.Cost(s.model.NumMachines())
	if lb := (total + s.sufMin[k] + mm - 1) / mm; lb >= s.bestVal && lb > curMax {
		// The bound only prunes when it also exceeds curMax, otherwise the
		// curMax check above already covers it.
		return
	}

	j := s.order[k]
	// Candidate machines sorted by resulting load so promising branches are
	// explored first (best-first within the node).
	type cand struct {
		machine int
		newLoad core.Cost
	}
	cands := make([]cand, 0, s.model.NumMachines())
	for i := 0; i < s.model.NumMachines(); i++ {
		if s.skipSymmetric(i) {
			continue
		}
		nl := s.load[i] + s.model.Cost(i, j)
		if nl >= s.bestVal {
			continue
		}
		cands = append(cands, cand{i, nl})
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].newLoad < cands[b].newLoad })
	for _, c := range cands {
		s.load[c.machine] = c.newLoad
		s.machOf[j] = c.machine
		nm := curMax
		if c.newLoad > nm {
			nm = c.newLoad
		}
		s.branch(k+1, nm)
		s.load[c.machine] -= s.model.Cost(c.machine, j)
		s.machOf[j] = -1
	}
}

// skipSymmetric reports whether machine i is dominated by an earlier machine
// of the same equivalence class with the same load: assigning to either
// yields isomorphic subtrees, so only the first is explored.
func (s *solver) skipSymmetric(i int) bool {
	for k := 0; k < i; k++ {
		if s.classes[k] == s.classes[i] && s.load[k] == s.load[i] {
			return true
		}
	}
	return false
}
