// Package stats provides the small statistical toolkit used to reduce
// experiment output: summaries, quantiles, histograms and empirical
// CDFs/PDFs. It is deliberately dependency-free and operates on float64
// samples.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the usual descriptive statistics of a sample.
type Summary struct {
	N                               int
	Min, Max                        float64
	Mean, Std                       float64
	P25, Median, P75, P90, P95, P99 float64
}

// Summarize computes a Summary. It returns a zero Summary for an empty
// sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	// Welford's online update: the naive E[x²]−E[x]² form cancels
	// catastrophically when std ≪ mean (e.g. nanosecond timestamps around
	// 1e9) and can even go negative.
	var mean, m2 float64
	for k, v := range s {
		delta := v - mean
		mean += delta / float64(k+1)
		m2 += delta * (v - mean)
	}
	variance := m2 / float64(len(s)) // population variance, as before
	if variance < 0 {
		variance = 0
	}
	return Summary{
		N:      len(s),
		Min:    s[0],
		Max:    s[len(s)-1],
		Mean:   mean,
		Std:    math.Sqrt(variance),
		P25:    Quantile(s, 0.25),
		Median: Quantile(s, 0.5),
		P75:    Quantile(s, 0.75),
		P90:    Quantile(s, 0.90),
		P95:    Quantile(s, 0.95),
		P99:    Quantile(s, 0.99),
	}
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.3g p25=%.3g med=%.3g mean=%.3g p75=%.3g p90=%.3g max=%.3g std=%.3g",
		s.N, s.Min, s.P25, s.Median, s.Mean, s.P75, s.P90, s.Max, s.Std)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of an already sorted sample
// using linear interpolation between order statistics. It panics on an empty
// sample.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Quantile of empty sample")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Histogram is a fixed-width binning of a sample over [Lo, Hi).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Under  int // samples below Lo
	Over   int // samples at or above Hi
	Total  int
}

// NewHistogram builds a histogram with the given number of bins over
// [lo, hi). It panics if bins <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic("stats: histogram needs at least one bin")
	}
	if hi <= lo {
		panic("stats: histogram needs hi > lo")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.Total++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		k := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if k == len(h.Counts) { // x == Hi guarded above; float edge safety
			k--
		}
		h.Counts[k]++
	}
}

// BinCenter returns the center of bin k.
func (h *Histogram) BinCenter(k int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(k)+0.5)*w
}

// Density returns the empirical probability density of bin k (mass divided
// by bin width), so densities integrate to the in-range mass.
func (h *Histogram) Density(k int) float64 {
	if h.Total == 0 {
		return 0
	}
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return float64(h.Counts[k]) / float64(h.Total) / w
}

// Mass returns the fraction of all observations in bin k.
func (h *Histogram) Mass(k int) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Counts[k]) / float64(h.Total)
}

// Mode returns the center of the fullest bin.
func (h *Histogram) Mode() float64 {
	best := 0
	for k, c := range h.Counts {
		if c > h.Counts[best] {
			best = k
		}
	}
	return h.BinCenter(best)
}

// CDF is an empirical cumulative distribution function.
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF from a sample (copied and sorted).
func NewCDF(xs []float64) *CDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// At returns P(X ≤ x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// Upper bound: first index with sorted[i] > x.
	k := sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i] > x })
	return float64(k) / float64(len(c.sorted))
}

// InverseAt returns the q-quantile of the sample.
func (c *CDF) InverseAt(q float64) float64 {
	return Quantile(c.sorted, q)
}

// Len returns the sample size.
func (c *CDF) Len() int { return len(c.sorted) }

// Mean returns the arithmetic mean of a sample (0 for empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, v := range xs {
		sum += v
	}
	return sum / float64(len(xs))
}

// FromCosts converts an integer cost/load slice to float64 samples.
func FromCosts(cs []int64) []float64 {
	out := make([]float64, len(cs))
	for i, c := range cs {
		out[i] = float64(c)
	}
	return out
}
