package stats

import (
	"math"
	"testing"
	"testing/quick"

	"hetlb/internal/rng"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("bad extremes: %+v", s)
	}
	if !almost(s.Mean, 3) || !almost(s.Median, 3) {
		t.Fatalf("bad center: %+v", s)
	}
	if !almost(s.Std, math.Sqrt(2)) {
		t.Fatalf("std = %v, want sqrt(2)", s.Std)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary not zero: %+v", s)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Summarize mutated its input")
	}
}

func TestQuantileEndpoints(t *testing.T) {
	s := []float64{10, 20, 30, 40}
	if Quantile(s, 0) != 10 || Quantile(s, 1) != 40 {
		t.Fatal("endpoint quantiles wrong")
	}
	if !almost(Quantile(s, 0.5), 25) {
		t.Fatalf("median = %v, want 25", Quantile(s, 0.5))
	}
}

func TestQuantileMonotone(t *testing.T) {
	gen := rng.New(1)
	xs := make([]float64, 50)
	for i := range xs {
		xs[i] = gen.Float64() * 100
	}
	c := NewCDF(xs)
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := c.InverseAt(q)
		if v < prev {
			t.Fatalf("quantile not monotone at q=%v: %v < %v", q, v, prev)
		}
		prev = v
	}
}

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1.9, 2, 5.5, 9.99, -1, 10, 42} {
		h.Add(x)
	}
	if h.Total != 8 {
		t.Fatalf("Total = %d", h.Total)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Fatalf("Under=%d Over=%d", h.Under, h.Over)
	}
	if h.Counts[0] != 2 { // 0 and 1.9
		t.Fatalf("bin0 = %d", h.Counts[0])
	}
	if h.Counts[1] != 1 || h.Counts[2] != 1 || h.Counts[4] != 1 {
		t.Fatalf("counts = %v", h.Counts)
	}
}

func TestHistogramMassAndDensity(t *testing.T) {
	h := NewHistogram(0, 1, 2)
	h.Add(0.1)
	h.Add(0.2)
	h.Add(0.7)
	if !almost(h.Mass(0), 2.0/3) {
		t.Fatalf("Mass(0) = %v", h.Mass(0))
	}
	// bin width 0.5: density = mass / width.
	if !almost(h.Density(0), (2.0/3)/0.5) {
		t.Fatalf("Density(0) = %v", h.Density(0))
	}
	if !almost(h.Mode(), 0.25) {
		t.Fatalf("Mode = %v", h.Mode())
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 1, 0) },
		func() { NewHistogram(1, 1, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestCDFProperties(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	if !almost(c.At(0), 0) || !almost(c.At(5), 1) {
		t.Fatal("CDF tails wrong")
	}
	if !almost(c.At(2), 0.75) {
		t.Fatalf("At(2) = %v, want 0.75", c.At(2))
	}
	if !almost(c.At(1.5), 0.25) {
		t.Fatalf("At(1.5) = %v, want 0.25", c.At(1.5))
	}
	if c.Len() != 4 {
		t.Fatal("Len wrong")
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	gen := rng.New(2)
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = gen.Float64() * 10
	}
	c := NewCDF(xs)
	f := func(a, b float64) bool {
		x := math.Mod(math.Abs(a), 12)
		y := math.Mod(math.Abs(b), 12)
		if x > y {
			x, y = y, x
		}
		return c.At(x) <= c.At(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanAndFromCosts(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	xs := FromCosts([]int64{2, 4, 6})
	if !almost(Mean(xs), 4) {
		t.Fatalf("Mean = %v", Mean(xs))
	}
}

func TestHistogramDensityIntegratesToInRangeMass(t *testing.T) {
	gen := rng.New(3)
	h := NewHistogram(0, 100, 20)
	inRange := 0
	for i := 0; i < 1000; i++ {
		x := gen.Float64()*120 - 10
		h.Add(x)
		if x >= 0 && x < 100 {
			inRange++
		}
	}
	w := 100.0 / 20
	var integral float64
	for k := range h.Counts {
		integral += h.Density(k) * w
	}
	if !almost(integral, float64(inRange)/1000) {
		t.Fatalf("density integral %v != in-range mass %v", integral, float64(inRange)/1000)
	}
}

func TestSummarizeVarianceNearLargeMean(t *testing.T) {
	// Samples with a tiny spread around a huge mean — the regime where the
	// naive E[x²]−E[x]² variance cancels catastrophically (it yields 0 or
	// even negative for these inputs in float64). Welford must recover the
	// exact population std.
	base := 1e9
	offsets := []float64{0, 1, 2, 3, 4}
	xs := make([]float64, len(offsets))
	for i, o := range offsets {
		xs[i] = base + o
	}
	got := Summarize(xs).Std
	want := math.Sqrt(2.0) // population std of {0,1,2,3,4}
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("std near 1e9 mean = %v, want %v", got, want)
	}

	// Constant samples at an even larger magnitude must give exactly 0.
	for i := range xs {
		xs[i] = 1e15 + 0.5
	}
	if got := Summarize(xs).Std; got != 0 {
		t.Fatalf("std of constant sample = %v, want 0", got)
	}
}
