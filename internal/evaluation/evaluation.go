// Package evaluation regenerates the paper's full evaluation — Tables I/II,
// Figures 1–5 and the repo's extension studies — through the replication
// harness. It is the single implementation behind both command-line front
// ends (cmd/figures and `hetlb figures`): each step prints its table/ASCII
// rendering, writes a tidy CSV, and runs its replications on the harness
// worker pool, so one --parallel flag accelerates the whole evaluation
// without changing a single number (see the harness determinism contract).
package evaluation

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"hetlb/internal/core"
	"hetlb/internal/experiments"
	"hetlb/internal/harness"
	"hetlb/internal/plot"
	"hetlb/internal/stats"
)

// Config parameterizes one evaluation run.
type Config struct {
	// OutDir receives the CSV files; empty disables CSV output.
	OutDir string
	// Reduced runs the scaled-down configurations (the same structure at a
	// fraction of the size — suitable for smoke tests and CI) instead of
	// the paper-scale ones.
	Reduced bool
	// Full additionally includes the most expensive configurations
	// (Figure 2a with pmax=16, Figure 5 with the 512+256 system). Ignored
	// when Reduced is set.
	Full bool
	// Seed is the base random seed; each step derives its own offset from
	// it exactly as the original drivers did.
	Seed uint64
	// Harness configures the replication runner for every step:
	// parallelism, deadline, metrics, trace, progress.
	Harness harness.Options
	// Out receives the textual rendering; nil means os.Stdout.
	Out io.Writer
}

// StepNames returns the canonical step order ("all" runs them all).
func StepNames() []string {
	return []string{"tableI", "tableII", "fig1", "fig2a", "fig2b", "fig3", "fig4", "fig5", "extk", "extdyn", "residual", "chaos"}
}

// Run executes the named step ("all" for the whole evaluation) under cfg.
func Run(cfg Config, which string) error {
	r := runner{cfg: cfg, out: cfg.Out}
	if r.out == nil {
		r.out = os.Stdout
	}
	if cfg.OutDir != "" {
		if err := os.MkdirAll(cfg.OutDir, 0o755); err != nil {
			return err
		}
	}
	steps := map[string]func() error{
		"tableI":   r.tableI,
		"tableII":  r.tableII,
		"fig1":     r.figure1,
		"fig2a":    r.figure2a,
		"fig2b":    r.figure2b,
		"fig3":     r.figure3,
		"fig4":     r.figure4,
		"fig5":     r.figure5,
		"extk":     r.extKClusters,
		"extdyn":   r.extDynamic,
		"residual": r.residual,
		"chaos":    r.chaos,
	}
	if which != "all" {
		f, ok := steps[which]
		if !ok {
			return fmt.Errorf("unknown experiment %q (want all or one of %s)", which, strings.Join(StepNames(), ", "))
		}
		return f()
	}
	for _, name := range StepNames() {
		if err := steps[name](); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
	}
	return nil
}

type runner struct {
	cfg Config
	out io.Writer
}

func (r runner) printf(format string, args ...any) {
	fmt.Fprintf(r.out, format, args...)
}

func (r runner) writeCSV(name string, series []plot.Series) error {
	if r.cfg.OutDir == "" {
		return nil
	}
	path := filepath.Join(r.cfg.OutDir, name)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := plot.WriteCSV(f, series); err != nil {
		return err
	}
	r.printf("  wrote %s\n", path)
	return nil
}

func (r runner) tableI() error {
	r.printf("== Table I / Theorem 1: work stealing on the trap instance ==\n")
	ns := []core.Cost{10, 100, 1000, 10000, 100000}
	if r.cfg.Reduced {
		ns = []core.Cost{10, 100, 1000}
	}
	rows, err := experiments.TableIWith(r.cfg.Harness, ns, r.cfg.Seed)
	if err != nil {
		return err
	}
	var trows [][]string
	var xs, ys []float64
	for _, row := range rows {
		trows = append(trows, []string{
			fmt.Sprint(row.N), fmt.Sprint(row.FirstSteal), fmt.Sprint(row.Makespan),
			fmt.Sprint(row.Opt), fmt.Sprintf("%.1f", row.Ratio),
		})
		xs = append(xs, float64(row.N))
		ys = append(ys, row.Ratio)
	}
	r.printf("%s", plot.Table([]string{"n", "first steal", "WS makespan", "OPT", "ratio"}, trows))
	r.printf("shape check: first steal at n, makespan n+1, OPT 2 → unbounded ratio ✓\n")
	return r.writeCSV("tableI.csv", []plot.Series{plot.NewSeries("ws-ratio", xs, ys)})
}

func (r runner) tableII() error {
	r.printf("== Table II / Proposition 2: pairwise-optimal trap ==\n")
	ns := []core.Cost{10, 100, 1000, 10000}
	if r.cfg.Reduced {
		ns = []core.Cost{10, 100, 1000}
	}
	rows, err := experiments.TableIIWith(r.cfg.Harness, ns)
	if err != nil {
		return err
	}
	var trows [][]string
	var xs, ys []float64
	for _, row := range rows {
		trows = append(trows, []string{
			fmt.Sprint(row.N), fmt.Sprint(row.TrapMakespan), fmt.Sprint(row.Opt),
			fmt.Sprint(row.PairwiseOptimal),
		})
		xs = append(xs, float64(row.N))
		ys = append(ys, float64(row.TrapMakespan)/float64(row.Opt))
	}
	r.printf("%s", plot.Table([]string{"n", "trap Cmax", "OPT", "pairwise-optimal"}, trows))
	return r.writeCSV("tableII.csv", []plot.Series{plot.NewSeries("trap-ratio", xs, ys)})
}

func (r runner) figure1() error {
	r.printf("== Figure 1 / Proposition 8: DLB2C non-convergence ==\n")
	res, err := experiments.Figure1With(r.cfg.Harness)
	if err != nil {
		return err
	}
	r.printf("reachable schedules: %d, stable: %d, proven non-convergent: %v\n",
		res.ReachableStates, res.StableStates, res.ProvenNonConvergent)
	r.printf("explicit cycle (length %d):\n", len(res.CycleStates)-1)
	for k, s := range res.CycleStates {
		r.printf("  step %d: %s\n", k, s)
	}
	xs := make([]float64, len(res.CycleMakespans))
	ys := make([]float64, len(res.CycleMakespans))
	for k, v := range res.CycleMakespans {
		xs[k] = float64(k)
		ys[k] = float64(v)
	}
	return r.writeCSV("figure1.csv", []plot.Series{plot.NewSeries("cycle-makespan", xs, ys)})
}

func (r runner) figure2a() error {
	r.printf("== Figure 2(a): stationary makespan pdf, m=6, varying pmax ==\n")
	pmaxes := []int64{2, 4, 8}
	switch {
	case r.cfg.Reduced:
		pmaxes = []int64{2, 4}
	case r.cfg.Full:
		pmaxes = append(pmaxes, 16)
		r.printf("(-full: including pmax=16, ~1.8M states; this takes several minutes)\n")
	}
	curves, err := experiments.Figure2aWith(r.cfg.Harness, pmaxes)
	if err != nil {
		return err
	}
	series := experiments.Figure2Series(curves)
	r.printf("%s", plot.ASCII("P(Cmax) vs normalized deviation (Cmax-⌈ΣP/m⌉)/pmax", series, 64, 16))
	for _, c := range curves {
		r.printf("  pmax=%-3d states=%-8d mode=%.2f tail>1.5: %.4f\n", c.PMax, c.States, c.Mode, c.TailBeyond15)
	}
	return r.writeCSV("figure2a.csv", series)
}

func (r runner) figure2b() error {
	r.printf("== Figure 2(b): stationary makespan pdf, pmax=4, varying m ==\n")
	ms := []int{3, 4, 5, 6}
	if r.cfg.Reduced {
		ms = []int{3, 4}
	}
	curves, err := experiments.Figure2bWith(r.cfg.Harness, ms)
	if err != nil {
		return err
	}
	series := experiments.Figure2Series(curves)
	r.printf("%s", plot.ASCII("P(Cmax) vs normalized deviation", series, 64, 16))
	for _, c := range curves {
		r.printf("  m=%-2d states=%-8d mode=%.2f tail>1.5: %.4f\n", c.M, c.States, c.Mode, c.TailBeyond15)
	}
	return r.writeCSV("figure2b.csv", series)
}

// simConfigs returns the hetero/homogeneous pair every simulation figure
// uses, at the configured scale, with the per-figure seed offsets of the
// original drivers.
func (r runner) simConfigs() []experiments.SimConfig {
	het := experiments.PaperHetero()
	hom := experiments.PaperHomogeneous()
	if r.cfg.Reduced {
		het = het.Reduced()
		hom = hom.Reduced()
	}
	het.Seed, hom.Seed = r.cfg.Seed+10, r.cfg.Seed+20
	return []experiments.SimConfig{het, hom}
}

func (r runner) figure3() error {
	r.printf("== Figure 3: equilibrium makespan distribution, hetero vs homog ==\n")
	results, err := experiments.Figure3With(r.cfg.Harness, r.simConfigs())
	if err != nil {
		return err
	}
	var series []plot.Series
	for _, res := range results {
		h := res.Histogram(0, 3, 24)
		var xs, ys []float64
		for k := range h.Counts {
			xs = append(xs, h.BinCenter(k))
			ys = append(ys, h.Density(k))
		}
		series = append(series, plot.NewSeries(res.Config.Name, xs, ys))
		r.printf("  %-22s %s\n", res.Config.Name, res.Summary)
	}
	r.printf("%s", plot.ASCII("density of (Cmax-LB)/pmax after 30 exchanges/machine", series, 64, 14))
	return r.writeCSV("figure3.csv", series)
}

func (r runner) figure4() error {
	r.printf("== Figure 4: makespan trajectories over exchanges ==\n")
	runs, err := experiments.Figure4With(r.cfg.Harness, r.simConfigs(), 2)
	if err != nil {
		return err
	}
	series := experiments.Figure4Series(runs)
	r.printf("%s", plot.ASCII("Cmax/centralized vs exchanges per machine", series, 64, 14))
	for _, run := range runs {
		r.printf("  %-22s run %d: min %.3f, equilibrium oscillation %.3f\n",
			run.Config.Name, run.Run, run.MinReached, run.FinalOscillation)
	}
	return r.writeCSV("figure4.csv", series)
}

func (r runner) figure5() error {
	r.printf("== Figure 5: exchanges per machine to first reach 1.5×cent ==\n")
	cfgs := r.simConfigs()
	if r.cfg.Full && !r.cfg.Reduced {
		large := experiments.PaperHeteroLarge()
		large.Seed = r.cfg.Seed + 30
		cfgs = append(cfgs, large)
		r.printf("(-full: including the 512+256 system)\n")
	}
	results, err := experiments.Figure5With(r.cfg.Harness, cfgs, 1.5)
	if err != nil {
		return err
	}
	series := experiments.Figure5CDFSeries(results)
	r.printf("%s", plot.ASCII("CDF over machines of exchanges at first crossing", series, 64, 14))
	for _, res := range results {
		r.printf("  %-22s crossed %d/%d runs; per-machine exchanges: %s\n",
			res.Config.Name, res.CrossedRuns, res.TotalRuns, res.Summary)
	}
	return r.writeCSV("figure5.csv", series)
}

func (r runner) extKClusters() error {
	r.printf("== Extension: DLBKC equilibrium quality vs number of clusters ==\n")
	ks := []int{2, 3, 4, 6}
	mpc, jobs, hi, runs, steps := 8, 384, core.Cost(1000), 10, 30
	if r.cfg.Reduced {
		ks = []int{2, 3}
		mpc, jobs, hi, runs, steps = 3, 72, 50, 3, 20
	}
	results, err := experiments.ExtKClustersWith(r.cfg.Harness, ks, mpc, jobs, hi, runs, steps, r.cfg.Seed+40)
	if err != nil {
		return err
	}
	for _, res := range results {
		r.printf("  k=%d: Cmax/LP-LB %s\n", res.K, res.Summary)
	}
	series := experiments.ExtKClustersSeries(results)
	r.printf("%s", plot.ASCII("equilibrium Cmax / LP fractional LB vs k", series, 64, 12))
	return r.writeCSV("ext_kclusters.csv", series)
}

func (r runner) extDynamic() error {
	r.printf("== Extension: periodic balancing during execution (Section IV mode) ==\n")
	periods := []int64{0, 50, 10, 2}
	m1, m2, jobs, hi, inter, runs := 16, 8, 384, core.Cost(1000), 2.0, 10
	if r.cfg.Reduced {
		periods = []int64{0, 5}
		m1, m2, jobs, hi, inter, runs = 3, 3, 60, 50, 1.0, 3
	}
	results, err := experiments.ExtDynamicWith(r.cfg.Harness, periods, m1, m2, jobs, hi, inter, runs, r.cfg.Seed+50)
	if err != nil {
		return err
	}
	r.printf("%s", experiments.ExtDynamicTable(results))
	var xs, ys []float64
	for _, res := range results {
		xs = append(xs, float64(res.BalanceEvery))
		ys = append(ys, res.MeanFlow)
	}
	series := []plot.Series{plot.NewSeries("mean flow vs balance period (0 = off)", xs, ys)}
	return r.writeCSV("ext_dynamic.csv", series)
}

func (r runner) residual() error {
	r.printf("== Ablation: measured residual imbalance vs the Markov model's uniform assumption ==\n")
	m, jobs, hi, steps := 96, 768, core.Cost(1000), 20000
	if r.cfg.Reduced {
		m, jobs, hi, steps = 8, 64, 100, 2000
	}
	res, err := experiments.ResidualCheckWith(r.cfg.Harness, m, jobs, 1, hi, steps, r.cfg.Seed+60)
	if err != nil {
		return err
	}
	r.printf("  %d balancing steps measured on the %d-machine/%d-job system\n", res.Samples, m, jobs)
	r.printf("  normalized residual |Δload|/pmax_pool: %s\n", res.Summary)
	r.printf("  model assumes uniform {0..pmax} (mean 0.5); measured mean %.2f → model is conservative\n",
		res.Summary.Mean)
	h := stats.NewHistogram(0, 1.0001, 20)
	for _, v := range res.Normalized {
		h.Add(v)
	}
	var xs, ys []float64
	for k := range h.Counts {
		xs = append(xs, h.BinCenter(k))
		ys = append(ys, h.Density(k))
	}
	return r.writeCSV("residual.csv", []plot.Series{plot.NewSeries("measured residual density", xs, ys)})
}

func (r runner) chaos() error {
	r.printf("== Robustness: DLB2C under message loss and machine churn ==\n")
	cfg := experiments.PaperChaos()
	if r.cfg.Reduced {
		cfg = cfg.Reduced()
	}
	cfg.Seed = r.cfg.Seed + 70
	results, err := experiments.ChaosWith(r.cfg.Harness, cfg)
	if err != nil {
		return err
	}
	r.printf("%s", experiments.ChaosTable(results))
	series := experiments.ChaosSeries(results, cfg.Horizon)
	r.printf("%s", plot.ASCII("mean virtual time to 1.1×cent vs loss rate (horizon = never)", series, 64, 12))
	return r.writeCSV("chaos.csv", series)
}
