package evaluation

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"hetlb/internal/harness"
)

// TestRunReducedEndToEnd runs the complete reduced evaluation — every step
// cmd/figures and `hetlb figures` expose — into a temp dir and checks that
// each experiment emitted its CSV and some textual rendering. This is the
// integration test for the whole evaluation pipeline: drivers, harness,
// plotting and CSV emission.
func TestRunReducedEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full reduced evaluation is a few seconds")
	}
	dir := t.TempDir()
	var buf bytes.Buffer
	cfg := Config{
		OutDir:  dir,
		Reduced: true,
		Seed:    1,
		Harness: harness.Options{Parallelism: 2},
		Out:     &buf,
	}
	if err := Run(cfg, "all"); err != nil {
		t.Fatal(err)
	}
	for _, csv := range []string{
		"tableI.csv", "tableII.csv", "figure1.csv", "figure2a.csv",
		"figure2b.csv", "figure3.csv", "figure4.csv", "figure5.csv",
		"ext_kclusters.csv", "ext_dynamic.csv", "residual.csv", "chaos.csv",
	} {
		st, err := os.Stat(filepath.Join(dir, csv))
		if err != nil {
			t.Errorf("missing %s: %v", csv, err)
			continue
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", csv)
		}
	}
	if buf.Len() == 0 {
		t.Error("evaluation produced no textual output")
	}
}

// TestRunUnknownStep pins the error path both CLIs rely on for flag
// validation.
func TestRunUnknownStep(t *testing.T) {
	var buf bytes.Buffer
	err := Run(Config{Out: &buf}, "fig6")
	if err == nil {
		t.Fatal("unknown step accepted")
	}
}

// TestRunSingleStepNoCSV checks that an empty OutDir disables CSV emission
// while the textual rendering still happens.
func TestRunSingleStepNoCSV(t *testing.T) {
	var buf bytes.Buffer
	cfg := Config{Reduced: true, Seed: 1, Harness: harness.Sequential(), Out: &buf}
	if err := Run(cfg, "tableI"); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("tableI step produced no output")
	}
}
