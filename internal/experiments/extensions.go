package experiments

import (
	"fmt"

	"hetlb/internal/core"
	"hetlb/internal/dynamic"
	"hetlb/internal/gossip"
	"hetlb/internal/harness"
	"hetlb/internal/lp"
	"hetlb/internal/plot"
	"hetlb/internal/protocol"
	"hetlb/internal/stats"
)

// ExtKClustersResult measures the DLBKC extension: equilibrium quality as
// the number of clusters grows, judged against the LP fractional lower
// bound (no exact optimum nor proven ratio exists for k > 2 — the paper's
// open problem).
type ExtKClustersResult struct {
	K int
	// RatioToLB holds final Cmax / LP-bound per run.
	RatioToLB []float64
	Summary   stats.Summary
}

// ExtKClusters runs DLBKC on systems of k ∈ ks clusters (machinesPerCluster
// each, jobs jobs, costs U[1, hi]) for runs seeds and stepsPerMachine
// exchanges per machine.
func ExtKClusters(ks []int, machinesPerCluster, jobs int, hi core.Cost, runs, stepsPerMachine int, seed uint64) ([]ExtKClustersResult, error) {
	return ExtKClustersWith(harness.Options{}, ks, machinesPerCluster, jobs, hi, runs, stepsPerMachine, seed)
}

// ExtKClustersWith is ExtKClusters with explicit harness options; run r of
// the k-cluster sweep is keyed by (seed+k, r).
func ExtKClustersWith(opt harness.Options, ks []int, machinesPerCluster, jobs int, hi core.Cost, runs, stepsPerMachine int, seed uint64) ([]ExtKClustersResult, error) {
	out := make([]ExtKClustersResult, 0, len(ks))
	for _, k := range ks {
		k := k
		ratios, err := harness.Map(opt, seed+uint64(k), runs, func(rep *harness.Rep) (float64, error) {
			gen := rep.RNG
			sizes := make([]int, k)
			p := make([][]core.Cost, k)
			for c := 0; c < k; c++ {
				sizes[c] = machinesPerCluster
				p[c] = make([]core.Cost, jobs)
				for j := range p[c] {
					p[c][j] = gen.IntRange(1, hi)
				}
			}
			kc, err := core.NewKCluster(sizes, p)
			if err != nil {
				return 0, err
			}
			a := core.NewAssignment(kc)
			for j := 0; j < jobs; j++ {
				a.Assign(j, gen.Intn(kc.NumMachines()))
			}
			e := gossip.New(protocol.DLBKC{Model: kc}, a, gossip.Config{Seed: gen.Uint64()})
			e.Run(stepsPerMachine*kc.NumMachines(), false)
			lb, err := lp.FractionalMakespanKCluster(kc)
			if err != nil {
				return 0, err
			}
			return float64(a.Makespan()) / lb, nil
		})
		if err != nil {
			return nil, err
		}
		res := ExtKClustersResult{K: k, RatioToLB: ratios, Summary: stats.Summarize(ratios)}
		out = append(out, res)
	}
	return out, nil
}

// ExtKClustersSeries renders the per-k quality as plot series (x = k,
// y = mean ratio with the p90 as a second series).
func ExtKClustersSeries(results []ExtKClustersResult) []plot.Series {
	var xs, mean, p90 []float64
	for _, r := range results {
		xs = append(xs, float64(r.K))
		mean = append(mean, r.Summary.Mean)
		p90 = append(p90, r.Summary.P90)
	}
	return []plot.Series{
		plot.NewSeries("mean Cmax/LB", xs, mean),
		plot.NewSeries("p90 Cmax/LB", xs, p90),
	}
}

// ExtDynamicResult measures the Section IV operational mode: jobs arrive
// over time on random machines of a two-cluster system; a periodic DLB2C
// balancer (or none) redistributes pending jobs during execution.
type ExtDynamicResult struct {
	// BalanceEvery identifies the row (0 = no balancing).
	BalanceEvery int64
	// MeanFlow / MaxFlow / Makespan averaged over runs.
	MeanFlow, MeanMakespan float64
	MaxFlow                int64
	// MeanMoved is the average number of job migrations per run.
	MeanMoved float64
}

// ExtDynamic sweeps the balancing period on a fixed arrival workload.
func ExtDynamic(periods []int64, m1, m2, jobs int, hi core.Cost, meanInterarrival float64, runs int, seed uint64) ([]ExtDynamicResult, error) {
	return ExtDynamicWith(harness.Options{}, periods, m1, m2, jobs, hi, meanInterarrival, runs, seed)
}

// extDynamicRun is one replication's raw simulation outcome.
type extDynamicRun struct {
	MeanFlow float64
	Makespan int64
	MaxFlow  int64
	Moved    int
}

// ExtDynamicWith is ExtDynamic with explicit harness options. Run r is keyed
// by (seed, r) only — not by the balancing period — so every period of the
// sweep executes the identical instance/arrival workloads and the rows are
// directly comparable, as in the sequential original.
func ExtDynamicWith(opt harness.Options, periods []int64, m1, m2, jobs int, hi core.Cost, meanInterarrival float64, runs int, seed uint64) ([]ExtDynamicResult, error) {
	out := make([]ExtDynamicResult, 0, len(periods))
	for _, every := range periods {
		every := every
		rs, err := harness.Map(opt, seed, runs, func(rep *harness.Rep) (extDynamicRun, error) {
			gen := rep.RNG
			tc := coreTwoCluster(gen, SimConfig{M1: m1, M2: m2, Jobs: jobs, CostLo: 1, CostHi: hi})
			sim, err := dynamic.New(tc, protocol.DLB2C{Model: tc}, dynamic.Config{
				Seed:             gen.Uint64(),
				BalanceEvery:     every,
				MeanInterarrival: meanInterarrival,
			})
			if err != nil {
				return extDynamicRun{}, err
			}
			res := sim.Run()
			return extDynamicRun{
				MeanFlow: res.MeanFlow,
				Makespan: res.Makespan,
				MaxFlow:  res.MaxFlow,
				Moved:    res.JobsMoved,
			}, nil
		})
		if err != nil {
			return nil, err
		}
		agg := ExtDynamicResult{BalanceEvery: every}
		for _, r := range rs {
			agg.MeanFlow += r.MeanFlow
			agg.MeanMakespan += float64(r.Makespan)
			agg.MeanMoved += float64(r.Moved)
			if r.MaxFlow > agg.MaxFlow {
				agg.MaxFlow = r.MaxFlow
			}
		}
		agg.MeanFlow /= float64(runs)
		agg.MeanMakespan /= float64(runs)
		agg.MeanMoved /= float64(runs)
		out = append(out, agg)
	}
	return out, nil
}

// ExtDynamicTable renders the sweep as a text table.
func ExtDynamicTable(results []ExtDynamicResult) string {
	rows := make([][]string, 0, len(results))
	for _, r := range results {
		period := fmt.Sprint(r.BalanceEvery)
		if r.BalanceEvery == 0 {
			period = "off"
		}
		rows = append(rows, []string{
			period,
			fmt.Sprintf("%.0f", r.MeanFlow),
			fmt.Sprint(r.MaxFlow),
			fmt.Sprintf("%.0f", r.MeanMakespan),
			fmt.Sprintf("%.0f", r.MeanMoved),
		})
	}
	return plot.Table([]string{"balance period", "mean flow", "max flow", "mean makespan", "jobs moved"}, rows)
}
