package experiments

import (
	"fmt"

	"hetlb/internal/core"
	"hetlb/internal/dynamic"
	"hetlb/internal/gossip"
	"hetlb/internal/lp"
	"hetlb/internal/plot"
	"hetlb/internal/protocol"
	"hetlb/internal/rng"
	"hetlb/internal/stats"
)

// ExtKClustersResult measures the DLBKC extension: equilibrium quality as
// the number of clusters grows, judged against the LP fractional lower
// bound (no exact optimum nor proven ratio exists for k > 2 — the paper's
// open problem).
type ExtKClustersResult struct {
	K int
	// RatioToLB holds final Cmax / LP-bound per run.
	RatioToLB []float64
	Summary   stats.Summary
}

// ExtKClusters runs DLBKC on systems of k ∈ ks clusters (machinesPerCluster
// each, jobs jobs, costs U[1, hi]) for runs seeds and stepsPerMachine
// exchanges per machine.
func ExtKClusters(ks []int, machinesPerCluster, jobs int, hi core.Cost, runs, stepsPerMachine int, seed uint64) ([]ExtKClustersResult, error) {
	out := make([]ExtKClustersResult, 0, len(ks))
	for _, k := range ks {
		gen := rng.New(seed + uint64(k))
		res := ExtKClustersResult{K: k}
		for run := 0; run < runs; run++ {
			sizes := make([]int, k)
			p := make([][]core.Cost, k)
			for c := 0; c < k; c++ {
				sizes[c] = machinesPerCluster
				p[c] = make([]core.Cost, jobs)
				for j := range p[c] {
					p[c][j] = gen.IntRange(1, hi)
				}
			}
			kc, err := core.NewKCluster(sizes, p)
			if err != nil {
				return nil, err
			}
			a := core.NewAssignment(kc)
			for j := 0; j < jobs; j++ {
				a.Assign(j, gen.Intn(kc.NumMachines()))
			}
			e := gossip.New(protocol.DLBKC{Model: kc}, a, gossip.Config{Seed: gen.Uint64()})
			e.Run(stepsPerMachine*kc.NumMachines(), false)
			lb, err := lp.FractionalMakespanKCluster(kc)
			if err != nil {
				return nil, err
			}
			res.RatioToLB = append(res.RatioToLB, float64(a.Makespan())/lb)
		}
		res.Summary = stats.Summarize(res.RatioToLB)
		out = append(out, res)
	}
	return out, nil
}

// ExtKClustersSeries renders the per-k quality as plot series (x = k,
// y = mean ratio with the p90 as a second series).
func ExtKClustersSeries(results []ExtKClustersResult) []plot.Series {
	var xs, mean, p90 []float64
	for _, r := range results {
		xs = append(xs, float64(r.K))
		mean = append(mean, r.Summary.Mean)
		p90 = append(p90, r.Summary.P90)
	}
	return []plot.Series{
		plot.NewSeries("mean Cmax/LB", xs, mean),
		plot.NewSeries("p90 Cmax/LB", xs, p90),
	}
}

// ExtDynamicResult measures the Section IV operational mode: jobs arrive
// over time on random machines of a two-cluster system; a periodic DLB2C
// balancer (or none) redistributes pending jobs during execution.
type ExtDynamicResult struct {
	// BalanceEvery identifies the row (0 = no balancing).
	BalanceEvery int64
	// MeanFlow / MaxFlow / Makespan averaged over runs.
	MeanFlow, MeanMakespan float64
	MaxFlow                int64
	// MeanMoved is the average number of job migrations per run.
	MeanMoved float64
}

// ExtDynamic sweeps the balancing period on a fixed arrival workload.
func ExtDynamic(periods []int64, m1, m2, jobs int, hi core.Cost, meanInterarrival float64, runs int, seed uint64) ([]ExtDynamicResult, error) {
	out := make([]ExtDynamicResult, 0, len(periods))
	for _, every := range periods {
		gen := rng.New(seed)
		agg := ExtDynamicResult{BalanceEvery: every}
		for run := 0; run < runs; run++ {
			tc := coreTwoCluster(gen, SimConfig{M1: m1, M2: m2, Jobs: jobs, CostLo: 1, CostHi: hi})
			sim, err := dynamic.New(tc, protocol.DLB2C{Model: tc}, dynamic.Config{
				Seed:             gen.Uint64(),
				BalanceEvery:     every,
				MeanInterarrival: meanInterarrival,
			})
			if err != nil {
				return nil, err
			}
			res := sim.Run()
			agg.MeanFlow += res.MeanFlow
			agg.MeanMakespan += float64(res.Makespan)
			agg.MeanMoved += float64(res.JobsMoved)
			if res.MaxFlow > agg.MaxFlow {
				agg.MaxFlow = res.MaxFlow
			}
		}
		agg.MeanFlow /= float64(runs)
		agg.MeanMakespan /= float64(runs)
		agg.MeanMoved /= float64(runs)
		out = append(out, agg)
	}
	return out, nil
}

// ExtDynamicTable renders the sweep as a text table.
func ExtDynamicTable(results []ExtDynamicResult) string {
	rows := make([][]string, 0, len(results))
	for _, r := range results {
		period := fmt.Sprint(r.BalanceEvery)
		if r.BalanceEvery == 0 {
			period = "off"
		}
		rows = append(rows, []string{
			period,
			fmt.Sprintf("%.0f", r.MeanFlow),
			fmt.Sprint(r.MaxFlow),
			fmt.Sprintf("%.0f", r.MeanMakespan),
			fmt.Sprintf("%.0f", r.MeanMoved),
		})
	}
	return plot.Table([]string{"balance period", "mean flow", "max flow", "mean makespan", "jobs moved"}, rows)
}
